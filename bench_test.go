// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI) plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each figure bench executes its full experiment per iteration, so
// ns/op is the cost of regenerating that artifact; the experiment's
// assertions live in internal/experiments tests.
package jarvis_test

import (
	"testing"

	"jarvis"
	"jarvis/internal/benchcase"
	"jarvis/internal/experiments"
	"jarvis/internal/lp"
	"jarvis/internal/partition"
	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/sim"
	"jarvis/internal/workload"
)

// --- Fig. 3: operator-level vs data-level illustration ---

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7: throughput vs CPU budget, three queries ---

func benchFig7(b *testing.B, name string) {
	q, rate, err := experiments.QueryByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(name, q, rate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_S2SProbe(b *testing.B)     { benchFig7(b, "s2s") }
func BenchmarkFig7b_T2TProbe(b *testing.B)     { benchFig7(b, "t2t") }
func BenchmarkFig7c_LogAnalytics(b *testing.B) { benchFig7(b, "log") }

// --- Fig. 8: convergence traces ---

func BenchmarkFig8a_S2SProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8S2S(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8b_T2TProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8T2T(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8c_LogAnalytics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Log(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 9: data synopsis comparison ---

func BenchmarkFig9a_SamplingErrorCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b_TransferVsRate(b *testing.B) {
	// The transfer panel shares Fig9's computation; this bench isolates
	// the Jarvis-side transfer points.
	sc := partition.Scenario{
		Query: plan.S2SProbe(), RateMbps: workload.PingmeshMbps10x,
		BandwidthMbps: experiments.PerSourceBWMbps,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, budget := range []float64{1.0, 0.2} {
			sc.BudgetFrac = budget
			if _, _, err := partition.EvaluateStrategy(partition.Jarvis, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig. 10: multi-source scaling ---

func benchFig10(b *testing.B, idx int) {
	set := experiments.Fig10Settings[idx]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10a_10x(b *testing.B) { benchFig10(b, 0) }
func BenchmarkFig10b_5x(b *testing.B)  { benchFig10(b, 1) }
func BenchmarkFig10c_1x(b *testing.B)  { benchFig10(b, 2) }

// --- Fig. 11: multiple queries per node ---

func benchFig11(b *testing.B, idx int) {
	set := experiments.Fig11Settings[idx]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11a_10x(b *testing.B) { benchFig11(b, 0) }
func BenchmarkFig11b_5x(b *testing.B)  { benchFig11(b, 1) }
func BenchmarkFig11c_1x(b *testing.B)  { benchFig11(b, 2) }

// --- §VI-E latency table ---

func BenchmarkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Latency(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VI-C operator-count convergence sweep ---

func BenchmarkOpCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OpCount(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VI-B runtime overhead ---

func BenchmarkRuntimeOverhead(b *testing.B) {
	est := runtime.Estimates{
		CostPct:   []float64{1, 13, 71},
		Relay:     []float64{1, 0.86, 0.30},
		BudgetPct: 60,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.LPInit(est, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) ---

// convergenceUnder measures closed-loop epochs to stability in the
// simulator for a runtime configuration.
func convergenceUnder(b *testing.B, cfg runtime.Config) int {
	node, err := sim.NewNode(sim.DefaultNodeConfig(plan.S2SProbe(), workload.PingmeshMbps10x, 0.60))
	if err != nil {
		b.Fatal(err)
	}
	trace, err := sim.Run(node, cfg, 40, nil)
	if err != nil {
		b.Fatal(err)
	}
	c := trace.ConvergenceEpochs(0, 3)
	if c < 0 {
		c = 40
	}
	return c
}

func BenchmarkAblationFineTune(b *testing.B) {
	b.Run("binary-search", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total += convergenceUnder(b, runtime.NoLPInit())
		}
		b.ReportMetric(float64(total)/float64(b.N), "epochs/op")
	})
	b.Run("linear-stepping", func(b *testing.B) {
		cfg := runtime.NoLPInit()
		cfg.LinearStepping = true
		total := 0
		for i := 0; i < b.N; i++ {
			total += convergenceUnder(b, cfg)
		}
		b.ReportMetric(float64(total)/float64(b.N), "epochs/op")
	})
}

func BenchmarkAblationPriority(b *testing.B) {
	b.Run("relay-only", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total += convergenceUnder(b, runtime.NoLPInit())
		}
		b.ReportMetric(float64(total)/float64(b.N), "epochs/op")
	})
	b.Run("cost-relay", func(b *testing.B) {
		cfg := runtime.NoLPInit()
		cfg.PriorityByCostRelay = true
		total := 0
		for i := 0; i < b.N; i++ {
			total += convergenceUnder(b, cfg)
		}
		b.ReportMetric(float64(total)/float64(b.N), "epochs/op")
	})
}

func BenchmarkAblationThresholds(b *testing.B) {
	for _, tc := range []struct {
		name                    string
		drainedThres, idleThres float64
	}{
		{"paper-0.10-0.20", 0.10, 0.20},
		{"tight-0.01-0.02", 0.01, 0.02},
		{"loose-0.30-0.50", 0.30, 0.50},
	} {
		b.Run(tc.name, func(b *testing.B) {
			adaptations := 0
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultNodeConfig(plan.S2SProbe(), workload.PingmeshMbps10x, 0.60)
				cfg.DrainedThres = tc.drainedThres
				cfg.IdleThres = tc.idleThres
				node, err := sim.NewNode(cfg)
				if err != nil {
					b.Fatal(err)
				}
				trace, err := sim.Run(node, runtime.Defaults(), 60, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range trace {
					if e.Profiled {
						adaptations++
					}
				}
			}
			b.ReportMetric(float64(adaptations)/float64(b.N), "profiles/op")
		})
	}
}

func BenchmarkLPSolvers(b *testing.B) {
	cp := lp.ChainProblem{
		R:      []float64{1, 0.86, 0.30},
		C:      []float64{0.01, 0.13, 0.71 / 0.86},
		Budget: 0.6,
	}
	b.Run("chain-greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lp.SolveChain(cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-simplex", func(b *testing.B) {
		p := cp.ToProblem()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := lp.Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Engine micro-benchmarks ---

func benchPipelineEpoch(b *testing.B, legacy, recycle bool) {
	pipe, batch, err := benchcase.PipelineEpoch(legacy)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(batch.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pipe.RunEpoch(batch)
		if recycle {
			res.Recycle()
		}
	}
}

// BenchmarkPipelineEpoch measures the default batch-vectorized epoch
// loop (the canonical setup lives in internal/benchcase, shared with
// jarvis-bench -exp micro). The Legacy variant runs the record-at-a-time
// reference path for the A/B comparison; the Recycled variant
// additionally returns epoch buffers to the pool, as the in-process
// Processor does.
func BenchmarkPipelineEpoch(b *testing.B)         { benchPipelineEpoch(b, false, false) }
func BenchmarkPipelineEpochRecycled(b *testing.B) { benchPipelineEpoch(b, false, true) }
func BenchmarkPipelineEpochLegacy(b *testing.B)   { benchPipelineEpoch(b, true, false) }

// BenchmarkAgentEpochColumnar measures the agent-side SoA epoch: the
// generator's column sections flow through RunEpochColumnar with no
// record materialization — the columnar counterpart of
// BenchmarkPipelineEpoch over the identical trace.
func BenchmarkAgentEpochColumnar(b *testing.B) {
	pipe, cb, err := benchcase.PipelineEpochColumnar()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(cb.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.RunEpochColumnar(cb)
	}
}

// BenchmarkSPIngest measures the row-path SP ingest (the canonical setup
// lives in internal/benchcase, shared with jarvis-bench -exp micro);
// BenchmarkSPIngestColumnar drives the identical record sequence through
// the SoA path — decoded columns flow through Window, Filter and
// GroupAgg with zero record materialization.
func BenchmarkSPIngest(b *testing.B) {
	engine, batch, _, err := benchcase.SPIngest()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(batch.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Ingest(0, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPIngestColumnar(b *testing.B) {
	engine, batch, cb, err := benchcase.SPIngest()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(batch.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.IngestColumnar(0, cb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEpoch(b *testing.B) {
	node, err := sim.NewNode(sim.DefaultNodeConfig(plan.S2SProbe(), workload.PingmeshMbps10x, 0.6))
	if err != nil {
		b.Fatal(err)
	}
	_ = node.SetFactors([]float64{1, 1, 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		node.RunEpoch()
	}
}

func BenchmarkEndToEndBuildingBlock(b *testing.B) {
	bb, batch, err := benchcase.EndToEnd()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(batch.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.RunEpoch([]jarvis.Batch{batch}); err != nil {
			b.Fatal(err)
		}
	}
}
