// Command jarvis-agent runs a data source agent: it generates (or would
// ingest) monitoring data, executes the query's source-side replica
// within a CPU budget under the adaptive Jarvis runtime, and ships
// drains, partial aggregates and watermarks to a stream processor over
// the sequenced, replayable transport — epochs buffer while the SP is
// unreachable and replay on reconnect, so every epoch is applied exactly
// once.
//
// With -checkpoint-dir the agent also takes epoch-aligned durable
// snapshots of its pipeline state, load factors and replay buffer every
// -checkpoint-every epochs, and resumes from the newest snapshot after a
// restart. -checkpoint-async moves the durable save off the epoch path
// onto a writer goroutine (the capture stays epoch-aligned), so
// every-epoch checkpointing does not stall shipping.
//
// -sp accepts a comma-separated endpoint list (primary plus warm
// standbys, see internal/ha): on connection loss the agent walks the
// list until an SP admits its hello, then resumes and replays as usual —
// a promoted standby deduplicates by sequence, a stale or unpromoted SP
// rejects the hello and the dialer moves on.
//
// By default the agent generates epochs as SoA columns and runs the
// columnar pipeline (-columnar-gen=false selects the row path for A/B
// comparison), and offers flate compression for its columnar data
// frames (-wire-compress=false ships them plain); compression is used
// only when the SP's ack also advertises it.
//
// -tenant and -class declare the agent's identity to an SP running
// admission control: the hello carries both as trailing extensions, and
// acks carry back a pacing hint that the agent honors between epochs
// when it is over its class-weighted budget (see internal/admission).
//
// Usage:
//
//	jarvis-agent -sp 10.0.0.1:7700,10.0.0.2:7800 -id 1 -query s2s \
//	    -budget 0.6 -epochs 60 -checkpoint-dir /var/lib/jarvis/agent1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/checkpoint"
	"jarvis/internal/core"
	"jarvis/internal/experiments"
	"jarvis/internal/obs"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

func main() {
	spAddr := flag.String("sp", "127.0.0.1:7700", "stream processor endpoints, comma-separated (primary first, then standbys)")
	id := flag.Uint("id", 1, "source id")
	queryName := flag.String("query", "s2s", "query to run (s2s|t2t|log)")
	budget := flag.Float64("budget", 0.6, "CPU budget as a fraction of one core")
	epochs := flag.Int("epochs", 60, "epochs to run (0 = forever)")
	realtime := flag.Bool("realtime", false, "pace epochs at one per second of wall time")
	ckptDir := flag.String("checkpoint-dir", "", "durable snapshot directory (empty = no checkpointing)")
	ckptEvery := flag.Int("checkpoint-every", checkpoint.DefaultEvery, "epochs between durable snapshots (1 = every epoch, cheap with delta snapshots)")
	ckptRetain := flag.Int("checkpoint-retain", checkpoint.DefaultRetain, "base+delta snapshot chains to keep when compacting (0 = keep all)")
	ckptAsync := flag.Bool("checkpoint-async", false, "save snapshots on a writer goroutine (the epoch path only captures state)")
	columnar := flag.Bool("columnar-gen", true, "generate epochs as SoA columns and run the columnar agent pipeline (falls back to rows automatically where the plan has no columnar kernels)")
	compress := flag.Bool("wire-compress", true, "offer flate compression for columnar data frames (used only when the SP also advertises it)")
	obsListen := flag.String("obs-listen", "", "introspection HTTP listener (/metrics, /status, /decisions, /debug/pprof)")
	obsDecisions := flag.String("obs-decisions", "", "append runtime adaptation decisions to this JSONL file")
	tenantName := flag.String("tenant", "", "tenant name announced in the hello (empty = derived from the source id by the SP)")
	className := flag.String("class", "silver", "SLO class announced in the hello (gold|silver|best-effort)")
	flag.Parse()

	if err := run(*spAddr, uint32(*id), *queryName, *budget, *epochs, *realtime, *ckptDir, *ckptEvery, *ckptRetain, *ckptAsync, *columnar, *compress, *obsListen, *obsDecisions, *tenantName, *className); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-agent:", err)
		os.Exit(1)
	}
}

func run(spAddr string, id uint32, queryName string, budget float64, epochs int, realtime bool, ckptDir string, ckptEvery, ckptRetain int, ckptAsync bool, columnar, compress bool, obsListen, obsDecisions, tenantName, className string) error {
	endpoints := transport.ParseEndpoints(spAddr)
	if len(endpoints) == 0 {
		return fmt.Errorf("no SP endpoints in %q", spAddr)
	}
	q, rate, err := experiments.QueryByName(queryName)
	if err != nil {
		return err
	}
	src, err := core.NewSource(q, core.SourceOptions{
		ID:         id,
		BudgetFrac: budget,
		RateMbps:   rate,
		Adapt:      true,
	})
	if err != nil {
		return err
	}
	ship := transport.NewDurableShipper(id, 0)
	ship.SetCompression(compress)
	class, err := admission.ParseClass(className)
	if err != nil {
		return err
	}
	ship.SetIdentity(tenantName, class)

	if obsDecisions != "" {
		f, err := os.OpenFile(obsDecisions, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		obs.Decisions().SetSink(f)
	}
	if obsListen != "" {
		osrv := obs.NewServer()
		osrv.AddRegistry(ship.Counters())
		osrv.SetStatus(func() any {
			return map[string]any{
				"source":       id,
				"query":        queryName,
				"phase":        src.Phase().String(),
				"load_factors": src.LoadFactors(),
				"epochs":       src.Epochs(),
				"seq":          ship.Seq(),
				"acked":        ship.Acked(),
				"dropped":      ship.Dropped(),
				"term":         ship.Term(),
				"peer_version": ship.PeerVersion(),
				"connected":    ship.Connected(),
				"tenant":       tenantName,
				"class":        class.String(),
				"throttle_us":  ship.ThrottleHint().Microseconds(),
			}
		})
		addr, err := osrv.Start(obsListen)
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Printf("jarvis-agent %d: introspection on http://%s/metrics\n", id, addr)
	}

	var arec *checkpoint.AgentRecovery
	resume := uint64(0)
	if ckptDir != "" {
		store, err := checkpoint.OpenStore(ckptDir)
		if err != nil {
			return err
		}
		arec = checkpoint.NewAgentRecovery(store, ckptEvery, src, ship)
		arec.SetRetention(ckptRetain)
		arec.SetAsync(ckptAsync)
		defer arec.Close()
		var restored bool
		resume, restored, err = arec.Restore()
		if err != nil {
			return err
		}
		if restored {
			fmt.Printf("jarvis-agent %d: resumed from snapshot after epoch %d (%d unacked epochs buffered)\n",
				id, resume, ship.Seq()-ship.Acked())
		}
	}

	next, nextCols := mkGenerator(queryName, uint64(id))
	// The synthetic generator is deterministic: fast-forward it past the
	// epochs the snapshot already covers (a real agent would resume its
	// upstream ingest instead).
	for e := uint64(0); e < resume; e++ {
		next(1_000_000)
	}
	if _, err := ship.ConnectAny(endpoints); err != nil {
		fmt.Fprintf(os.Stderr, "jarvis-agent %d: no SP reachable (%v), buffering epochs\n", id, err)
	}
	fmt.Printf("jarvis-agent %d: %s at %.1f Mbps, budget %.0f%%, sp %v\n",
		id, q.Name, rate, budget*100, endpoints)

	var cb wire.ColumnarBatch
	for e := int(resume); epochs == 0 || e < epochs; e++ {
		start := time.Now()
		var res stream.EpochResult
		var genDur time.Duration
		genStart := obs.Now()
		if columnar {
			// SoA path: the generator emits columns straight into the
			// pipeline; records only materialize where the plan lacks
			// columnar kernels.
			cb.Reset()
			nextCols(1_000_000, &cb)
			if !genStart.IsZero() {
				genDur = time.Since(genStart)
				obs.ObserveDurN(obs.StageGenerate, genDur, id, uint64(e))
			}
			res, err = src.RunEpochColumnar(&cb)
		} else {
			batch := next(1_000_000)
			if !genStart.IsZero() {
				genDur = time.Since(genStart)
				obs.ObserveDurN(obs.StageGenerate, genDur, id, uint64(e))
			}
			res, err = src.RunEpoch(batch)
		}
		if err != nil {
			return err
		}
		if !genStart.IsZero() {
			// Trace context: the epoch began at generate start; the shipper
			// seals encode timing and the trace id into the EpochEnd.
			res.Timing.StartMicros = genStart.UnixMicro()
			res.Timing.GenMicros = genDur.Microseconds()
		}
		if !ship.Connected() {
			if addr, err := ship.ConnectAny(endpoints); err == nil {
				fmt.Printf("  reconnected to %s (term %d), replayed through epoch %d\n", addr, ship.Term(), ship.Seq())
			}
		}
		if err := ship.ShipEpoch(res); err != nil {
			return err
		}
		if arec != nil {
			if err := arec.AfterEpoch(ship.Seq()); err != nil {
				return err
			}
		}
		if hint := ship.ThrottleHint(); hint > 0 {
			// The SP's last ack asked for breathing room: slow the shipping
			// cadence rather than pile epochs onto its delay queue.
			time.Sleep(hint)
		}
		if e%10 == 0 {
			lf := src.LoadFactors()
			fmt.Printf("  epoch %3d  phase %-8v budget used %5.1f%%  factors %.2f  out %6.2f Mbps  acked %d/%d\n",
				e, src.Phase(), res.BudgetUsedFrac*100, lf, float64(res.TotalOutBytes())*8/1e6,
				ship.Acked(), ship.Seq())
		}
		if realtime {
			if d := time.Second - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if arec != nil {
		if err := arec.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("jarvis-agent %d: done; transport counters: %s\n", id, ship.Counters())
	return nil
}

// mkGenerator returns row and columnar epoch generators for the chosen
// query, backed by the same generator instance (same RNG stream and
// event-time cursor, so either form may be used each epoch).
func mkGenerator(queryName string, seed uint64) (func(durMicros int64) telemetry.Batch, func(durMicros int64, cb *wire.ColumnarBatch)) {
	switch queryName {
	case "log", "loganalytics":
		gen := workload.NewLogGen(workload.DefaultLogConfig(seed))
		return gen.NextWindow, gen.NextWindowCols
	default:
		cfg := workload.DefaultPingConfig(seed)
		cfg.SrcIP = 0x0A000000 + uint32(seed)
		gen := workload.NewPingGen(cfg)
		return gen.NextWindow, gen.NextWindowCols
	}
}
