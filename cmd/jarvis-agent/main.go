// Command jarvis-agent runs a data source agent: it generates (or would
// ingest) monitoring data, executes the query's source-side replica
// within a CPU budget under the adaptive Jarvis runtime, and ships
// drains, partial aggregates and watermarks to a stream processor.
//
// Usage:
//
//	jarvis-agent -sp 127.0.0.1:7700 -id 1 -query s2s -budget 0.6 -epochs 60
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jarvis/internal/core"
	"jarvis/internal/experiments"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/workload"
)

func main() {
	spAddr := flag.String("sp", "127.0.0.1:7700", "stream processor address")
	id := flag.Uint("id", 1, "source id")
	queryName := flag.String("query", "s2s", "query to run (s2s|t2t|log)")
	budget := flag.Float64("budget", 0.6, "CPU budget as a fraction of one core")
	epochs := flag.Int("epochs", 60, "epochs to run (0 = forever)")
	realtime := flag.Bool("realtime", false, "pace epochs at one per second of wall time")
	flag.Parse()

	if err := run(*spAddr, uint32(*id), *queryName, *budget, *epochs, *realtime); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-agent:", err)
		os.Exit(1)
	}
}

func run(spAddr string, id uint32, queryName string, budget float64, epochs int, realtime bool) error {
	q, rate, err := experiments.QueryByName(queryName)
	if err != nil {
		return err
	}
	src, err := core.NewSource(q, core.SourceOptions{
		BudgetFrac: budget,
		RateMbps:   rate,
		Adapt:      true,
	})
	if err != nil {
		return err
	}
	shipper, closeFn, err := transport.Dial(id, spAddr)
	if err != nil {
		return err
	}
	defer closeFn()

	next := mkGenerator(queryName, uint64(id))
	fmt.Printf("jarvis-agent %d: %s at %.1f Mbps, budget %.0f%%, sp %s\n",
		id, q.Name, rate, budget*100, spAddr)

	for e := 0; epochs == 0 || e < epochs; e++ {
		start := time.Now()
		res, err := src.RunEpoch(next(1_000_000))
		if err != nil {
			return err
		}
		if err := shipper.ShipEpoch(res); err != nil {
			return err
		}
		if e%10 == 0 {
			lf := src.LoadFactors()
			fmt.Printf("  epoch %3d  phase %-8v budget used %5.1f%%  factors %.2f  out %6.2f Mbps\n",
				e, src.Phase(), res.BudgetUsedFrac*100, lf, float64(res.TotalOutBytes())*8/1e6)
		}
		if realtime {
			if d := time.Second - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return nil
}

// mkGenerator returns an epoch-batch generator for the chosen query.
func mkGenerator(queryName string, seed uint64) func(durMicros int64) telemetry.Batch {
	switch queryName {
	case "log", "loganalytics":
		gen := workload.NewLogGen(workload.DefaultLogConfig(seed))
		return gen.NextWindow
	default:
		cfg := workload.DefaultPingConfig(seed)
		cfg.SrcIP = 0x0A000000 + uint32(seed)
		gen := workload.NewPingGen(cfg)
		return gen.NextWindow
	}
}
