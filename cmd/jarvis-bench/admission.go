package main

import (
	"fmt"
	"math"
	"testing"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/benchcase"
	"jarvis/internal/plan"
	"jarvis/internal/sim"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// admissionBenchmarks quantifies the overload-protection subsystem:
//
//   - BenchmarkAdmissionAdmit: the controller's per-epoch admit cost
//     (token-bucket check + counters) on the always-admitted fast path.
//   - AdmissionOverheadPct: that cost as a percentage of one warm
//     columnar SP ingest epoch — the number the ≤3% budget is checked
//     against (min-of-3 on the ingest side to filter scheduler noise).
//   - JainFairness@10xSpike / OverloadEpochsLost: the deterministic
//     overload simulation's end-of-run fairness index and loss count
//     under a 10x hot-tenant spike (see internal/sim.RunOverload).
//   - DegradedModeErrPct@rate=0.25: relative error of sampled-and-
//     rescaled ingestion vs an exact replica on the LogAnalytics query,
//     alongside the a-priori bound the SP records for the tenant.
func admissionBenchmarks() ([]BenchRecord, error) {
	records := []BenchRecord{}

	// The budget is effectively infinite: b.N admits of a ~600 KB epoch
	// must never exhaust the bucket, or the benchmark measures the
	// delayed path instead of the fast path.
	ctrl := admission.NewController(admission.Config{
		RateBytesPerSec: 1e18, BurstBytes: 1e18, Now: time.Now,
	})
	ctrl.Register(1, "bench-tenant", admission.Silver)
	const epochBytes = 600 << 10
	ra := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := ctrl.Admit(1, epochBytes); v != admission.Admitted {
				b.Fatalf("unexpected verdict %v", v)
			}
		}
	})
	admitRec := record("BenchmarkAdmissionAdmit", 0, ra)
	records = append(records, admitRec)

	// Warm columnar SP ingest, the denominator of the overhead budget.
	engine, _, cb, err := benchcase.SPIngest()
	if err != nil {
		return nil, err
	}
	ingestNs := math.Inf(1)
	for t := 0; t < 3; t++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := engine.IngestColumnar(0, cb); err != nil {
					b.Fatal(err)
				}
			}
		})
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < ingestNs {
			ingestNs = ns
		}
	}
	records = append(records, BenchRecord{
		Name:    "AdmissionOverheadPct",
		NsPerOp: 100 * admitRec.NsPerOp / ingestNs,
	})

	// Fairness under a 10x hot-tenant spike, from the deterministic
	// overload simulation (same scenario the sim package's acceptance
	// test runs). NsPerOp carries the Jain index / the lost-epoch count.
	res, err := sim.RunOverload(sim.OverloadConfig{
		Tenants: []sim.TenantSpec{
			{Source: 1, Name: "gold-app", Class: admission.Gold, BytesPerEpoch: 800},
			{Source: 2, Name: "steady", Class: admission.Silver, BytesPerEpoch: 400},
			{Source: 3, Name: "hot", Class: admission.Silver, BytesPerEpoch: 400,
				SpikeFrom: 10, SpikeTo: 25, SpikeFactor: 10},
		},
		Epochs: 40, EpochMicros: 1_000_000,
		Admission: admission.Config{
			RateBytesPerSec: 1000, BurstBytes: 1000, MaxDelayedEpochs: 2,
			DegradeAfter: 3, PromoteAfter: 4, DegradeRate: 0.25,
		},
	})
	if err != nil {
		return nil, err
	}
	records = append(records,
		BenchRecord{Name: "JainFairness@10xSpike", NsPerOp: res.Jain},
		BenchRecord{Name: "OverloadEpochsLost", NsPerOp: float64(res.Lost)})

	errPct, boundPct, err := degradedModeError(0.25)
	if err != nil {
		return nil, err
	}
	records = append(records,
		BenchRecord{Name: "DegradedModeErrPct@rate=0.25", NsPerOp: errPct},
		BenchRecord{Name: "DegradedModeErrBoundPct@rate=0.25", NsPerOp: boundPct})
	return records, nil
}

// degradedModeError feeds identical LogAnalytics epochs to an exact
// engine and to one ingesting through the degrader's sampled path, then
// compares total counts after rescaling. Returns (observed error %,
// recorded a-priori bound %).
func degradedModeError(rate float64) (float64, float64, error) {
	mkEngine := func() (*stream.SPEngine, error) {
		e, err := stream.NewSPEngine(plan.LogAnalytics())
		if err != nil {
			return nil, err
		}
		e.RegisterSource(1)
		return e, nil
	}
	exact, err := mkEngine()
	if err != nil {
		return 0, 0, err
	}
	sampled, err := mkEngine()
	if err != nil {
		return 0, 0, err
	}
	deg := admission.NewDegrader()
	deg.SetWindowMicros(sampled.WindowDur())
	deg.Degrade("tenant-000", rate)

	gen := workload.NewLogGen(workload.LogConfig{
		Seed: 7, Tenants: 1, MatchRate: 1, IntervalMicros: 500,
	})
	var n int64
	for e := 0; e < 6; e++ {
		batch := gen.NextWindow(1_000_000)
		n += int64(len(batch))
		if err := exact.Ingest(0, batch); err != nil {
			return 0, 0, err
		}
		if err := sampled.Ingest(0, deg.SampleBatch("tenant-000", batch)); err != nil {
			return 0, 0, err
		}
	}
	const flushWM = int64(1) << 40
	exact.ObserveWatermark(1, flushWM)
	sampled.ObserveWatermark(1, flushWM)
	want := exact.Advance()
	got := sampled.Advance()
	deg.Rescale(got)

	sum := func(rows telemetry.Batch) float64 {
		var s float64
		for _, r := range rows {
			if row, ok := r.Data.(*telemetry.AggRow); ok {
				s += float64(row.Count)
			}
		}
		return s
	}
	w, g := sum(want), sum(got)
	if w == 0 {
		return 0, 0, fmt.Errorf("degraded-mode bench produced no exact rows")
	}
	return 100 * math.Abs(g-w) / w, 100 * admission.RelativeErrorBound(rate, n), nil
}
