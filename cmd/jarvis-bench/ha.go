package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"jarvis/internal/benchcase"
	"jarvis/internal/checkpoint"
	"jarvis/internal/core"
	"jarvis/internal/ha"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// haBenchmarks measures the high-availability subsystem's hot paths:
// what it costs a warm standby to apply one replicated snapshot
// (decode + fold + local save + shadow-engine reload), and what an
// actual kill-the-primary failover costs end to end — wall-clock
// downtime until the promoted standby has caught up, and how many
// epochs stalled in the agent's replay buffer across the outage.
func haBenchmarks() ([]BenchRecord, error) {
	records := []BenchRecord{}

	apply, err := replicationApplyBenchmark()
	if err != nil {
		return nil, err
	}
	records = append(records, apply)

	downtime, err := failoverDowntime()
	if err != nil {
		return nil, err
	}
	return append(records, downtime...), nil
}

// replicationApplyBenchmark times Standby.ApplySnapshot on a full
// S2SProbe snapshot at the canonical warm-pipeline scale — the per-
// snapshot cost a standby pays to stay warm.
func replicationApplyBenchmark() (BenchRecord, error) {
	// State donor: an SP engine warmed with one shipped epoch.
	_, epochBytes, err := benchcase.ShippedEpoch()
	if err != nil {
		return BenchRecord{}, err
	}
	donor, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		return BenchRecord{}, err
	}
	rc := transport.NewReceiver(donor)
	rc.RegisterSource(1)
	if err := rc.HandleStream(bytes.NewReader(epochBytes)); err != nil {
		return BenchRecord{}, err
	}
	snap := &checkpoint.Snapshot{
		Seq:     1,
		Stages:  donor.SnapshotStages(),
		Sources: map[uint32]checkpoint.SourceState{1: {Watermark: 1_000_000, AppliedSeq: 1}},
	}
	var enc bytes.Buffer
	if err := snap.Encode(&enc); err != nil {
		return BenchRecord{}, err
	}

	shadow, err := core.NewProcessor(plan.S2SProbe())
	if err != nil {
		return BenchRecord{}, err
	}
	dir, err := os.MkdirTemp("", "jarvis-bench-ha-*")
	if err != nil {
		return BenchRecord{}, err
	}
	defer os.RemoveAll(dir)
	st, err := ha.NewStandby(shadow, dir, nil)
	if err != nil {
		return BenchRecord{}, err
	}
	id := uint64(0)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id++
			rep := &wire.ReplSnapshot{ID: id, Seq: id, Term: 1, Data: enc.Bytes()}
			if err := st.ApplySnapshot(rep); err != nil {
				b.Fatal(err)
			}
		}
	})
	return record("BenchmarkReplicationApply", int64(enc.Len()), r), nil
}

// failoverDowntime runs one in-process kill-the-primary failover on
// S2SProbe over loopback TCP and reports the measured downtime — the
// wall time from killing the primary until the promoted standby has
// applied every epoch the agent produced — plus the number of epochs
// that stalled in the replay buffer (shipped but not standby-durable at
// the kill).
func failoverDowntime() ([]BenchRecord, error) {
	const (
		epochs    = 8
		killAfter = 6
	)
	q := plan.S2SProbe()
	priDir, err := os.MkdirTemp("", "jarvis-bench-ha-pri-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(priDir)
	sbDir, err := os.MkdirTemp("", "jarvis-bench-ha-sb-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sbDir)

	// Primary: engine + receiver + recovery (cadence 2) + publisher.
	priEngine, err := stream.NewSPEngine(q)
	if err != nil {
		return nil, err
	}
	store, err := checkpoint.OpenStore(priDir)
	if err != nil {
		return nil, err
	}
	rlog, err := checkpoint.OpenResultLog(priDir + "/results.log")
	if err != nil {
		return nil, err
	}
	priRC := transport.NewReceiver(priEngine)
	priRC.SetHelloGate(ha.NewGate(ha.RolePrimary, 1, nil))
	rm := checkpoint.NewSPRecovery(store, rlog, priEngine, priRC, 2)
	pub := ha.NewPublisher(store, priDir+"/results.log", 1, nil)
	rm.SetReplicator(pub, 10*time.Second)
	priRC.RegisterSource(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("loopback listen unavailable: %w", err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(priRC)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Serve(ctx, ln) }()
	go func() { _ = pub.Serve(ctx, rln) }()

	// Standby.
	sbProc, err := core.NewProcessor(q)
	if err != nil {
		return nil, err
	}
	st, err := ha.NewStandby(sbProc, sbDir, nil)
	if err != nil {
		return nil, err
	}
	sbGate := ha.NewGate(ha.RoleStandby, 0, st.Counters())
	sbRC := transport.NewReceiver(sbProc.Engine())
	sbRC.SetHelloGate(sbGate)
	sbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sbSrv := transport.NewServer(sbRC)
	go func() { _ = sbSrv.Serve(ctx, sbLn) }()
	go st.Run(ctx, rln.Addr().String())

	// Agent.
	pipe, err := benchcase.WarmPipeline(0)
	if err != nil {
		return nil, err
	}
	ship := transport.NewDurableShipper(1, 64)
	endpoints := []string{ln.Addr().String(), sbLn.Addr().String()}
	if _, err := ship.ConnectAny(endpoints); err != nil {
		return nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	for e := 1; e <= killAfter; e++ {
		res := pipe.RunEpoch(gen.NextWindow(1_000_000))
		if err := ship.ShipEpoch(res); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(10 * time.Second)
		for priRC.AppliedSeq(1) < ship.Seq() {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("primary never applied epoch %d", ship.Seq())
			}
			time.Sleep(time.Millisecond)
		}
		if _, err := rm.Advance(); err != nil {
			return nil, err
		}
	}

	// Kill the primary and fail over.
	killAt := time.Now()
	_ = srv.Close()
	_ = pub.Close()
	_ = rlog.Close()
	stalled := ship.Seq() - ship.Acked()
	prm, err := st.Promote(sbRC, 2, checkpoint.DefaultRetain)
	if err != nil {
		return nil, err
	}
	sbGate.Promote(st.NextTerm())
	for e := killAfter + 1; e <= epochs; e++ {
		res := pipe.RunEpoch(gen.NextWindow(1_000_000))
		if !ship.Connected() {
			if _, err := ship.ConnectAny(endpoints); err != nil {
				return nil, err
			}
		}
		if err := ship.ShipEpoch(res); err != nil {
			return nil, err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for sbRC.AppliedSeq(1) < ship.Seq() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("standby never caught up to epoch %d", ship.Seq())
		}
		if !ship.Connected() {
			_, _ = ship.ConnectAny(endpoints)
		}
		time.Sleep(time.Millisecond)
	}
	downtime := time.Since(killAt)
	if _, err := prm.Advance(); err != nil {
		return nil, err
	}
	_ = prm.Close()
	_ = sbSrv.Close()

	return []BenchRecord{
		{Name: "FailoverDowntime", NsPerOp: float64(downtime.Nanoseconds()), Iterations: 1},
		{Name: "FailoverEpochsStalled", NsPerOp: float64(stalled), Iterations: 1},
	}, nil
}
