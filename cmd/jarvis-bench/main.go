// Command jarvis-bench regenerates the paper's evaluation tables and
// figures (§VI). Run everything with -exp all, or name a single
// experiment: fig3, fig7, fig8, fig9, fig10, fig11, latency, opcount,
// overhead. `-exp micro` runs the engine micro-benchmarks
// (BenchmarkPipelineEpoch, BenchmarkEndToEndBuildingBlock) and writes a
// machine-readable BENCH_<n>.json so the perf trajectory is tracked
// across PRs.
package main

import (
	"flag"
	"fmt"
	"os"

	"jarvis/internal/experiments"
	"jarvis/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all|fig3|fig7|fig8|fig9|fig10|fig11|latency|opcount|ablation|overhead|micro)")
	seed := flag.Uint64("seed", 7, "seed for randomized workloads")
	benchOut := flag.String("benchout", "BENCH_8.json", "output file for -exp micro results")
	obsOff := flag.Bool("obs-off", false, "disable epoch-lifecycle timing (obs.SetEnabled(false)) for A/B overhead runs")
	flag.Parse()

	if *obsOff {
		obs.SetEnabled(false)
	}

	if *exp == "micro" {
		if err := runMicro(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "jarvis-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, seed uint64) error {
	all := exp == "all"
	ran := false

	if all || exp == "fig3" {
		ran = true
		r, err := experiments.Fig3()
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "fig7" {
		ran = true
		results, err := experiments.Fig7All()
		if err != nil {
			return err
		}
		for _, name := range []string{"s2s", "t2t", "log"} {
			fmt.Println(results[name])
		}
	}
	if all || exp == "fig8" {
		ran = true
		for _, f := range []func() (*experiments.Fig8Result, error){
			experiments.Fig8S2S, experiments.Fig8T2T, experiments.Fig8Log,
		} {
			r, err := f()
			if err != nil {
				return err
			}
			fmt.Println(r)
		}
	}
	if all || exp == "fig9" {
		ran = true
		r, err := experiments.Fig9(seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "fig10" {
		ran = true
		results, err := experiments.Fig10All()
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}
	if all || exp == "fig11" {
		ran = true
		results, err := experiments.Fig11All()
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}
	if all || exp == "latency" {
		ran = true
		r, err := experiments.Latency()
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "opcount" {
		ran = true
		r, err := experiments.OpCount()
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "ablation" {
		ran = true
		r, err := experiments.Ablation(0.60)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if all || exp == "overhead" {
		ran = true
		r, err := experiments.Overhead()
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
