package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"jarvis/internal/benchcase"
	"jarvis/internal/telemetry"
)

// BenchRecord is one micro-benchmark's machine-readable result.
type BenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	Iterations  int     `json:"iterations"`
}

// runMicro executes the canonical engine micro-benchmarks (the exact
// setups of the repository's BenchmarkPipelineEpoch and
// BenchmarkEndToEndBuildingBlock, via internal/benchcase, plus the
// legacy record path for the A/B ratio) and writes them to outPath as
// JSON.
func runMicro(outPath string) error {
	records := []BenchRecord{}
	for _, c := range []struct {
		name   string
		legacy bool
	}{
		{"BenchmarkPipelineEpoch", false},
		{"BenchmarkPipelineEpochLegacy", true},
	} {
		pipe, batch, err := benchcase.PipelineEpoch(c.legacy)
		if err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pipe.RunEpoch(batch)
			}
		})
		records = append(records, record(c.name, batch.TotalBytes(), r))
	}

	bb, batch, err := benchcase.EndToEnd()
	if err != nil {
		return err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bb.RunEpoch([]telemetry.Batch{batch}); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkEndToEndBuildingBlock", batch.TotalBytes(), r))

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	for _, r := range records {
		fmt.Printf("%-32s %12.0f ns/op %10d B/op %8d allocs/op %8.1f MB/s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MBPerSec)
	}
	fmt.Println("wrote", outPath)
	return nil
}

func record(name string, totalBytes int64, r testing.BenchmarkResult) BenchRecord {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	mbps := 0.0
	if nsPerOp > 0 {
		mbps = float64(totalBytes) / nsPerOp * 1e9 / 1e6
	}
	return BenchRecord{
		Name:        name,
		NsPerOp:     nsPerOp,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		MBPerSec:    mbps,
		Iterations:  r.N,
	}
}
