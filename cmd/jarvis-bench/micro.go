package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"testing"

	"jarvis/internal/benchcase"
	"jarvis/internal/checkpoint"
	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/sim"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
	"jarvis/internal/workload/spec"
)

// BenchRecord is one micro-benchmark's machine-readable result.
type BenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	Iterations  int     `json:"iterations"`
}

// runMicro executes the canonical engine micro-benchmarks (the exact
// setups of the repository's BenchmarkPipelineEpoch and
// BenchmarkEndToEndBuildingBlock, via internal/benchcase, plus the
// legacy record path for the A/B ratio) and writes them to outPath as
// JSON.
func runMicro(outPath string) error {
	records := []BenchRecord{}
	for _, c := range []struct {
		name   string
		legacy bool
	}{
		{"BenchmarkPipelineEpoch", false},
		{"BenchmarkPipelineEpochLegacy", true},
	} {
		pipe, batch, err := benchcase.PipelineEpoch(c.legacy)
		if err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pipe.RunEpoch(batch)
			}
		})
		records = append(records, record(c.name, batch.TotalBytes(), r))
	}

	pipeCol, cbCol, err := benchcase.PipelineEpochColumnar()
	if err != nil {
		return err
	}
	rc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipeCol.RunEpochColumnar(cbCol)
		}
	})
	records = append(records, record("BenchmarkAgentEpochColumnar", cbCol.TotalBytes(), rc))

	bb, batch, err := benchcase.EndToEnd()
	if err != nil {
		return err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bb.RunEpoch([]telemetry.Batch{batch}); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkEndToEndBuildingBlock", batch.TotalBytes(), r))

	ingest, err := spIngestBenchmarks()
	if err != nil {
		return err
	}
	records = append(records, ingest...)

	ckpt, err := checkpointBenchmarks()
	if err != nil {
		return err
	}
	records = append(records, ckpt...)

	haRecs, err := haBenchmarks()
	if err != nil {
		return err
	}
	records = append(records, haRecs...)

	wireRecs, err := wireBytesRecords()
	if err != nil {
		return err
	}
	records = append(records, wireRecs...)

	obsRecs, err := obsOverheadRecords()
	if err != nil {
		return err
	}
	records = append(records, obsRecs...)

	flightRecs, err := flightOverheadRecords()
	if err != nil {
		return err
	}
	records = append(records, flightRecs...)

	admRecs, err := admissionBenchmarks()
	if err != nil {
		return err
	}
	records = append(records, admRecs...)

	simRecs, err := clusterSimRecords()
	if err != nil {
		return err
	}
	records = append(records, simRecs...)

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	for _, r := range records {
		fmt.Printf("%-32s %12.0f ns/op %10d B/op %8d allocs/op %8.1f MB/s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MBPerSec)
	}
	fmt.Println("wrote", outPath)
	return nil
}

// spIngestBenchmarks measures the SP-side ingest of one epoch-scale
// drain through the full S2SProbe plan, on the row path and on the
// columnar (SoA) path — the PR 5 headline A/B (identical record
// sequences, see benchcase.SPIngest).
func spIngestBenchmarks() ([]BenchRecord, error) {
	records := []BenchRecord{}

	rowEngine, batch, _, err := benchcase.SPIngest()
	if err != nil {
		return nil, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rowEngine.Ingest(0, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkSPIngest", batch.TotalBytes(), r))

	colEngine, _, cb, err := benchcase.SPIngest()
	if err != nil {
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := colEngine.IngestColumnar(0, cb); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkSPIngestColumnar", batch.TotalBytes(), r))

	// The same A/B on the distributed-tracing workload: TraceSpanAgg over
	// one second of SpanGen drain, rows vs identical records as SoA.
	rowSpan, spanBatch, _, err := benchcase.SpanIngest()
	if err != nil {
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rowSpan.Ingest(0, spanBatch); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkSPIngestSpans", spanBatch.TotalBytes(), r))

	colSpan, _, spanCB, err := benchcase.SpanIngest()
	if err != nil {
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := colSpan.IngestColumnar(0, spanCB); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkSPIngestSpansColumnar", spanBatch.TotalBytes(), r))
	return records, nil
}

// clusterSimRecords measures the cluster simulator's wall-clock
// throughput: a 500-node four-workload spec run to completion on the
// shared virtual clock. NsPerOp carries node-epochs per wall second;
// the speedup record is virtual seconds per wall second.
func clusterSimRecords() ([]BenchRecord, error) {
	doc := []byte(`{
  "name": "bench-500",
  "seed": 17,
  "epochs": 3,
  "groups": [
    {"name": "ping", "query": "s2s", "nodes": 200, "rate_mbps": 0.02},
    {"name": "tor", "query": "t2t", "nodes": 100, "rate_mbps": 0.02},
    {"name": "logs", "query": "log", "nodes": 100, "rate_mbps": 0.02},
    {"name": "traces", "query": "spans", "nodes": 100, "rate_mbps": 0.02}
  ]
}`)
	s, err := spec.Parse(doc)
	if err != nil {
		return nil, err
	}
	sc, err := s.Compile()
	if err != nil {
		return nil, err
	}
	c, err := sim.NewCluster(sim.ClusterConfig{Scenario: sc})
	if err != nil {
		return nil, err
	}
	res, err := c.Run()
	if err != nil {
		return nil, err
	}
	return []BenchRecord{
		{
			Name:       "ClusterSimNodeEpochsPerSec@500x4q",
			NsPerOp:    res.NodeEpochsPerSec,
			Iterations: res.Nodes,
		},
		{
			Name:       "ClusterSimVirtualSpeedup@500x4q",
			NsPerOp:    res.VirtualSeconds / res.WallSeconds,
			Iterations: res.Epochs,
		},
	}, nil
}

// checkpointBenchmarks measures the fault-tolerance subsystem's hot
// paths: the full per-epoch durable snapshot (what -checkpoint-every 1
// costs on top of an epoch — the ≤5%-of-epoch-time budget), the restore
// path, and applying one replayed epoch on the SP.
func checkpointBenchmarks() ([]BenchRecord, error) {
	records := []BenchRecord{}

	// Snapshot: Pipeline.Checkpoint + encode + atomic durable save, the
	// exact work AgentRecovery.AfterEpoch does each cadence.
	pipe, err := benchcase.WarmPipeline(3)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "jarvis-bench-ckpt-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	var snapBytes int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cp := pipe.Checkpoint(int64(i))
			snap := &checkpoint.Snapshot{
				Seq:       uint64(i),
				Watermark: cp.Watermark,
				Stages:    cp.Stages,
				Factors:   pipe.LoadFactors(),
			}
			if _, err := store.Save(snap); err != nil {
				b.Fatal(err)
			}
			if snapBytes == 0 {
				var buf bytes.Buffer
				_ = snap.Encode(&buf)
				snapBytes = int64(buf.Len())
			}
		}
	})
	saveRec := record("BenchmarkCheckpointSave", snapBytes, r)
	records = append(records, saveRec)
	// The per-epoch snapshot overhead at the default cadence — the number
	// the ≤5%-of-epoch-time budget is checked against.
	records = append(records, BenchRecord{
		Name:       fmt.Sprintf("BenchmarkCheckpointSavePerEpoch@every=%d", checkpoint.DefaultEvery),
		NsPerOp:    saveRec.NsPerOp / float64(checkpoint.DefaultEvery),
		Iterations: saveRec.Iterations,
	})

	// Restore: decode the newest snapshot and fold it into a pipeline.
	snap, ok, err := store.Latest()
	if err != nil || !ok {
		return nil, fmt.Errorf("no snapshot to restore (err=%v)", err)
	}
	var enc bytes.Buffer
	if err := snap.Encode(&enc); err != nil {
		return nil, err
	}
	fresh, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(1.0, 0))
	if err != nil {
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := checkpoint.DecodeSnapshot(bytes.NewReader(enc.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			cp := &stream.Checkpoint{Epoch: int64(got.Seq), Watermark: got.Watermark, Stages: got.Stages}
			if err := fresh.RestoreCheckpoint(cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkCheckpointRestore", int64(enc.Len()), r))

	// Replay: apply one encoded epoch to an SP engine through the
	// receiver (the per-epoch cost of catching up after a restart).
	_, epochBytes, err := benchcase.ShippedEpoch()
	if err != nil {
		return nil, err
	}
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		return nil, err
	}
	rc := transport.NewReceiver(engine)
	rc.RegisterSource(1)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rc.HandleStream(bytes.NewReader(epochBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	records = append(records, record("BenchmarkEpochReplay", int64(len(epochBytes)), r))

	// Decode only: the wire-level cost of materializing one shipped
	// epoch's frames, isolated from operator ingest.
	fr := wire.NewFrameReader(bytes.NewReader(epochBytes))
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fr.Reset(bytes.NewReader(epochBytes))
			for {
				_, err := fr.ReadFrame()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	records = append(records, record("BenchmarkReceiverDecode", int64(len(epochBytes)), r))

	delta, err := deltaSnapshotBenchmark()
	if err != nil {
		return nil, err
	}
	records = append(records, delta...)
	return records, nil
}

// deltaSnapshotBenchmark measures what `-checkpoint-every 1` costs per
// epoch with incremental snapshots, on the workload every-epoch
// checkpointing is designed for: an aggregation-heavy query whose
// epochs fold tens of thousands of records into a few thousand hot
// groups (LogAnalytics — ~47k lines/epoch into ~2k (tenant, stat,
// bucket) groups). After each pipeline epoch, only the dirtied groups
// are captured and saved as a delta chained onto the previous snapshot;
// just the capture+save is timed. The companion record
// BenchmarkPipelineEpochLog is the same query's epoch cost, and
// DeltaSnapshotOverhead@every=1 is their ratio — the ROADMAP bound is
// ≤ 5%. (Probe queries, where nearly every record opens or touches a
// distinct group, keep the default 32-epoch cadence: for them a delta
// is almost the full state, see BenchmarkCheckpointSave.)
func deltaSnapshotBenchmark() ([]BenchRecord, error) {
	pipe, err := stream.NewPipeline(plan.LogAnalytics(), stream.DefaultOptions(4.0, 0))
	if err != nil {
		return nil, err
	}
	ones := make([]float64, len(pipe.Query().Ops))
	for i := range ones {
		ones[i] = 1
	}
	if err := pipe.SetLoadFactors(ones); err != nil {
		return nil, err
	}
	gen := workload.NewLogGen(workload.DefaultLogConfig(1))
	var epochBatch telemetry.Batch
	for i := 0; i < 3; i++ {
		epochBatch = gen.NextWindow(1_000_000)
		pipe.RunEpoch(epochBatch)
	}

	// The same query's epoch cost, the denominator of the overhead bound.
	// Workload generation runs outside the timer, matching
	// BenchmarkPipelineEpoch's convention of timing RunEpoch alone.
	re := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			in := gen.NextWindow(1_000_000)
			b.StartTimer()
			pipe.RunEpoch(in)
		}
	})
	epochRec := record("BenchmarkPipelineEpochLog", epochBatch.TotalBytes(), re)

	var store *checkpoint.Store
	var lastID uint64
	var deltaBytes int64
	newStore := func() error {
		dir, err := os.MkdirTemp("", "jarvis-bench-delta-*")
		if err != nil {
			return err
		}
		store, err = checkpoint.OpenStore(dir)
		if err != nil {
			return err
		}
		cp := pipe.Checkpoint(0)
		pipe.MarkSnapshotClean()
		lastID, err = store.Save(&checkpoint.Snapshot{Seq: 0, Watermark: cp.Watermark, Stages: cp.Stages})
		return err
	}
	if err := newStore(); err != nil {
		return nil, err
	}
	defer func() {
		_ = store.Close()
		_ = os.RemoveAll(store.Dir())
	}()
	epoch := uint64(0)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if i%64 == 0 && i > 0 {
				// Bound the store directory: start a fresh chain so the
				// benchmark's disk footprint stays flat.
				old, oldDir := store, store.Dir()
				if err := newStore(); err != nil {
					b.Fatal(err)
				}
				_ = old.Close()
				_ = os.RemoveAll(oldDir)
			}
			pipe.RunEpoch(gen.NextWindow(1_000_000))
			epoch++
			b.StartTimer()
			cp := pipe.CheckpointDelta(int64(epoch))
			snap := &checkpoint.Snapshot{
				Seq: epoch, Watermark: cp.Watermark, Stages: cp.Stages,
				Factors: pipe.LoadFactors(),
				Delta:   true, BaseID: lastID, Meta: cp.Meta,
			}
			id, err := store.Save(snap)
			if err != nil {
				b.Fatal(err)
			}
			lastID = id
			if deltaBytes == 0 {
				var buf bytes.Buffer
				_ = snap.Encode(&buf)
				deltaBytes = int64(buf.Len())
			}
		}
	})
	saveRec := record("BenchmarkDeltaSnapshotSave", deltaBytes, r)
	ratio := BenchRecord{
		Name:       "DeltaSnapshotOverhead@every=1",
		NsPerOp:    100 * saveRec.NsPerOp / epochRec.NsPerOp, // percent of the query's epoch
		Iterations: saveRec.Iterations,
	}
	return []BenchRecord{epochRec, saveRec, ratio}, nil
}

// obsOverheadRecords quantifies the observability tax on the hottest
// instrumented loop: warm columnar SP ingest with epoch-lifecycle
// timing on vs. off (obs.SetEnabled(false), what -obs-off selects
// process-wide). Min-of-3 on each side filters scheduler noise; the
// budget is <=3% and ObsOverheadPct lands in the bench JSON so CI can
// watch it. NsPerOp carries the percentage, not a duration.
func obsOverheadRecords() ([]BenchRecord, error) {
	wasEnabled := obs.Enabled()
	defer obs.SetEnabled(wasEnabled)
	run := func() (float64, error) {
		engine, _, cb, err := benchcase.SPIngest()
		if err != nil {
			return 0, err
		}
		best := math.Inf(1)
		for t := 0; t < 3; t++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := engine.IngestColumnar(0, cb); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < best {
				best = ns
			}
		}
		return best, nil
	}
	obs.SetEnabled(true)
	on, err := run()
	if err != nil {
		return nil, err
	}
	obs.SetEnabled(false)
	off, err := run()
	if err != nil {
		return nil, err
	}
	return []BenchRecord{{
		Name:    "ObsOverheadPct",
		NsPerOp: 100 * (on - off) / off,
	}}, nil
}

// flightOverheadRecords quantifies what the always-armed observability
// closure costs on the receiver's frame path: the same encoded epoch
// replayed through HandleStream with an armed flight recorder (one
// bounded memcpy per frame into the connection ring) plus the epoch
// trace join, versus the same receiver unarmed. This is the worst case
// for the recorder — the replay stream dedups after the first apply, so
// the capture is not amortized by operator ingest — and the budget is
// still <=3%. NsPerOp carries the percentage, not a duration.
func flightOverheadRecords() ([]BenchRecord, error) {
	_, epochBytes, err := benchcase.ShippedEpoch()
	if err != nil {
		return nil, err
	}
	run := func(armed bool) (float64, error) {
		engine, err := stream.NewSPEngine(plan.S2SProbe())
		if err != nil {
			return 0, err
		}
		rc := transport.NewReceiver(engine)
		rc.RegisterSource(1)
		if armed {
			rc.SetFlightRecorder(transport.NewFlightRecorder(rc.Counters()))
		}
		best := math.Inf(1)
		for t := 0; t < 3; t++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := rc.HandleStream(bytes.NewReader(epochBytes)); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < best {
				best = ns
			}
		}
		return best, nil
	}
	armed, err := run(true)
	if err != nil {
		return nil, err
	}
	unarmed, err := run(false)
	if err != nil {
		return nil, err
	}
	return []BenchRecord{{
		Name:    "FlightRecorderOverheadPct",
		NsPerOp: 100 * (armed - unarmed) / unarmed,
	}}, nil
}

func record(name string, totalBytes int64, r testing.BenchmarkResult) BenchRecord {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	mbps := 0.0
	if nsPerOp > 0 {
		mbps = float64(totalBytes) / nsPerOp * 1e9 / 1e6
	}
	return BenchRecord{
		Name:        name,
		NsPerOp:     nsPerOp,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		MBPerSec:    mbps,
		Iterations:  r.N,
	}
}

// wireBytesRecords measures bytes-on-wire per shipped agent epoch for
// each canonical query: the SoA pipeline's epochs are shipped as wire-v2
// columnar frames, once as-is and once with per-frame flate compression
// (the negotiated default between current builds). Six epochs at
// half-open load factors exercise drains at every shippable stage plus
// window flushes; the ratio record is uncompressed/compressed.
func wireBytesRecords() ([]BenchRecord, error) {
	t2tTable := func() *telemetry.ToRTable {
		ips := []uint32{workload.DefaultPingConfig(7).SrcIP}
		for i := 0; i < 2000; i++ {
			ips = append(ips, 0x0B000000+uint32(i))
		}
		return telemetry.NewToRTable(ips, 40)
	}
	pingCols := func() func(cb *wire.ColumnarBatch) {
		g := workload.NewPingGen(workload.DefaultPingConfig(7))
		return func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
	}
	cases := []struct {
		name   string
		query  func() *plan.Query
		colGen func() func(cb *wire.ColumnarBatch)
	}{
		{"S2SProbe", plan.S2SProbe, pingCols},
		{"T2TProbe", func() *plan.Query { return plan.T2TProbe(t2tTable()) }, pingCols},
		{"S2SQuantile", plan.S2SQuantileProbe, pingCols},
		{"LogAnalytics", plan.LogAnalytics, func() func(cb *wire.ColumnarBatch) {
			g := workload.NewLogGen(workload.DefaultLogConfig(7))
			return func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
		}},
	}
	records := []BenchRecord{}
	for _, c := range cases {
		pipe, err := stream.NewPipeline(c.query(), stream.DefaultOptions(4.0, 0))
		if err != nil {
			return nil, err
		}
		lf := make([]float64, len(pipe.Query().Ops))
		for i := range lf {
			lf[i] = 0.5
		}
		if c.name == "T2TProbe" {
			// The dstToR join's input is an intermediate payload with no
			// wire encoding; epochs never drain at that stage.
			lf[3] = 1
		}
		if err := pipe.SetLoadFactors(lf); err != nil {
			return nil, err
		}
		var plainBuf, flateBuf bytes.Buffer
		plainSh := transport.NewShipper(1, &plainBuf)
		plainSh.EnableColumnar()
		flateSh := transport.NewShipper(1, &flateBuf)
		flateSh.EnableColumnar()
		flateSh.EnableCompression()
		colGen := c.colGen()
		var cb wire.ColumnarBatch
		for epoch := 0; epoch < 6; epoch++ {
			cb.Reset()
			colGen(&cb)
			res := pipe.RunEpochColumnar(&cb)
			if err := plainSh.ShipEpoch(res); err != nil {
				return nil, err
			}
			if err := flateSh.ShipEpoch(res); err != nil {
				return nil, err
			}
		}
		plain, comp := int64(plainBuf.Len()), int64(flateBuf.Len())
		ratio := 0.0
		if comp > 0 {
			ratio = float64(plain) / float64(comp)
		}
		records = append(records,
			BenchRecord{Name: "WireEpochBytes@" + c.name, BytesPerOp: plain, Iterations: 6},
			BenchRecord{Name: "WireEpochBytesFlate@" + c.name, BytesPerOp: comp, Iterations: 6},
			BenchRecord{Name: "WireCompressionRatio@" + c.name, NsPerOp: ratio, Iterations: 6},
		)
	}
	return records, nil
}
