// Command jarvis-sim runs the deterministic simulators.
//
// Without -spec it runs the epoch-level convergence simulator: a
// single data source under a scripted resource scenario, tracing the
// Jarvis runtime's phases and states per epoch (the raw data behind
// Fig. 8).
//
// With -spec it runs the cluster simulator: a declarative workload
// spec compiled to hundreds or thousands of real agent pipelines
// shipping wire-v2 epochs into real SP engines under one shared
// virtual clock — no goroutines, no wall-clock sleeps, byte-identical
// result logs and decision traces on every run of the same spec.
//
// Usage:
//
//	jarvis-sim -query s2s -budget 0.1 -epochs 30 \
//	    -event 3:budget=0.9 -event 18:budget=0.6 -variant jarvis
//
//	jarvis-sim -spec cluster.json -nodes 1000 -checkpoint-dir /tmp/ckpt \
//	    -replay s2s=traffic.capture
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"jarvis/internal/experiments"
	"jarvis/internal/runtime"
	"jarvis/internal/sim"
	"jarvis/internal/workload/spec"
)

type eventFlags []string

func (e *eventFlags) String() string     { return strings.Join(*e, ",") }
func (e *eventFlags) Set(v string) error { *e = append(*e, v); return nil }

func main() {
	queryName := flag.String("query", "s2s", "query to simulate (s2s|t2t|log)")
	budget := flag.Float64("budget", 0.1, "initial CPU budget fraction")
	epochs := flag.Int("epochs", 30, "epochs to simulate")
	variant := flag.String("variant", "jarvis", "runtime variant (jarvis|lponly|nolpinit)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	specPath := flag.String("spec", "", "cluster mode: workload spec JSON (see internal/workload/spec)")
	nodes := flag.Int("nodes", 0, "cluster mode: rescale the spec to this many total nodes")
	checkpointDir := flag.String("checkpoint-dir", "", "cluster mode: durable SP checkpoints under this directory")
	resultLogs := flag.Bool("result-logs", false, "cluster mode: print each SP's canonical result log")
	var events, replays eventFlags
	flag.Var(&events, "event", "scripted change, e.g. 3:budget=0.9 or 12:opcost=2x3.0 (epoch:kind=value)")
	flag.Var(&replays, "replay", "cluster mode: recorded traffic capture as arrival source, query=path (repeatable)")
	flag.Parse()

	var err error
	if *specPath != "" {
		err = runCluster(*specPath, *nodes, *checkpointDir, *resultLogs, replays)
	} else {
		err = run(*queryName, *budget, *epochs, *variant, *seed, events)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-sim:", err)
		os.Exit(1)
	}
}

// runCluster compiles a workload spec and drives the shared-clock
// cluster simulation, printing the run summary and determinism digest.
func runCluster(specPath string, nodes int, checkpointDir string, printLogs bool, replays []string) error {
	doc, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	s, err := spec.Parse(doc)
	if err != nil {
		return err
	}
	if nodes > 0 {
		s.ScaleNodes(nodes)
	}
	sc, err := s.Compile()
	if err != nil {
		return err
	}
	cfg := sim.ClusterConfig{Scenario: sc, CheckpointDir: checkpointDir}
	for _, r := range replays {
		query, path, ok := strings.Cut(r, "=")
		if !ok {
			return fmt.Errorf("bad -replay %q (want query=path)", r)
		}
		capture, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		cfg.Replay = append(cfg.Replay, sim.ReplaySource{Query: query, Capture: capture})
	}
	c, err := sim.NewCluster(cfg)
	if err != nil {
		return err
	}
	res, err := c.Run()
	if err != nil {
		return err
	}

	fmt.Printf("spec %s: %d nodes, %d epochs (%.0fs virtual)\n",
		s.Name, res.Nodes, res.Epochs, res.VirtualSeconds)
	fmt.Printf("wall %.2fs, %.0f node-epochs/sec, %d events\n",
		res.WallSeconds, res.NodeEpochsPerSec, res.Events)
	fmt.Printf("rows %d, failovers %d, epochs delayed %d, degraded %d\n",
		res.Rows, res.Failovers, res.EpochsDelayed, res.EpochsDegraded)
	names := make([]string, 0, len(res.ResultLogs))
	for name := range res.ResultLogs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		log := res.ResultLogs[name]
		fmt.Printf("  sp %-12s %6d bytes result log\n", name, len(log))
		if printLogs {
			os.Stdout.Write(log)
		}
	}
	return nil
}

func run(queryName string, budget float64, epochs int, variant string, seed uint64, eventSpecs []string) error {
	q, rate, err := experiments.QueryByName(queryName)
	if err != nil {
		return err
	}
	cfg := sim.DefaultNodeConfig(q, rate, budget)
	cfg.Seed = seed
	node, err := sim.NewNode(cfg)
	if err != nil {
		return err
	}
	var rc runtime.Config
	switch strings.ToLower(variant) {
	case "jarvis":
		rc = runtime.Defaults()
	case "lponly":
		rc = runtime.LPOnly()
	case "nolpinit":
		rc = runtime.NoLPInit()
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	events, err := parseEvents(eventSpecs)
	if err != nil {
		return err
	}
	trace, err := sim.Run(node, rc, epochs, events)
	if err != nil {
		return err
	}
	fmt.Printf("query %s, rate %.1f Mbps, %d epochs, variant %s\n", q.Name, rate, epochs, variant)
	fmt.Println("epoch  state      phase    tput(Mbps)  out(Mbps)  lat(s)  factors")
	for _, e := range trace {
		fmt.Printf("%5d  %-9v  %-7v  %9.2f  %8.2f  %6.2f  %s\n",
			e.Epoch, e.State, e.Phase, e.ThroughputMbps, e.OutMbps, e.LatencySec,
			fmtFactors(e.Factors))
	}
	printSummary(trace)
	return nil
}

// printSummary condenses the trace into the numbers the figures report:
// how long the runtime took to stabilize, how the epochs distributed
// across proxy states, and the converged throughput.
func printSummary(trace sim.Trace) {
	const hold = 3
	stateEpochs := map[string]int{}
	profiled := 0
	for _, e := range trace {
		stateEpochs[e.State.String()]++
		if e.Profiled {
			profiled++
		}
	}
	fmt.Println("--- summary ---")
	fmt.Printf("epochs %d, profiling epochs %d\n", len(trace), profiled)
	keys := make([]string, 0, len(stateEpochs))
	for k := range stateEpochs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-9s %d epochs\n", k, stateEpochs[k])
	}
	if at := trace.ConvergedAt(0, hold); at >= 0 {
		fmt.Printf("converged at epoch %d (stable for %d epochs); mean throughput after: %.2f Mbps\n",
			at, hold, trace.MeanThroughput(at, len(trace)))
	} else {
		fmt.Printf("did not converge (%d-epoch stability window)\n", hold)
	}
}

func parseEvents(specs []string) ([]sim.Event, error) {
	var out []sim.Event
	for _, spec := range specs {
		epochStr, rest, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("bad event %q (want epoch:kind=value)", spec)
		}
		epoch, err := strconv.Atoi(epochStr)
		if err != nil {
			return nil, fmt.Errorf("bad event epoch in %q: %w", spec, err)
		}
		kind, value, ok := strings.Cut(rest, "=")
		if !ok {
			return nil, fmt.Errorf("bad event body %q", rest)
		}
		ev := sim.Event{Epoch: epoch}
		switch kind {
		case "budget":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, err
			}
			ev.BudgetFrac = &v
		case "rate":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, err
			}
			ev.RateMbps = &v
		case "opcost": // opcost=<opIdx>x<factor>
			idxStr, facStr, ok := strings.Cut(value, "x")
			if !ok {
				return nil, fmt.Errorf("bad opcost %q (want IDXxFACTOR)", value)
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil {
				return nil, err
			}
			fac, err := strconv.ParseFloat(facStr, 64)
			if err != nil {
				return nil, err
			}
			ev.ScaleOpCost = map[int]float64{idx: fac}
		case "reset":
			ev.ResetFactors = true
			ev.ClearBacklog = value == "all"
		default:
			return nil, fmt.Errorf("unknown event kind %q", kind)
		}
		out = append(out, ev)
	}
	return out, nil
}

func fmtFactors(f []float64) string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
