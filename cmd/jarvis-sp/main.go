// Command jarvis-sp runs a stream processor node: it listens for agent
// connections, merges their drained records and partial aggregates, and
// prints final query results as they complete.
//
// With -checkpoint-dir the SP runs the recovery subsystem: sequenced
// epochs are applied exactly once, engine state is snapshotted durably
// every -checkpoint-every applied epochs (agents are acked — and may
// prune their replay buffers — only after the covering snapshot is
// durable), results flow through an exactly-once result log, and on
// startup the newest consistent snapshot is restored so reconnecting
// agents replay only what the snapshot does not cover.
//
// High availability (internal/ha): a primary with -repl-listen streams
// its snapshot chain and result log to warm standbys and withholds agent
// acks until the standby confirms durability. A node started with
// -standby -peer syncs from the primary, keeps a warm shadow engine, and
// promotes itself (term bump) when the replication link has been down
// for -takeover-after; agents configured with both endpoints fail over
// to it and replay the uncovered epochs. A stale primary that rejoins is
// fenced by the term its former agents now carry.
//
// By default the SP executes wire-v2 frames directly over the decoded
// columns (-columnar-exec=false selects the row-materializing path for
// A/B comparison) and advertises flate frame compression in its acks;
// compressed frames from agents that negotiated it are decoded
// transparently.
//
// With -admit-rate the SP runs overload protection (internal/admission):
// every tenant gets a class-weighted token bucket over its logical epoch
// payload; over-budget epochs are delayed (never dropped — the agent's
// replay buffer covers shed epochs), acks carry a pacing hint back to
// the shipper, and a tenant in sustained overload degrades to sampled
// ingestion at a recorded error bound until pressure clears. Individual
// tenants get absolute overrides with repeated -admit-tenant-rate
// flags, and -admit-pressure closes the loop on measurement: tenants
// degrade only while the live ingest p99 (a windowed quantile over
// stage_latency_seconds{stage="ingest"}) exceeds the threshold, and
// promote as soon as it clears.
//
// Observability: the SP always joins agent-shipped epoch trace context
// (trailing extensions on EpochEnd) with its own decode/wait/ingest/
// snapshot/replicate/ack stamps into end-to-end traces (-obs-listen
// serves them at /trace), and arms an anomaly flight recorder — a
// bounded ring of raw wire frames per connection that dumps
// automatically on shed/degrade/failover/fencing decisions and on
// demand at /flightrecorder.
//
// Usage:
//
//	jarvis-sp -listen :7700 -query s2s -sources 1,2,3 \
//	    -checkpoint-dir /var/lib/jarvis/sp -checkpoint-every 4 \
//	    -repl-listen :7701
//	jarvis-sp -listen :7800 -query s2s -sources 1,2,3 \
//	    -checkpoint-dir /var/lib/jarvis/sp-standby \
//	    -standby -peer primary-host:7701 -takeover-after 3s
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/checkpoint"
	"jarvis/internal/core"
	"jarvis/internal/experiments"
	"jarvis/internal/ha"
	"jarvis/internal/obs"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
)

type config struct {
	listen, query, sources string
	ckptDir                string
	ckptEvery, ckptRetain  int
	ckptAsync              bool
	columnarExec           bool
	replListen             string
	standby                bool
	peer                   string
	term                   uint64
	takeoverAfter          time.Duration
	obsListen              string
	obsDecisions           string
	obsSpans               string
	obsSpanEvery           int
	admitRate              float64
	admitBurst             float64
	admitMaxDelayed        int
	admitDegradeRate       float64
	admitPressure          float64
	admitTenantRate        tenantRateFlag
	recordTraffic          string
}

// tenantRateFlag collects repeatable -admit-tenant-rate tenant=bytes/s
// overrides into a map the admission controller consumes directly.
type tenantRateFlag map[string]float64

func (f tenantRateFlag) String() string {
	parts := make([]string, 0, len(f))
	for name, rate := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", name, rate))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f tenantRateFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return fmt.Errorf("want tenant=bytes/s, got %q", s)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil || rate <= 0 {
		return fmt.Errorf("bad rate in %q: want a positive bytes/s", s)
	}
	f[name] = rate
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", ":7700", "address to accept agents on")
	flag.StringVar(&cfg.query, "query", "s2s", "query to run (s2s|t2t|log)")
	flag.StringVar(&cfg.sources, "sources", "1", "comma-separated source ids to wait for")
	flag.StringVar(&cfg.ckptDir, "checkpoint-dir", "", "durable snapshot directory (empty = no checkpointing)")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", checkpoint.DefaultEvery, "applied epochs between durable snapshots (1 = every epoch, cheap with delta snapshots)")
	flag.IntVar(&cfg.ckptRetain, "checkpoint-retain", checkpoint.DefaultRetain, "base+delta snapshot chains to keep when compacting (0 = keep all)")
	flag.BoolVar(&cfg.ckptAsync, "checkpoint-async", false, "save snapshots on a writer goroutine (acks still wait for the durable save)")
	flag.StringVar(&cfg.replListen, "repl-listen", "", "replication listener for warm standbys (primary; requires -checkpoint-dir)")
	flag.BoolVar(&cfg.standby, "standby", false, "run as a warm standby (requires -peer and -checkpoint-dir)")
	flag.StringVar(&cfg.peer, "peer", "", "primary's replication address to sync from (standby)")
	flag.Uint64Var(&cfg.term, "term", 1, "primary fencing term (epoch lease token)")
	flag.DurationVar(&cfg.takeoverAfter, "takeover-after", 3*time.Second, "standby: promote after the replication link is down this long (0 = never)")
	flag.BoolVar(&cfg.columnarExec, "columnar-exec", true, "execute wire-v2 frames over decoded columns (SoA); false selects the row-materializing path")
	flag.StringVar(&cfg.obsListen, "obs-listen", "", "introspection HTTP listener (/metrics, /status, /decisions, /debug/pprof)")
	flag.StringVar(&cfg.obsDecisions, "obs-decisions", "", "append runtime adaptation decisions to this JSONL file")
	flag.StringVar(&cfg.obsSpans, "obs-spans", "", "append sampled epoch-lifecycle spans to this JSONL file")
	flag.IntVar(&cfg.obsSpanEvery, "obs-span-every", 100, "with -obs-spans, export every Nth span per stage")
	flag.Float64Var(&cfg.admitRate, "admit-rate", 0, "per-tenant admission budget in bytes/sec of epoch payload for a weight-1 (silver) class; 0 disables admission control")
	flag.Float64Var(&cfg.admitBurst, "admit-burst", 0, "admission bucket capacity in bytes (0 = 2x -admit-rate); must exceed the largest epoch a tenant ships or that epoch can never drain")
	flag.IntVar(&cfg.admitMaxDelayed, "admit-max-delayed", 0, "delay-queue bound across all tenants before shed-and-replay (0 = default 256)")
	flag.Float64Var(&cfg.admitDegradeRate, "admit-degrade-rate", 0, "sampling rate for degraded tenants' raw records, in (0,1) (0 = default 0.25)")
	flag.Float64Var(&cfg.admitPressure, "admit-pressure", 0, "ingest p99 threshold in seconds: tenants degrade only while the live ingest p99 exceeds this, and promote once it clears (0 = bucket streaks alone decide)")
	cfg.admitTenantRate = tenantRateFlag{}
	flag.Var(cfg.admitTenantRate, "admit-tenant-rate", "absolute admission budget override `tenant=bytes/s` for one tenant, layered over -admit-rate (repeatable)")
	flag.StringVar(&cfg.recordTraffic, "record-traffic", "", "record every sequenced wire frame of every connection to this file (replayable via transport.ReplayTraffic or jarvis-sim -replay)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-sp:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	q, _, err := experiments.QueryByName(cfg.query)
	if err != nil {
		return err
	}
	proc, err := core.NewProcessor(q)
	if err != nil {
		return err
	}
	rc := transport.NewReceiver(proc.Engine())
	rc.SetColumnarExec(cfg.columnarExec)

	// Live ingest p99: a windowed quantile over the always-on
	// stage_latency_seconds{stage="ingest"} histogram. Feeds the
	// -admit-pressure gate and the /status ingest_p99_s field.
	ingestP99 := obs.NewQuantileWindow(obs.StageHistogram(obs.StageIngest), 10*time.Second, time.Second)

	var admit *admission.Controller
	if cfg.admitRate > 0 {
		acfg := admission.DefaultConfig()
		acfg.RateBytesPerSec = cfg.admitRate
		if cfg.admitBurst > 0 {
			acfg.BurstBytes = cfg.admitBurst
		} else {
			acfg.BurstBytes = 2 * cfg.admitRate
		}
		if cfg.admitMaxDelayed > 0 {
			acfg.MaxDelayedEpochs = cfg.admitMaxDelayed
		}
		if cfg.admitDegradeRate > 0 {
			acfg.DegradeRate = cfg.admitDegradeRate
		}
		if len(cfg.admitTenantRate) > 0 {
			acfg.TenantRate = cfg.admitTenantRate
		}
		if cfg.admitPressure > 0 {
			acfg.Pressure = ingestP99.P99
			acfg.PressureThreshold = cfg.admitPressure
		}
		admit = admission.NewController(acfg)
		rc.SetAdmission(admit)
		fmt.Printf("jarvis-sp: admission control on (%.0f B/s per silver tenant, burst %.0f B, degrade rate %.2f)\n",
			acfg.RateBytesPerSec, acfg.BurstBytes, acfg.DegradeRate)
		if len(cfg.admitTenantRate) > 0 {
			fmt.Printf("jarvis-sp: tenant rate overrides: %s\n", cfg.admitTenantRate)
		}
		if cfg.admitPressure > 0 {
			fmt.Printf("jarvis-sp: degradation gated on ingest p99 > %gs\n", cfg.admitPressure)
		}
	}

	// Anomaly flight recorder: always armed — capture is one bounded
	// copy per frame, and the decision-triggered dumps are rate-limited.
	fl := transport.NewFlightRecorder(rc.Counters())
	rc.SetFlightRecorder(fl)
	obs.Decisions().SetNotify(fl.OnDecision)

	// Full-fidelity traffic recording: unlike the flight ring this keeps
	// every frame, turning the live run into a deterministic replay corpus.
	if cfg.recordTraffic != "" {
		tf, err := os.Create(cfg.recordTraffic)
		if err != nil {
			return fmt.Errorf("-record-traffic: %w", err)
		}
		tw := bufio.NewWriterSize(tf, 1<<20)
		tr := transport.NewTrafficRecorder(tw)
		rc.SetTrafficRecorder(tr)
		defer func() {
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "jarvis-sp: traffic recorder:", err)
			}
			if err := tw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "jarvis-sp: traffic flush:", err)
			}
			tf.Close()
		}()
		fmt.Printf("jarvis-sp: recording traffic to %s\n", cfg.recordTraffic)
	}

	var (
		rm   *checkpoint.SPRecovery
		st   *ha.Standby
		pub  *ha.Publisher
		gate *ha.Gate
	)
	if cfg.standby {
		if cfg.ckptDir == "" || cfg.peer == "" {
			return fmt.Errorf("-standby requires -checkpoint-dir and -peer")
		}
		if cfg.replListen != "" {
			// Serving replicas from a (possibly promoted) standby is a
			// manual hand-off today (see the ROADMAP follow-on); refusing
			// the flag beats silently dropping it.
			return fmt.Errorf("-repl-listen is not supported with -standby: point new standbys at the promoted node explicitly")
		}
		gate = ha.NewGate(ha.RoleStandby, 0, nil)
		st, err = ha.NewStandby(proc, cfg.ckptDir, gate.Counters())
		if err != nil {
			return err
		}
	} else if cfg.ckptDir != "" {
		store, err := checkpoint.OpenStore(cfg.ckptDir)
		if err != nil {
			return err
		}
		rlog, err := checkpoint.OpenResultLog(filepath.Join(cfg.ckptDir, "results.log"))
		if err != nil {
			return err
		}
		defer rlog.Close()
		rm = checkpoint.NewSPRecovery(store, rlog, proc.Engine(), rc, cfg.ckptEvery)
		rm.SetRetention(cfg.ckptRetain)
		rm.SetAsync(cfg.ckptAsync)
		restored, err := rm.Restore()
		if err != nil {
			return err
		}
		if restored {
			fmt.Printf("jarvis-sp: restored snapshot (result log at %d rows, watermark %d µs)\n",
				rlog.Rows(), rlog.EmittedWM())
		}
		// Resume at the highest term this node ever reached: a restarted
		// promoted standby must not fall back to the flag default and get
		// fenced by its own agents.
		term := cfg.term
		if rt := rm.RestoredTerm(); rt > term {
			term = rt
			fmt.Printf("jarvis-sp: resuming at restored term %d\n", term)
		}
		rm.SetTerm(term)
		gate = ha.NewGate(ha.RolePrimary, term, nil)
		if cfg.replListen != "" {
			pub = ha.NewPublisher(store, filepath.Join(cfg.ckptDir, "results.log"), term, gate.Counters())
			rm.SetReplicator(pub, 0)
		}
	} else if cfg.replListen != "" {
		return fmt.Errorf("-repl-listen requires -checkpoint-dir")
	} else {
		gate = ha.NewGate(ha.RolePrimary, cfg.term, nil)
	}
	rc.SetHelloGate(gate)

	if cfg.obsDecisions != "" {
		f, err := os.OpenFile(cfg.obsDecisions, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		obs.Decisions().SetSink(f)
	}
	if cfg.obsSpans != "" {
		f, err := os.OpenFile(cfg.obsSpans, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		obs.SetSpanSink(f, cfg.obsSpanEvery)
	}
	if cfg.obsListen != "" {
		osrv := obs.NewServer()
		osrv.AddRegistry(rc.Counters(), gate.Counters())
		if admit != nil {
			osrv.AddRegistry(admit.Counters())
		}
		osrv.Handle("/flightrecorder", fl.ServeHTTP)
		osrv.SetStatus(func() any {
			st := map[string]any{
				"role":          gate.Role().String(),
				"term":          gate.Term(),
				"query":         cfg.query,
				"wire_version":  rc.MaxVersion(),
				"compression":   rc.CompressionEnabled(),
				"bytes_in":      rc.BytesIn(),
				"frames_in":     rc.Frames(),
				"watermark_us":  proc.Engine().EffectiveWatermark(),
				"ingest_p99_s":  ingestP99.P99(),
				"traces_joined": obs.Traces().Total(),
			}
			if meta, ok := fl.LastDump(); ok {
				st["flight_last"] = map[string]any{
					"reason": meta.Reason, "seq": meta.Seq, "ts_us": meta.TsMicros,
				}
			}
			wms := map[string]int64{}
			proc.Engine().SourceWatermarks(func(src uint32, wm int64) {
				wms[strconv.FormatUint(uint64(src), 10)] = wm
			})
			st["source_watermarks_us"] = wms
			if admit != nil {
				st["admission"] = admit.Snapshot()
			}
			if pub != nil {
				st["replication_lag_epochs"] = pub.Lag()
				st["standbys"] = pub.Standbys()
			}
			return st
		})
		addr, err := osrv.Start(cfg.obsListen)
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Printf("jarvis-sp: introspection on http://%s/metrics\n", addr)
	}

	for _, tok := range strings.Split(cfg.sources, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
		if err != nil {
			return fmt.Errorf("bad source id %q: %w", tok, err)
		}
		rc.RegisterSource(uint32(id))
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	fmt.Printf("jarvis-sp: %s on %s as %s, waiting for sources [%s]\n",
		q.Name, ln.Addr(), gate.Role(), cfg.sources)

	srv := transport.NewServer(rc)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if pub != nil {
		rln, err := net.Listen("tcp", cfg.replListen)
		if err != nil {
			return err
		}
		fmt.Printf("jarvis-sp: replicating to standbys on %s (term %d)\n", rln.Addr(), gate.Term())
		go func() { _ = pub.Serve(ctx, rln) }()
	}
	if st != nil {
		go st.Run(ctx, cfg.peer)
		fmt.Printf("jarvis-sp: standby syncing from %s (takeover after %v)\n", cfg.peer, cfg.takeoverAfter)
	}

	advance := func() (telemetry.Batch, error) {
		if rm != nil {
			return rm.Advance()
		}
		return rc.Advance(), nil
	}
	fenced := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				if rm != nil {
					// Final snapshot so a clean shutdown loses nothing.
					if err := rm.Snapshot(); err != nil {
						fmt.Fprintln(os.Stderr, "jarvis-sp: final snapshot:", err)
					}
					_ = rm.Close()
				}
				fmt.Printf("jarvis-sp: transport counters: %s\n", rc.Counters())
				fmt.Printf("jarvis-sp: ha counters: %s\n", gate.Counters())
				return
			case <-ticker.C:
				// Keep the ingest-p99 window rotating even when nothing
				// polls it (snapshots are lazy, one per interval).
				ingestP99.Tick()
				switch gate.Role() {
				case ha.RoleFenced:
					// A newer primary exists: stop emitting and shut down.
					fmt.Fprintf(os.Stderr, "jarvis-sp: fenced at term %d — a newer primary was promoted\n", gate.Term())
					close(fenced)
					return
				case ha.RoleStandby:
					// The shadow engine only mirrors the primary; advancing
					// it would emit rows the primary owns. Watch the link
					// and promote when the takeover policy says so.
					if cfg.takeoverAfter > 0 && st.DownFor() > cfg.takeoverAfter {
						prm, perr := st.Promote(rc, cfg.ckptEvery, cfg.ckptRetain)
						if perr != nil {
							fmt.Fprintln(os.Stderr, "jarvis-sp: promote:", perr)
							continue
						}
						rm = prm
						rm.SetAsync(cfg.ckptAsync)
						gate.Promote(st.NextTerm())
						fmt.Printf("jarvis-sp: promoted to primary at term %d (replicated snapshot id %d, %d mirrored rows)\n",
							gate.Term(), st.LastApplied(), st.ResultLog().Rows())
					}
					continue
				}
				// Advance may return rows AND an error (rows durably logged
				// but the follow-up snapshot failed): always print what was
				// emitted — the result log will not hand these rows back.
				rows, err := advance()
				if len(rows) > 0 {
					printRows(rows)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "jarvis-sp:", err)
				}
			}
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, ln) }()
	select {
	case <-fenced:
		_ = srv.Close()
		<-errCh
		return fmt.Errorf("fenced: superseded by a newer primary (term > %d)", gate.Term())
	case err := <-errCh:
		return err
	}
}

func printRows(rows telemetry.Batch) {
	for i, r := range rows {
		if i >= 5 {
			fmt.Printf("  ... and %d more rows\n", len(rows)-5)
			break
		}
		if row, ok := r.Data.(*telemetry.AggRow); ok {
			fmt.Printf("  window %d  key %-18s count %-6d avg %.0f min %.0f max %.0f\n",
				row.Window, row.Key.String(), row.Count, row.Avg(), row.Min, row.Max)
		}
	}
}
