// Command jarvis-sp runs a stream processor node: it listens for agent
// connections, merges their drained records and partial aggregates, and
// prints final query results as they complete.
//
// With -checkpoint-dir the SP runs the recovery subsystem: sequenced
// epochs are applied exactly once, engine state is snapshotted durably
// every -checkpoint-every applied epochs (agents are acked — and may
// prune their replay buffers — only after the covering snapshot is
// durable), results flow through an exactly-once result log, and on
// startup the newest consistent snapshot is restored so reconnecting
// agents replay only what the snapshot does not cover.
//
// Usage:
//
//	jarvis-sp -listen :7700 -query s2s -sources 1,2,3 \
//	    -checkpoint-dir /var/lib/jarvis/sp -checkpoint-every 4
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/core"
	"jarvis/internal/experiments"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7700", "address to accept agents on")
	query := flag.String("query", "s2s", "query to run (s2s|t2t|log)")
	sources := flag.String("sources", "1", "comma-separated source ids to wait for")
	ckptDir := flag.String("checkpoint-dir", "", "durable snapshot directory (empty = no checkpointing)")
	ckptEvery := flag.Int("checkpoint-every", checkpoint.DefaultEvery, "applied epochs between durable snapshots (1 = every epoch, cheap with delta snapshots)")
	ckptRetain := flag.Int("checkpoint-retain", checkpoint.DefaultRetain, "base+delta snapshot chains to keep when compacting (0 = keep all)")
	flag.Parse()

	if err := run(*listen, *query, *sources, *ckptDir, *ckptEvery, *ckptRetain); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-sp:", err)
		os.Exit(1)
	}
}

func run(listen, queryName, sources, ckptDir string, ckptEvery, ckptRetain int) error {
	q, _, err := experiments.QueryByName(queryName)
	if err != nil {
		return err
	}
	proc, err := core.NewProcessor(q)
	if err != nil {
		return err
	}
	rc := transport.NewReceiver(proc.Engine())

	var rm *checkpoint.SPRecovery
	if ckptDir != "" {
		store, err := checkpoint.OpenStore(ckptDir)
		if err != nil {
			return err
		}
		rlog, err := checkpoint.OpenResultLog(filepath.Join(ckptDir, "results.log"))
		if err != nil {
			return err
		}
		defer rlog.Close()
		rm = checkpoint.NewSPRecovery(store, rlog, proc.Engine(), rc, ckptEvery)
		rm.SetRetention(ckptRetain)
		restored, err := rm.Restore()
		if err != nil {
			return err
		}
		if restored {
			fmt.Printf("jarvis-sp: restored snapshot (result log at %d rows, watermark %d µs)\n",
				rlog.Rows(), rlog.EmittedWM())
		}
	}

	for _, tok := range strings.Split(sources, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
		if err != nil {
			return fmt.Errorf("bad source id %q: %w", tok, err)
		}
		rc.RegisterSource(uint32(id))
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("jarvis-sp: %s on %s, waiting for sources [%s]\n", q.Name, ln.Addr(), sources)

	srv := transport.NewServer(rc)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	advance := func() (telemetry.Batch, error) {
		if rm != nil {
			return rm.Advance()
		}
		return rc.Advance(), nil
	}
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				if rm != nil {
					// Final snapshot so a clean shutdown loses nothing.
					if err := rm.Snapshot(); err != nil {
						fmt.Fprintln(os.Stderr, "jarvis-sp: final snapshot:", err)
					}
				}
				fmt.Printf("jarvis-sp: transport counters: %s\n", rc.Counters())
				return
			case <-ticker.C:
				// Advance may return rows AND an error (rows durably logged
				// but the follow-up snapshot failed): always print what was
				// emitted — the result log will not hand these rows back.
				rows, err := advance()
				if len(rows) > 0 {
					printRows(rows)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "jarvis-sp:", err)
				}
			}
		}
	}()

	return srv.Serve(ctx, ln)
}

func printRows(rows telemetry.Batch) {
	for i, r := range rows {
		if i >= 5 {
			fmt.Printf("  ... and %d more rows\n", len(rows)-5)
			break
		}
		if row, ok := r.Data.(*telemetry.AggRow); ok {
			fmt.Printf("  window %d  key %-18s count %-6d avg %.0f min %.0f max %.0f\n",
				row.Window, row.Key.String(), row.Count, row.Avg(), row.Min, row.Max)
		}
	}
}
