// Command jarvis-sp runs a stream processor node: it listens for agent
// connections, merges their drained records and partial aggregates, and
// prints final query results as they complete.
//
// Usage:
//
//	jarvis-sp -listen :7700 -query s2s -sources 1,2,3
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"jarvis/internal/core"
	"jarvis/internal/experiments"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7700", "address to accept agents on")
	query := flag.String("query", "s2s", "query to run (s2s|t2t|log)")
	sources := flag.String("sources", "1", "comma-separated source ids to wait for")
	flag.Parse()

	if err := run(*listen, *query, *sources); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis-sp:", err)
		os.Exit(1)
	}
}

func run(listen, queryName, sources string) error {
	q, _, err := experiments.QueryByName(queryName)
	if err != nil {
		return err
	}
	proc, err := core.NewProcessor(q)
	if err != nil {
		return err
	}
	rc := transport.NewReceiver(proc.Engine())
	for _, tok := range strings.Split(sources, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
		if err != nil {
			return fmt.Errorf("bad source id %q: %w", tok, err)
		}
		rc.RegisterSource(uint32(id))
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("jarvis-sp: %s on %s, waiting for sources [%s]\n", q.Name, ln.Addr(), sources)

	srv := transport.NewServer(rc)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				rows := rc.Advance()
				if len(rows) > 0 {
					printRows(rows)
				}
			}
		}
	}()

	return srv.Serve(ctx, ln)
}

func printRows(rows telemetry.Batch) {
	for i, r := range rows {
		if i >= 5 {
			fmt.Printf("  ... and %d more rows\n", len(rows)-5)
			break
		}
		if row, ok := r.Data.(*telemetry.AggRow); ok {
			fmt.Printf("  window %d  key %-18s count %-6d avg %.0f min %.0f max %.0f\n",
				row.Window, row.Key.String(), row.Count, row.Avg(), row.Min, row.Max)
		}
	}
}
