package jarvis_test

import (
	"reflect"
	"testing"

	"jarvis/internal/benchcase"
	"jarvis/internal/stream"
)

// TestColumnarIngestMatchesRows pins the engine-level guarantee behind
// BenchmarkSPIngestColumnar: driving the decoded SoA batch through
// IngestColumnar leaves the engine in exactly the state the row path
// produces — same flushed results, same accounting.
func TestColumnarIngestMatchesRows(t *testing.T) {
	rowEngine, batch, _, err := benchcase.SPIngest()
	if err != nil {
		t.Fatal(err)
	}
	colEngine, _, cb, err := benchcase.SPIngest()
	if err != nil {
		t.Fatal(err)
	}
	feed := func(e *stream.SPEngine, columnar bool) {
		for i := 0; i < 3; i++ {
			if columnar {
				if err := e.IngestColumnar(0, cb); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := e.Ingest(0, batch); err != nil {
					t.Fatal(err)
				}
			}
		}
		e.RegisterSource(1)
		e.ObserveWatermark(1, batch.MaxTime()+10_000_000)
	}
	feed(rowEngine, false)
	feed(colEngine, true)
	if rb, cbytes := rowEngine.IngressBytes(), colEngine.IngressBytes(); rb != cbytes {
		t.Fatalf("ingress bytes differ: row %d vs columnar %d", rb, cbytes)
	}
	if rr, cr := rowEngine.IngressRecords(), colEngine.IngressRecords(); rr != cr {
		t.Fatalf("ingress records differ: row %d vs columnar %d", rr, cr)
	}
	rows := rowEngine.Advance()
	cols := colEngine.Advance()
	if len(rows) == 0 {
		t.Fatal("no results flushed — the comparison is vacuous")
	}
	if len(rows) != len(cols) {
		t.Fatalf("result count differs: row %d vs columnar %d", len(rows), len(cols))
	}
	for i := range rows {
		if !reflect.DeepEqual(rows[i], cols[i]) {
			t.Fatalf("result %d differs:\n row      %+v\n columnar %+v", i, rows[i], cols[i])
		}
	}
}

// TestWarmColumnarIngestAllocs bounds the warm columnar ingest path: a
// ~38k-record SoA epoch through the full S2SProbe plan (window → filter
// → group-agg) must allocate O(sections + stages), never O(records). The
// row path allocates per-wave record buffers; the columnar path's only
// steady-state work is a section-header copy and reused scratch.
func TestWarmColumnarIngestAllocs(t *testing.T) {
	engine, _, cb, err := benchcase.SPIngest()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := engine.IngestColumnar(0, cb); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := engine.IngestColumnar(0, cb); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 32 {
		t.Fatalf("warm columnar ingest allocates %.1f times for a 38k-record epoch (want ≤ 32)", avg)
	}
}
