package jarvis_test

import (
	"fmt"

	"jarvis"
)

// The canonical loop: one adaptive source feeding one processor. The
// source starts with zero load factors (everything drains), detects the
// idle condition, profiles, and settles on a plan that fits its budget.
func ExampleNewPingmeshSource() {
	src, gen, err := jarvis.NewPingmeshSource(1, 0.60)
	if err != nil {
		panic(err)
	}
	proc, err := jarvis.NewProcessor(src.Query())
	if err != nil {
		panic(err)
	}
	proc.RegisterSource(1)

	rows := 0
	for epoch := 0; epoch < 15; epoch++ {
		res, err := src.RunEpoch(gen.NextWindow(1_000_000))
		if err != nil {
			panic(err)
		}
		if err := proc.Consume(1, res); err != nil {
			panic(err)
		}
		rows += len(proc.Results())
	}
	fmt.Println("aggregate rows:", rows > 0)
	fmt.Println("adapted:", src.LoadFactors()[0] > 0)
	// Output:
	// aggregate rows: true
	// adapted: true
}

// Declaring a custom monitoring query with the builder: a filter the
// optimizer can reason about, then a per-key aggregation. Rules R-1..R-4
// decide how much of it may run on data sources.
func ExampleNewQuery() {
	q := jarvis.NewQuery("hot-paths").
		WithRefRate(26.2, 86).
		Window(10_000_000_000, 1). // 10 s in nanoseconds for time.Duration
		FilterExpr("errors-only", jarvis.Eq(jarvis.Fld("errCode"), jarvis.NumLit(0)), 13, 0.86).
		GroupAgg("rtt", jarvis.ProbePairKeyFn, jarvis.ProbeRTTFn, 71, 0.3)
	if err := q.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("operators:", len(q.Ops))
	// Output:
	// operators: 3
}
