// Cluster example: a stream processor and three data source agents run
// as separate goroutines connected over loopback TCP — the same wire
// protocol cmd/jarvis-sp and cmd/jarvis-agent speak across machines —
// with the fault-tolerance subsystem enabled end to end. Each agent
// ships sequenced epochs through a durable shipper (bounded replay
// buffer, hello/ack resume); the SP applies them exactly once, snapshots
// its engine durably every few epochs and logs results exactly once.
// Mid-run the SP is killed and restarted from its snapshot directory:
// the agents buffer while it is down, replay on reconnect, and the final
// merged results are exactly what an uninterrupted run would produce.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"jarvis"
	"jarvis/internal/checkpoint"
	"jarvis/internal/transport"
)

const (
	agents     = 3
	epochs     = 16
	dataEpochs = 11
)

// spNode is one SP incarnation over a persistent checkpoint directory.
type spNode struct {
	rc     *transport.Receiver
	rm     *checkpoint.SPRecovery
	rlog   *checkpoint.ResultLog
	srv    *transport.Server
	addr   string
	cancel context.CancelFunc
}

func startSP(dir string) (*spNode, error) {
	proc, err := jarvis.NewProcessor(jarvis.S2SProbe())
	if err != nil {
		return nil, err
	}
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	rlog, err := checkpoint.OpenResultLog(filepath.Join(dir, "results.log"))
	if err != nil {
		return nil, err
	}
	rc := transport.NewReceiver(proc.Engine())
	rm := checkpoint.NewSPRecovery(store, rlog, proc.Engine(), rc, 4)
	if restored, err := rm.Restore(); err != nil {
		return nil, err
	} else if restored {
		fmt.Printf("SP restarted from snapshot (result log already holds %d rows)\n", rlog.Rows())
	}
	for id := uint32(1); id <= agents; id++ {
		rc.RegisterSource(id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = srv.Serve(ctx, ln) }()
	return &spNode{rc: rc, rm: rm, rlog: rlog, srv: srv, addr: ln.Addr().String(), cancel: cancel}, nil
}

func (sp *spNode) stop() {
	sp.cancel()
	_ = sp.srv.Close()
	_ = sp.rlog.Close()
}

func main() {
	dir, err := os.MkdirTemp("", "jarvis-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sp, err := startSP(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SP listening on %s (snapshots in %s)\n", sp.addr, dir)

	// addrCh broadcasts the current SP address to agents across restarts.
	var addrMu sync.Mutex
	spAddr := sp.addr
	getAddr := func() string { addrMu.Lock(); defer addrMu.Unlock(); return spAddr }
	setAddr := func(a string) { addrMu.Lock(); spAddr = a; addrMu.Unlock() }

	budgets := []float64{0.9, 0.5, 0.3}
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		id := uint32(i + 1)
		wg.Add(1)
		go func(id uint32, budget float64) {
			defer wg.Done()
			if err := runAgent(getAddr, id, budget); err != nil {
				log.Printf("agent %d: %v", id, err)
			}
		}(id, budgets[i])
	}

	// Collect results while agents run — and kill the SP partway through.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	rows := 0
	killAt := time.After(400 * time.Millisecond)
	var downUntil <-chan time.Time
	for {
		select {
		case <-killAt:
			fmt.Println("\n*** killing the SP mid-run ***")
			sp.stop()
			killAt = nil
			downUntil = time.After(300 * time.Millisecond)
		case <-downUntil:
			sp, err = startSP(dir)
			if err != nil {
				log.Fatal(err)
			}
			setAddr(sp.addr)
			fmt.Printf("*** SP back on %s; agents will reconnect and replay ***\n\n", sp.addr)
			downUntil = nil
		case <-done:
			time.Sleep(200 * time.Millisecond)
			if out, err := sp.rm.Advance(); err == nil {
				rows += printRows(out, rows)
			}
			fmt.Printf("\nresult log: %d rows, every row exactly once despite the restart\n", sp.rlog.Rows())
			fmt.Printf("SP transport counters: %s\n", sp.rc.Counters())
			sp.stop()
			return
		case <-time.After(50 * time.Millisecond):
			if downUntil != nil {
				continue // SP is down; don't advance the stopped incarnation
			}
			if out, err := sp.rm.Advance(); err == nil {
				rows += printRows(out, rows)
			}
		}
	}
}

func runAgent(getAddr func() string, id uint32, budget float64) error {
	src, err := jarvis.NewSource(jarvis.S2SProbe(), jarvis.SourceOptions{
		BudgetFrac: budget,
		RateMbps:   26.2,
		Adapt:      true,
	})
	if err != nil {
		return err
	}
	ship := transport.NewDurableShipper(id, 0)
	if err := ship.Connect(getAddr()); err != nil {
		return err
	}
	defer ship.Close()

	cfg := jarvis.DefaultPingConfig(uint64(id) * 17)
	cfg.SrcIP = 0x0A000000 + id
	gen := jarvis.NewPingGen(cfg)
	for e := 0; e < epochs; e++ {
		var batch jarvis.Batch
		if e < dataEpochs {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e+1) * 1_000_000) // quiet tail closes windows
		}
		res, err := src.RunEpoch(batch)
		if err != nil {
			return err
		}
		if !ship.Connected() {
			if err := ship.Connect(getAddr()); err == nil {
				fmt.Printf("agent %d: reconnected, replaying unacked epochs\n", id)
			}
		}
		if err := ship.ShipEpoch(res); err != nil {
			return err
		}
		time.Sleep(60 * time.Millisecond) // pace the demo so the outage lands mid-run
	}
	fmt.Printf("agent %d (budget %2.0f%%): final load factors %.2f, %d/%d epochs acked\n",
		id, budget*100, src.LoadFactors(), ship.Acked(), ship.Seq())
	return nil
}

func printRows(batch jarvis.Batch, already int) int {
	for i, r := range batch {
		if already+i >= 6 {
			break
		}
		row := r.Data.(*jarvis.AggRow)
		fmt.Printf("  result: window %d pair %s count %d avg %.0fµs\n",
			row.Window, row.Key.String(), row.Count, row.Avg())
	}
	return len(batch)
}
