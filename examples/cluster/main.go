// Cluster example: a stream processor and three data source agents run
// as separate goroutines connected over loopback TCP — the same wire
// protocol cmd/jarvis-sp and cmd/jarvis-agent speak across machines.
// Each agent adapts independently to its own CPU budget; the SP merges
// watermarks across all three streams and emits exact results.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"jarvis"
	"jarvis/internal/transport"
)

const (
	agents = 3
	epochs = 16
)

func main() {
	query := jarvis.S2SProbe()
	proc, err := jarvis.NewProcessor(query)
	if err != nil {
		log.Fatal(err)
	}
	rc := transport.NewReceiver(proc.Engine())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("loopback unavailable: %v", err)
	}
	srv := transport.NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Serve(ctx, ln) }()
	fmt.Printf("SP listening on %s\n", ln.Addr())

	budgets := []float64{0.9, 0.5, 0.3}
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		id := uint32(i + 1)
		rc.RegisterSource(id)
		wg.Add(1)
		go func(id uint32, budget float64) {
			defer wg.Done()
			if err := runAgent(ln.Addr().String(), id, budget); err != nil {
				log.Printf("agent %d: %v", id, err)
			}
		}(id, budgets[i])
	}

	// Collect merged results while agents run.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	rows := 0
	for {
		select {
		case <-done:
			// Drain what's left.
			time.Sleep(100 * time.Millisecond)
			rows += printRows(rc.Advance(), rows)
			fmt.Printf("\nmerged %d aggregate rows from %d agents over TCP\n", rows, agents)
			fmt.Printf("SP received %.2f MB (%d frames)\n", float64(rc.BytesIn())/1e6, rc.Frames())
			_ = srv.Close()
			return
		case <-time.After(50 * time.Millisecond):
			rows += printRows(rc.Advance(), rows)
		}
	}
}

func runAgent(addr string, id uint32, budget float64) error {
	src, err := jarvis.NewSource(jarvis.S2SProbe(), jarvis.SourceOptions{
		BudgetFrac: budget,
		RateMbps:   26.2,
		Adapt:      true,
	})
	if err != nil {
		return err
	}
	shipper, closeFn, err := transport.Dial(id, addr)
	if err != nil {
		return err
	}
	defer closeFn()

	cfg := jarvis.DefaultPingConfig(uint64(id) * 17)
	cfg.SrcIP = 0x0A000000 + id
	gen := jarvis.NewPingGen(cfg)
	for e := 0; e < epochs; e++ {
		var batch jarvis.Batch
		if e < 11 {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e+1) * 1_000_000) // quiet tail closes windows
		}
		res, err := src.RunEpoch(batch)
		if err != nil {
			return err
		}
		if err := shipper.ShipEpoch(res); err != nil {
			return err
		}
	}
	fmt.Printf("agent %d (budget %2.0f%%): final load factors %.2f\n",
		id, budget*100, src.LoadFactors())
	return nil
}

func printRows(batch jarvis.Batch, already int) int {
	for i, r := range batch {
		if already+i >= 6 {
			break
		}
		row := r.Data.(*jarvis.AggRow)
		fmt.Printf("  result: window %d pair %s count %d avg %.0fµs\n",
			row.Window, row.Key.String(), row.Count, row.Avg())
	}
	return len(batch)
}
