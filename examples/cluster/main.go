// Cluster example: a primary stream processor, a warm standby and three
// data source agents run as separate goroutines connected over loopback
// TCP — the same wire protocol cmd/jarvis-sp and cmd/jarvis-agent speak
// across machines — with the high-availability subsystem (internal/ha)
// enabled end to end. The primary replicates its snapshot chain and
// result log to the standby and withholds agent acks until the standby
// confirms durability; each agent ships sequenced epochs through a
// durable shipper with a multi-endpoint failover dialer.
//
// Mid-run the primary is killed: the standby promotes itself with a
// higher fencing term, the agents fail over to it and replay every epoch
// replication did not cover, and the standby's mirrored result log
// continues exactly once — no row lost, duplicated or reordered. The
// old primary then rejoins at its stale term and is fenced the moment a
// failed-over agent says hello.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jarvis"
	"jarvis/internal/checkpoint"
	"jarvis/internal/ha"
	"jarvis/internal/obs"
	"jarvis/internal/transport"
)

const (
	agents     = 3
	epochs     = 16
	dataEpochs = 11
)

// spNode is one SP incarnation: engine + receiver + gate, with the
// recovery manager and (primary role) replication publisher on top.
type spNode struct {
	rc       *transport.Receiver
	rm       *checkpoint.SPRecovery
	rlog     *checkpoint.ResultLog
	gate     *ha.Gate
	pub      *ha.Publisher
	st       *ha.Standby
	srv      *transport.Server
	addr     string
	replAddr string
	cancel   context.CancelFunc
}

// startPrimary brings up a primary over dir that replicates to standbys.
func startPrimary(dir string, term uint64) (*spNode, error) {
	proc, err := jarvis.NewProcessor(jarvis.S2SProbe())
	if err != nil {
		return nil, err
	}
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	rlog, err := checkpoint.OpenResultLog(dir + "/results.log")
	if err != nil {
		return nil, err
	}
	rc := transport.NewReceiver(proc.Engine())
	gate := ha.NewGate(ha.RolePrimary, term, nil)
	rc.SetHelloGate(gate)
	rm := checkpoint.NewSPRecovery(store, rlog, proc.Engine(), rc, 4)
	pub := ha.NewPublisher(store, dir+"/results.log", term, gate.Counters())
	rm.SetReplicator(pub, 0)
	if restored, err := rm.Restore(); err != nil {
		return nil, err
	} else if restored {
		fmt.Printf("primary restarted from snapshot (result log already holds %d rows)\n", rlog.Rows())
	}
	for id := uint32(1); id <= agents; id++ {
		rc.RegisterSource(id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = srv.Serve(ctx, ln) }()
	go func() { _ = pub.Serve(ctx, rln) }()
	return &spNode{
		rc: rc, rm: rm, rlog: rlog, gate: gate, pub: pub, srv: srv,
		addr: ln.Addr().String(), replAddr: rln.Addr().String(), cancel: cancel,
	}, nil
}

// startStandby brings up a warm standby syncing from the primary's
// replication address; its gate rejects agents until promotion.
func startStandby(dir, peer string) (*spNode, error) {
	proc, err := jarvis.NewProcessor(jarvis.S2SProbe())
	if err != nil {
		return nil, err
	}
	st, err := ha.NewStandby(proc, dir, nil)
	if err != nil {
		return nil, err
	}
	gate := ha.NewGate(ha.RoleStandby, 0, st.Counters())
	rc := transport.NewReceiver(proc.Engine())
	rc.SetHelloGate(gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = srv.Serve(ctx, ln) }()
	go st.Run(ctx, peer)
	return &spNode{
		rc: rc, gate: gate, st: st, srv: srv,
		addr: ln.Addr().String(), cancel: cancel,
	}, nil
}

// promote fails the standby over: adopt the warm shadow engine and bump
// the fencing term.
func (n *spNode) promote() error {
	rm, err := n.st.Promote(n.rc, 4, checkpoint.DefaultRetain)
	if err != nil {
		return err
	}
	n.rm = rm
	n.rlog = n.st.ResultLog()
	n.gate.Promote(n.st.NextTerm())
	return nil
}

func (n *spNode) stop() {
	n.cancel()
	_ = n.srv.Close()
	if n.pub != nil {
		_ = n.pub.Close()
	}
	if n.rm != nil {
		_ = n.rm.Close()
	}
	if n.rlog != nil {
		_ = n.rlog.Close()
	}
}

func main() {
	priDir, err := os.MkdirTemp("", "jarvis-ha-primary-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(priDir)
	sbDir, err := os.MkdirTemp("", "jarvis-ha-standby-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(sbDir)

	pri, err := startPrimary(priDir, 1)
	if err != nil {
		log.Fatal(err)
	}
	sb, err := startStandby(sbDir, pri.replAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary on %s (replicating on %s, term 1), standby on %s\n",
		pri.addr, pri.replAddr, sb.addr)

	// endpoints is what every agent dials: primary first, standby second.
	var epMu sync.Mutex
	endpoints := []string{pri.addr, sb.addr}
	getEndpoints := func() []string {
		epMu.Lock()
		defer epMu.Unlock()
		return append([]string(nil), endpoints...)
	}

	var wg sync.WaitGroup
	budgets := []float64{0.9, 0.5, 0.3}
	for i := 0; i < agents; i++ {
		id := uint32(i + 1)
		wg.Add(1)
		go func(id uint32, budget float64) {
			defer wg.Done()
			if err := runAgent(getEndpoints, id, budget); err != nil {
				log.Printf("agent %d: %v", id, err)
			}
		}(id, budgets[i])
	}

	// Collect results from whichever node currently holds the primary
	// role — and kill the primary partway through.
	var active atomic.Pointer[spNode]
	active.Store(pri)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	rows := 0
	killAt := time.After(400 * time.Millisecond)
	var rejoinAt <-chan time.Time
	var downtime time.Duration
	for {
		select {
		case <-killAt:
			fmt.Println("\n*** killing the primary mid-run ***")
			killStart := time.Now()
			pri.stop()
			if err := sb.promote(); err != nil {
				log.Fatal(err)
			}
			downtime = time.Since(killStart)
			active.Store(sb)
			fmt.Printf("*** standby promoted to primary at term %d (replicated snapshot id %d, %d mirrored rows) ***\n\n",
				sb.gate.Term(), sb.st.LastApplied(), sb.st.ResultLog().Rows())
			killAt = nil
			rejoinAt = time.After(300 * time.Millisecond)
		case <-rejoinAt:
			// The dead primary comes back from its own directory at its old
			// term; the failed-over agents' hellos carry term 2, so it
			// fences itself instead of serving a second split-brain output.
			stale, err := startPrimary(priDir, 1)
			if err != nil {
				log.Fatal(err)
			}
			epMu.Lock()
			endpoints = []string{stale.addr, sb.addr}
			epMu.Unlock()
			fmt.Printf("*** old primary rejoined on %s at stale term 1 ***\n", stale.addr)
			go func() {
				for stale.gate.Role() != ha.RoleFenced {
					time.Sleep(20 * time.Millisecond)
				}
				fmt.Printf("*** stale primary fenced (%s) ***\n", stale.gate.Counters())
				stale.stop()
			}()
			rejoinAt = nil
		case <-done:
			time.Sleep(200 * time.Millisecond)
			sp := active.Load()
			if out, err := sp.rm.Advance(); err == nil {
				rows += printRows(out, rows)
			}
			fmt.Printf("\nresult log on the promoted standby: %d rows, every row exactly once across the failover\n",
				sp.rlog.Rows())
			fmt.Printf("ha counters: %s\n", sp.gate.Counters())
			printSummary(sp, downtime)
			sp.stop()
			return
		case <-time.After(50 * time.Millisecond):
			sp := active.Load()
			if sp.rm == nil {
				continue
			}
			if out, err := sp.rm.Advance(); err == nil {
				rows += printRows(out, rows)
			}
		}
	}
}

// printSummary condenses the run into its headline numbers: how much
// work the surviving node applied vs. replayed, how long the cluster had
// no primary, and every adaptation decision the process recorded.
func printSummary(sp *spNode, downtime time.Duration) {
	fmt.Println("--- summary ---")
	tc := sp.rc.Counters()
	fmt.Printf("promoted node: %d epochs applied, %d replayed (deduplicated), %d hellos rejected\n",
		tc.Get(transport.CtrEpochsApplied), tc.Get(transport.CtrEpochsReplayed), tc.Get(transport.CtrHellosRejected))
	fmt.Printf("failover downtime (kill to promoted): %v\n", downtime)
	byKind := map[string]int{}
	for _, d := range obs.Decisions().Recent(0) {
		byKind[d.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("decision trace: %d events", obs.Decisions().Total())
	for _, k := range kinds {
		fmt.Printf("  %s=%d", k, byKind[k])
	}
	fmt.Println()
}

func runAgent(getEndpoints func() []string, id uint32, budget float64) error {
	src, err := jarvis.NewSource(jarvis.S2SProbe(), jarvis.SourceOptions{
		ID:         id,
		BudgetFrac: budget,
		RateMbps:   26.2,
		Adapt:      true,
	})
	if err != nil {
		return err
	}
	ship := transport.NewDurableShipper(id, 0)
	if _, err := ship.ConnectAny(getEndpoints()); err != nil {
		return err
	}
	defer ship.Close()

	cfg := jarvis.DefaultPingConfig(uint64(id) * 17)
	cfg.SrcIP = 0x0A000000 + id
	gen := jarvis.NewPingGen(cfg)
	for e := 0; e < epochs; e++ {
		var batch jarvis.Batch
		if e < dataEpochs {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e+1) * 1_000_000) // quiet tail closes windows
		}
		res, err := src.RunEpoch(batch)
		if err != nil {
			return err
		}
		if e == 13 && id == 1 {
			// Agent 1's connection flaps and it re-dials its configured
			// primary first — by now the rejoined stale primary. Its hello
			// carries the promoted term, so the stale primary fences itself
			// and the failover dialer settles back on the real primary.
			_ = ship.Close()
			if eps := getEndpoints(); len(eps) > 0 {
				if err := ship.Connect(eps[0]); err != nil {
					fmt.Printf("agent %d: configured primary %s refused the hello (%v)\n", id, eps[0], err)
				}
			}
		}
		if !ship.Connected() {
			if addr, err := ship.ConnectAny(getEndpoints()); err == nil {
				fmt.Printf("agent %d: failed over to %s (term %d), replaying unacked epochs\n",
					id, addr, ship.Term())
			}
		}
		if err := ship.ShipEpoch(res); err != nil {
			return err
		}
		time.Sleep(60 * time.Millisecond) // pace the demo so the outage lands mid-run
	}
	fmt.Printf("agent %d (budget %2.0f%%): done at term %d, %d/%d epochs acked, %d failovers\n",
		id, budget*100, ship.Term(), ship.Acked(), ship.Seq(),
		ship.Counters().Get(transport.CtrFailovers))
	return nil
}

func printRows(batch jarvis.Batch, already int) int {
	for i, r := range batch {
		if already+i >= 6 {
			break
		}
		row := r.Data.(*jarvis.AggRow)
		fmt.Printf("  result: window %d pair %s count %d avg %.0fµs\n",
			row.Window, row.Key.String(), row.Count, row.Avg())
	}
	return len(batch)
}
