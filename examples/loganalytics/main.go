// LogAnalytics scenario (paper Scenario 2, Helios-style): unstructured
// text logs from an analytics cluster are parsed, filtered and bucketed
// into per-tenant histograms of job latency and resource utilization, so
// an operator can spot tenants whose resources were under-provisioned.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"jarvis"
)

func main() {
	src, err := jarvis.NewSource(jarvis.LogAnalytics(), jarvis.SourceOptions{
		BudgetFrac: 0.25, // the query wants ~31% of a core
		RateMbps:   49.6,
		Adapt:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	proc, err := jarvis.NewProcessor(src.Query())
	if err != nil {
		log.Fatal(err)
	}
	proc.RegisterSource(1)

	gen := jarvis.NewLogGen(jarvis.DefaultLogConfig(7))

	fmt.Println("LogAnalytics: per-tenant histograms from 49.6 Mbps of text logs")
	fmt.Println("(source budget 25% of a core; Jarvis splits the parse/filter work)")

	type cell struct {
		tenant, stat string
		bucket       int
		count        int64
	}
	var cells []cell
	for epoch := 0; epoch < 25; epoch++ {
		batch := gen.NextWindow(1_000_000)
		res, err := src.RunEpoch(batch)
		if err != nil {
			log.Fatal(err)
		}
		if err := proc.Consume(1, res); err != nil {
			log.Fatal(err)
		}
		for _, r := range proc.Results() {
			row := r.Data.(*jarvis.AggRow)
			parts := strings.Split(row.Key.String(), "|")
			if len(parts) != 3 {
				continue
			}
			var bucket int
			fmt.Sscanf(parts[2], "%d", &bucket)
			cells = append(cells, cell{parts[0], parts[1], bucket, row.Count})
		}
		if epoch%6 == 0 {
			fmt.Printf("epoch %2d: phase %-8v factors %.2f out %5.2f Mbps\n",
				epoch, src.Phase(), src.LoadFactors(),
				float64(res.TotalOutBytes())*8/1e6)
		}
	}

	// Print one tenant's CPU-utilization histogram.
	hist := map[int]int64{}
	tenant := ""
	for _, c := range cells {
		if c.stat != "cpu util" {
			continue
		}
		if tenant == "" {
			tenant = c.tenant
		}
		if c.tenant == tenant {
			hist[c.bucket] += c.count
		}
	}
	if tenant == "" {
		log.Fatal("no histogram rows produced")
	}
	fmt.Printf("\nCPU utilization histogram for %s (bucket = 10%% bands):\n", tenant)
	buckets := make([]int, 0, len(hist))
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	var maxCount int64 = 1
	for _, b := range buckets {
		if hist[b] > maxCount {
			maxCount = hist[b]
		}
	}
	for _, b := range buckets {
		bar := strings.Repeat("#", int(hist[b]*40/maxCount))
		fmt.Printf("  bucket %2d: %5d %s\n", b, hist[b], bar)
	}
	fmt.Printf("\ntotal histogram cells: %d across tenants/stats/buckets\n", len(cells))
}
