// Pingmesh monitoring scenario (paper Scenario 1): several servers probe
// their peers and an operator watches for network issues. Each source
// node has a different — and changing — CPU budget left over by its
// foreground services; the Jarvis runtime on every node independently
// re-partitions the query, and the stream processor raises alerts when a
// server pair's latency exceeds the 5 ms SLA threshold.
package main

import (
	"fmt"
	"log"

	"jarvis"
)

const (
	sources     = 4
	epochs      = 40
	alertMicros = 5000 // 5 ms SLA threshold
)

func main() {
	bb, err := jarvis.NewBuildingBlock(jarvis.S2SProbe(), sources, jarvis.SourceOptions{
		BudgetFrac: 0.8,
		RateMbps:   26.2,
		Adapt:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Heterogeneous budgets: node 0 is nearly idle, node 3 is busy.
	budgets := []float64{0.9, 0.6, 0.4, 0.2}
	for i, src := range bb.Sources {
		src.SetBudget(budgets[i])
	}

	// One generator per node, with a few anomalous peers each.
	gens := make([]interface {
		NextWindow(int64) jarvis.Batch
	}, sources)
	for i := range gens {
		cfg := jarvis.DefaultPingConfig(uint64(i + 1))
		cfg.SrcIP = 0x0A000000 + uint32(i+1)
		cfg.AnomalousPairFrac = 0.005
		gens[i] = jarvis.NewPingGen(cfg)
	}

	fmt.Println("Pingmesh monitoring: 4 sources with budgets 90/60/40/20% of a core")
	alerts := 0
	for epoch := 0; epoch < epochs; epoch++ {
		// Foreground load spike on node 0 at epoch 20: its budget drops.
		if epoch == 20 {
			fmt.Println("--- epoch 20: foreground burst on node 0, budget 90% -> 30% ---")
			bb.Sources[0].SetBudget(0.30)
		}
		batches := make([]jarvis.Batch, sources)
		for i, g := range gens {
			batches[i] = g.NextWindow(1_000_000)
		}
		rows, err := bb.RunEpoch(batches)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			row := r.Data.(*jarvis.AggRow)
			if row.Max > alertMicros {
				alerts++
				if alerts <= 5 {
					fmt.Printf("  ALERT window %d: pair %s max RTT %.1f ms (avg %.2f ms over %d probes)\n",
						row.Window, row.Key.String(), row.Max/1000, row.Avg()/1000, row.Count)
				}
			}
		}
		if epoch%8 == 0 || epoch == 21 || epoch == 25 {
			fmt.Printf("epoch %2d:", epoch)
			for i, src := range bb.Sources {
				res := src.LastResult()
				fmt.Printf("  n%d[%v use=%2.0f%% out=%4.1fMbps]",
					i, src.Phase(), res.BudgetUsedFrac*100, float64(res.TotalOutBytes())*8/1e6)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d SLA alerts raised; every node kept its query stable under its own budget.\n", alerts)
	fmt.Printf("SP ingress: %.1f MB total (vs %.1f MB raw input without near-data processing)\n",
		float64(bb.Proc.IngressBytes())/1e6,
		float64(sources*epochs)*26.2/8)
}
