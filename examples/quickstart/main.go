// Quickstart: one data source with a 60% CPU budget runs the paper's
// S2SProbe query under the adaptive Jarvis runtime; an in-process stream
// processor merges drained records and partial aggregates into exact
// per-server-pair latency statistics.
package main

import (
	"fmt"
	"log"

	"jarvis"
)

func main() {
	// A source with 60% of one core: the full query needs ~85%, so
	// Jarvis must process part of the aggregation input locally and
	// drain the rest.
	src, gen, err := jarvis.NewPingmeshSource(1, 0.60)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := jarvis.NewProcessor(src.Query())
	if err != nil {
		log.Fatal(err)
	}
	proc.RegisterSource(1)

	fmt.Println(jarvis.Explain(src.Query(), jarvis.SourceRules()))
	fmt.Println("epoch  phase     budget-used  out-Mbps  load-factors")

	totalRows := 0
	for epoch := 0; epoch < 25; epoch++ {
		batch := gen.NextWindow(1_000_000) // one second of probes
		res, err := src.RunEpoch(batch)
		if err != nil {
			log.Fatal(err)
		}
		if err := proc.Consume(1, res); err != nil {
			log.Fatal(err)
		}
		rows := proc.Results()
		totalRows += len(rows)
		fmt.Printf("%5d  %-8v  %10.1f%%  %8.2f  %.2f\n",
			epoch, src.Phase(), res.BudgetUsedFrac*100,
			float64(res.TotalOutBytes())*8/1e6, src.LoadFactors())
		for i, r := range rows {
			if i >= 3 {
				fmt.Printf("       ... and %d more rows\n", len(rows)-3)
				break
			}
			row := r.Data.(*jarvis.AggRow)
			fmt.Printf("       result: pair %-18s count %-4d avg %.0fµs min %.0fµs max %.0fµs\n",
				row.Key.String(), row.Count, row.Avg(), row.Min, row.Max)
		}
	}
	fmt.Printf("\n%d aggregate rows produced; the source adapted its load factors\n", totalRows)
	fmt.Println("to fit the 60% budget while minimizing network transfer.")
}
