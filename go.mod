module jarvis

go 1.24
