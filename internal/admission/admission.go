// Package admission implements overload protection at the SP edge:
// token-bucket admission control per tenant with SLO classes, priority-
// aware delaying of over-budget epochs, backpressure throttle hints for
// the shipper, and a degrade-don't-drop escape hatch that samples a
// sustained-overload tenant's raw records at a recorded rate
// (internal/synopsis WSP) instead of dropping them — results stay
// available at a bounded error and the tenant promotes back to exact
// processing when pressure clears.
//
// The controller is deliberately transport-agnostic: internal/transport
// asks it for a verdict per committed epoch and reports queue events
// back; the only shared vocabulary is (source id, tenant, class, bytes).
package admission

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"jarvis/internal/obs"
)

// Class is a tenant's SLO class. Ordering is priority: a higher value is
// served first when delayed epochs drain and shed last when the delay
// queue overflows.
type Class uint8

const (
	// BestEffort tenants are shed first and may be degraded to sketches.
	BestEffort Class = iota
	// Silver is the default class; it may be degraded under sustained
	// overload but sheds only after best-effort traffic.
	Silver
	// Gold tenants are never degraded to sketches — over-budget gold
	// epochs are delayed (and shed only when nothing lower remains).
	Gold

	// NumClasses is the number of SLO classes.
	NumClasses = 3
)

// String returns the canonical flag/metric spelling of the class.
func (c Class) String() string {
	switch c {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	default:
		return "best-effort"
	}
}

// ParseClass parses a class name as spelled by String (plus the obvious
// aliases).
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gold":
		return Gold, nil
	case "silver", "":
		return Silver, nil
	case "best-effort", "besteffort", "be":
		return BestEffort, nil
	}
	return Silver, fmt.Errorf("admission: unknown SLO class %q", s)
}

// Wire returns the class's wire encoding for the Hello trailing
// extension: 0 is reserved for "unspecified" (a pre-admission agent whose
// Hello ends before the field), so classes shift up by one.
func (c Class) Wire() byte { return byte(c) + 1 }

// ClassFromWire decodes a Hello class byte; 0 (unspecified / legacy
// agent) maps to Silver.
func ClassFromWire(b byte) Class {
	if b == 0 || b > byte(Gold)+1 {
		return Silver
	}
	return Class(b - 1)
}

// Metric names exposed through the controller's obs.Registry. epochs_shed
// intentionally has no adm_ prefix: it is the receiver-visible companion
// of epochs_applied/epochs_replayed.
const (
	CtrEpochsAdmitted = "adm_epochs_admitted"
	CtrEpochsDelayed  = "adm_epochs_delayed"
	CtrEpochsShed     = "epochs_shed"
	CtrEpochsDegraded = "adm_epochs_degraded" // admitted in sampled (sketch) form
	CtrBytesAdmitted  = "adm_bytes_admitted"
	CtrSampledOut     = "adm_records_sampled_out"

	GaugeTenantsDegraded = "adm_tenants_degraded"
	GaugeDelayedEpochs   = "adm_delayed_epochs"
	GaugeJainFairness    = "adm_jain_fairness"
	GaugeThrottleMicros  = "adm_throttle_micros"

	// HistClassLatency carries the end-to-end commit latency (EpochEnd
	// arrival to apply, queue wait included) per SLO class.
	HistClassLatency = "class_ingest_latency_seconds"
)

// Verdict is the controller's decision for one epoch commit.
type Verdict uint8

const (
	// Admitted: apply the epoch exactly, now.
	Admitted Verdict = iota
	// AdmittedDegraded: apply now, but sample the epoch's raw records at
	// the tenant's degraded rate (the Degrader rescales results).
	AdmittedDegraded
	// Delayed: hold the epoch in the priority staging queue until the
	// tenant's bucket refills; never ack it before it applies.
	Delayed
)

func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case AdmittedDegraded:
		return "admitted-degraded"
	default:
		return "delayed"
	}
}

// Config parameterizes a Controller. The zero value is unusable; start
// from DefaultConfig.
type Config struct {
	// RateBytesPerSec is the per-tenant token refill rate for a weight-1
	// class, in bytes of admitted epoch payload per second.
	RateBytesPerSec float64
	// BurstBytes is the bucket capacity (maximum unspent budget).
	BurstBytes float64
	// TenantRate overrides the refill rate for named tenants, in bytes
	// per second. An override is absolute (class weight does not scale
	// it); the burst scales by the global BurstBytes:RateBytesPerSec
	// ratio so an overridden tenant keeps the same burst headroom.
	TenantRate map[string]float64
	// ClassWeight scales the refill rate per class (index by Class).
	ClassWeight [NumClasses]float64
	// MaxDelayedEpochs bounds the receiver's delay queue across all
	// tenants; beyond it the lowest class's newest delayed epoch is shed.
	MaxDelayedEpochs int
	// DegradeAfter is the hysteresis up-threshold: consecutive
	// over-budget commits before a (non-gold) tenant degrades to
	// sampled ingestion.
	DegradeAfter int
	// PromoteAfter is the down-threshold: consecutive commits that would
	// have fit the exact budget before a degraded tenant promotes back.
	PromoteAfter int
	// DegradeRate is the WSP sampling rate applied to a degraded
	// tenant's raw records, in (0,1).
	DegradeRate float64
	// GoldDegrades permits degrading gold tenants too; by default gold
	// epochs are only ever delayed, never sampled.
	GoldDegrades bool
	// MaxThrottle caps the throttle hint advertised in acks.
	MaxThrottle time.Duration
	// Pressure optionally gates degradation on an external overload
	// signal (e.g. the p99 of the obs ingest-stage latency histogram, in
	// seconds): a tenant only degrades while Pressure() > PressureThreshold.
	// Nil means the bucket streak alone decides.
	Pressure          func() float64
	PressureThreshold float64
	// Now is the controller's clock (injectable for deterministic tests).
	Now func() time.Time
}

// DefaultConfig returns a config sized for the repo's synthetic agents:
// ~8 MB/s per silver tenant with a 2-second burst.
func DefaultConfig() Config {
	return Config{
		RateBytesPerSec:  8 << 20,
		BurstBytes:       16 << 20,
		ClassWeight:      [NumClasses]float64{0.5, 1, 2},
		MaxDelayedEpochs: 256,
		DegradeAfter:     3,
		PromoteAfter:     5,
		DegradeRate:      0.25,
		MaxThrottle:      2 * time.Second,
		Now:              time.Now,
	}
}

// bucket is a token bucket in bytes. Tokens may go negative on a forced
// take (degraded admission, forced gap drains): the debt delays the next
// exact admission instead of losing data.
type bucket struct {
	tokens float64
	rate   float64 // bytes per second
	burst  float64
	last   time.Time
}

func (b *bucket) refill(now time.Time) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
		}
	}
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

func (b *bucket) fits(n float64) bool { return b.tokens >= n }
func (b *bucket) take(n float64)      { b.tokens -= n }

// Tenant is one tenant's admission state.
type tenant struct {
	name        string
	class       Class
	bucket      bucket
	ewmaBytes   float64 // admitted bytes per commit, EWMA (Jain input)
	overStreak  int
	underStreak int
	calmStreak  int // consecutive Admit calls with the pressure gate low
	degraded    bool
	delayed     int     // epochs currently held in the delay queue
	lastDeficit float64 // bytes the last over-budget commit was short
}

// Controller is the admission controller shared by every connection of
// one receiver. All methods are safe for concurrent use.
type Controller struct {
	mu       sync.Mutex
	cfg      Config
	reg      *obs.Registry
	tenants  map[string]*tenant
	bySource map[uint32]*tenant
	deg      *Degrader

	ctrAdmitted obs.Counter
	ctrDelayed  obs.Counter
	ctrShed     obs.Counter
	ctrDegraded obs.Counter
	ctrBytes    obs.Counter
	gDegraded   obs.Gauge
	gDelayed    obs.Gauge
	gJain       obs.FloatGauge
	gThrottle   obs.Gauge
	classHist   [NumClasses]obs.Histogram
}

// NewController builds a controller from cfg (zero fields are filled from
// DefaultConfig).
func NewController(cfg Config) *Controller {
	def := DefaultConfig()
	if cfg.RateBytesPerSec <= 0 {
		cfg.RateBytesPerSec = def.RateBytesPerSec
	}
	if cfg.BurstBytes <= 0 {
		cfg.BurstBytes = 2 * cfg.RateBytesPerSec
	}
	if cfg.ClassWeight == ([NumClasses]float64{}) {
		cfg.ClassWeight = def.ClassWeight
	}
	if cfg.MaxDelayedEpochs <= 0 {
		cfg.MaxDelayedEpochs = def.MaxDelayedEpochs
	}
	if cfg.DegradeAfter <= 0 {
		cfg.DegradeAfter = def.DegradeAfter
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = def.PromoteAfter
	}
	if cfg.DegradeRate <= 0 || cfg.DegradeRate >= 1 {
		cfg.DegradeRate = def.DegradeRate
	}
	if cfg.MaxThrottle <= 0 {
		cfg.MaxThrottle = def.MaxThrottle
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := obs.NewRegistry()
	c := &Controller{
		cfg:         cfg,
		reg:         reg,
		tenants:     make(map[string]*tenant),
		bySource:    make(map[uint32]*tenant),
		deg:         NewDegrader(),
		ctrAdmitted: reg.Counter(CtrEpochsAdmitted),
		ctrDelayed:  reg.Counter(CtrEpochsDelayed),
		ctrShed:     reg.Counter(CtrEpochsShed),
		ctrDegraded: reg.Counter(CtrEpochsDegraded),
		ctrBytes:    reg.Counter(CtrBytesAdmitted),
		gDegraded:   reg.Gauge(GaugeTenantsDegraded),
		gDelayed:    reg.Gauge(GaugeDelayedEpochs),
		gJain:       reg.FloatGauge(GaugeJainFairness),
		gThrottle:   reg.Gauge(GaugeThrottleMicros),
	}
	for cl := Class(0); cl < NumClasses; cl++ {
		c.classHist[cl] = reg.LabeledHistogram(HistClassLatency, "class", cl.String(), obs.StageBounds)
	}
	c.deg.sampledOut = reg.Counter(CtrSampledOut)
	return c
}

// Counters exposes the controller's obs registry (admission counters,
// fairness gauge, per-class latency histograms).
func (c *Controller) Counters() *obs.Registry { return c.reg }

// Degrader returns the controller's degradation manager (sampling and
// result rescaling).
func (c *Controller) Degrader() *Degrader { return c.deg }

// MaxDelayed returns the configured bound on the delay queue.
func (c *Controller) MaxDelayed() int { return c.cfg.MaxDelayedEpochs }

// Now reads the controller's clock (the injected test clock or wall
// time). The receiver stamps delayed epochs with it so queueing latency
// is measured on the same clock the buckets refill on.
func (c *Controller) Now() time.Time { return c.cfg.Now() }

// Register binds a source id to a tenant and class (called per Hello).
// An empty tenant name defaults to "src-<id>" so per-agent limits apply
// even without tenancy labels.
func (c *Controller) Register(source uint32, name string, class Class) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(source, name, class)
}

func (c *Controller) registerLocked(source uint32, name string, class Class) *tenant {
	if name == "" {
		name = fmt.Sprintf("src-%d", source)
	}
	if class >= NumClasses {
		class = Silver
	}
	t := c.tenants[name]
	if t == nil {
		rate, burst := c.bucketParams(name, class)
		t = &tenant{name: name, class: class}
		t.bucket = bucket{rate: rate, burst: burst, tokens: burst}
		c.tenants[name] = t
	} else if t.class != class {
		t.class = class
		t.bucket.rate, t.bucket.burst = c.bucketParams(name, class)
	}
	c.bySource[source] = t
	return t
}

// bucketParams resolves a tenant's refill rate and burst: a TenantRate
// override wins outright (burst keeps the global burst:rate ratio);
// otherwise the class weight scales the global rate.
func (c *Controller) bucketParams(name string, class Class) (rate, burst float64) {
	if r, ok := c.cfg.TenantRate[name]; ok && r > 0 {
		ratio := 2.0
		if c.cfg.RateBytesPerSec > 0 && c.cfg.BurstBytes > 0 {
			ratio = c.cfg.BurstBytes / c.cfg.RateBytesPerSec
		}
		return r, r * ratio
	}
	return c.cfg.RateBytesPerSec * c.cfg.ClassWeight[class],
		c.cfg.BurstBytes * c.cfg.ClassWeight[class]
}

func (c *Controller) tenantOf(source uint32) *tenant {
	if t := c.bySource[source]; t != nil {
		return t
	}
	return c.registerLocked(source, "", Silver)
}

// Class returns the SLO class registered for a source (Silver when the
// source never said Hello).
func (c *Controller) Class(source uint32) Class {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantOf(source).class
}

// Tenant returns the tenant name registered for a source.
func (c *Controller) Tenant(source uint32) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantOf(source).name
}

// Admit decides one epoch commit of the given payload size. It never
// blocks; Delayed epochs stay the caller's to queue (report queue events
// with NoteDelayed/NoteDrained/NoteShed so gauges and shed accounting
// stay truthful).
func (c *Controller) Admit(source uint32, bytes int64) Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantOf(source)
	now := c.cfg.Now()
	t.bucket.refill(now)
	n := float64(bytes)
	fits := t.bucket.fits(n)

	// Hysteresis runs on exact-budget affordability regardless of the
	// verdict, so degraded admissions do not feed back into promotion.
	if fits {
		t.underStreak++
		t.overStreak = 0
		t.lastDeficit = 0
	} else {
		t.overStreak++
		t.underStreak = 0
		t.lastDeficit = n - t.bucket.tokens
	}
	// With a pressure gate configured, the gate clearing is itself a
	// promotion signal: a degraded tenant may still be over its exact
	// budget (the backlog it accumulated while degraded keeps commits
	// over-sized), but once the measured overload is gone there is no
	// reason to keep sampling. calmStreak counts consecutive decisions
	// with the gate low, mirroring the underStreak hysteresis.
	if c.cfg.Pressure != nil {
		if c.pressureHigh() {
			t.calmStreak = 0
		} else {
			t.calmStreak++
		}
	}
	if !t.degraded && (t.class != Gold || c.cfg.GoldDegrades) &&
		t.overStreak >= c.cfg.DegradeAfter && c.pressureHigh() {
		c.setDegradedLocked(t, true, source)
	} else if t.degraded && (t.underStreak >= c.cfg.PromoteAfter ||
		(c.cfg.Pressure != nil && t.calmStreak >= c.cfg.PromoteAfter)) {
		c.setDegradedLocked(t, false, source)
	}

	switch {
	case fits:
		t.bucket.take(n)
		c.noteAdmitLocked(t, n)
		c.ctrAdmitted.Inc()
		return Admitted
	case t.degraded:
		// Degrade-don't-drop: admit the epoch in sampled form, charging
		// only the surviving share. The bucket may go into debt, which
		// simply delays the next exact admission.
		charge := n * c.cfg.DegradeRate
		t.bucket.take(charge)
		c.noteAdmitLocked(t, charge)
		c.ctrAdmitted.Inc()
		c.ctrDegraded.Inc()
		return AdmittedDegraded
	default:
		c.ctrDelayed.Inc()
		c.updateThrottleLocked()
		return Delayed
	}
}

// pressureHigh reports whether the external overload signal (when
// configured) confirms sustained pressure.
func (c *Controller) pressureHigh() bool {
	if c.cfg.Pressure == nil {
		return true
	}
	return c.cfg.Pressure() > c.cfg.PressureThreshold
}

func (c *Controller) setDegradedLocked(t *tenant, degraded bool, source uint32) {
	if t.degraded == degraded {
		return
	}
	t.degraded = degraded
	n := int64(0)
	for _, tt := range c.tenants {
		if tt.degraded {
			n++
		}
	}
	c.gDegraded.Set(n)
	if degraded {
		c.deg.Degrade(t.name, c.cfg.DegradeRate)
		obs.Emit(obs.Decision{
			Kind:        "degrade",
			Source:      source,
			Cause:       "sustained_overload",
			BeforeState: "exact",
			AfterState:  "sketch",
			Before:      []float64{1},
			After:       []float64{c.cfg.DegradeRate},
			Detail: fmt.Sprintf("tenant=%s class=%s rate=%.2f rel_err~1/sqrt(%.0f*n)",
				t.name, t.class, c.cfg.DegradeRate, c.cfg.DegradeRate),
		})
	} else {
		c.deg.Promote(t.name)
		obs.Emit(obs.Decision{
			Kind:        "promote",
			Source:      source,
			Cause:       "pressure_cleared",
			BeforeState: "sketch",
			AfterState:  "exact",
			Before:      []float64{c.cfg.DegradeRate},
			After:       []float64{1},
			Detail:      fmt.Sprintf("tenant=%s class=%s", t.name, t.class),
		})
	}
}

// DegradedRate returns the sampling rate to apply to a source's epoch (0
// when its tenant is exact).
func (c *Controller) DegradedRate(source uint32) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantOf(source)
	if !t.degraded {
		return 0
	}
	return c.cfg.DegradeRate
}

// noteAdmitLocked folds an admitted payload into the Jain fairness
// accounting and updates the gauge.
func (c *Controller) noteAdmitLocked(t *tenant, bytes float64) {
	const alpha = 0.2
	c.ctrBytes.Add(int64(bytes))
	if t.ewmaBytes == 0 {
		t.ewmaBytes = bytes
	} else {
		t.ewmaBytes += alpha * (bytes - t.ewmaBytes)
	}
	c.gJain.Set(c.jainLocked())
	c.updateThrottleLocked()
}

func (c *Controller) jainLocked() float64 {
	var sum, sumSq float64
	n := 0
	for _, t := range c.tenants {
		// Fairness is over *budget-normalized* admitted throughput: a gold
		// tenant legitimately receives twice a silver tenant's bytes.
		w := c.cfg.ClassWeight[t.class]
		if w <= 0 || t.ewmaBytes <= 0 {
			continue
		}
		x := t.ewmaBytes / w
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// JainIndex returns the current fairness index over tenants with
// admitted traffic (1.0 = perfectly fair, budget-normalized).
func (c *Controller) JainIndex() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jainLocked()
}

// NoteBacklog records that an epoch arrived while the source already
// had delayed epochs queued, so ordering forced it to park without an
// Admit decision. A standing backlog is sustained overload by
// definition, so it advances the degrade hysteresis exactly as an
// over-budget commit would — otherwise a tenant pinned behind its own
// delay queue could never cross DegradeAfter, and degrade-don't-drop
// would starve exactly when it is most needed.
func (c *Controller) NoteBacklog(source uint32, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantOf(source)
	t.bucket.refill(c.cfg.Now())
	t.overStreak++
	t.underStreak = 0
	t.lastDeficit = float64(bytes) - t.bucket.tokens
	if c.cfg.Pressure != nil {
		if c.pressureHigh() {
			t.calmStreak = 0
		} else {
			t.calmStreak++
		}
	}
	if !t.degraded && (t.class != Gold || c.cfg.GoldDegrades) &&
		t.overStreak >= c.cfg.DegradeAfter && c.pressureHigh() {
		c.setDegradedLocked(t, true, source)
	} else if t.degraded && c.cfg.Pressure != nil && t.calmStreak >= c.cfg.PromoteAfter {
		// A backlogged tenant never reaches Admit, so the calm streak is
		// its only path back to exact processing once pressure clears.
		c.setDegradedLocked(t, false, source)
	}
	c.ctrDelayed.Inc()
	c.updateThrottleLocked()
}

// NoteDelayed records that an epoch entered the delay queue.
func (c *Controller) NoteDelayed(source uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenantOf(source).delayed++
	c.bumpDelayedLocked(1)
}

// NoteDrained records that a delayed epoch left the queue and applied.
func (c *Controller) NoteDrained(source uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.tenantOf(source); t.delayed > 0 {
		t.delayed--
	}
	c.bumpDelayedLocked(-1)
}

// NoteShed records that an epoch was shed (discarded without applying;
// the shipper's replay buffer re-delivers it). cause lands in the
// decision trace.
func (c *Controller) NoteShed(source uint32, seq uint64, cause string, fromQueue bool) {
	c.mu.Lock()
	t := c.tenantOf(source)
	if fromQueue {
		if t.delayed > 0 {
			t.delayed--
		}
		c.bumpDelayedLocked(-1)
	}
	class := t.class
	name := t.name
	c.ctrShed.Inc()
	c.mu.Unlock()
	obs.Emit(obs.Decision{
		Kind:   "admission",
		Source: source,
		Epoch:  seq,
		Cause:  cause,
		Detail: fmt.Sprintf("tenant=%s class=%s shed", name, class),
	})
}

func (c *Controller) bumpDelayedLocked(d int64) {
	c.gDelayed.Set(c.gDelayed.Value() + d)
}

// drainCostLocked returns the bucket charge for applying a delayed
// epoch: a degraded tenant drains at the sampled cost, since the
// receiver ingests only the surviving share of its rows.
func (c *Controller) drainCostLocked(t *tenant, bytes int64) float64 {
	n := float64(bytes)
	if t.degraded {
		n *= c.cfg.DegradeRate
	}
	return n
}

// TryDrain asks whether a delayed epoch of the given size may apply now;
// on true the bytes are taken from the tenant's bucket.
func (c *Controller) TryDrain(source uint32, bytes int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantOf(source)
	t.bucket.refill(c.cfg.Now())
	n := c.drainCostLocked(t, bytes)
	if !t.bucket.fits(n) {
		return false
	}
	t.bucket.take(n)
	c.noteAdmitLocked(t, n)
	if t.degraded {
		c.ctrDegraded.Inc()
	}
	return true
}

// ForceDrain unconditionally charges a delayed epoch to its tenant (the
// bucket may go into debt) — used when ordering forces an apply, e.g. a
// gap escape after the shipper lost a shed epoch.
func (c *Controller) ForceDrain(source uint32, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantOf(source)
	t.bucket.refill(c.cfg.Now())
	n := c.drainCostLocked(t, bytes)
	t.bucket.take(n)
	c.noteAdmitLocked(t, n)
	if t.degraded {
		c.ctrDegraded.Inc()
	}
}

// ThrottleMicros returns the backpressure hint for a source's acks: how
// long the shipper should stretch its epoch cadence so the tenant's
// bucket catches up (0 = no throttling needed).
func (c *Controller) ThrottleMicros(source uint32) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantOf(source)
	if t.overStreak == 0 && t.delayed == 0 && t.bucket.tokens >= 0 {
		return 0
	}
	deficit := t.lastDeficit
	if t.bucket.tokens < 0 {
		deficit += -t.bucket.tokens
	}
	if t.bucket.rate <= 0 || deficit <= 0 {
		return 0
	}
	d := time.Duration(deficit / t.bucket.rate * float64(time.Second))
	if d > c.cfg.MaxThrottle {
		d = c.cfg.MaxThrottle
	}
	if d < 0 {
		d = 0
	}
	return uint64(d / time.Microsecond)
}

// ObserveCommitLatency feeds the per-class ingest latency histogram
// (EpochEnd arrival to apply, queue wait included) and refreshes the
// throttle gauge.
func (c *Controller) ObserveCommitLatency(source uint32, d time.Duration) {
	c.mu.Lock()
	cl := c.tenantOf(source).class
	c.mu.Unlock()
	c.classHist[cl].Observe(d)
}

// updateThrottleLocked refreshes the adm_throttle_micros gauge with the
// worst current per-tenant deficit.
func (c *Controller) updateThrottleLocked() {
	var worst float64
	for _, t := range c.tenants {
		if t.bucket.rate <= 0 {
			continue
		}
		deficit := t.lastDeficit
		if t.overStreak == 0 {
			deficit = 0
		}
		if t.bucket.tokens < 0 {
			deficit += -t.bucket.tokens
		}
		if s := deficit / t.bucket.rate; s > worst {
			worst = s
		}
	}
	d := time.Duration(worst * float64(time.Second))
	if d > c.cfg.MaxThrottle {
		d = c.cfg.MaxThrottle
	}
	c.gThrottle.Set(int64(d / time.Microsecond))
}

// Degraded reports whether a tenant is currently degraded to sketches.
func (c *Controller) Degraded(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenants[name]
	return t != nil && t.degraded
}

// Snapshot summarizes per-tenant admission state for status endpoints.
func (c *Controller) Snapshot() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	tenants := make(map[string]any, len(c.tenants))
	for name, t := range c.tenants {
		tenants[name] = map[string]any{
			"class":    t.class.String(),
			"tokens":   math.Round(t.bucket.tokens),
			"degraded": t.degraded,
			"delayed":  t.delayed,
		}
	}
	out := map[string]any{
		"jain_fairness": c.jainLocked(),
		"tenants":       tenants,
	}
	if c.cfg.Pressure != nil {
		out["pressure"] = map[string]any{
			"value":     c.cfg.Pressure(),
			"threshold": c.cfg.PressureThreshold,
			"high":      c.pressureHigh(),
		}
	}
	return out
}
