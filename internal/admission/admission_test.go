package admission

import (
	"testing"
	"time"

	"jarvis/internal/obs"
)

// fakeClock is a manually advanced clock for deterministic bucket math.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}
func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// testController builds a controller with a 1000 B/s silver budget, a
// 1000 B burst and the given clock — one 1000 B epoch per second fits
// exactly.
func testController(clk *fakeClock) *Controller {
	return NewController(Config{
		RateBytesPerSec: 1000,
		BurstBytes:      1000,
		DegradeAfter:    3,
		PromoteAfter:    4,
		DegradeRate:     0.25,
		Now:             clk.now,
	})
}

func TestClassParseAndWire(t *testing.T) {
	for _, c := range []Class{BestEffort, Silver, Gold} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
		if ClassFromWire(c.Wire()) != c {
			t.Fatalf("wire round-trip failed for %v", c)
		}
	}
	if ClassFromWire(0) != Silver {
		t.Fatalf("legacy wire byte 0 must map to silver")
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Fatalf("expected error for unknown class")
	}
	if c, err := ParseClass(""); err != nil || c != Silver {
		t.Fatalf("empty class must default to silver")
	}
}

func TestAdmitWithinBudget(t *testing.T) {
	clk := newFakeClock()
	c := testController(clk)
	c.Register(1, "a", Silver)
	for i := 0; i < 10; i++ {
		if v := c.Admit(1, 900); v != Admitted {
			t.Fatalf("epoch %d: verdict %v, want Admitted", i, v)
		}
		clk.advance(time.Second)
	}
	if got := c.Counters().Get(CtrEpochsAdmitted); got != 10 {
		t.Fatalf("adm_epochs_admitted = %d, want 10", got)
	}
	if c.ThrottleMicros(1) != 0 {
		t.Fatalf("healthy tenant must not be throttled")
	}
}

func TestDelayThenDrain(t *testing.T) {
	clk := newFakeClock()
	c := testController(clk)
	c.Register(1, "a", Silver)
	if v := c.Admit(1, 1000); v != Admitted {
		t.Fatalf("burst epoch: %v", v)
	}
	if v := c.Admit(1, 1000); v != Delayed {
		t.Fatalf("second epoch in the same instant should be Delayed, got %v", v)
	}
	c.NoteDelayed(1)
	if c.ThrottleMicros(1) == 0 {
		t.Fatalf("delayed tenant must carry a throttle hint")
	}
	if c.TryDrain(1, 1000) {
		t.Fatalf("drain must fail before the bucket refills")
	}
	clk.advance(time.Second)
	if !c.TryDrain(1, 1000) {
		t.Fatalf("drain must succeed after refill")
	}
	c.NoteDrained(1)
	if got := c.Counters().Get(CtrEpochsDelayed); got != 1 {
		t.Fatalf("adm_epochs_delayed = %d, want 1", got)
	}
}

func TestThrottleHintBounded(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		RateBytesPerSec: 10, // brutally slow refill
		BurstBytes:      10,
		MaxThrottle:     500 * time.Millisecond,
		Now:             clk.now,
	})
	c.Register(1, "a", Silver)
	c.Admit(1, 10)
	if v := c.Admit(1, 1_000_000); v != Delayed {
		t.Fatalf("want Delayed, got %v", v)
	}
	hint := c.ThrottleMicros(1)
	if hint == 0 || hint > 500_000 {
		t.Fatalf("throttle hint %d µs outside (0, 500ms]", hint)
	}
}

func TestDegradeAndPromote(t *testing.T) {
	obs.Decisions().Reset()
	clk := newFakeClock()
	c := testController(clk)
	c.Register(1, "hot", Silver)
	c.Admit(1, 1000) // drain the burst

	// The third consecutive over-budget commit trips the hysteresis and
	// is itself admitted in degraded (sampled) form.
	for i := 0; i < 2; i++ {
		if v := c.Admit(1, 1000); v != Delayed {
			t.Fatalf("over-budget commit %d: %v, want Delayed", i, v)
		}
	}
	if v := c.Admit(1, 1000); v != AdmittedDegraded {
		t.Fatalf("post-degrade commit: %v, want AdmittedDegraded", v)
	}
	if !c.Degraded("hot") {
		t.Fatalf("tenant should be degraded")
	}
	if r := c.DegradedRate(1); r != 0.25 {
		t.Fatalf("DegradedRate = %v, want 0.25", r)
	}
	if got := c.Counters().Get(GaugeTenantsDegraded); got != 1 {
		t.Fatalf("adm_tenants_degraded = %d, want 1", got)
	}

	// Pressure clears: commits that fit the exact budget promote back
	// after PromoteAfter in a row.
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		if v := c.Admit(1, 500); v != Admitted {
			t.Fatalf("recovery commit %d: %v, want Admitted", i, v)
		}
	}
	if c.Degraded("hot") {
		t.Fatalf("tenant should have promoted back to exact")
	}
	if got := c.Counters().Get(GaugeTenantsDegraded); got != 0 {
		t.Fatalf("adm_tenants_degraded = %d, want 0", got)
	}

	var sawDegrade, sawPromote bool
	for _, d := range obs.Decisions().Recent(64) {
		switch d.Kind {
		case "degrade":
			sawDegrade = true
			if d.BeforeState != "exact" || d.AfterState != "sketch" {
				t.Fatalf("degrade decision states: %s→%s", d.BeforeState, d.AfterState)
			}
		case "promote":
			sawPromote = true
		}
	}
	if !sawDegrade || !sawPromote {
		t.Fatalf("decision trace missing transitions (degrade=%v promote=%v)", sawDegrade, sawPromote)
	}
}

func TestGoldNeverDegrades(t *testing.T) {
	clk := newFakeClock()
	c := testController(clk)
	c.Register(2, "vip", Gold)
	// Gold weight doubles the budget: burn it, then stay over-budget far
	// past the hysteresis threshold.
	c.Admit(2, 2000)
	for i := 0; i < 20; i++ {
		if v := c.Admit(2, 2000); v != Delayed {
			t.Fatalf("gold over-budget commit %d: %v, want Delayed (never degraded)", i, v)
		}
	}
	if c.Degraded("vip") {
		t.Fatalf("gold tenants must never degrade")
	}
}

func TestPressureGateBlocksDegrade(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{
		RateBytesPerSec:   1000,
		BurstBytes:        1000,
		DegradeAfter:      2,
		Now:               clk.now,
		Pressure:          func() float64 { return 0.001 },
		PressureThreshold: 0.1,
	}
	c := NewController(cfg)
	c.Register(1, "a", Silver)
	c.Admit(1, 1000)
	for i := 0; i < 10; i++ {
		if v := c.Admit(1, 1000); v != Delayed {
			t.Fatalf("low pressure must keep delaying, got %v", v)
		}
	}
}

func TestJainFairness(t *testing.T) {
	clk := newFakeClock()
	c := testController(clk)
	c.Register(1, "a", Silver)
	c.Register(2, "b", Silver)
	for i := 0; i < 20; i++ {
		c.Admit(1, 400)
		c.Admit(2, 400)
		clk.advance(time.Second)
	}
	if j := c.JainIndex(); j < 0.99 {
		t.Fatalf("equal tenants: Jain = %v, want ~1", j)
	}

	// A gold tenant at twice the silver throughput is *fair* after
	// budget normalization.
	c2 := testController(clk)
	c2.Register(1, "s", Silver)
	c2.Register(2, "g", Gold)
	for i := 0; i < 20; i++ {
		c2.Admit(1, 400)
		c2.Admit(2, 800)
		clk.advance(time.Second)
	}
	if j := c2.JainIndex(); j < 0.99 {
		t.Fatalf("budget-normalized gold/silver: Jain = %v, want ~1", j)
	}

	// Genuine skew shows up.
	c3 := testController(clk)
	c3.Register(1, "a", Silver)
	c3.Register(2, "b", Silver)
	for i := 0; i < 20; i++ {
		c3.Admit(1, 50)
		c3.Admit(2, 900)
		clk.advance(time.Second)
	}
	if j := c3.JainIndex(); j > 0.85 {
		t.Fatalf("skewed tenants: Jain = %v, want well below 1", j)
	}
}

func TestShedAccounting(t *testing.T) {
	obs.Decisions().Reset()
	clk := newFakeClock()
	c := testController(clk)
	c.Register(1, "a", BestEffort)
	c.NoteDelayed(1)
	c.NoteShed(1, 7, "delay_queue_full", true)
	if got := c.Counters().Get(CtrEpochsShed); got != 1 {
		t.Fatalf("epochs_shed = %d, want 1", got)
	}
	if got := c.Counters().Get(GaugeDelayedEpochs); got != 0 {
		t.Fatalf("adm_delayed_epochs = %d, want 0 after shed", got)
	}
	found := false
	for _, d := range obs.Decisions().Recent(16) {
		if d.Kind == "admission" && d.Epoch == 7 && d.Cause == "delay_queue_full" {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed decision event missing")
	}
}

func TestAutoRegisterUnknownSource(t *testing.T) {
	clk := newFakeClock()
	c := testController(clk)
	if v := c.Admit(9, 100); v != Admitted {
		t.Fatalf("unknown source should auto-register and admit, got %v", v)
	}
	if name := c.Tenant(9); name != "src-9" {
		t.Fatalf("auto tenant = %q", name)
	}
	if cl := c.Class(9); cl != Silver {
		t.Fatalf("auto class = %v", cl)
	}
}

// TestPressureClearPromotes drives a tenant into degradation under high
// pressure, keeps it over its exact budget (so underStreak never
// advances), then drops the pressure signal: the calm streak alone must
// promote it back to exact processing.
func TestPressureClearPromotes(t *testing.T) {
	clk := newFakeClock()
	pressure := 1.0
	c := NewController(Config{
		RateBytesPerSec:   1000,
		BurstBytes:        1000,
		DegradeAfter:      2,
		PromoteAfter:      3,
		DegradeRate:       0.25,
		Now:               clk.now,
		Pressure:          func() float64 { return pressure },
		PressureThreshold: 0.1,
	})
	c.Register(1, "a", Silver)
	c.Admit(1, 1000) // drains the burst
	for i := 0; i < 3; i++ {
		c.Admit(1, 2000)
	}
	if !c.Degraded("a") {
		t.Fatal("tenant must degrade under sustained overload with pressure high")
	}
	// Pressure clears, but the tenant stays over its exact budget: the
	// bucket never refills (clock frozen) so every commit is over-sized.
	pressure = 0.0
	for i := 0; i < 2; i++ {
		c.Admit(1, 2000)
		if !c.Degraded("a") {
			t.Fatalf("promoted after only %d calm decisions, want %d", i+1, 3)
		}
	}
	c.Admit(1, 2000)
	if c.Degraded("a") {
		t.Fatal("calm streak >= PromoteAfter must promote even while over budget")
	}
	// Snapshot reflects the gate.
	snap := c.Snapshot()
	p, ok := snap["pressure"].(map[string]any)
	if !ok || p["high"] != false {
		t.Fatalf("snapshot pressure gate = %+v, want high=false", snap["pressure"])
	}
}

// TestPressureClearPromotesBacklogged covers the starvation corner: a
// tenant whose epochs all arrive behind its delay queue only ever
// reports NoteBacklog, never Admit. The calm streak must still promote
// it once pressure clears.
func TestPressureClearPromotesBacklogged(t *testing.T) {
	clk := newFakeClock()
	pressure := 1.0
	c := NewController(Config{
		RateBytesPerSec:   1000,
		BurstBytes:        1000,
		DegradeAfter:      2,
		PromoteAfter:      3,
		DegradeRate:       0.25,
		Now:               clk.now,
		Pressure:          func() float64 { return pressure },
		PressureThreshold: 0.1,
	})
	c.Register(1, "a", Silver)
	c.NoteBacklog(1, 2000)
	c.NoteBacklog(1, 2000)
	if !c.Degraded("a") {
		t.Fatal("backlog streak must degrade while pressure is high")
	}
	pressure = 0.0
	for i := 0; i < 3; i++ {
		c.NoteBacklog(1, 2000)
	}
	if c.Degraded("a") {
		t.Fatal("backlogged tenant must promote via the calm streak")
	}
}

// TestTenantRateOverride gives one tenant an explicit rate: the
// override must replace the class-weighted global rate and scale its
// burst by the global burst:rate ratio, while other tenants keep the
// default budget.
func TestTenantRateOverride(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		RateBytesPerSec: 1000,
		BurstBytes:      2000, // ratio 2: override burst = 2*rate
		DegradeAfter:    3,
		Now:             clk.now,
		TenantRate:      map[string]float64{"big": 8000},
	})
	c.Register(1, "big", Silver)
	c.Register(2, "small", Silver)

	// big starts with burst 16000 and refills 8000/s.
	if v := c.Admit(1, 16000); v != Admitted {
		t.Fatalf("override burst: verdict %v, want Admitted", v)
	}
	if v := c.Admit(1, 8000); v != Delayed {
		t.Fatal("empty bucket must delay")
	}
	clk.advance(time.Second)
	if v := c.Admit(1, 8000); v != Admitted {
		t.Fatal("override rate must refill 8000 B/s")
	}

	// small keeps the silver default (1000 B/s, 2000 burst).
	if v := c.Admit(2, 2000); v != Admitted {
		t.Fatal("default burst for non-overridden tenant")
	}
	if v := c.Admit(2, 1500); v != Delayed {
		t.Fatal("non-overridden tenant must not inherit the override")
	}

	// A class re-registration (agent reconnects as gold) keeps the
	// override rather than reverting to weighted defaults.
	c.Register(1, "big", Gold)
	clk.advance(time.Second)
	if v := c.Admit(1, 8000); v != Admitted {
		t.Fatal("override must survive class re-registration")
	}
}
