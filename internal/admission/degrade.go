package admission

import (
	"math"
	"math/rand/v2"
	"strings"
	"sync"

	"jarvis/internal/obs"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// DefaultWindowMicros matches the repo's canonical 1-second tumbling
// windows; the Degrader uses it to map a raw record's event time to the
// window id the engine will assign downstream.
const DefaultWindowMicros = 1_000_000

// TenantOf maps a result row's group key back to the tenant the key
// belongs to, so rescaling touches exactly the degraded tenant's rows.
type TenantOf func(telemetry.GroupKey) string

// DefaultTenantOf extracts the tenant prefix of a "tenant|stat|bucket"
// string key (the LogAnalytics convention); purely numeric keys carry no
// tenancy and return "".
func DefaultTenantOf(k telemetry.GroupKey) string {
	if k.Str == "" {
		return ""
	}
	if i := strings.IndexByte(k.Str, '|'); i >= 0 {
		return k.Str[:i]
	}
	return k.Str
}

// Degrader applies degrade-don't-drop: while a tenant is degraded its
// raw records are Bernoulli-sampled at the recorded rate (the same WSP
// discipline as internal/synopsis, §VI-D) before ingestion, and the
// tenant's aggregate results are rescaled by 1/rate on the way out, so
// queries keep answering with a bounded, recorded error instead of the
// tenant's data being dropped. Partial aggregates (AggRow/QuantileRow
// shipped by the agent's own pipeline) and watermarks always pass
// exactly — only the expensive raw-record floods are sampled.
//
// All methods are safe for concurrent use.
type Degrader struct {
	mu           sync.Mutex
	windowMicros int64
	tenantOf     TenantOf
	rates        map[string]float64           // active degraded tenants
	rngs         map[string]*rand.Rand        // deterministic per-tenant streams
	windows      map[string]map[int64]float64 // tenant → window id → sample rate
	sampledOut   obs.Counter
}

// NewDegrader creates an idle degrader with the default window duration
// and tenant-key mapping.
func NewDegrader() *Degrader {
	return &Degrader{
		windowMicros: DefaultWindowMicros,
		tenantOf:     DefaultTenantOf,
		rates:        make(map[string]float64),
		rngs:         make(map[string]*rand.Rand),
		windows:      make(map[string]map[int64]float64),
	}
}

// SetWindowMicros overrides the tumbling-window duration used to map raw
// event times to window ids (call before any traffic if the deployed
// query windows differ from 1 s).
func (d *Degrader) SetWindowMicros(m int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m > 0 {
		d.windowMicros = m
	}
}

// SetTenantOf overrides the group-key→tenant mapping used during result
// rescaling (e.g. Pingmesh queries keyed by packed IPs).
func (d *Degrader) SetTenantOf(f TenantOf) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f != nil {
		d.tenantOf = f
	}
}

// Degrade switches a tenant to sampled ingestion at the given rate.
func (d *Degrader) Degrade(tenantName string, rate float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rate <= 0 || rate >= 1 {
		return
	}
	d.rates[tenantName] = rate
	if d.rngs[tenantName] == nil {
		seed := fnv64(tenantName)
		d.rngs[tenantName] = rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
	}
}

// Promote returns a tenant to exact ingestion. Windows already sampled
// keep their recorded rate so in-flight results still rescale correctly.
func (d *Degrader) Promote(tenantName string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.rates, tenantName)
}

// Active returns the tenant's current sampling rate (0 when exact).
func (d *Degrader) Active(tenantName string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rates[tenantName]
}

// SampleBatch filters one degraded batch in place of the original:
// partial aggregates, quantile sketches and watermarks pass through
// untouched, raw records survive independently with the tenant's rate.
// Every window a sampled raw record maps to is recorded for rescaling.
// The input batch is not modified.
func (d *Degrader) SampleBatch(tenantName string, in telemetry.Batch) telemetry.Batch {
	d.mu.Lock()
	defer d.mu.Unlock()
	rate, ok := d.rates[tenantName]
	if !ok {
		return in
	}
	rng := d.rngs[tenantName]
	wins := d.windows[tenantName]
	if wins == nil {
		wins = make(map[int64]float64)
		d.windows[tenantName] = wins
	}
	out := make(telemetry.Batch, 0, int(float64(len(in))*rate)+8)
	dropped := int64(0)
	for _, rec := range in {
		switch rec.Data.(type) {
		case *telemetry.AggRow, *telemetry.QuantileRow, *wire.Watermark:
			out = append(out, rec)
			continue
		}
		wid := rec.Window
		if wid == 0 && d.windowMicros > 0 {
			wid = rec.Time / d.windowMicros
		}
		if _, seen := wins[wid]; !seen {
			wins[wid] = rate
			// Bound the recorded-window map for long-lived tenants: windows
			// this far behind the write frontier have long been emitted.
			if len(wins) > 4096 {
				for w := range wins {
					if w < wid-2048 {
						delete(wins, w)
					}
				}
			}
		}
		if rng.Float64() < rate {
			out = append(out, rec)
		} else {
			dropped++
		}
	}
	if dropped > 0 {
		d.sampledOut.Add(dropped)
	}
	return out
}

// Rescale compensates sampled windows in a batch of final results:
// aggregate counts and sums (and quantile sketch bucket counts) of a
// degraded tenant's sampled windows are scaled by 1/rate, approximating
// the exact answer with relative error ~1/sqrt(rate·n). Payloads are
// copied before scaling — the engine's state is never mutated. Min/Max
// are order statistics of the surviving sample and stay as observed.
func (d *Degrader) Rescale(out telemetry.Batch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.windows) == 0 {
		return
	}
	for i := range out {
		switch row := out[i].Data.(type) {
		case *telemetry.AggRow:
			if rate := d.rateFor(row.Key, row.Window); rate > 0 {
				cp := *row
				inv := 1 / rate
				cp.Count = int64(math.Round(float64(cp.Count) * inv))
				cp.Sum *= inv
				out[i].Data = &cp
			}
		case *telemetry.QuantileRow:
			if rate := d.rateFor(row.Key, row.Window); rate > 0 {
				cp := *row
				inv := 1 / rate
				cp.Counts = append([]int64(nil), row.Counts...)
				var total int64
				for j, c := range cp.Counts {
					cp.Counts[j] = int64(math.Round(float64(c) * inv))
					total += cp.Counts[j]
				}
				cp.Total = total
				out[i].Data = &cp
			}
		}
	}
}

// rateFor returns the recorded sampling rate for a result row's
// (tenant, window), or 0 when the window was ingested exactly.
func (d *Degrader) rateFor(key telemetry.GroupKey, window int64) float64 {
	name := d.tenantOf(key)
	if name == "" {
		return 0
	}
	wins := d.windows[name]
	if wins == nil {
		return 0
	}
	return wins[window]
}

// RelativeErrorBound returns the ~95% relative error bound of a sampled
// count aggregate over n raw records at the given rate
// (1.96·sqrt((1-rate)/(rate·n)) for a Bernoulli sample).
func RelativeErrorBound(rate float64, n int64) float64 {
	if rate <= 0 || rate >= 1 || n <= 0 {
		return 0
	}
	return 1.96 * math.Sqrt((1-rate)/(rate*float64(n)))
}

// fnv64 hashes a tenant name to a deterministic RNG seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
