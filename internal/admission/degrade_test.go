package admission

import (
	"math"
	"testing"

	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// rawBatch builds n raw log-line records for a tenant, evenly spread over
// the given window ids (1-second windows).
func rawBatch(n int, windows ...int64) telemetry.Batch {
	out := make(telemetry.Batch, 0, n)
	for i := 0; i < n; i++ {
		w := windows[i%len(windows)]
		out = append(out, telemetry.Record{
			Time:     w*DefaultWindowMicros + int64(i%1000),
			WireSize: 64,
			Data:     &telemetry.LogLine{Timestamp: w * DefaultWindowMicros, Raw: "ts level=INFO"},
		})
	}
	return out
}

func TestSamplePassesPartialsAndWatermarks(t *testing.T) {
	d := NewDegrader()
	d.Degrade("t1", 0.1)
	in := telemetry.Batch{
		{WireSize: 40, Data: &telemetry.AggRow{Key: telemetry.StrKey("t1|lat|1"), Window: 3, Count: 10, Sum: 5}},
		{WireSize: 40, Data: &telemetry.QuantileRow{Key: telemetry.StrKey("t1|lat|1"), Window: 3, Counts: []int64{1, 2}}},
		{WireSize: 17, Data: &wire.Watermark{Time: 99}},
	}
	out := d.SampleBatch("t1", in)
	if len(out) != 3 {
		t.Fatalf("partials/watermarks must always survive: %d/3", len(out))
	}
}

func TestSampleRateAndWindowRecording(t *testing.T) {
	d := NewDegrader()
	d.Degrade("t1", 0.25)
	in := rawBatch(4000, 0, 1)
	out := d.SampleBatch("t1", in)
	frac := float64(len(out)) / float64(len(in))
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("survival fraction %v far from rate 0.25", frac)
	}
	// Both touched windows must have recorded the rate; untouched windows
	// must not rescale.
	res := telemetry.Batch{
		{Data: &telemetry.AggRow{Key: telemetry.StrKey("t1|lat|2"), Window: 0, Count: 100, Sum: 10}},
		{Data: &telemetry.AggRow{Key: telemetry.StrKey("t1|lat|2"), Window: 1, Count: 100, Sum: 10}},
		{Data: &telemetry.AggRow{Key: telemetry.StrKey("t1|lat|2"), Window: 7, Count: 100, Sum: 10}},
		{Data: &telemetry.AggRow{Key: telemetry.StrKey("t2|lat|2"), Window: 0, Count: 100, Sum: 10}},
	}
	orig := res[0].Data.(*telemetry.AggRow)
	d.Rescale(res)
	for i, wantCount := range []int64{400, 400, 100, 100} {
		if got := res[i].Data.(*telemetry.AggRow).Count; got != wantCount {
			t.Fatalf("row %d: Count = %d, want %d", i, got, wantCount)
		}
	}
	if res[0].Data.(*telemetry.AggRow) == orig {
		t.Fatalf("rescale must copy the payload, not mutate engine state")
	}
	if orig.Count != 100 {
		t.Fatalf("original payload mutated: Count = %d", orig.Count)
	}
	if got := res[0].Data.(*telemetry.AggRow).Sum; math.Abs(got-40) > 1e-9 {
		t.Fatalf("Sum = %v, want 40", got)
	}
}

func TestRescaleQuantileRow(t *testing.T) {
	d := NewDegrader()
	d.Degrade("t1", 0.5)
	d.SampleBatch("t1", rawBatch(100, 5))
	res := telemetry.Batch{
		{Data: &telemetry.QuantileRow{Key: telemetry.StrKey("t1|lat|0"), Window: 5,
			Counts: []int64{2, 4, 6}, Total: 12}},
	}
	d.Rescale(res)
	row := res[0].Data.(*telemetry.QuantileRow)
	want := []int64{4, 8, 12}
	for i := range want {
		if row.Counts[i] != want[i] {
			t.Fatalf("Counts[%d] = %d, want %d", i, row.Counts[i], want[i])
		}
	}
	if row.Total != 24 {
		t.Fatalf("Total = %d, want 24", row.Total)
	}
}

func TestPromoteKeepsRecordedWindows(t *testing.T) {
	d := NewDegrader()
	d.Degrade("t1", 0.5)
	d.SampleBatch("t1", rawBatch(100, 2))
	d.Promote("t1")
	if d.Active("t1") != 0 {
		t.Fatalf("promoted tenant should be exact")
	}
	// Window 2 was sampled — in-flight results still rescale.
	res := telemetry.Batch{
		{Data: &telemetry.AggRow{Key: telemetry.StrKey("t1|x|0"), Window: 2, Count: 10, Sum: 1}},
		{Data: &telemetry.AggRow{Key: telemetry.StrKey("t1|x|0"), Window: 3, Count: 10, Sum: 1}},
	}
	d.Rescale(res)
	if got := res[0].Data.(*telemetry.AggRow).Count; got != 20 {
		t.Fatalf("sampled window after promote: Count = %d, want 20", got)
	}
	if got := res[1].Data.(*telemetry.AggRow).Count; got != 10 {
		t.Fatalf("post-promote window must stay exact: Count = %d", got)
	}
	// And a post-promote batch passes through whole.
	in := rawBatch(100, 3)
	if out := d.SampleBatch("t1", in); len(out) != len(in) {
		t.Fatalf("exact tenant sampled: %d/%d", len(out), len(in))
	}
}

func TestSampleDeterministicPerTenant(t *testing.T) {
	a, b := NewDegrader(), NewDegrader()
	a.Degrade("t1", 0.3)
	b.Degrade("t1", 0.3)
	in := rawBatch(500, 0)
	oa, ob := a.SampleBatch("t1", in), b.SampleBatch("t1", in)
	if len(oa) != len(ob) {
		t.Fatalf("same tenant must sample deterministically: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i].Time != ob[i].Time {
			t.Fatalf("sample divergence at %d", i)
		}
	}
}

func TestDefaultTenantOf(t *testing.T) {
	if got := DefaultTenantOf(telemetry.StrKey("acme|latency|3")); got != "acme" {
		t.Fatalf("prefix extraction: %q", got)
	}
	if got := DefaultTenantOf(telemetry.StrKey("solo")); got != "solo" {
		t.Fatalf("bare key: %q", got)
	}
	if got := DefaultTenantOf(telemetry.NumKey(42)); got != "" {
		t.Fatalf("numeric key must map to no tenant: %q", got)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	if RelativeErrorBound(0.25, 0) != 0 || RelativeErrorBound(1, 100) != 0 {
		t.Fatalf("degenerate inputs must return 0")
	}
	loose := RelativeErrorBound(0.25, 100)
	tight := RelativeErrorBound(0.25, 10000)
	if !(tight < loose) || tight <= 0 {
		t.Fatalf("bound must shrink with n: %v vs %v", loose, tight)
	}
}
