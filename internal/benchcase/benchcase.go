// Package benchcase defines the canonical engine micro-benchmark
// workloads in one place, shared by the repository benchmarks
// (bench_test.go) and cmd/jarvis-bench's machine-readable `-exp micro`
// mode, so BENCH_<n>.json always measures exactly the same setups as
// `go test -bench`.
package benchcase

import (
	"jarvis/internal/core"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// PipelineEpoch builds the standard source-pipeline benchmark: S2SProbe
// with a full budget, all load factors at 1, fed one second of Pingmesh
// data at the paper's 10× rate. legacy selects the record-at-a-time
// reference path.
func PipelineEpoch(legacy bool) (*stream.Pipeline, telemetry.Batch, error) {
	opts := stream.DefaultOptions(1.0, 0)
	opts.RecordAtATime = legacy
	pipe, err := stream.NewPipeline(plan.S2SProbe(), opts)
	if err != nil {
		return nil, nil, err
	}
	if err := pipe.SetLoadFactors([]float64{1, 1, 1}); err != nil {
		return nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	return pipe, gen.NextWindow(1_000_000), nil
}

// EndToEnd builds the standard building-block benchmark: one adaptive
// S2SProbe source at 80% budget plus its processor, fed one second of
// Pingmesh data.
func EndToEnd() (*core.BuildingBlock, telemetry.Batch, error) {
	bb, err := core.NewBuildingBlock(plan.S2SProbe(), 1, core.SourceOptions{
		BudgetFrac: 0.8, RateMbps: 26.2, Adapt: true,
	})
	if err != nil {
		return nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(5))
	return bb, gen.NextWindow(1_000_000), nil
}
