// Package benchcase defines the canonical engine micro-benchmark
// workloads in one place, shared by the repository benchmarks
// (bench_test.go) and cmd/jarvis-bench's machine-readable `-exp micro`
// mode, so BENCH_<n>.json always measures exactly the same setups as
// `go test -bench`.
package benchcase

import (
	"bytes"
	"fmt"

	"jarvis/internal/core"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// PipelineEpoch builds the standard source-pipeline benchmark: S2SProbe
// with a full budget, all load factors at 1, fed one second of Pingmesh
// data at the paper's 10× rate. legacy selects the record-at-a-time
// reference path.
func PipelineEpoch(legacy bool) (*stream.Pipeline, telemetry.Batch, error) {
	opts := stream.DefaultOptions(1.0, 0)
	opts.RecordAtATime = legacy
	pipe, err := stream.NewPipeline(plan.S2SProbe(), opts)
	if err != nil {
		return nil, nil, err
	}
	if err := pipe.SetLoadFactors([]float64{1, 1, 1}); err != nil {
		return nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	return pipe, gen.NextWindow(1_000_000), nil
}

// EndToEnd builds the standard building-block benchmark: one adaptive
// S2SProbe source at 80% budget plus its processor, fed one second of
// Pingmesh data.
func EndToEnd() (*core.BuildingBlock, telemetry.Batch, error) {
	bb, err := core.NewBuildingBlock(plan.S2SProbe(), 1, core.SourceOptions{
		BudgetFrac: 0.8, RateMbps: 26.2, Adapt: true,
	})
	if err != nil {
		return nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(5))
	return bb, gen.NextWindow(1_000_000), nil
}

// SPIngest builds the canonical SP-side ingest benchmark: an S2SProbe
// engine plus one second of Pingmesh drain, returned both as the decoded
// row batch (the input of BenchmarkSPIngest since PR 1) and as the same
// records decoded into a wire-v2 SoA batch (BenchmarkSPIngestColumnar).
// The two inputs carry identical record sequences, so the benchmarks
// measure execution strategy, not workload differences.
func SPIngest() (*stream.SPEngine, telemetry.Batch, *wire.ColumnarBatch, error) {
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		return nil, nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(2))
	batch := gen.NextWindow(1_000_000)
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	fw.SetColumnar(true)
	if err := fw.WriteFrame(wire.Frame{StreamID: 0, Source: 1, Records: batch}); err != nil {
		return nil, nil, nil, err
	}
	if err := fw.Flush(); err != nil {
		return nil, nil, nil, err
	}
	fr := wire.NewFrameReader(bytes.NewReader(buf.Bytes()))
	fr.SetColumnarExec(true)
	f, err := fr.ReadFrame()
	if err != nil {
		return nil, nil, nil, err
	}
	if f.Cols == nil {
		return nil, nil, nil, fmt.Errorf("benchcase: frame did not decode to a SoA batch")
	}
	if f.Cols.Records() != len(batch) {
		return nil, nil, nil, fmt.Errorf("benchcase: SoA decode yielded %d of %d records", f.Cols.Records(), len(batch))
	}
	return engine, batch, f.Cols, nil
}

// WarmPipeline returns the PipelineEpoch pipeline after several epochs
// of input, so its G+R stage carries realistic open-window state — the
// setup for the snapshot/restore micro-benchmarks.
func WarmPipeline(epochs int) (*stream.Pipeline, error) {
	pipe, batch, err := PipelineEpoch(false)
	if err != nil {
		return nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	for i := 0; i < epochs; i++ {
		pipe.RunEpoch(batch)
		batch = gen.NextWindow(1_000_000)
	}
	return pipe, nil
}

// ShippedEpoch returns one drain-heavy epoch (all load factors at zero,
// so the full raw batch ships to the SP) plus the same epoch encoded as
// wire-v2 columnar frames — the input for the decode and replay-apply
// micro-benchmarks, sized like the epochs a recovering SP actually
// re-applies (the sequenced shipper negotiates v2 between current
// builds, so columnar is the shipped format).
func ShippedEpoch() (stream.EpochResult, []byte, error) {
	pipe, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(1.0, 0))
	if err != nil {
		return stream.EpochResult{}, nil, err
	}
	if err := pipe.SetLoadFactors([]float64{0, 0, 0}); err != nil {
		return stream.EpochResult{}, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	res := pipe.RunEpoch(gen.NextWindow(1_000_000))
	var buf bytes.Buffer
	sh := transport.NewShipper(1, &buf)
	sh.EnableColumnar()
	if err := sh.ShipEpoch(res); err != nil {
		return stream.EpochResult{}, nil, err
	}
	return res, buf.Bytes(), nil
}

// PipelineEpochColumnar builds the SoA agent-epoch benchmark: the
// PipelineEpoch pipeline fed the same second of Pingmesh data as
// generated column sections (NextWindowCols is trace-identical to
// NextWindow), so BenchmarkAgentEpochColumnar and
// BenchmarkPipelineEpoch process identical record sequences on the two
// execution strategies.
func PipelineEpochColumnar() (*stream.Pipeline, *wire.ColumnarBatch, error) {
	pipe, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(1.0, 0))
	if err != nil {
		return nil, nil, err
	}
	if err := pipe.SetLoadFactors([]float64{1, 1, 1}); err != nil {
		return nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	var cb wire.ColumnarBatch
	gen.NextWindowCols(1_000_000, &cb)
	return pipe, &cb, nil
}

// SpanIngest builds the TraceSpanAgg ingest benchmark pair: a span
// engine plus one second of SpanGen drain as decoded rows and as the
// identical records decoded into a wire-v2 SoA batch — the span-query
// analogue of SPIngest, so the columnar-vs-row A/B holds for the
// distributed-tracing workload too.
func SpanIngest() (*stream.SPEngine, telemetry.Batch, *wire.ColumnarBatch, error) {
	engine, err := stream.NewSPEngine(plan.TraceSpanAgg())
	if err != nil {
		return nil, nil, nil, err
	}
	gen := workload.NewSpanGen(workload.DefaultSpanConfig(2))
	batch := gen.NextWindow(1_000_000)
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	fw.SetColumnar(true)
	if err := fw.WriteFrame(wire.Frame{StreamID: 0, Source: 1, Records: batch}); err != nil {
		return nil, nil, nil, err
	}
	if err := fw.Flush(); err != nil {
		return nil, nil, nil, err
	}
	fr := wire.NewFrameReader(bytes.NewReader(buf.Bytes()))
	fr.SetColumnarExec(true)
	f, err := fr.ReadFrame()
	if err != nil {
		return nil, nil, nil, err
	}
	if f.Cols == nil {
		return nil, nil, nil, fmt.Errorf("benchcase: span frame did not decode to a SoA batch")
	}
	if f.Cols.Records() != len(batch) {
		return nil, nil, nil, fmt.Errorf("benchcase: span SoA decode yielded %d of %d records", f.Cols.Records(), len(batch))
	}
	return engine, batch, f.Cols, nil
}
