package checkpoint

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"jarvis/internal/core"
	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// The kill-and-restart chaos runs (§IV-E acceptance): on each of the
// paper's three queries, a source agent ships sequenced epochs over real
// TCP to an SP running the full recovery stack (durable snapshots every
// 2 applied epochs, exactly-once result log). One run kills the SP
// mid-stream and restarts it from its snapshot dir (the agent replays
// unacked epochs); another kills the agent between ship and snapshot and
// restarts it from its own dir (the driver re-feeds input from the
// resumed epoch, and the SP's sequence dedup discards the re-shipped
// duplicate). In both cases the durable result log must be byte-identical
// to an uninterrupted run.

const (
	chaosDataEpochs  = 10
	chaosTotalEpochs = 14
	spKillEpoch      = 7 // after this epoch's advance the SP dies...
	spRestartEpoch   = 10
	agentKillEpoch   = 6 // ...or the agent dies right after shipping this epoch
)

type chaosCase struct {
	name  string
	query func() *plan.Query
	gen   func() func(int64) telemetry.Batch
}

// chaosTable covers the ping generator's source IP and a peer subset, so
// T2TProbe's joins both hit and miss (same shape as the parity tests).
func chaosTable() *telemetry.ToRTable {
	cfg := workload.DefaultPingConfig(7)
	ips := []uint32{cfg.SrcIP}
	for i := 0; i < 2000; i++ {
		ips = append(ips, 0x0B000000+uint32(i))
	}
	return telemetry.NewToRTable(ips, 40)
}

func chaosCases() []chaosCase {
	pingGen := func() func(int64) telemetry.Batch {
		g := workload.NewPingGen(workload.DefaultPingConfig(7))
		return g.NextWindow
	}
	return []chaosCase{
		{name: "S2SProbe", query: plan.S2SProbe, gen: pingGen},
		{name: "T2TProbe", query: func() *plan.Query { return plan.T2TProbe(chaosTable()) }, gen: pingGen},
		{name: "LogAnalytics", query: plan.LogAnalytics, gen: func() func(int64) telemetry.Batch {
			g := workload.NewLogGen(workload.DefaultLogConfig(7))
			return g.NextWindow
		}},
	}
}

// chaosSP is one SP incarnation: engine + receiver + recovery manager
// serving on a loopback listener.
type chaosSP struct {
	rc     *transport.Receiver
	rm     *SPRecovery
	rlog   *ResultLog
	srv    *transport.Server
	addr   string
	cancel context.CancelFunc
}

func startSP(t *testing.T, q *plan.Query, dir string, async bool) *chaosSP {
	t.Helper()
	proc, err := core.NewProcessor(q)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rlog, err := OpenResultLog(filepath.Join(dir, "results.log"))
	if err != nil {
		t.Fatal(err)
	}
	rc := transport.NewReceiver(proc.Engine())
	rm := NewSPRecovery(store, rlog, proc.Engine(), rc, 2)
	rm.SetAsync(async)
	if _, err := rm.Restore(); err != nil {
		t.Fatal(err)
	}
	rc.RegisterSource(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	srv := transport.NewServer(rc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = srv.Serve(ctx, ln) }()
	return &chaosSP{rc: rc, rm: rm, rlog: rlog, srv: srv, addr: ln.Addr().String(), cancel: cancel}
}

func (sp *chaosSP) stop() {
	sp.cancel()
	_ = sp.srv.Close()
	_ = sp.rm.Close() // drain the async writer, if enabled
	_ = sp.rlog.Close()
}

// chaosAgent is one agent incarnation: source + durable shipper +
// recovery manager, resumed from its snapshot dir.
type chaosAgent struct {
	src    *core.Source
	ship   *transport.DurableShipper
	arec   *AgentRecovery
	gen    func(int64) telemetry.Batch
	resume uint64
}

func startAgent(t *testing.T, tc chaosCase, dir string, async bool) *chaosAgent {
	t.Helper()
	src, err := core.NewSource(tc.query(), core.SourceOptions{
		BudgetFrac: 4.0, // ample: no mid-epoch budget exhaustion
		RateMbps:   workload.PingmeshMbps10x,
		Adapt:      false, // fixed routing: deterministic re-execution
	})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, len(src.Query().Ops))
	for i := range ones {
		ones[i] = 1
	}
	if err := src.SetLoadFactors(ones); err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ship := transport.NewDurableShipper(1, 64)
	arec := NewAgentRecovery(store, 1, src, ship)
	arec.SetAsync(async)
	resume, _, err := arec.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the deterministic input stream and fast-forward past the
	// epochs the snapshot already covers.
	gen := tc.gen()
	for e := uint64(1); e <= resume && e <= chaosDataEpochs; e++ {
		gen(1_000_000)
	}
	return &chaosAgent{src: src, ship: ship, arec: arec, gen: gen, resume: resume}
}

func waitApplied(t *testing.T, rc *transport.Receiver, source uint32, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rc.AppliedSeq(source) < seq {
		if time.Now().After(deadline) {
			t.Fatalf("SP never applied epoch %d (at %d)", seq, rc.AppliedSeq(source))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosRun executes one full run and returns the result log's rows.
// kill is "", "sp" or "agent"; async runs the SP's snapshot saves on the
// async writer goroutine, agentAsync the agent's.
func chaosRun(t *testing.T, tc chaosCase, kill string, async, agentAsync bool) telemetry.Batch {
	t.Helper()
	spDir, agDir := t.TempDir(), t.TempDir()
	sp := startSP(t, tc.query(), spDir, async)
	agent := startAgent(t, tc, agDir, agentAsync)
	if err := agent.ship.Connect(sp.addr); err != nil {
		t.Fatal(err)
	}

	spKilled, agentKilled := false, false
	spUp := true
	e := agent.resume + 1
	for e <= chaosTotalEpochs {
		var input telemetry.Batch
		if e <= chaosDataEpochs {
			input = agent.gen(1_000_000)
		} else {
			agent.src.ObserveTime(int64(e) * 1_000_000)
		}
		res, err := agent.src.RunEpoch(input)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.ship.ShipEpoch(res); err != nil {
			t.Fatal(err)
		}

		if kill == "agent" && e == agentKillEpoch && !agentKilled {
			// Crash between ship and snapshot: the new incarnation resumes
			// from the previous epoch's snapshot and re-runs this epoch;
			// the SP discards the re-shipped duplicate by sequence. With
			// the async agent writer, drain in-flight saves first — a
			// queued-but-unsaved snapshot at the crash is equivalent to
			// crashing one epoch earlier (covered by the same dedup), and
			// letting an abandoned writer goroutine keep appending to the
			// store the new incarnation owns would model a process that
			// writes after it was killed.
			agentKilled = true
			_ = agent.arec.Flush()
			_ = agent.ship.Close()
			agent = startAgent(t, tc, agDir, agentAsync)
			if spUp {
				if err := agent.ship.Connect(sp.addr); err != nil {
					t.Fatal(err)
				}
			}
			e = agent.resume + 1
			continue
		}

		if err := agent.arec.AfterEpoch(e); err != nil {
			t.Fatal(err)
		}
		if spUp {
			waitApplied(t, sp.rc, 1, agent.ship.Seq())
			if _, err := sp.rm.Advance(); err != nil {
				t.Fatal(err)
			}
		}

		if kill == "sp" && e == spKillEpoch && !spKilled {
			spKilled = true
			spUp = false
			sp.stop()
		}
		if kill == "sp" && e == spRestartEpoch-1 && spKilled && !spUp {
			// Restart from the snapshot dir; the agent reconnects and
			// replays every epoch past the SP's durable frontier.
			sp = startSP(t, tc.query(), spDir, async)
			if err := agent.ship.Connect(sp.addr); err != nil {
				t.Fatal(err)
			}
			spUp = true
			waitApplied(t, sp.rc, 1, agent.ship.Seq())
			if _, err := sp.rm.Advance(); err != nil {
				t.Fatal(err)
			}
		}
		e++
	}

	// Sanity: the fault actually exercised the recovery machinery.
	switch kill {
	case "sp":
		if got := agent.ship.Counters().Get(transport.CtrReconnects); got < 2 {
			t.Fatalf("sp-kill run reconnected %d times, want ≥ 2", got)
		}
	case "agent":
		if got := sp.rc.Counters().Get(transport.CtrEpochsReplayed); got < 1 {
			t.Fatalf("agent-kill run deduplicated %d epochs, want ≥ 1", got)
		}
	}
	if agent.ship.Dropped() != 0 {
		t.Fatalf("replay buffer evicted %d unacked epochs", agent.ship.Dropped())
	}

	_ = agent.arec.Close() // drain the agent's async writer, if enabled
	sp.stop()
	rows, err := ReadResultLog(filepath.Join(spDir, "results.log"))
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// canonicalBytes renders rows as their concatenated wire encodings, so
// "byte-identical results" is checked independent of frame boundaries.
func canonicalBytes(t *testing.T, rows telemetry.Batch) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, rec := range rows {
		buf, err = wire.EncodeRecord(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestChaosKillRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are not short")
	}
	for _, tc := range chaosCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := chaosRun(t, tc, "", false, false)
			if len(ref) == 0 {
				t.Fatal("uninterrupted run produced no results — chaos comparison is vacuous")
			}
			refBytes := canonicalBytes(t, ref)

			spRows := chaosRun(t, tc, "sp", false, false)
			if !bytes.Equal(refBytes, canonicalBytes(t, spRows)) {
				t.Fatalf("SP kill-and-restart diverged: %d rows vs %d reference rows",
					len(spRows), len(ref))
			}

			agRows := chaosRun(t, tc, "agent", false, false)
			if !bytes.Equal(refBytes, canonicalBytes(t, agRows)) {
				t.Fatalf("agent kill-and-restart diverged: %d rows vs %d reference rows",
					len(agRows), len(ref))
			}
		})
	}
}

// TestAsyncWriterKillRestartByteIdentical reruns the SP kill-and-restart
// chaos with the async snapshot writer enabled: captures stay on the
// epoch path but encode + save + agent acks move to the writer
// goroutine. Killing the SP mid-run must still yield a byte-identical
// result log — acks are released only after the durable save, so every
// epoch the writer had not yet persisted is still in the agent's replay
// buffer.
func TestAsyncWriterKillRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are not short")
	}
	tc := chaosCases()[0] // S2SProbe: every record dirties a distinct group
	ref := chaosRun(t, tc, "", false, false)
	if len(ref) == 0 {
		t.Fatal("uninterrupted run produced no results")
	}
	asyncRows := chaosRun(t, tc, "sp", true, false)
	if !bytes.Equal(canonicalBytes(t, ref), canonicalBytes(t, asyncRows)) {
		t.Fatalf("async-writer SP kill-and-restart diverged: %d rows vs %d reference rows",
			len(asyncRows), len(ref))
	}
}

// TestAgentAsyncWriterKillRestartByteIdentical is the agent-side mirror:
// the agent snapshots every epoch (-checkpoint-every 1) with its durable
// saves on the async writer goroutine, and is killed between ship and
// snapshot. The restarted incarnation restores from the async-written
// base + delta chain, re-runs the lost epoch, and the SP's sequence
// dedup keeps the result log byte-identical to an uninterrupted run.
func TestAgentAsyncWriterKillRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are not short")
	}
	for _, tc := range []chaosCase{chaosCases()[0], chaosCases()[2]} { // probe + log shapes
		t.Run(tc.name, func(t *testing.T) {
			ref := chaosRun(t, tc, "", false, false)
			if len(ref) == 0 {
				t.Fatal("uninterrupted run produced no results")
			}
			rows := chaosRun(t, tc, "agent", false, true)
			if !bytes.Equal(canonicalBytes(t, ref), canonicalBytes(t, rows)) {
				t.Fatalf("async-writer agent kill-and-restart diverged: %d rows vs %d reference rows",
					len(rows), len(ref))
			}
		})
	}
}
