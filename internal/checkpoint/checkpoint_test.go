package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
)

func sampleSnapshot() *Snapshot {
	agg := telemetry.NewAggRow(telemetry.NumKey(42), 0, 17)
	agg.Observe(3)
	return &Snapshot{
		Seq:       9,
		Watermark: 9_000_000,
		EmittedWM: 8_000_000,
		Acked:     7,
		Stages: map[int]telemetry.Batch{
			2: {telemetry.NewAggRecord(agg, 10_000_000)},
		},
		Sources: map[uint32]SourceState{
			1: {Watermark: 9_000_000, AppliedSeq: 9},
			2: {Watermark: 8_500_000, AppliedSeq: 8},
		},
		Factors: []float64{1, 0.5, 0.25},
		Pending: []transport.PendingEpoch{
			{Seq: 8, Data: []byte{1, 2, 3}},
			{Seq: 9, Data: []byte{4, 5}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != snap.Seq || got.Watermark != snap.Watermark || got.EmittedWM != snap.EmittedWM || got.Acked != snap.Acked {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Stages) != 1 || len(got.Stages[2]) != 1 {
		t.Fatalf("stages: %+v", got.Stages)
	}
	a := snap.Stages[2][0].Data.(*telemetry.AggRow)
	b := got.Stages[2][0].Data.(*telemetry.AggRow)
	if *a != *b {
		t.Fatalf("stage row: %+v vs %+v", a, b)
	}
	if len(got.Sources) != 2 || got.Sources[2].AppliedSeq != 8 || got.Sources[1].Watermark != 9_000_000 {
		t.Fatalf("sources: %+v", got.Sources)
	}
	if len(got.Factors) != 3 || got.Factors[1] != 0.5 {
		t.Fatalf("factors: %v", got.Factors)
	}
	if len(got.Pending) != 2 || got.Pending[1].Seq != 9 || !bytes.Equal(got.Pending[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("pending: %+v", got.Pending)
	}
}

func TestStoreSaveLatest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Latest(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	first := sampleSnapshot()
	first.Seq = 3
	if _, err := st.Save(first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Seq = 6
	id, err := st.Save(second)
	if err != nil {
		t.Fatal(err)
	}
	name := SnapshotFileName(id)
	got, ok, err := st.Latest()
	if err != nil || !ok || got.Seq != 6 {
		t.Fatalf("latest: ok=%v err=%v snap=%+v", ok, err, got)
	}

	// Reopening resumes ids and still finds the newest snapshot.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _ = st2.Latest()
	if !ok || got.Seq != 6 {
		t.Fatalf("latest after reopen: %+v", got)
	}

	// Corrupting the newest file falls back to the previous snapshot.
	if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err = st2.Latest()
	if err != nil || !ok || got.Seq != 3 {
		t.Fatalf("fallback: ok=%v err=%v snap=%+v", ok, err, got)
	}
}

func resultRow(key uint64, window, endMicros int64, v float64) telemetry.Record {
	agg := telemetry.NewAggRow(telemetry.NumKey(key), window, v)
	return telemetry.NewAggRecord(agg, endMicros)
}

func TestResultLogExactlyOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	l, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := l.Append(telemetry.Batch{resultRow(1, 0, 10, 5), resultRow(2, 0, 10, 6)})
	if err != nil || len(kept) != 2 {
		t.Fatalf("first append: kept=%d err=%v", len(kept), err)
	}
	// A replayed duplicate batch (same window end) is fully suppressed.
	kept, err = l.Append(telemetry.Batch{resultRow(1, 0, 10, 5), resultRow(2, 0, 10, 6)})
	if err != nil || len(kept) != 0 {
		t.Fatalf("duplicate append: kept=%d err=%v", len(kept), err)
	}
	// A mixed batch keeps only the new window.
	kept, err = l.Append(telemetry.Batch{resultRow(1, 0, 10, 5), resultRow(1, 1, 20, 7)})
	if err != nil || len(kept) != 1 || kept[0].Time != 20 {
		t.Fatalf("mixed append: kept=%+v err=%v", kept, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen recovers the high-water mark; duplicates stay suppressed.
	l2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.EmittedWM() != 20 || l2.Rows() != 3 {
		t.Fatalf("recovered wm=%d rows=%d", l2.EmittedWM(), l2.Rows())
	}
	kept, err = l2.Append(telemetry.Batch{resultRow(1, 1, 20, 7)})
	if err != nil || len(kept) != 0 {
		t.Fatalf("append after reopen: kept=%d err=%v", len(kept), err)
	}
	_ = l2.Close()

	rows, err := ReadResultLog(path)
	if err != nil || len(rows) != 3 {
		t.Fatalf("read back: rows=%d err=%v", len(rows), err)
	}
}

func TestResultLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	l, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(telemetry.Batch{resultRow(1, 0, 10, 5)}); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	// Simulate a crash mid-append: garbage half-frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	l2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Rows() != 1 || l2.EmittedWM() != 10 {
		t.Fatalf("after torn tail: rows=%d wm=%d", l2.Rows(), l2.EmittedWM())
	}
	// The log is appendable again after truncation.
	kept, err := l2.Append(telemetry.Batch{resultRow(1, 1, 20, 9)})
	if err != nil || len(kept) != 1 {
		t.Fatalf("append after truncate: kept=%d err=%v", len(kept), err)
	}
	_ = l2.Close()
	rows, err := ReadResultLog(path)
	if err != nil || len(rows) != 2 {
		t.Fatalf("read back: rows=%d err=%v", len(rows), err)
	}
}
