package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// runPipeline builds an all-local S2S pipeline with full budget and unit
// load factors, fed by a deterministic generator.
func runPipeline(t *testing.T, seed uint64) (*stream.Pipeline, func(int64) telemetry.Batch) {
	t.Helper()
	pipe, err := stream.NewPipeline(plan.S2SProbe(), stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, len(pipe.Query().Ops))
	for i := range ones {
		ones[i] = 1
	}
	if err := pipe.SetLoadFactors(ones); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(seed))
	return pipe, gen.NextWindow
}

// stageKeyRows flattens snapshot stages into (stage, window, key) → row
// for order-independent comparison.
func stageKeyRows(t *testing.T, stages map[int]telemetry.Batch) map[[3]int64]telemetry.AggRow {
	t.Helper()
	out := make(map[[3]int64]telemetry.AggRow)
	for st, rows := range stages {
		for _, rec := range rows {
			row, ok := rec.Data.(*telemetry.AggRow)
			if !ok {
				t.Fatalf("stage %d holds %T", st, rec.Data)
			}
			k := [3]int64{int64(st), row.Window, int64(row.Key.Num)}
			if prev, dup := out[k]; dup {
				t.Fatalf("duplicate row for %v: %+v vs %+v", k, prev, row)
			}
			out[k] = *row
		}
	}
	return out
}

// TestDeltaChainReconstruction proves Store.Latest rebuilds exactly the
// state a full snapshot would have captured, from a base + delta chain
// spanning epochs with window turnover (tombstones).
func TestDeltaChainReconstruction(t *testing.T) {
	pipe, next := runPipeline(t, 5)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Base after 2 epochs.
	for e := 0; e < 2; e++ {
		pipe.RunEpoch(next(1_000_000))
	}
	cp := pipe.Checkpoint(2)
	pipe.MarkSnapshotClean()
	lastID, err := store.Save(&Snapshot{Seq: 2, Watermark: cp.Watermark, Stages: cp.Stages})
	if err != nil {
		t.Fatal(err)
	}

	// Deltas across 12 more epochs: the 10 s window rolls over at least
	// once, so closed-window tombstones are exercised.
	for e := 3; e <= 14; e++ {
		pipe.RunEpoch(next(1_000_000))
		d := pipe.CheckpointDelta(int64(e))
		if !d.Delta {
			t.Fatal("CheckpointDelta did not mark the capture as delta")
		}
		lastID, err = store.Save(&Snapshot{
			Seq: uint64(e), Watermark: d.Watermark, Stages: d.Stages,
			Delta: true, BaseID: lastID, Meta: d.Meta,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	got, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if got.Seq != 14 {
		t.Fatalf("reconstructed seq %d, want 14", got.Seq)
	}
	want := pipe.Checkpoint(14) // ground truth: full capture of the live state
	gotRows, wantRows := stageKeyRows(t, got.Stages), stageKeyRows(t, want.Stages)
	if len(gotRows) != len(wantRows) {
		t.Fatalf("reconstructed %d rows, want %d", len(gotRows), len(wantRows))
	}
	for k, w := range wantRows {
		g, ok := gotRows[k]
		if !ok {
			t.Fatalf("row %v missing from reconstruction", k)
		}
		if g != w {
			t.Fatalf("row %v: reconstructed %+v, want %+v", k, g, w)
		}
	}
}

// TestDeltaRestoreMatchesFullRestore restores a fresh pipeline from the
// reconstructed chain and checks its subsequent output is identical to
// the original pipeline's.
func TestDeltaRestoreMatchesFullRestore(t *testing.T) {
	pipe, next := runPipeline(t, 6)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	arec := NewAgentRecovery(store, 1, pipe, nil)
	var inputs []telemetry.Batch
	for e := 1; e <= 9; e++ {
		in := next(1_000_000)
		inputs = append(inputs, in)
		pipe.RunEpoch(in)
		if err := arec.AfterEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Manifest must hold one full base + deltas.
	ents, err := store.entries()
	if err != nil {
		t.Fatal(err)
	}
	deltas := 0
	for _, e := range ents {
		if e.delta {
			deltas++
		}
	}
	if deltas < 7 {
		t.Fatalf("expected ≥7 delta snapshots, manifest has %d of %d", deltas, len(ents))
	}

	fresh, _ := runPipeline(t, 6)
	rec2 := NewAgentRecovery(store, 1, fresh, nil)
	resume, ok, err := rec2.Restore()
	if err != nil || !ok || resume != 9 {
		t.Fatalf("restore: resume=%d ok=%v err=%v", resume, ok, err)
	}
	// Drive both pipelines forward with identical input; epoch 10+ output
	// must match exactly.
	gen2 := workload.NewPingGen(workload.DefaultPingConfig(6))
	for range inputs {
		gen2.NextWindow(1_000_000) // fast-forward the fresh pipeline's source
	}
	for e := 10; e <= 13; e++ {
		in := next(1_000_000)
		in2 := gen2.NextWindow(1_000_000)
		r1 := pipe.RunEpoch(in)
		r2 := fresh.RunEpoch(in2)
		c1 := canonicalBatch(t, r1.Results)
		c2 := canonicalBatch(t, r2.Results)
		if !bytes.Equal(c1, c2) {
			t.Fatalf("epoch %d: restored pipeline diverged (%d vs %d result rows)", e, len(r2.Results), len(r1.Results))
		}
	}
}

// TestStoreCompactRetainsNewestChains saves several chains and checks
// compaction drops old files while the newest chains stay restorable.
func TestStoreCompactRetainsNewestChains(t *testing.T) {
	pipe, next := runPipeline(t, 7)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	arec := NewAgentRecovery(store, 1, pipe, nil)
	arec.SetMaxChain(2)  // base, d, d, base, d, d, ...
	arec.SetRetention(0) // no auto-compaction; test calls Compact directly
	for e := 1; e <= 12; e++ {
		pipe.RunEpoch(next(1_000_000))
		if err := arec.AfterEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := store.Snapshots()
	if before != 12 {
		t.Fatalf("expected 12 snapshots before compaction, got %d", before)
	}
	if err := store.Compact(2); err != nil {
		t.Fatal(err)
	}
	after, err := store.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before || after < 4 {
		t.Fatalf("compaction kept %d of %d entries", after, before)
	}
	// Old snapshot files are gone from disk.
	files, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if len(files) != after {
		t.Fatalf("%d snapshot files for %d manifest entries", len(files), after)
	}
	got, ok, err := store.Latest()
	if err != nil || !ok || got.Seq != 12 {
		t.Fatalf("latest after compaction: ok=%v err=%v seq=%d", ok, err, got.Seq)
	}
	// The store keeps accepting saves after compaction (manifest handle
	// was re-established).
	pipe.RunEpoch(next(1_000_000))
	if err := arec.AfterEpoch(13); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = store.Latest()
	if !ok || got.Seq != 13 {
		t.Fatalf("latest after post-compaction save: %+v", got)
	}
}

// TestV1SnapshotDirRestores proves a snapshot directory written by a
// pre-columnar build (v1 frames, v1 manifest lines) still restores.
func TestV1SnapshotDirRestores(t *testing.T) {
	snap := sampleSnapshot()
	dir := t.TempDir()
	name := SnapshotFileName(1)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.EncodeLegacy(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	line := "v1 1 " + name + " 9 9000000\n"
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("v1 dir: ok=%v err=%v", ok, err)
	}
	if got.Seq != snap.Seq || got.Watermark != snap.Watermark || len(got.Stages) != 1 || len(got.Pending) != 2 {
		t.Fatalf("v1 snapshot restored as %+v", got)
	}
	// Follow-up saves in the same dir chain correctly past the v1 entry.
	if _, err := store.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = store.Latest()
	if !ok || got.Seq != 9 {
		t.Fatalf("latest after v2 save over v1 dir: %+v", got)
	}
}

func canonicalBatch(t *testing.T, rows telemetry.Batch) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, rec := range rows {
		buf, err = wire.EncodeRecord(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// TestSaveFailureForcesFullBase: when a snapshot save fails after the
// capture already advanced the dirty generation, the next snapshot must
// be a fresh full base — chaining a later delta over the lost rows
// would silently drop them from the reconstruction.
func TestSaveFailureForcesFullBase(t *testing.T) {
	pipe, next := runPipeline(t, 8)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	arec := NewAgentRecovery(store, 1, pipe, nil)
	for e := 1; e <= 3; e++ {
		pipe.RunEpoch(next(1_000_000))
		if err := arec.AfterEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Make the next save fail: the store directory vanishes.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	pipe.RunEpoch(next(1_000_000))
	if err := arec.AfterEpoch(4); err == nil {
		t.Fatal("save into a missing store dir did not error")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_ = store.Close() // drop the manifest handle pointing at the unlinked file
	pipe.RunEpoch(next(1_000_000))
	if err := arec.AfterEpoch(5); err != nil {
		t.Fatal(err)
	}
	ents, err := store.entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].delta {
		t.Fatalf("post-failure snapshot must be a full base, manifest: %+v", ents)
	}
	// The full base carries everything, including epoch 4's rows that the
	// failed save lost.
	got, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	want := pipe.Checkpoint(5)
	gotRows, wantRows := stageKeyRows(t, got.Stages), stageKeyRows(t, want.Stages)
	if len(gotRows) != len(wantRows) {
		t.Fatalf("post-failure base has %d rows, want %d", len(gotRows), len(wantRows))
	}
	for k, w := range wantRows {
		if g := gotRows[k]; g != w {
			t.Fatalf("row %v: %+v, want %+v", k, g, w)
		}
	}
}

// TestAgentSnapshotPersistsTerm proves the HA fencing term survives an
// agent restart: a restarted agent must keep carrying the promoted term
// in its hellos, or a rejoining stale primary would accept it and split
// the output.
func TestAgentSnapshotPersistsTerm(t *testing.T) {
	pipe, next := runPipeline(t, 2)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ship := transport.NewDurableShipper(1, 8)
	ship.SetTerm(3) // as if a promoted standby's ack taught it term 3
	arec := NewAgentRecovery(store, 1, pipe, ship)
	res := pipe.RunEpoch(next(1_000_000))
	if err := ship.ShipEpoch(res); err != nil {
		t.Fatal(err)
	}
	if err := arec.AfterEpoch(ship.Seq()); err != nil {
		t.Fatal(err)
	}

	fresh, _ := runPipeline(t, 0)
	ship2 := transport.NewDurableShipper(1, 8)
	arec2 := NewAgentRecovery(store, 1, fresh, ship2)
	if _, ok, err := arec2.Restore(); err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if got := ship2.Term(); got != 3 {
		t.Fatalf("restored shipper term = %d, want 3", got)
	}
}
