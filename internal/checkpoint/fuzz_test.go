package checkpoint

import (
	"bytes"
	"testing"

	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
)

// FuzzDecodeDeltaSnapshot checks the snapshot decoder never panics on
// arbitrary bytes and that every successfully decoded snapshot
// round-trips through Encode/DecodeSnapshot byte-stably.
func FuzzDecodeDeltaSnapshot(f *testing.F) {
	seed := func(s *Snapshot) {
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	full := sampleSnapshot()
	seed(full)
	delta := sampleSnapshot()
	delta.Delta = true
	delta.BaseID = 3
	delta.Meta = map[int]stream.StageDelta{
		2: {Closed: []int64{-1, 4}},
		5: {Replace: true},
	}
	agg := telemetry.NewAggRow(telemetry.StrKey("tenant-001|cpu util|4"), 1, 3)
	delta.Stages[5] = telemetry.Batch{telemetry.NewAggRecord(agg, 20_000_000)}
	seed(delta)
	var legacy bytes.Buffer
	if err := full.EncodeLegacy(&legacy); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return // corrupt input is fine, panics are not
		}
		var enc bytes.Buffer
		if err := s.Encode(&enc); err != nil {
			t.Fatalf("re-encode of decoded snapshot: %v", err)
		}
		s2, err := DecodeSnapshot(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded snapshot: %v", err)
		}
		var enc2 bytes.Buffer
		if err := s2.Encode(&enc2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatalf("snapshot encoding not stable:\n%x\n%x", enc.Bytes(), enc2.Bytes())
		}
	})
}
