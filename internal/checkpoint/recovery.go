package checkpoint

import (
	"fmt"

	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
)

// DefaultEvery is the default snapshot cadence in epochs: with the
// paper's 1 s epochs, a durable snapshot roughly every half minute.
// Full-state snapshots cost a few ms at evaluation scale (see
// BenchmarkCheckpointSave), so this cadence amortizes the overhead to
// ~2-3% of engine epoch time, and the durable shipper's default replay
// buffer (DefaultMaxPending, 2× this cadence) keeps every epoch between
// snapshots replayable. With delta snapshots (every snapshot after a
// chain base ships only dirtied state, see BenchmarkDeltaSnapshotSave)
// the cadence can drop to every epoch: `-checkpoint-every 1`.
const DefaultEvery = 32

// DefaultMaxChain bounds a base + delta chain before the next snapshot
// is forced full: longer chains shrink per-snapshot cost but lengthen
// restore (every link decodes and folds) and pin older files until
// compaction.
const DefaultMaxChain = 16

// Agent is the source-side surface the recovery manager needs. Both
// *stream.Pipeline and *core.Source implement it.
type Agent interface {
	// Checkpoint snapshots the stateful operators' open-window state
	// non-destructively.
	Checkpoint(epoch int64) *stream.Checkpoint
	// RestoreCheckpoint folds a checkpoint back into the operators and
	// resumes the watermark.
	RestoreCheckpoint(cp *stream.Checkpoint) error
	// LoadFactors/SetLoadFactors capture and restore proxy routing, so a
	// restarted agent replays epochs with identical routing decisions.
	LoadFactors() []float64
	SetLoadFactors([]float64) error
}

// DeltaAgent is an Agent that additionally tracks dirty state for
// incremental snapshots. *stream.Pipeline and *core.Source implement
// it; agents that do not are always snapshotted in full.
type DeltaAgent interface {
	Agent
	// CheckpointDelta captures only state dirtied since the previous
	// capture and starts a new dirty generation.
	CheckpointDelta(epoch int64) *stream.Checkpoint
	// MarkSnapshotClean starts a new dirty generation after a full
	// capture that begins a chain.
	MarkSnapshotClean()
}

// AgentRecovery takes epoch-aligned snapshots of a source agent — its
// pipeline state, load factors, and the durable shipper's sequence
// counters and replay buffer — and restores the newest one on startup.
//
// Exactly-once across an agent restart: the agent resumes from snapshot
// epoch R, the driver re-feeds input from epoch R+1, and any epoch the
// crashed incarnation already shipped is discarded by the SP's sequence
// dedup. Re-run epochs must re-ship identical content for SP state to
// stay consistent, which holds when re-execution is deterministic from
// the snapshot: fixed load factors (restored from the snapshot) or
// adaptation disabled, and a budget that does not force mid-epoch
// drops. With -checkpoint-every 1 the re-run window is at most the
// single epoch in flight at the crash.
type AgentRecovery struct {
	store *Store
	every uint64
	agent Agent
	ship  *transport.DurableShipper

	maxChain int
	retain   int
	lastID   uint64 // store id of the last saved snapshot (0: none — next save is full)
	chainLen int    // deltas since the last full snapshot
}

// NewAgentRecovery wires a recovery manager to an agent. every is the
// snapshot cadence in epochs (minimum 1); ship may be nil for agents
// that consume epochs in process. When the agent tracks dirty state
// (DeltaAgent), snapshots after a chain base are incremental up to
// DefaultMaxChain deltas per chain, and the store is compacted to
// DefaultRetain chains at each new base (SetRetention adjusts).
func NewAgentRecovery(store *Store, every int, agent Agent, ship *transport.DurableShipper) *AgentRecovery {
	if every < 1 {
		every = 1
	}
	return &AgentRecovery{
		store: store, every: uint64(every), agent: agent, ship: ship,
		maxChain: DefaultMaxChain, retain: DefaultRetain,
	}
}

// SetRetention sets how many base + delta chains compaction keeps
// (minimum 1); 0 disables pruning.
func (r *AgentRecovery) SetRetention(n int) { r.retain = n }

// SetMaxChain bounds deltas per chain before a full snapshot is forced
// (0 disables deltas entirely).
func (r *AgentRecovery) SetMaxChain(n int) { r.maxChain = n }

// Restore loads the newest consistent snapshot into the agent (and the
// shipper's replay buffer) and returns the epoch to resume after. ok is
// false when the store is empty (fresh start: resume after epoch 0).
func (r *AgentRecovery) Restore() (resumeEpoch uint64, ok bool, err error) {
	snap, ok, err := r.store.Latest()
	if err != nil || !ok {
		return 0, false, err
	}
	cp := &stream.Checkpoint{Epoch: int64(snap.Seq), Watermark: snap.Watermark, Stages: snap.Stages}
	if err := r.agent.RestoreCheckpoint(cp); err != nil {
		return 0, false, fmt.Errorf("checkpoint: restore agent state: %w", err)
	}
	if len(snap.Factors) > 0 {
		if err := r.agent.SetLoadFactors(snap.Factors); err != nil {
			return 0, false, fmt.Errorf("checkpoint: restore load factors: %w", err)
		}
	}
	if r.ship != nil {
		r.ship.RestoreState(snap.Seq, snap.Acked, snap.Pending)
	}
	// The restore re-marked everything it absorbed as dirty, so the next
	// snapshot must be a fresh chain base.
	r.lastID, r.chainLen = 0, 0
	return snap.Seq, true, nil
}

// AfterEpoch snapshots the agent when the cadence is due. Call it after
// every RunEpoch+ShipEpoch pair with the epoch's sequence number. The
// first snapshot (and every DefaultMaxChain-th after it) captures full
// state and starts a chain; the rest are deltas of the state dirtied
// since the previous snapshot.
func (r *AgentRecovery) AfterEpoch(epoch uint64) error {
	if epoch%r.every != 0 {
		return nil
	}
	da, tracksDirty := r.agent.(DeltaAgent)
	full := !tracksDirty || r.lastID == 0 || r.chainLen >= r.maxChain
	var cp *stream.Checkpoint
	if full {
		cp = r.agent.Checkpoint(int64(epoch))
		if tracksDirty {
			da.MarkSnapshotClean()
		}
	} else {
		cp = da.CheckpointDelta(int64(epoch))
	}
	snap := &Snapshot{
		Seq:       epoch,
		Watermark: cp.Watermark,
		Stages:    cp.Stages,
		Factors:   r.agent.LoadFactors(),
		Delta:     !full,
		Meta:      cp.Meta,
	}
	if !full {
		snap.BaseID = r.lastID
	}
	if r.ship != nil {
		snap.Seq, snap.Acked, snap.Pending = r.ship.State()
	}
	id, err := r.store.Save(snap)
	if err != nil {
		// The capture already advanced the dirty generation, so the rows
		// this snapshot carried will never appear in a later delta; the
		// next snapshot must be a fresh full base or the chain would
		// silently miss them.
		r.lastID, r.chainLen = 0, 0
		return fmt.Errorf("checkpoint: save agent snapshot: %w", err)
	}
	r.lastID = id
	if full {
		r.chainLen = 0
		if r.retain > 0 {
			if err := r.store.Compact(r.retain); err != nil {
				return fmt.Errorf("checkpoint: compact store: %w", err)
			}
		}
	} else {
		r.chainLen++
	}
	return nil
}

// SPRecovery takes epoch-aligned snapshots of a stream processor — the
// engine's stateful operators, per-source watermarks and applied epoch
// sequences — restores the newest one on startup, and routes emitted
// rows through the exactly-once result log. After each durable snapshot
// it acknowledges the covered epochs to the connected agents, which
// prune their replay buffers; epochs applied since the last snapshot
// stay replayable and are deduplicated by sequence when a restarted SP
// receives them again.
type SPRecovery struct {
	store  *Store
	log    *ResultLog
	engine *stream.SPEngine
	rc     *transport.Receiver
	every  uint64

	snapAt   uint64 // progress measure (sum of applied seqs) at last snapshot
	haveSnap bool

	maxChain int
	retain   int
	lastID   uint64
	chainLen int
}

// NewSPRecovery wires a recovery manager to an SP engine and its
// receiver. every is the snapshot cadence in applied epochs (minimum 1,
// summed across sources); log may be nil to skip result logging. The
// receiver is switched to manual (durability-gated) acks. Snapshots
// after a chain base are incremental (engine dirty tracking) up to
// DefaultMaxChain deltas; the store is compacted to DefaultRetain
// chains at each new base (SetRetention adjusts).
func NewSPRecovery(store *Store, log *ResultLog, engine *stream.SPEngine, rc *transport.Receiver, every int) *SPRecovery {
	if every < 1 {
		every = 1
	}
	rc.SetManualAck(true)
	return &SPRecovery{
		store: store, log: log, engine: engine, rc: rc, every: uint64(every),
		maxChain: DefaultMaxChain, retain: DefaultRetain,
	}
}

// SetRetention sets how many base + delta chains compaction keeps
// (minimum 1); 0 disables pruning.
func (r *SPRecovery) SetRetention(n int) { r.retain = n }

// SetMaxChain bounds deltas per chain before a full snapshot is forced
// (0 disables deltas entirely).
func (r *SPRecovery) SetMaxChain(n int) { r.maxChain = n }

// Restore loads the newest consistent snapshot into the engine and the
// receiver's dedup state. ok is false on a fresh store.
func (r *SPRecovery) Restore() (ok bool, err error) {
	snap, ok, err := r.store.Latest()
	if err != nil || !ok {
		return false, err
	}
	for stage, rows := range snap.Stages {
		if err := r.engine.RestoreStage(stage, rows); err != nil {
			return false, fmt.Errorf("checkpoint: restore stage %d: %w", stage, err)
		}
	}
	var total uint64
	for src, st := range snap.Sources {
		r.engine.RegisterSource(src)
		r.engine.ObserveWatermark(src, st.Watermark)
		r.rc.SetApplied(src, st.AppliedSeq)
		total += st.AppliedSeq
	}
	r.snapAt = total
	r.haveSnap = true
	// The restore re-marked everything it absorbed as dirty, so the next
	// snapshot must be a fresh chain base.
	r.lastID, r.chainLen = 0, 0
	return true, nil
}

// Advance flushes the engine to the merged watermark, routes new rows
// through the result log (suppressing replayed duplicates), and takes a
// snapshot plus agent acks when the cadence is due. The returned rows
// are exactly the not-previously-emitted ones.
func (r *SPRecovery) Advance() (telemetry.Batch, error) {
	rows := r.rc.Advance()
	if r.log != nil {
		kept, err := r.log.Append(rows)
		if err != nil {
			return nil, err
		}
		rows = kept
	}
	if err := r.MaybeSnapshot(); err != nil {
		return rows, err
	}
	return rows, nil
}

// MaybeSnapshot takes a durable snapshot and acks it to the agents when
// at least `every` epochs were applied since the last one.
func (r *SPRecovery) MaybeSnapshot() error {
	return r.snapshot(false)
}

// Snapshot unconditionally takes a durable snapshot (e.g. on shutdown).
func (r *SPRecovery) Snapshot() error {
	return r.snapshot(true)
}

func (r *SPRecovery) snapshot(force bool) error {
	var snap *Snapshot
	var seqs map[uint32]uint64
	full := r.lastID == 0 || r.chainLen >= r.maxChain
	// Freeze pauses epoch application so the captured operator state,
	// watermarks and sequence numbers are one consistent cut.
	r.rc.Freeze(func(applied map[uint32]uint64) {
		var total uint64
		for _, seq := range applied {
			total += seq
		}
		if !force && r.haveSnap && total-r.snapAt < r.every {
			return
		}
		if !force && !r.haveSnap && total < r.every {
			return
		}
		seqs = applied
		snap = &Snapshot{
			Seq:       total,
			Watermark: r.engine.EffectiveWatermark(),
			Sources:   make(map[uint32]SourceState),
			Delta:     !full,
		}
		if full {
			snap.Stages = r.engine.SnapshotStages()
			r.engine.MarkSnapshotClean()
		} else {
			snap.Stages, snap.Meta = r.engine.SnapshotStagesDelta()
			snap.BaseID = r.lastID
		}
		if r.log != nil {
			snap.EmittedWM = r.log.EmittedWM()
		}
		r.engine.SourceWatermarks(func(src uint32, wm int64) {
			snap.Sources[src] = SourceState{Watermark: wm, AppliedSeq: applied[src]}
		})
		for src, seq := range applied {
			if _, seen := snap.Sources[src]; !seen {
				snap.Sources[src] = SourceState{AppliedSeq: seq}
			}
		}
		r.snapAt = total
		r.haveSnap = true
	})
	if snap == nil {
		return nil
	}
	id, err := r.store.Save(snap)
	if err != nil {
		// The capture already advanced the dirty generation; without a
		// reset the next delta would chain over the lost rows (see
		// AgentRecovery.AfterEpoch).
		r.lastID, r.chainLen = 0, 0
		return fmt.Errorf("checkpoint: save SP snapshot: %w", err)
	}
	r.lastID = id
	if full {
		r.chainLen = 0
		if r.retain > 0 {
			if err := r.store.Compact(r.retain); err != nil {
				return fmt.Errorf("checkpoint: compact store: %w", err)
			}
		}
	} else {
		r.chainLen++
	}
	// Only now — with the snapshot durable — may agents prune their
	// replay buffers up to the covered epochs.
	r.rc.AckSeqs(seqs)
	return nil
}
