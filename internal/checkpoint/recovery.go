package checkpoint

import (
	"fmt"
	"sync"
	"time"

	"jarvis/internal/obs"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
)

// DefaultEvery is the default snapshot cadence in epochs: with the
// paper's 1 s epochs, a durable snapshot roughly every half minute.
// Full-state snapshots cost a few ms at evaluation scale (see
// BenchmarkCheckpointSave), so this cadence amortizes the overhead to
// ~2-3% of engine epoch time, and the durable shipper's default replay
// buffer (DefaultMaxPending, 2× this cadence) keeps every epoch between
// snapshots replayable. With delta snapshots (every snapshot after a
// chain base ships only dirtied state, see BenchmarkDeltaSnapshotSave)
// the cadence can drop to every epoch: `-checkpoint-every 1`.
const DefaultEvery = 32

// DefaultMaxChain bounds a base + delta chain before the next snapshot
// is forced full: longer chains shrink per-snapshot cost but lengthen
// restore (every link decodes and folds) and pin older files until
// compaction.
const DefaultMaxChain = 16

// Agent is the source-side surface the recovery manager needs. Both
// *stream.Pipeline and *core.Source implement it.
type Agent interface {
	// Checkpoint snapshots the stateful operators' open-window state
	// non-destructively.
	Checkpoint(epoch int64) *stream.Checkpoint
	// RestoreCheckpoint folds a checkpoint back into the operators and
	// resumes the watermark.
	RestoreCheckpoint(cp *stream.Checkpoint) error
	// LoadFactors/SetLoadFactors capture and restore proxy routing, so a
	// restarted agent replays epochs with identical routing decisions.
	LoadFactors() []float64
	SetLoadFactors([]float64) error
}

// DeltaAgent is an Agent that additionally tracks dirty state for
// incremental snapshots. *stream.Pipeline and *core.Source implement
// it; agents that do not are always snapshotted in full.
type DeltaAgent interface {
	Agent
	// CheckpointDelta captures only state dirtied since the previous
	// capture and starts a new dirty generation.
	CheckpointDelta(epoch int64) *stream.Checkpoint
	// MarkSnapshotClean starts a new dirty generation after a full
	// capture that begins a chain.
	MarkSnapshotClean()
}

// AgentRecovery takes epoch-aligned snapshots of a source agent — its
// pipeline state, load factors, and the durable shipper's sequence
// counters and replay buffer — and restores the newest one on startup.
//
// Exactly-once across an agent restart: the agent resumes from snapshot
// epoch R, the driver re-feeds input from epoch R+1, and any epoch the
// crashed incarnation already shipped is discarded by the SP's sequence
// dedup. Re-run epochs must re-ship identical content for SP state to
// stay consistent, which holds when re-execution is deterministic from
// the snapshot: fixed load factors (restored from the snapshot) or
// adaptation disabled, and a budget that does not force mid-epoch
// drops. With -checkpoint-every 1 the re-run window is at most the
// single epoch in flight at the crash.
type AgentRecovery struct {
	store *Store
	every uint64
	agent Agent
	ship  *transport.DurableShipper

	maxChain int
	retain   int

	// Capture-side chain state (only the AfterEpoch caller touches it).
	capHaveBase bool
	capChainLen int

	// Save-side chain state, shared with the async writer.
	chainMu   sync.Mutex
	lastID    uint64 // store id of the last successful save
	forceFull bool   // a save failed: deltas are skipped until a full base lands

	aw          *asyncWriter
	deferredErr error
}

// NewAgentRecovery wires a recovery manager to an agent. every is the
// snapshot cadence in epochs (minimum 1); ship may be nil for agents
// that consume epochs in process. When the agent tracks dirty state
// (DeltaAgent), snapshots after a chain base are incremental up to
// DefaultMaxChain deltas per chain, and the store is compacted to
// DefaultRetain chains at each new base (SetRetention adjusts).
func NewAgentRecovery(store *Store, every int, agent Agent, ship *transport.DurableShipper) *AgentRecovery {
	if every < 1 {
		every = 1
	}
	return &AgentRecovery{
		store: store, every: uint64(every), agent: agent, ship: ship,
		maxChain: DefaultMaxChain, retain: DefaultRetain,
	}
}

// SetRetention sets how many base + delta chains compaction keeps
// (minimum 1); 0 disables pruning.
func (r *AgentRecovery) SetRetention(n int) { r.retain = n }

// SetMaxChain bounds deltas per chain before a full snapshot is forced
// (0 disables deltas entirely).
func (r *AgentRecovery) SetMaxChain(n int) { r.maxChain = n }

// SetAsync moves the durable save (encode + write + compaction) onto a
// writer goroutine, leaving only the state capture — which must see the
// between-epochs quiescent point — on the epoch path. Mirrors
// SPRecovery.SetAsync: call once before the run loop, pair with Close on
// shutdown so queued snapshots drain, and any deferred save error
// surfaces from the next AfterEpoch call.
func (r *AgentRecovery) SetAsync(on bool) {
	if on == (r.aw != nil) {
		return
	}
	if !on {
		if err := r.aw.close(); err != nil && r.deferredErr == nil {
			r.deferredErr = err
		}
		r.aw = nil
		return
	}
	r.aw = newAsyncWriter(r.save)
}

// Flush blocks until every queued async save has completed and returns
// (clearing) the first deferred save error, if any. A no-op without the
// async writer.
func (r *AgentRecovery) Flush() error {
	if r.aw == nil {
		return nil
	}
	return r.aw.flush()
}

// Close drains the async writer (when enabled) and stops it.
func (r *AgentRecovery) Close() error {
	if r.aw == nil {
		return nil
	}
	err := r.aw.close()
	r.aw = nil
	return err
}

// Restore loads the newest consistent snapshot into the agent (and the
// shipper's replay buffer) and returns the epoch to resume after. ok is
// false when the store is empty (fresh start: resume after epoch 0).
func (r *AgentRecovery) Restore() (resumeEpoch uint64, ok bool, err error) {
	snap, ok, err := r.store.Latest()
	if err != nil || !ok {
		return 0, false, err
	}
	cp := &stream.Checkpoint{Epoch: int64(snap.Seq), Watermark: snap.Watermark, Stages: snap.Stages}
	if err := r.agent.RestoreCheckpoint(cp); err != nil {
		return 0, false, fmt.Errorf("checkpoint: restore agent state: %w", err)
	}
	if len(snap.Factors) > 0 {
		if err := r.agent.SetLoadFactors(snap.Factors); err != nil {
			return 0, false, fmt.Errorf("checkpoint: restore load factors: %w", err)
		}
	}
	if r.ship != nil {
		r.ship.RestoreState(snap.Seq, snap.Acked, snap.Pending)
		r.ship.SetTerm(snap.Term)
	}
	// The restore re-marked everything it absorbed as dirty, so the next
	// snapshot must be a fresh chain base.
	r.capHaveBase, r.capChainLen = false, 0
	r.chainMu.Lock()
	r.lastID, r.forceFull = 0, false
	r.chainMu.Unlock()
	return snap.Seq, true, nil
}

// AfterEpoch snapshots the agent when the cadence is due. Call it after
// every RunEpoch+ShipEpoch pair with the epoch's sequence number. The
// first snapshot (and every DefaultMaxChain-th after it) captures full
// state and starts a chain; the rest are deltas of the state dirtied
// since the previous snapshot.
func (r *AgentRecovery) AfterEpoch(epoch uint64) error {
	if err := r.deferredErr; err != nil {
		r.deferredErr = nil
		return err
	}
	if epoch%r.every != 0 {
		return nil
	}
	da, tracksDirty := r.agent.(DeltaAgent)
	r.chainMu.Lock()
	forceFull := r.forceFull
	r.chainMu.Unlock()
	full := !tracksDirty || !r.capHaveBase || r.capChainLen >= r.maxChain || forceFull
	var cp *stream.Checkpoint
	if full {
		cp = r.agent.Checkpoint(int64(epoch))
		if tracksDirty {
			da.MarkSnapshotClean()
		}
	} else {
		cp = da.CheckpointDelta(int64(epoch))
	}
	snap := &Snapshot{
		Seq:       epoch,
		Watermark: cp.Watermark,
		Stages:    cp.Stages,
		Factors:   r.agent.LoadFactors(),
		Delta:     !full,
		Meta:      cp.Meta,
	}
	if r.ship != nil {
		// State() deep-copies the replay buffer, so the capture stays
		// consistent even while the async writer encodes it.
		snap.Seq, snap.Acked, snap.Pending = r.ship.State()
		snap.Term = r.ship.Term()
	}
	if full {
		r.capHaveBase, r.capChainLen = true, 0
	} else {
		r.capChainLen++
	}
	job := &saveJob{snap: snap, full: full}
	if r.aw != nil {
		r.aw.enqueue(job)
		return r.aw.takeErr()
	}
	return r.save(job)
}

// save writes one captured agent snapshot durably and compacts the
// store. It runs on the caller's goroutine (sync mode) or the async
// writer's. BaseID is stamped here — with the async writer, earlier
// captures may still be in flight at capture time.
func (r *AgentRecovery) save(job *saveJob) error {
	r.chainMu.Lock()
	if job.snap.Delta {
		if r.forceFull {
			// This delta chains onto a save that failed; the full base the
			// next capture is forced to take covers its rows.
			r.chainMu.Unlock()
			return nil
		}
		job.snap.BaseID = r.lastID
	}
	r.chainMu.Unlock()
	snapStart := obs.Now()
	id, err := r.store.Save(job.snap)
	obs.Since(obs.StageSnapshot, snapStart)
	if err != nil {
		// The capture already advanced the dirty generation, so the rows
		// this snapshot carried will never appear in a later delta; force
		// the next capture full or the chain would silently miss them.
		r.chainMu.Lock()
		r.forceFull = true
		r.chainMu.Unlock()
		return fmt.Errorf("checkpoint: save agent snapshot: %w", err)
	}
	r.chainMu.Lock()
	r.lastID, r.forceFull = id, false
	r.chainMu.Unlock()
	if job.full && r.retain > 0 {
		if err := r.store.Compact(r.retain); err != nil {
			return fmt.Errorf("checkpoint: compact store: %w", err)
		}
	}
	return nil
}

// Replicator receives everything a warm-standby SP needs to mirror a
// primary: each durable snapshot as it is saved and each batch of result
// rows as it is emitted. internal/ha's Publisher implements it; the
// interface lives here so the recovery manager stays decoupled from the
// HA subsystem.
type Replicator interface {
	// PublishRows mirrors freshly emitted (durably logged) result rows.
	PublishRows(rows telemetry.Batch)
	// PublishSnapshot mirrors one just-saved snapshot under its store id.
	PublishSnapshot(id uint64, snap *Snapshot)
	// WaitDurable blocks until every attached standby has acknowledged
	// the snapshot (true), immediately when no standby is attached
	// (true), or until the timeout expires (false). Gating agent acks on
	// it guarantees a standby can always serve every pruned epoch.
	WaitDurable(id uint64, timeout time.Duration) bool
}

// DefaultReplAckTimeout bounds how long a snapshot save waits for the
// attached standby's ack before releasing the epoch anyway — unacked
// epochs then simply stay in the agents' replay buffers until a later
// snapshot is replicated.
const DefaultReplAckTimeout = 2 * time.Second

// SPRecovery takes epoch-aligned snapshots of a stream processor — the
// engine's stateful operators, per-source watermarks and applied epoch
// sequences — restores the newest one on startup, and routes emitted
// rows through the exactly-once result log. After each durable snapshot
// it acknowledges the covered epochs to the connected agents, which
// prune their replay buffers; epochs applied since the last snapshot
// stay replayable and are deduplicated by sequence when a restarted SP
// receives them again.
//
// With a Replicator attached the manager additionally mirrors every
// emitted row batch and every saved snapshot to the warm standby, and
// withholds agent acks until the standby confirms the covering snapshot
// durable — so failing over can never lose an epoch the agents already
// pruned. With the async writer enabled (SetAsync) the capture still
// happens on the epoch path (a consistent cut under Freeze) but the
// encode + durable save + replication wait run on a writer goroutine, so
// every-epoch checkpointing works even for probe workloads whose dirty
// set is the whole window state.
type SPRecovery struct {
	store  *Store
	log    *ResultLog
	engine *stream.SPEngine
	rc     *transport.Receiver
	every  uint64

	snapAt   uint64 // progress measure (sum of applied seqs) at last snapshot
	haveSnap bool

	maxChain int
	retain   int

	// Capture-side chain state (only the snapshot() caller touches it):
	// whether a chain base exists and how many deltas were captured onto
	// it since.
	capHaveBase bool
	capChainLen int

	// Save-side chain state, shared with the async writer.
	chainMu   sync.Mutex
	lastID    uint64 // store id of the last successful save
	forceFull bool   // a save failed: deltas are skipped until a full base lands

	repl       Replicator
	ackTimeout time.Duration

	term         uint64 // fencing term stamped into snapshots (chainMu)
	restoredTerm uint64 // term recovered from the restored snapshot

	aw *asyncWriter
	// deferredErr holds a save error from a torn-down async writer until
	// the next snapshot call surfaces it.
	deferredErr error
}

// NewSPRecovery wires a recovery manager to an SP engine and its
// receiver. every is the snapshot cadence in applied epochs (minimum 1,
// summed across sources); log may be nil to skip result logging. The
// receiver is switched to manual (durability-gated) acks. Snapshots
// after a chain base are incremental (engine dirty tracking) up to
// DefaultMaxChain deltas; the store is compacted to DefaultRetain
// chains at each new base (SetRetention adjusts).
func NewSPRecovery(store *Store, log *ResultLog, engine *stream.SPEngine, rc *transport.Receiver, every int) *SPRecovery {
	if every < 1 {
		every = 1
	}
	rc.SetManualAck(true)
	return &SPRecovery{
		store: store, log: log, engine: engine, rc: rc, every: uint64(every),
		maxChain: DefaultMaxChain, retain: DefaultRetain,
	}
}

// SetRetention sets how many base + delta chains compaction keeps
// (minimum 1); 0 disables pruning.
func (r *SPRecovery) SetRetention(n int) { r.retain = n }

// SetMaxChain bounds deltas per chain before a full snapshot is forced
// (0 disables deltas entirely).
func (r *SPRecovery) SetMaxChain(n int) { r.maxChain = n }

// SetReplicator attaches a warm-standby replicator: emitted rows and
// saved snapshots are mirrored to it, and agent acks wait (up to
// ackTimeout; 0 selects DefaultReplAckTimeout) for the standby to
// confirm each snapshot durable. Call before serving.
func (r *SPRecovery) SetReplicator(repl Replicator, ackTimeout time.Duration) {
	if ackTimeout <= 0 {
		ackTimeout = DefaultReplAckTimeout
	}
	r.repl = repl
	r.ackTimeout = ackTimeout
}

// SetTerm sets the HA fencing term stamped into every snapshot (it
// never regresses), so a restarted node resumes at the term it had
// reached rather than its configured default.
func (r *SPRecovery) SetTerm(t uint64) {
	r.chainMu.Lock()
	defer r.chainMu.Unlock()
	if t > r.term {
		r.term = t
	}
}

// RestoredTerm returns the fencing term carried by the restored
// snapshot (0 on a fresh store or pre-HA files). Callers raise their
// gate to max(configured, restored).
func (r *SPRecovery) RestoredTerm() uint64 { return r.restoredTerm }

// SetAsync moves the durable save (encode + write + replication wait +
// agent acks) onto a writer goroutine; the epoch path only captures the
// consistent cut and enqueues it. Call once before serving; pair with
// Close on shutdown so queued snapshots drain. Disabling keeps any
// deferred save error, which the next snapshot call surfaces.
func (r *SPRecovery) SetAsync(on bool) {
	if on == (r.aw != nil) {
		return
	}
	if !on {
		if err := r.aw.close(); err != nil && r.deferredErr == nil {
			r.deferredErr = err
		}
		r.aw = nil
		return
	}
	r.aw = newAsyncWriter(r.saveAndAck)
}

// Flush blocks until every queued async save has completed and returns
// (clearing) the first deferred save error, if any. A no-op without the
// async writer.
func (r *SPRecovery) Flush() error {
	if r.aw == nil {
		return nil
	}
	return r.aw.flush()
}

// Close drains the async writer (when enabled) and stops it.
func (r *SPRecovery) Close() error {
	if r.aw == nil {
		return nil
	}
	err := r.aw.close()
	r.aw = nil
	return err
}

// Prime marks snap — already loaded into the engine and receiver by the
// caller — as the recovery manager's starting point: the snapshot
// cadence resumes from its progress and the next save starts a fresh
// full chain. The HA standby uses it at promotion, where the warm shadow
// engine already holds the folded replicated state and a disk restore
// would double-apply it.
func (r *SPRecovery) Prime(snap *Snapshot) {
	var total uint64
	for _, st := range snap.Sources {
		total += st.AppliedSeq
	}
	r.snapAt = total
	r.haveSnap = true
	r.capHaveBase, r.capChainLen = false, 0
	r.chainMu.Lock()
	r.lastID, r.forceFull = 0, false
	r.chainMu.Unlock()
	r.SetTerm(snap.Term)
}

// Restore loads the newest consistent snapshot into the engine and the
// receiver's dedup state. ok is false on a fresh store.
func (r *SPRecovery) Restore() (ok bool, err error) {
	snap, ok, err := r.store.Latest()
	if err != nil || !ok {
		return false, err
	}
	for stage, rows := range snap.Stages {
		if err := r.engine.RestoreStage(stage, rows); err != nil {
			return false, fmt.Errorf("checkpoint: restore stage %d: %w", stage, err)
		}
	}
	var total uint64
	for src, st := range snap.Sources {
		r.engine.RegisterSource(src)
		r.engine.ObserveWatermark(src, st.Watermark)
		r.rc.SetApplied(src, st.AppliedSeq)
		total += st.AppliedSeq
	}
	r.restoredTerm = snap.Term
	r.SetTerm(snap.Term)
	r.snapAt = total
	r.haveSnap = true
	// The restore re-marked everything it absorbed as dirty, so the next
	// snapshot must be a fresh chain base.
	r.capHaveBase, r.capChainLen = false, 0
	r.chainMu.Lock()
	r.lastID, r.forceFull = 0, false
	r.chainMu.Unlock()
	return true, nil
}

// Advance flushes the engine to the merged watermark, routes new rows
// through the result log (suppressing replayed duplicates), mirrors them
// to the replicator, and takes a snapshot plus agent acks when the
// cadence is due. The returned rows are exactly the not-previously-
// emitted ones.
func (r *SPRecovery) Advance() (telemetry.Batch, error) {
	rows := r.rc.Advance()
	if r.log != nil {
		kept, err := r.log.Append(rows)
		if err != nil {
			return nil, err
		}
		rows = kept
		if r.repl != nil && len(rows) > 0 {
			r.repl.PublishRows(rows)
		}
	}
	if err := r.MaybeSnapshot(); err != nil {
		return rows, err
	}
	return rows, nil
}

// MaybeSnapshot takes a durable snapshot and acks it to the agents when
// at least `every` epochs were applied since the last one.
func (r *SPRecovery) MaybeSnapshot() error {
	return r.snapshot(false)
}

// Snapshot unconditionally takes a durable snapshot (e.g. on shutdown).
func (r *SPRecovery) Snapshot() error {
	return r.snapshot(true)
}

// saveJob is one captured snapshot on its way to the durable save (and
// the agent acks that only a durable — and, with a replicator attached,
// replicated — snapshot may release).
type saveJob struct {
	snap *Snapshot
	seqs map[uint32]uint64
	full bool
}

func (r *SPRecovery) snapshot(force bool) error {
	if err := r.deferredErr; err != nil {
		r.deferredErr = nil
		return err
	}
	r.chainMu.Lock()
	forceFull := r.forceFull
	r.chainMu.Unlock()
	full := !r.capHaveBase || r.capChainLen >= r.maxChain || forceFull
	var job *saveJob
	// Freeze pauses epoch application so the captured operator state,
	// watermarks and sequence numbers are one consistent cut.
	r.rc.Freeze(func(applied map[uint32]uint64) {
		var total uint64
		for _, seq := range applied {
			total += seq
		}
		if !force && r.haveSnap && total-r.snapAt < r.every {
			return
		}
		if !force && !r.haveSnap && total < r.every {
			return
		}
		r.chainMu.Lock()
		term := r.term
		r.chainMu.Unlock()
		snap := &Snapshot{
			Seq:       total,
			Watermark: r.engine.EffectiveWatermark(),
			Sources:   make(map[uint32]SourceState),
			Delta:     !full,
			Term:      term,
		}
		if full {
			snap.Stages = r.engine.SnapshotStages()
			r.engine.MarkSnapshotClean()
		} else {
			// BaseID is stamped at save time — with the async writer,
			// earlier captures may still be in flight and the base's store
			// id is not known yet.
			snap.Stages, snap.Meta = r.engine.SnapshotStagesDelta()
		}
		if r.log != nil {
			snap.EmittedWM = r.log.EmittedWM()
		}
		r.engine.SourceWatermarks(func(src uint32, wm int64) {
			snap.Sources[src] = SourceState{Watermark: wm, AppliedSeq: applied[src]}
		})
		for src, seq := range applied {
			if _, seen := snap.Sources[src]; !seen {
				snap.Sources[src] = SourceState{AppliedSeq: seq}
			}
		}
		r.snapAt = total
		r.haveSnap = true
		job = &saveJob{snap: snap, seqs: applied, full: full}
	})
	if job == nil {
		if r.aw != nil {
			return r.aw.takeErr()
		}
		return nil
	}
	if full {
		r.capHaveBase, r.capChainLen = true, 0
	} else {
		r.capChainLen++
	}
	if r.aw != nil {
		if force {
			// Forced snapshots (shutdown) stay synchronous: drain the queue
			// so saves keep capture order, then save inline.
			if err := r.aw.flush(); err != nil {
				return err
			}
			return r.saveAndAck(job)
		}
		r.aw.enqueue(job)
		return r.aw.takeErr()
	}
	return r.saveAndAck(job)
}

// saveAndAck writes one captured snapshot durably, compacts and
// replicates it, and only then acknowledges the covered epochs to the
// agents. It runs on the caller's goroutine (sync mode) or the async
// writer's.
func (r *SPRecovery) saveAndAck(job *saveJob) error {
	r.chainMu.Lock()
	if job.snap.Delta {
		if r.forceFull {
			// This delta chains onto a save that failed; its rows are
			// covered by the full base the next capture is forced to take.
			// Saving it would silently corrupt the chain.
			r.chainMu.Unlock()
			return nil
		}
		job.snap.BaseID = r.lastID
	}
	r.chainMu.Unlock()
	snapStart := obs.Now()
	id, err := r.store.Save(job.snap)
	snapDur := obs.ObserveSince(obs.StageSnapshot, snapStart)
	if err != nil {
		// The capture already advanced the dirty generation, so the rows
		// this snapshot carried will never appear in a later delta; force
		// the next capture full or the chain would silently miss them.
		r.chainMu.Lock()
		r.forceFull = true
		r.chainMu.Unlock()
		return fmt.Errorf("checkpoint: save SP snapshot: %w", err)
	}
	if snapDur > 0 {
		// Trace context: every epoch this save covers waited through it.
		for src, seq := range job.seqs {
			obs.Traces().AddSnapshotUpTo(src, seq, snapDur)
		}
	}
	r.chainMu.Lock()
	r.lastID, r.forceFull = id, false
	r.chainMu.Unlock()
	if job.full && r.retain > 0 {
		if err := r.store.Compact(r.retain); err != nil {
			return fmt.Errorf("checkpoint: compact store: %w", err)
		}
	}
	if r.repl != nil {
		replStart := obs.Now()
		r.repl.PublishSnapshot(id, job.snap)
		durable := r.repl.WaitDurable(id, r.ackTimeout)
		replDur := obs.ObserveSince(obs.StageReplicate, replStart)
		if replDur > 0 {
			for src, seq := range job.seqs {
				obs.Traces().AddReplicationUpTo(src, seq, replDur)
			}
		}
		if !durable {
			// The attached standby has not confirmed the snapshot: keep the
			// covered epochs in the agents' replay buffers — a later
			// snapshot's ack releases them once replication catches up.
			return nil
		}
	}
	// Only now — with the snapshot durable (and replicated) — may agents
	// prune their replay buffers up to the covered epochs.
	ackStart := obs.Now()
	r.rc.AckSeqs(job.seqs)
	obs.Since(obs.StageAck, ackStart)
	return nil
}

// asyncWriter serializes snapshot saves on a dedicated goroutine with a
// small bounded queue; enqueue blocks when the writer falls that far
// behind (backpressure on the epoch loop instead of unbounded memory).
// The do hook performs one save — SPRecovery.saveAndAck on stream
// processors, AgentRecovery.save on agents.
type asyncWriter struct {
	do   func(*saveJob) error
	mu   sync.Mutex
	cond *sync.Cond
	q    []*saveJob
	busy bool
	done bool
	err  error // first deferred save error, surfaced on the next snapshot call
}

// asyncQueueDepth bounds captured-but-unsaved snapshots.
const asyncQueueDepth = 4

func newAsyncWriter(do func(*saveJob) error) *asyncWriter {
	w := &asyncWriter{do: do}
	w.cond = sync.NewCond(&w.mu)
	go w.run()
	return w
}

func (w *asyncWriter) run() {
	for {
		w.mu.Lock()
		for len(w.q) == 0 && !w.done {
			w.cond.Wait()
		}
		if len(w.q) == 0 && w.done {
			w.mu.Unlock()
			return
		}
		job := w.q[0]
		w.q = w.q[1:]
		w.busy = true
		w.mu.Unlock()
		err := w.do(job)
		w.mu.Lock()
		w.busy = false
		if err != nil && w.err == nil {
			w.err = err
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

func (w *asyncWriter) enqueue(job *saveJob) {
	w.mu.Lock()
	for len(w.q) >= asyncQueueDepth && !w.done {
		w.cond.Wait()
	}
	w.q = append(w.q, job)
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *asyncWriter) takeErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}

func (w *asyncWriter) flush() error {
	w.mu.Lock()
	for len(w.q) > 0 || w.busy {
		w.cond.Wait()
	}
	err := w.err
	w.err = nil
	w.mu.Unlock()
	return err
}

func (w *asyncWriter) close() error {
	err := w.flush()
	w.mu.Lock()
	w.done = true
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}
