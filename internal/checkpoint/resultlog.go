package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// ResultLog is the SP's durable, exactly-once result sink: an
// append-only file of wire frames holding every final row the query
// emitted, in emission order. Appends are gated by a monotone
// emitted-watermark high-water mark, so rows re-emitted while replaying
// epochs after a restart (their windows close again) are recognized as
// duplicates and dropped — the log holds each result row exactly once,
// and "final results" after any number of crashes are byte-identical to
// an uninterrupted run.
//
// On open the log scans itself, truncates any torn tail frame (a crash
// mid-append) and recovers the high-water mark.
type ResultLog struct {
	f         *os.File
	emittedWM int64
	rows      int64
	// size is the byte offset past the last fully written frame; a failed
	// append truncates back to it so a torn frame never strands the rows
	// appended after it.
	size int64
}

// OpenResultLog opens (creating if needed) a result log and recovers
// its emitted-watermark high-water mark.
func OpenResultLog(path string) (*ResultLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open result log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	good, rows, wm := scanResultFrames(data)
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &ResultLog{f: f, emittedWM: wm, rows: rows, size: good}, nil
}

// scanResultFrames walks the log's frames, returning the byte offset of
// the last complete, decodable frame plus the row count and the max
// row event time (the recovered high-water mark).
func scanResultFrames(data []byte) (good int64, rows int64, wm int64) {
	off := 0
	for {
		if off+4 > len(data) {
			return int64(off), rows, wm
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n > wire.MaxFrameSize || off+4+n > len(data) {
			return int64(off), rows, wm
		}
		f, err := wire.NewFrameReader(bytes.NewReader(data[off : off+4+n])).ReadFrame()
		if err != nil {
			return int64(off), rows, wm
		}
		for _, rec := range f.Records {
			rows++
			if rec.Time > wm {
				wm = rec.Time
			}
		}
		off += 4 + n
	}
}

// Append filters out rows already covered by the high-water mark,
// durably appends the remainder as one frame, and returns exactly the
// rows that were new. Result rows are stamped with their window-end
// event time, and windows close monotonically with the watermark, so a
// row's time being at or below the mark identifies a replayed duplicate.
func (l *ResultLog) Append(rowsIn telemetry.Batch) (telemetry.Batch, error) {
	var kept telemetry.Batch
	maxT := l.emittedWM
	for _, rec := range rowsIn {
		if rec.Time <= l.emittedWM {
			continue
		}
		kept = append(kept, rec)
		if rec.Time > maxT {
			maxT = rec.Time
		}
	}
	if len(kept) == 0 {
		return nil, nil
	}
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	if err := fw.WriteFrame(wire.Frame{Records: kept}); err != nil {
		return nil, fmt.Errorf("checkpoint: encode result rows: %w", err)
	}
	if err := fw.Flush(); err != nil {
		return nil, err
	}
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		// A partial frame may have reached the file; rewind to the last
		// good frame boundary so the next append does not strand rows
		// behind a torn frame. The high-water mark is untouched, so the
		// caller may retry these rows.
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return nil, fmt.Errorf("checkpoint: append result rows: %w", err)
	}
	l.size += int64(buf.Len())
	l.emittedWM = maxT
	l.rows += int64(len(kept))
	return kept, nil
}

// EmittedWM returns the watermark through which results are durably
// logged.
func (l *ResultLog) EmittedWM() int64 { return l.emittedWM }

// Rows returns the number of rows in the log.
func (l *ResultLog) Rows() int64 { return l.rows }

// Close closes the underlying file.
func (l *ResultLog) Close() error { return l.f.Close() }

// ReadResultLog decodes every row of a result log, in append order.
func ReadResultLog(path string) (telemetry.Batch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	good, _, _ := scanResultFrames(data)
	fr := wire.NewFrameReader(bytes.NewReader(data[:good]))
	var out telemetry.Batch
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f.Records...)
	}
}
