// Package checkpoint is Jarvis' fault-tolerance subsystem (§IV-E): a
// snapshot codec over the wire frame format, a durable append-only
// snapshot store with an epoch-sequence manifest, an exactly-once result
// log, and recovery managers that take epoch-aligned snapshots of a
// source pipeline (agent side) or SP engine (stream-processor side) and
// restore the newest consistent one on startup.
//
// Together with transport's sequenced shipping (DurableShipper hello/
// epoch-end/ack protocol, bounded replay buffer, receiver-side sequence
// dedup) this gives end-to-end exactly-once epoch application across
// agent and SP restarts: every epoch an agent produces is applied to SP
// state exactly once, and every result row reaches the durable result
// log exactly once.
//
// Durability model: snapshots are written atomically (temp file + rename
// after a full write) and recorded in an append-only manifest; the store
// survives process crashes and restarts. Fsync is optional (Store.Sync)
// for deployments that must also survive machine crashes.
package checkpoint

import (
	"fmt"
	"io"
	"sort"

	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
)

// SourceState is one source's progress inside an SP snapshot.
type SourceState struct {
	// Watermark is the source's observed event-time watermark.
	Watermark int64
	// AppliedSeq is the last epoch sequence applied for the source.
	AppliedSeq uint64
}

// Snapshot is one epoch-aligned capture of recoverable state. Agent
// snapshots carry Stages/Factors/Pending (+ Seq/Acked from the shipper);
// SP snapshots carry Stages/Sources/EmittedWM.
type Snapshot struct {
	// Seq is the epoch sequence the snapshot covers: the agent's last
	// shipped epoch, or the sum of per-source applied sequences on the SP
	// (a monotone progress measure used for cadence).
	Seq uint64
	// Watermark is the low watermark at capture time.
	Watermark int64
	// EmittedWM is the watermark through which results were already
	// emitted to the durable result log (SP side).
	EmittedWM int64
	// Acked is the newest epoch the SP had acknowledged durable (agent
	// side).
	Acked uint64
	// Stages maps operator stage → snapshotted rows (partial aggregates,
	// buffered join misses).
	Stages map[int]telemetry.Batch
	// Sources maps source id → progress (SP side).
	Sources map[uint32]SourceState
	// Factors are the pipeline's per-proxy load factors (agent side).
	Factors []float64
	// Pending is the agent's replay buffer: encoded unacked epochs.
	Pending []transport.PendingEpoch

	// Term is the newest HA fencing term the node had observed when the
	// snapshot was taken; restoring it keeps a restarted node from
	// trusting a primary the cluster already moved past.
	Term uint64

	// Delta marks an incremental snapshot: Stages holds only state
	// dirtied since the snapshot identified by BaseID, applied per Meta.
	// Scalar fields (Seq, watermarks, Sources, Factors, Pending) are
	// always complete — only stage rows are incremental.
	Delta bool
	// BaseID is the store id of the snapshot this delta extends.
	BaseID uint64
	// Meta describes, per stage, how delta rows apply to the base state.
	Meta map[int]stream.StageDelta
}

// Encode serializes the snapshot as wire frames: a SnapshotHeader
// control frame, StageMeta control frames (delta snapshots), one
// columnar data frame per stage, a SourceState control frame, a
// LoadFactors control frame and one ReplayEpoch control frame per
// pending epoch.
func (s *Snapshot) Encode(w io.Writer) error {
	fw := wire.NewFrameWriter(w)
	fw.SetColumnar(true)
	return s.encodeTo(fw)
}

// EncodeLegacy serializes the snapshot with wire-v1 record-at-a-time
// stage frames — the format pre-columnar builds wrote. Kept for
// compatibility tests; DecodeSnapshot reads both.
func (s *Snapshot) EncodeLegacy(w io.Writer) error {
	return s.encodeTo(wire.NewFrameWriter(w))
}

// encodeTo writes the snapshot through an existing frame writer (already
// redirected at the destination), letting callers reuse its buffers.
func (s *Snapshot) encodeTo(fw *wire.FrameWriter) error {
	ctl := func(data any, size int) error {
		rec := telemetry.Record{WireSize: size, Data: data}
		return fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Records: telemetry.Batch{rec}})
	}
	hdr := &wire.SnapshotHeader{
		Seq: s.Seq, Watermark: s.Watermark, EmittedWM: s.EmittedWM, Acked: s.Acked,
		BaseID: s.BaseID, Delta: s.Delta, Term: s.Term,
	}
	if err := ctl(hdr, 49); err != nil {
		return err
	}
	metaStages := make([]int, 0, len(s.Meta))
	for st := range s.Meta {
		metaStages = append(metaStages, st)
	}
	sort.Ints(metaStages)
	for _, st := range metaStages {
		m := s.Meta[st]
		rec := &wire.StageMeta{Stage: st, Replace: m.Replace, Closed: m.Closed}
		if err := ctl(rec, 20+9*len(m.Closed)); err != nil {
			return err
		}
	}
	stages := make([]int, 0, len(s.Stages))
	for st := range s.Stages {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	for _, st := range stages {
		if err := fw.WriteFrame(wire.Frame{StreamID: uint32(st), Records: s.Stages[st]}); err != nil {
			return fmt.Errorf("checkpoint: encode stage %d: %w", st, err)
		}
	}
	if len(s.Sources) > 0 {
		ids := make([]uint32, 0, len(s.Sources))
		for id := range s.Sources {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		recs := make(telemetry.Batch, 0, len(ids))
		for _, id := range ids {
			st := s.Sources[id]
			recs = append(recs, telemetry.Record{WireSize: 37, Data: &wire.SourceState{
				Source: id, Watermark: st.Watermark, AppliedSeq: st.AppliedSeq,
			}})
		}
		if err := fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Records: recs}); err != nil {
			return err
		}
	}
	if len(s.Factors) > 0 {
		if err := ctl(&wire.LoadFactors{Factors: s.Factors}, 18+8*len(s.Factors)); err != nil {
			return err
		}
	}
	for _, p := range s.Pending {
		if err := ctl(&wire.ReplayEpoch{Seq: p.Seq, Data: p.Data}, 26+len(p.Data)); err != nil {
			return fmt.Errorf("checkpoint: encode replay epoch %d: %w", p.Seq, err)
		}
	}
	return fw.Flush()
}

// DecodeSnapshot reads a snapshot written by Encode (or by a
// pre-columnar build's encoder — both frame versions decode).
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	return decodeSnapshot(wire.NewFrameReader(r))
}

func decodeSnapshot(fr *wire.FrameReader) (*Snapshot, error) {
	first, err := fr.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot header: %w", err)
	}
	if first.StreamID != wire.ControlStreamID || len(first.Records) != 1 {
		return nil, fmt.Errorf("checkpoint: malformed snapshot header frame")
	}
	hdr, ok := first.Records[0].Data.(*wire.SnapshotHeader)
	if !ok {
		return nil, fmt.Errorf("checkpoint: snapshot opens with %T, want header", first.Records[0].Data)
	}
	s := &Snapshot{
		Seq:       hdr.Seq,
		Watermark: hdr.Watermark,
		EmittedWM: hdr.EmittedWM,
		Acked:     hdr.Acked,
		Delta:     hdr.Delta,
		BaseID:    hdr.BaseID,
		Term:      hdr.Term,
		Stages:    make(map[int]telemetry.Batch),
		Sources:   make(map[uint32]SourceState),
	}
	if s.Delta {
		s.Meta = make(map[int]stream.StageDelta)
	}
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if f.StreamID != wire.ControlStreamID {
			s.Stages[int(f.StreamID)] = f.Records
			continue
		}
		for _, rec := range f.Records {
			switch c := rec.Data.(type) {
			case *wire.SourceState:
				s.Sources[c.Source] = SourceState{Watermark: c.Watermark, AppliedSeq: c.AppliedSeq}
			case *wire.LoadFactors:
				s.Factors = c.Factors
			case *wire.ReplayEpoch:
				s.Pending = append(s.Pending, transport.PendingEpoch{Seq: c.Seq, Data: c.Data})
			case *wire.StageMeta:
				if s.Meta == nil {
					s.Meta = make(map[int]stream.StageDelta)
				}
				s.Meta[c.Stage] = stream.StageDelta{Replace: c.Replace, Closed: c.Closed}
			default:
				return nil, fmt.Errorf("checkpoint: unexpected control record %T in snapshot", rec.Data)
			}
		}
	}
}

// groupRef addresses one group row inside a stage for keyed delta
// merging, using the same window resolution as the operators' merge
// path (the payload's window wins over the record's when set).
type groupRef struct {
	win int64
	key telemetry.GroupKey
}

// rowRef extracts the (window, key) address of a keyed snapshot row.
// Rows of non-keyed payload types report ok == false; stages holding
// them must use replace mode.
func rowRef(rec *telemetry.Record) (groupRef, bool) {
	switch p := rec.Data.(type) {
	case *telemetry.AggRow:
		ref := groupRef{win: rec.Window, key: p.Key}
		if p.Window != 0 {
			ref.win = p.Window
		}
		return ref, true
	case *telemetry.QuantileRow:
		ref := groupRef{win: rec.Window, key: p.Key}
		if p.Window != 0 {
			ref.win = p.Window
		}
		return ref, true
	default:
		return groupRef{}, false
	}
}

// ApplyDelta folds one delta snapshot into the reconstructed base state,
// mutating and returning base. Scalar fields always take the delta's
// values (they are complete in every snapshot); stage rows apply per the
// delta's Meta: replace mode swaps a stage wholesale, keyed mode drops
// rows of closed windows and supersedes rows group by group. Besides the
// store's chain reconstruction, the HA standby uses it to fold the
// primary's replicated deltas into its in-memory state.
func ApplyDelta(base, d *Snapshot) *Snapshot {
	base.Seq = d.Seq
	base.Watermark = d.Watermark
	base.EmittedWM = d.EmittedWM
	base.Acked = d.Acked
	base.Sources = d.Sources
	base.Factors = d.Factors
	base.Pending = d.Pending
	if d.Term > base.Term {
		base.Term = d.Term
	}

	// Union of stages the delta mentions: rows, meta, or both.
	stages := make(map[int]struct{}, len(d.Stages)+len(d.Meta))
	for st := range d.Stages {
		stages[st] = struct{}{}
	}
	for st := range d.Meta {
		stages[st] = struct{}{}
	}
	for st := range stages {
		meta := d.Meta[st]
		rows := d.Stages[st]
		if meta.Replace {
			if len(rows) == 0 {
				delete(base.Stages, st)
			} else {
				base.Stages[st] = rows
			}
			continue
		}
		cur := base.Stages[st]
		if len(meta.Closed) > 0 && len(cur) > 0 {
			closed := make(map[int64]struct{}, len(meta.Closed))
			for _, w := range meta.Closed {
				closed[w] = struct{}{}
			}
			kept := cur[:0]
			for i := range cur {
				ref, ok := rowRef(&cur[i])
				if ok {
					if _, gone := closed[ref.win]; gone {
						continue
					}
				}
				kept = append(kept, cur[i])
			}
			cur = kept
		}
		if len(rows) > 0 {
			idx := make(map[groupRef]int, len(cur))
			for i := range cur {
				if ref, ok := rowRef(&cur[i]); ok {
					idx[ref] = i
				}
			}
			for i := range rows {
				ref, ok := rowRef(&rows[i])
				if !ok {
					// Unkeyed row in a keyed delta: append (cannot
					// supersede anything).
					cur = append(cur, rows[i])
					continue
				}
				if j, seen := idx[ref]; seen {
					cur[j] = rows[i]
				} else {
					idx[ref] = len(cur)
					cur = append(cur, rows[i])
				}
			}
		}
		if len(cur) == 0 {
			delete(base.Stages, st)
		} else {
			base.Stages[st] = cur
		}
	}
	return base
}
