package checkpoint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"

	"jarvis/internal/wire"
)

// manifestName is the append-only index of snapshots in a store
// directory. Each line records one fully written snapshot:
//
//	v1 <id> <file> <seq> <watermark>                    (full, pre-delta builds)
//	v2 <id> <file> <seq> <watermark> <base> <f|d>       (full or delta)
//
// A snapshot's manifest line is appended only after its file is fully
// written and closed, so every listed entry is complete; Latest still
// verifies by decoding and walks backwards past any entry (or
// base+delta chain) that fails.
const manifestName = "MANIFEST"

// DefaultRetain is the default snapshot retention for the recovery
// managers' compaction: the newest consistent chains kept when pruning.
const DefaultRetain = 4

// Store is a durable append-only snapshot store rooted at one directory.
// Snapshots form a linear history: a delta snapshot extends the
// snapshot saved immediately before it (its BaseID), and restoring
// reconstructs the newest base + delta chain that decodes.
//
// Methods are safe for concurrent use: the HA publisher reads the
// newest chain (LatestWithID) from a replication-accept goroutine while
// the recovery manager's writer saves and compacts, and without the
// internal lock a concurrent Compact could unlink chain files mid-read.
type Store struct {
	mu  sync.Mutex
	dir string
	// Sync forces fsync on every save, surviving machine crashes at a
	// latency cost. Off by default: snapshots then survive process
	// crashes and restarts (the recovery subsystem's target fault model).
	Sync bool

	nextID uint64
	// fw is reused across saves so the megabyte-scale frame buffer is
	// grown once, not per snapshot.
	fw *wire.FrameWriter
	// dec is the store's shared columnar decoder: strings repeated
	// across the files of a chain (group keys, tenants) decode to one
	// allocation.
	dec *wire.ColumnarDecoder
	// mf is the manifest held open for appending: at every-epoch
	// snapshot cadence, reopening it per save would double the save's
	// fixed syscall cost.
	mf *os.File
}

// OpenStore opens (creating if needed) a snapshot store directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	s := &Store{dir: dir, nextID: 1, dec: wire.NewColumnarDecoder()}
	entries, err := s.entries()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.id >= s.nextID {
			s.nextID = e.id + 1
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SnapshotFileName returns the file name a snapshot id is stored under.
func SnapshotFileName(id uint64) string { return fmt.Sprintf("snap-%08d.ckpt", id) }

type manifestEntry struct {
	id    uint64
	file  string
	seq   uint64
	wm    int64
	base  uint64
	delta bool
}

func (s *Store) entries() ([]manifestEntry, error) {
	f, err := os.Open(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	defer f.Close()
	var out []manifestEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e manifestEntry
		var version string
		switch {
		case strings.HasPrefix(line, "v1 "):
			if _, err := fmt.Sscanf(line, "%s %d %s %d %d", &version, &e.id, &e.file, &e.seq, &e.wm); err != nil {
				continue // torn tail line: skip
			}
		case strings.HasPrefix(line, "v2 "):
			var kind string
			if _, err := fmt.Sscanf(line, "%s %d %s %d %d %d %s", &version, &e.id, &e.file, &e.seq, &e.wm, &e.base, &kind); err != nil {
				continue
			}
			if kind != "f" && kind != "d" {
				continue // torn line merged with a later append: skip
			}
			e.delta = kind == "d"
		default:
			continue // unknown version: skip
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Save writes a snapshot durably and returns the id the store assigned
// it. The snapshot file is written under its final name and its
// manifest line is appended only after a successful close — a listed
// entry is therefore always a fully written file (a crash mid-write
// leaves an unlisted orphan, overwritten by the next incarnation since
// ids resume past the manifest's maximum). Delta snapshots record
// snap.BaseID in the manifest so restores can rebuild the chain.
func (s *Store) Save(snap *Snapshot) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	name := SnapshotFileName(id)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if s.fw == nil {
		s.fw = wire.NewFrameWriter(f)
		s.fw.SetColumnar(true)
	} else {
		s.fw.Reset(f)
	}
	fail := func(err error) (uint64, error) {
		_ = f.Close()
		_ = os.Remove(filepath.Join(s.dir, name))
		return 0, err
	}
	if err := snap.encodeTo(s.fw); err != nil {
		return fail(fmt.Errorf("checkpoint: encode snapshot: %w", err))
	}
	if s.Sync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(filepath.Join(s.dir, name))
		return 0, err
	}
	kind := "f"
	if snap.Delta {
		kind = "d"
	}
	if s.mf == nil {
		s.mf, err = s.openManifest()
		if err != nil {
			return 0, err
		}
	}
	if _, err := fmt.Fprintf(s.mf, "v2 %d %s %d %d %d %s\n", id, name, snap.Seq, snap.Watermark, snap.BaseID, kind); err != nil {
		// A short write may have left an unterminated line; reopen (with
		// tail repair) before the next attempt rather than appending onto
		// the torn tail.
		_ = s.mf.Close()
		s.mf = nil
		return 0, err
	}
	if s.Sync {
		if err := s.mf.Sync(); err != nil {
			return 0, err
		}
	}
	s.nextID++
	return id, nil
}

// openManifest opens the manifest for appending, first terminating any
// torn tail line a crash mid-append left behind — otherwise the next
// entry would merge into it and both would be lost to the parser.
func (s *Store) openManifest() (*os.File, error) {
	path := filepath.Join(s.dir, manifestName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
			_ = f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.WriteAt([]byte{'\n'}, st.Size()); err != nil {
				_ = f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

// Close releases the store's open file handles (the manifest). Saves
// after Close reopen it transparently.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mf != nil {
		err := s.mf.Close()
		s.mf = nil
		return err
	}
	return nil
}

// decodeFile decodes one snapshot file through the store's shared
// columnar decoder.
func (s *Store) decodeFile(name string) (*Snapshot, error) {
	f, err := os.Open(filepath.Join(s.dir, filepath.Base(name)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fr := wire.NewFrameReader(f)
	fr.UseDecoder(s.dec)
	return decodeSnapshot(fr)
}

// chain returns the base + delta chain ending at entry (base first), or
// ok == false when a base link is missing or malformed.
func chain(entry manifestEntry, byID map[uint64]manifestEntry) ([]manifestEntry, bool) {
	out := []manifestEntry{entry}
	for e := entry; e.delta; {
		b, ok := byID[e.base]
		if !ok || b.id >= e.id {
			return nil, false
		}
		out = append(out, b)
		e = b
	}
	slices.Reverse(out)
	if out[0].delta {
		return nil, false
	}
	return out, true
}

// Latest loads the newest consistent snapshot: the last manifest entry
// whose full base + delta chain exists and decodes, reconstructed by
// folding each delta into its base. It returns ok == false when the
// store holds no usable snapshot.
func (s *Store) Latest() (*Snapshot, bool, error) {
	snap, _, ok, err := s.LatestWithID()
	return snap, ok, err
}

// LatestWithID is Latest plus the store id of the chain's newest entry —
// the id later delta snapshots name as their base, which the HA primary
// needs when resyncing a standby (the folded state stands in for that id
// so the live delta feed chains onto it).
func (s *Store) LatestWithID() (*Snapshot, uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.entries()
	if err != nil {
		return nil, 0, false, err
	}
	byID := make(map[uint64]manifestEntry, len(entries))
	for _, e := range entries {
		byID[e.id] = e
	}
next:
	for i := len(entries) - 1; i >= 0; i-- {
		ch, ok := chain(entries[i], byID)
		if !ok {
			continue
		}
		var snap *Snapshot
		for _, e := range ch {
			d, derr := s.decodeFile(e.file)
			if derr != nil {
				continue next // corrupt/torn link: fall back to an older entry
			}
			if snap == nil {
				snap = d
			} else {
				snap = ApplyDelta(snap, d)
			}
		}
		return snap, entries[i].id, true, nil
	}
	return nil, 0, false, nil
}

// Snapshots returns how many manifest entries the store records.
func (s *Store) Snapshots() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.entries()
	return len(entries), err
}

// Compact prunes the store down to the snapshots belonging to the
// `retain` newest chains: every entry from the retain-th newest full
// snapshot onward survives (snapshot history is linear, so that suffix
// contains exactly the newest chains, including every replay-buffer
// epoch embedded in them). Older snapshot files are deleted and the
// manifest is rewritten atomically. retain < 1 is a no-op.
func (s *Store) Compact(retain int) error {
	if retain < 1 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.entries()
	if err != nil {
		return err
	}
	var bases []uint64
	for _, e := range entries {
		if !e.delta {
			bases = append(bases, e.id)
		}
	}
	if len(bases) <= retain {
		return nil
	}
	cut := bases[len(bases)-retain]
	var kept, dropped []manifestEntry
	for _, e := range entries {
		if e.id >= cut {
			kept = append(kept, e)
		} else {
			dropped = append(dropped, e)
		}
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	for _, e := range kept {
		kind := "f"
		if e.delta {
			kind = "d"
		}
		if _, err := fmt.Fprintf(f, "v2 %d %s %d %d %d %s\n", e.id, e.file, e.seq, e.wm, e.base, kind); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return err
		}
	}
	if s.Sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// The open append handle would keep pointing at the unlinked old
	// manifest after the rename; drop it so the next Save reopens.
	if s.mf != nil {
		_ = s.mf.Close()
		s.mf = nil
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// Only after the manifest no longer references them may the files go.
	for _, e := range dropped {
		_ = os.Remove(filepath.Join(s.dir, filepath.Base(e.file)))
	}
	return nil
}
