package checkpoint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jarvis/internal/wire"
)

// manifestName is the append-only index of snapshots in a store
// directory. Each line records one fully written snapshot:
//
//	v1 <id> <file> <seq> <watermark>
//
// A snapshot file is renamed into place before its manifest line is
// appended, so every listed entry is complete; Latest still verifies by
// decoding and walks backwards past any entry that fails.
const manifestName = "MANIFEST"

// Store is a durable append-only snapshot store rooted at one directory.
type Store struct {
	dir string
	// Sync forces fsync on every save, surviving machine crashes at a
	// latency cost. Off by default: snapshots then survive process
	// crashes and restarts (the recovery subsystem's target fault model).
	Sync bool

	nextID uint64
	// fw is reused across saves so the megabyte-scale frame buffer is
	// grown once, not per snapshot.
	fw *wire.FrameWriter
}

// OpenStore opens (creating if needed) a snapshot store directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	s := &Store{dir: dir, nextID: 1}
	entries, err := s.entries()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.id >= s.nextID {
			s.nextID = e.id + 1
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

type manifestEntry struct {
	id   uint64
	file string
	seq  uint64
	wm   int64
}

func (s *Store) entries() ([]manifestEntry, error) {
	f, err := os.Open(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	defer f.Close()
	var out []manifestEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e manifestEntry
		var version string
		if _, err := fmt.Sscanf(line, "%s %d %s %d %d", &version, &e.id, &e.file, &e.seq, &e.wm); err != nil || version != "v1" {
			continue // torn tail line or unknown version: skip
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Save writes a snapshot atomically (temp file, rename, manifest
// append) and returns the snapshot file's name.
func (s *Store) Save(snap *Snapshot) (string, error) {
	name := fmt.Sprintf("snap-%08d.ckpt", s.nextID)
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("checkpoint: save: %w", err)
	}
	if s.fw == nil {
		s.fw = wire.NewFrameWriter(f)
	} else {
		s.fw.Reset(f)
	}
	if err := snap.encodeTo(s.fw); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: encode snapshot: %w", err)
	}
	if s.Sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return "", err
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	final := filepath.Join(s.dir, name)
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	mf, err := os.OpenFile(filepath.Join(s.dir, manifestName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return "", err
	}
	_, werr := fmt.Fprintf(mf, "v1 %d %s %d %d\n", s.nextID, name, snap.Seq, snap.Watermark)
	if werr == nil && s.Sync {
		werr = mf.Sync()
	}
	if cerr := mf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	s.nextID++
	return name, nil
}

// Latest loads the newest consistent snapshot: the last manifest entry
// whose file exists and decodes. It returns ok == false when the store
// holds no usable snapshot.
func (s *Store) Latest() (*Snapshot, bool, error) {
	entries, err := s.entries()
	if err != nil {
		return nil, false, err
	}
	for i := len(entries) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(s.dir, filepath.Base(entries[i].file)))
		if err != nil {
			continue
		}
		snap, derr := DecodeSnapshot(bufio.NewReader(f))
		_ = f.Close()
		if derr != nil {
			continue // corrupt/torn snapshot: fall back to the previous one
		}
		return snap, true, nil
	}
	return nil, false, nil
}

// Snapshots returns how many manifest entries the store records.
func (s *Store) Snapshots() (int, error) {
	entries, err := s.entries()
	return len(entries), err
}
