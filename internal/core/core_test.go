package core

import (
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func TestNewSourceValidation(t *testing.T) {
	if _, err := NewSource(plan.NewQuery("bad"), SourceOptions{BudgetFrac: 1}); err == nil {
		t.Fatal("invalid query must fail")
	}
	q := plan.S2SProbe()
	q.Ops[0].CrossSourceState = true // nothing source-eligible
	if _, err := NewSource(q, SourceOptions{BudgetFrac: 1}); err == nil {
		t.Fatal("fully ineligible query must fail")
	}
}

func TestSourceAdaptsFromStartup(t *testing.T) {
	src, gen, err := NewPingmeshSource(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if src.Boundary() != 3 {
		t.Fatalf("boundary = %d", src.Boundary())
	}
	// Startup: zeros; after several epochs the runtime must have raised
	// the factors to use the 80% budget.
	for e := 0; e < 12; e++ {
		if _, err := src.RunEpoch(gen.NextWindow(1_000_000)); err != nil {
			t.Fatal(err)
		}
	}
	lf := src.LoadFactors()
	if lf[0] == 0 && lf[1] == 0 && lf[2] == 0 {
		t.Fatalf("runtime never adapted: %v", lf)
	}
	res := src.LastResult()
	if res.BudgetUsedFrac < 0.5 {
		t.Fatalf("budget badly underused after adaptation: %v", res.BudgetUsedFrac)
	}
	if src.Epochs() != 12 {
		t.Fatalf("epochs = %d", src.Epochs())
	}
	if src.Phase() != runtime.PhaseProbe && src.Phase() != runtime.PhaseAdapt {
		t.Fatalf("phase = %v", src.Phase())
	}
}

func TestSourceBudgetChangeReadapts(t *testing.T) {
	src, gen, err := NewPingmeshSource(2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 12; e++ {
		_, _ = src.RunEpoch(gen.NextWindow(1_000_000))
	}
	highUse := src.LastResult().BudgetUsedFrac * src.Budget()
	src.SetBudget(0.4)
	if src.Budget() != 0.4 {
		t.Fatal("budget setter")
	}
	for e := 0; e < 25; e++ {
		_, _ = src.RunEpoch(gen.NextWindow(1_000_000))
	}
	lowUse := src.LastResult().BudgetUsedFrac * src.Budget()
	if lowUse > 0.45 {
		t.Fatalf("demand did not shrink with the budget: %v → %v", highUse, lowUse)
	}
}

func TestSourceNoAdaptKeepsFactors(t *testing.T) {
	src, err := NewSource(plan.S2SProbe(), SourceOptions{
		BudgetFrac: 1, RateMbps: workload.PingmeshMbps10x, Adapt: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0}
	_ = src.SetLoadFactors(want)
	gen := workload.NewPingGen(workload.DefaultPingConfig(3))
	for e := 0; e < 5; e++ {
		_, _ = src.RunEpoch(gen.NextWindow(1_000_000))
	}
	got := src.LoadFactors()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("factors drifted: %v", got)
		}
	}
}

func TestBuildingBlockEndToEnd(t *testing.T) {
	bb, err := NewBuildingBlock(plan.S2SProbe(), 2, SourceOptions{
		BudgetFrac: 1, RateMbps: workload.PingmeshMbps10x, Adapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gens := []*workload.PingGen{
		workload.NewPingGen(pingCfg(11, 0x0A000001)),
		workload.NewPingGen(pingCfg(12, 0x0A000002)),
	}
	var rows telemetry.Batch
	for e := 0; e < 14; e++ {
		batches := make([]telemetry.Batch, 2)
		for i, g := range gens {
			if e < 10 {
				batches[i] = g.NextWindow(1_000_000)
			} else {
				bb.Sources[i].ObserveTime(int64(e+1) * 1_000_000)
			}
		}
		out, err := bb.RunEpoch(batches)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, out...)
	}
	if len(rows) == 0 {
		t.Fatal("no merged results")
	}
	// Group keys from both sources must appear.
	srcSeen := map[uint32]bool{}
	for _, r := range rows {
		row := r.Data.(*telemetry.AggRow)
		srcSeen[uint32(row.Key.Num>>32)] = true
	}
	if len(srcSeen) < 2 {
		t.Fatalf("results from %d sources, want 2", len(srcSeen))
	}
	if bb.Proc.IngressBytes() == 0 {
		t.Fatal("no ingress accounting")
	}
}

func pingCfg(seed uint64, src uint32) workload.PingConfig {
	cfg := workload.DefaultPingConfig(seed)
	cfg.SrcIP = src
	return cfg
}

// The headline correctness property at the public-API level: adaptation
// never changes query answers, only where records are processed.
func TestAdaptiveResultsMatchAllSP(t *testing.T) {
	run := func(adapt bool, budget float64) map[telemetry.GroupKey]int64 {
		bb, err := NewBuildingBlock(plan.S2SProbe(), 1, SourceOptions{
			BudgetFrac: budget, RateMbps: workload.PingmeshMbps10x, Adapt: adapt,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewPingGen(pingCfg(42, 0x0A000009))
		counts := map[telemetry.GroupKey]int64{}
		for e := 0; e < 40; e++ {
			var batch telemetry.Batch
			if e < 10 {
				batch = gen.NextWindow(1_000_000)
			} else {
				bb.Sources[0].ObserveTime(int64(e+1) * 1_000_000)
			}
			out, err := bb.RunEpoch([]telemetry.Batch{batch})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range out {
				row := r.Data.(*telemetry.AggRow)
				if row.Window == 0 {
					counts[row.Key] += row.Count
				}
			}
		}
		return counts
	}
	reference := run(false, 1.0) // factors zero: everything on the SP
	adaptive := run(true, 0.6)   // constrained adaptive source
	if len(reference) == 0 {
		t.Fatal("no reference rows")
	}
	if len(adaptive) != len(reference) {
		t.Fatalf("group counts differ: %d vs %d", len(adaptive), len(reference))
	}
	for k, want := range reference {
		if adaptive[k] != want {
			t.Fatalf("group %v: %d vs %d", k, adaptive[k], want)
		}
	}
}

func TestProcessorConsumeErrors(t *testing.T) {
	proc, err := NewProcessor(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	bad := stream.EpochResult{
		Results:     telemetry.Batch{telemetry.NewProbeRecord(&telemetry.PingProbe{})},
		ResultStage: 99,
	}
	if err := proc.Consume(1, bad); err == nil {
		t.Fatal("invalid result stage must error")
	}
}
