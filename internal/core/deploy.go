package core

import (
	"fmt"

	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/topology"
)

// DeployedBlock pairs a building block with its topology assignment.
type DeployedBlock struct {
	Block      *BuildingBlock
	Deployment topology.Deployment
}

// Deploy instantiates runnable building blocks from a resource directory
// (Fig. 4(a)'s query manager path: optimize → rules → deploy). Each
// source gets its directory-declared budget and rate; the per-source
// boundary comes from rules R-1..R-4.
func Deploy(dir *topology.Directory, q *plan.Query, rt *RuntimeConfigOpt) ([]*DeployedBlock, error) {
	qm, err := topology.NewQueryManager(dir)
	if err != nil {
		return nil, err
	}
	deployments, err := qm.Deploy(q)
	if err != nil {
		return nil, err
	}
	var out []*DeployedBlock
	for _, dep := range deployments {
		proc, err := NewProcessor(dep.Query)
		if err != nil {
			return nil, err
		}
		block := &BuildingBlock{Proc: proc}
		for i, assign := range dep.Sources {
			opts := SourceOptions{
				BudgetFrac: assign.Node.BudgetFrac,
				RateMbps:   assign.Node.RateMbps,
				Adapt:      true,
			}
			if rt != nil {
				opts.Runtime = &rt.Config
				opts.Adapt = rt.Adapt
			}
			src, err := NewSource(dep.Query, opts)
			if err != nil {
				return nil, fmt.Errorf("core: deploy source %d: %w", assign.Node.ID, err)
			}
			block.Sources = append(block.Sources, src)
			proc.RegisterSource(uint32(i + 1))
		}
		out = append(out, &DeployedBlock{Block: block, Deployment: dep})
	}
	return out, nil
}

// RuntimeConfigOpt optionally overrides the runtime configuration for
// deployed sources.
type RuntimeConfigOpt struct {
	Config runtime.Config
	Adapt  bool
}
