package core

import (
	"fmt"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
)

// Hierarchy is the full monitoring tree of Fig. 4(b): several core
// building blocks (an intermediate SP plus its data sources) under one
// root SP. Each intermediate SP computes complete results for its own
// sources; because the query's aggregates are mergeable (rule R-1), the
// root merges the per-block rows into the global answer without
// reprocessing records. Building blocks never communicate with each
// other — the property that lets the system scale by adding blocks
// (§IV-A).
type Hierarchy struct {
	query  *plan.Query
	blocks []*BuildingBlock
	root   *stream.SPEngine
	// rootStage is where per-block rows enter the root replica: the
	// stateful aggregation they must merge into.
	rootStage int
}

// NewHierarchy builds `blocks` building blocks of `sourcesPerBlock`
// sources each, plus the root SP.
func NewHierarchy(q *plan.Query, blocks, sourcesPerBlock int, opts SourceOptions) (*Hierarchy, error) {
	if blocks < 1 || sourcesPerBlock < 1 {
		return nil, fmt.Errorf("core: hierarchy needs at least one block and source")
	}
	opt, err := plan.Optimize(q)
	if err != nil {
		return nil, err
	}
	root, err := stream.NewSPEngine(opt)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{query: opt, root: root, rootStage: mergeStage(opt)}
	for b := 0; b < blocks; b++ {
		bb, err := NewBuildingBlock(q, sourcesPerBlock, opts)
		if err != nil {
			return nil, err
		}
		h.blocks = append(h.blocks, bb)
		root.RegisterSource(uint32(b + 1))
	}
	return h, nil
}

// mergeStage finds the last stateful operator: per-block final rows must
// merge into its root replica. A fully stateless query simply relays.
func mergeStage(q *plan.Query) int {
	stage := len(q.Ops)
	ops, err := q.Instantiate()
	if err != nil {
		return stage
	}
	for i := len(ops) - 1; i >= 0; i-- {
		if ops[i].Stateful() {
			return i
		}
	}
	return stage
}

// Blocks returns the building blocks (for configuring budgets).
func (h *Hierarchy) Blocks() []*BuildingBlock { return h.blocks }

// RunEpoch drives every block with its sources' batches (indexed
// [block][source]) and merges the blocks' outputs at the root, returning
// globally complete result rows.
func (h *Hierarchy) RunEpoch(batches [][]telemetry.Batch) (telemetry.Batch, error) {
	for b, bb := range h.blocks {
		var blockBatches []telemetry.Batch
		if b < len(batches) {
			blockBatches = batches[b]
		}
		rows, err := bb.RunEpoch(blockBatches)
		if err != nil {
			return nil, fmt.Errorf("core: block %d: %w", b, err)
		}
		if len(rows) > 0 {
			if err := h.root.Ingest(h.rootStage, rows); err != nil {
				return nil, fmt.Errorf("core: root ingest block %d: %w", b, err)
			}
		}
		// The block's watermark is the min across its sources.
		wm := int64(-1)
		for _, src := range bb.Sources {
			srcWM := src.LastResult().Watermark
			if wm < 0 || srcWM < wm {
				wm = srcWM
			}
		}
		if wm >= 0 {
			h.root.ObserveWatermark(uint32(b+1), wm)
		}
	}
	return h.root.Advance(), nil
}

// RootIngressBytes is the volume the root received from the blocks —
// tiny relative to raw input because each level aggregates.
func (h *Hierarchy) RootIngressBytes() int64 { return h.root.IngressBytes() }
