package core

import (
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/telemetry"
	"jarvis/internal/topology"
	"jarvis/internal/workload"
)

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(plan.S2SProbe(), 0, 1, SourceOptions{BudgetFrac: 1}); err == nil {
		t.Fatal("zero blocks must fail")
	}
	if _, err := NewHierarchy(plan.NewQuery("bad"), 1, 1, SourceOptions{BudgetFrac: 1}); err == nil {
		t.Fatal("invalid query must fail")
	}
}

// TestHierarchyMergesAcrossBlocks: two building blocks whose sources
// probe the *same* server pairs; the root must merge the per-block
// partial aggregates into global rows with the combined counts.
func TestHierarchyMergesAcrossBlocks(t *testing.T) {
	const (
		blocks    = 2
		perBlock  = 2
		epochs    = 16
		windowSec = 10
	)
	h, err := NewHierarchy(plan.S2SProbe(), blocks, perBlock, SourceOptions{
		BudgetFrac: 1.0, RateMbps: workload.PingmeshMbps10x, Adapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Blocks()) != blocks {
		t.Fatal("block count")
	}
	// All four sources share the same SrcIP so their records land in the
	// same groups — the cross-block merge case.
	gens := make([][]*workload.PingGen, blocks)
	total := 0
	for b := range gens {
		gens[b] = make([]*workload.PingGen, perBlock)
		for s := range gens[b] {
			cfg := workload.DefaultPingConfig(uint64(b*perBlock+s) + 1)
			cfg.SrcIP = 0x0A0000FF // identical across all sources
			cfg.Peers = 100
			gens[b][s] = workload.NewPingGen(cfg)
		}
	}

	rows := map[telemetry.GroupKey]*telemetry.AggRow{}
	for e := 0; e < epochs; e++ {
		batches := make([][]telemetry.Batch, blocks)
		for b := range batches {
			batches[b] = make([]telemetry.Batch, perBlock)
			for s := range batches[b] {
				if e < windowSec {
					batch := gens[b][s].NextWindow(1_000_000)
					batches[b][s] = batch
					for _, rec := range batch {
						// Count only window-0 probes (the generator's
						// event-time pacing drifts a few records past
						// the 10 s boundary into window 1).
						if rec.Time < 10_000_000 && rec.Data.(*telemetry.PingProbe).OK() {
							total++
						}
					}
				} else {
					h.Blocks()[b].Sources[s].ObserveTime(int64(e+1) * 1_000_000)
				}
			}
		}
		out, err := h.RunEpoch(batches)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range out {
			row := rec.Data.(*telemetry.AggRow)
			if row.Window != 0 {
				continue
			}
			if prev, ok := rows[row.Key]; ok {
				prev.Merge(*row)
			} else {
				cp := *row
				rows[row.Key] = &cp
			}
		}
	}
	if len(rows) == 0 {
		t.Fatal("no global rows")
	}
	var counted int64
	for _, row := range rows {
		counted += row.Count
	}
	if int(counted) != total {
		t.Fatalf("root counted %d records, sources emitted %d", counted, total)
	}
	// Every group must contain contributions from all four sources (they
	// probe the same peers): counts divisible across sources ⇒ roughly
	// 4× a single source's share.
	if h.RootIngressBytes() == 0 {
		t.Fatal("root ingress accounting")
	}
}

// TestHierarchyMatchesFlat: the hierarchy's global answer equals a flat
// single-SP deployment over the same streams.
func TestHierarchyMatchesFlat(t *testing.T) {
	mkGens := func() []*workload.PingGen {
		out := make([]*workload.PingGen, 2)
		for i := range out {
			cfg := workload.DefaultPingConfig(uint64(i) + 7)
			cfg.SrcIP = 0x0A000011 + uint32(i)
			cfg.Peers = 50
			out[i] = workload.NewPingGen(cfg)
		}
		return out
	}

	// Flat: both sources under one processor.
	flatBB, err := NewBuildingBlock(plan.S2SProbe(), 2, SourceOptions{
		BudgetFrac: 1, RateMbps: workload.PingmeshMbps10x, Adapt: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	flatGens := mkGens()
	flat := map[telemetry.GroupKey]int64{}
	for e := 0; e < 16; e++ {
		batches := make([]telemetry.Batch, 2)
		for i, g := range flatGens {
			if e < 10 {
				batches[i] = g.NextWindow(1_000_000)
			} else {
				flatBB.Sources[i].ObserveTime(int64(e+1) * 1_000_000)
			}
		}
		out, err := flatBB.RunEpoch(batches)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range out {
			row := rec.Data.(*telemetry.AggRow)
			if row.Window == 0 {
				flat[row.Key] += row.Count
			}
		}
	}

	// Hierarchy: the same two streams, one source per block.
	h, err := NewHierarchy(plan.S2SProbe(), 2, 1, SourceOptions{
		BudgetFrac: 1, RateMbps: workload.PingmeshMbps10x, Adapt: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	hGens := mkGens()
	hier := map[telemetry.GroupKey]int64{}
	for e := 0; e < 16; e++ {
		batches := make([][]telemetry.Batch, 2)
		for b, g := range hGens {
			batches[b] = make([]telemetry.Batch, 1)
			if e < 10 {
				batches[b][0] = g.NextWindow(1_000_000)
			} else {
				h.Blocks()[b].Sources[0].ObserveTime(int64(e+1) * 1_000_000)
			}
		}
		out, err := h.RunEpoch(batches)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range out {
			row := rec.Data.(*telemetry.AggRow)
			if row.Window == 0 {
				hier[row.Key] += row.Count
			}
		}
	}

	if len(flat) == 0 || len(flat) != len(hier) {
		t.Fatalf("group sets differ: flat %d, hierarchy %d", len(flat), len(hier))
	}
	for k, want := range flat {
		if hier[k] != want {
			t.Fatalf("group %v: hierarchy %d vs flat %d", k, hier[k], want)
		}
	}
}

func TestDeployFromDirectory(t *testing.T) {
	dir := topology.StarTopology(3, 0.6, 26.2)
	blocks, err := Deploy(dir, plan.S2SProbe(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	db := blocks[0]
	if len(db.Block.Sources) != 3 {
		t.Fatalf("sources = %d", len(db.Block.Sources))
	}
	for _, src := range db.Block.Sources {
		if src.Budget() != 0.6 {
			t.Fatalf("budget = %v", src.Budget())
		}
		if src.Boundary() != 3 {
			t.Fatalf("boundary = %d", src.Boundary())
		}
	}
	// Runs end to end.
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	batches := []telemetry.Batch{gen.NextWindow(1_000_000), nil, nil}
	if _, err := db.Block.RunEpoch(batches); err != nil {
		t.Fatal(err)
	}

	// Runtime override.
	noAdapt := &RuntimeConfigOpt{Config: runtime.LPOnly(), Adapt: false}
	blocks, err = Deploy(dir, plan.S2SProbe(), noAdapt)
	if err != nil {
		t.Fatal(err)
	}
	_ = blocks

	// Invalid directory fails.
	if _, err := Deploy(topology.NewDirectory(), plan.S2SProbe(), nil); err == nil {
		t.Fatal("empty directory must fail")
	}
}
