package core

import (
	"fmt"

	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
)

// MultiQueryNode runs several queries on one data source node, each with
// its own dedicated Jarvis runtime instance, and divides the node's CPU
// among them with the max-min fair allocation policy the paper adopts
// (§IV-E): every query gets an equal share; shares a query cannot use
// (its demand is lower) are redistributed to the ones that can.
type MultiQueryNode struct {
	// TotalCores is the node's compute in cores (t2.medium = 2).
	totalCores float64
	sources    []*Source
	names      []string
	// demand tracks each query's recent budget appetite for the max-min
	// redistribution (EWMA of used budget).
	demand []float64
}

// NewMultiQueryNode creates an empty node with the given core count.
func NewMultiQueryNode(totalCores float64) (*MultiQueryNode, error) {
	if totalCores <= 0 {
		return nil, fmt.Errorf("core: non-positive core count %v", totalCores)
	}
	return &MultiQueryNode{totalCores: totalCores}, nil
}

// AddQuery deploys another query instance on the node. The source starts
// with the current fair share as its budget.
func (n *MultiQueryNode) AddQuery(src *Source, name string) {
	n.sources = append(n.sources, src)
	n.names = append(n.names, name)
	n.demand = append(n.demand, 0)
	n.rebalance()
}

// Queries returns the number of deployed query instances.
func (n *MultiQueryNode) Queries() int { return len(n.sources) }

// Source returns the i-th query's source.
func (n *MultiQueryNode) Source(i int) *Source { return n.sources[i] }

// Budgets returns the current per-query budget fractions.
func (n *MultiQueryNode) Budgets() []float64 {
	out := make([]float64, len(n.sources))
	for i, s := range n.sources {
		out[i] = s.Budget()
	}
	return out
}

// RunEpoch executes one epoch for every query (index-aligned batches)
// and then rebalances budgets max-min fairly based on observed demand.
func (n *MultiQueryNode) RunEpoch(batches []telemetry.Batch) ([]stream.EpochResult, error) {
	results := make([]stream.EpochResult, len(n.sources))
	for i, src := range n.sources {
		var batch telemetry.Batch
		if i < len(batches) {
			batch = batches[i]
		}
		res, err := src.RunEpoch(batch)
		if err != nil {
			return nil, fmt.Errorf("core: query %s: %w", n.names[i], err)
		}
		results[i] = res
		// Demand estimate: what the query consumed, nudged upward when it
		// exhausted its share (it likely wants more).
		used := res.BudgetUsedFrac * src.Budget()
		if res.BudgetUsedFrac > 0.98 {
			used *= 1.25
		}
		const alpha = 0.5
		n.demand[i] = alpha*used + (1-alpha)*n.demand[i]
	}
	n.rebalance()
	return results, nil
}

// rebalance applies max-min fairness: start from equal shares; queries
// whose demand is below their share donate the surplus, redistributed
// equally among the still-hungry queries until no surplus remains.
func (n *MultiQueryNode) rebalance() {
	k := len(n.sources)
	if k == 0 {
		return
	}
	share := make([]float64, k)
	capped := make([]bool, k)
	remaining := n.totalCores
	hungry := k
	// Iterate: hand each uncapped query an equal slice; cap those whose
	// demand is met; repeat with the leftovers.
	for iter := 0; iter < k+1 && hungry > 0 && remaining > 1e-9; iter++ {
		slice := remaining / float64(hungry)
		progressed := false
		for i := 0; i < k; i++ {
			if capped[i] {
				continue
			}
			want := n.demand[i]
			if want <= 0 {
				want = slice // no signal yet: take the fair slice
			}
			need := want - share[i]
			if need <= slice+1e-12 && need >= 0 {
				grant := need
				share[i] += grant
				remaining -= grant
				capped[i] = true
				hungry--
				progressed = true
			}
		}
		if !progressed {
			// Everyone still hungry: split evenly and stop.
			slice = remaining / float64(hungry)
			for i := 0; i < k; i++ {
				if !capped[i] {
					share[i] += slice
					remaining -= slice
				}
			}
			break
		}
	}
	// Any leftover goes evenly to all queries (headroom for bursts).
	if remaining > 1e-9 {
		extra := remaining / float64(k)
		for i := range share {
			share[i] += extra
		}
	}
	for i, src := range n.sources {
		// A single query instance cannot use more than one core
		// (rule R-4 bars intra-operator parallelism on sources).
		b := share[i]
		if b > 1 {
			b = 1
		}
		src.SetBudget(b)
	}
}
