package core

import (
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func addS2S(t *testing.T, n *MultiQueryNode, name string) {
	t.Helper()
	src, err := NewSource(plan.S2SProbe(), SourceOptions{
		BudgetFrac: 1, RateMbps: workload.PingmeshMbps10x, Adapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.AddQuery(src, name)
}

func TestMultiQueryValidation(t *testing.T) {
	if _, err := NewMultiQueryNode(0); err == nil {
		t.Fatal("zero cores must fail")
	}
}

func TestMultiQueryEqualSharesInitially(t *testing.T) {
	n, err := NewMultiQueryNode(2)
	if err != nil {
		t.Fatal(err)
	}
	addS2S(t, n, "q1")
	addS2S(t, n, "q2")
	addS2S(t, n, "q3")
	if n.Queries() != 3 {
		t.Fatal("query count")
	}
	budgets := n.Budgets()
	var total float64
	for _, b := range budgets {
		if b <= 0 || b > 1 {
			t.Fatalf("budget out of range: %v", budgets)
		}
		total += b
	}
	if total > 2.0+1e-6 {
		t.Fatalf("budgets exceed the node's cores: %v", budgets)
	}
}

func TestMultiQueryFairnessUnderLoad(t *testing.T) {
	// Two S2SProbe instances (≈85% demand each) on one core: neither can
	// get a full core, both should end up near 50%.
	n, err := NewMultiQueryNode(1)
	if err != nil {
		t.Fatal(err)
	}
	addS2S(t, n, "a")
	addS2S(t, n, "b")
	gens := []*workload.PingGen{
		workload.NewPingGen(workload.DefaultPingConfig(1)),
		workload.NewPingGen(workload.DefaultPingConfig(2)),
	}
	for e := 0; e < 20; e++ {
		batches := make([]telemetry.Batch, 2)
		for i, g := range gens {
			batches[i] = g.NextWindow(1_000_000)
		}
		if _, err := n.RunEpoch(batches); err != nil {
			t.Fatal(err)
		}
	}
	budgets := n.Budgets()
	if budgets[0]+budgets[1] > 1.0+1e-6 {
		t.Fatalf("oversubscribed: %v", budgets)
	}
	ratio := budgets[0] / budgets[1]
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("shares should be near-equal under equal demand: %v", budgets)
	}
}

func TestMultiQuerySurplusRedistribution(t *testing.T) {
	// A light LogAnalytics (≈31%) next to a heavy S2SProbe (≈85%) on one
	// core: the log query's surplus should flow to the heavy one.
	n, err := NewMultiQueryNode(1)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := NewSource(plan.S2SProbe(), SourceOptions{
		BudgetFrac: 0.5, RateMbps: workload.PingmeshMbps10x, Adapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	light, err := NewSource(plan.LogAnalytics(), SourceOptions{
		BudgetFrac: 0.5, RateMbps: workload.LogMbps10x, Adapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.AddQuery(heavy, "s2s")
	n.AddQuery(light, "log")

	ping := workload.NewPingGen(workload.DefaultPingConfig(3))
	logs := workload.NewLogGen(workload.DefaultLogConfig(4))
	for e := 0; e < 25; e++ {
		if _, err := n.RunEpoch([]telemetry.Batch{
			ping.NextWindow(1_000_000),
			logs.NextWindow(1_000_000),
		}); err != nil {
			t.Fatal(err)
		}
	}
	budgets := n.Budgets()
	if budgets[0] <= budgets[1] {
		t.Fatalf("heavy query should get more than the light one: %v", budgets)
	}
	if budgets[0] < 0.55 {
		t.Fatalf("surplus not redistributed to the heavy query: %v", budgets)
	}
	if budgets[0]+budgets[1] > 1.0+1e-6 {
		t.Fatalf("oversubscribed: %v", budgets)
	}
}

func TestMultiQueryBudgetCapAtOneCore(t *testing.T) {
	// One query on a 2-core node: R-4 caps a single instance at 1 core.
	n, err := NewMultiQueryNode(2)
	if err != nil {
		t.Fatal(err)
	}
	addS2S(t, n, "solo")
	if b := n.Budgets()[0]; b > 1 {
		t.Fatalf("single-query budget %v exceeds one core", b)
	}
	if n.Source(0) == nil {
		t.Fatal("source accessor")
	}
}
