package core

import (
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
)

// Processor is the stream-processor side of a core building block: the
// query's replicated operators plus multi-source watermark merging. Feed
// it with each source's epoch results (in process) or wire frames (via
// transport.Receiver, which wraps the same engine).
type Processor struct {
	query  *plan.Query
	engine *stream.SPEngine
}

// NewProcessor builds the SP replica for a query.
func NewProcessor(q *plan.Query) (*Processor, error) {
	opt, err := plan.Optimize(q)
	if err != nil {
		return nil, err
	}
	engine, err := stream.NewSPEngine(opt)
	if err != nil {
		return nil, err
	}
	return &Processor{query: opt, engine: engine}, nil
}

// Engine exposes the underlying SP engine (for transport.Receiver).
func (p *Processor) Engine() *stream.SPEngine { return p.engine }

// RegisterSource announces a source before its first epoch.
func (p *Processor) RegisterSource(id uint32) { p.engine.RegisterSource(id) }

// Consume ingests one source's epoch result: drains enter the stages
// their proxies guarded, results enter the result stage, and the
// source's watermark advances the merge.
func (p *Processor) Consume(source uint32, res stream.EpochResult) error {
	for stage, batch := range res.Drains {
		if len(batch) == 0 {
			continue
		}
		if err := p.engine.Ingest(stage, batch); err != nil {
			return err
		}
	}
	if len(res.Results) > 0 {
		if err := p.engine.Ingest(res.ResultStage, res.Results); err != nil {
			return err
		}
	}
	p.engine.ObserveWatermark(source, res.Watermark)
	return nil
}

// Results flushes closed windows across all merged sources and returns
// the final query output rows produced since the last call.
func (p *Processor) Results() telemetry.Batch { return p.engine.Advance() }

// IngressBytes reports the network volume received from sources.
func (p *Processor) IngressBytes() int64 { return p.engine.IngressBytes() }

// CPUMicros reports the SP-side compute consumed.
func (p *Processor) CPUMicros() float64 { return p.engine.CPUMicros() }

// BuildingBlock wires one Processor to n in-process Sources — the
// paper's unit of scalability (§IV-A). It is the easiest way to run
// Jarvis end to end without a network.
type BuildingBlock struct {
	Proc    *Processor
	Sources []*Source
}

// NewBuildingBlock creates a processor and n sources for the query.
func NewBuildingBlock(q *plan.Query, n int, opts SourceOptions) (*BuildingBlock, error) {
	proc, err := NewProcessor(q)
	if err != nil {
		return nil, err
	}
	bb := &BuildingBlock{Proc: proc}
	for i := 0; i < n; i++ {
		src, err := NewSource(q, opts)
		if err != nil {
			return nil, err
		}
		bb.Sources = append(bb.Sources, src)
		proc.RegisterSource(uint32(i + 1))
	}
	return bb, nil
}

// RunEpoch drives every source with its batch (index-aligned) and feeds
// the processor, returning any final rows that became complete.
func (bb *BuildingBlock) RunEpoch(batches []telemetry.Batch) (telemetry.Batch, error) {
	for i, src := range bb.Sources {
		var batch telemetry.Batch
		if i < len(batches) {
			batch = batches[i]
		}
		res, err := src.RunEpoch(batch)
		if err != nil {
			return nil, err
		}
		if err := bb.Proc.Consume(uint32(i+1), res); err != nil {
			return nil, err
		}
	}
	return bb.Proc.Results(), nil
}
