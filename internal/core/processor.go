package core

import (
	"fmt"
	"runtime"
	"sync"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
)

// Processor is the stream-processor side of a core building block: the
// query's replicated operators plus multi-source watermark merging. Feed
// it with each source's epoch results (in process) or wire frames (via
// transport.Receiver, which wraps the same engine).
//
// In-process ingest is sharded: each source maps to one shard replica of
// the query, Consume enqueues the epoch (cheap, per-source FIFO), and
// Results drains all shards on a bounded worker pool — one goroutine per
// shard, at most min(GOMAXPROCS, 8) shards — before merging the shards'
// partial aggregates and watermarks at a single point, the root replica.
// Because the query's aggregates are mergeable (rule R-1), the merged
// results are exactly the serial ones; sharding only applies to queries
// with a stateful merge stage, everything else stays on the serial path.
// Wire-transport flows that ingest through Engine() are untouched.
type Processor struct {
	query      *plan.Query
	engine     *stream.SPEngine // root replica: merge point + serial path
	mergeStage int
	maxShards  int

	mu     sync.Mutex
	shards []*procShard
	assign map[uint32]int   // source id → shard index
	wm     map[uint32]int64 // per-source watermark (single merge point)
	err    error            // first deferred ingest error, if any
	// mergedBytes tracks shard rows folded into the root, so ingress
	// accounting can exclude them from the root engine's totals.
	mergedBytes int64
}

// procShard is one ingest worker's state: a full replica of the query
// plus the epochs queued for its sources since the last Results call.
type procShard struct {
	engine *stream.SPEngine
	jobs   []stream.EpochResult
}

// NewProcessor builds the SP replica for a query.
func NewProcessor(q *plan.Query) (*Processor, error) {
	opt, err := plan.Optimize(q)
	if err != nil {
		return nil, err
	}
	engine, err := stream.NewSPEngine(opt)
	if err != nil {
		return nil, err
	}
	maxShards := runtime.GOMAXPROCS(0)
	if maxShards > 8 {
		maxShards = 8
	}
	return &Processor{
		query:      opt,
		engine:     engine,
		mergeStage: mergeStage(opt),
		maxShards:  maxShards,
		assign:     make(map[uint32]int),
		wm:         make(map[uint32]int64),
	}, nil
}

// SetMaxShards bounds the ingest worker pool (1 disables sharding).
// Call before the first Consume.
func (p *Processor) SetMaxShards(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = 1
	}
	p.maxShards = n
}

// Engine exposes the root SP engine (for transport.Receiver). Flows that
// ingest through it bypass the shards and keep the serial semantics.
func (p *Processor) Engine() *stream.SPEngine { return p.engine }

// SnapshotStages copies the root engine's Checkpointable operator state
// (checkpoint.SPRecovery snapshots through this). Transport-fed flows
// keep all state in the root; in-process sharded ingest additionally
// holds per-shard partials that are folded into the root at each
// Results call, so snapshot between Results for a consistent capture.
func (p *Processor) SnapshotStages() map[int]telemetry.Batch {
	return p.engine.SnapshotStages()
}

// Restore folds a source checkpoint into the root engine — the §IV-E
// source-failure path: the SP finishes the failed source's in-flight
// windows from its last checkpoint.
func (p *Processor) Restore(source uint32, cp *stream.Checkpoint) error {
	return p.engine.Restore(source, cp)
}

// LoadSnapshot atomically replaces the processor's state with a full
// snapshot (the HA promotion path: a standby's warm state becomes this
// processor's). Restored state lives entirely in the root engine, so any
// shard replicas and their queued epochs are discarded — an in-process
// Consume after promotion reshards from the restored root.
func (p *Processor) LoadSnapshot(stages map[int]telemetry.Batch, watermarks map[uint32]int64) error {
	p.mu.Lock()
	p.shards = nil
	p.assign = make(map[uint32]int)
	wm := make(map[uint32]int64, len(watermarks))
	for src, w := range watermarks {
		wm[src] = w
	}
	p.wm = wm
	p.mu.Unlock()
	return p.engine.LoadSnapshot(stages, watermarks)
}

// RegisterSource announces a source before its first epoch.
func (p *Processor) RegisterSource(id uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.engine.RegisterSource(id)
	if _, ok := p.wm[id]; !ok {
		p.wm[id] = 0
	}
}

// sharded reports whether in-process ingest uses shard replicas. The
// merge point must be the final operator: shard flushes would otherwise
// push rows through the operators past it, and folding them back into
// the root at the merge stage would run those operators a second time.
// (All of the paper's queries end with their G+R, so they shard.)
func (p *Processor) sharded() bool {
	return p.mergeStage == len(p.query.Ops)-1 && p.maxShards > 1
}

// shardFor returns the shard owning a source, assigning round-robin and
// building the replica on first use. Caller holds p.mu.
func (p *Processor) shardFor(source uint32) (*procShard, error) {
	if idx, ok := p.assign[source]; ok {
		return p.shards[idx], nil
	}
	idx := len(p.assign) % p.maxShards
	for idx >= len(p.shards) {
		engine, err := stream.NewSPEngine(p.query)
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, &procShard{engine: engine})
	}
	p.assign[source] = idx
	return p.shards[idx], nil
}

// Consume ingests one source's epoch result: drains enter the stages
// their proxies guarded, results enter the result stage, and the
// source's watermark advances the merge. Safe for concurrent use; the
// epoch is validated eagerly, queued on the source's shard (per-source
// order preserved), ingested concurrently at the next Results call and
// its buffers recycled afterwards.
func (p *Processor) Consume(source uint32, res stream.EpochResult) error {
	nops := len(p.query.Ops)
	if len(res.Drains) > 0 && len(res.Drains) > nops {
		return fmt.Errorf("core: %d drain stages for %d operators", len(res.Drains), nops)
	}
	if len(res.Results) > 0 && (res.ResultStage < 0 || res.ResultStage > nops) {
		return fmt.Errorf("core: result stage %d out of range [0,%d]", res.ResultStage, nops)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if cur, ok := p.wm[source]; !ok || res.Watermark > cur {
		p.wm[source] = res.Watermark
	}
	if !p.sharded() {
		if err := p.ingestInto(p.engine, &res); err != nil {
			return err
		}
		p.engine.ObserveWatermark(source, res.Watermark)
		res.Recycle()
		return nil
	}
	shard, err := p.shardFor(source)
	if err != nil {
		return err
	}
	shard.jobs = append(shard.jobs, res)
	return nil
}

// ingestInto feeds one epoch's drains and results into an engine.
func (p *Processor) ingestInto(e *stream.SPEngine, res *stream.EpochResult) error {
	for stage, batch := range res.Drains {
		if len(batch) == 0 {
			continue
		}
		if err := e.Ingest(stage, batch); err != nil {
			return err
		}
	}
	if len(res.Results) > 0 {
		if err := e.Ingest(res.ResultStage, res.Results); err != nil {
			return err
		}
	}
	return nil
}

// Results flushes closed windows across all merged sources and returns
// the final query output rows produced since the last call. With shards
// active this is the barrier and single merge point: every shard drains
// its queued epochs concurrently, then flushes at the globally merged
// watermark, and the shards' partial rows merge into the root replica.
func (p *Processor) Results() telemetry.Batch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.shards) == 0 {
		// Serial path (including transport flows driving the root engine).
		return p.engine.Advance()
	}

	var wg sync.WaitGroup
	errs := make([]error, len(p.shards))
	for si, shard := range p.shards {
		if len(shard.jobs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, shard *procShard) {
			defer wg.Done()
			for j := range shard.jobs {
				res := &shard.jobs[j]
				if err := p.ingestInto(shard.engine, res); err != nil {
					errs[si] = err
					return
				}
				res.Recycle()
			}
		}(si, shard)
	}
	wg.Wait()
	for si, shard := range p.shards {
		if errs[si] != nil && p.err == nil {
			p.err = errs[si]
		}
		shard.jobs = shard.jobs[:0]
	}

	// Single merge point: flush every shard at the minimum watermark
	// across all sources and fold the partial rows into the root.
	effWM := p.effectiveWM()
	for _, shard := range p.shards {
		rows := shard.engine.AdvanceTo(effWM)
		if len(rows) == 0 {
			continue
		}
		p.mergedBytes += rows.TotalBytes()
		if err := p.engine.Ingest(p.mergeStage, rows); err != nil && p.err == nil {
			p.err = err
		}
		telemetry.PutBatch(rows)
	}
	return p.engine.AdvanceTo(effWM)
}

// effectiveWM is the minimum watermark across all sources (0 when none
// are registered). A source may be tracked by the processor (Consume),
// by the root engine (transport flows observing watermarks through
// Engine()), or both — RegisterSource pins both sides at zero, so the
// per-source watermark is the max of the two views, and the effective
// watermark their min. Caller holds p.mu.
func (p *Processor) effectiveWM() int64 {
	first := true
	var min int64
	observe := func(wm int64) {
		if first || wm < min {
			min = wm
			first = false
		}
	}
	seen := make(map[uint32]bool, len(p.wm))
	p.engine.SourceWatermarks(func(source uint32, engineWM int64) {
		seen[source] = true
		if procWM, ok := p.wm[source]; ok && procWM > engineWM {
			engineWM = procWM
		}
		observe(engineWM)
	})
	for source, wm := range p.wm {
		if !seen[source] {
			observe(wm)
		}
	}
	return min
}

// Err returns the first error encountered by deferred shard ingest.
func (p *Processor) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// IngressBytes reports the network volume received from sources — both
// in-process epochs consumed by the shards and anything ingested through
// the root engine directly (transport flows); the shards' merge rows
// folded into the root are internal and excluded.
func (p *Processor) IngressBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.engine.IngressBytes() - p.mergedBytes
	for _, shard := range p.shards {
		n += shard.engine.IngressBytes()
	}
	return n
}

// CPUMicros reports the SP-side compute consumed.
func (p *Processor) CPUMicros() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.engine.CPUMicros()
	for _, shard := range p.shards {
		total += shard.engine.CPUMicros()
	}
	return total
}

// BuildingBlock wires one Processor to n in-process Sources — the
// paper's unit of scalability (§IV-A). It is the easiest way to run
// Jarvis end to end without a network.
type BuildingBlock struct {
	Proc    *Processor
	Sources []*Source
}

// NewBuildingBlock creates a processor and n sources for the query.
func NewBuildingBlock(q *plan.Query, n int, opts SourceOptions) (*BuildingBlock, error) {
	proc, err := NewProcessor(q)
	if err != nil {
		return nil, err
	}
	bb := &BuildingBlock{Proc: proc}
	for i := 0; i < n; i++ {
		src, err := NewSource(q, opts)
		if err != nil {
			return nil, err
		}
		bb.Sources = append(bb.Sources, src)
		proc.RegisterSource(uint32(i + 1))
	}
	return bb, nil
}

// RunEpoch drives every source with its batch (index-aligned) and feeds
// the processor, returning any final rows that became complete.
func (bb *BuildingBlock) RunEpoch(batches []telemetry.Batch) (telemetry.Batch, error) {
	for i, src := range bb.Sources {
		var batch telemetry.Batch
		if i < len(batches) {
			batch = batches[i]
		}
		res, err := src.RunEpoch(batch)
		if err != nil {
			return nil, err
		}
		if err := bb.Proc.Consume(uint32(i+1), res); err != nil {
			return nil, err
		}
	}
	out := bb.Proc.Results()
	if err := bb.Proc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
