package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// epochFor builds a synthetic epoch result delivering a source's raw
// records at stage 0 (the all-drain regime of a zero-load-factor source).
func epochFor(batch telemetry.Batch, nops int) stream.EpochResult {
	drains := make([]telemetry.Batch, nops)
	drains[0] = batch
	return stream.EpochResult{
		Drains:    drains,
		Watermark: batch.MaxTime(),
	}
}

// collectRows folds result rows into (key, window) → count for
// order-insensitive comparison.
func collectRows(rows telemetry.Batch) map[string]int64 {
	out := map[string]int64{}
	for _, r := range rows {
		row := r.Data.(*telemetry.AggRow)
		out[fmt.Sprintf("%v/%d", row.Key, row.Window)] += row.Count
	}
	return out
}

// TestProcessorShardedMatchesSerial drives the same multi-source stream
// through a sharded processor and a serial one and requires identical
// merged results every epoch — the single-merge-point guarantee.
func TestProcessorShardedMatchesSerial(t *testing.T) {
	const sources = 6
	q := plan.S2SProbe()
	sharded, err := NewProcessor(q)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewProcessor(q)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetMaxShards(1)
	nops := len(sharded.query.Ops)

	gens := make([]*workload.PingGen, sources)
	for i := range gens {
		cfg := workload.DefaultPingConfig(uint64(i) + 1)
		cfg.SrcIP = 0x0A000000 + uint32(i+1)
		gens[i] = workload.NewPingGen(cfg)
		sharded.RegisterSource(uint32(i + 1))
		serial.RegisterSource(uint32(i + 1))
	}

	sawRows := false
	for epoch := 0; epoch < 12; epoch++ {
		for i, g := range gens {
			batch := g.NextWindow(1_000_000)
			// Separate copies: Consume recycles its epoch's buffers.
			if err := sharded.Consume(uint32(i+1), epochFor(batch.Clone(), nops)); err != nil {
				t.Fatal(err)
			}
			if err := serial.Consume(uint32(i+1), epochFor(batch, nops)); err != nil {
				t.Fatal(err)
			}
		}
		sRows := sharded.Results()
		lRows := serial.Results()
		if err := sharded.Err(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(collectRows(sRows), collectRows(lRows)) {
			t.Fatalf("epoch %d: sharded and serial results differ (%d vs %d rows)",
				epoch, len(sRows), len(lRows))
		}
		if len(sRows) > 0 {
			sawRows = true
		}
	}
	if !sawRows {
		t.Fatal("no rows ever flushed — the comparison is vacuous")
	}
	if sharded.IngressBytes() != serial.IngressBytes() {
		t.Fatalf("ingress accounting differs: %d vs %d",
			sharded.IngressBytes(), serial.IngressBytes())
	}
}

// TestProcessorConcurrentConsume exercises the concurrent ingest path:
// many goroutines feed their own sources simultaneously (run with
// -race). Totals must match a serially fed twin.
func TestProcessorConcurrentConsume(t *testing.T) {
	const sources = 8
	const epochs = 5
	q := plan.S2SProbe()
	conc, err := NewProcessor(q)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewProcessor(q)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetMaxShards(1)
	nops := len(conc.query.Ops)

	type feed struct {
		source uint32
		res    stream.EpochResult
	}
	var serialFeeds []feed
	batchesBySource := make([][]telemetry.Batch, sources)
	for i := 0; i < sources; i++ {
		cfg := workload.DefaultPingConfig(uint64(i) + 31)
		cfg.SrcIP = 0x0A000100 + uint32(i+1)
		g := workload.NewPingGen(cfg)
		conc.RegisterSource(uint32(i + 1))
		serial.RegisterSource(uint32(i + 1))
		for e := 0; e < epochs; e++ {
			b := g.NextWindow(2_500_000) // 2.5 s epochs close the 10 s window
			batchesBySource[i] = append(batchesBySource[i], b)
			serialFeeds = append(serialFeeds, feed{uint32(i + 1), epochFor(b.Clone(), nops)})
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < sources; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, b := range batchesBySource[i] {
				if err := conc.Consume(uint32(i+1), epochFor(b, nops)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	concRows := collectRows(conc.Results())
	if err := conc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, f := range serialFeeds {
		if err := serial.Consume(f.source, f.res); err != nil {
			t.Fatal(err)
		}
	}
	serialRows := collectRows(serial.Results())
	if len(concRows) == 0 {
		t.Fatal("concurrent run produced no rows")
	}
	if !reflect.DeepEqual(concRows, serialRows) {
		t.Fatalf("concurrent results diverge: %d vs %d groups", len(concRows), len(serialRows))
	}
}

// TestProcessorStatelessQueryStaysSerial pins the sharding guard: a
// query without a stateful stage has no merge point, so ingest must not
// shard (result relay order would become nondeterministic).
func TestProcessorStatelessQueryStaysSerial(t *testing.T) {
	q := plan.NewQuery("relay").
		WithRefRate(workload.PingmeshMbps10x, telemetry.PingProbeWireSize).
		FilterFunc("all", func(telemetry.Record) bool { return true }, 5, 1.0)
	p, err := NewProcessor(q)
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterSource(1)
	g := workload.NewPingGen(workload.DefaultPingConfig(9))
	batch := g.Next(100)
	res := stream.EpochResult{Drains: []telemetry.Batch{batch}, Watermark: batch.MaxTime()}
	if err := p.Consume(1, res); err != nil {
		t.Fatal(err)
	}
	rows := p.Results()
	if len(rows) != 100 {
		t.Fatalf("relay query must pass all records through, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Time < rows[i-1].Time {
			t.Fatal("relay order must be preserved")
		}
	}
}

// TestProcessorMixedTransportShardedWatermark pins the merge seam
// between the two ingest paths: a lagging transport source (watermarks
// observed directly on the root engine) must hold back the flush of
// windows that sharded in-process sources have already passed.
func TestProcessorMixedTransportShardedWatermark(t *testing.T) {
	p, err := NewProcessor(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	nops := len(p.query.Ops)
	p.RegisterSource(1)
	e := p.Engine()
	e.RegisterSource(99)

	g := workload.NewPingGen(workload.DefaultPingConfig(40))
	gTrans := workload.NewPingGen(workload.DefaultPingConfig(41))
	for i := 0; i < 12; i++ {
		if err := p.Consume(1, epochFor(g.NextWindow(1_000_000), nops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Ingest(0, gTrans.NextWindow(5_000_000)); err != nil {
		t.Fatal(err)
	}
	e.ObserveWatermark(99, 5_000_000)
	if rows := p.Results(); len(rows) != 0 {
		t.Fatalf("flushed %d rows past the transport source's 5s watermark", len(rows))
	}
	// Transport source catches up: the held-back window flushes once,
	// merging both paths' state.
	if err := e.Ingest(0, gTrans.NextWindow(7_000_000)); err != nil {
		t.Fatal(err)
	}
	e.ObserveWatermark(99, 12_000_000)
	rows := p.Results()
	if len(rows) == 0 {
		t.Fatal("window should flush once every source passes its end")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		row := r.Data.(*telemetry.AggRow)
		k := fmt.Sprintf("%v/%d", row.Key, row.Window)
		if seen[k] {
			t.Fatalf("duplicate row for %s", k)
		}
		seen[k] = true
	}
}

// TestProcessorConsumeAfterTransportIngest pins backward compatibility:
// driving the root engine directly (the transport.Receiver pattern)
// keeps full serial semantics even on a shardable query.
func TestProcessorConsumeAfterTransportIngest(t *testing.T) {
	p, err := NewProcessor(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewPingGen(workload.DefaultPingConfig(10))
	e := p.Engine()
	e.RegisterSource(1)
	for i := 0; i < 11; i++ {
		if err := e.Ingest(0, g.NextWindow(1_000_000)); err != nil {
			t.Fatal(err)
		}
		e.ObserveWatermark(1, int64(i+1)*1_000_000)
	}
	if rows := p.Results(); len(rows) == 0 {
		t.Fatal("engine-driven flow must still flush through Results")
	}
}
