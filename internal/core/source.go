// Package core assembles Jarvis' pieces into the deployable units a user
// runs: a Source (the data-source agent: pipeline + control proxies +
// Jarvis runtime, fully decentralized) and a Processor (the SP side:
// replicated operators, multi-source merge). The root jarvis package
// re-exports this API.
package core

import (
	"fmt"

	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// SourceOptions configures a data source agent.
type SourceOptions struct {
	// ID tags this source's decision-trace events (obs package). Use the
	// same stream/source id the transport hello carries; 0 is fine for a
	// single-source process.
	ID uint32
	// BudgetFrac is the CPU budget as a fraction of one core.
	BudgetFrac float64
	// RateMbps is the expected input rate (profiling normalization).
	RateMbps float64
	// EpochMicros is the epoch length (default 1 s).
	EpochMicros int64
	// Runtime configures the adaptation algorithm (default:
	// runtime.Defaults() — LP init + fine tuning).
	Runtime *runtime.Config
	// Adapt disables the Jarvis runtime when false: load factors stay
	// wherever SetLoadFactors put them (baseline strategies).
	Adapt bool
}

// Source is a Jarvis data-source agent: the query's source-side replica
// plus the decentralized runtime that keeps it stable.
type Source struct {
	query    *plan.Query
	pipeline *stream.Pipeline
	rt       *runtime.Runtime
	opts     SourceOptions
	boundary int

	lastResult stream.EpochResult
	epochs     int64
}

// NewSource compiles the query (optimizer + rules R-1..R-4) and builds
// the agent.
func NewSource(q *plan.Query, opts SourceOptions) (*Source, error) {
	opt, err := plan.Optimize(q)
	if err != nil {
		return nil, err
	}
	if opts.EpochMicros <= 0 {
		opts.EpochMicros = 1_000_000
	}
	boundary := plan.EligiblePrefix(opt, plan.SourceRules())
	if boundary == 0 {
		return nil, fmt.Errorf("core: no operator of %q is source-eligible", q.Name)
	}
	po := stream.DefaultOptions(opts.BudgetFrac, boundary)
	po.EpochMicros = opts.EpochMicros
	pipe, err := stream.NewPipeline(opt, po)
	if err != nil {
		return nil, err
	}
	cfg := runtime.Defaults()
	if opts.Runtime != nil {
		cfg = *opts.Runtime
	}
	return &Source{
		query:    opt,
		pipeline: pipe,
		rt:       runtime.New(cfg),
		opts:     opts,
		boundary: boundary,
	}, nil
}

// Query returns the optimized query the source runs.
func (s *Source) Query() *plan.Query { return s.query }

// Boundary returns how many leading operators may run locally.
func (s *Source) Boundary() int { return s.boundary }

// SetBudget adjusts the CPU budget between epochs (resource shifts).
func (s *Source) SetBudget(frac float64) {
	s.opts.BudgetFrac = frac
	s.pipeline.SetBudget(frac)
}

// Budget returns the current CPU budget fraction.
func (s *Source) Budget() float64 { return s.pipeline.Budget() }

// LoadFactors returns the proxies' current load factors.
func (s *Source) LoadFactors() []float64 { return s.pipeline.LoadFactors() }

// SetLoadFactors pins load factors (only meaningful with Adapt=false).
func (s *Source) SetLoadFactors(f []float64) error { return s.pipeline.SetLoadFactors(f) }

// Phase reports the runtime's operational phase.
func (s *Source) Phase() runtime.Phase { return s.rt.Phase() }

// ObserveTime advances event time during quiet periods so windows close.
func (s *Source) ObserveTime(micros int64) { s.pipeline.ObserveTime(micros) }

// RunEpoch executes one epoch over the input batch, then lets the Jarvis
// runtime observe the epoch and refine the partitioning plan. The
// returned EpochResult carries everything that must ship to the SP.
func (s *Source) RunEpoch(input telemetry.Batch) (stream.EpochResult, error) {
	res := s.pipeline.RunEpoch(input)
	// Keep only the scalar view: the caller owns the epoch's drain and
	// result buffers (and typically recycles them via Processor.Consume),
	// so LastResult must not alias pool-owned memory.
	s.lastResult = res
	s.lastResult.Drains = nil
	s.lastResult.Results = nil
	s.epochs++
	if !s.opts.Adapt {
		return res, nil
	}
	o := runtime.Observation{
		Stats:           res.Stats,
		LoadFactors:     s.pipeline.LoadFactors(),
		SpareBudgetFrac: res.SpareBudgetFrac,
		Boundary:        s.boundary,
	}
	act := s.rt.OnEpoch(o)
	if act.SetLoadFactors != nil {
		if err := s.pipeline.SetLoadFactors(act.SetLoadFactors); err != nil {
			return res, err
		}
		s.emitLoadFactors(o.LoadFactors, act.Phase)
	}
	if act.Profile {
		before := s.pipeline.LoadFactors()
		pact, err := s.rt.OnProfile(s.profile(res))
		if err != nil {
			return res, err
		}
		if pact.SetLoadFactors != nil {
			if err := s.pipeline.SetLoadFactors(pact.SetLoadFactors); err != nil {
				return res, err
			}
			s.emitLoadFactors(before, pact.Phase)
		}
	}
	return res, nil
}

// RunEpochColumnar is RunEpoch over a columnar (SoA) arrival wave: the
// generator's column sections run the local chain without materializing
// records wherever the plan has columnar kernels, and the runtime
// observes the epoch exactly as on the row path (proxy stats are
// bit-identical by construction). See stream.Pipeline.RunEpochColumnar
// for the result's column-lifetime contract.
func (s *Source) RunEpochColumnar(cb *wire.ColumnarBatch) (stream.EpochResult, error) {
	res := s.pipeline.RunEpochColumnar(cb)
	// Keep only the scalar view, as in RunEpoch: the columnar buffers also
	// belong to the epoch's consumer.
	s.lastResult = res
	s.lastResult.Drains = nil
	s.lastResult.Results = nil
	s.lastResult.ColDrains = nil
	s.lastResult.ColResults = wire.ColumnarBatch{}
	s.epochs++
	if !s.opts.Adapt {
		return res, nil
	}
	o := runtime.Observation{
		Stats:           res.Stats,
		LoadFactors:     s.pipeline.LoadFactors(),
		SpareBudgetFrac: res.SpareBudgetFrac,
		Boundary:        s.boundary,
	}
	act := s.rt.OnEpoch(o)
	if act.SetLoadFactors != nil {
		if err := s.pipeline.SetLoadFactors(act.SetLoadFactors); err != nil {
			return res, err
		}
		s.emitLoadFactors(o.LoadFactors, act.Phase)
	}
	if act.Profile {
		before := s.pipeline.LoadFactors()
		pact, err := s.rt.OnProfile(s.profile(res))
		if err != nil {
			return res, err
		}
		if pact.SetLoadFactors != nil {
			if err := s.pipeline.SetLoadFactors(pact.SetLoadFactors); err != nil {
				return res, err
			}
			s.emitLoadFactors(before, pact.Phase)
		}
	}
	return res, nil
}

// emitLoadFactors records one applied load-factor change in the
// process decision trace. After re-reads the pipeline (SetLoadFactors
// zeroes factors past the boundary), so consecutive decisions chain:
// each Before equals the previous After, which is what makes
// obs.LoadFactorTimeline replayable.
func (s *Source) emitLoadFactors(before []float64, phase runtime.Phase) {
	obs.Emit(obs.Decision{
		Kind:   "load_factors",
		Source: s.opts.ID,
		Epoch:  uint64(s.epochs),
		Cause:  phase.String(),
		Before: before,
		After:  s.pipeline.LoadFactors(),
	})
}

// profile builds cost/relay estimates for the runtime. The live agent
// reads its calibrated cost model (token accounting is exact, so the
// estimates carry no noise; the simulator explores the noisy-profiling
// regime of Fig. 8).
func (s *Source) profile(res stream.EpochResult) runtime.Estimates {
	q := s.query
	m := len(q.Ops)
	est := runtime.Estimates{
		CostPct:   make([]float64, m),
		Relay:     make([]float64, m),
		BudgetPct: s.pipeline.Budget() * 100,
		Quality:   make([]float64, m),
	}
	scale := 1.0
	if q.RefRateMbps > 0 && s.opts.RateMbps > 0 {
		scale = s.opts.RateMbps / q.RefRateMbps
	}
	for i, op := range q.Ops {
		est.CostPct[i] = op.CostPct * scale
		est.Relay[i] = op.RelayBytes
		est.Quality[i] = 1
	}
	return est
}

// Checkpoint snapshots the pipeline's stateful operator state
// non-destructively (§IV-E), stamped with the given epoch. Pair with
// RestoreCheckpoint via checkpoint.AgentRecovery for durable,
// epoch-aligned agent snapshots.
func (s *Source) Checkpoint(epoch int64) *stream.Checkpoint {
	return s.pipeline.Checkpoint(epoch)
}

// CheckpointDelta captures only operator state dirtied since the
// previous capture (incremental snapshots) and starts a new dirty
// generation.
func (s *Source) CheckpointDelta(epoch int64) *stream.Checkpoint {
	return s.pipeline.CheckpointDelta(epoch)
}

// MarkSnapshotClean starts a new dirty-tracking generation after a full
// checkpoint capture that begins a snapshot chain.
func (s *Source) MarkSnapshotClean() { s.pipeline.MarkSnapshotClean() }

// RestoreCheckpoint folds a checkpoint back into the pipeline after a
// restart: operator state merges in and the watermark resumes where the
// snapshot left it.
func (s *Source) RestoreCheckpoint(cp *stream.Checkpoint) error {
	return s.pipeline.RestoreCheckpoint(cp)
}

// LastResult returns the most recent epoch's result with the record
// buffers dropped: stats, watermark and byte/budget accounting are
// retained, Drains/Results are nil (they belong to the epoch's consumer
// and may already have been recycled).
func (s *Source) LastResult() stream.EpochResult { return s.lastResult }

// Epochs returns how many epochs have run.
func (s *Source) Epochs() int64 { return s.epochs }

// NewPingmeshSource is a quickstart helper: an S2SProbe source fed by a
// synthetic Pingmesh generator at the paper's 10×-scaled rate.
func NewPingmeshSource(seed uint64, budgetFrac float64) (*Source, *workload.PingGen, error) {
	src, err := NewSource(plan.S2SProbe(), SourceOptions{
		BudgetFrac: budgetFrac,
		RateMbps:   workload.PingmeshMbps10x,
		Adapt:      true,
	})
	if err != nil {
		return nil, nil, err
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(seed))
	return src, gen, nil
}
