package experiments

import (
	"fmt"

	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/sim"
	"jarvis/internal/workload"
)

// AblationRow is one variant's closed-loop convergence measurement.
type AblationRow struct {
	Name string
	// Epochs to stability from a cold start at the given budget, or -1.
	Epochs int
	// Profiles counts profiling epochs spent.
	Profiles int
}

// AblationResult covers the design choices DESIGN.md calls out: LP
// initialization, binary-search vs linear fine-tuning, and the priority
// definition.
type AblationResult struct {
	BudgetPct int
	Rows      []AblationRow
}

// Ablation measures cold-start convergence of the runtime variants on
// S2SProbe at the given budget.
func Ablation(budgetFrac float64) (*AblationResult, error) {
	variants := []struct {
		name string
		cfg  runtime.Config
	}{
		{"Jarvis (LP + binary fine-tune)", runtime.Defaults()},
		{"LP only", runtime.LPOnly()},
		{"w/o LP-init (binary)", runtime.NoLPInit()},
		{"w/o LP-init (linear steps)", func() runtime.Config {
			c := runtime.NoLPInit()
			c.LinearStepping = true
			return c
		}()},
		{"priority = cost x relay", func() runtime.Config {
			c := runtime.Defaults()
			c.PriorityByCostRelay = true
			return c
		}()},
	}
	res := &AblationResult{BudgetPct: int(budgetFrac*100 + 0.5)}
	for _, v := range variants {
		node, err := sim.NewNode(sim.DefaultNodeConfig(
			plan.S2SProbe(), workload.PingmeshMbps10x, budgetFrac))
		if err != nil {
			return nil, err
		}
		trace, err := sim.Run(node, v.cfg, 60, nil)
		if err != nil {
			return nil, err
		}
		profiles := 0
		for _, e := range trace {
			if e.Profiled {
				profiles++
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:     v.name,
			Epochs:   trace.ConvergenceEpochs(0, 3),
			Profiles: profiles,
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *AblationResult) String() string {
	var t table
	t.title(fmt.Sprintf("Ablations: cold-start convergence, S2SProbe @%d%% CPU (60-epoch cap)", r.BudgetPct))
	t.line(fmt.Sprintf("%-32s %8s %9s", "variant", "epochs", "profiles"))
	for _, row := range r.Rows {
		epochs := fmt.Sprintf("%d", row.Epochs)
		if row.Epochs < 0 {
			epochs = "never"
		}
		t.line(fmt.Sprintf("%-32s %8s %9d", row.Name, epochs, row.Profiles))
	}
	return t.String()
}
