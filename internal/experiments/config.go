// Package experiments regenerates every table and figure in the paper's
// evaluation (§VI). Each driver returns structured rows plus a formatted
// text table printing the same series the paper plots; cmd/jarvis-bench
// and the repository benchmarks invoke them.
//
// Absolute numbers come from the calibrated cost model (DESIGN.md); the
// claims the paper makes — who wins, by what factor, where crossovers
// fall — are asserted by this package's tests and recorded against the
// paper in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// Network constants from §VI-A (after the paper's 10× scaling).
const (
	// PerSourceBWMbps is the per-query per-source bandwidth share:
	// 10 Gbps / 250 nodes / 20 queries × 10.
	PerSourceBWMbps = 20.48
	// AggBWMbps is the per-query aggregate SP ingress: 10 Gbps / 20.
	AggBWMbps = 500.0
)

// Budgets is the CPU-budget sweep of Fig. 7 (percent of one core).
var Budgets = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// T2TQuery builds the T2TProbe query against a synthetic IP→ToR table of
// the given size (§VI's default is 500; Fig. 8(b) starts at 50).
func T2TQuery(tableSize int) *plan.Query {
	ips := make([]uint32, tableSize)
	for i := range ips {
		ips[i] = 0x0B000000 + uint32(i)
	}
	return plan.T2TProbe(telemetry.NewToRTable(ips, 40))
}

// QueryByName returns one of the canonical queries: "s2s", "t2t", "log",
// "spans".
func QueryByName(name string) (*plan.Query, float64, error) {
	switch strings.ToLower(name) {
	case "s2s", "s2sprobe":
		return plan.S2SProbe(), workload.PingmeshMbps10x, nil
	case "t2t", "t2tprobe":
		return T2TQuery(500), workload.PingmeshMbps10x, nil
	case "log", "loganalytics":
		return plan.LogAnalytics(), workload.LogMbps10x, nil
	case "spans", "tracespanagg":
		return plan.TraceSpanAgg(), workload.SpanMbps10x, nil
	default:
		return nil, 0, fmt.Errorf("experiments: unknown query %q", name)
	}
}

// table is a small fixed-width text table builder shared by the drivers.
type table struct {
	b strings.Builder
}

func (t *table) title(s string)  { fmt.Fprintf(&t.b, "%s\n%s\n", s, strings.Repeat("-", len(s))) }
func (t *table) row(cols ...any) { fmt.Fprintln(&t.b, formatCols(cols...)) }
func (t *table) line(s string)   { fmt.Fprintln(&t.b, s) }
func (t *table) String() string  { return t.b.String() }
func formatCols(cols ...any) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%10.2f", v)
		case int:
			parts[i] = fmt.Sprintf("%10d", v)
		case string:
			parts[i] = fmt.Sprintf("%-12s", v)
		default:
			parts[i] = fmt.Sprintf("%10v", v)
		}
	}
	return strings.Join(parts, " ")
}
