package experiments

import (
	"strings"
	"testing"

	"jarvis/internal/partition"
)

func TestFig3Shape(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Operator-level at 80% can only run W+F: traffic ≈ 22.5 Mbps.
	if r.OperatorLevel.OutMbps < 20 || r.OperatorLevel.OutMbps > 24 {
		t.Fatalf("operator-level traffic = %v", r.OperatorLevel.OutMbps)
	}
	// Data-level cuts traffic by at least 2× (paper: 2.4×).
	if r.TrafficRatio < 2.0 {
		t.Fatalf("traffic ratio = %v, want ≥ 2 (paper 2.4)", r.TrafficRatio)
	}
	// Data-level uses the budget; operator-level strands most of it.
	if r.DataLevel.CPUDemandFrac < 0.75 {
		t.Fatalf("data-level CPU = %v, want ≈0.80", r.DataLevel.CPUDemandFrac)
	}
	if r.OperatorLevel.CPUDemandFrac > 0.2 {
		t.Fatalf("operator-level CPU = %v, want ≈0.14", r.OperatorLevel.CPUDemandFrac)
	}
	if !strings.Contains(r.String(), "traffic reduction") {
		t.Fatal("render")
	}
}

func TestFig7PaperClaims(t *testing.T) {
	all, err := Fig7All()
	if err != nil {
		t.Fatal(err)
	}
	s2s := all["s2s"]
	// §VI-B: Jarvis gains over All-Src and LB-DP at 60%, Best-OP at 80%.
	if g := s2s.Gain(partition.AllSrc, 60); g < 1.3 {
		t.Fatalf("S2S Jarvis/All-Src @60%% = %v, want ≥1.3 (paper 2.6)", g)
	}
	if g := s2s.Gain(partition.LBDP, 60); g < 1.05 {
		t.Fatalf("S2S Jarvis/LB-DP @60%% = %v, want ≥1.05 (paper 1.16)", g)
	}
	if g := s2s.Gain(partition.BestOP, 80); g < 1.05 {
		t.Fatalf("S2S Jarvis/Best-OP @80%% = %v, want ≥1.05 (paper 1.25)", g)
	}

	t2t := all["t2t"]
	if g := t2t.Gain(partition.AllSrc, 40); g < 3 {
		t.Fatalf("T2T Jarvis/All-Src @40%% = %v, want ≥3 (paper 4.4)", g)
	}
	for _, b := range []int{60, 80, 100} {
		if g := t2t.Gain(partition.BestOP, b); g < 1.0 {
			t.Fatalf("T2T Jarvis/Best-OP @%d%% = %v, want ≥1 (paper 1.2)", b, g)
		}
	}

	log := all["log"]
	for _, b := range []int{40, 60, 80, 100} {
		if g := log.Gain(partition.AllSP, b); g < 2.0 {
			t.Fatalf("Log Jarvis/All-SP @%d%% = %v, want ≈2.3", b, g)
		}
	}
	if !strings.Contains(s2s.String(), "Fig.7") {
		t.Fatal("render")
	}
}

func TestFig8ConvergenceClaims(t *testing.T) {
	s2s, err := Fig8S2S()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Jarvis stabilizes within seven seconds of a change.
	for _, ce := range s2s.ChangeEpochs {
		c := s2s.Convergence["Jarvis"][ce]
		if c < 0 || c > 7 {
			t.Fatalf("S2S Jarvis convergence @%d = %d epochs, want ≤7\n%s", ce, c, s2s)
		}
	}
	// LP initialization pays off on the budget increase (Fig. 8(a):
	// w/o LP-init needs several stepping epochs, Jarvis lands in one),
	// and Jarvis is no slower in total across both changes (the drop
	// costs it one profiling epoch).
	rise := s2s.ChangeEpochs[0]
	jRise := s2s.Convergence["Jarvis"][rise]
	woRise := s2s.Convergence["w/o LP-init"][rise]
	if woRise >= 0 && jRise >= woRise {
		t.Fatalf("Jarvis (%d) not faster than w/o LP-init (%d) on the rise\n%s", jRise, woRise, s2s)
	}
	jTot, woTot := 0, 0
	for _, ce := range s2s.ChangeEpochs {
		j, wo := s2s.Convergence["Jarvis"][ce], s2s.Convergence["w/o LP-init"][ce]
		if j < 0 {
			j = s2s.Epochs
		}
		if wo < 0 {
			wo = s2s.Epochs
		}
		jTot += j
		woTot += wo
	}
	if jTot > woTot+1 {
		t.Fatalf("Jarvis total (%d) much slower than w/o LP-init (%d)\n%s", jTot, woTot, s2s)
	}

	t2t, err := Fig8T2T()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: inaccurate join profiling prevents LP-only from converging
	// after the 10%→100% change, while Jarvis stabilizes (≤7 epochs).
	if c := t2t.Convergence["Jarvis"][3]; c < 0 || c > 9 {
		t.Fatalf("T2T Jarvis convergence @3 = %d\n%s", c, t2t)
	}
	jTotal, lpTotal := 0, 0
	for _, ce := range t2t.ChangeEpochs {
		j := t2t.Convergence["Jarvis"][ce]
		lp := t2t.Convergence["LP only"][ce]
		if j < 0 {
			j = 30
		}
		if lp < 0 {
			lp = 30
		}
		jTotal += j
		lpTotal += lp
	}
	if jTotal > lpTotal {
		t.Fatalf("Jarvis (%d total epochs) worse than LP-only (%d)\n%s", jTotal, lpTotal, t2t)
	}

	logr, err := Fig8Log()
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range logr.ChangeEpochs {
		if c := logr.Convergence["Jarvis"][ce]; c < 0 || c > 8 {
			t.Fatalf("Log Jarvis convergence @%d = %d\n%s", ce, c, logr)
		}
	}
}

func TestFig9SamplingTradeoff(t *testing.T) {
	r, err := Fig9(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// High rates: accurate (≥85% of errors within 1 ms) but expensive.
	hi := r.Rows[3] // rate 0.8
	if hi.ErrCDF1ms < 0.85 {
		t.Fatalf("rate 0.8 err≤1ms = %v, want ≥0.85", hi.ErrCDF1ms)
	}
	if hi.TransferMbps < r.InputMbps*0.75 {
		t.Fatalf("rate 0.8 transfer %v not ≈0.8×input %v", hi.TransferMbps, r.InputMbps)
	}
	// Low rates: big savings but large errors and missed alerts
	// (paper: 20-40% of errors exceed 1 ms; 10-38% of alerts missed).
	lo := r.Rows[0] // rate 0.2
	if lo.ErrCDF1ms > 0.85 {
		t.Fatalf("rate 0.2 err≤1ms = %v, want substantial error mass", lo.ErrCDF1ms)
	}
	if lo.MissedAlerts < 0.05 {
		t.Fatalf("rate 0.2 missed alerts = %v, want ≥0.05 (paper 10-38%%)", lo.MissedAlerts)
	}
	// Jarvis' lossless transfer at full budget beats even 0.4 sampling.
	if r.JarvisOut100 > r.Rows[1].TransferMbps {
		t.Fatalf("Jarvis @100%% = %v should undercut 0.4 sampling = %v",
			r.JarvisOut100, r.Rows[1].TransferMbps)
	}
	// Monotonicity: accuracy and transfer rise with rate.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ErrCDF1ms < r.Rows[i-1].ErrCDF1ms-0.02 {
			t.Fatalf("accuracy not rising with rate: %+v", r.Rows)
		}
		if r.Rows[i].TransferMbps <= r.Rows[i-1].TransferMbps {
			t.Fatalf("transfer not rising with rate: %+v", r.Rows)
		}
	}
	if !strings.Contains(r.String(), "WSP") {
		t.Fatal("render")
	}
}

func TestFig10ScalingClaims(t *testing.T) {
	all, err := Fig10All()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Fig10Result{}
	for _, r := range all {
		byName[r.Setting.Name] = r
	}
	// 10×: Jarvis ≈32 nodes (paper), Best-OP bottlenecks immediately
	// (≈22 with our constants).
	r10 := byName["10x"]
	if r10.JarvisMaxNodes < 28 || r10.JarvisMaxNodes > 44 {
		t.Fatalf("10x Jarvis max nodes = %d, want ≈32-40", r10.JarvisMaxNodes)
	}
	if r10.BestOPMaxNodes >= r10.JarvisMaxNodes {
		t.Fatalf("10x Best-OP (%d) should trail Jarvis (%d)",
			r10.BestOPMaxNodes, r10.JarvisMaxNodes)
	}
	// 5×: paper reports 40 vs ~70 (+75%).
	r5 := byName["5x"]
	if r5.BestOPMaxNodes < 35 || r5.BestOPMaxNodes > 55 {
		t.Fatalf("5x Best-OP max nodes = %d, want ≈40", r5.BestOPMaxNodes)
	}
	gain := float64(r5.JarvisMaxNodes)/float64(r5.BestOPMaxNodes) - 1
	if gain < 0.5 {
		t.Fatalf("5x Jarvis node gain = %.0f%%, want ≳75%%", gain*100)
	}
	// 1×: Best-OP degrades near 180-220; Jarvis sustains ≥250.
	r1 := byName["1x"]
	if r1.BestOPMaxNodes < 150 || r1.BestOPMaxNodes > 260 {
		t.Fatalf("1x Best-OP max nodes = %d, want ≈180-220", r1.BestOPMaxNodes)
	}
	if r1.JarvisMaxNodes < 250 {
		t.Fatalf("1x Jarvis max nodes = %d, want ≥250", r1.JarvisMaxNodes)
	}
	if !strings.Contains(r10.String(), "Fig.10") {
		t.Fatal("render")
	}
}

func TestFig11MultiQueryClaims(t *testing.T) {
	all, err := Fig11All()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Fig11Result{}
	for _, r := range all {
		byName[r.Setting.Name] = r
	}
	// 10×: single core saturates at ~2 queries; two cores plateau by ~4.
	r10 := byName["10x"]
	agg := func(r *Fig11Result, k, cores int) float64 {
		for _, row := range r.Rows {
			if row.Queries == k {
				return row.AggTPut[cores]
			}
		}
		return -1
	}
	if a2, a3 := agg(r10, 2, 1), agg(r10, 3, 1); a3 > a2*1.02 {
		t.Fatalf("10x 1-core should saturate at 2 queries: %v → %v", a2, a3)
	}
	if a1, a2 := agg(r10, 1, 1), agg(r10, 2, 1); a2 < a1*1.4 {
		t.Fatalf("10x 1-core should still gain at 2 queries: %v → %v", a1, a2)
	}
	// 5×: ≈3-4 queries on one core, ≈6 on two (paper: 4 and 6).
	r5 := byName["5x"]
	if s := r5.Supported[1]; s < 3 || s > 4 {
		t.Fatalf("5x 1-core supports %d queries, want 3-4 (paper 4)", s)
	}
	if s := r5.Supported[2]; s < 5 || s > 7 {
		t.Fatalf("5x 2-core supports %d queries, want ≈6", s)
	}
	// 1×: ≈14-15 on one core, ≈25-28 on two (paper: 15 and 25).
	r1 := byName["1x"]
	if s := r1.Supported[1]; s < 13 || s > 16 {
		t.Fatalf("1x 1-core supports %d queries, want ≈15", s)
	}
	if s := r1.Supported[2]; s < 23 || s > 29 {
		t.Fatalf("1x 2-core supports %d queries, want ≈25", s)
	}
	if !strings.Contains(r10.String(), "Fig.11") {
		t.Fatal("render")
	}
}

func TestLatencyClaims(t *testing.T) {
	r, err := Latency()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	at40, at60 := r.Rows[0], r.Rows[1]
	// At 40 nodes both keep up; Jarvis' median latency is lower
	// (paper: 0.5 s vs 1.8 s — 3.4×; our network model gives ≈1.8×).
	if at40.JarvisMedian >= at40.BestOPMedian {
		t.Fatalf("Jarvis median %v should beat Best-OP %v at 40 nodes",
			at40.JarvisMedian, at40.BestOPMedian)
	}
	if at40.JarvisMedian > 1.0 {
		t.Fatalf("Jarvis median at 40 nodes = %v s, want sub-second", at40.JarvisMedian)
	}
	// At 60 nodes Best-OP is bottlenecked: max latency beyond 60 s;
	// Jarvis stays within the 5 s bound.
	if at60.BestOPMax < 60 {
		t.Fatalf("Best-OP max at 60 nodes = %v s, want > 60", at60.BestOPMax)
	}
	if at60.JarvisMax > 5 {
		t.Fatalf("Jarvis max at 60 nodes = %v s, want ≤ 5", at60.JarvisMax)
	}
	if !strings.Contains(r.String(), "latency") {
		t.Fatal("render")
	}
}

func TestOpCountClaims(t *testing.T) {
	r, err := OpCount()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Worst case grows with operator count and reaches double digits by
	// 4 operators (paper: up to 21 epochs).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].WorstEpochs < r.Rows[i-1].WorstEpochs {
			t.Fatalf("worst-case not monotone: %+v", r.Rows)
		}
	}
	if w := r.Rows[2].WorstEpochs; w < 10 {
		t.Fatalf("4-operator worst case = %d, want double digits (paper 21)", w)
	}
	if !strings.Contains(r.String(), "operator count") {
		t.Fatal("render")
	}
}

func TestOverheadClaim(t *testing.T) {
	r, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if r.EpochPct > 1.0 {
		t.Fatalf("runtime overhead = %v%% of a core, paper reports <1%%", r.EpochPct)
	}
	if !strings.Contains(r.String(), "overhead") {
		t.Fatal("render")
	}
}

func TestQueryByName(t *testing.T) {
	for _, name := range []string{"s2s", "t2t", "log", "S2SProbe"} {
		if _, _, err := QueryByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, _, err := QueryByName("nope"); err == nil {
		t.Fatal("unknown query must error")
	}
}

func TestAblationVariants(t *testing.T) {
	r, err := Ablation(0.60)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	jarvis := byName["Jarvis (LP + binary fine-tune)"]
	noLP := byName["w/o LP-init (binary)"]
	linear := byName["w/o LP-init (linear steps)"]
	if jarvis.Epochs < 0 {
		t.Fatalf("Jarvis never converged\n%s", r)
	}
	if noLP.Epochs >= 0 && jarvis.Epochs > noLP.Epochs {
		t.Fatalf("LP init should not be slower cold-start: %d vs %d", jarvis.Epochs, noLP.Epochs)
	}
	// Linear stepping is the slow ablation: strictly worse than binary
	// search (often failing to converge within the cap).
	if linear.Epochs >= 0 && noLP.Epochs >= 0 && linear.Epochs < noLP.Epochs {
		t.Fatalf("linear (%d) should not beat binary (%d)", linear.Epochs, noLP.Epochs)
	}
	if !strings.Contains(r.String(), "Ablations") {
		t.Fatal("render")
	}
}
