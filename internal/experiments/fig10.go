package experiments

import (
	"fmt"

	"jarvis/internal/partition"
	"jarvis/internal/plan"
)

// Fig10Setting is one panel of Fig. 10: an input-rate scaling with its
// per-node CPU budget (§VI-E: 55% at 10×, 30% at 5×, 5% at 1×).
type Fig10Setting struct {
	Name       string
	RateMbps   float64
	BudgetFrac float64
	MaxNodes   int
	Step       int
}

// Fig10Settings are the paper's three scalings.
var Fig10Settings = []Fig10Setting{
	{"10x", 26.2, 0.55, 48, 4},
	{"5x", 13.1, 0.30, 100, 5},
	{"1x", 2.62, 0.05, 280, 20},
}

// Fig10Row is one node-count point.
type Fig10Row struct {
	Nodes    int
	Jarvis   float64
	BestOP   float64
	Expected float64
}

// Fig10Result is one panel.
type Fig10Result struct {
	Setting Fig10Setting
	Rows    []Fig10Row
	// JarvisMaxNodes/BestOPMaxNodes: the largest node counts each policy
	// sustains at full expected throughput (within 1%).
	JarvisMaxNodes int
	BestOPMaxNodes int
}

// Fig10 sweeps the number of data sources feeding one SP for one scaling
// (Fig. 10(a)–(c)), comparing Jarvis with Best-OP against the expected
// N×rate line. The SP's aggregate ingress (AggBWMbps) is shared across
// nodes on top of the per-source cap.
func Fig10(set Fig10Setting) (*Fig10Result, error) {
	res := &Fig10Result{Setting: set}
	sc := partition.Scenario{
		Query:         plan.S2SProbe(),
		RateMbps:      set.RateMbps,
		BudgetFrac:    set.BudgetFrac,
		BandwidthMbps: PerSourceBWMbps,
	}
	// The sustained node count is where the aggregate curve knees: the
	// last node whose addition still contributes at least half its input
	// rate (beyond it, the shared SP link is saturated and extra sources
	// only redistribute bandwidth).
	sustained := func(st partition.Strategy) int {
		prev := 0.0
		last := 0
		for n := 1; n <= set.MaxNodes+set.Step; n++ {
			tp, err := partition.AggregateThroughput(st, sc, n, AggBWMbps)
			if err != nil {
				return last
			}
			if tp-prev >= 0.5*set.RateMbps {
				last = n
			}
			prev = tp
		}
		return last
	}
	res.JarvisMaxNodes = sustained(partition.Jarvis)
	res.BestOPMaxNodes = sustained(partition.BestOP)

	for n := set.Step; n <= set.MaxNodes; n += set.Step {
		j, err := partition.AggregateThroughput(partition.Jarvis, sc, n, AggBWMbps)
		if err != nil {
			return nil, err
		}
		b, err := partition.AggregateThroughput(partition.BestOP, sc, n, AggBWMbps)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig10Row{
			Nodes:    n,
			Jarvis:   j,
			BestOP:   b,
			Expected: set.RateMbps * float64(n),
		})
	}
	return res, nil
}

// Fig10All regenerates all three panels.
func Fig10All() ([]*Fig10Result, error) {
	var out []*Fig10Result
	for _, set := range Fig10Settings {
		r, err := Fig10(set)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// String renders the panel.
func (r *Fig10Result) String() string {
	var t table
	t.title(fmt.Sprintf("Fig.10 (%s): aggregate TPut (Mbps) vs #sources (rate %.2f, CPU %.0f%%)",
		r.Setting.Name, r.Setting.RateMbps, r.Setting.BudgetFrac*100))
	t.row("nodes", "Jarvis", "Best-OP", "Expected")
	for _, row := range r.Rows {
		t.row(row.Nodes, row.Jarvis, row.BestOP, row.Expected)
	}
	t.line(fmt.Sprintf("max sources at full rate: Jarvis %d, Best-OP %d (+%.0f%%)",
		r.JarvisMaxNodes, r.BestOPMaxNodes,
		100*(float64(r.JarvisMaxNodes)/float64(maxInt(r.BestOPMaxNodes, 1))-1)))
	return t.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
