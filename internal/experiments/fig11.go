package experiments

import (
	"fmt"

	"jarvis/internal/partition"
	"jarvis/internal/plan"
)

// Fig11Setting is one input scaling of the multi-query experiment
// (§VI-F): per-query CPU demand follows the rate (55% at 10×, 30% at 5×,
// 5% at 1×).
type Fig11Setting struct {
	Name       string
	RateMbps   float64
	DemandFrac float64
	MaxQueries int
}

// Fig11Settings are the paper's three scalings.
var Fig11Settings = []Fig11Setting{
	{"10x", 26.2, 0.55, 6},
	{"5x", 13.1, 0.30, 10},
	{"1x", 2.62, 0.05, 28},
}

// PerQueryOverheadFrac models the fixed cost of running one more query
// instance on the node (its runtime, dataflow plumbing and
// serialization) — ~2% of a core, consistent with the per-query counts
// the paper reports at 1× scaling.
const PerQueryOverheadFrac = 0.02

// Fig11Row is one query-count point for one core count.
type Fig11Row struct {
	Queries int
	// AggTPut maps core count (1, 2) → aggregate throughput (Mbps).
	AggTPut map[int]float64
}

// Fig11Result is one panel of Fig. 11.
type Fig11Result struct {
	Setting Fig11Setting
	Rows    []Fig11Row
	// Supported maps core count → the largest query count still served
	// at (nearly) full per-query rate.
	Supported map[int]int
}

// Fig11 computes aggregate throughput when multiple S2SProbe instances
// share a source node. Each instance runs fixed load factors sized to
// DemandFrac (the paper pins per-query CPU via fixed factors); the fair
// allocator gives each query an equal share of the node's cores. When
// the shares fall below the per-query demand the whole agent process is
// CPU starved, so every instance slows proportionally.
func Fig11(set Fig11Setting) (*Fig11Result, error) {
	res := &Fig11Result{Setting: set, Supported: map[int]int{}}
	q := plan.S2SProbe()
	factors, err := partition.JarvisLPFactors(q, set.DemandFrac, set.RateMbps, 0)
	if err != nil {
		return nil, err
	}
	perQuery := set.DemandFrac + PerQueryOverheadFrac
	for k := 1; k <= set.MaxQueries; k++ {
		row := Fig11Row{Queries: k, AggTPut: map[int]float64{}}
		for _, cores := range []int{1, 2} {
			share := float64(cores) / float64(k)
			phi := 1.0
			if share < perQuery {
				phi = share / perQuery
			}
			// Per-query throughput at its fair share; network per query
			// uses the standard per-source cap.
			o, err := partition.Evaluate(partition.Scenario{
				Query:         q,
				RateMbps:      set.RateMbps,
				BudgetFrac:    set.DemandFrac, // factors already fit this
				BandwidthMbps: PerSourceBWMbps,
			}, factors)
			if err != nil {
				return nil, err
			}
			row.AggTPut[cores] = o.ThroughputMbps * phi * float64(k)
			if phi >= 0.99 {
				if row.Queries > res.Supported[cores] {
					res.Supported[cores] = row.Queries
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig11All regenerates all three panels.
func Fig11All() ([]*Fig11Result, error) {
	var out []*Fig11Result
	for _, set := range Fig11Settings {
		r, err := Fig11(set)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// String renders the panel.
func (r *Fig11Result) String() string {
	var t table
	t.title(fmt.Sprintf("Fig.11 (%s): aggregate TPut (Mbps) vs #queries (per-query demand %.0f%%)",
		r.Setting.Name, r.Setting.DemandFrac*100))
	t.row("queries", "1 core", "2 cores")
	for _, row := range r.Rows {
		t.row(row.Queries, row.AggTPut[1], row.AggTPut[2])
	}
	t.line(fmt.Sprintf("queries at full rate: %d (1 core), %d (2 cores)",
		r.Supported[1], r.Supported[2]))
	return t.String()
}
