package experiments

import (
	"fmt"

	"jarvis/internal/partition"
	"jarvis/internal/plan"
	"jarvis/internal/workload"
)

// Fig3Result reproduces the motivating comparison of Fig. 3: S2SProbe on
// a source with an 80% CPU budget, operator-level vs data-level
// partitioning.
type Fig3Result struct {
	BudgetFrac float64
	// OperatorLevel is the Best-OP outcome (coarse {0,1} factors).
	OperatorLevel partition.Outcome
	// DataLevel is the Jarvis outcome (fractional factors).
	DataLevel partition.Outcome
	// DataFactors are Jarvis' load factors.
	DataFactors []float64
	// TrafficRatio = operator-level traffic / data-level traffic (the
	// paper reports 2.4×).
	TrafficRatio float64
}

// Fig3 runs the comparison.
func Fig3() (*Fig3Result, error) {
	sc := partition.Scenario{
		Query:         plan.S2SProbe(),
		RateMbps:      workload.PingmeshMbps10x,
		BudgetFrac:    0.80,
		BandwidthMbps: 0, // the illustration compares raw traffic
	}
	opl, _, err := partition.EvaluateStrategy(partition.BestOP, sc)
	if err != nil {
		return nil, err
	}
	dl, factors, err := partition.EvaluateStrategy(partition.Jarvis, sc)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		BudgetFrac:    0.80,
		OperatorLevel: opl,
		DataLevel:     dl,
		DataFactors:   factors,
	}
	if dl.OutMbps > 0 {
		res.TrafficRatio = opl.OutMbps / dl.OutMbps
	}
	return res, nil
}

// String renders the comparison like the figure's annotations.
func (r *Fig3Result) String() string {
	var t table
	t.title("Fig.3: operator-level vs data-level partitioning (S2SProbe, 80% CPU)")
	t.line(fmt.Sprintf("operator-level: traffic %6.2f Mbps, CPU need %5.1f%%",
		r.OperatorLevel.OutMbps, r.OperatorLevel.CPUDemandFrac*100))
	t.line(fmt.Sprintf("data-level:     traffic %6.2f Mbps, CPU need %5.1f%%  factors %v",
		r.DataLevel.OutMbps, r.DataLevel.CPUDemandFrac*100, r.DataFactors))
	t.line(fmt.Sprintf("traffic reduction: %.1fx lower with data-level partitioning (paper: 2.4x)",
		r.TrafficRatio))
	return t.String()
}
