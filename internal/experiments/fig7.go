package experiments

import (
	"fmt"

	"jarvis/internal/partition"
	"jarvis/internal/plan"
)

// Fig7Row is one budget point of a Fig. 7 throughput sweep.
type Fig7Row struct {
	// BudgetPct is the CPU budget in percent of one core.
	BudgetPct int
	// TPut maps strategy → sustainable throughput (Mbps).
	TPut map[partition.Strategy]float64
	// Out maps strategy → outbound network traffic at full ingest (Mbps).
	Out map[partition.Strategy]float64
}

// Fig7Result is one full panel of Fig. 7.
type Fig7Result struct {
	Name     string
	RateMbps float64
	Rows     []Fig7Row
}

// Fig7 sweeps query throughput over CPU budgets for all six partitioning
// strategies (Fig. 7(a)–(c)).
func Fig7(name string, q *plan.Query, rateMbps float64) (*Fig7Result, error) {
	res := &Fig7Result{Name: name, RateMbps: rateMbps}
	for _, b := range Budgets {
		row := Fig7Row{
			BudgetPct: int(b*100 + 0.5),
			TPut:      map[partition.Strategy]float64{},
			Out:       map[partition.Strategy]float64{},
		}
		sc := partition.Scenario{
			Query:         q,
			RateMbps:      rateMbps,
			BudgetFrac:    b,
			BandwidthMbps: PerSourceBWMbps,
		}
		for _, st := range partition.Strategies {
			o, _, err := partition.EvaluateStrategy(st, sc)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s @%d%%: %w", st, row.BudgetPct, err)
			}
			row.TPut[st] = o.ThroughputMbps
			row.Out[st] = o.OutMbps
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig7All regenerates all three panels.
func Fig7All() (map[string]*Fig7Result, error) {
	out := map[string]*Fig7Result{}
	for _, name := range []string{"s2s", "t2t", "log"} {
		q, rate, err := QueryByName(name)
		if err != nil {
			return nil, err
		}
		r, err := Fig7(name, q, rate)
		if err != nil {
			return nil, err
		}
		out[name] = r
	}
	return out, nil
}

// String renders the panel as the paper's series (Mbps per strategy).
func (r *Fig7Result) String() string {
	var t table
	t.title(fmt.Sprintf("Fig.7 (%s): throughput (Mbps) vs CPU budget, input %.1f Mbps", r.Name, r.RateMbps))
	hdr := []any{"CPU %"}
	for _, st := range partition.Strategies {
		hdr = append(hdr, st.String())
	}
	t.row(hdr...)
	for _, row := range r.Rows {
		cols := []any{row.BudgetPct}
		for _, st := range partition.Strategies {
			cols = append(cols, row.TPut[st])
		}
		t.row(cols...)
	}
	return t.String()
}

// Gain returns Jarvis' throughput ratio over a baseline at a budget.
func (r *Fig7Result) Gain(base partition.Strategy, budgetPct int) float64 {
	for _, row := range r.Rows {
		if row.BudgetPct == budgetPct {
			b := row.TPut[base]
			if b <= 0 {
				return 0
			}
			return row.TPut[partition.Jarvis] / b
		}
	}
	return 0
}
