package experiments

import (
	"fmt"

	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/sim"
	"jarvis/internal/workload"
)

// Fig8Config names the three adaptation variants of §VI-C.
var Fig8Configs = []struct {
	Name string
	Cfg  runtime.Config
}{
	{"LP only", runtime.LPOnly()},
	{"w/o LP-init", runtime.NoLPInit()},
	{"Jarvis", runtime.Defaults()},
}

// Fig8Result is one convergence panel: the per-epoch state trace of each
// variant under a scripted resource scenario plus convergence counts.
type Fig8Result struct {
	Name string
	// ChangeEpochs are the epochs at which resource conditions change.
	ChangeEpochs []int
	// Traces maps variant name → epoch trace.
	Traces map[string]sim.Trace
	// Convergence maps variant name → change epoch → epochs to
	// restabilize (-1: never within the run).
	Convergence map[string]map[int]int
	Epochs      int
}

func runFig8(name string, mkNode func(seed uint64) (*sim.Node, error),
	epochs int, changes []int, events []sim.Event) (*Fig8Result, error) {
	res := &Fig8Result{
		Name:         name,
		ChangeEpochs: changes,
		Traces:       map[string]sim.Trace{},
		Convergence:  map[string]map[int]int{},
		Epochs:       epochs,
	}
	for i, variant := range Fig8Configs {
		node, err := mkNode(uint64(i + 1))
		if err != nil {
			return nil, err
		}
		trace, err := sim.Run(node, variant.Cfg, epochs, events)
		if err != nil {
			return nil, err
		}
		res.Traces[variant.Name] = trace
		conv := map[int]int{}
		for _, ce := range changes {
			conv[ce] = trace.ConvergenceEpochs(ce, 3)
		}
		res.Convergence[variant.Name] = conv
	}
	return res, nil
}

// Fig8S2S reproduces Fig. 8(a): the S2SProbe budget script
// 10% → 90% (epoch 3) → 60% (epoch 18).
func Fig8S2S() (*Fig8Result, error) {
	mk := func(seed uint64) (*sim.Node, error) {
		cfg := sim.DefaultNodeConfig(plan.S2SProbe(), workload.PingmeshMbps10x, 0.10)
		cfg.Seed = seed
		return sim.NewNode(cfg)
	}
	events := []sim.Event{
		{Epoch: 3, BudgetFrac: sim.Budget(0.90)},
		{Epoch: 18, BudgetFrac: sim.Budget(0.60)},
	}
	return runFig8("S2SProbe", mk, 30, []int{3, 18}, events)
}

// Fig8T2T reproduces Fig. 8(b): T2TProbe with a table of 50 at 10% CPU,
// 100% CPU at epoch 3, table ×10 at epoch 12, manual reset at epoch 18
// (as the paper does to stabilize the next run).
func Fig8T2T() (*Fig8Result, error) {
	mk := func(seed uint64) (*sim.Node, error) {
		cfg := sim.DefaultNodeConfig(T2TQuery(50), workload.PingmeshMbps10x, 0.10)
		cfg.Seed = seed
		return sim.NewNode(cfg)
	}
	growth := plan.JoinCostPct(500) / plan.JoinCostPct(50)
	events := []sim.Event{
		{Epoch: 3, BudgetFrac: sim.Budget(1.0)},
		{Epoch: 12, ScaleOpCost: map[int]float64{2: growth, 3: growth}},
		{Epoch: 18, ResetFactors: true, ClearBacklog: true},
	}
	return runFig8("T2TProbe", mk, 30, []int{3, 12, 18}, events)
}

// Fig8Log reproduces Fig. 8(c): LogAnalytics under a budget script
// 10% → 80% (epoch 3) → 25% (epoch 15).
func Fig8Log() (*Fig8Result, error) {
	mk := func(seed uint64) (*sim.Node, error) {
		cfg := sim.DefaultNodeConfig(plan.LogAnalytics(), workload.LogMbps10x, 0.10)
		cfg.Seed = seed
		return sim.NewNode(cfg)
	}
	events := []sim.Event{
		{Epoch: 3, BudgetFrac: sim.Budget(0.80)},
		{Epoch: 15, BudgetFrac: sim.Budget(0.25)},
	}
	return runFig8("LogAnalytics", mk, 26, []int{3, 15}, events)
}

// String renders the state trace per epoch (the paper plots the same
// series as Detect/Idle/Profile/Congested/Stable bands).
func (r *Fig8Result) String() string {
	var t table
	t.title(fmt.Sprintf("Fig.8 (%s): convergence trace (change epochs %v)", r.Name, r.ChangeEpochs))
	for _, variant := range Fig8Configs {
		trace := r.Traces[variant.Name]
		line := fmt.Sprintf("%-12s ", variant.Name)
		for _, e := range trace {
			line += stateGlyph(e)
		}
		t.line(line)
		for _, ce := range r.ChangeEpochs {
			c := r.Convergence[variant.Name][ce]
			if c < 0 {
				t.line(fmt.Sprintf("             change@%d: never restabilized", ce))
			} else {
				t.line(fmt.Sprintf("             change@%d: %d epochs to stable", ce, c))
			}
		}
	}
	t.line("legend: . stable  i idle  C congested  P profile epoch")
	return t.String()
}

func stateGlyph(e sim.TraceEntry) string {
	if e.Profiled {
		return "P"
	}
	switch e.State.String() {
	case "stable":
		return "."
	case "idle":
		return "i"
	default:
		return "C"
	}
}
