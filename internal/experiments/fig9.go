package experiments

import (
	"fmt"
	"math"

	"jarvis/internal/metrics"
	"jarvis/internal/partition"
	"jarvis/internal/plan"
	"jarvis/internal/synopsis"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// Fig9Rates are the WSP sampling rates the paper evaluates.
var Fig9Rates = []float64{0.2, 0.4, 0.6, 0.8}

// Fig9Row summarizes one sampling rate.
type Fig9Row struct {
	Rate float64
	// ErrCDF1ms / ErrCDF5ms: fraction of per-pair range-estimation
	// errors within 1 ms and 5 ms (Fig. 9(a)'s CDF read at those points).
	ErrCDF1ms float64
	ErrCDF5ms float64
	// MissedAlerts is the fraction of ground-truth alert pairs (latency
	// above 5 ms) invisible in the sample.
	MissedAlerts float64
	// TransferMbps is the sample's network cost per source.
	TransferMbps float64
}

// Fig9Result compares WSP sampling against Jarvis (§VI-D).
type Fig9Result struct {
	Rows []Fig9Row
	// InputMbps is the raw input rate.
	InputMbps float64
	// JarvisOut100/JarvisOut20 are Jarvis' lossless transfer costs at
	// 100% and 20% CPU budgets (Fig. 9(b)'s horizontal lines).
	JarvisOut100 float64
	JarvisOut20  float64
	// ErrCDFs holds the full error CDFs per rate for plotting.
	ErrCDFs map[float64]*metrics.CDF
}

// Fig9 runs the sampling study on a synthetic Pingmesh trace with sparse
// anomalies: per server pair, the query estimates the range of probe
// latencies; sampling misses sparse high-latency probes, degrading both
// the estimate and alerting.
func Fig9(seed uint64) (*Fig9Result, error) {
	cfg := workload.DefaultPingConfig(seed)
	// Unscaled probing density (§VI-A): each server probes 20 K peers
	// every 5 s, i.e. ~2 probes per pair per 10 s window — the sparsity
	// that makes sampling miss anomalies. Wide healthy RTT spread
	// (σ = 0.8 lognormal) reflects production latency tails.
	cfg.Peers = workload.DefaultPeers
	cfg.IntervalMicros = int64(1e6 / workload.RecordsPerSec(workload.PingmeshMbps1x, telemetry.PingProbeWireSize))
	cfg.SigmaLog = 0.8
	cfg.AnomalousPairFrac = 0.02
	gen := workload.NewPingGen(cfg)
	// Three 10 s windows of probes.
	batch := gen.NextWindow(30_000_000)

	type rng struct{ min, max float64 }
	truth := map[uint64]*rng{}
	alerts := map[uint64]bool{}
	observe := func(m map[uint64]*rng, p *telemetry.PingProbe) {
		r := m[p.PairKey()]
		if r == nil {
			m[p.PairKey()] = &rng{float64(p.RTTMicros), float64(p.RTTMicros)}
			return
		}
		v := float64(p.RTTMicros)
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	for _, rec := range batch {
		p := rec.Data.(*telemetry.PingProbe)
		observe(truth, p)
		if p.RTTMicros > workload.AlertThresholdMicros {
			alerts[p.PairKey()] = true
		}
	}
	if len(alerts) == 0 {
		return nil, fmt.Errorf("fig9: trace generated no alerts")
	}

	// Accuracy is measured on the unscaled-density trace above; transfer
	// is reported at the evaluation's 10×-scaled rate (Fig. 9(b)'s axis),
	// to which sampling cost is proportional either way.
	res := &Fig9Result{
		InputMbps: workload.PingmeshMbps10x,
		ErrCDFs:   map[float64]*metrics.CDF{},
	}
	for _, rate := range Fig9Rates {
		w := synopsis.NewWSP(rate, seed+uint64(rate*100))
		sample := w.Sample(batch)
		est := map[uint64]*rng{}
		sampledAlert := map[uint64]bool{}
		for _, rec := range sample {
			p := rec.Data.(*telemetry.PingProbe)
			observe(est, p)
			if p.RTTMicros > workload.AlertThresholdMicros {
				sampledAlert[p.PairKey()] = true
			}
		}
		// Per-pair error in estimating the latency range, in ms.
		var errs []float64
		for key, tr := range truth {
			trueRange := tr.max - tr.min
			estRange := 0.0
			if er := est[key]; er != nil {
				estRange = er.max - er.min
			}
			errs = append(errs, math.Abs(trueRange-estRange)/1000)
		}
		cdf := metrics.NewCDF(errs)
		res.ErrCDFs[rate] = cdf
		missed := 0
		for key := range alerts {
			if !sampledAlert[key] {
				missed++
			}
		}
		res.Rows = append(res.Rows, Fig9Row{
			Rate:         rate,
			ErrCDF1ms:    cdf.At(1.0),
			ErrCDF5ms:    cdf.At(5.0),
			MissedAlerts: float64(missed) / float64(len(alerts)),
			TransferMbps: res.InputMbps * rate,
		})
	}

	// Jarvis' lossless transfer at 100% and 20% CPU (Fig. 9(b)).
	for _, b := range []float64{1.0, 0.2} {
		o, _, err := partition.EvaluateStrategy(partition.Jarvis, partition.Scenario{
			Query:         plan.S2SProbe(),
			RateMbps:      workload.PingmeshMbps10x,
			BudgetFrac:    b,
			BandwidthMbps: PerSourceBWMbps,
		})
		if err != nil {
			return nil, err
		}
		if b == 1.0 {
			res.JarvisOut100 = o.OutMbps
		} else {
			res.JarvisOut20 = o.OutMbps
		}
	}
	return res, nil
}

// String renders both panels of Fig. 9.
func (r *Fig9Result) String() string {
	var t table
	t.title("Fig.9: window-based sampling (WSP) vs Jarvis")
	t.row("rate", "err<=1ms", "err<=5ms", "missAlert", "xfer Mbps")
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%.1f", row.Rate), row.ErrCDF1ms, row.ErrCDF5ms,
			row.MissedAlerts, row.TransferMbps)
	}
	t.line(fmt.Sprintf("input rate:              %7.2f Mbps", r.InputMbps))
	t.line(fmt.Sprintf("Jarvis transfer @100%%:   %7.2f Mbps (zero error, no missed alerts)", r.JarvisOut100))
	t.line(fmt.Sprintf("Jarvis transfer @20%%:    %7.2f Mbps (zero error, no missed alerts)", r.JarvisOut20))
	return t.String()
}
