package experiments

import (
	"fmt"

	"jarvis/internal/metrics"
	"jarvis/internal/partition"
	"jarvis/internal/plan"
	"jarvis/internal/sim"
)

// LatencyRow holds the §VI-E epoch-processing-latency comparison for one
// node count.
type LatencyRow struct {
	Nodes        int
	JarvisMedian float64
	JarvisMax    float64
	BestOPMedian float64
	BestOPMax    float64
}

// LatencyResult is the §VI-E study: 5× input scaling, 30% CPU budget,
// with the SP link shared across nodes. At 40 nodes both policies keep
// up and Jarvis' smaller transfers cut latency; at 60 nodes Best-OP is
// network bottlenecked and its worst-case latency grows without bound
// while Jarvis stays within the 5 s bound.
type LatencyResult struct {
	Rows []LatencyRow
}

// Latency runs the study over a three-minute (180-epoch) simulation.
func Latency() (*LatencyResult, error) {
	const (
		rate   = 13.1 // 5× scaling
		budget = 0.30
		epochs = 180
		warm   = 20
	)
	res := &LatencyResult{}
	for _, nodes := range []int{40, 60} {
		bw := AggBWMbps / float64(nodes)
		if bw > PerSourceBWMbps {
			bw = PerSourceBWMbps
		}
		row := LatencyRow{Nodes: nodes}
		for _, who := range []partition.Strategy{partition.Jarvis, partition.BestOP} {
			q := plan.S2SProbe()
			factors, err := partition.Factors(who, q, budget, rate, 0)
			if err != nil {
				return nil, err
			}
			cfg := sim.DefaultNodeConfig(q, rate, budget)
			cfg.BandwidthMbps = bw
			node, err := sim.NewNode(cfg)
			if err != nil {
				return nil, err
			}
			trace, err := sim.RunFixed(node, factors, epochs, nil)
			if err != nil {
				return nil, err
			}
			lats := trace.Latencies(warm, epochs)
			med := metrics.Median(lats)
			max := metrics.Max(lats)
			if who == partition.Jarvis {
				row.JarvisMedian, row.JarvisMax = med, max
			} else {
				row.BestOPMedian, row.BestOPMax = med, max
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table.
func (r *LatencyResult) String() string {
	var t table
	t.title("§VI-E: epoch processing latency (s), 5x rate, 30% CPU")
	t.row("nodes", "Jarvis p50", "Jarvis max", "BestOP p50", "BestOP max")
	for _, row := range r.Rows {
		t.row(row.Nodes, row.JarvisMedian, row.JarvisMax, row.BestOPMedian, row.BestOPMax)
	}
	t.line(fmt.Sprintf("paper: at 40 nodes Jarvis median 0.5 s vs Best-OP 1.8 s;"))
	t.line(fmt.Sprintf("       at 60 nodes Best-OP max exceeds 60 s, Jarvis stays within 5 s"))
	return t.String()
}
