package experiments

import (
	"fmt"
	"math/rand/v2"

	"jarvis/internal/runtime"
	"jarvis/internal/stream"
)

// OpCountRow is one pipeline length's worst-case convergence (§VI-C's
// operator-count simulator study).
type OpCountRow struct {
	Operators int
	// WorstEpochs is the maximum adaptation epochs across the explored
	// configurations for the model-agnostic policy (w/o LP-init).
	WorstEpochs int
	// MeanEpochs is the average across configurations.
	MeanEpochs float64
	// Configs is how many (cost, budget) configurations were explored.
	Configs int
}

// OpCountResult is the sweep over pipeline lengths.
type OpCountResult struct {
	Rows []OpCountRow
}

// OpCount reproduces the paper's convergence simulator: for pipelines of
// 2..5 operators it exhaustively explores grids of operator costs,
// relay ratios and compute budgets, running the model-agnostic
// StepWise-Adapt (w/o LP-init) with exact state signals and *without*
// the three detection epochs (as the paper's simulator does), and
// records the worst-case epochs to stabilize. The paper reports up to 21
// epochs at four operators — the case for LP initialization.
func OpCount() (*OpCountResult, error) {
	res := &OpCountResult{}
	for m := 2; m <= 5; m++ {
		worst, total, count := 0, 0, 0
		rng := rand.New(rand.NewPCG(uint64(m), 99))
		// Deterministic grid plus random fill-in of cost shapes.
		for trial := 0; trial < 60; trial++ {
			cost := make([]float64, m)
			relay := make([]float64, m)
			for i := 0; i < m; i++ {
				cost[i] = 2 + rng.Float64()*68
				relay[i] = 0.1 + rng.Float64()*0.9
			}
			for _, budget := range []float64{20, 40, 60, 80} {
				ep := convergenceEpochs(cost, relay, budget)
				if ep < 0 {
					ep = 64 // cap for never-stable (counts as worst case)
				}
				if ep > worst {
					worst = ep
				}
				total += ep
				count++
			}
		}
		res.Rows = append(res.Rows, OpCountRow{
			Operators:   m,
			WorstEpochs: worst,
			MeanEpochs:  float64(total) / float64(count),
			Configs:     count,
		})
	}
	return res, nil
}

// convergenceEpochs runs the analytic closed loop: exact query-state
// signals, no profiling noise, no detection delay — the paper's
// simulator assumptions.
func convergenceEpochs(cost, relay []float64, budgetPct float64) int {
	m := len(cost)
	rt := runtime.New(runtime.Config{
		DetectEpochs: 1, UseLPInit: false, FineTune: true, Granularity: 16,
	})
	factors := make([]float64, m)

	demand := func() float64 {
		e := 1.0
		d := 0.0
		for i := range cost {
			e *= factors[i]
			d += e * cost[i]
		}
		return d
	}
	state := func() stream.ProxyState {
		d := demand()
		anyBelow := false
		for _, p := range factors {
			if p < 1-1e-9 {
				anyBelow = true
			}
		}
		switch {
		case d > budgetPct*1.02:
			return stream.StateCongested
		case (budgetPct-d)/budgetPct > 0.2 && anyBelow:
			return stream.StateIdle
		default:
			return stream.StateStable
		}
	}
	obs := func() runtime.Observation {
		st := state()
		stats := make([]stream.ProxyStats, m)
		for i := range stats {
			stats[i].State = stream.StateStable
		}
		switch st {
		case stream.StateCongested:
			worst, wc := 0, -1.0
			for i := range cost {
				if factors[i] > 0 && cost[i] > wc {
					worst, wc = i, cost[i]
				}
			}
			stats[worst].State = stream.StateCongested
		case stream.StateIdle:
			for i := range stats {
				stats[i].State = stream.StateIdle
			}
		}
		spare := (budgetPct - demand()) / budgetPct
		if spare < 0 {
			spare = 0
		}
		return runtime.Observation{
			Stats: stats, LoadFactors: append([]float64(nil), factors...),
			SpareBudgetFrac: spare, RelayObserved: relay, Boundary: m,
		}
	}
	// Converged when the control loop settles: the query turns stable, or
	// an adaptation round ends on a plan an earlier round already
	// produced (the best achievable plan for this configuration — further
	// rounds would just repeat it).
	stableRun := 0
	firstPlan := map[string]int{}
	wasAdapt := false
	for epoch := 1; epoch <= 64; epoch++ {
		act := rt.OnEpoch(obs())
		if act.SetLoadFactors != nil {
			copy(factors, act.SetLoadFactors)
		}
		if state() == stream.StateStable && rt.Phase() == runtime.PhaseProbe {
			stableRun++
			if stableRun >= 2 {
				return epoch - 1
			}
		} else {
			stableRun = 0
		}
		if wasAdapt && rt.Phase() == runtime.PhaseProbe {
			key := fmt.Sprint(factors)
			if prev, ok := firstPlan[key]; ok {
				return prev
			}
			firstPlan[key] = epoch
		}
		wasAdapt = rt.Phase() == runtime.PhaseAdapt
	}
	return -1
}

// String renders the table.
func (r *OpCountResult) String() string {
	var t table
	t.title("§VI-C: w/o LP-init convergence vs operator count (simulator)")
	t.row("operators", "worst", "mean", "configs")
	for _, row := range r.Rows {
		t.row(row.Operators, row.WorstEpochs, row.MeanEpochs, row.Configs)
	}
	t.line(fmt.Sprintf("paper: worst case grows to ~21 epochs at 4 operators,"))
	t.line(fmt.Sprintf("       motivating the LP initialization"))
	return t.String()
}
