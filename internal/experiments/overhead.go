package experiments

import (
	"fmt"
	"time"

	"jarvis/internal/runtime"
)

// OverheadResult measures the Jarvis runtime's own compute cost: the
// paper reports "less than 1% of a single core during Profile and Adapt
// phases" (§VI-B).
type OverheadResult struct {
	// LPInitMicros is the cost of one LP initialization (Profile→Adapt).
	LPInitMicros float64
	// EpochPct is the runtime's share of a core assuming one adaptation
	// decision per 1 s epoch.
	EpochPct float64
	Iters    int
}

// Overhead times LPInit on the S2SProbe estimates.
func Overhead() (*OverheadResult, error) {
	est := runtime.Estimates{
		CostPct:   []float64{1, 13, 71},
		Relay:     []float64{1, 0.86, 0.30},
		BudgetPct: 60,
	}
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := runtime.LPInit(est, 0); err != nil {
			return nil, err
		}
	}
	per := float64(time.Since(start).Microseconds()) / iters
	return &OverheadResult{
		LPInitMicros: per,
		EpochPct:     per / 1e6 * 100, // one decision per 1 s epoch
		Iters:        iters,
	}, nil
}

// String renders the measurement.
func (r *OverheadResult) String() string {
	var t table
	t.title("§VI-B: Jarvis runtime overhead")
	t.line(fmt.Sprintf("LP init + plan: %.1f µs per decision (%d iters)", r.LPInitMicros, r.Iters))
	t.line(fmt.Sprintf("per 1 s epoch:  %.4f%% of one core (paper: <1%%)", r.EpochPct))
	return t.String()
}
