// Package ha is Jarvis' high-availability subsystem: live snapshot
// replication from a primary stream processor to a warm standby, and
// agent failover between them.
//
// The primary's recovery manager (checkpoint.SPRecovery) already saves a
// base + delta snapshot chain and logs results exactly once; ha adds a
// Publisher that mirrors every saved snapshot and every emitted result
// batch over a dedicated replication connection, and a Standby that
// folds the stream into an in-memory state, persists it to its own
// store, mirrors the result log, and keeps a shadow SPEngine
// continuously restored — so promotion is one pointer swap away, not a
// disk restore.
//
// Split-brain is fenced by an epoch-lease token: a monotonic term
// carried in the transport's Hello/Ack handshake. Agents adopt the
// largest term any SP acked (persisted in their snapshots); a promotion
// bumps the term; and a primary that receives a Hello carrying a term
// above its own has provably been superseded — it fences itself and
// rejects the connection, so a rejoining stale primary can never apply
// epochs or emit rows for a cluster that moved on. Fencing is
// hello-time only: a partition that severs just the replication link
// while agents still reach the old primary leaves a window where both
// nodes are live until those agents reconnect (see the ROADMAP's
// lease-expiry follow-on; size -takeover-after above replication-link
// blips). Because agents ack-gate their replay buffers on
// replicated snapshots (SPRecovery withholds acks until the standby
// confirms durability), the failover loses no epoch: the agents replay
// everything past the standby's state, the standby's sequence dedup
// discards what replication already covered, and its mirrored result
// log's watermark suppresses re-emitted rows — end-to-end output stays
// exactly-once and byte-identical to an uninterrupted run.
package ha

import (
	"fmt"
	"sync"

	"jarvis/internal/obs"
)

// Health counter and gauge names exposed through obs.Registry from
// both jarvis-sp roles.
const (
	CtrFailovers          = "ha_failovers"            // standby promotions to primary
	CtrFenced             = "ha_fenced_stale_primary" // hellos rejected because the agent carried a newer term
	CtrStandbyRejected    = "ha_standby_rejected"     // hellos rejected because this node is an unpromoted standby
	CtrRestoreErrors      = "ha_standby_restore_errors"
	CtrSnapshotsPublished = "ha_snapshots_published"
	CtrSnapshotsApplied   = "ha_snapshots_applied"
	CtrRowsMirrored       = "ha_rows_mirrored"
	CtrStandbyAttaches    = "ha_standby_attaches"
	GaugeReplLagEpochs    = "ha_replication_lag_epochs" // primary progress minus newest standby-acked snapshot
	// CtrAcksWithoutStandby counts snapshots whose agent acks were
	// released with no standby attached — epochs pruned in that window
	// are recoverable only from the primary's own disk (degraded,
	// non-HA durability). A rising value with an HA deployment means the
	// standby is down or was dropped for lagging.
	CtrAcksWithoutStandby = "ha_acks_without_standby"
)

// Role is an SP node's position in the HA pair.
type Role int

const (
	// RoleStandby syncs from a primary and rejects agent traffic.
	RoleStandby Role = iota
	// RolePrimary serves agents and replicates to standbys.
	RolePrimary
	// RoleFenced is a former primary that learned a newer term exists; it
	// must not apply epochs or emit results again.
	RoleFenced
)

func (r Role) String() string {
	switch r {
	case RoleStandby:
		return "standby"
	case RolePrimary:
		return "primary"
	case RoleFenced:
		return "fenced"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Gate is the node's role and fencing-term authority; it implements
// transport.HelloGate so the receiver consults it on every sequenced
// hello. Safe for concurrent use.
type Gate struct {
	mu       sync.Mutex
	role     Role
	term     uint64
	counters *obs.Registry
}

// NewGate creates a gate in the given role. A primary's term is its
// epoch-lease token (at least 1); a standby's is 0 until promotion.
// counters may be nil (a private set is created).
func NewGate(role Role, term uint64, counters *obs.Registry) *Gate {
	if counters == nil {
		counters = obs.NewRegistry()
	}
	if role == RolePrimary && term < 1 {
		term = 1
	}
	return &Gate{role: role, term: term, counters: counters}
}

// AdmitHello implements transport.HelloGate: it rejects hellos while
// this node is a standby or fenced, fences the node when the agent
// carries a newer term (a standby was promoted past us), and otherwise
// returns the term to advertise in the ack.
func (g *Gate) AdmitHello(agentTerm uint64) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.role {
	case RoleStandby:
		g.counters.Inc(CtrStandbyRejected)
		return 0, fmt.Errorf("ha: standby, not promoted")
	case RoleFenced:
		return 0, fmt.Errorf("ha: fenced at term %d", g.term)
	}
	if agentTerm > g.term {
		g.role = RoleFenced
		g.counters.Inc(CtrFenced)
		obs.Emit(obs.Decision{
			Kind:        "fencing",
			Cause:       "hello_with_newer_term",
			BeforeState: RolePrimary.String(),
			AfterState:  RoleFenced.String(),
			Term:        agentTerm,
			Detail:      fmt.Sprintf("own term %d, agent term %d", g.term, agentTerm),
		})
		return 0, fmt.Errorf("ha: primary at term %d fenced — agent has seen term %d", g.term, agentTerm)
	}
	return g.term, nil
}

// Promote flips a standby gate to primary at the given term (a stale
// primary's gate stays fenced). It reports whether the promotion took.
// Standby.Promote counts the failover; the gate only changes authority.
func (g *Gate) Promote(term uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != RoleStandby {
		return false
	}
	g.role = RolePrimary
	g.term = term
	obs.Emit(obs.Decision{
		Kind:        "promotion",
		Cause:       "replication_link_down",
		BeforeState: RoleStandby.String(),
		AfterState:  RolePrimary.String(),
		Term:        term,
	})
	return true
}

// Role returns the current role.
func (g *Gate) Role() Role {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.role
}

// Term returns the current fencing term.
func (g *Gate) Term() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.term
}

// Counters exposes the gate's counter set (shared with the node's other
// HA components when constructed that way).
func (g *Gate) Counters() *obs.Registry { return g.counters }
