package ha

import "testing"

func TestGateRoles(t *testing.T) {
	g := NewGate(RoleStandby, 0, nil)
	if _, err := g.AdmitHello(0); err == nil {
		t.Fatal("unpromoted standby must reject hellos")
	}
	if !g.Promote(2) {
		t.Fatal("standby promotion refused")
	}
	if g.Promote(3) {
		t.Fatal("double promotion must be refused")
	}
	term, err := g.AdmitHello(0)
	if err != nil || term != 2 {
		t.Fatalf("promoted gate: term %d err %v", term, err)
	}
	if term, err = g.AdmitHello(2); err != nil || term != 2 {
		t.Fatalf("equal-term hello: term %d err %v", term, err)
	}
}

func TestGateFencesStalePrimary(t *testing.T) {
	g := NewGate(RolePrimary, 1, nil)
	if _, err := g.AdmitHello(1); err != nil {
		t.Fatalf("own-term hello rejected: %v", err)
	}
	if _, err := g.AdmitHello(2); err == nil {
		t.Fatal("hello with a newer term must fence the primary")
	}
	if g.Role() != RoleFenced {
		t.Fatalf("role = %v, want fenced", g.Role())
	}
	if g.Counters().Get(CtrFenced) != 1 {
		t.Fatalf("fenced counter = %d", g.Counters().Get(CtrFenced))
	}
	// Fenced is terminal: even an old-term hello is refused now.
	if _, err := g.AdmitHello(1); err == nil {
		t.Fatal("fenced primary must keep rejecting hellos")
	}
	if g.Promote(9) {
		t.Fatal("a fenced primary must not be promotable")
	}
}
