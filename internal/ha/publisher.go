package ha

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/obs"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// mirrorRowChunk bounds one mirrored result-log frame during an attach
// resync, so a large log tail streams in digestible frames.
const mirrorRowChunk = 8192

// subQueueDepth bounds one standby connection's unsent publishes; a
// standby that falls further behind is dropped and re-attaches with a
// full resync instead of holding a growing buffer on the primary.
const subQueueDepth = 256

// Publisher is the primary-side half of snapshot replication: it
// implements checkpoint.Replicator, fanning every saved snapshot and
// every emitted result batch out to the attached standbys, and serves
// the attach protocol (full folded state + result-log tail) on a
// dedicated listener. All methods are safe for concurrent use.
type Publisher struct {
	store    *checkpoint.Store
	logPath  string
	counters *obs.Registry

	mu         sync.Mutex
	subs       map[*subscriber]struct{}
	term       uint64
	lastPubID  uint64 // newest published snapshot's store id
	lastPubSeq uint64 // ... and its progress measure (applied epochs)
}

// subscriber is one attached standby connection.
type subscriber struct {
	conn    net.Conn
	ch      chan []byte
	closed  bool
	ackedID uint64 // newest snapshot id the standby confirmed durable
	ackSeq  uint64
}

// NewPublisher creates a replication publisher over the primary's
// snapshot store and result-log path, stamping term into every
// replicated snapshot. counters may be nil.
func NewPublisher(store *checkpoint.Store, logPath string, term uint64, counters *obs.Registry) *Publisher {
	if counters == nil {
		counters = obs.NewRegistry()
	}
	if term < 1 {
		term = 1
	}
	// Seed the lag gauge so a replication-enabled primary exposes the
	// series from startup, not only after the first publish or attach.
	counters.Set(GaugeReplLagEpochs, 0)
	return &Publisher{
		store: store, logPath: logPath, term: term, counters: counters,
		subs: make(map[*subscriber]struct{}),
	}
}

// Counters exposes the publisher's health counters.
func (p *Publisher) Counters() *obs.Registry { return p.counters }

// Serve accepts standby replication connections until the listener
// closes or ctx is cancelled.
func (p *Publisher) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ha: replication accept: %w", err)
		}
		go p.handle(conn)
	}
}

// handle runs one standby connection: attach resync, then live feed out
// and acks in.
func (p *Publisher) handle(conn net.Conn) {
	fr := wire.NewFrameReader(conn)
	hello, err := readReplHello(fr)
	if err != nil {
		_ = conn.Close()
		return
	}
	sub, err := p.attach(conn, hello)
	if err != nil {
		_ = conn.Close()
		return
	}
	p.counters.Inc(CtrStandbyAttaches)
	go p.writeLoop(sub)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			p.detach(sub)
			return
		}
		if f.StreamID != wire.ControlStreamID {
			continue
		}
		for _, rec := range f.Records {
			if ack, ok := rec.Data.(*wire.ReplAck); ok {
				p.noteAck(sub, ack)
			}
		}
	}
}

func readReplHello(fr *wire.FrameReader) (*wire.ReplHello, error) {
	f, err := fr.ReadFrame()
	if err != nil {
		return nil, err
	}
	if f.StreamID != wire.ControlStreamID || len(f.Records) != 1 {
		return nil, fmt.Errorf("ha: replication connection did not open with a hello")
	}
	hello, ok := f.Records[0].Data.(*wire.ReplHello)
	if !ok {
		return nil, fmt.Errorf("ha: replication connection opened with %T", f.Records[0].Data)
	}
	return hello, nil
}

// attach registers a new standby under the publish lock: the resync
// payload (full folded state + the result-log rows past the standby's
// mirror watermark) is assembled and queued before any later publish can
// interleave, so the standby observes one consistent prefix. Publishes
// committed to the store but not yet fanned out may be re-sent right
// after the resync; the standby skips already-applied ids and its result
// log deduplicates by watermark.
//
// Holding the lock across the disk reads stalls concurrent publishes
// (and, in sync-checkpoint mode, the epoch loop) for the duration of the
// resync assembly — accepted because attaches are rare (standby start or
// reconnect) and the alternative is a publish-fence protocol.
func (p *Publisher) attach(conn net.Conn, hello *wire.ReplHello) (*subscriber, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap, id, ok, err := p.store.LatestWithID()
	if err != nil {
		return nil, err
	}
	var resync [][]byte
	if ok {
		// The folded chain is a complete state: replicate it as a full
		// snapshot standing in for id, so live deltas chain onto it.
		snap.Delta = false
		snap.BaseID = 0
		snap.Meta = nil
		data, err := encodeSnapshot(snap)
		if err != nil {
			return nil, err
		}
		frame, err := replSnapshotFrame(&wire.ReplSnapshot{
			ID: id, Seq: snap.Seq, Term: p.term, Data: data,
		})
		if err != nil {
			return nil, err
		}
		resync = append(resync, frame)
	}
	tail, err := p.logTail(hello.LogWM)
	if err != nil {
		return nil, err
	}
	resync = append(resync, tail...)
	// The queue is sized to hold the whole resync payload up front (a
	// long result-log tail can exceed the steady-state depth), plus
	// subQueueDepth of headroom for live publishes.
	sub := &subscriber{conn: conn, ch: make(chan []byte, len(resync)+subQueueDepth)}
	for _, frame := range resync {
		sub.ch <- frame
	}
	p.subs[sub] = struct{}{}
	p.updateLagLocked()
	return sub, nil
}

// logTail encodes the primary's result-log rows newer than wm as
// mirrored-row frames.
func (p *Publisher) logTail(wm int64) ([][]byte, error) {
	rows, err := checkpoint.ReadResultLog(p.logPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var fresh telemetry.Batch
	for _, rec := range rows {
		if rec.Time > wm {
			fresh = append(fresh, rec)
		}
	}
	var out [][]byte
	for len(fresh) > 0 {
		n := len(fresh)
		if n > mirrorRowChunk {
			n = mirrorRowChunk
		}
		frame, err := replRowsFrame(fresh[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, frame)
		fresh = fresh[n:]
	}
	return out, nil
}

// writeLoop drains one standby's queue onto its connection.
func (p *Publisher) writeLoop(sub *subscriber) {
	for frame := range sub.ch {
		if _, err := sub.conn.Write(frame); err != nil {
			p.detach(sub)
			// Keep draining so a concurrent broadcast never blocks; the
			// channel closes under the publish lock in detach.
			continue
		}
	}
}

func (p *Publisher) detach(sub *subscriber) {
	p.mu.Lock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
		delete(p.subs, sub)
		p.updateLagLocked()
	}
	p.mu.Unlock()
	_ = sub.conn.Close()
}

func (p *Publisher) noteAck(sub *subscriber, ack *wire.ReplAck) {
	p.mu.Lock()
	if ack.ID > sub.ackedID {
		sub.ackedID = ack.ID
	}
	if ack.Seq > sub.ackSeq {
		sub.ackSeq = ack.Seq
	}
	p.updateLagLocked()
	p.mu.Unlock()
}

// updateLagLocked refreshes the replication-lag gauge: the primary's
// newest published progress minus the slowest attached standby's acked
// progress, in epochs.
func (p *Publisher) updateLagLocked() {
	if len(p.subs) == 0 {
		p.counters.Set(GaugeReplLagEpochs, 0)
		return
	}
	var minAck uint64 = ^uint64(0)
	for sub := range p.subs {
		if sub.ackSeq < minAck {
			minAck = sub.ackSeq
		}
	}
	lag := int64(0)
	if p.lastPubSeq > minAck {
		lag = int64(p.lastPubSeq - minAck)
	}
	p.counters.Set(GaugeReplLagEpochs, lag)
}

// broadcastLocked queues one encoded frame on every attached standby;
// one that has fallen a full queue behind is dropped — its connection is
// closed so both ends notice and the standby re-attaches with a resync.
func (p *Publisher) broadcastLocked(frame []byte) {
	for sub := range p.subs {
		select {
		case sub.ch <- frame:
		default:
			sub.closed = true
			close(sub.ch)
			delete(p.subs, sub)
			_ = sub.conn.Close()
		}
	}
}

// PublishRows implements checkpoint.Replicator: mirror freshly emitted
// result rows to every standby.
func (p *Publisher) PublishRows(rows telemetry.Batch) {
	frame, err := replRowsFrame(rows)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.broadcastLocked(frame)
	p.mu.Unlock()
	p.counters.Add(CtrRowsMirrored, int64(len(rows)))
}

// PublishSnapshot implements checkpoint.Replicator: replicate one saved
// snapshot (full or delta) under its store id.
func (p *Publisher) PublishSnapshot(id uint64, snap *checkpoint.Snapshot) {
	data, err := encodeSnapshot(snap)
	if err != nil {
		return
	}
	p.mu.Lock()
	frame, err := replSnapshotFrame(&wire.ReplSnapshot{
		ID: id, BaseID: snap.BaseID, Seq: snap.Seq, Term: p.term, Delta: snap.Delta, Data: data,
	})
	if err != nil {
		p.mu.Unlock()
		return
	}
	p.lastPubID, p.lastPubSeq = id, snap.Seq
	p.broadcastLocked(frame)
	p.updateLagLocked()
	p.mu.Unlock()
	p.counters.Inc(CtrSnapshotsPublished)
}

// WaitDurable implements checkpoint.Replicator: block until every
// attached standby acked snapshot id, or no standby is attached, or the
// timeout expires. SPRecovery gates agent acks on it so pruned epochs
// are always recoverable from a standby while one is attached.
//
// With zero standbys attached acks proceed on primary durability alone —
// warm-standby replication is asynchronous by design, and stalling every
// agent because the standby is down (or not started yet) would overflow
// their bounded replay buffers and turn a durability downgrade into
// actual loss. The degraded window is made visible instead:
// CtrAcksWithoutStandby counts every snapshot acked that way.
func (p *Publisher) WaitDurable(id uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		attached := len(p.subs)
		ok := true
		for sub := range p.subs {
			if sub.ackedID < id {
				ok = false
				break
			}
		}
		p.mu.Unlock()
		if ok {
			if attached == 0 {
				p.counters.Inc(CtrAcksWithoutStandby)
			}
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Standbys reports how many standbys are currently attached.
func (p *Publisher) Standbys() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// Lag returns the current replication-lag gauge in epochs.
func (p *Publisher) Lag() int64 { return p.counters.Get(GaugeReplLagEpochs) }

// Close drops every attached standby.
func (p *Publisher) Close() error {
	p.mu.Lock()
	subs := make([]*subscriber, 0, len(p.subs))
	for sub := range p.subs {
		subs = append(subs, sub)
	}
	p.mu.Unlock()
	for _, sub := range subs {
		p.detach(sub)
	}
	return nil
}

// encodeSnapshot serializes a snapshot to the byte string a
// wire.ReplSnapshot carries.
func encodeSnapshot(snap *checkpoint.Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// replSnapshotFrame encodes one ReplSnapshot control frame.
func replSnapshotFrame(rep *wire.ReplSnapshot) ([]byte, error) {
	rec := telemetry.Record{WireSize: 40 + len(rep.Data), Data: rep}
	return encodeFrame(wire.Frame{StreamID: wire.ControlStreamID, Records: telemetry.Batch{rec}}, false)
}

// replRowsFrame encodes one mirrored result-row frame.
func replRowsFrame(rows telemetry.Batch) ([]byte, error) {
	return encodeFrame(wire.Frame{StreamID: wire.ReplRowsStreamID, Records: rows}, true)
}

func encodeFrame(f wire.Frame, columnar bool) ([]byte, error) {
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	fw.SetColumnar(columnar)
	if err := fw.WriteFrame(f); err != nil {
		return nil, err
	}
	if err := fw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// replAckFrame encodes one ReplAck control frame (standby side).
func replAckFrame(id, seq uint64) ([]byte, error) {
	rec := telemetry.Record{WireSize: 33, Data: &wire.ReplAck{ID: id, Seq: seq}}
	return encodeFrame(wire.Frame{StreamID: wire.ControlStreamID, Records: telemetry.Batch{rec}}, false)
}

// replHelloFrame encodes the standby's attach hello.
func replHelloFrame(lastID uint64, logWM int64) ([]byte, error) {
	rec := telemetry.Record{WireSize: 33, Data: &wire.ReplHello{LastID: lastID, LogWM: logWM}}
	return encodeFrame(wire.Frame{StreamID: wire.ControlStreamID, Records: telemetry.Batch{rec}}, false)
}

var _ checkpoint.Replicator = (*Publisher)(nil)
