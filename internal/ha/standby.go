package ha

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/core"
	"jarvis/internal/obs"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
)

// reconnectDelay paces the standby's redial loop while the primary is
// unreachable.
const reconnectDelay = 100 * time.Millisecond

// Standby is the warm-standby half of the HA pair. It attaches to the
// primary's replication listener, folds the replicated snapshot stream
// into an in-memory state (exactly the store's base + delta chain
// reconstruction), persists each snapshot to its own local store,
// mirrors the primary's result log, and keeps a shadow SPEngine
// continuously restored to the newest replicated cut. Promote turns the
// warm state into a serving primary without touching disk.
type Standby struct {
	proc     *core.Processor
	engine   *stream.SPEngine
	store    *checkpoint.Store
	rlog     *checkpoint.ResultLog
	counters *obs.Registry

	maxChain int
	retain   int

	mu            sync.Mutex
	folded        *checkpoint.Snapshot
	lastPrimaryID uint64 // newest primary store id applied
	lastLocalID   uint64 // newest local store id saved
	localChain    int    // local deltas since the last local full base
	primaryTerm   uint64 // newest term seen in the replication stream
	connected     bool
	lastContact   time.Time
	promoted      bool
	conn          net.Conn
}

// NewStandby wires a standby over the node's shadow processor and a
// local durable directory (snapshot store + mirrored result log). The
// processor must be built from the same query as the primary's, so
// replicated stage ids line up; shadow loads go through
// Processor.LoadSnapshot, which also keeps the sharded in-process
// ingest state coherent with the restored root engine after promotion.
// counters may be nil.
func NewStandby(proc *core.Processor, dir string, counters *obs.Registry) (*Standby, error) {
	if counters == nil {
		counters = obs.NewRegistry()
	}
	store, err := checkpoint.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	rlog, err := checkpoint.OpenResultLog(filepath.Join(dir, "results.log"))
	if err != nil {
		return nil, err
	}
	s := &Standby{
		proc: proc, engine: proc.Engine(), store: store, rlog: rlog, counters: counters,
		maxChain: checkpoint.DefaultMaxChain, retain: checkpoint.DefaultRetain,
		lastContact: time.Now(),
	}
	// Warm the shadow from whatever a previous incarnation replicated;
	// the primary id of that state is unknown, so the next attach resyncs
	// in full — this only shortens the promotion path if the primary is
	// already gone when we come up. The persisted term survives the
	// restart, so a re-promoted standby still supersedes the old primary.
	if snap, ok, err := store.Latest(); err == nil && ok {
		s.folded = snap
		s.primaryTerm = snap.Term
		if lerr := s.loadShadow(snap); lerr != nil {
			counters.Inc(CtrRestoreErrors)
		}
	}
	return s, nil
}

// Engine returns the shadow engine (bind the agent-facing receiver to
// it so promotion serves the warm state).
func (s *Standby) Engine() *stream.SPEngine { return s.engine }

// ResultLog returns the mirrored result log.
func (s *Standby) ResultLog() *checkpoint.ResultLog { return s.rlog }

// Store returns the standby's local snapshot store.
func (s *Standby) Store() *checkpoint.Store { return s.store }

// Counters exposes the standby's health counters.
func (s *Standby) Counters() *obs.Registry { return s.counters }

// Connected reports whether a replication connection is live.
func (s *Standby) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}

// DownFor returns how long the replication link has been down (0 while
// connected) — the signal takeover policies watch.
func (s *Standby) DownFor() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.connected {
		return 0
	}
	return time.Since(s.lastContact)
}

// PrimaryTerm returns the newest fencing term observed from the primary.
func (s *Standby) PrimaryTerm() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primaryTerm
}

// LastApplied returns the newest primary snapshot id applied.
func (s *Standby) LastApplied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastPrimaryID
}

// Run dials the primary's replication address and consumes the
// replication stream, reconnecting until ctx is cancelled or the standby
// is promoted. Each (re)attach announces the mirror's result-log
// watermark so the primary only re-sends the missing log tail, and
// receives a full state resync.
func (s *Standby) Run(ctx context.Context, primaryAddr string) {
	for ctx.Err() == nil && !s.isPromoted() {
		conn, err := net.DialTimeout("tcp", primaryAddr, time.Second)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(reconnectDelay):
			}
			continue
		}
		s.serveConn(ctx, conn)
		select {
		case <-ctx.Done():
			return
		case <-time.After(reconnectDelay):
		}
	}
}

func (s *Standby) isPromoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// serveConn runs one replication connection to completion.
func (s *Standby) serveConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return
	}
	s.conn = conn
	hello, err := replHelloFrame(s.lastPrimaryID, s.rlog.EmittedWM())
	s.mu.Unlock()
	if err != nil {
		return
	}
	if _, err := conn.Write(hello); err != nil {
		return
	}
	s.setConnected(true)
	defer s.setConnected(false)
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	fr := wire.NewFrameReader(conn)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		s.touch()
		switch {
		case f.StreamID == wire.ReplRowsStreamID:
			if _, err := s.appendMirror(f.Records); err != nil {
				s.counters.Inc(CtrRestoreErrors)
				return
			}
		case f.StreamID == wire.ControlStreamID:
			for _, rec := range f.Records {
				rep, ok := rec.Data.(*wire.ReplSnapshot)
				if !ok {
					continue
				}
				if err := s.ApplySnapshot(rep); err != nil {
					s.counters.Inc(CtrRestoreErrors)
					// Desync (e.g. a delta whose base we never saw): drop
					// the connection and re-attach for a full resync.
					s.mu.Lock()
					s.lastPrimaryID = 0
					s.mu.Unlock()
					return
				}
				if ack, aerr := replAckFrame(rep.ID, rep.Seq); aerr == nil {
					if _, werr := conn.Write(ack); werr != nil {
						return
					}
				}
			}
		}
	}
}

func (s *Standby) setConnected(v bool) {
	s.mu.Lock()
	s.connected = v
	s.lastContact = time.Now()
	if !v {
		s.conn = nil
	}
	s.mu.Unlock()
}

func (s *Standby) touch() {
	s.mu.Lock()
	s.lastContact = time.Now()
	s.mu.Unlock()
}

// appendMirror folds mirrored result rows into the local result log
// (its watermark drops rows the mirror already holds). After promotion
// the log belongs to the new primary's recovery manager, so late frames
// still buffered on the dying replication connection are discarded.
func (s *Standby) appendMirror(rows telemetry.Batch) (telemetry.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil, nil
	}
	kept, err := s.rlog.Append(rows)
	if err == nil {
		s.counters.Add(CtrRowsMirrored, int64(len(kept)))
	}
	return kept, err
}

// ApplySnapshot applies one replicated snapshot: decode, fold into the
// in-memory state, persist to the local store, and reload the shadow
// engine so it always mirrors the newest replicated cut. Already-applied
// ids (duplicates around an attach resync) are skipped; a delta whose
// base was never applied is a desync error.
func (s *Standby) ApplySnapshot(rep *wire.ReplSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		// Promote closed the replication connection, but its reader may
		// still drain already-buffered frames; loading them now would
		// reset the live serving engine out from under the failed-over
		// agents.
		return nil
	}
	if rep.ID <= s.lastPrimaryID {
		return nil
	}
	if rep.Term > s.primaryTerm {
		s.primaryTerm = rep.Term
	}
	snap, err := checkpoint.DecodeSnapshot(bytes.NewReader(rep.Data))
	if err != nil {
		return fmt.Errorf("ha: decode replicated snapshot %d: %w", rep.ID, err)
	}
	if rep.Delta {
		if s.folded == nil || rep.BaseID != s.lastPrimaryID {
			return fmt.Errorf("ha: delta %d chains onto %d, have %d", rep.ID, rep.BaseID, s.lastPrimaryID)
		}
		s.folded = checkpoint.ApplyDelta(s.folded, snap)
	} else {
		s.folded = snap
	}
	s.lastPrimaryID = rep.ID
	if err := s.saveLocalLocked(snap, rep.Delta); err != nil {
		return err
	}
	if err := s.loadShadow(s.folded); err != nil {
		return fmt.Errorf("ha: refresh shadow engine: %w", err)
	}
	s.counters.Inc(CtrSnapshotsApplied)
	return nil
}

// saveLocalLocked persists a replicated snapshot in the standby's own
// store. Deltas chain onto the previous local save (the replication
// stream is linear, so the base is always the preceding snapshot);
// chains are bounded like the primary's, re-basing on the folded full
// state, and compacted to the retention.
func (s *Standby) saveLocalLocked(snap *checkpoint.Snapshot, delta bool) error {
	full := !delta || s.lastLocalID == 0 || s.localChain >= s.maxChain
	var toSave *checkpoint.Snapshot
	if full {
		cp := *s.folded
		cp.Delta, cp.BaseID, cp.Meta = false, 0, nil
		toSave = &cp
	} else {
		cp := *snap
		cp.BaseID = s.lastLocalID
		toSave = &cp
	}
	toSave.Term = s.primaryTerm
	id, err := s.store.Save(toSave)
	if err != nil {
		s.lastLocalID, s.localChain = 0, 0
		return fmt.Errorf("ha: save replicated snapshot locally: %w", err)
	}
	s.lastLocalID = id
	if full {
		s.localChain = 0
		if s.retain > 0 {
			if err := s.store.Compact(s.retain); err != nil {
				return fmt.Errorf("ha: compact local store: %w", err)
			}
		}
	} else {
		s.localChain++
	}
	return nil
}

// loadShadow rebuilds the shadow engine from a folded snapshot. The
// rebuild is O(total state) even for a small delta: delta rows carry a
// group's full superseding state, and the engine's merge path *adds*
// partials, so absorbing a delta onto a warm engine would double-count
// — incremental apply needs a replace-group operator mode (ROADMAP HA
// follow-on). The cost is standby-side only and off the primary's epoch
// path.
func (s *Standby) loadShadow(snap *checkpoint.Snapshot) error {
	wms := make(map[uint32]int64, len(snap.Sources))
	for src, st := range snap.Sources {
		wms[src] = st.Watermark
	}
	return s.proc.LoadSnapshot(snap.Stages, wms)
}

// NextTerm returns the fencing term a promotion from this standby must
// use: past every term the dead primary could have acked to an agent.
func (s *Standby) NextTerm() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	term := s.primaryTerm
	if term < 1 {
		term = 1
	}
	return term + 1
}

// Promote turns the warm standby into a serving primary: the shadow
// engine (already restored to the newest replicated cut) is adopted
// as-is, the receiver's dedup frontiers resume from the replicated
// per-source sequences — so failed-over agents replay exactly the epochs
// replication did not cover — and a recovery manager over the local
// store and mirrored result log continues checkpointing and exactly-once
// emission where the primary left off. Stop feeding Run's connection
// first (it refuses new connections once promoted). every/retain
// configure the new primary's snapshot cadence and compaction.
func (s *Standby) Promote(rc *transport.Receiver, every, retain int) (*checkpoint.SPRecovery, error) {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return nil, fmt.Errorf("ha: already promoted")
	}
	s.promoted = true
	if s.conn != nil {
		_ = s.conn.Close()
	}
	folded := s.folded
	s.mu.Unlock()
	if folded != nil {
		for src, st := range folded.Sources {
			rc.RegisterSource(src)
			rc.SetApplied(src, st.AppliedSeq)
		}
	}
	rm := checkpoint.NewSPRecovery(s.store, s.rlog, s.engine, rc, every)
	rm.SetRetention(retain)
	if folded != nil {
		rm.Prime(folded)
	}
	// The new primary's snapshots carry the promoted term, so even its
	// own later restarts keep superseding the old primary.
	rm.SetTerm(s.NextTerm())
	s.counters.Inc(CtrFailovers)
	return rm, nil
}
