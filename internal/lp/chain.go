package lp

import (
	"fmt"
	"math"
)

// ChainProblem is the data-level partitioning LP of Eq. 3 in the paper.
// A query pipeline has M operators Op_1..Op_M. Operator i has relay ratio
// R[i-1] (output/input size ratio, in [0,1]) and per-record compute cost
// C[i-1] ≥ 0 (fraction of the epoch budget consumed by one incoming
// record). Budget is the compute available per injected record, i.e. the
// paper's C/Nr.
//
// The decision variables are effective load factors e_i = Π_{j≤i} p_j:
//
//	minimize   Σ_i (Π_{j<i} r_j)·(e_{i-1} − e_i)      (drained records)
//	s.t.       Σ_i (Π_{j<i} r_j)·e_i·c_i ≤ Budget
//	           0 ≤ e_i ≤ e_{i-1},  e_0 = 1
type ChainProblem struct {
	R      []float64
	C      []float64
	Budget float64
}

// ChainSolution is the solved partitioning plan.
type ChainSolution struct {
	// E are the effective load factors e_1..e_M.
	E []float64
	// P are the per-proxy load factors p_i = e_i/e_{i-1} (1 where the
	// upstream is fully drained and the value is immaterial).
	P []float64
	// Drained is the objective value: the fraction of (relay-weighted)
	// records drained from the data source.
	Drained float64
	// BudgetUsed is Σ w_i·e_i·c_i, the compute consumed per record.
	BudgetUsed float64
}

func (cp ChainProblem) validate() error {
	if len(cp.R) == 0 || len(cp.R) != len(cp.C) {
		return fmt.Errorf("%w: need equal, nonzero R/C lengths (got %d/%d)",
			ErrBadProblem, len(cp.R), len(cp.C))
	}
	for i := range cp.R {
		if cp.R[i] < 0 || cp.R[i] > 1 || math.IsNaN(cp.R[i]) {
			return fmt.Errorf("%w: relay ratio %d = %v outside [0,1]", ErrBadProblem, i, cp.R[i])
		}
		if cp.C[i] < 0 || math.IsNaN(cp.C[i]) || math.IsInf(cp.C[i], 0) {
			return fmt.Errorf("%w: cost %d = %v negative or non-finite", ErrBadProblem, i, cp.C[i])
		}
	}
	if cp.Budget < 0 || math.IsNaN(cp.Budget) {
		return fmt.Errorf("%w: budget %v", ErrBadProblem, cp.Budget)
	}
	return nil
}

// Weights returns w_i = Π_{j<i} r_j for i = 1..M (w_1 = 1).
func (cp ChainProblem) Weights() []float64 {
	w := make([]float64, len(cp.R))
	acc := 1.0
	for i := range cp.R {
		w[i] = acc
		acc *= cp.R[i]
	}
	return w
}

// Evaluate computes the drained fraction and budget use for a given vector
// of effective load factors (not necessarily optimal). Used by tests and
// by baselines that fix e directly.
func (cp ChainProblem) Evaluate(e []float64) (drained, budgetUsed float64) {
	w := cp.Weights()
	prev := 1.0
	for i := range e {
		drained += w[i] * (prev - e[i])
		budgetUsed += w[i] * e[i] * cp.C[i]
		prev = e[i]
	}
	return drained, budgetUsed
}

// SolveChain computes an optimal plan exploiting the chain structure.
// Substituting δ_k = e_k − e_{k+1} (δ_M = e_M) turns Eq. 3 into
//
//	maximize Σ_k Γ_k δ_k   s.t.  Σ_k δ_k ≤ 1,  Σ_k A_k δ_k ≤ Budget,  δ ≥ 0
//
// with Γ_k = Σ_{i≤k} γ_i (prefix gain) and A_k = Σ_{i≤k} w_i c_i (prefix
// cost). An LP with two constraints has an optimum with at most two
// nonzero δ's, so enumerating singletons and pairs is exact and O(M²).
func SolveChain(cp ChainProblem) (ChainSolution, error) {
	if err := cp.validate(); err != nil {
		return ChainSolution{}, err
	}
	m := len(cp.R)
	w := cp.Weights()

	// γ_i: marginal gain of raising e_i alone; Γ_k and A_k: prefix sums.
	gamma := make([]float64, m)
	for i := 0; i < m-1; i++ {
		gamma[i] = w[i] - w[i+1]
	}
	gamma[m-1] = w[m-1]
	G := make([]float64, m) // Γ_k
	A := make([]float64, m) // A_k
	accG, accA := 0.0, 0.0
	for k := 0; k < m; k++ {
		accG += gamma[k]
		accA += w[k] * cp.C[k]
		G[k] = accG
		A[k] = accA
	}

	bestObj := 0.0
	bestDelta := make([]float64, m)

	try := func(delta []float64) {
		obj := 0.0
		for k := range delta {
			obj += G[k] * delta[k]
		}
		if obj > bestObj+eps {
			bestObj = obj
			copy(bestDelta, delta)
		}
	}

	tmp := make([]float64, m)
	// Singletons: put as much as possible on one k.
	for k := 0; k < m; k++ {
		for i := range tmp {
			tmp[i] = 0
		}
		d := 1.0
		if A[k] > eps {
			d = math.Min(1, cp.Budget/A[k])
		}
		tmp[k] = d
		try(tmp)
	}
	// Pairs: both constraints binding.
	for k := 0; k < m; k++ {
		for l := k + 1; l < m; l++ {
			det := A[l] - A[k]
			if math.Abs(det) <= eps {
				continue
			}
			dk := (A[l] - cp.Budget) / det
			dl := (cp.Budget - A[k]) / det
			if dk < -eps || dl < -eps || dk+dl > 1+eps {
				continue
			}
			for i := range tmp {
				tmp[i] = 0
			}
			tmp[k] = math.Max(0, dk)
			tmp[l] = math.Max(0, dl)
			try(tmp)
		}
	}

	// Reconstruct e from δ: e_i = Σ_{k≥i} δ_k.
	e := make([]float64, m)
	suffix := 0.0
	for i := m - 1; i >= 0; i-- {
		suffix += bestDelta[i]
		e[i] = math.Min(1, suffix)
	}
	sol := ChainSolution{E: e, P: LoadFactors(e)}
	sol.Drained, sol.BudgetUsed = cp.Evaluate(e)
	return sol, nil
}

// LoadFactors converts effective load factors e into per-proxy load
// factors p (p_i = e_i / e_{i-1}). When the upstream is fully drained
// (e_{i-1} = 0) the ratio is undefined and p_i is set to 0 so stragglers
// drain too.
func LoadFactors(e []float64) []float64 {
	p := make([]float64, len(e))
	prev := 1.0
	for i := range e {
		if prev <= eps {
			p[i] = 0
		} else {
			p[i] = clamp01(e[i] / prev)
		}
		prev = e[i]
	}
	return p
}

// EffectiveFactors is the inverse of LoadFactors: e_i = Π_{j≤i} p_j.
func EffectiveFactors(p []float64) []float64 {
	e := make([]float64, len(p))
	acc := 1.0
	for i := range p {
		acc *= clamp01(p[i])
		e[i] = acc
	}
	return e
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ToProblem lowers the chain LP into the general simplex form so the two
// solvers can be cross-checked: variables are e_1..e_M, objective
// maximizes Σ γ_i e_i (we negate for minimization), constraints are the
// budget row plus the chain rows e_i − e_{i-1} ≤ 0 and e_1 ≤ 1.
func (cp ChainProblem) ToProblem() Problem {
	m := len(cp.R)
	w := cp.Weights()
	c := make([]float64, m)
	for i := 0; i < m-1; i++ {
		c[i] = -(w[i] - w[i+1])
	}
	c[m-1] = -w[m-1]

	var rows [][]float64
	var rhs []float64
	budget := make([]float64, m)
	for i := 0; i < m; i++ {
		budget[i] = w[i] * cp.C[i]
	}
	rows = append(rows, budget)
	rhs = append(rhs, cp.Budget)

	e1 := make([]float64, m)
	e1[0] = 1
	rows = append(rows, e1)
	rhs = append(rhs, 1)

	for i := 1; i < m; i++ {
		row := make([]float64, m)
		row[i] = 1
		row[i-1] = -1
		rows = append(rows, row)
		rhs = append(rhs, 0)
	}
	return Problem{C: c, A: rows, B: rhs}
}
