package lp

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// s2sChain is the calibrated S2SProbe pipeline: W (cheap, relay 1),
// F (13% CPU, relay 0.86), G+R (relay 0.3). Costs are per-record fractions
// of the budget at the experiment's input rate.
func s2sChain(budget float64) ChainProblem {
	return ChainProblem{
		R:      []float64{1.0, 0.86, 0.30},
		C:      []float64{0.01, 0.13, 0.715 / 0.86},
		Budget: budget,
	}
}

func TestSolveChainFullBudget(t *testing.T) {
	sol, err := SolveChain(s2sChain(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Ample budget: run everything locally.
	for i, e := range sol.E {
		if math.Abs(e-1) > 1e-6 {
			t.Fatalf("e[%d] = %v, want 1 (solution %+v)", i, e, sol)
		}
	}
	if sol.Drained > 1e-6 {
		t.Fatalf("drained = %v, want 0", sol.Drained)
	}
}

func TestSolveChainZeroBudget(t *testing.T) {
	sol, err := SolveChain(s2sChain(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range sol.E {
		if e > 1e-9 {
			t.Fatalf("e[%d] = %v, want 0", i, e)
		}
	}
	if math.Abs(sol.Drained-1) > 1e-6 {
		t.Fatalf("drained = %v, want 1 (everything drains at the head)", sol.Drained)
	}
}

func TestSolveChain80PercentBudget(t *testing.T) {
	// The Fig. 3 scenario: 80% budget cannot run the full pipeline
	// (needs ≈85%), so G+R must process a partial share while W and F run
	// fully — the signature data-level partitioning outcome.
	sol, err := SolveChain(s2sChain(0.80))
	if err != nil {
		t.Fatal(err)
	}
	// Some of G+R's input must be processed locally (the signature
	// data-level outcome: operator-level partitioning could not run G+R
	// at all within 80%).
	if sol.E[2] <= 0.8 || sol.E[2] >= 1 {
		t.Fatalf("G+R share = %v, want partial in (0.8, 1)", sol.E[2])
	}
	if sol.BudgetUsed > 0.80+1e-6 {
		t.Fatalf("budget exceeded: %v", sol.BudgetUsed)
	}
	// Budget should be fully used (no idle waste).
	if sol.BudgetUsed < 0.80-1e-6 {
		t.Fatalf("budget underused: %v", sol.BudgetUsed)
	}
	// The LP plan must be at least as good as the paper's illustrative
	// "run W,F fully, G+R partially" plan.
	cp := s2sChain(0.80)
	x := (0.80 - 0.01 - 0.13) / (0.86 * (0.715 / 0.86)) // e3 when e1=e2=1
	paperDrain, paperUsed := cp.Evaluate([]float64{1, 1, x})
	if paperUsed > 0.80+1e-9 {
		t.Fatalf("reference plan infeasible: used %v", paperUsed)
	}
	if sol.Drained > paperDrain+1e-9 {
		t.Fatalf("LP drained %v > reference plan %v", sol.Drained, paperDrain)
	}
}

func TestSolveChainZeroCosts(t *testing.T) {
	sol, err := SolveChain(ChainProblem{R: []float64{1, 1}, C: []float64{0, 0}, Budget: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sol.E {
		if math.Abs(e-1) > 1e-9 {
			t.Fatalf("free operators should run fully: %+v", sol)
		}
	}
}

func TestSolveChainValidation(t *testing.T) {
	bad := []ChainProblem{
		{},
		{R: []float64{0.5}, C: nil},
		{R: []float64{1.5}, C: []float64{1}, Budget: 1},
		{R: []float64{0.5}, C: []float64{-1}, Budget: 1},
		{R: []float64{0.5}, C: []float64{1}, Budget: -1},
		{R: []float64{math.NaN()}, C: []float64{1}, Budget: 1},
	}
	for i, cp := range bad {
		if _, err := SolveChain(cp); !errors.Is(err, ErrBadProblem) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestLoadFactorsRoundTrip(t *testing.T) {
	e := []float64{1, 0.9, 0.45, 0.45, 0}
	p := LoadFactors(e)
	back := EffectiveFactors(p)
	for i := range e {
		if math.Abs(back[i]-e[i]) > 1e-9 {
			t.Fatalf("e[%d]: %v -> %v", i, e[i], back[i])
		}
	}
}

func TestLoadFactorsDrainedUpstream(t *testing.T) {
	p := LoadFactors([]float64{0, 0, 0})
	if p[0] != 0 || p[1] != 0 || p[2] != 0 {
		t.Fatalf("p = %v", p)
	}
}

// Property: SolveChain matches the general simplex on random instances.
func TestSolveChainMatchesSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+99))
		m := 1 + rng.IntN(5)
		cp := ChainProblem{
			R:      make([]float64, m),
			C:      make([]float64, m),
			Budget: rng.Float64() * 1.2,
		}
		for i := 0; i < m; i++ {
			cp.R[i] = rng.Float64()
			cp.C[i] = rng.Float64()
		}
		chain, err := SolveChain(cp)
		if err != nil {
			return false
		}
		x, obj, err := Solve(cp.ToProblem())
		if err != nil {
			return false
		}
		// Simplex minimizes -(gain); total drain = w_1 + obj.
		simplexDrain := 1.0 + obj
		if math.Abs(chain.Drained-simplexDrain) > 1e-6 {
			t.Logf("seed %d: chain drain %v, simplex drain %v (e=%v, x=%v)",
				seed, chain.Drained, simplexDrain, chain.E, x)
			return false
		}
		// Feasibility of the chain solution.
		_, used := cp.Evaluate(chain.E)
		if used > cp.Budget+1e-6 {
			return false
		}
		prev := 1.0
		for _, e := range chain.E {
			if e > prev+1e-9 || e < -1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveChain is at least as good as a dense grid search.
func TestSolveChainBeatsGridSearch(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		cp := ChainProblem{
			R:      []float64{rng.Float64(), rng.Float64()},
			C:      []float64{rng.Float64(), rng.Float64()},
			Budget: rng.Float64(),
		}
		sol, err := SolveChain(cp)
		if err != nil {
			t.Fatal(err)
		}
		const steps = 40
		best := math.Inf(1)
		for i := 0; i <= steps; i++ {
			for j := 0; j <= i; j++ {
				e := []float64{float64(i) / steps, float64(j) / steps}
				d, used := cp.Evaluate(e)
				if used <= cp.Budget+1e-12 && d < best {
					best = d
				}
			}
		}
		if sol.Drained > best+1e-6 {
			t.Fatalf("trial %d: chain %v worse than grid %v (cp=%+v)", trial, sol.Drained, best, cp)
		}
	}
}

func TestEvaluateMatchesDefinition(t *testing.T) {
	cp := s2sChain(0.8)
	e := []float64{1, 0.5, 0.25}
	drained, used := cp.Evaluate(e)
	// Manual: w = [1, 1, 0.86]
	// drained = 1*(1-1) + 1*(1-0.5) + 0.86*(0.5-0.25) = 0.715
	if math.Abs(drained-0.715) > 1e-9 {
		t.Fatalf("drained = %v", drained)
	}
	wantUsed := 1*1*0.01 + 1*0.5*0.13 + 0.86*0.25*(0.715/0.86)
	if math.Abs(used-wantUsed) > 1e-9 {
		t.Fatalf("used = %v, want %v", used, wantUsed)
	}
}

func BenchmarkSolveChain(b *testing.B) {
	cp := s2sChain(0.6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveChain(cp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexEq3(b *testing.B) {
	p := s2sChain(0.6).ToProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
