// Package lp provides the linear-programming machinery behind
// StepWise-Adapt's model-based step. The paper transforms the non-convex
// data-level partitioning problem (Eq. 2) into a linear program over
// effective load factors e_i (Eq. 3); this package offers
//
//   - a general dense two-phase simplex solver (Solve), and
//   - a specialized O(M²) greedy solver for the Eq. 3 chain structure
//     (SolveChain), cross-validated against the simplex in tests.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the solvers.
var (
	// ErrInfeasible indicates the constraint set has no solution.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded indicates the objective is unbounded below.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrBadProblem indicates malformed inputs (dimension mismatch, NaN).
	ErrBadProblem = errors.New("lp: malformed problem")
)

const eps = 1e-9

// Problem is a linear program in standard computational form:
//
//	minimize    cᵀx
//	subject to  A x ≤ b
//	            x ≥ 0
//
// Equality constraints can be expressed as two opposing inequalities.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // constraint matrix, m rows of length n
	B []float64   // right-hand sides, length m
}

func (p *Problem) validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("%w: %d constraint rows but %d rhs entries", ErrBadProblem, len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("%w: row %d has %d cols, want %d", ErrBadProblem, i, len(row), n)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite coefficient in row %d", ErrBadProblem, i)
			}
		}
	}
	for _, v := range p.C {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite objective coefficient", ErrBadProblem)
		}
	}
	for _, v := range p.B {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite rhs", ErrBadProblem)
		}
	}
	return nil
}

// Solve runs a two-phase dense simplex with Bland's anti-cycling rule and
// returns an optimal x and objective value.
func Solve(p Problem) (x []float64, obj float64, err error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	m := len(p.A)

	// Build tableau with slack variables: columns [x (n) | s (m) | rhs].
	// Rows [constraints (m) | objective | phase-1 objective].
	cols := n + m + 1
	t := make([][]float64, m+2)
	for i := range t {
		t[i] = make([]float64, cols)
	}
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		copy(t[i], p.A[i])
		t[i][n+i] = 1
		t[i][cols-1] = p.B[i]
		basis[i] = n + i
		// Normalize negative rhs by multiplying the row by -1; the slack
		// then has coefficient -1, so the basis needs an artificial
		// variable. To keep the implementation simple we use the "big-M
		// free" two-phase method below instead: phase 1 minimizes the sum
		// of infeasibilities driven by rows with negative rhs.
	}
	for j := 0; j < n; j++ {
		t[m][j] = p.C[j]
	}

	// Phase 1: if any rhs is negative, the all-slack basis is infeasible.
	// We pivot to feasibility using the standard dual-simplex-style
	// approach: repeatedly select a row with negative rhs and pivot on a
	// negative coefficient in that row.
	for iter := 0; ; iter++ {
		if iter > 10000 {
			return nil, 0, fmt.Errorf("%w: phase-1 iteration limit", ErrInfeasible)
		}
		r := -1
		for i := 0; i < m; i++ {
			if t[i][cols-1] < -eps {
				r = i
				break
			}
		}
		if r == -1 {
			break // feasible
		}
		c := -1
		for j := 0; j < n+m; j++ {
			if t[r][j] < -eps {
				c = j
				break
			}
		}
		if c == -1 {
			return nil, 0, ErrInfeasible
		}
		pivot(t, basis, r, c)
	}

	// Phase 2: primal simplex with Bland's rule.
	for iter := 0; ; iter++ {
		if iter > 20000 {
			return nil, 0, fmt.Errorf("%w: phase-2 iteration limit", ErrBadProblem)
		}
		// Entering column: first with negative reduced cost (Bland).
		c := -1
		for j := 0; j < n+m; j++ {
			if t[m][j] < -eps {
				c = j
				break
			}
		}
		if c == -1 {
			break // optimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		r := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][c] > eps {
				ratio := t[i][cols-1] / t[i][c]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (r == -1 || basis[i] < basis[r])) {
					best = ratio
					r = i
				}
			}
		}
		if r == -1 {
			return nil, 0, ErrUnbounded
		}
		pivot(t, basis, r, c)
	}

	x = make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][cols-1]
		}
	}
	return x, -t[m][cols-1], nil
}

// pivot performs a Gauss-Jordan pivot on tableau element (r, c), updating
// the objective row too.
func pivot(t [][]float64, basis []int, r, c int) {
	cols := len(t[0])
	pv := t[r][c]
	for j := 0; j < cols; j++ {
		t[r][j] /= pv
	}
	for i := range t {
		if i == r {
			continue
		}
		f := t[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			t[i][j] -= f * t[r][j]
		}
	}
	basis[r] = c
}
