package lp

import (
	"errors"
	"math"
	"testing"
)

func TestSolveSimple2D(t *testing.T) {
	// max x+y s.t. x ≤ 2, y ≤ 3, x+y ≤ 4  → min -(x+y), opt -4.
	p := Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{2, 3, 4},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-(-4)) > 1e-6 {
		t.Fatalf("obj = %v, want -4", obj)
	}
	if math.Abs(x[0]+x[1]-4) > 1e-6 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex at origin; Bland's rule must not cycle.
	p := Problem{
		C: []float64{-1, -1, -1},
		A: [][]float64{
			{1, 1, 0},
			{1, 0, 1},
			{0, 1, 1},
			{1, 1, 1},
		},
		B: []float64{1, 1, 1, 1.5},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-(-1.5)) > 1e-6 {
		t.Fatalf("obj = %v x = %v", obj, x)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{0},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want unbounded", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ -1 with x ≥ 0 is infeasible.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{1}},
		B: []float64{-1},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestSolveNegativeRHSFeasible(t *testing.T) {
	// -x ≤ -1 means x ≥ 1; min x → 1.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-1, 5},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-1) > 1e-6 || math.Abs(x[0]-1) > 1e-6 {
		t.Fatalf("x = %v obj = %v", x, obj)
	}
}

func TestSolveValidation(t *testing.T) {
	cases := []Problem{
		{},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{math.NaN()}, A: nil, B: nil},
		{C: []float64{1}, A: [][]float64{{math.Inf(1)}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.NaN()}},
	}
	for i, p := range cases {
		if _, _, err := Solve(p); !errors.Is(err, ErrBadProblem) {
			t.Errorf("case %d: err = %v, want bad problem", i, err)
		}
	}
}

func TestSolveZeroObjective(t *testing.T) {
	p := Problem{
		C: []float64{0, 0},
		A: [][]float64{{1, 1}},
		B: []float64{1},
	}
	_, obj, err := Solve(p)
	if err != nil || obj != 0 {
		t.Fatalf("obj = %v err = %v", obj, err)
	}
}
