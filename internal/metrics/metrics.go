// Package metrics provides the measurement utilities the evaluation
// harness reports with: percentile estimation over latency samples,
// throughput accumulators, and CDFs for the estimation-error analysis of
// Fig. 9.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of samples using linear
// interpolation between closest ranks. It returns NaN for empty input.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Percentile(samples, 0.5).
func Median(samples []float64) float64 { return Percentile(samples, 0.5) }

// Max returns the maximum sample (NaN for empty input).
func Max(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	max := samples[0]
	for _, v := range samples[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF (copies and sorts the samples).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Inverse returns the smallest x with P(X ≤ x) ≥ q.
func (c *CDF) Inverse(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Throughput accumulates (bytes, duration) pairs and reports Mbps.
type Throughput struct {
	bytes  int64
	micros int64
}

// Add records bytes transferred/processed over a duration in
// microseconds.
func (t *Throughput) Add(bytes int64, micros int64) {
	t.bytes += bytes
	t.micros += micros
}

// Mbps returns the accumulated average rate (0 before any time passed).
func (t *Throughput) Mbps() float64 {
	if t.micros == 0 {
		return 0
	}
	return float64(t.bytes) * 8 / float64(t.micros)
}

// Bytes returns the accumulated byte count.
func (t *Throughput) Bytes() int64 { return t.bytes }

// Reset clears the accumulator.
func (t *Throughput) Reset() { t.bytes, t.micros = 0, 0 }

// FormatMbps renders a rate for tables ("12.34 Mbps").
func FormatMbps(v float64) string { return fmt.Sprintf("%.2f Mbps", v) }
