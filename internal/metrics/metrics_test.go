package metrics

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single sample = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty input should be NaN")
	}
	// Clamping.
	if Percentile(s, -1) != 1 || Percentile(s, 2) != 5 {
		t.Fatal("p clamping")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := Percentile(s, 0.5); got != 5 {
		t.Fatalf("interp = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentile(s, 0.5)
	if s[0] != 3 || s[1] != 1 {
		t.Fatal("input mutated")
	}
}

func TestMedianMaxMean(t *testing.T) {
	s := []float64{4, 1, 3}
	if Median(s) != 3 {
		t.Fatal("median")
	}
	if Max(s) != 4 {
		t.Fatal("max")
	}
	if Mean(s) != 8.0/3 {
		t.Fatal("mean")
	}
	if !math.IsNaN(Max(nil)) || !math.IsNaN(Mean(nil)) {
		t.Fatal("empty stats should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Fatal("len")
	}
	if got := c.Inverse(0.5); got != 2 {
		t.Fatalf("Inverse(0.5) = %v", got)
	}
	if got := c.Inverse(0); got != 1 {
		t.Fatalf("Inverse(0) = %v", got)
	}
	if got := c.Inverse(1); got != 3 {
		t.Fatalf("Inverse(1) = %v", got)
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || !math.IsNaN(empty.Inverse(0.5)) {
		t.Fatal("empty CDF")
	}
}

// Property: CDF.At is monotone and Inverse is a quasi-inverse.
func TestCDFProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * 100
		}
		c := NewCDF(samples)
		// Monotonicity at sample points.
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		prev := -1.0
		for _, x := range sorted {
			v := c.At(x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		// Quasi-inverse: At(Inverse(q)) ≥ q.
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if c.At(c.Inverse(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	var tp Throughput
	if tp.Mbps() != 0 {
		t.Fatal("zero-time rate")
	}
	tp.Add(1_000_000, 1_000_000) // 1 MB over 1 s = 8 Mbps
	if got := tp.Mbps(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Mbps = %v", got)
	}
	if tp.Bytes() != 1_000_000 {
		t.Fatal("bytes")
	}
	tp.Reset()
	if tp.Mbps() != 0 || tp.Bytes() != 0 {
		t.Fatal("reset")
	}
}

func TestFormatMbps(t *testing.T) {
	if got := FormatMbps(12.345); got != "12.35 Mbps" {
		t.Fatalf("format = %q", got)
	}
}
