package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Decision is one runtime adaptation decision, captured with enough
// before/after context to replay counterfactuals offline: a load-factor
// change chosen by the adaptive runtime, a control-proxy state
// transition, a shipper failover, or an HA promotion/fencing event.
type Decision struct {
	TsMicros int64 `json:"ts_us"`
	// Seq is the decision's 1-based position in its log, stamped by
	// Emit. Gaps between the first retained decision's Seq and 1 reveal
	// that the ring wrapped and dropped history — what lets timeline
	// reconstruction fail loudly instead of silently starting mid-chain.
	Seq uint64 `json:"seq,omitempty"`
	// Kind classifies the decision: load_factors, proxy_state,
	// failover, promotion, fencing, forced_drain.
	Kind   string `json:"kind"`
	Source uint32 `json:"source,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	// Stage is the operator/proxy index for per-stage decisions.
	Stage int `json:"stage,omitempty"`
	// Cause names what triggered the decision (runtime phase, queue
	// congestion, replication-link loss, a rejected hello, ...).
	Cause string `json:"cause,omitempty"`
	// Before/After hold load-factor vectors for load_factors decisions.
	Before []float64 `json:"before,omitempty"`
	After  []float64 `json:"after,omitempty"`
	// BeforeState/AfterState hold symbolic states (proxy state, HA role).
	BeforeState string `json:"before_state,omitempty"`
	AfterState  string `json:"after_state,omitempty"`
	Term        uint64 `json:"term,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// DecisionLog is a bounded in-memory ring of recent decisions with an
// optional JSONL sink. Emission is rare (adaptation events, not
// per-record work), so a mutex is fine.
type DecisionLog struct {
	mu     sync.Mutex
	ring   []Decision
	next   int
	total  int64
	enc    *json.Encoder
	notify func(Decision)
}

// NewDecisionLog returns a log retaining the last capacity decisions
// (default 1024 when capacity <= 0).
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &DecisionLog{ring: make([]Decision, 0, capacity)}
}

var defaultDecisions = NewDecisionLog(0)

// Decisions returns the process-wide decision log.
func Decisions() *DecisionLog { return defaultDecisions }

// Emit records a decision in the process-wide log.
func Emit(d Decision) { defaultDecisions.Emit(d) }

// SetSink streams every subsequent decision to w as JSON lines (nil
// disables streaming; the ring keeps filling either way).
func (l *DecisionLog) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w == nil {
		l.enc = nil
		return
	}
	l.enc = json.NewEncoder(w)
}

// SetNotify installs a synchronous observer called (outside the log's
// lock) with every emitted decision — the transport flight recorder
// uses it to trigger dumps on degrade/fencing events. A nil f removes
// the observer. The callback must not block; it runs on the emitter's
// goroutine.
func (l *DecisionLog) SetNotify(f func(Decision)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notify = f
}

// Emit stamps and records d.
func (l *DecisionLog) Emit(d Decision) {
	if l == nil {
		return
	}
	if d.TsMicros == 0 {
		d.TsMicros = time.Now().UnixMicro()
	}
	l.mu.Lock()
	l.total++
	if d.Seq == 0 {
		d.Seq = uint64(l.total)
	}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, d)
	} else {
		l.ring[l.next] = d
		l.next = (l.next + 1) % cap(l.ring)
	}
	if l.enc != nil {
		_ = l.enc.Encode(d)
	}
	notify := l.notify
	l.mu.Unlock()
	if notify != nil {
		notify(d)
	}
}

// Total returns the number of decisions emitted since creation (the
// ring may retain fewer).
func (l *DecisionLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n of the most recent decisions, oldest first
// (n <= 0 means all retained).
func (l *DecisionLog) Recent(n int) []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Reset clears the ring (tests; the JSONL sink is untouched).
func (l *DecisionLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = l.ring[:0]
	l.next = 0
	l.total = 0
}

// EncodeDecisions writes ds to w as JSON lines.
func EncodeDecisions(w io.Writer, ds []Decision) error {
	enc := json.NewEncoder(w)
	for _, d := range ds {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// DecodeDecisions reads JSON-line decisions until EOF.
func DecodeDecisions(r io.Reader) ([]Decision, error) {
	var out []Decision
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(line, &d); err != nil {
			return nil, fmt.Errorf("obs: decision line %d: %w", len(out)+1, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// LoadFactorTimeline replays a decision trace for one source into the
// sequence of load-factor vectors the runtime applied, in order. It
// verifies continuity: each decision's Before must equal the previous
// After (the property that makes the trace replayable as a
// counterfactual input).
func LoadFactorTimeline(ds []Decision, source uint32) ([][]float64, error) {
	var timeline [][]float64
	var prev []float64
	for _, d := range ds {
		if d.Kind != "load_factors" || d.Source != source {
			continue
		}
		if prev != nil && !floatsEqual(prev, d.Before) {
			return nil, fmt.Errorf("obs: discontinuous load-factor trace at epoch %d: before %v != prior after %v",
				d.Epoch, d.Before, prev)
		}
		after := append([]float64(nil), d.After...)
		timeline = append(timeline, after)
		prev = after
	}
	return timeline, nil
}

// LoadFactorTimelineFrom is LoadFactorTimeline anchored at a known
// initial factor vector (what the runtime started from — all ones on a
// cold start, the restored factors after a snapshot resume). It
// additionally verifies the chain head: the first retained load_factors
// decision must chain from initial, so a decision ring that wrapped and
// dropped the head of the chain fails loudly instead of yielding a
// silently truncated timeline.
func LoadFactorTimelineFrom(ds []Decision, source uint32, initial []float64) ([][]float64, error) {
	for _, d := range ds {
		if d.Kind != "load_factors" || d.Source != source {
			continue
		}
		if !floatsEqual(initial, d.Before) {
			return nil, fmt.Errorf("obs: load-factor chain head missing for source %d: first retained decision (seq %d, epoch %d) starts from %v, not the initial %v — the decision ring wrapped and dropped the head",
				source, d.Seq, d.Epoch, d.Before, initial)
		}
		break
	}
	return LoadFactorTimeline(ds, source)
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
