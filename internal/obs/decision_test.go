package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDecisionRing(t *testing.T) {
	l := NewDecisionLog(4)
	for i := 1; i <= 6; i++ {
		l.Emit(Decision{Kind: "load_factors", Epoch: uint64(i)})
	}
	if l.Total() != 6 {
		t.Fatalf("total = %d", l.Total())
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("retained %d", len(got))
	}
	for i, d := range got {
		if d.Epoch != uint64(i+3) {
			t.Fatalf("recent[%d].Epoch = %d, want %d (oldest first)", i, d.Epoch, i+3)
		}
	}
	if last := l.Recent(1); len(last) != 1 || last[0].Epoch != 6 {
		t.Fatalf("recent(1) = %+v", last)
	}
	l.Reset()
	if l.Total() != 0 || len(l.Recent(0)) != 0 {
		t.Fatal("reset did not clear")
	}
	var nilLog *DecisionLog
	nilLog.Emit(Decision{}) // must not panic
	if nilLog.Total() != 0 || nilLog.Recent(0) != nil {
		t.Fatal("nil log must read empty")
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	in := []Decision{
		{TsMicros: 10, Kind: "load_factors", Source: 3, Epoch: 2, Cause: "probe",
			Before: []float64{0, 0}, After: []float64{1, 0.5}},
		{TsMicros: 20, Kind: "promotion", Cause: "replication_link_down",
			BeforeState: "standby", AfterState: "primary", Term: 2},
		{TsMicros: 30, Kind: "proxy_state", Epoch: 4, Stage: 1, Cause: "epoch_stats",
			BeforeState: "stable", AfterState: "congested"},
	}
	var buf bytes.Buffer
	if err := EncodeDecisions(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestDecisionSink(t *testing.T) {
	l := NewDecisionLog(8)
	var buf bytes.Buffer
	l.SetSink(&buf)
	l.Emit(Decision{Kind: "fencing", Term: 3})
	l.SetSink(nil)
	l.Emit(Decision{Kind: "fencing", Term: 4})
	ds, err := DecodeDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Term != 3 {
		t.Fatalf("streamed = %+v", ds)
	}
}

func TestLoadFactorTimeline(t *testing.T) {
	ds := []Decision{
		{Kind: "load_factors", Source: 1, Before: []float64{0, 0}, After: []float64{1, 1}},
		{Kind: "load_factors", Source: 2, Before: []float64{9, 9}, After: []float64{8, 8}}, // other source, ignored
		{Kind: "proxy_state", Source: 1, BeforeState: "stable", AfterState: "idle"},        // other kind, ignored
		{Kind: "load_factors", Source: 1, Before: []float64{1, 1}, After: []float64{1, 0.5}},
	}
	tl, err := LoadFactorTimeline(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 1}, {1, 0.5}}
	if !reflect.DeepEqual(tl, want) {
		t.Fatalf("timeline = %v, want %v", tl, want)
	}

	broken := []Decision{
		{Kind: "load_factors", Source: 1, Before: []float64{0}, After: []float64{1}},
		{Kind: "load_factors", Source: 1, Before: []float64{0.7}, After: []float64{0.2}},
	}
	if _, err := LoadFactorTimeline(broken, 1); err == nil ||
		!strings.Contains(err.Error(), "discontinuous") {
		t.Fatalf("want discontinuity error, got %v", err)
	}
}

// TestLoadFactorTimelineRingWrap: a decision ring that wrapped and
// dropped the head of a source's load-factor chain must fail loudly
// from the anchored replay, not hand back a silently truncated
// timeline that looks complete.
func TestLoadFactorTimelineRingWrap(t *testing.T) {
	l := NewDecisionLog(4)
	chain := [][]float64{{1, 1}, {1, 0.5}, {0.5, 0.5}, {0.5, 0.25}, {0.25, 0.25}, {1, 1}}
	for i := 1; i < len(chain); i++ {
		l.Emit(Decision{Kind: "load_factors", Source: 7, Epoch: uint64(i),
			Before: chain[i-1], After: chain[i]})
	}
	retained := l.Recent(0)
	if len(retained) >= len(chain)-1 {
		t.Fatalf("ring retained %d of %d decisions; wrap never happened", len(retained), len(chain)-1)
	}

	initial := []float64{1, 1}
	_, err := LoadFactorTimelineFrom(retained, 7, initial)
	if err == nil {
		t.Fatal("anchored replay over a wrapped ring must error, not truncate silently")
	}
	if !strings.Contains(err.Error(), "ring wrapped") {
		t.Fatalf("error should name the wrapped ring: %v", err)
	}

	// Un-anchored replay of the same slice is internally consistent —
	// exactly the silent truncation the anchored variant exists to catch.
	if _, err := LoadFactorTimeline(retained, 7); err != nil {
		t.Fatalf("retained suffix itself chains: %v", err)
	}

	// An intact chain (no wrap) anchored at its true initial passes.
	whole := NewDecisionLog(16)
	for i := 1; i < len(chain); i++ {
		whole.Emit(Decision{Kind: "load_factors", Source: 7, Epoch: uint64(i),
			Before: chain[i-1], After: chain[i]})
	}
	tl, err := LoadFactorTimelineFrom(whole.Recent(0), 7, initial)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != len(chain)-1 {
		t.Fatalf("full timeline has %d steps, want %d", len(tl), len(chain)-1)
	}
}
