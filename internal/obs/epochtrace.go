package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EpochTrace is the joined cross-process timeline of one epoch: the
// agent half arrives as the EpochEnd trailing trace extension (trace id,
// stage durations and clock stamps, see internal/wire), the SP half is
// stamped by the receiver as the epoch moves through decode, the
// admission delay queue, ingest and the durable commit. Timestamps are
// unix microseconds on two clocks — StartMicros/SentMicros on the
// agent's, ArrivalMicros onward on the SP's — and the derived segments
// telescope so that their sum equals AckMicros − StartMicros exactly,
// with any clock skew (and agent scheduling slack) landing in the ship
// segment.
type EpochTrace struct {
	TraceID uint64 `json:"trace_id"`
	Source  uint32 `json:"source"`
	Epoch   uint64 `json:"epoch"`

	// Agent clock.
	StartMicros int64 `json:"start_us"`           // epoch begin (generate start)
	GenMicros   int64 `json:"gen_us"`             // generate duration
	PipeMicros  int64 `json:"pipe_us"`            // pipeline duration
	EncMicros   int64 `json:"enc_us"`             // encode duration
	SentMicros  int64 `json:"sent_us"`            // epoch bytes sealed for shipping
	Replayed    bool  `json:"replayed,omitempty"` // arrived again after a shed or reconnect

	// SP clock.
	ArrivalMicros int64 `json:"arrival_us"` // EpochEnd decoded
	ApplyMicros   int64 `json:"apply_us"`   // commit began (after any delay-queue wait)
	DoneMicros    int64 `json:"done_us"`    // ingest finished
	AckMicros     int64 `json:"ack_us"`     // ack sent (durable when checkpointing)

	// Sub-attributions inside the windows above.
	DecodeMicros int64 `json:"decode_us"` // frame decode, inside sent→arrival
	SnapMicros   int64 `json:"snap_us"`   // snapshot save, inside done→ack
	ReplMicros   int64 `json:"repl_us"`   // replication wait, inside done→ack
}

// TraceSegments names the derived segments in timeline order. The first
// nine mirror the lifecycle stages; "wait" is the admission delay-queue
// (and commit-lock) time between arrival and apply.
var TraceSegments = []string{
	"generate", "pipeline", "encode", "ship", "decode",
	"wait", "ingest", "snapshot", "replicate", "ack",
}

// Segments returns the derived per-segment durations in microseconds,
// indexed like TraceSegments. They telescope: the sum is exactly
// AckMicros − StartMicros. The ship segment is the residual between the
// agent's sealed timestamp and SP arrival minus decode time — wire
// transfer plus replay buffering plus cross-clock skew — and may go
// negative when the clocks disagree by more than the wire time.
func (t *EpochTrace) Segments() [10]int64 {
	var s [10]int64
	s[0] = t.GenMicros
	s[1] = t.PipeMicros
	s[2] = t.EncMicros
	s[4] = t.DecodeMicros
	s[3] = (t.ArrivalMicros - t.StartMicros) - s[0] - s[1] - s[2] - s[4]
	s[5] = t.ApplyMicros - t.ArrivalMicros
	s[6] = t.DoneMicros - t.ApplyMicros
	s[7] = t.SnapMicros
	s[8] = t.ReplMicros
	s[9] = (t.AckMicros - t.DoneMicros) - s[7] - s[8]
	return s
}

// E2EMicros is the epoch's end-to-end latency: generate start on the
// agent's clock to ack on the SP's.
func (t *EpochTrace) E2EMicros() int64 { return t.AckMicros - t.StartMicros }

// Critical returns the name of the longest segment — where the epoch
// actually spent its time.
func (t *EpochTrace) Critical() string {
	segs := t.Segments()
	best, bestIdx := segs[0], 0
	for i, v := range segs {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return TraceSegments[bestIdx]
}

// traceKey identifies one epoch of one source in the in-flight table.
type traceKey struct {
	source uint32
	epoch  uint64
}

// maxInflightTraces bounds the in-flight table: epochs beyond it (a
// pathologically deep delay queue) are silently untraced rather than
// growing without bound.
const maxInflightTraces = 4096

// Established trace metric names (see TestMetricNameCatalog).
const (
	// HistEpochE2E is the end-to-end epoch latency histogram, observed
	// once per completed (joined) trace.
	HistEpochE2E = "epoch_e2e_seconds"
	// CtrCriticalPath counts, per segment label, how often that segment
	// dominated a completed epoch's latency.
	CtrCriticalPath = "epoch_critical_path_total"
)

// TraceTable joins in-flight epoch traces and retains a bounded ring of
// completed ones for the /trace endpoint. Completion observes the
// epoch_e2e_seconds histogram and bumps the per-segment
// epoch_critical_path_total counter, so fleet dashboards see where
// epochs spend their time without scraping individual traces.
type TraceTable struct {
	mu       sync.Mutex
	inflight map[traceKey]*EpochTrace
	done     []EpochTrace
	next     int
	total    int64

	e2e  Histogram
	crit [10]Counter // one per TraceSegments entry
}

// NewTraceTable returns a table retaining the last capacity completed
// traces (default 1024 when capacity <= 0), with its metrics in the
// default registry.
func NewTraceTable(capacity int) *TraceTable {
	if capacity <= 0 {
		capacity = 1024
	}
	t := &TraceTable{
		inflight: make(map[traceKey]*EpochTrace),
		done:     make([]EpochTrace, 0, capacity),
		e2e:      defaultRegistry.Histogram(HistEpochE2E, StageBounds),
	}
	for i, name := range TraceSegments {
		t.crit[i] = defaultRegistry.LabeledCounter(CtrCriticalPath, "segment", name)
	}
	return t
}

var defaultTraces = NewTraceTable(0)

// Traces returns the process-wide epoch-trace table.
func Traces() *TraceTable { return defaultTraces }

// Begin registers an in-flight trace at EpochEnd arrival; t carries the
// agent-side fields plus ArrivalMicros and DecodeMicros. A second Begin
// for the same (source, epoch) — a replay after a shed — replaces the
// earlier arrival and marks the trace replayed. When the in-flight
// table is full the trace is dropped (the epoch still commits, it is
// just not traced).
func (tt *TraceTable) Begin(t EpochTrace) {
	if tt == nil || t.TraceID == 0 {
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	k := traceKey{t.Source, t.Epoch}
	if _, ok := tt.inflight[k]; ok {
		t.Replayed = true
	} else if len(tt.inflight) >= maxInflightTraces {
		return
	}
	tc := t
	tt.inflight[k] = &tc
}

// MarkApply stamps the commit start (after any delay-queue wait).
func (tt *TraceTable) MarkApply(source uint32, epoch uint64, tsMicros int64) {
	tt.mark(source, epoch, func(t *EpochTrace) { t.ApplyMicros = tsMicros })
}

// MarkDone stamps the end of ingest.
func (tt *TraceTable) MarkDone(source uint32, epoch uint64, tsMicros int64) {
	tt.mark(source, epoch, func(t *EpochTrace) { t.DoneMicros = tsMicros })
}

// AddSnapshot attributes snapshot-save time to the epoch (inside the
// done→ack window; the checkpoint manager calls this for every epoch a
// save covers).
func (tt *TraceTable) AddSnapshot(source uint32, epoch uint64, d time.Duration) {
	tt.mark(source, epoch, func(t *EpochTrace) { t.SnapMicros += d.Microseconds() })
}

// AddReplication attributes standby-replication wait to the epoch.
func (tt *TraceTable) AddReplication(source uint32, epoch uint64, d time.Duration) {
	tt.mark(source, epoch, func(t *EpochTrace) { t.ReplMicros += d.Microseconds() })
}

// AddSnapshotUpTo attributes one snapshot save to every in-flight epoch
// of the source at or below seq. Acks are cumulative and gate on the
// covering snapshot, so each covered epoch genuinely waited the whole
// save — the full duration is attributed to each, and idle time between
// apply and the cadence-due save lands in the ack residual.
func (tt *TraceTable) AddSnapshotUpTo(source uint32, seq uint64, d time.Duration) {
	tt.markUpTo(source, seq, func(t *EpochTrace) { t.SnapMicros += d.Microseconds() })
}

// AddReplicationUpTo attributes one standby-replication wait to every
// in-flight epoch of the source at or below seq.
func (tt *TraceTable) AddReplicationUpTo(source uint32, seq uint64, d time.Duration) {
	tt.markUpTo(source, seq, func(t *EpochTrace) { t.ReplMicros += d.Microseconds() })
}

func (tt *TraceTable) markUpTo(source uint32, seq uint64, f func(*EpochTrace)) {
	if tt == nil {
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for k, t := range tt.inflight {
		if k.source == source && k.epoch <= seq {
			f(t)
		}
	}
}

func (tt *TraceTable) mark(source uint32, epoch uint64, f func(*EpochTrace)) {
	if tt == nil {
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if t := tt.inflight[traceKey{source, epoch}]; t != nil {
		f(t)
	}
}

// FinishUpTo completes every in-flight trace of the source with epoch
// ≤ seq — acks are cumulative, so one ack may complete several epochs —
// stamping the ack time, observing epoch_e2e_seconds and crediting the
// critical-path counter for the longest segment.
func (tt *TraceTable) FinishUpTo(source uint32, seq uint64, ackMicros int64) {
	if tt == nil {
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for k, t := range tt.inflight {
		if k.source != source || k.epoch > seq {
			continue
		}
		delete(tt.inflight, k)
		t.AckMicros = ackMicros
		if t.DoneMicros == 0 { // never applied (e.g. duplicate) — don't fake segments
			continue
		}
		if t.ApplyMicros == 0 {
			t.ApplyMicros = t.ArrivalMicros
		}
		tt.e2e.Observe(time.Duration(t.E2EMicros()) * time.Microsecond)
		segs := t.Segments()
		best, bestIdx := segs[0], 0
		for i, v := range segs {
			if v > best {
				best, bestIdx = v, i
			}
		}
		tt.crit[bestIdx].Inc()
		tt.total++
		if len(tt.done) < cap(tt.done) {
			tt.done = append(tt.done, *t)
		} else {
			tt.done[tt.next] = *t
			tt.next = (tt.next + 1) % cap(tt.done)
		}
	}
}

// Drop discards the in-flight trace of a shed or duplicate epoch.
func (tt *TraceTable) Drop(source uint32, epoch uint64) {
	if tt == nil {
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	delete(tt.inflight, traceKey{source, epoch})
}

// Total returns the number of traces completed since creation.
func (tt *TraceTable) Total() int64 {
	if tt == nil {
		return 0
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.total
}

// Recent returns up to n completed traces, oldest first (n <= 0 means
// all retained).
func (tt *TraceTable) Recent(n int) []EpochTrace {
	if tt == nil {
		return nil
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]EpochTrace, 0, len(tt.done))
	if len(tt.done) == cap(tt.done) {
		out = append(out, tt.done[tt.next:]...)
	}
	out = append(out, tt.done[:tt.next]...)
	if len(tt.done) < cap(tt.done) {
		out = append(out, tt.done...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Reset clears the table (tests).
func (tt *TraceTable) Reset() {
	if tt == nil {
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	clear(tt.inflight)
	tt.done = tt.done[:0]
	tt.next = 0
	tt.total = 0
}

// traceLine is the /trace JSONL rendering: the raw trace plus its
// derived segments, critical path and e2e latency.
type traceLine struct {
	EpochTrace
	Segments map[string]int64 `json:"segments"`
	Critical string           `json:"critical"`
	E2E      int64            `json:"e2e_us"`
}

// EncodeTraces writes ts to w as JSON lines with derived segments.
func EncodeTraces(w io.Writer, ts []EpochTrace) error {
	enc := json.NewEncoder(w)
	for i := range ts {
		t := &ts[i]
		segs := t.Segments()
		m := make(map[string]int64, len(TraceSegments))
		for j, name := range TraceSegments {
			m[name] = segs[j]
		}
		if err := enc.Encode(traceLine{EpochTrace: *t, Segments: m, Critical: t.Critical(), E2E: t.E2EMicros()}); err != nil {
			return err
		}
	}
	return nil
}
