package obs

import (
	"strings"
	"testing"
	"time"
)

// trace returns a fully-stamped agent half plus SP arrival, the state a
// TraceTable sees at Begin time.
func testTrace(source uint32, epoch uint64) EpochTrace {
	return EpochTrace{
		TraceID:       uint64(source)<<40 | epoch,
		Source:        source,
		Epoch:         epoch,
		StartMicros:   1_000_000,
		GenMicros:     100,
		PipeMicros:    200,
		EncMicros:     50,
		SentMicros:    1_000_400,
		ArrivalMicros: 1_001_000,
		DecodeMicros:  80,
	}
}

// TestEpochTraceTelescoping pins the identity everything downstream
// relies on: the derived segments always sum to AckMicros − StartMicros
// exactly, with the ship and ack residuals absorbing whatever the
// explicit stamps do not cover.
func TestEpochTraceTelescoping(t *testing.T) {
	tr := testTrace(3, 7)
	tr.ApplyMicros = 1_002_000
	tr.DoneMicros = 1_002_500
	tr.SnapMicros = 300
	tr.ReplMicros = 100
	tr.AckMicros = 1_003_400

	segs := tr.Segments()
	var sum int64
	for _, s := range segs {
		sum += s
	}
	if sum != tr.E2EMicros() {
		t.Fatalf("segments sum %d != e2e %d", sum, tr.E2EMicros())
	}
	if tr.E2EMicros() != 3400 {
		t.Fatalf("e2e = %d, want 3400", tr.E2EMicros())
	}
	// wait (apply − arrival) is the longest constructed segment.
	if got := tr.Critical(); got != "wait" {
		t.Fatalf("critical = %q, want wait", got)
	}
	// The ship residual: arrival − start − generate − pipeline − encode
	// − decode = 1000 − 100 − 200 − 50 − 80.
	if segs[3] != 570 {
		t.Fatalf("ship residual = %d, want 570", segs[3])
	}
	// The ack residual: (ack − done) − snapshot − replicate.
	if segs[9] != 900-300-100 {
		t.Fatalf("ack residual = %d, want 500", segs[9])
	}
}

// TestTraceTableJoin covers the join lifecycle against cumulative acks:
// one FinishUpTo completes every in-flight epoch at or below the acked
// sequence, defaulting ApplyMicros to arrival when no delay-queue mark
// was stamped, and skipping epochs that never applied.
func TestTraceTableJoin(t *testing.T) {
	tt := NewTraceTable(8)
	for e := uint64(1); e <= 3; e++ {
		tt.Begin(testTrace(5, e))
	}
	tt.MarkApply(5, 1, 1_001_200)
	tt.MarkDone(5, 1, 1_001_900)
	// Epoch 2: done without an explicit apply mark (no queueing).
	tt.MarkDone(5, 2, 1_001_400)
	tt.AddSnapshotUpTo(5, 2, 250*time.Microsecond)
	tt.AddReplicationUpTo(5, 2, 100*time.Microsecond)
	// Epoch 3 never applies (duplicate): no Done stamp.

	tt.FinishUpTo(5, 3, 1_003_000)
	if got := tt.Total(); got != 2 {
		t.Fatalf("completed %d traces, want 2 (epoch 3 never applied)", got)
	}
	byEpoch := map[uint64]EpochTrace{}
	for _, tr := range tt.Recent(0) {
		byEpoch[tr.Epoch] = tr
	}
	tr1, tr2 := byEpoch[1], byEpoch[2]
	if tr1.SnapMicros != 250 || tr1.ReplMicros != 100 {
		t.Fatalf("epoch 1 attribution snap=%d repl=%d, want 250/100", tr1.SnapMicros, tr1.ReplMicros)
	}
	if tr2.ApplyMicros != tr2.ArrivalMicros {
		t.Fatalf("epoch 2 apply %d should default to arrival %d", tr2.ApplyMicros, tr2.ArrivalMicros)
	}
	for _, tr := range []EpochTrace{tr1, tr2} {
		segs := tr.Segments()
		var sum int64
		for _, s := range segs {
			sum += s
		}
		if sum != tr.E2EMicros() {
			t.Fatalf("epoch %d: segments sum %d != e2e %d", tr.Epoch, sum, tr.E2EMicros())
		}
	}
	// The unapplied epoch left the in-flight table without a trace.
	tt.MarkDone(5, 3, 1)
	tt.FinishUpTo(5, 3, 2)
	if got := tt.Total(); got != 2 {
		t.Fatalf("finished epoch must leave the table: total %d, want 2", got)
	}
}

// TestTraceTableReplayAndDrop: a second Begin for the same epoch (a
// replay after a shed) replaces the earlier arrival and flags the
// trace; Drop removes an in-flight trace so a later cumulative ack
// cannot complete it.
func TestTraceTableReplayAndDrop(t *testing.T) {
	tt := NewTraceTable(8)
	tt.Begin(testTrace(2, 1))
	again := testTrace(2, 1)
	again.ArrivalMicros = 2_000_000
	tt.Begin(again)
	tt.MarkDone(2, 1, 2_000_300)
	tt.FinishUpTo(2, 1, 2_000_400)
	recent := tt.Recent(0)
	if len(recent) != 1 || !recent[0].Replayed {
		t.Fatalf("replayed epoch not flagged: %+v", recent)
	}
	if recent[0].ArrivalMicros != 2_000_000 {
		t.Fatalf("replay must replace the earlier arrival: %d", recent[0].ArrivalMicros)
	}

	tt.Begin(testTrace(2, 2))
	tt.Drop(2, 2)
	tt.FinishUpTo(2, 2, 3_000_000)
	if got := tt.Total(); got != 1 {
		t.Fatalf("dropped epoch completed anyway: total %d", got)
	}
}

// TestTraceTableRing: the completed ring retains the newest capacity
// traces, Recent returns them oldest first, and Total keeps counting
// past the ring.
func TestTraceTableRing(t *testing.T) {
	tt := NewTraceTable(4)
	for e := uint64(1); e <= 6; e++ {
		tr := testTrace(1, e)
		tt.Begin(tr)
		tt.MarkDone(1, e, tr.ArrivalMicros+100)
		tt.FinishUpTo(1, e, tr.ArrivalMicros+200)
	}
	if got := tt.Total(); got != 6 {
		t.Fatalf("total %d, want 6", got)
	}
	recent := tt.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("retained %d, want 4", len(recent))
	}
	for i, tr := range recent {
		if want := uint64(i + 3); tr.Epoch != want {
			t.Fatalf("recent[%d] = epoch %d, want %d (oldest first)", i, tr.Epoch, want)
		}
	}
	if got := tt.Recent(2); len(got) != 2 || got[1].Epoch != 6 {
		t.Fatalf("Recent(2) = %+v, want the newest two", got)
	}
}

// TestEncodeTraces: the /trace JSONL carries the derived segments,
// critical path and e2e alongside the raw stamps.
func TestEncodeTraces(t *testing.T) {
	tr := testTrace(4, 9)
	tr.ApplyMicros = 1_001_100
	tr.DoneMicros = 1_001_200
	tr.AckMicros = 1_001_300
	var b strings.Builder
	if err := EncodeTraces(&b, []EpochTrace{tr}); err != nil {
		t.Fatal(err)
	}
	line := b.String()
	for _, want := range []string{`"segments"`, `"critical":"ship"`, `"e2e_us":1300`, `"trace_id":`} {
		if !strings.Contains(line, want) {
			t.Fatalf("encoded trace missing %s: %s", want, line)
		}
	}
}
