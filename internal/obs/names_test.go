package obs_test

import (
	"strings"
	"testing"

	"jarvis/internal/admission"
	"jarvis/internal/ha"
	"jarvis/internal/obs"
	"jarvis/internal/sim"
	"jarvis/internal/transport"
)

// TestMetricNameCatalog pins every established operational metric name.
// Dashboards and scrape configs key on these strings: a rename must
// fail here loudly, not silently break a deployment. The catalog is
// duplicated on purpose — do not "fix" this test by referencing the
// constants on both sides.
func TestMetricNameCatalog(t *testing.T) {
	want := map[string]string{
		// transport receiver/shipper counters
		transport.CtrConnsAccepted:  "conns_accepted",
		transport.CtrConnsClosed:    "conns_closed",
		transport.CtrRecvErrors:     "recv_errors",
		transport.CtrFramesIn:       "frames_in",
		transport.CtrEpochsApplied:  "epochs_applied",
		transport.CtrEpochsReplayed: "epochs_replayed",
		transport.CtrAcksSent:       "acks_sent",
		transport.CtrEpochsDropped:  "epochs_dropped",
		transport.CtrReconnects:     "reconnects",
		transport.CtrConnErrors:     "conn_errors",
		transport.CtrSourceResets:   "source_resets",
		transport.CtrHellosRejected: "hellos_rejected",
		transport.CtrFailovers:      "failovers",
		// wire-level compression accounting
		transport.CtrWireBytesIn:            "wire_bytes_in",
		transport.CtrWireRawBytesIn:         "wire_raw_bytes_in",
		transport.GaugeWireCompressionRatio: "wire_compression_ratio",
		// high-availability counters and gauges
		ha.CtrFailovers:          "ha_failovers",
		ha.CtrFenced:             "ha_fenced_stale_primary",
		ha.CtrStandbyRejected:    "ha_standby_rejected",
		ha.CtrRestoreErrors:      "ha_standby_restore_errors",
		ha.CtrSnapshotsPublished: "ha_snapshots_published",
		ha.CtrSnapshotsApplied:   "ha_snapshots_applied",
		ha.CtrRowsMirrored:       "ha_rows_mirrored",
		ha.CtrStandbyAttaches:    "ha_standby_attaches",
		ha.GaugeReplLagEpochs:    "ha_replication_lag_epochs",
		ha.CtrAcksWithoutStandby: "ha_acks_without_standby",
		// overload protection: receiver-side shedding/healing and the
		// admission controller's own registry
		transport.CtrEpochsShed:        "epochs_shed",
		transport.CtrEpochGaps:         "epoch_gaps",
		transport.CtrReplayRequests:    "replay_requests",
		transport.CtrDialBackoffs:      "dial_backoffs",
		admission.CtrEpochsAdmitted:    "adm_epochs_admitted",
		admission.CtrEpochsDelayed:     "adm_epochs_delayed",
		admission.CtrEpochsDegraded:    "adm_epochs_degraded",
		admission.CtrBytesAdmitted:     "adm_bytes_admitted",
		admission.CtrSampledOut:        "adm_records_sampled_out",
		admission.GaugeTenantsDegraded: "adm_tenants_degraded",
		admission.GaugeDelayedEpochs:   "adm_delayed_epochs",
		admission.GaugeJainFairness:    "adm_jain_fairness",
		admission.GaugeThrottleMicros:  "adm_throttle_micros",
		admission.HistClassLatency:     "class_ingest_latency_seconds",
		// epoch tracing and the anomaly flight recorder
		obs.HistEpochE2E:         "epoch_e2e_seconds",
		obs.CtrCriticalPath:      "epoch_critical_path_total",
		transport.CtrFlightDumps: "flight_dumps_total",
		// full-fidelity traffic recording and the cluster simulator
		transport.CtrTrafficConns:  "traffic_conns_recorded",
		transport.CtrTrafficFrames: "traffic_frames_recorded",
		transport.CtrTrafficBytes:  "traffic_bytes_recorded",
		transport.CtrTrafficEpochs: "traffic_epochs_recorded",
		sim.GaugeSimVirtualSeconds: "sim_virtual_seconds",
		sim.CtrSimEvents:           "sim_events_processed",
		sim.CtrSimEpochs:           "sim_epochs_total",
		sim.CtrSimFailovers:        "sim_failovers_total",
	}
	if len(want) != 51 {
		t.Fatalf("catalog lost an entry (duplicate constant value?): %d", len(want))
	}
	for got, expect := range want {
		if got != expect {
			t.Errorf("metric renamed: %q, catalog says %q", got, expect)
		}
	}
}

// TestStageSeriesExposed: the default registry carries one
// stage_latency_seconds series per lifecycle stage, visible in the
// Prometheus exposition from process start.
func TestStageSeriesExposed(t *testing.T) {
	var b strings.Builder
	if err := obs.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	stages := []string{"generate", "pipeline", "encode", "ship", "decode",
		"ingest", "snapshot", "replicate", "ack"}
	for _, st := range stages {
		series := `stage_latency_seconds_count{stage="` + st + `"}`
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	// The trace table's metrics are likewise registered at init: the e2e
	// histogram plus one critical-path series per derived segment.
	if !strings.Contains(out, "epoch_e2e_seconds_count") {
		t.Error("exposition missing epoch_e2e_seconds")
	}
	for _, seg := range obs.TraceSegments {
		series := `epoch_critical_path_total{segment="` + seg + `"}`
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
}
