package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per metric
// family, series sorted by family then label value, histograms as
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].labelVal < ms[j].labelVal
	})
	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, typeName(m.kind)); err != nil {
				return err
			}
			lastFamily = m.family
		}
		if err := writeSeries(w, m); err != nil {
			return err
		}
	}
	return nil
}

func typeName(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter, kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.family, labelPart(m, ""), m.val.Load())
		return err
	case kindFloatGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.family, labelPart(m, ""), formatFloat(floatFromBits(uint64(m.val.Load()))))
		return err
	case kindHistogram:
		return writeHistogram(w, m)
	}
	return nil
}

// labelPart renders the series' label set, merging the metric's own
// constant label with an extra pair (histograms append le=).
func labelPart(m *metric, extra string) string {
	if m.labelKey == "" && extra == "" {
		return ""
	}
	s := "{"
	if m.labelKey != "" {
		s += m.labelKey + `="` + m.labelVal + `"`
		if extra != "" {
			s += ","
		}
	}
	return s + extra + "}"
}

func writeHistogram(w io.Writer, m *metric) error {
	h := m.h
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatFloat(b) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, labelPart(m, le), cum); err != nil {
			return err
		}
	}
	if len(h.counts) > 0 {
		cum += h.counts[len(h.counts)-1].Load()
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, labelPart(m, `le="+Inf"`), cum); err != nil {
		return err
	}
	sum := float64(h.sumNanos.Load()) / 1e9
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.family, labelPart(m, ""), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.family, labelPart(m, ""), h.count.Load())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
