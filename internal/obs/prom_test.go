package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusExposition is the golden test for the text exposition:
// family ordering, # TYPE lines, label rendering, cumulative histogram
// buckets and the _sum/_count pair.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("epochs_applied").Add(3)
	r.Gauge("ha_replication_lag_epochs").Set(2)
	r.FloatGauge("wire_compression_ratio").Set(2.5)
	h := r.LabeledHistogram("stage_latency_seconds", "stage", "ingest", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE epochs_applied counter
epochs_applied 3
# TYPE ha_replication_lag_epochs gauge
ha_replication_lag_epochs 2
# TYPE stage_latency_seconds histogram
stage_latency_seconds_bucket{stage="ingest",le="0.001"} 1
stage_latency_seconds_bucket{stage="ingest",le="0.01"} 2
stage_latency_seconds_bucket{stage="ingest",le="+Inf"} 3
stage_latency_seconds_sum{stage="ingest"} 0.0555
stage_latency_seconds_count{stage="ingest"} 3
# TYPE wire_compression_ratio gauge
wire_compression_ratio 2.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusMultiSeriesFamily: several label values of one family
// share a single # TYPE line and sort by label value.
func TestPrometheusMultiSeriesFamily(t *testing.T) {
	r := NewRegistry()
	r.LabeledHistogram("stage_latency_seconds", "stage", "ship", []float64{1}).Observe(time.Second)
	r.LabeledHistogram("stage_latency_seconds", "stage", "ack", []float64{1}).Observe(time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE stage_latency_seconds histogram") != 1 {
		t.Fatalf("want exactly one TYPE line:\n%s", out)
	}
	ack := strings.Index(out, `stage="ack"`)
	ship := strings.Index(out, `stage="ship"`)
	if ack < 0 || ship < 0 || ack > ship {
		t.Fatalf("series not sorted by label value:\n%s", out)
	}
}

// TestScrapeDuringWrites exercises exposition concurrent with metric
// updates and registration; run with -race.
func TestScrapeDuringWrites(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := r.LabeledHistogram("lat", "stage", "ingest", StageBounds)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Observe(time.Duration(i) * time.Microsecond)
			r.Inc("frames")
			r.Counter("more").Add(2)
			i++
		}
	}()
	for j := 0; j < 100; j++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
