package obs

import (
	"sync"
	"time"
)

// QuantileWindow estimates a quantile of a histogram over a sliding
// time window by differencing cumulative bucket snapshots: every
// interval it records the histogram's bucket counts, and Quantile
// subtracts the oldest retained snapshot from the live counts, so the
// estimate covers only the last ~window of observations. This is what
// lets admission control gate on the *current* ingest p99 rather than
// the process-lifetime histogram, which an hour of calm would otherwise
// dilute beyond recovery.
//
// Snapshots rotate lazily on Quantile/Tick calls (no goroutine): a
// caller that polls at least once per interval gets full resolution,
// and an idle process simply pays one rotation on the next poll.
type QuantileWindow struct {
	mu       sync.Mutex
	h        Histogram
	interval time.Duration
	snaps    []quantSnap
	head     int // oldest retained snapshot
	n        int // retained count
	lastTick time.Time
	now      func() time.Time

	live []int64 // scratch for the current bucket counts
}

type quantSnap struct {
	counts []int64
	ts     time.Time
}

// NewQuantileWindow returns an estimator over h covering roughly the
// last window, snapshotting every interval. Depth is window/interval
// (minimum 1); a zero or negative interval defaults to one second.
func NewQuantileWindow(h Histogram, window, interval time.Duration) *QuantileWindow {
	if interval <= 0 {
		interval = time.Second
	}
	depth := int(window / interval)
	if depth < 1 {
		depth = 1
	}
	return &QuantileWindow{
		h:        h,
		interval: interval,
		snaps:    make([]quantSnap, depth+1),
		now:      time.Now,
	}
}

// SetNowFunc injects the clock (deterministic tests).
func (q *QuantileWindow) SetNowFunc(f func() time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.now = f
}

// Tick forces a snapshot rotation if at least one interval elapsed
// since the last. Quantile ticks implicitly; explicit Tick suits
// callers with their own cadence (the SP's advance loop).
func (q *QuantileWindow) Tick() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tickLocked()
}

func (q *QuantileWindow) tickLocked() {
	now := q.now()
	if !q.lastTick.IsZero() && now.Sub(q.lastTick) < q.interval {
		return
	}
	q.lastTick = now
	_, counts := q.h.Buckets(nil)
	i := (q.head + q.n) % len(q.snaps)
	if q.n == len(q.snaps) {
		// Ring full: overwrite the oldest.
		i = q.head
		q.head = (q.head + 1) % len(q.snaps)
	} else {
		q.n++
	}
	q.snaps[i] = quantSnap{counts: counts, ts: now}
}

// Quantile estimates the qth quantile (0 < q <= 1) of the observations
// recorded in roughly the last window, in seconds. It returns the upper
// edge of the bucket the quantile falls in — 0 when the window holds no
// observations, and twice the top edge when the quantile falls in the
// +Inf overflow bucket (finite and JSON-friendly, still above any
// threshold inside the bucket range).
func (q *QuantileWindow) Quantile(quantile float64) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tickLocked()
	bounds, live := q.h.Buckets(q.live)
	q.live = live
	var base []int64
	if q.n > 0 {
		base = q.snaps[q.head].counts
	}
	total := int64(0)
	for i := range live {
		d := live[i]
		if base != nil && i < len(base) {
			d -= base[i]
		}
		total += d
	}
	if total <= 0 {
		return 0
	}
	rank := int64(quantile * float64(total))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range live {
		d := live[i]
		if base != nil && i < len(base) {
			d -= base[i]
		}
		cum += d
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			if len(bounds) == 0 {
				return 0
			}
			return 2 * bounds[len(bounds)-1]
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return 2 * bounds[len(bounds)-1]
}

// P99 returns Quantile(0.99) — the shape admission.Config.Pressure
// expects.
func (q *QuantileWindow) P99() float64 { return q.Quantile(0.99) }
