package obs

import (
	"testing"
	"time"
)

// qwFixture returns a private histogram, a window over it, and a
// settable clock stepped by the caller.
func qwFixture(window, interval time.Duration) (Histogram, *QuantileWindow, *time.Time) {
	h := NewRegistry().Histogram("qw_test_seconds", []float64{0.001, 0.01, 0.1})
	qw := NewQuantileWindow(h, window, interval)
	clock := time.Unix(1_700_000_000, 0)
	qw.SetNowFunc(func() time.Time { return clock })
	return h, qw, &clock
}

// TestQuantileWindowBasics: empty window reports 0, a quantile inside a
// bucket reports that bucket's upper edge, and the overflow bucket maps
// to twice the top edge (finite, still above any in-range threshold).
func TestQuantileWindowBasics(t *testing.T) {
	h, qw, clock := qwFixture(5*time.Second, time.Second)
	qw.Tick()
	if got := qw.P99(); got != 0 {
		t.Fatalf("empty window p99 = %g, want 0", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond) // first bucket (≤1ms)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond) // second bucket (≤10ms)
	}
	*clock = clock.Add(time.Second)
	if got := qw.P99(); got != 0.01 {
		t.Fatalf("p99 = %g, want the 0.01 bucket edge", got)
	}
	if got := qw.Quantile(0.5); got != 0.001 {
		t.Fatalf("p50 = %g, want the 0.001 bucket edge", got)
	}
	h.Observe(10 * time.Second) // overflow bucket
	h.Observe(10 * time.Second)
	h.Observe(10 * time.Second)
	*clock = clock.Add(time.Second)
	if got := qw.Quantile(1.0); got != 0.2 {
		t.Fatalf("max quantile = %g, want 2x the 0.1 top edge", got)
	}
}

// TestQuantileWindowSlides: the estimator differences cumulative bucket
// snapshots, so observations age out once the window passes them — a
// burst of slow ingests must not pin the p99 high forever.
func TestQuantileWindowSlides(t *testing.T) {
	h, qw, clock := qwFixture(3*time.Second, time.Second)
	qw.Tick()
	for i := 0; i < 100; i++ {
		h.Observe(50 * time.Millisecond)
	}
	*clock = clock.Add(time.Second)
	if got := qw.P99(); got != 0.1 {
		t.Fatalf("burst p99 = %g, want 0.1", got)
	}
	// Idle ticks roll the burst out of the window.
	for i := 0; i < 5; i++ {
		*clock = clock.Add(time.Second)
		qw.Tick()
	}
	if got := qw.P99(); got != 0 {
		t.Fatalf("p99 after the burst aged out = %g, want 0", got)
	}
	// New observations are reported alone, not diluted by the burst.
	h.Observe(500 * time.Microsecond)
	*clock = clock.Add(time.Second)
	if got := qw.P99(); got != 0.001 {
		t.Fatalf("post-burst p99 = %g, want 0.001", got)
	}
}

// TestQuantileWindowBaseline: history recorded before the first Tick is
// excluded — a window created on a long-lived histogram starts from the
// present, not the process lifetime.
func TestQuantileWindowBaseline(t *testing.T) {
	h := NewRegistry().Histogram("qw_base_seconds", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 1000; i++ {
		h.Observe(50 * time.Millisecond) // pre-existing history
	}
	qw := NewQuantileWindow(h, 5*time.Second, time.Second)
	clock := time.Unix(1_700_000_000, 0)
	qw.SetNowFunc(func() time.Time { return clock })
	qw.Tick()
	if got := qw.P99(); got != 0 {
		t.Fatalf("pre-baseline history leaked into the window: p99 = %g", got)
	}
	h.Observe(500 * time.Microsecond)
	clock = clock.Add(time.Second)
	if got := qw.P99(); got != 0.001 {
		t.Fatalf("p99 = %g, want 0.001 from the single live observation", got)
	}
}

// TestQuantileWindowIntervalGate: ticks inside one interval are
// coalesced, so a hot polling loop cannot starve the window down to
// nothing by rotating snapshots on every call.
func TestQuantileWindowIntervalGate(t *testing.T) {
	h, qw, clock := qwFixture(3*time.Second, time.Second)
	qw.Tick()
	h.Observe(50 * time.Millisecond)
	// Many sub-interval polls: none may rotate the baseline forward past
	// the observation.
	for i := 0; i < 20; i++ {
		*clock = clock.Add(10 * time.Millisecond)
		if got := qw.P99(); got != 0.1 {
			t.Fatalf("poll %d: p99 = %g, want 0.1", i, got)
		}
	}
}
