// Package obs is the process-wide observability layer: a lock-cheap
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms — zero allocations on the hot path), epoch-lifecycle span
// tracing across generate → pipeline → encode → ship → decode → ingest
// → snapshot → replicate → ack, a structured decision trace for every
// runtime adaptation (load-factor changes, proxy state transitions,
// HA promotion/fencing, shipper failover), and an introspection HTTP
// server exposing /metrics (Prometheus text exposition), /status and
// /debug/pprof on a live node.
//
// The registry keeps the dynamic name-keyed API the old
// metrics.CounterSet exposed (Inc/Add/Set/Get/Snapshot/String, all
// nil-receiver safe), so per-instance transport and HA counters carry
// over unchanged, and adds typed handles (Counter, Gauge, FloatGauge,
// Histogram) that resolve the name once and update with a single atomic
// op afterwards. obs imports only the standard library; every other
// package may instrument itself freely without import cycles.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// enabled gates the timing side of instrumentation (Now returns the
// zero time when off, so Since and histogram updates no-op). Counters
// and gauges stay live either way — they are single atomic adds.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches epoch-lifecycle timing on or off process-wide.
// jarvis-bench -obs-off uses it to measure the instrumentation delta.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether lifecycle timing is on.
func Enabled() bool { return enabled.Load() }

// Now returns the current time, or the zero time when observability
// timing is disabled — Since treats a zero start as "don't record", so
// a disabled build pays neither clock read.
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

// metric is one registered time series: a named atomic cell, or a
// histogram's bucket array.
type metric struct {
	family   string // metric family name, e.g. "epochs_applied"
	labelKey string // optional single label, e.g. "stage"
	labelVal string
	kind     kind
	val      atomic.Int64 // counter/gauge value; FloatGauge stores Float64bits
	h        *histogram
}

func (m *metric) key() string { return metricKey(m.family, m.labelVal) }

func metricKey(family, labelVal string) string {
	if labelVal == "" {
		return family
	}
	return family + "\x00" + labelVal
}

// histogram is a fixed-bound latency histogram. Bounds are upper bucket
// edges in seconds; observations are linear-scanned into the first
// bucket that holds them (the bound slice is small and cache-resident).
type histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1; last is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for ; i < len(h.bounds); i++ {
		if sec <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Registry is a set of named metrics. Registration (first use of a
// name) takes a write lock; every subsequent update through a typed
// handle is a single atomic op, and updates through the dynamic
// name-keyed API take only a read lock. A nil *Registry is a valid
// no-op sink, like the nil *metrics.CounterSet it replaces.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: lifecycle stage
// histograms and other cross-subsystem series register here.
func Default() *Registry { return defaultRegistry }

// lookup returns the metric registered under (family, labelVal),
// creating it with the given kind if absent. Returns nil on a nil
// registry or on a kind conflict.
func (r *Registry) lookup(family, labelKey, labelVal string, k kind) *metric {
	if r == nil {
		return nil
	}
	key := metricKey(family, labelVal)
	r.mu.RLock()
	m := r.metrics[key]
	r.mu.RUnlock()
	if m != nil {
		if m.kind != k {
			return nil
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[key]; m != nil {
		if m.kind != k {
			return nil
		}
		return m
	}
	m = &metric{family: family, labelKey: labelKey, labelVal: labelVal, kind: k}
	if k == kindHistogram {
		m.h = &histogram{}
	}
	r.metrics[key] = m
	return m
}

// Counter is a monotonically increasing atomic counter handle. The
// zero Counter is a no-op.
type Counter struct{ m *metric }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c Counter) Add(delta int64) {
	if c.m != nil {
		c.m.val.Add(delta)
	}
}

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.m == nil {
		return 0
	}
	return c.m.val.Load()
}

// Gauge is a settable atomic integer gauge handle. The zero Gauge is a
// no-op.
type Gauge struct{ m *metric }

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.m != nil {
		g.m.val.Store(v)
	}
}

// Value returns the current value.
func (g Gauge) Value() int64 {
	if g.m == nil {
		return 0
	}
	return g.m.val.Load()
}

// FloatGauge is a settable atomic float gauge handle (stored as
// Float64bits). The zero FloatGauge is a no-op.
type FloatGauge struct{ m *metric }

// Set stores v.
func (g FloatGauge) Set(v float64) {
	if g.m != nil {
		g.m.val.Store(int64(floatBits(v)))
	}
}

// Value returns the current value.
func (g FloatGauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return floatFromBits(uint64(g.m.val.Load()))
}

// Histogram is a fixed-bucket latency histogram handle. The zero
// Histogram is a no-op.
type Histogram struct{ m *metric }

// Observe records one duration.
func (h Histogram) Observe(d time.Duration) {
	if h.m != nil {
		h.m.h.observe(d)
	}
}

// Count returns the number of observations.
func (h Histogram) Count() int64 {
	if h.m == nil {
		return 0
	}
	return h.m.h.count.Load()
}

// Buckets snapshots the histogram: the upper bucket edges in seconds
// and the per-bucket (non-cumulative) counts, len(bounds)+1 with the
// overflow bucket last. The counts slice is appended into buf when it
// has capacity, so steady-state callers (the quantile estimator)
// snapshot without allocating. A zero Histogram returns nils.
func (h Histogram) Buckets(buf []int64) (bounds []float64, counts []int64) {
	if h.m == nil || h.m.h == nil {
		return nil, nil
	}
	hh := h.m.h
	bounds = hh.bounds
	counts = buf[:0]
	for i := range hh.counts {
		counts = append(counts, hh.counts[i].Load())
	}
	return bounds, counts
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) Counter {
	return Counter{r.lookup(name, "", "", kindCounter)}
}

// LabeledCounter returns a counter carrying one constant label (e.g.
// epoch_critical_path_total{segment="ingest"}); series of one family
// share a single # TYPE line in the exposition, like labeled
// histograms.
func (r *Registry) LabeledCounter(name, labelKey, labelVal string) Counter {
	return Counter{r.lookup(name, labelKey, labelVal, kindCounter)}
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) Gauge {
	return Gauge{r.lookup(name, "", "", kindGauge)}
}

// FloatGauge returns (registering on first use) the named float gauge.
func (r *Registry) FloatGauge(name string) FloatGauge {
	return FloatGauge{r.lookup(name, "", "", kindFloatGauge)}
}

// Histogram returns (registering on first use) the named histogram with
// the given upper bucket bounds in seconds. Bounds are fixed at first
// registration; later callers share the existing buckets.
func (r *Registry) Histogram(name string, bounds []float64) Histogram {
	return r.LabeledHistogram(name, "", "", bounds)
}

// LabeledHistogram returns a histogram carrying one constant label
// (e.g. stage_latency_seconds{stage="ingest"}). Series of one family
// are grouped under a single # TYPE line in the exposition.
func (r *Registry) LabeledHistogram(name, labelKey, labelVal string, bounds []float64) Histogram {
	m := r.lookup(name, labelKey, labelVal, kindHistogram)
	if m != nil && len(m.h.bounds) == 0 && len(bounds) > 0 {
		r.mu.Lock()
		if len(m.h.bounds) == 0 {
			b := append([]float64(nil), bounds...)
			sort.Float64s(b)
			m.h.bounds = b
			m.h.counts = make([]atomic.Int64, len(b)+1)
		}
		r.mu.Unlock()
	}
	return Histogram{m}
}

// Inc adds one to the named counter (dynamic name-keyed API, kept
// compatible with the old metrics.CounterSet).
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter.
func (r *Registry) Add(name string, delta int64) {
	if m := r.lookup(name, "", "", kindCounter); m != nil {
		m.val.Add(delta)
	}
}

// Set stores v in the named gauge.
func (r *Registry) Set(name string, v int64) {
	if m := r.lookup(name, "", "", kindGauge); m != nil {
		m.val.Store(v)
	}
}

// Get returns the named counter or gauge value, zero if absent. A nil
// registry reads zero.
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	if m == nil || m.kind == kindHistogram || m.kind == kindFloatGauge {
		return 0
	}
	return m.val.Load()
}

// Snapshot returns the current counter and gauge values by name.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.metrics))
	for key, m := range r.metrics {
		if m.kind == kindCounter || m.kind == kindGauge {
			out[key] = m.val.Load()
		}
	}
	return out
}

// String renders the counters and gauges sorted by name, the same
// "name=value" form the old CounterSet printed on shutdown.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for i, name := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", name, snap[name])
	}
	return s
}
