package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryDynamicAPI pins the name-keyed API to the semantics the
// old metrics.CounterSet had — transport and ha migrated onto it
// verbatim, so Get/Snapshot/String must behave identically.
func TestRegistryDynamicAPI(t *testing.T) {
	r := NewRegistry()
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
	r.Inc("conns_accepted")
	r.Add("conns_accepted", 2)
	r.Add("decode_errors", 1)
	if got := r.Get("conns_accepted"); got != 3 {
		t.Fatalf("conns_accepted = %d", got)
	}
	snap := r.Snapshot()
	if snap["conns_accepted"] != 3 || snap["decode_errors"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if s := r.String(); s != "conns_accepted=3 decode_errors=1" {
		t.Fatalf("string = %q", s)
	}
	r.Set("lag", 7)
	if got := r.Get("lag"); got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	r.Set("lag", 2) // gauges overwrite, not accumulate
	if got := r.Get("lag"); got != 2 {
		t.Fatalf("gauge after reset = %d", got)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Inc("ok") // must not panic
	r.Add("ok", 2)
	r.Set("ok", 3)
	if r.Get("ok") != 0 {
		t.Fatal("nil registry must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal("nil registry exposition must be a no-op")
	}
	c := r.Counter("ok")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("handle from nil registry must be a no-op")
	}
}

func TestTypedHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || r.Get("frames") != 5 {
		t.Fatalf("counter = %d / %d", c.Value(), r.Get("frames"))
	}
	g := r.Gauge("depth")
	g.Set(9)
	if g.Value() != 9 || r.Get("depth") != 9 {
		t.Fatalf("gauge = %d / %d", g.Value(), r.Get("depth"))
	}
	f := r.FloatGauge("ratio")
	f.Set(2.5)
	if f.Value() != 2.5 {
		t.Fatalf("float gauge = %v", f.Value())
	}
	h := r.Histogram("lat", []float64{0.001, 0.1})
	h.Observe(time.Millisecond / 2)
	h.Observe(time.Second)
	if h.Count() != 2 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	// Handles resolve to the same cell as later lookups.
	if r.Counter("frames").Value() != 5 {
		t.Fatal("re-resolved counter lost its value")
	}
}

// TestKindConflict: a name registered as one kind returns a no-op
// handle when re-requested as another, instead of corrupting the cell.
func TestKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	g := r.Gauge("x")
	g.Set(99)
	if g.Value() != 0 {
		t.Fatal("conflicting-kind handle must be a no-op")
	}
	if r.Get("x") != 1 {
		t.Fatalf("counter value corrupted: %d", r.Get("x"))
	}
}

// TestRegistryConcurrentWriters drives typed handles, the dynamic API
// and scrapes from many goroutines; run with -race.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("racy")
	h := r.Histogram("lat", StageBounds)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				r.Inc("dyn")
				r.Set("gauge", int64(j))
				h.Observe(time.Microsecond * time.Duration(j))
			}
		}()
	}
	// Concurrent scrapes while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			_ = r.Snapshot()
			_ = r.String()
		}
	}()
	wg.Wait()
	if c.Value() != 1600 || r.Get("dyn") != 1600 {
		t.Fatalf("racy = %d, dyn = %d", c.Value(), r.Get("dyn"))
	}
	if h.Count() != 1600 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

// TestHotPathZeroAllocs bounds the warm instrumentation path at zero
// allocations: counter increments, histogram observations and the
// Now/Since pair that wraps every instrumented stage.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	f := r.FloatGauge("ratio")
	h := r.Histogram("lat", StageBounds)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		f.Set(1.5)
		h.Observe(time.Millisecond)
		start := Now()
		Since(StageIngest, start)
		SinceN(StageDecode, start, 7, 42)
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f allocs/op, want 0", n)
	}
}

func TestDisabledTiming(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	if !Now().IsZero() {
		t.Fatal("Now must return the zero time when disabled")
	}
	before := stageHists[StageAck].Count()
	Since(StageAck, Now())
	if got := stageHists[StageAck].Count(); got != before {
		t.Fatalf("disabled Since recorded an observation (%d -> %d)", before, got)
	}
	SetEnabled(true)
	Since(StageAck, Now())
	if got := stageHists[StageAck].Count(); got != before+1 {
		t.Fatalf("enabled Since did not record (%d -> %d)", before, got)
	}
}
