package obs_test

import (
	"bytes"
	"reflect"
	"testing"

	"jarvis/internal/core"
	"jarvis/internal/obs"
)

// TestDecisionTraceReplay is the end-to-end replay smoke test: run an
// adaptive pipeline under load, round-trip the recorded decision trace
// through its JSONL encoding, and reconstruct the load-factor timeline
// deterministically — the final reconstructed vector must be exactly
// the factors the live pipeline ended on.
func TestDecisionTraceReplay(t *testing.T) {
	obs.Decisions().Reset()

	// A tight budget forces real adaptation (probe, profile, adapt), so
	// the trace contains several load_factors decisions.
	src, gen, err := core.NewPingmeshSource(1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 20; e++ {
		res, err := src.RunEpoch(gen.NextWindow(1_000_000))
		if err != nil {
			t.Fatal(err)
		}
		res.Recycle()
	}

	ds := obs.Decisions().Recent(0)
	var nLF int
	for _, d := range ds {
		if d.Kind == "load_factors" {
			nLF++
		}
	}
	if nLF == 0 {
		t.Fatal("adaptive run emitted no load_factors decisions")
	}

	// JSONL round trip: what a -obs-decisions file (or /decisions
	// endpoint) would hold must decode back identically.
	var buf bytes.Buffer
	if err := obs.EncodeDecisions(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := obs.DecodeDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("decision trace changed across the JSONL round trip")
	}

	// Replay: the timeline must chain (each Before equals the prior
	// After — LoadFactorTimeline verifies it) and land on the live
	// pipeline's final factors.
	tl, err := obs.LoadFactorTimeline(back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != nLF {
		t.Fatalf("timeline has %d entries, trace has %d load_factors decisions", len(tl), nLF)
	}
	if got := src.LoadFactors(); !reflect.DeepEqual(tl[len(tl)-1], got) {
		t.Fatalf("replayed final factors %v != live factors %v", tl[len(tl)-1], got)
	}
}
