package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the introspection HTTP endpoint a node exposes with
// -obs-listen: /metrics (Prometheus text exposition over every added
// registry), /status (a JSON snapshot supplied by the host process),
// /decisions (the recent decision trace as JSON lines), /trace (recent
// completed cross-process epoch traces as JSON lines, with derived
// segments and critical-path attribution), /debug/pprof/* (the standard
// Go profiles), and any extra handlers the host process installs with
// Handle before Start (jarvis-sp mounts /flightrecorder this way).
type Server struct {
	mu     sync.Mutex
	regs   []*Registry
	status func() any
	extra  map[string]http.HandlerFunc
	srv    *http.Server
	ln     net.Listener
}

// NewServer returns a server exposing the default registry and the
// process-wide decision log; AddRegistry attaches per-instance
// registries (receiver counters, HA gate counters).
func NewServer() *Server {
	return &Server{regs: []*Registry{Default()}}
}

// AddRegistry appends registries to the /metrics exposition.
func (s *Server) AddRegistry(regs ...*Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range regs {
		if r != nil {
			s.regs = append(s.regs, r)
		}
	}
}

// SetStatus installs the /status snapshot provider. The function is
// called per request and its result rendered as JSON.
func (s *Server) SetStatus(f func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status = f
}

// Handle installs an extra handler served at pattern. Call before
// Start; patterns registered after Start are ignored.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.extra == nil {
		s.extra = make(map[string]http.HandlerFunc)
	}
	s.extra[pattern] = h
}

// Start listens on addr and serves until Close. It returns the bound
// address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/decisions", s.handleDecisions)
	mux.HandleFunc("/trace", s.handleTrace)
	s.mu.Lock()
	for pattern, h := range s.extra {
		mux.HandleFunc(pattern, h)
	}
	s.mu.Unlock()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.srv = srv
	s.ln = ln
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close shuts the listener down.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.Lock()
	regs := append([]*Registry(nil), s.regs...)
	s.mu.Unlock()
	for _, r := range regs {
		if err := r.WritePrometheus(w); err != nil {
			return
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	f := s.status
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	var v any
	if f != nil {
		v = f()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleDecisions(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = EncodeDecisions(w, Decisions().Recent(0))
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = EncodeTraces(w, Traces().Recent(0))
}
