package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServerEndpoints drives the introspection server over real HTTP:
// /metrics must render every attached registry (including the default
// registry's stage-latency histograms), /status the host-supplied
// snapshot, /decisions the recent decision trace.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("epochs_applied").Add(12)
	reg.Gauge("ha_replication_lag_epochs").Set(1)

	Observe(StageIngest, 2*time.Millisecond) // ensure a default-registry series exists
	Emit(Decision{Kind: "proxy_state", Stage: 1, BeforeState: "stable", AfterState: "congested"})

	s := NewServer()
	s.AddRegistry(reg, nil) // nil must be skipped
	s.SetStatus(func() any {
		return map[string]any{"role": "primary", "term": 2}
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE stage_latency_seconds histogram",
		`stage_latency_seconds_bucket{stage="ingest",le="+Inf"}`,
		"epochs_applied 12",
		"ha_replication_lag_epochs 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	status, ctype := get("/status")
	if ctype != "application/json" {
		t.Fatalf("status content type = %q", ctype)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(status), &st); err != nil {
		t.Fatal(err)
	}
	if st["role"] != "primary" || st["term"] != float64(2) {
		t.Fatalf("status = %v", st)
	}

	decisions, _ := get("/decisions")
	ds, err := DecodeDecisions(strings.NewReader(decisions))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range ds {
		if d.Kind == "proxy_state" && d.AfterState == "congested" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/decisions missing the emitted event:\n%s", decisions)
	}

	if body, _ := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}
