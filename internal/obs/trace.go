package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one segment of the epoch lifecycle, in pipeline order:
// the agent generates an epoch, runs its source-side pipeline, encodes
// and ships the drain; the SP decodes it, ingests it (columnar or
// row), snapshots durable state, replicates to standbys, and acks.
type Stage uint8

const (
	StageGenerate Stage = iota
	StagePipeline
	StageEncode
	StageShip
	StageDecode
	StageIngest
	StageSnapshot
	StageReplicate
	StageAck
	stageCount
)

var stageNames = [stageCount]string{
	"generate", "pipeline", "encode", "ship", "decode",
	"ingest", "snapshot", "replicate", "ack",
}

// String returns the stage's label value in stage_latency_seconds.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageBounds are the upper bucket edges (seconds) of the per-stage
// latency histograms: 25µs up to 2.5s, covering the sub-millisecond
// columnar ingest as well as multi-hundred-millisecond replication
// waits.
var StageBounds = []float64{
	25e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// stageHists holds the per-stage histogram handles in the default
// registry; resolved once at init, so Observe is a single bounds scan
// plus three atomic adds — no map lookups, no allocations.
var stageHists [stageCount]Histogram

func init() {
	for s := Stage(0); s < stageCount; s++ {
		stageHists[s] = defaultRegistry.LabeledHistogram(
			"stage_latency_seconds", "stage", s.String(), StageBounds)
	}
}

// StageHistogram returns the default registry's latency histogram for
// one stage — the handle pressure estimators (QuantileWindow) window
// over, e.g. StageIngest for admission gating.
func StageHistogram(s Stage) Histogram {
	if s < stageCount {
		return stageHists[s]
	}
	return Histogram{}
}

// Observe records one stage duration into the default registry's
// stage_latency_seconds histogram. It is always on (single atomic
// update); the caller typically gates the clock reads via Now/Since.
func Observe(s Stage, d time.Duration) {
	if s < stageCount {
		stageHists[s].Observe(d)
		exportSpan(s, d, 0, 0)
	}
}

// Since records the time elapsed from start for the stage. A zero
// start (what Now returns when observability is disabled) records
// nothing, so a disabled build pays no clock read and no atomics.
func Since(s Stage, start time.Time) {
	if start.IsZero() {
		return
	}
	Observe(s, time.Since(start))
}

// ObserveSince records the stage duration like Since and returns it, so
// callers that also need the measured duration (the pipeline feeding
// the epoch trace context) pay a single clock read. A zero start
// records nothing and returns 0.
func ObserveSince(s Stage, start time.Time) time.Duration {
	if start.IsZero() {
		return 0
	}
	d := time.Since(start)
	Observe(s, d)
	return d
}

// ObserveDurN records an already-measured stage duration with span
// context, for callers that timed the stage themselves.
func ObserveDurN(s Stage, d time.Duration, source uint32, epoch uint64) {
	if s < stageCount {
		stageHists[s].Observe(d)
		exportSpan(s, d, source, epoch)
	}
}

// SinceN is Since with span context: source and epoch tag the exported
// span record when span export is on. The histogram update is
// identical to Since.
func SinceN(s Stage, start time.Time, source uint32, epoch uint64) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	if s < stageCount {
		stageHists[s].Observe(d)
		exportSpan(s, d, source, epoch)
	}
}

// Span is one exported stage timing in the JSONL span sink.
type Span struct {
	TsMicros  int64  `json:"ts_us"`
	Stage     string `json:"stage"`
	DurMicros int64  `json:"dur_us"`
	Source    uint32 `json:"source,omitempty"`
	Epoch     uint64 `json:"epoch,omitempty"`
}

// spanSink is the optional full-span JSONL export. Histograms are
// always on; the sink samples one span in sampleEvery per stage, so
// full tracing stays opt-in and bounded.
var spanOn atomic.Bool

var spanSink struct {
	mu          sync.Mutex
	enc         *json.Encoder
	sampleEvery int64
	seen        [stageCount]int64
}

// SetSpanSink directs sampled span records to w as JSON lines, one in
// sampleEvery per stage (1 = every span). A nil writer disables
// export.
func SetSpanSink(w io.Writer, sampleEvery int) {
	spanSink.mu.Lock()
	defer spanSink.mu.Unlock()
	if w != nil {
		spanSink.enc = json.NewEncoder(w)
	} else {
		spanSink.enc = nil
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	spanSink.sampleEvery = int64(sampleEvery)
	spanOn.Store(w != nil)
}

func exportSpan(s Stage, d time.Duration, source uint32, epoch uint64) {
	if !spanOn.Load() {
		return
	}
	spanSink.mu.Lock()
	defer spanSink.mu.Unlock()
	if spanSink.enc == nil {
		return
	}
	n := spanSink.seen[s]
	spanSink.seen[s]++
	if n%spanSink.sampleEvery != 0 {
		return
	}
	_ = spanSink.enc.Encode(Span{
		TsMicros:  time.Now().UnixMicro(),
		Stage:     s.String(),
		DurMicros: d.Microseconds(),
		Source:    source,
		Epoch:     epoch,
	})
}
