package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"generate", "pipeline", "encode", "ship", "decode",
		"ingest", "snapshot", "replicate", "ack"}
	for s := Stage(0); s < stageCount; s++ {
		if s.String() != want[s] {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage name")
	}
}

func TestObserveRecordsDefaultHistogram(t *testing.T) {
	before := stageHists[StageSnapshot].Count()
	Observe(StageSnapshot, 3*time.Millisecond)
	if got := stageHists[StageSnapshot].Count(); got != before+1 {
		t.Fatalf("count %d -> %d", before, got)
	}
}

// TestSpanSinkSampling: the JSONL sink exports one span in sampleEvery
// per stage, tagged with source and epoch when SinceN supplied them.
func TestSpanSinkSampling(t *testing.T) {
	var buf bytes.Buffer
	SetSpanSink(&buf, 2)
	defer SetSpanSink(nil, 1)
	for i := 0; i < 6; i++ {
		Observe(StageEncode, time.Millisecond)
	}
	var spans []Span
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var sp Span
		if err := dec.Decode(&sp); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, sp)
	}
	if len(spans) != 3 {
		t.Fatalf("sampled %d spans from 6 observations at 1-in-2", len(spans))
	}
	for _, sp := range spans {
		if sp.Stage != "encode" || sp.DurMicros != 1000 {
			t.Fatalf("span = %+v", sp)
		}
	}

	buf.Reset()
	SetSpanSink(&buf, 1)
	start := time.Now().Add(-2 * time.Millisecond)
	SinceN(StageShip, start, 9, 41)
	var sp Span
	if err := json.Unmarshal(buf.Bytes(), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Stage != "ship" || sp.Source != 9 || sp.Epoch != 41 || sp.DurMicros < 2000 {
		t.Fatalf("span = %+v", sp)
	}

	SetSpanSink(nil, 1)
	n := buf.Len()
	Observe(StageShip, time.Millisecond)
	if buf.Len() != n {
		t.Fatal("disabled sink still exported")
	}
}
