package operator

import (
	"reflect"
	"testing"

	"jarvis/internal/telemetry"
)

// probeBatch builds a deterministic test batch of raw probes.
func probeBatch(n int) telemetry.Batch {
	out := make(telemetry.Batch, 0, n)
	for i := 0; i < n; i++ {
		p := &telemetry.PingProbe{
			Timestamp: int64(i) * 1000,
			SrcIP:     0x0A000001,
			DstIP:     0x0B000000 + uint32(i%7),
			RTTMicros: uint32(100 + i%50),
			ErrCode:   uint32(i % 3),
		}
		out = append(out, telemetry.NewProbeRecord(p))
	}
	return out
}

// recordPath runs a batch through Process record by record — the
// reference the vectorized path must match.
func recordPath(op Operator, in telemetry.Batch) telemetry.Batch {
	var out telemetry.Batch
	emit := func(r telemetry.Record) { out = append(out, r) }
	for i := range in {
		op.Process(in[i], emit)
	}
	return out
}

// plainOperator hides an operator's BatchProcessor implementation so
// AsBatchProcessor must fall back to the record adapter.
type plainOperator struct{ Operator }

func assertBatchMatchesRecord(t *testing.T, mk func() Operator, in telemetry.Batch) {
	t.Helper()
	ref := recordPath(mk(), in)

	vec := mk()
	bp := AsBatchProcessor(vec)
	if _, isAdapter := bp.(*recordAdapter); isAdapter {
		t.Fatalf("%T must implement BatchProcessor natively", vec)
	}
	var got telemetry.Batch
	bp.ProcessBatch(in, &got)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("vectorized path diverges: %d vs %d records", len(ref), len(got))
	}

	// The generic adapter must also reproduce the record path.
	ad := AsBatchProcessor(plainOperator{mk()})
	if _, isAdapter := ad.(*recordAdapter); !isAdapter {
		t.Fatal("wrapped operator should use the record adapter")
	}
	var viaAdapter telemetry.Batch
	ad.ProcessBatch(in, &viaAdapter)
	if !reflect.DeepEqual(ref, viaAdapter) {
		t.Fatal("record adapter diverges from Process")
	}
}

func TestWindowProcessBatch(t *testing.T) {
	in := probeBatch(500)
	assertBatchMatchesRecord(t, func() Operator {
		return NewWindow("w", 10_000)
	}, in)
	// Input records must stay untouched (the batch path may not mutate
	// shared input slices).
	for i := range in {
		if in[i].Window != 0 {
			t.Fatal("ProcessBatch mutated its input")
		}
	}
}

func TestFilterProcessBatch(t *testing.T) {
	assertBatchMatchesRecord(t, func() Operator {
		return NewFilter("f", func(r telemetry.Record) bool {
			return r.Data.(*telemetry.PingProbe).ErrCode == 0
		})
	}, probeBatch(500))
}

func TestMapProcessBatch(t *testing.T) {
	// Flat-map: emits 0, 1 or 2 records per input.
	assertBatchMatchesRecord(t, func() Operator {
		return NewMap("m", func(r telemetry.Record, emit Emit) {
			p := r.Data.(*telemetry.PingProbe)
			switch p.ErrCode {
			case 0:
				emit(r)
				emit(r)
			case 1:
				emit(r)
			}
		})
	}, probeBatch(500))
}

func TestJoinProcessBatch(t *testing.T) {
	table := telemetry.NewToRTable([]uint32{0x0A000001}, 4)
	assertBatchMatchesRecord(t, func() Operator {
		return NewSrcToRJoin("j", table)
	}, probeBatch(500))
}

func groupAggState(g *GroupAgg) telemetry.Batch {
	var rows telemetry.Batch
	g.Drain(func(r telemetry.Record) { rows = append(rows, r) })
	return rows
}

func TestGroupAggProcessBatch(t *testing.T) {
	in := probeBatch(1000)
	// Window-assign first so grouping state lands in real windows.
	w := NewWindow("w", 10_000)
	var windowed telemetry.Batch
	w.ProcessBatch(in, &windowed)

	ref := NewGroupAgg("g", 10_000, ProbePairKey, ProbeRTT)
	for i := range windowed {
		ref.Process(windowed[i], func(telemetry.Record) {})
	}
	vec := NewGroupAgg("g", 10_000, ProbePairKey, ProbeRTT)
	var none telemetry.Batch
	vec.ProcessBatch(windowed, &none)
	if len(none) != 0 {
		t.Fatal("G+R must not emit from ProcessBatch")
	}
	if !reflect.DeepEqual(groupAggState(ref), groupAggState(vec)) {
		t.Fatal("vectorized G+R state diverges from record path")
	}
}

func TestGroupQuantileProcessBatch(t *testing.T) {
	in := probeBatch(1000)
	w := NewWindow("w", 10_000)
	var windowed telemetry.Batch
	w.ProcessBatch(in, &windowed)

	mk := func() *GroupQuantile {
		return NewGroupQuantile("q", 10_000, ProbePairKey, ProbeRTT, 0, 1000, 50)
	}
	ref := mk()
	for i := range windowed {
		ref.Process(windowed[i], func(telemetry.Record) {})
	}
	vec := mk()
	var none telemetry.Batch
	vec.ProcessBatch(windowed, &none)
	if len(none) != 0 {
		t.Fatal("quantile must not emit from ProcessBatch")
	}
	var refRows, vecRows telemetry.Batch
	ref.Drain(func(r telemetry.Record) { refRows = append(refRows, r) })
	vec.Drain(func(r telemetry.Record) { vecRows = append(vecRows, r) })
	if !reflect.DeepEqual(refRows, vecRows) {
		t.Fatal("vectorized quantile state diverges from record path")
	}
}

// TestGroupAggBatchMergesPartials covers the second input shape: AggRow
// partials from a source replica merging through the batch path.
func TestGroupAggBatchMergesPartials(t *testing.T) {
	up := NewGroupAgg("up", 10_000, ProbePairKey, ProbeRTT)
	w := NewWindow("w", 10_000)
	var windowed telemetry.Batch
	w.ProcessBatch(probeBatch(400), &windowed)
	up.ProcessBatch(windowed, nil)
	var partials telemetry.Batch
	up.Drain(func(r telemetry.Record) { partials = append(partials, r) })
	if len(partials) == 0 {
		t.Fatal("no partials")
	}

	ref := NewGroupAgg("d", 10_000, ProbePairKey, ProbeRTT)
	for i := range partials {
		ref.Process(partials[i], func(telemetry.Record) {})
	}
	vec := NewGroupAgg("d", 10_000, ProbePairKey, ProbeRTT)
	vec.ProcessBatch(partials, nil)
	if !reflect.DeepEqual(groupAggState(ref), groupAggState(vec)) {
		t.Fatal("partial merge diverges between paths")
	}
}
