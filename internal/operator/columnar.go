package operator

import (
	"math"

	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// Columnar (SoA) execution. The SP-side engine drives whole decoded
// columnar waves (wire.ColumnarBatch) through the operators that
// implement ColumnarProcessor, so the hot per-record work — window
// assignment, filter predicates, group-key extraction — runs over
// contiguous columns instead of materialized telemetry.Record structs.
//
// ProcessColumnar mutates the wave in place under the wire package's
// mutation discipline: an operator never writes through a column array
// it received (those may be shared with the decoded frame); it allocates
// replacements and swaps the section fields. Filters narrow sections via
// selection vectors; flat-maps rebuild the section list; GroupAgg
// consumes the wave entirely (its results leave via Flush, as on the row
// path). Every ProcessColumnar must be observably equivalent to
// materializing the wave's live rows and calling ProcessBatch — section
// types an operator cannot handle SoA are materialized per section, so a
// wave stays columnar wherever it can.
type ColumnarProcessor interface {
	// ColumnarCapable reports whether the operator can usefully process
	// SoA waves (it has the kernels its configuration needs). The engine
	// falls back to row materialization at the first incapable stage.
	ColumnarCapable() bool
	// ProcessColumnar advances the wave through this operator in place.
	ProcessColumnar(cb *wire.ColumnarBatch)
}

// ColumnarPred compiles a filter predicate against one SoA section: it
// returns a per-live-row predicate over the column index, or ok=false
// when the section's type cannot be evaluated columnar (the filter then
// materializes that section and applies the row predicate).
type ColumnarPred func(sec *wire.ColSec) (keep func(i int) bool, ok bool)

// ColumnarMapKernel transforms one SoA section, appending zero or more
// replacement sections to out. It reports false when it cannot handle
// the section's type; the Map then falls back to materializing that
// section's rows. Kernels must compact away the input's selection
// vector (output sections carry only live rows) and must not write
// through the input section's columns.
type ColumnarMapKernel func(sec *wire.ColSec, out *[]wire.ColSec) bool

// ColumnarJoinKernel probes one SoA section through a static-table join,
// appending zero or more replacement sections to out (typically one
// compacted section of the surviving, projected rows). It reports false
// when it cannot handle the section's type; the Join then falls back to
// materializing that section's rows and probing them one at a time.
// Like map kernels, join kernels must compact away the input's selection
// vector and must not write through the input section's columns.
type ColumnarJoinKernel func(sec *wire.ColSec, out *[]wire.ColSec) bool

// AggKernel selects GroupAgg's SoA aggregation loop. A kernel must
// compute exactly the same group key and value as the operator's
// keyFn/valFn (the plan layer wires them together); sections a kernel
// does not cover fall back to per-section row materialization.
type AggKernel int

// GroupAgg columnar kernels for the canonical queries' extractors.
const (
	// AggKernelNone disables SoA aggregation of raw sections (partial
	// AggRow sections still merge columnar).
	AggKernelNone AggKernel = iota
	// AggKernelPingPairRTT keys ping sections on the packed numeric
	// (srcIP<<32 | dstIP) pair and aggregates RTT — ProbePairKey/ProbeRTT.
	AggKernelPingPairRTT
	// AggKernelToRPairRTT keys ToR sections on (srcToR<<32 | dstToR) and
	// aggregates RTT — ToRPairKey/ToRRTT.
	AggKernelToRPairRTT
	// AggKernelJobStatsCount keys JobStats sections on
	// (tenant, statName, bucket) and counts — JobStatsKey/JobStatsOne.
	// The string form "tenant|statName|bucket" is assembled once per
	// group (when the group is first seen), not once per row: lookups go
	// through a per-window cache keyed on the interned column strings.
	AggKernelJobStatsCount
	// AggKernelJobStatsDur keys JobStats sections like
	// AggKernelJobStatsCount but aggregates the Stat value instead of
	// counting — JobStatsKey/JobStatsVal. The TraceSpanAgg query uses it
	// to fold span durations per (service, operation) key.
	AggKernelJobStatsDur
)

// --- Window ---

// ColumnarCapable implements ColumnarProcessor: window assignment needs
// only the shared header columns.
func (w *Window) ColumnarCapable() bool { return true }

// ProcessColumnar implements ColumnarProcessor: each section's window
// column is recomputed from its time column in one pass. The replacement
// columns come from a high-water scratch buffer reused across calls
// (their contents are only referenced until the wave is consumed, within
// the same engine ingest).
func (w *Window) ProcessColumnar(cb *wire.ColumnarBatch) {
	total := 0
	for si := range cb.Secs {
		if cb.Secs[si].Rows == nil {
			total += len(cb.Secs[si].Times)
		}
	}
	if cap(w.winScratch) < total {
		w.winScratch = make([]int64, total)
	}
	buf := w.winScratch[:0]
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		if sec.Rows != nil {
			// Materialized fallback rows: rewrite the records into a fresh
			// slice (the input's array may be shared).
			rows := make(telemetry.Batch, len(sec.Rows))
			for i, rec := range sec.Rows {
				rec.Window = w.WindowOf(rec.Time)
				rows[i] = rec
			}
			sec.Rows = rows
			continue
		}
		n := len(sec.Times)
		win := buf[len(buf) : len(buf)+n]
		buf = buf[:len(buf)+n]
		// Event times arrive near-monotonic, so consecutive rows almost
		// always share a window: cache the current window's [lo, hi) time
		// range (exactly the floor-division bucket WindowOf computes) and
		// divide only when a row falls outside it.
		var curWin, lo, hi int64
		hi = math.MinInt64 // force the first row to resolve
		for i, t := range sec.Times {
			if t < lo || t >= hi {
				curWin = w.WindowOf(t)
				lo = curWin * w.dur
				hi = lo + w.dur
			}
			win[i] = curWin
		}
		sec.Windows = win
	}
}

// --- Filter ---

// SetColumnarPred installs the filter's compiled SoA predicate (the plan
// layer compiles optimizer-visible expressions; opaque predicates may
// register a hand-written one). Without it the filter is not columnar
// capable and the engine materializes rows at this stage.
func (f *Filter) SetColumnarPred(p ColumnarPred) { f.colPred = p }

// ColumnarCapable implements ColumnarProcessor.
func (f *Filter) ColumnarCapable() bool { return f.colPred != nil }

// ProcessColumnar implements ColumnarProcessor: sections the compiled
// predicate covers are narrowed with a selection vector (columns stay
// shared, zero copying); the rest are materialized and filtered by the
// row predicate.
func (f *Filter) ProcessColumnar(cb *wire.ColumnarBatch) {
	total := 0
	for si := range cb.Secs {
		total += cb.Secs[si].Len()
	}
	if cap(f.selScratch) < total {
		f.selScratch = make([]int32, total)
	}
	buf := f.selScratch[:0]
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		if sec.Rows != nil {
			sec.Rows = f.filterRows(sec.Rows)
			continue
		}
		keep, ok := f.colPred(sec)
		if !ok {
			var rows telemetry.Batch
			sec.AppendRows(&rows)
			*sec = wire.ColSec{Tag: sec.Tag, Rows: f.filterRows(rows)}
			continue
		}
		sel := buf[len(buf):len(buf)]
		if sec.Sel != nil {
			for _, i := range sec.Sel {
				if keep(int(i)) {
					sel = append(sel, i)
				}
			}
		} else {
			for i := 0; i < len(sec.Times); i++ {
				if keep(i) {
					sel = append(sel, int32(i))
				}
			}
		}
		buf = buf[:len(buf)+len(sel)]
		sec.Sel = sel
	}
}

// filterRows applies the row predicate to materialized records, always
// into a fresh slice (the input array may be shared with the frame).
func (f *Filter) filterRows(rows telemetry.Batch) telemetry.Batch {
	out := make(telemetry.Batch, 0, len(rows))
	for i := range rows {
		if f.pred(rows[i]) {
			out = append(out, rows[i])
		}
	}
	return out
}

// --- Map ---

// SetColumnarKernel installs the map's SoA transformation. Without it
// the map is not columnar capable.
func (m *Map) SetColumnarKernel(k ColumnarMapKernel) { m.colKernel = k }

// ColumnarCapable implements ColumnarProcessor.
func (m *Map) ColumnarCapable() bool { return m.colKernel != nil }

// ProcessColumnar implements ColumnarProcessor: the section list is
// rebuilt through the kernel; sections it declines are materialized and
// run through the row function.
func (m *Map) ProcessColumnar(cb *wire.ColumnarBatch) {
	out := make([]wire.ColSec, 0, len(cb.Secs))
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		if sec.Rows == nil && m.colKernel(sec, &out) {
			continue
		}
		var rows telemetry.Batch
		sec.AppendRows(&rows)
		mapped := make(telemetry.Batch, 0, len(rows))
		emit := func(rec telemetry.Record) { mapped = append(mapped, rec) }
		for i := range rows {
			m.fn(rows[i], emit)
		}
		out = append(out, wire.ColSec{Tag: sec.Tag, Rows: mapped})
	}
	cb.Secs = out
}

// --- Join ---

// SetColumnarKernel installs the join's SoA probe loop. Without it the
// join is not columnar capable.
func (j *Join) SetColumnarKernel(k ColumnarJoinKernel) { j.colKernel = k }

// ColumnarCapable implements ColumnarProcessor. A miss-buffering join
// stays on the row path: buffered misses must be materialized records
// anyway (they outlive the wave), so the SoA probe would buy nothing.
func (j *Join) ColumnarCapable() bool { return j.colKernel != nil && j.bufferDur == 0 }

// ProcessColumnar implements ColumnarProcessor: the section list is
// rebuilt through the kernel (hash probe over packed columns, selection
// compacted into the output); sections it declines are materialized and
// probed through the row function.
func (j *Join) ProcessColumnar(cb *wire.ColumnarBatch) {
	out := make([]wire.ColSec, 0, len(cb.Secs))
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		if sec.Rows == nil && j.colKernel(sec, &out) {
			continue
		}
		var rows telemetry.Batch
		sec.AppendRows(&rows)
		joined := make(telemetry.Batch, 0, len(rows))
		for i := range rows {
			if rec, ok := j.fn(rows[i]); ok {
				joined = append(joined, rec)
			}
		}
		out = append(out, wire.ColSec{Tag: sec.Tag, Rows: joined})
	}
	cb.Secs = out
}

// --- GroupQuantile ---

// SetAggKernel installs the SoA bulk-observe loop matching the
// operator's key/value extractors (the same kernel ids GroupAgg uses).
func (g *GroupQuantile) SetAggKernel(k AggKernel) { g.kernel = k }

// ColumnarCapable implements ColumnarProcessor: partial QuantileRow
// payloads always arrive as materialized rows (they have no SoA
// columns) and merge through ProcessBatch, and raw sections either hit
// the kernel or fall back per section, so the sketch never forces the
// engine off the SoA path.
func (g *GroupQuantile) ColumnarCapable() bool { return true }

// ProcessColumnar implements ColumnarProcessor. Like GroupAgg, results
// leave via Flush, so the wave is consumed whole: raw sections with a
// matching kernel bulk-append their value column into the per-group
// sketches straight from the columns, and everything else materializes
// per section.
func (g *GroupQuantile) ProcessColumnar(cb *wire.ColumnarBatch) {
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		switch {
		case sec.Rows != nil:
			g.ProcessBatch(sec.Rows, nil)
		case sec.Ping != nil && g.kernel == AggKernelPingPairRTT:
			g.quantPingPairRTT(sec)
		case sec.ToR != nil && g.kernel == AggKernelToRPairRTT:
			g.quantToRPairRTT(sec)
		default:
			g.colScratch = g.colScratch[:0]
			sec.AppendRows(&g.colScratch)
			g.ProcessBatch(g.colScratch, nil)
		}
	}
	cb.Reset()
}

// quantObserve folds one numeric-keyed observation into the sketch
// state, resolving the window map per run of equal window ids.
type quantState struct {
	win     map[telemetry.GroupKey]*telemetry.QuantileRow
	winID   int64
	haveWin bool
}

func (g *GroupQuantile) observeNumKeyed(st *quantState, window int64, key uint64, val float64) {
	if !st.haveWin || window != st.winID {
		win := g.state[window]
		if win == nil {
			win = make(map[telemetry.GroupKey]*telemetry.QuantileRow)
			g.state[window] = win
		}
		st.win, st.winID, st.haveWin = win, window, true
	}
	k := telemetry.NumKey(key)
	row := st.win[k]
	if row == nil {
		row = telemetry.NewQuantileRow(k, window, g.lo, g.hi, g.buckets)
		st.win[k] = row
	}
	row.Observe(val)
}

// quantPingPairRTT bulk-appends a ping section's RTT column into the
// per-pair sketches — ProbePairKey/ProbeRTT without Records.
func (g *GroupQuantile) quantPingPairRTT(sec *wire.ColSec) {
	c := sec.Ping
	var st quantState
	if sec.Sel != nil {
		for _, i := range sec.Sel {
			key := uint64(c.SrcIP[i])<<32 | uint64(c.DstIP[i])
			g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
		}
		return
	}
	for i := range sec.Times {
		key := uint64(c.SrcIP[i])<<32 | uint64(c.DstIP[i])
		g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
	}
}

// quantToRPairRTT is quantPingPairRTT for ToR sections.
func (g *GroupQuantile) quantToRPairRTT(sec *wire.ColSec) {
	c := sec.ToR
	var st quantState
	if sec.Sel != nil {
		for _, i := range sec.Sel {
			key := uint64(c.SrcToR[i])<<32 | uint64(c.DstToR[i])
			g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
		}
		return
	}
	for i := range sec.Times {
		key := uint64(c.SrcToR[i])<<32 | uint64(c.DstToR[i])
		g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
	}
}

// --- GroupAgg ---

// SetAggKernel installs the SoA aggregation loop matching the operator's
// key/value extractors.
func (g *GroupAgg) SetAggKernel(k AggKernel) { g.kernel = k }

// ColumnarCapable implements ColumnarProcessor: merging partial AggRow
// sections columnar is always a win, and anything else falls back per
// section, so G+R never forces the engine off the SoA path.
func (g *GroupAgg) ColumnarCapable() bool { return true }

// ProcessColumnar implements ColumnarProcessor. Results leave via Flush,
// exactly as on the row path, so the wave is consumed whole: partial
// AggRow sections merge straight from their columns, raw sections with a
// matching kernel aggregate straight from theirs (no record, key-struct
// or key-string per row), and everything else materializes per section.
func (g *GroupAgg) ProcessColumnar(cb *wire.ColumnarBatch) {
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		switch {
		case sec.Rows != nil:
			g.ProcessBatch(sec.Rows, nil)
		case sec.Agg != nil:
			g.mergeAggCols(sec)
		case sec.Ping != nil && g.kernel == AggKernelPingPairRTT:
			g.aggPingPairRTT(sec)
		case sec.ToR != nil && g.kernel == AggKernelToRPairRTT:
			g.aggToRPairRTT(sec)
		case sec.Job != nil && g.kernel == AggKernelJobStatsCount:
			g.aggJobStatsCount(sec)
		case sec.Job != nil && g.kernel == AggKernelJobStatsDur:
			g.aggJobStatsDur(sec)
		default:
			g.colScratch = g.colScratch[:0]
			sec.AppendRows(&g.colScratch)
			g.ProcessBatch(g.colScratch, nil)
		}
	}
	cb.Reset()
}

// mergeAggCols merges one partial-aggregate section without building
// AggRow records: each live row becomes one mergePartial against a
// stack-allocated row.
func (g *GroupAgg) mergeAggCols(sec *wire.ColSec) {
	c := sec.Agg
	sec.Live(func(i int) {
		row := telemetry.AggRow{
			Key:    telemetry.GroupKey{Num: c.KeyNum[i], Str: c.KeyStr[i]},
			Window: c.Window[i], Count: c.Count[i],
			Sum: c.Sum[i], Min: c.Min[i], Max: c.Max[i],
		}
		g.mergePartial(sec.Windows[i], &row)
	})
}

// observeNum folds one numeric-keyed observation, resolving the window
// state per run of equal window ids like the row batch path.
type numAggState struct {
	win     *aggWindow
	winID   int64
	haveWin bool
}

func (g *GroupAgg) observeNumKeyed(st *numAggState, window int64, key uint64, val float64) {
	if !st.haveWin || window != st.winID {
		st.win = g.window(window)
		st.win.gen = g.gen
		st.winID, st.haveWin = window, true
		if st.win.wantCacheGrow() {
			st.win.growCache()
		}
	}
	// Direct-mapped cell cache (Fibonacci hash). See aggWindow.cache for
	// why hits can't be stale; misses fall through to the window map.
	slot := &st.win.cache[(key*0x9e3779b97f4a7c15)>>st.win.cacheShift]
	cell := slot.cell
	if cell == nil || slot.key != key {
		cell = st.win.num[key]
		if cell == nil {
			cell = &aggCell{row: telemetry.NewAggRow(telemetry.NumKey(key), window, val), gen: g.gen}
			st.win.num[key] = cell
			slot.key, slot.cell = key, cell
			return
		}
		slot.key, slot.cell = key, cell
	}
	cell.row.Observe(val)
	cell.gen = g.gen
}

// aggPingPairRTT aggregates a ping section straight from its columns:
// the packed (srcIP, dstIP) key and the RTT value never pass through a
// Record, a GroupKey hash of the full struct, or an interface call.
func (g *GroupAgg) aggPingPairRTT(sec *wire.ColSec) {
	c := sec.Ping
	var st numAggState
	if sec.Sel != nil {
		for _, i := range sec.Sel {
			key := uint64(c.SrcIP[i])<<32 | uint64(c.DstIP[i])
			g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
		}
		return
	}
	for i := range sec.Times {
		key := uint64(c.SrcIP[i])<<32 | uint64(c.DstIP[i])
		g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
	}
}

// aggToRPairRTT is aggPingPairRTT for ToR sections.
func (g *GroupAgg) aggToRPairRTT(sec *wire.ColSec) {
	c := sec.ToR
	var st numAggState
	if sec.Sel != nil {
		for _, i := range sec.Sel {
			key := uint64(c.SrcToR[i])<<32 | uint64(c.DstToR[i])
			g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
		}
		return
	}
	for i := range sec.Times {
		key := uint64(c.SrcToR[i])<<32 | uint64(c.DstToR[i])
		g.observeNumKeyed(&st, sec.Windows[i], key, float64(c.RTT[i]))
	}
}

// jobRefKey is the columnar lookup key for JobStats groups: the interned
// column strings plus the bucket, hashed without assembling the
// "tenant|statName|bucket" string the canonical key uses.
type jobRefKey struct {
	tenant, stat string
	bucket       int64
}

// aggJobStatsCount aggregates a JobStats section keyed on interned
// string refs, counting one per row — JobStatsKey/JobStatsOne.
func (g *GroupAgg) aggJobStatsCount(sec *wire.ColSec) {
	g.aggJobStats(sec, false)
}

// aggJobStatsDur is aggJobStatsCount folding the Stat column instead of
// counting — JobStatsKey/JobStatsVal.
func (g *GroupAgg) aggJobStatsDur(sec *wire.ColSec) {
	g.aggJobStats(sec, true)
}

// aggJobStats aggregates a JobStats section keyed on interned string
// refs: the canonical string key is assembled only when a group is first
// seen in a window; afterwards rows reach their cell through the
// per-window byRef cache. useStat selects the folded value: the Stat
// column (durations) or a constant 1 (counts).
func (g *GroupAgg) aggJobStats(sec *wire.ColSec, useStat bool) {
	c := sec.Job
	var win *aggWindow
	winID, haveWin := int64(0), false
	sec.Live(func(i int) {
		w := sec.Windows[i]
		if !haveWin || w != winID {
			win = g.window(w)
			win.gen = g.gen
			winID, haveWin = w, true
		}
		val := 1.0
		if useStat {
			val = c.Stat[i]
		}
		ref := jobRefKey{tenant: c.Tenant[i], stat: c.StatName[i], bucket: c.Bucket[i]}
		cell := win.byRef[ref]
		if cell == nil {
			// First sighting through the columnar path: assemble the
			// canonical key once, find or create the row-path cell, and
			// cache it under the interned refs.
			key := telemetry.StrKey(ref.tenant + "|" + ref.stat + "|" + itoa(int(ref.bucket)))
			cell = win.lookup(key)
			if cell == nil {
				cell = &aggCell{row: telemetry.NewAggRow(key, w, val), gen: g.gen}
				win.store(key, cell)
				if win.byRef == nil {
					win.byRef = make(map[jobRefKey]*aggCell)
				}
				win.byRef[ref] = cell
				return
			}
			if win.byRef == nil {
				win.byRef = make(map[jobRefKey]*aggCell)
			}
			win.byRef[ref] = cell
		}
		cell.row.Observe(val)
		cell.gen = g.gen
	})
}
