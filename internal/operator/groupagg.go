package operator

import (
	"slices"
	"sort"
	"strings"

	"jarvis/internal/telemetry"
)

// GroupAgg implements GroupApply + Aggregate over tumbling windows with
// incrementally updatable aggregates (count/sum/avg/min/max), the class
// rule R-1 admits on data sources.
//
// It accepts two input shapes:
//
//   - raw records: keyFn/valFn extract the group key and the aggregated
//     value;
//   - *telemetry.AggRow payloads: partial aggregates from an upstream
//     replica of this same operator, merged into local state.
//
// Windows close when Flush is called with a watermark at or past the
// window end; each group then emits one AggRow record.
type GroupAgg struct {
	name      string
	windowDur int64
	keyFn     func(telemetry.Record) telemetry.GroupKey
	valFn     func(telemetry.Record) float64
	// state: window id → keyed cells, with dirty-generation stamps for
	// incremental snapshots (DeltaCheckpointable).
	state map[int64]*aggWindow
	// gen is the current dirty generation; every touch stamps the cell
	// and its window with it, and MarkClean advances it. A cell is dirty
	// iff its stamp equals the current generation.
	gen uint64
	// closed collects windows flushed/drained since the last MarkClean
	// (delta tombstones). Bounded: without checkpointing nothing ever
	// calls MarkClean, so past maxClosedTombstones the list is dropped
	// and closedLost set — the next delta capture falls back to a full
	// one instead of leaking memory forever.
	closed     []int64
	closedLost bool
	// kernel selects the columnar aggregation loop (SetAggKernel);
	// colScratch backs per-section row-materialization fallbacks.
	kernel     AggKernel
	colScratch telemetry.Batch
}

// maxClosedTombstones bounds the closed-window list an operator keeps
// between MarkClean calls. Even at every-epoch windows this covers
// over an hour of cadence gap; overflowing just forces the next
// snapshot full.
const maxClosedTombstones = 4096

// noteClosed records one flushed/drained window for delta tombstones.
func (g *GroupAgg) noteClosed(w int64) {
	if g.closedLost {
		return
	}
	if len(g.closed) >= maxClosedTombstones {
		g.closed = g.closed[:0]
		g.closedLost = true
		return
	}
	g.closed = append(g.closed, w)
}

// aggWindow is one window's group state plus its newest touch stamp.
// Purely numeric keys (the probe queries' case) live in a map hashed on
// the bare uint64 — hashing and comparing the full GroupKey struct (8 B
// + string header) costs ~2× per record on the aggregation hot path.
type aggWindow struct {
	num map[uint64]*aggCell             // keys with Str == ""
	str map[telemetry.GroupKey]*aggCell // keys carrying a string
	gen uint64
	// byRef caches cells under their interned columnar refs (tenant,
	// statName, bucket) so the SoA JobStats kernel assembles the
	// canonical string key once per group, not once per row. Entries
	// alias cells of str; the cache dies with the window.
	byRef map[jobRefKey]*aggCell
	// cache is a direct-mapped front for num, indexed by a Fibonacci
	// hash of the key. The SoA aggregation kernels re-observe the same
	// hot groups every epoch, and the map probe (hash + SIMD group
	// scan) dominates their per-record cost; a cache hit replaces it
	// with one multiply, one compare and one load. Entries never go
	// stale: a window's key→cell binding is append-only (every store
	// site is guarded by a lookup miss), so a cached pointer stays the
	// canonical cell until the window itself is deleted.
	cache      []aggCellSlot
	cacheShift uint8
}

// aggCellSlot is one direct-mapped cache entry; cell == nil marks empty.
type aggCellSlot struct {
	key  uint64
	cell *aggCell
}

// Cache sizing: start at 4096 slots (64 KiB) and quadruple while the
// window holds more numeric groups than half the slot count, capped at
// 65536 slots (1 MiB) — at the paper's Pingmesh cardinality (~20k live
// pairs per window) that settles at a ~0.3 load factor. Growth is
// checked once per run of equal window ids, not per record, and resets
// the slots (they refill from map hits within one section).
const (
	aggCacheMinSlots = 1 << 12
	aggCacheMaxSlots = 1 << 16
)

// wantCacheGrow reports whether the window's cell cache is absent or
// undersized for its current group count.
func (w *aggWindow) wantCacheGrow() bool {
	return w.cache == nil ||
		(len(w.num) > len(w.cache)>>1 && len(w.cache) < aggCacheMaxSlots)
}

func (w *aggWindow) growCache() {
	size := aggCacheMinSlots
	for size <= 2*len(w.num) && size < aggCacheMaxSlots {
		size <<= 2
	}
	if len(w.cache) >= size {
		return
	}
	w.cache = make([]aggCellSlot, size)
	shift := uint8(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	w.cacheShift = shift
}

// aggCell is one group's row plus its newest touch stamp.
type aggCell struct {
	row telemetry.AggRow
	gen uint64
}

func (w *aggWindow) lookup(key telemetry.GroupKey) *aggCell {
	if key.Str == "" {
		return w.num[key.Num]
	}
	return w.str[key]
}

func (w *aggWindow) store(key telemetry.GroupKey, cell *aggCell) {
	if key.Str == "" {
		w.num[key.Num] = cell
		return
	}
	if w.str == nil {
		w.str = make(map[telemetry.GroupKey]*aggCell)
	}
	w.str[key] = cell
}

func (w *aggWindow) count() int { return len(w.num) + len(w.str) }

// NewGroupAgg creates a grouping/aggregation operator. windowDurMicros
// must match the upstream Window operator so flushed window ids map to
// the correct end times.
func NewGroupAgg(name string, windowDurMicros int64,
	keyFn func(telemetry.Record) telemetry.GroupKey,
	valFn func(telemetry.Record) float64) *GroupAgg {
	if windowDurMicros <= 0 {
		panic("operator: group window duration must be positive")
	}
	return &GroupAgg{
		name:      name,
		windowDur: windowDurMicros,
		keyFn:     keyFn,
		valFn:     valFn,
		state:     make(map[int64]*aggWindow),
		gen:       1,
	}
}

// window returns (creating if needed) the state for window id w.
func (g *GroupAgg) window(w int64) *aggWindow {
	win := g.state[w]
	if win == nil {
		win = &aggWindow{num: make(map[uint64]*aggCell)}
		g.state[w] = win
	}
	return win
}

// Name implements Operator.
func (g *GroupAgg) Name() string { return g.name }

// Kind implements Operator.
func (g *GroupAgg) Kind() Kind { return KindGroupAgg }

// Stateful implements Operator.
func (g *GroupAgg) Stateful() bool { return true }

// Reset implements Operator.
func (g *GroupAgg) Reset() {
	g.state = make(map[int64]*aggWindow)
	g.gen++
	g.closed = g.closed[:0]
	g.closedLost = false
}

// GroupCount returns the number of open groups in a window (cost-model
// input: hash size drives G+R cost).
func (g *GroupAgg) GroupCount(window int64) int {
	if win := g.state[window]; win != nil {
		return win.count()
	}
	return 0
}

// OpenWindows returns the ids of windows with unflushed state, ascending.
func (g *GroupAgg) OpenWindows() []int64 {
	out := make([]int64, 0, len(g.state))
	for w := range g.state {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Process implements Operator.
func (g *GroupAgg) Process(rec telemetry.Record, emit Emit) {
	if row, ok := rec.Data.(*telemetry.AggRow); ok {
		g.mergePartial(rec.Window, row)
		return
	}
	g.observe(&rec)
}

// observe folds one raw record into its group, stamping the dirty
// generation.
func (g *GroupAgg) observe(rec *telemetry.Record) {
	key := g.keyFn(*rec)
	val := g.valFn(*rec)
	win := g.window(rec.Window)
	win.gen = g.gen
	cell := win.lookup(key)
	if cell == nil {
		win.store(key, &aggCell{row: telemetry.NewAggRow(key, rec.Window, val), gen: g.gen})
		return
	}
	cell.row.Observe(val)
	cell.gen = g.gen
}

// ProcessBatch implements BatchProcessor. G+R never emits from Process
// (results leave via Flush), so the batch path is pure state update with
// no per-record closure. A batch's records overwhelmingly share one
// tumbling window, so the window map entry is resolved once per run of
// equal window ids instead of per record.
func (g *GroupAgg) ProcessBatch(in telemetry.Batch, _ *telemetry.Batch) {
	var win *aggWindow
	haveWin := false
	winID := int64(0)
	for i := range in {
		rec := &in[i]
		if row, ok := rec.Data.(*telemetry.AggRow); ok {
			g.mergePartial(rec.Window, row)
			continue
		}
		if !haveWin || rec.Window != winID {
			win = g.window(rec.Window)
			win.gen = g.gen
			winID, haveWin = rec.Window, true
		}
		key := g.keyFn(*rec)
		val := g.valFn(*rec)
		cell := win.lookup(key)
		if cell == nil {
			win.store(key, &aggCell{row: telemetry.NewAggRow(key, rec.Window, val), gen: g.gen})
			continue
		}
		cell.row.Observe(val)
		cell.gen = g.gen
	}
}

func (g *GroupAgg) mergePartial(window int64, partial *telemetry.AggRow) {
	if partial.Window != 0 {
		window = partial.Window
	}
	win := g.window(window)
	win.gen = g.gen
	cell := win.lookup(partial.Key)
	if cell == nil {
		cell = &aggCell{row: *partial, gen: g.gen}
		cell.row.Window = window
		win.store(partial.Key, cell)
		return
	}
	cell.row.Merge(*partial)
	cell.gen = g.gen
}

// AbsorbSnapshot implements SnapshotAbsorber: it merges a whole batch of
// AggRow snapshot rows with one arena allocation for all new groups,
// instead of one heap row per group — the bulk restore path.
func (g *GroupAgg) AbsorbSnapshot(rows telemetry.Batch) bool {
	for i := range rows {
		if _, ok := rows[i].Data.(*telemetry.AggRow); !ok {
			return false
		}
	}
	cells := make([]aggCell, len(rows))
	k := 0
	for i := range rows {
		partial := rows[i].Data.(*telemetry.AggRow)
		window := rows[i].Window
		if partial.Window != 0 {
			window = partial.Window
		}
		win := g.window(window)
		win.gen = g.gen
		cell := win.lookup(partial.Key)
		if cell == nil {
			cell = &cells[k]
			k++
			cell.row = *partial
			cell.row.Window = window
			cell.gen = g.gen
			win.store(partial.Key, cell)
			continue
		}
		cell.row.Merge(*partial)
		cell.gen = g.gen
	}
	return true
}

// Flush implements Operator: emits and clears every window whose end time
// is at or before the watermark. Output records are sorted by (window,
// key) for determinism.
func (g *GroupAgg) Flush(watermark int64, emit Emit) {
	for _, w := range g.OpenWindows() {
		end := (w + 1) * g.windowDur
		if end > watermark {
			continue
		}
		g.emitWindow(w, end, emit)
		delete(g.state, w)
		g.noteClosed(w)
	}
}

// Drain emits every open window's partial state as AggRow records without
// waiting for the watermark, then clears the state. Used when the data
// source checkpoints or hands partial state to the stream processor
// (paper §IV-E fault tolerance, §V stateful relay).
func (g *GroupAgg) Drain(emit Emit) {
	for _, w := range g.OpenWindows() {
		end := (w + 1) * g.windowDur
		g.emitWindow(w, end, emit)
		delete(g.state, w)
		g.noteClosed(w)
	}
}

// SnapshotWindow emits copies of a window's partial rows without
// clearing state — checkpointing support (paper §IV-E): the emitted rows
// can reconstruct the window on another node while this one keeps
// aggregating. Unlike Flush, snapshot rows are unsorted: they restore by
// merging into a replica's hash state, where order is irrelevant, and
// skipping the sort keeps the per-epoch checkpoint overhead low.
func (g *GroupAgg) SnapshotWindow(w int64, emit Emit) {
	g.emitRows(w, (w+1)*g.windowDur, false, 0, emit)
}

// DirtyWindows implements DeltaCheckpointable.
func (g *GroupAgg) DirtyWindows() []int64 {
	out := make([]int64, 0, len(g.state))
	for w, win := range g.state {
		if win.gen == g.gen {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SnapshotDirtyWindow implements DeltaCheckpointable: like
// SnapshotWindow but only rows touched since the last MarkClean.
func (g *GroupAgg) SnapshotDirtyWindow(w int64, emit Emit) {
	g.emitRows(w, (w+1)*g.windowDur, false, g.gen, emit)
}

// ClosedWindows implements DeltaCheckpointable.
func (g *GroupAgg) ClosedWindows() ([]int64, bool) {
	if g.closedLost {
		return nil, false
	}
	out := append([]int64(nil), g.closed...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// MarkClean implements DeltaCheckpointable: rows touched from now on
// belong to the next snapshot's delta.
func (g *GroupAgg) MarkClean() {
	g.gen++
	g.closed = g.closed[:0]
	g.closedLost = false
}

func (g *GroupAgg) emitWindow(w, end int64, emit Emit) {
	g.emitRows(w, end, true, 0, emit)
}

// emitRows copies a window's rows into an arena and emits them. minGen
// filters to cells stamped at or above it (0 = all); sorted orders the
// output by key for deterministic Flush emission.
func (g *GroupAgg) emitRows(w, end int64, sorted bool, minGen uint64, emit Emit) {
	win := g.state[w]
	if win == nil {
		return
	}
	// One pass over the maps copies every row into an arena — no
	// per-group heap AggRow and no second map lookup after sorting (a
	// row's Key always equals its map key). Flush and snapshot emit tens
	// of thousands of rows per window; this path dominates checkpoint
	// cost.
	arena := make([]telemetry.AggRow, 0, win.count())
	for _, cell := range win.num {
		if cell.gen >= minGen {
			arena = append(arena, cell.row)
		}
	}
	for _, cell := range win.str {
		if cell.gen >= minGen {
			arena = append(arena, cell.row)
		}
	}
	if sorted {
		sortAggRows(arena)
	}
	for i := range arena {
		emit(telemetry.Record{
			Time:     end,
			WireSize: arena[i].AggRowWireSize(),
			Window:   arena[i].Window,
			Data:     &arena[i],
		})
	}
}

// sortAggRows orders rows by key (Num, Str); string comparison is
// skipped entirely when no key carries a string (the common case for
// probe queries).
func sortAggRows(arena []telemetry.AggRow) {
	numericOnly := true
	for i := range arena {
		if arena[i].Key.Str != "" {
			numericOnly = false
			break
		}
	}
	if numericOnly {
		slices.SortFunc(arena, func(a, b telemetry.AggRow) int {
			switch {
			case a.Key.Num < b.Key.Num:
				return -1
			case a.Key.Num > b.Key.Num:
				return 1
			default:
				return 0
			}
		})
		return
	}
	slices.SortFunc(arena, func(a, b telemetry.AggRow) int {
		switch {
		case a.Key.Num < b.Key.Num:
			return -1
		case a.Key.Num > b.Key.Num:
			return 1
		}
		return strings.Compare(a.Key.Str, b.Key.Str)
	})
}

// sortedKeys returns a window's group keys ordered by (Num, Str) — the
// shared helper for operators that emit via per-key clones.
func sortedKeys[V any](win map[telemetry.GroupKey]V) []telemetry.GroupKey {
	keys := make([]telemetry.GroupKey, 0, len(win))
	for k := range win {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b telemetry.GroupKey) int {
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return strings.Compare(a.Str, b.Str)
	})
	return keys
}

// Key and value extractors for the paper's queries.

// ProbePairKey groups PingProbes by (srcIP, dstIP) — S2SProbe.
func ProbePairKey(rec telemetry.Record) telemetry.GroupKey {
	return telemetry.NumKey(rec.Data.(*telemetry.PingProbe).PairKey())
}

// ProbeRTT extracts a probe's RTT in microseconds.
func ProbeRTT(rec telemetry.Record) float64 {
	return float64(rec.Data.(*telemetry.PingProbe).RTTMicros)
}

// ToRPairKey groups ToRProbes by (srcToR, dstToR) — T2TProbe.
func ToRPairKey(rec telemetry.Record) telemetry.GroupKey {
	return telemetry.NumKey(rec.Data.(*telemetry.ToRProbe).PairKey())
}

// ToRRTT extracts a joined probe's RTT in microseconds.
func ToRRTT(rec telemetry.Record) float64 {
	return float64(rec.Data.(*telemetry.ToRProbe).RTTMicros)
}

// JobStatsKey groups parsed log stats by (tenant, statName, bucket) —
// LogAnalytics.
func JobStatsKey(rec telemetry.Record) telemetry.GroupKey {
	j := rec.Data.(*telemetry.JobStats)
	return telemetry.StrKey(j.Tenant + "|" + j.StatName + "|" + itoa(j.Bucket))
}

// JobStatsOne returns 1: the LogAnalytics aggregate is a count.
func JobStatsOne(telemetry.Record) float64 { return 1 }

// JobStatsVal extracts the Stat value — TraceSpanAgg folds span
// durations (milliseconds) instead of counting.
func JobStatsVal(rec telemetry.Record) float64 {
	return rec.Data.(*telemetry.JobStats).Stat
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
