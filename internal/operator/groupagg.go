package operator

import (
	"slices"
	"sort"
	"strings"

	"jarvis/internal/telemetry"
)

// GroupAgg implements GroupApply + Aggregate over tumbling windows with
// incrementally updatable aggregates (count/sum/avg/min/max), the class
// rule R-1 admits on data sources.
//
// It accepts two input shapes:
//
//   - raw records: keyFn/valFn extract the group key and the aggregated
//     value;
//   - *telemetry.AggRow payloads: partial aggregates from an upstream
//     replica of this same operator, merged into local state.
//
// Windows close when Flush is called with a watermark at or past the
// window end; each group then emits one AggRow record.
type GroupAgg struct {
	name      string
	windowDur int64
	keyFn     func(telemetry.Record) telemetry.GroupKey
	valFn     func(telemetry.Record) float64
	// state: window id → key → row
	state map[int64]map[telemetry.GroupKey]*telemetry.AggRow
}

// NewGroupAgg creates a grouping/aggregation operator. windowDurMicros
// must match the upstream Window operator so flushed window ids map to
// the correct end times.
func NewGroupAgg(name string, windowDurMicros int64,
	keyFn func(telemetry.Record) telemetry.GroupKey,
	valFn func(telemetry.Record) float64) *GroupAgg {
	if windowDurMicros <= 0 {
		panic("operator: group window duration must be positive")
	}
	return &GroupAgg{
		name:      name,
		windowDur: windowDurMicros,
		keyFn:     keyFn,
		valFn:     valFn,
		state:     make(map[int64]map[telemetry.GroupKey]*telemetry.AggRow),
	}
}

// Name implements Operator.
func (g *GroupAgg) Name() string { return g.name }

// Kind implements Operator.
func (g *GroupAgg) Kind() Kind { return KindGroupAgg }

// Stateful implements Operator.
func (g *GroupAgg) Stateful() bool { return true }

// Reset implements Operator.
func (g *GroupAgg) Reset() {
	g.state = make(map[int64]map[telemetry.GroupKey]*telemetry.AggRow)
}

// GroupCount returns the number of open groups in a window (cost-model
// input: hash size drives G+R cost).
func (g *GroupAgg) GroupCount(window int64) int { return len(g.state[window]) }

// OpenWindows returns the ids of windows with unflushed state, ascending.
func (g *GroupAgg) OpenWindows() []int64 {
	out := make([]int64, 0, len(g.state))
	for w := range g.state {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Process implements Operator.
func (g *GroupAgg) Process(rec telemetry.Record, emit Emit) {
	if row, ok := rec.Data.(*telemetry.AggRow); ok {
		g.mergePartial(rec.Window, row)
		return
	}
	key := g.keyFn(rec)
	val := g.valFn(rec)
	win := g.state[rec.Window]
	if win == nil {
		win = make(map[telemetry.GroupKey]*telemetry.AggRow)
		g.state[rec.Window] = win
	}
	row := win[key]
	if row == nil {
		r := telemetry.NewAggRow(key, rec.Window, val)
		win[key] = &r
		return
	}
	row.Observe(val)
}

// ProcessBatch implements BatchProcessor. G+R never emits from Process
// (results leave via Flush), so the batch path is pure state update with
// no per-record closure.
func (g *GroupAgg) ProcessBatch(in telemetry.Batch, _ *telemetry.Batch) {
	for i := range in {
		rec := in[i]
		if row, ok := rec.Data.(*telemetry.AggRow); ok {
			g.mergePartial(rec.Window, row)
			continue
		}
		key := g.keyFn(rec)
		val := g.valFn(rec)
		win := g.state[rec.Window]
		if win == nil {
			win = make(map[telemetry.GroupKey]*telemetry.AggRow)
			g.state[rec.Window] = win
		}
		row := win[key]
		if row == nil {
			r := telemetry.NewAggRow(key, rec.Window, val)
			win[key] = &r
			continue
		}
		row.Observe(val)
	}
}

func (g *GroupAgg) mergePartial(window int64, partial *telemetry.AggRow) {
	if partial.Window != 0 {
		window = partial.Window
	}
	win := g.state[window]
	if win == nil {
		win = make(map[telemetry.GroupKey]*telemetry.AggRow)
		g.state[window] = win
	}
	row := win[partial.Key]
	if row == nil {
		cp := *partial
		cp.Window = window
		win[partial.Key] = &cp
		return
	}
	row.Merge(*partial)
}

// Flush implements Operator: emits and clears every window whose end time
// is at or before the watermark. Output records are sorted by (window,
// key) for determinism.
func (g *GroupAgg) Flush(watermark int64, emit Emit) {
	for _, w := range g.OpenWindows() {
		end := (w + 1) * g.windowDur
		if end > watermark {
			continue
		}
		g.emitWindow(w, end, emit)
		delete(g.state, w)
	}
}

// Drain emits every open window's partial state as AggRow records without
// waiting for the watermark, then clears the state. Used when the data
// source checkpoints or hands partial state to the stream processor
// (paper §IV-E fault tolerance, §V stateful relay).
func (g *GroupAgg) Drain(emit Emit) {
	for _, w := range g.OpenWindows() {
		end := (w + 1) * g.windowDur
		g.emitWindow(w, end, emit)
		delete(g.state, w)
	}
}

// SnapshotWindow emits copies of a window's partial rows without
// clearing state — checkpointing support (paper §IV-E): the emitted rows
// can reconstruct the window on another node while this one keeps
// aggregating. Unlike Flush, snapshot rows are unsorted: they restore by
// merging into a replica's hash state, where order is irrelevant, and
// skipping the sort keeps the per-epoch checkpoint overhead low.
func (g *GroupAgg) SnapshotWindow(w int64, emit Emit) {
	g.emitRows(w, (w+1)*g.windowDur, false, emit)
}

func (g *GroupAgg) emitWindow(w, end int64, emit Emit) {
	g.emitRows(w, end, true, emit)
}

func (g *GroupAgg) emitRows(w, end int64, sorted bool, emit Emit) {
	win := g.state[w]
	// One pass over the map copies every row into an arena — no
	// per-group heap AggRow and no second map lookup after sorting (a
	// row's Key always equals its map key). Flush and snapshot emit tens
	// of thousands of rows per window; this path dominates checkpoint
	// cost.
	arena := make([]telemetry.AggRow, 0, len(win))
	for _, row := range win {
		arena = append(arena, *row)
	}
	if sorted {
		sortAggRows(arena)
	}
	for i := range arena {
		emit(telemetry.Record{
			Time:     end,
			WireSize: arena[i].AggRowWireSize(),
			Window:   arena[i].Window,
			Data:     &arena[i],
		})
	}
}

// sortAggRows orders rows by key (Num, Str); string comparison is
// skipped entirely when no key carries a string (the common case for
// probe queries).
func sortAggRows(arena []telemetry.AggRow) {
	numericOnly := true
	for i := range arena {
		if arena[i].Key.Str != "" {
			numericOnly = false
			break
		}
	}
	if numericOnly {
		slices.SortFunc(arena, func(a, b telemetry.AggRow) int {
			switch {
			case a.Key.Num < b.Key.Num:
				return -1
			case a.Key.Num > b.Key.Num:
				return 1
			default:
				return 0
			}
		})
		return
	}
	slices.SortFunc(arena, func(a, b telemetry.AggRow) int {
		switch {
		case a.Key.Num < b.Key.Num:
			return -1
		case a.Key.Num > b.Key.Num:
			return 1
		}
		return strings.Compare(a.Key.Str, b.Key.Str)
	})
}

// sortedKeys returns a window's group keys ordered by (Num, Str) — the
// shared helper for operators that emit via per-key clones.
func sortedKeys[V any](win map[telemetry.GroupKey]V) []telemetry.GroupKey {
	keys := make([]telemetry.GroupKey, 0, len(win))
	for k := range win {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b telemetry.GroupKey) int {
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return strings.Compare(a.Str, b.Str)
	})
	return keys
}

// Key and value extractors for the paper's queries.

// ProbePairKey groups PingProbes by (srcIP, dstIP) — S2SProbe.
func ProbePairKey(rec telemetry.Record) telemetry.GroupKey {
	return telemetry.NumKey(rec.Data.(*telemetry.PingProbe).PairKey())
}

// ProbeRTT extracts a probe's RTT in microseconds.
func ProbeRTT(rec telemetry.Record) float64 {
	return float64(rec.Data.(*telemetry.PingProbe).RTTMicros)
}

// ToRPairKey groups ToRProbes by (srcToR, dstToR) — T2TProbe.
func ToRPairKey(rec telemetry.Record) telemetry.GroupKey {
	return telemetry.NumKey(rec.Data.(*telemetry.ToRProbe).PairKey())
}

// ToRRTT extracts a joined probe's RTT in microseconds.
func ToRRTT(rec telemetry.Record) float64 {
	return float64(rec.Data.(*telemetry.ToRProbe).RTTMicros)
}

// JobStatsKey groups parsed log stats by (tenant, statName, bucket) —
// LogAnalytics.
func JobStatsKey(rec telemetry.Record) telemetry.GroupKey {
	j := rec.Data.(*telemetry.JobStats)
	return telemetry.StrKey(j.Tenant + "|" + j.StatName + "|" + itoa(j.Bucket))
}

// JobStatsOne returns 1: the LogAnalytics aggregate is a count.
func JobStatsOne(telemetry.Record) float64 { return 1 }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
