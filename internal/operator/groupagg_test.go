package operator

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"jarvis/internal/telemetry"
)

const winDur = 10_000_000 // 10 s in microseconds

func probeRec(ts int64, src, dst, rtt uint32) telemetry.Record {
	r := telemetry.NewProbeRecord(&telemetry.PingProbe{
		Timestamp: ts, SrcIP: src, DstIP: dst, RTTMicros: rtt,
	})
	r.Window = ts / winDur
	return r
}

func TestGroupAggBasic(t *testing.T) {
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	var out telemetry.Batch
	g.Process(probeRec(1_000_000, 1, 2, 100), collect(&out))
	g.Process(probeRec(2_000_000, 1, 2, 300), collect(&out))
	g.Process(probeRec(3_000_000, 1, 3, 50), collect(&out))
	if len(out) != 0 {
		t.Fatal("nothing should emit before flush")
	}
	if g.GroupCount(0) != 2 {
		t.Fatalf("group count = %d", g.GroupCount(0))
	}

	// Watermark before window end: still nothing.
	g.Flush(5_000_000, collect(&out))
	if len(out) != 0 {
		t.Fatal("window should stay open")
	}

	g.Flush(winDur, collect(&out))
	if len(out) != 2 {
		t.Fatalf("flushed %d rows, want 2", len(out))
	}
	row := out[0].Data.(*telemetry.AggRow)
	if row.Count != 2 || row.Min != 100 || row.Max != 300 || row.Avg() != 200 {
		t.Fatalf("row = %+v", row)
	}
	if out[0].Time != winDur {
		t.Fatalf("emitted record time = %d, want window end", out[0].Time)
	}
	if g.GroupCount(0) != 0 {
		t.Fatal("window state should be cleared")
	}
}

func TestGroupAggMultiWindow(t *testing.T) {
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	var out telemetry.Batch
	g.Process(probeRec(1_000_000, 1, 2, 10), collect(&out))
	g.Process(probeRec(11_000_000, 1, 2, 20), collect(&out))
	g.Process(probeRec(21_000_000, 1, 2, 30), collect(&out))
	if got := g.OpenWindows(); len(got) != 3 {
		t.Fatalf("open windows = %v", got)
	}
	g.Flush(2*winDur, collect(&out)) // closes windows 0 and 1
	if len(out) != 2 {
		t.Fatalf("flushed %d rows", len(out))
	}
	if got := g.OpenWindows(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("open windows after flush = %v", got)
	}
}

func TestGroupAggMergePartials(t *testing.T) {
	// Simulate SP-side G+R receiving a partial AggRow drained from the
	// source plus raw records for the same group.
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	var out telemetry.Batch

	partial := telemetry.NewAggRow(telemetry.NumKey((1<<32)|2), 0, 500)
	partial.Observe(700)
	g.Process(telemetry.NewAggRecord(partial, winDur), collect(&out))
	g.Process(probeRec(1_000_000, 1, 2, 300), collect(&out))

	g.Flush(winDur, collect(&out))
	if len(out) != 1 {
		t.Fatalf("flushed %d rows", len(out))
	}
	row := out[0].Data.(*telemetry.AggRow)
	if row.Count != 3 || row.Min != 300 || row.Max != 700 {
		t.Fatalf("merged row = %+v", row)
	}
}

func TestGroupAggMergePartialNewGroup(t *testing.T) {
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	var out telemetry.Batch
	partial := telemetry.NewAggRow(telemetry.NumKey(42), 1, 9)
	g.Process(telemetry.NewAggRecord(partial, 2*winDur), collect(&out))
	g.Flush(2*winDur, collect(&out))
	if len(out) != 1 || out[0].Data.(*telemetry.AggRow).Count != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestGroupAggDrain(t *testing.T) {
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	var out telemetry.Batch
	g.Process(probeRec(1_000_000, 1, 2, 10), collect(&out))
	g.Process(probeRec(11_000_000, 1, 2, 20), collect(&out))
	g.Drain(collect(&out))
	if len(out) != 2 {
		t.Fatalf("drained %d rows", len(out))
	}
	if len(g.OpenWindows()) != 0 {
		t.Fatal("drain must clear state")
	}
	// Drained partials fold back losslessly.
	g2 := NewGroupAgg("g2", winDur, ProbePairKey, ProbeRTT)
	for _, r := range out {
		g2.Process(r, collect(&telemetry.Batch{}))
	}
	var final telemetry.Batch
	g2.Flush(3*winDur, collect(&final))
	if len(final) != 2 {
		t.Fatalf("refolded %d rows", len(final))
	}
}

func TestGroupAggReset(t *testing.T) {
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	g.Process(probeRec(1, 1, 2, 10), func(telemetry.Record) {})
	g.Reset()
	if len(g.OpenWindows()) != 0 {
		t.Fatal("reset must clear state")
	}
	if g.Kind() != KindGroupAgg || !g.Stateful() {
		t.Fatal("metadata wrong")
	}
}

func TestGroupAggPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroupAgg("g", 0, ProbePairKey, ProbeRTT)
}

// Property: splitting a stream between two replicas (source + SP) and
// merging partials yields exactly the same rows as one replica seeing
// everything — the paper's lossless data-level partitioning invariant.
func TestGroupAggPartitionLossless(t *testing.T) {
	f := func(seed uint64, splitPct uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 50 + rng.IntN(200)
		records := make(telemetry.Batch, n)
		for i := range records {
			records[i] = probeRec(
				int64(rng.IntN(3*winDur)),
				uint32(rng.IntN(4)), uint32(rng.IntN(4)),
				uint32(rng.IntN(10000)))
		}
		p := float64(splitPct%101) / 100

		// Reference: single replica.
		ref := NewGroupAgg("ref", winDur, ProbePairKey, ProbeRTT)
		for _, r := range records {
			ref.Process(r, func(telemetry.Record) {})
		}
		var want telemetry.Batch
		ref.Flush(4*winDur, collect(&want))

		// Partitioned: src processes share p, drains the rest raw; src
		// partials drain to SP at epoch end.
		src := NewGroupAgg("src", winDur, ProbePairKey, ProbeRTT)
		sp := NewGroupAgg("sp", winDur, ProbePairKey, ProbeRTT)
		none := func(telemetry.Record) {}
		for _, r := range records {
			if rng.Float64() < p {
				src.Process(r, none)
			} else {
				sp.Process(r, none)
			}
		}
		src.Drain(func(r telemetry.Record) { sp.Process(r, none) })
		var got telemetry.Batch
		sp.Flush(4*winDur, collect(&got))

		if len(got) != len(want) {
			return false
		}
		for i := range want {
			a := want[i].Data.(*telemetry.AggRow)
			b := got[i].Data.(*telemetry.AggRow)
			if a.Key != b.Key || a.Count != b.Count || a.Min != b.Min ||
				a.Max != b.Max || abs(a.Sum-b.Sum) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestLogStatsKeyAndCount(t *testing.T) {
	g := NewGroupAgg("g", winDur, JobStatsKey, JobStatsOne)
	var out telemetry.Batch
	mk := func(tenant string, bucket int) telemetry.Record {
		return telemetry.Record{
			Time:   1_000_000,
			Window: 0,
			Data:   &telemetry.JobStats{Tenant: tenant, StatName: "cpu util", Bucket: bucket},
		}
	}
	g.Process(mk("a", 3), collect(&out))
	g.Process(mk("a", 3), collect(&out))
	g.Process(mk("b", 3), collect(&out))
	g.Flush(winDur, collect(&out))
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	for _, r := range out {
		row := r.Data.(*telemetry.AggRow)
		switch row.Key.Str {
		case "a|cpu util|3":
			if row.Count != 2 {
				t.Fatalf("a count = %d", row.Count)
			}
		case "b|cpu util|3":
			if row.Count != 1 {
				t.Fatalf("b count = %d", row.Count)
			}
		default:
			t.Fatalf("unexpected key %q", row.Key.Str)
		}
	}
}

func TestToRKeyExtractors(t *testing.T) {
	rec := telemetry.Record{Data: &telemetry.ToRProbe{SrcToR: 1, DstToR: 2, RTTMicros: 77}}
	if ToRPairKey(rec).Num != (1<<32)|2 {
		t.Fatal("ToRPairKey wrong")
	}
	if ToRRTT(rec) != 77 {
		t.Fatal("ToRRTT wrong")
	}
}

func BenchmarkGroupAggProcess(b *testing.B) {
	g := NewGroupAgg("g", winDur, ProbePairKey, ProbeRTT)
	recs := make(telemetry.Batch, 1024)
	for i := range recs {
		recs[i] = probeRec(int64(i)*1000, uint32(i%64), uint32(i%128), uint32(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Process(recs[i%len(recs)], func(telemetry.Record) {})
	}
}
