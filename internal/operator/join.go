package operator

import (
	"sort"

	"jarvis/internal/telemetry"
)

// Join joins the stream with a static table via a user lookup function
// (paper Listing 2: joining probes with the IP→ToR map). The lookup may
// drop records whose key misses the table, matching inner-join semantics.
//
// With BufferMisses enabled the join becomes stateful: records whose key
// misses the table are retained per window and re-probed when the window
// closes (the table may have gained entries — e.g. a ToR map refreshed
// mid-window), and the buffered state is Checkpointable/Drainable so it
// survives checkpoint/recovery instead of being silently dropped.
type Join struct {
	name      string
	tableSize int
	fn        func(telemetry.Record) (telemetry.Record, bool)

	// Miss buffering (optional): window duration for re-probe scheduling
	// and the per-window pending records. bufferDur == 0 disables it.
	bufferDur int64
	pending   map[int64]telemetry.Batch

	// colKernel is the SoA probe loop (SetColumnarKernel); nil means the
	// join is not columnar capable and waves materialize at this stage.
	colKernel ColumnarJoinKernel
}

// NewJoin creates a join operator. tableSize is the static table's entry
// count; the cost model uses it to scale hash-probe cost (paper §VI-C
// grows the table 10× to stress the join).
func NewJoin(name string, tableSize int, fn func(telemetry.Record) (telemetry.Record, bool)) *Join {
	return &Join{name: name, tableSize: tableSize, fn: fn}
}

// Name implements Operator.
func (j *Join) Name() string { return j.name }

// Kind implements Operator.
func (j *Join) Kind() Kind { return KindJoin }

// TableSize returns the static table's entry count.
func (j *Join) TableSize() int { return j.tableSize }

// SetTableSize updates the recorded table size (experiments resize the
// table at runtime to change the join cost).
func (j *Join) SetTableSize(n int) { j.tableSize = n }

// BufferMisses enables per-window retention of records whose lookup
// misses the table. windowDurMicros must match the upstream Window
// operator so buffered records re-probe exactly when their window
// closes. Returns the join for chaining.
func (j *Join) BufferMisses(windowDurMicros int64) *Join {
	if windowDurMicros <= 0 {
		panic("operator: join buffer window duration must be positive")
	}
	j.bufferDur = windowDurMicros
	if j.pending == nil {
		j.pending = make(map[int64]telemetry.Batch)
	}
	return j
}

// Process implements Operator.
func (j *Join) Process(rec telemetry.Record, emit Emit) {
	if out, ok := j.fn(rec); ok {
		emit(out)
		return
	}
	if j.bufferDur > 0 {
		j.pending[rec.Window] = append(j.pending[rec.Window], rec)
	}
}

// ProcessBatch implements BatchProcessor: probes the static table for
// every record in one loop, appending hits.
func (j *Join) ProcessBatch(in telemetry.Batch, out *telemetry.Batch) {
	for i := range in {
		if rec, ok := j.fn(in[i]); ok {
			*out = append(*out, rec)
		} else if j.bufferDur > 0 {
			j.pending[in[i].Window] = append(j.pending[in[i].Window], in[i])
		}
	}
}

// Flush implements Operator. With miss buffering enabled, windows closed
// by the watermark re-probe their buffered records once: hits emit,
// remaining misses are dropped (inner-join semantics).
func (j *Join) Flush(watermark int64, emit Emit) {
	if j.bufferDur == 0 {
		return
	}
	for _, w := range j.OpenWindows() {
		if (w+1)*j.bufferDur > watermark {
			continue
		}
		for _, rec := range j.pending[w] {
			if out, ok := j.fn(rec); ok {
				emit(out)
			}
		}
		delete(j.pending, w)
	}
}

// Stateful implements Operator. Joins with a static table keep no
// cross-record state (rule R-3 excludes stream-stream joins from source
// placement; static-table joins are allowed) unless miss buffering is
// enabled.
func (j *Join) Stateful() bool { return j.bufferDur > 0 }

// Reset implements Operator.
func (j *Join) Reset() {
	if j.pending != nil {
		j.pending = make(map[int64]telemetry.Batch)
	}
}

// OpenWindows returns the windows holding buffered misses, ascending
// (Checkpointable; empty without miss buffering).
func (j *Join) OpenWindows() []int64 {
	out := make([]int64, 0, len(j.pending))
	for w := range j.pending {
		out = append(out, w)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// SnapshotWindow emits copies of a window's buffered miss records without
// clearing them (Checkpointable). The raw records re-enter a replica of
// this join on restore and are re-probed there.
func (j *Join) SnapshotWindow(w int64, emit Emit) {
	for _, rec := range j.pending[w] {
		emit(rec)
	}
}

// Drain hands every buffered miss downstream immediately as raw records
// and clears the buffer (StatefulDrainer): the SP replica of the join
// re-probes them against its own copy of the table.
func (j *Join) Drain(emit Emit) {
	for _, w := range j.OpenWindows() {
		for _, rec := range j.pending[w] {
			emit(rec)
		}
		delete(j.pending, w)
	}
}

// NewSrcToRJoin builds the first T2TProbe join: PingProbe → probe
// annotated with the source ToR. Records whose source IP misses the table
// are dropped.
func NewSrcToRJoin(name string, table *telemetry.ToRTable) *Join {
	return NewJoin(name, table.Len(), func(rec telemetry.Record) (telemetry.Record, bool) {
		p, ok := rec.Data.(*telemetry.PingProbe)
		if !ok {
			return rec, false
		}
		tor, ok := table.Lookup(p.SrcIP)
		if !ok {
			return rec, false
		}
		out := rec
		out.Data = &srcToRProbe{probe: p, srcToR: tor}
		return out, true
	})
}

// srcToRProbe is the intermediate record between the two T2TProbe joins.
type srcToRProbe struct {
	probe  *telemetry.PingProbe
	srcToR uint32
}

// NewDstToRJoin builds the second T2TProbe join, which also performs the
// projection onto (srcToR, dstToR, rtt): the output is smaller than the
// input, which is why the join still reduces data (paper §VI-B).
func NewDstToRJoin(name string, table *telemetry.ToRTable) *Join {
	return NewJoin(name, table.Len(), func(rec telemetry.Record) (telemetry.Record, bool) {
		sp, ok := rec.Data.(*srcToRProbe)
		if !ok {
			return rec, false
		}
		tor, ok := table.Lookup(sp.probe.DstIP)
		if !ok {
			return rec, false
		}
		out := rec
		out.Data = &telemetry.ToRProbe{
			Timestamp: sp.probe.Timestamp,
			SrcToR:    sp.srcToR,
			DstToR:    tor,
			RTTMicros: sp.probe.RTTMicros,
		}
		out.WireSize = telemetry.ToRProbeWireSize
		return out, true
	})
}
