package operator

import "jarvis/internal/telemetry"

// Join joins the stream with a static table via a user lookup function
// (paper Listing 2: joining probes with the IP→ToR map). The lookup may
// drop records whose key misses the table, matching inner-join semantics.
type Join struct {
	name      string
	tableSize int
	fn        func(telemetry.Record) (telemetry.Record, bool)
}

// NewJoin creates a join operator. tableSize is the static table's entry
// count; the cost model uses it to scale hash-probe cost (paper §VI-C
// grows the table 10× to stress the join).
func NewJoin(name string, tableSize int, fn func(telemetry.Record) (telemetry.Record, bool)) *Join {
	return &Join{name: name, tableSize: tableSize, fn: fn}
}

// Name implements Operator.
func (j *Join) Name() string { return j.name }

// Kind implements Operator.
func (j *Join) Kind() Kind { return KindJoin }

// TableSize returns the static table's entry count.
func (j *Join) TableSize() int { return j.tableSize }

// SetTableSize updates the recorded table size (experiments resize the
// table at runtime to change the join cost).
func (j *Join) SetTableSize(n int) { j.tableSize = n }

// Process implements Operator.
func (j *Join) Process(rec telemetry.Record, emit Emit) {
	if out, ok := j.fn(rec); ok {
		emit(out)
	}
}

// ProcessBatch implements BatchProcessor: probes the static table for
// every record in one loop, appending hits.
func (j *Join) ProcessBatch(in telemetry.Batch, out *telemetry.Batch) {
	for i := range in {
		if rec, ok := j.fn(in[i]); ok {
			*out = append(*out, rec)
		}
	}
}

// Flush implements Operator.
func (j *Join) Flush(int64, Emit) {}

// Stateful implements Operator. Joins with a static table keep no
// cross-record state (rule R-3 excludes stream-stream joins from source
// placement; static-table joins are allowed).
func (j *Join) Stateful() bool { return false }

// Reset implements Operator.
func (j *Join) Reset() {}

// NewSrcToRJoin builds the first T2TProbe join: PingProbe → probe
// annotated with the source ToR. Records whose source IP misses the table
// are dropped.
func NewSrcToRJoin(name string, table *telemetry.ToRTable) *Join {
	return NewJoin(name, table.Len(), func(rec telemetry.Record) (telemetry.Record, bool) {
		p, ok := rec.Data.(*telemetry.PingProbe)
		if !ok {
			return rec, false
		}
		tor, ok := table.Lookup(p.SrcIP)
		if !ok {
			return rec, false
		}
		out := rec
		out.Data = &srcToRProbe{probe: p, srcToR: tor}
		return out, true
	})
}

// srcToRProbe is the intermediate record between the two T2TProbe joins.
type srcToRProbe struct {
	probe  *telemetry.PingProbe
	srcToR uint32
}

// NewDstToRJoin builds the second T2TProbe join, which also performs the
// projection onto (srcToR, dstToR, rtt): the output is smaller than the
// input, which is why the join still reduces data (paper §VI-B).
func NewDstToRJoin(name string, table *telemetry.ToRTable) *Join {
	return NewJoin(name, table.Len(), func(rec telemetry.Record) (telemetry.Record, bool) {
		sp, ok := rec.Data.(*srcToRProbe)
		if !ok {
			return rec, false
		}
		tor, ok := table.Lookup(sp.probe.DstIP)
		if !ok {
			return rec, false
		}
		out := rec
		out.Data = &telemetry.ToRProbe{
			Timestamp: sp.probe.Timestamp,
			SrcToR:    sp.srcToR,
			DstToR:    tor,
			RTTMicros: sp.probe.RTTMicros,
		}
		out.WireSize = telemetry.ToRProbeWireSize
		return out, true
	})
}
