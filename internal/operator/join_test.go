package operator

import (
	"testing"

	"jarvis/internal/telemetry"
)

// growableJoin builds a buffered join over a mutable table so tests can
// model a static table that gains entries mid-window.
func growableJoin(table map[uint32]uint32, windowDur int64) *Join {
	j := NewJoin("tor", len(table), func(rec telemetry.Record) (telemetry.Record, bool) {
		p, ok := rec.Data.(*telemetry.PingProbe)
		if !ok {
			return rec, false
		}
		tor, ok := table[p.SrcIP]
		if !ok {
			return rec, false
		}
		out := rec
		out.Data = &telemetry.ToRProbe{Timestamp: p.Timestamp, SrcToR: tor, DstToR: 1, RTTMicros: p.RTTMicros}
		out.WireSize = telemetry.ToRProbeWireSize
		return out, true
	})
	return j.BufferMisses(windowDur)
}

func joinProbeRec(srcIP uint32, timeMicros int64, window int64) telemetry.Record {
	return telemetry.Record{
		Time:     timeMicros,
		Window:   window,
		WireSize: telemetry.PingProbeWireSize,
		Data:     &telemetry.PingProbe{Timestamp: timeMicros, SrcIP: srcIP, RTTMicros: 10},
	}
}

func TestJoinBufferMissesReprobeOnFlush(t *testing.T) {
	table := map[uint32]uint32{1: 100}
	j := growableJoin(table, 10)
	if !j.Stateful() {
		t.Fatal("buffered join must report stateful")
	}

	var out telemetry.Batch
	j.ProcessBatch(telemetry.Batch{joinProbeRec(1, 3, 0), joinProbeRec(2, 4, 0)}, &out)
	if len(out) != 1 {
		t.Fatalf("hits = %d, want 1", len(out))
	}
	if got := j.OpenWindows(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("open windows = %v", got)
	}

	// The table learns the missing key before the window closes.
	table[2] = 200
	var flushed telemetry.Batch
	j.Flush(5, func(r telemetry.Record) { flushed = append(flushed, r) }) // window still open
	if len(flushed) != 0 {
		t.Fatalf("flush before window close emitted %d records", len(flushed))
	}
	j.Flush(10, func(r telemetry.Record) { flushed = append(flushed, r) })
	if len(flushed) != 1 {
		t.Fatalf("flush emitted %d records, want 1", len(flushed))
	}
	if tor := flushed[0].Data.(*telemetry.ToRProbe).SrcToR; tor != 200 {
		t.Fatalf("re-probed record resolved to ToR %d", tor)
	}
	if len(j.OpenWindows()) != 0 {
		t.Fatal("flushed window must clear")
	}
}

func TestJoinCheckpointableNonDestructive(t *testing.T) {
	j := growableJoin(map[uint32]uint32{}, 10)
	var out telemetry.Batch
	j.ProcessBatch(telemetry.Batch{joinProbeRec(7, 3, 0), joinProbeRec(8, 4, 0)}, &out)

	var snapA, snapB telemetry.Batch
	j.SnapshotWindow(0, func(r telemetry.Record) { snapA = append(snapA, r) })
	j.SnapshotWindow(0, func(r telemetry.Record) { snapB = append(snapB, r) })
	if len(snapA) != 2 || len(snapB) != 2 {
		t.Fatalf("snapshots = %d, %d records; want 2, 2", len(snapA), len(snapB))
	}

	// Snapshots restore into a fresh replica via plain Process: still-missing
	// keys re-buffer instead of emitting.
	table := map[uint32]uint32{}
	replica := growableJoin(table, 10)
	for _, rec := range snapA {
		replica.Process(rec, func(telemetry.Record) { t.Fatal("miss emitted during restore") })
	}
	if got := replica.OpenWindows(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("replica windows = %v", got)
	}
	// The replica's table learns both keys before window close, so the
	// restored records emit exactly once at flush.
	table[7], table[8] = 70, 80
	var flushed telemetry.Batch
	replica.Flush(10, func(r telemetry.Record) { flushed = append(flushed, r) })
	if len(flushed) != 2 {
		t.Fatalf("restored records flushed %d emissions, want 2", len(flushed))
	}
}

func TestJoinDrainHandsRawMissesDownstream(t *testing.T) {
	j := growableJoin(map[uint32]uint32{}, 10)
	var out telemetry.Batch
	j.ProcessBatch(telemetry.Batch{joinProbeRec(5, 3, 0), joinProbeRec(6, 13, 1)}, &out)

	var drained telemetry.Batch
	j.Drain(func(r telemetry.Record) { drained = append(drained, r) })
	if len(drained) != 2 {
		t.Fatalf("drained %d records, want 2", len(drained))
	}
	if _, ok := drained[0].Data.(*telemetry.PingProbe); !ok {
		t.Fatalf("drained record is %T, want raw *PingProbe", drained[0].Data)
	}
	if len(j.OpenWindows()) != 0 {
		t.Fatal("drain must clear buffered state")
	}
}

func TestJoinWithoutBufferingUnchanged(t *testing.T) {
	j := NewJoin("plain", 1, func(rec telemetry.Record) (telemetry.Record, bool) { return rec, false })
	if j.Stateful() {
		t.Fatal("plain join must stay stateless")
	}
	j.Process(joinProbeRec(1, 1, 0), func(telemetry.Record) { t.Fatal("miss emitted") })
	if n := len(j.OpenWindows()); n != 0 {
		t.Fatalf("plain join buffered %d windows", n)
	}
	j.Flush(100, func(telemetry.Record) { t.Fatal("plain join flushed") })
}
