// Package operator implements the streaming primitives of Jarvis queries:
// Window (W), Filter (F), Map (M), Join with a static table (J) and
// GroupApply+Aggregate (G+R) with incrementally updatable, mergeable
// aggregates (paper §II-A, rule R-1).
//
// Operators are single-goroutine state machines: the engine drives them
// with Process (one record at a time, emitting zero or more outputs) and
// Flush (event-time watermark advance, releasing closed windows). The
// same operator implementation runs on the data source and, replicated,
// on the stream processor; G+R accepts both raw records and partial
// AggRow records so that source-side partial state merges losslessly into
// the SP-side state — the property that enables data-level partitioning
// of stateful operators.
package operator

import (
	"fmt"

	"jarvis/internal/telemetry"
)

// Kind classifies an operator for planning rules and cost profiling.
type Kind int

// Operator kinds (paper §II-A).
const (
	KindWindow Kind = iota
	KindFilter
	KindMap
	KindJoin
	KindGroupAgg
)

// String renders the kind using the paper's single-letter notation.
func (k Kind) String() string {
	switch k {
	case KindWindow:
		return "W"
	case KindFilter:
		return "F"
	case KindMap:
		return "M"
	case KindJoin:
		return "J"
	case KindGroupAgg:
		return "G+R"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Emit receives operator output records.
type Emit func(telemetry.Record)

// BatchProcessor is the vectorized execution interface: one call consumes
// a whole batch and appends every output to *out, amortizing dispatch and
// emit-closure cost across the batch. All built-in operators implement
// it; ProcessBatch(in, out) must be observably equivalent to calling
// Process(in[i], emit) for each record in order, with emit appending to
// *out. Implementations must not mutate the input slice's elements.
type BatchProcessor interface {
	ProcessBatch(in telemetry.Batch, out *telemetry.Batch)
}

// AsBatchProcessor returns the operator's vectorized path, wrapping
// record-at-a-time operators in a generic adapter so third-party
// Operator implementations keep working on the batch engine.
func AsBatchProcessor(op Operator) BatchProcessor {
	if bp, ok := op.(BatchProcessor); ok {
		return bp
	}
	return &recordAdapter{op: op}
}

// recordAdapter drives a plain Operator record by record, sharing one
// emit closure across the whole batch.
type recordAdapter struct {
	op Operator
}

// ProcessBatch implements BatchProcessor.
func (a *recordAdapter) ProcessBatch(in telemetry.Batch, out *telemetry.Batch) {
	emit := func(rec telemetry.Record) { *out = append(*out, rec) }
	for i := range in {
		a.op.Process(in[i], emit)
	}
}

// StatefulDrainer is implemented by stateful operators that can hand all
// partial state downstream immediately (the stateful drain path, §V).
type StatefulDrainer interface {
	Drain(Emit)
}

// Checkpointable is implemented by stateful operators whose per-window
// state can be snapshotted non-destructively (§IV-E fault tolerance).
type Checkpointable interface {
	OpenWindows() []int64
	SnapshotWindow(w int64, emit Emit)
}

// DeltaCheckpointable extends Checkpointable with dirty-state tracking,
// enabling incremental (delta) snapshots: between two MarkClean calls
// the operator remembers which groups were touched and which windows it
// closed, so a snapshot can ship only the rows that changed since the
// previous one. Operators that cannot track dirtiness are snapshotted
// wholesale (replace mode) inside delta snapshots.
type DeltaCheckpointable interface {
	Checkpointable
	// DirtyWindows returns the windows touched since the last MarkClean,
	// ascending.
	DirtyWindows() []int64
	// SnapshotDirtyWindow emits copies of the window's rows touched since
	// the last MarkClean, without disturbing state.
	SnapshotDirtyWindow(w int64, emit Emit)
	// ClosedWindows returns the windows flushed or drained since the last
	// MarkClean (delta tombstones: the reconstruction drops their rows).
	// ok reports whether tracking is intact; it is false when the
	// operator capped its tombstone memory (e.g. it ran unbounded with
	// no MarkClean because checkpointing is disabled), in which case the
	// caller must capture the operator in full instead of as a delta.
	ClosedWindows() (closed []int64, ok bool)
	// MarkClean starts a new dirty-tracking generation; call it after
	// every snapshot capture, full or delta.
	MarkClean()
}

// SnapshotAbsorber is implemented by stateful operators that can merge a
// whole batch of their own snapshot rows in one call, without emitting —
// the bulk restore path. It must be behaviorally identical to processing
// the rows one at a time, but may allocate per batch instead of per
// group, and may take ownership of the rows' payloads (callers restore
// from freshly decoded snapshots and never touch the rows again).
// AbsorbSnapshot reports false — absorbing nothing — when the batch
// contains rows it does not recognize; the caller then falls back to
// Process.
type SnapshotAbsorber interface {
	AbsorbSnapshot(rows telemetry.Batch) bool
}

// Operator is one vertex of the query DAG.
type Operator interface {
	// Name is a unique, human-readable operator name within the query.
	Name() string
	// Kind classifies the operator.
	Kind() Kind
	// Process consumes one record and emits any immediate outputs.
	Process(rec telemetry.Record, emit Emit)
	// Flush advances the event-time watermark, emitting results of any
	// windows that closed. Stateless operators ignore it.
	Flush(watermark int64, emit Emit)
	// Stateful reports whether the operator accumulates cross-record
	// state (relevant for drain routing and checkpointing).
	Stateful() bool
	// Reset drops all accumulated state (used between experiment runs).
	Reset()
}

// Window assigns records to fixed-size tumbling windows by event time.
// It is pass-through otherwise.
type Window struct {
	name string
	dur  int64 // window length, microseconds
	// winScratch backs the replacement window columns of the columnar
	// path (high-water, reused across waves).
	winScratch []int64
}

// NewWindow creates a tumbling-window operator of the given duration in
// microseconds (the paper's queries use 10 s).
func NewWindow(name string, durMicros int64) *Window {
	if durMicros <= 0 {
		panic("operator: window duration must be positive")
	}
	return &Window{name: name, dur: durMicros}
}

// Name implements Operator.
func (w *Window) Name() string { return w.name }

// Kind implements Operator.
func (w *Window) Kind() Kind { return KindWindow }

// Duration returns the window length in microseconds.
func (w *Window) Duration() int64 { return w.dur }

// WindowOf returns the window id for an event time.
func (w *Window) WindowOf(micros int64) int64 {
	id := micros / w.dur
	if micros < 0 && micros%w.dur != 0 {
		id--
	}
	return id
}

// WindowEnd returns the exclusive end time of a window id.
func (w *Window) WindowEnd(id int64) int64 { return (id + 1) * w.dur }

// Process implements Operator.
func (w *Window) Process(rec telemetry.Record, emit Emit) {
	rec.Window = w.WindowOf(rec.Time)
	emit(rec)
}

// ProcessBatch implements BatchProcessor: window assignment is a pure
// per-record field write, so the batch path is a single tight loop.
func (w *Window) ProcessBatch(in telemetry.Batch, out *telemetry.Batch) {
	for i := range in {
		rec := in[i]
		rec.Window = w.WindowOf(rec.Time)
		*out = append(*out, rec)
	}
}

// Flush implements Operator (no-op: windows close downstream).
func (w *Window) Flush(int64, Emit) {}

// Stateful implements Operator.
func (w *Window) Stateful() bool { return false }

// Reset implements Operator.
func (w *Window) Reset() {}

// Filter drops records failing a predicate.
type Filter struct {
	name string
	pred func(telemetry.Record) bool
	// colPred is the compiled SoA predicate (SetColumnarPred); selScratch
	// backs the selection vectors it produces (high-water, reused).
	colPred    ColumnarPred
	selScratch []int32
}

// NewFilter creates a filter operator.
func NewFilter(name string, pred func(telemetry.Record) bool) *Filter {
	return &Filter{name: name, pred: pred}
}

// Name implements Operator.
func (f *Filter) Name() string { return f.name }

// Kind implements Operator.
func (f *Filter) Kind() Kind { return KindFilter }

// Process implements Operator.
func (f *Filter) Process(rec telemetry.Record, emit Emit) {
	if f.pred(rec) {
		emit(rec)
	}
}

// ProcessBatch implements BatchProcessor.
func (f *Filter) ProcessBatch(in telemetry.Batch, out *telemetry.Batch) {
	for i := range in {
		if f.pred(in[i]) {
			*out = append(*out, in[i])
		}
	}
}

// Flush implements Operator.
func (f *Filter) Flush(int64, Emit) {}

// Stateful implements Operator.
func (f *Filter) Stateful() bool { return false }

// Reset implements Operator.
func (f *Filter) Reset() {}

// Map applies a user transformation emitting zero or more records per
// input (flat-map semantics cover parsing one log line into several
// JobStats records).
type Map struct {
	name string
	fn   func(telemetry.Record, Emit)
	// colKernel is the SoA transformation (SetColumnarKernel), when the
	// map has one.
	colKernel ColumnarMapKernel
}

// NewMap creates a map operator from a flat-map function.
func NewMap(name string, fn func(telemetry.Record, Emit)) *Map {
	return &Map{name: name, fn: fn}
}

// NewMap1 creates a map operator from a one-to-one transformation.
func NewMap1(name string, fn func(telemetry.Record) telemetry.Record) *Map {
	return &Map{name: name, fn: func(rec telemetry.Record, emit Emit) {
		emit(fn(rec))
	}}
}

// Name implements Operator.
func (m *Map) Name() string { return m.name }

// Kind implements Operator.
func (m *Map) Kind() Kind { return KindMap }

// Process implements Operator.
func (m *Map) Process(rec telemetry.Record, emit Emit) { m.fn(rec, emit) }

// ProcessBatch implements BatchProcessor: the flat-map function runs per
// record, but one emit closure is shared across the whole batch.
func (m *Map) ProcessBatch(in telemetry.Batch, out *telemetry.Batch) {
	emit := func(rec telemetry.Record) { *out = append(*out, rec) }
	for i := range in {
		m.fn(in[i], emit)
	}
}

// Flush implements Operator.
func (m *Map) Flush(int64, Emit) {}

// Stateful implements Operator.
func (m *Map) Stateful() bool { return false }

// Reset implements Operator.
func (m *Map) Reset() {}
