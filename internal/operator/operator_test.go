package operator

import (
	"testing"

	"jarvis/internal/telemetry"
)

func collect(out *telemetry.Batch) Emit {
	return func(r telemetry.Record) { *out = append(*out, r) }
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindWindow:   "W",
		KindFilter:   "F",
		KindMap:      "M",
		KindJoin:     "J",
		KindGroupAgg: "G+R",
		Kind(99):     "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestWindowAssignment(t *testing.T) {
	w := NewWindow("w", 10_000_000) // 10 s
	var out telemetry.Batch
	w.Process(telemetry.Record{Time: 25_000_000}, collect(&out))
	w.Process(telemetry.Record{Time: 30_000_000}, collect(&out))
	if out[0].Window != 2 || out[1].Window != 3 {
		t.Fatalf("windows = %d, %d", out[0].Window, out[1].Window)
	}
	if w.WindowEnd(2) != 30_000_000 {
		t.Fatalf("WindowEnd = %d", w.WindowEnd(2))
	}
	if !w.Stateful() == false {
		t.Fatal("window is stateless")
	}
	if w.WindowOf(-1) != -1 {
		t.Fatalf("negative time window = %d", w.WindowOf(-1))
	}
	if w.Duration() != 10_000_000 {
		t.Fatal("Duration mismatch")
	}
}

func TestWindowPanicsOnBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow("w", 0)
}

func TestFilter(t *testing.T) {
	f := NewFilter("f", func(r telemetry.Record) bool {
		return r.Data.(*telemetry.PingProbe).OK()
	})
	var out telemetry.Batch
	f.Process(telemetry.NewProbeRecord(&telemetry.PingProbe{ErrCode: 0}), collect(&out))
	f.Process(telemetry.NewProbeRecord(&telemetry.PingProbe{ErrCode: 2}), collect(&out))
	if len(out) != 1 {
		t.Fatalf("filter kept %d records, want 1", len(out))
	}
	if f.Kind() != KindFilter || f.Stateful() {
		t.Fatal("filter metadata wrong")
	}
}

func TestMapFlat(t *testing.T) {
	m := NewMap("parse", func(rec telemetry.Record, emit Emit) {
		emit(rec)
		emit(rec)
	})
	var out telemetry.Batch
	m.Process(telemetry.Record{Time: 1}, collect(&out))
	if len(out) != 2 {
		t.Fatalf("flat map emitted %d", len(out))
	}
}

func TestMap1(t *testing.T) {
	m := NewMap1("x2", func(rec telemetry.Record) telemetry.Record {
		rec.Time *= 2
		return rec
	})
	var out telemetry.Batch
	m.Process(telemetry.Record{Time: 21}, collect(&out))
	if len(out) != 1 || out[0].Time != 42 {
		t.Fatalf("out = %+v", out)
	}
	m.Flush(0, collect(&out)) // no-op
	m.Reset()
	if len(out) != 1 {
		t.Fatal("flush should not emit for map")
	}
}

func TestJoinToR(t *testing.T) {
	ips := []uint32{10, 20, 30}
	table := telemetry.NewToRTable(ips, 2)
	j1 := NewSrcToRJoin("j1", table)
	j2 := NewDstToRJoin("j2", table)

	probe := telemetry.NewProbeRecord(&telemetry.PingProbe{
		Timestamp: 5, SrcIP: 10, DstIP: 20, RTTMicros: 900,
	})
	var mid telemetry.Batch
	j1.Process(probe, collect(&mid))
	if len(mid) != 1 {
		t.Fatalf("j1 emitted %d", len(mid))
	}
	var out telemetry.Batch
	j2.Process(mid[0], collect(&out))
	if len(out) != 1 {
		t.Fatalf("j2 emitted %d", len(out))
	}
	tor := out[0].Data.(*telemetry.ToRProbe)
	if tor.RTTMicros != 900 || tor.Timestamp != 5 {
		t.Fatalf("tor = %+v", tor)
	}
	if out[0].WireSize != telemetry.ToRProbeWireSize {
		t.Fatalf("projection should shrink wire size, got %d", out[0].WireSize)
	}

	// Misses are dropped (inner join).
	var none telemetry.Batch
	j1.Process(telemetry.NewProbeRecord(&telemetry.PingProbe{SrcIP: 99}), collect(&none))
	if len(none) != 0 {
		t.Fatal("unknown src should be dropped")
	}
	j2.Process(probe, collect(&none)) // wrong payload type for j2
	if len(none) != 0 {
		t.Fatal("wrong payload type should be dropped")
	}
	if j1.TableSize() != 3 {
		t.Fatalf("table size = %d", j1.TableSize())
	}
	j1.SetTableSize(30)
	if j1.TableSize() != 30 {
		t.Fatal("SetTableSize failed")
	}
	if j1.Kind() != KindJoin || j1.Stateful() {
		t.Fatal("join metadata wrong")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 42: "42", -7: "-7", 1234567: "1234567"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
