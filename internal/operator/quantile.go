package operator

import (
	"sort"

	"jarvis/internal/telemetry"
)

// GroupQuantile is GroupApply + approximate-quantile aggregation. Exact
// quantiles are not incrementally updatable and rule R-1 bars them from
// data sources, but their approximate counterparts — fixed-bucket
// histograms whose merge is bucket-wise addition — are mergeable and
// "can benefit from Jarvis" (paper §IV-B, citing the authors' earlier
// datacenter-telemetry quantile work). This operator demonstrates that
// extension: per (group, window) it maintains an equi-width histogram
// over [Lo, Hi) with Buckets cells plus overflow, answers quantile
// queries by interpolation, and merges partial sketches exactly like
// GroupAgg merges AggRows.
type GroupQuantile struct {
	name      string
	windowDur int64
	keyFn     func(telemetry.Record) telemetry.GroupKey
	valFn     func(telemetry.Record) float64

	lo, hi  float64
	buckets int

	state map[int64]map[telemetry.GroupKey]*telemetry.QuantileRow

	// kernel selects the SoA bulk-observe loop (SetAggKernel); sections it
	// does not cover fall back to per-section row materialization.
	kernel AggKernel
	// colScratch is the reusable materialization buffer for fallback
	// sections on the columnar path.
	colScratch telemetry.Batch
}

// NewGroupQuantile creates the operator. The histogram range [lo, hi)
// and bucket count bound the quantile error to one bucket width.
func NewGroupQuantile(name string, windowDurMicros int64,
	keyFn func(telemetry.Record) telemetry.GroupKey,
	valFn func(telemetry.Record) float64,
	lo, hi float64, buckets int) *GroupQuantile {
	if windowDurMicros <= 0 {
		panic("operator: quantile window duration must be positive")
	}
	if buckets < 1 {
		buckets = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &GroupQuantile{
		name: name, windowDur: windowDurMicros,
		keyFn: keyFn, valFn: valFn,
		lo: lo, hi: hi, buckets: buckets,
		state: make(map[int64]map[telemetry.GroupKey]*telemetry.QuantileRow),
	}
}

// Name implements Operator.
func (g *GroupQuantile) Name() string { return g.name }

// Kind implements Operator.
func (g *GroupQuantile) Kind() Kind { return KindGroupAgg }

// Stateful implements Operator.
func (g *GroupQuantile) Stateful() bool { return true }

// Reset implements Operator.
func (g *GroupQuantile) Reset() {
	g.state = make(map[int64]map[telemetry.GroupKey]*telemetry.QuantileRow)
}

// Process implements Operator: raw records update the group's sketch;
// *telemetry.QuantileRow payloads (partials from a replica) merge in.
func (g *GroupQuantile) Process(rec telemetry.Record, emit Emit) {
	if row, ok := rec.Data.(*telemetry.QuantileRow); ok {
		g.mergePartial(rec.Window, row)
		return
	}
	win := g.state[rec.Window]
	if win == nil {
		win = make(map[telemetry.GroupKey]*telemetry.QuantileRow)
		g.state[rec.Window] = win
	}
	key := g.keyFn(rec)
	row := win[key]
	if row == nil {
		row = telemetry.NewQuantileRow(key, rec.Window, g.lo, g.hi, g.buckets)
		win[key] = row
	}
	row.Observe(g.valFn(rec))
}

// ProcessBatch implements BatchProcessor: like GroupAgg, sketch updates
// never emit, so the batch path is a closure-free state loop.
func (g *GroupQuantile) ProcessBatch(in telemetry.Batch, _ *telemetry.Batch) {
	for i := range in {
		rec := in[i]
		if row, ok := rec.Data.(*telemetry.QuantileRow); ok {
			g.mergePartial(rec.Window, row)
			continue
		}
		win := g.state[rec.Window]
		if win == nil {
			win = make(map[telemetry.GroupKey]*telemetry.QuantileRow)
			g.state[rec.Window] = win
		}
		key := g.keyFn(rec)
		row := win[key]
		if row == nil {
			row = telemetry.NewQuantileRow(key, rec.Window, g.lo, g.hi, g.buckets)
			win[key] = row
		}
		row.Observe(g.valFn(rec))
	}
}

func (g *GroupQuantile) mergePartial(window int64, partial *telemetry.QuantileRow) {
	if partial.Window != 0 {
		window = partial.Window
	}
	win := g.state[window]
	if win == nil {
		win = make(map[telemetry.GroupKey]*telemetry.QuantileRow)
		g.state[window] = win
	}
	row := win[partial.Key]
	if row == nil {
		cp := partial.Clone()
		cp.Window = window
		win[partial.Key] = cp
		return
	}
	if err := row.Merge(partial); err != nil {
		// Incompatible sketch shapes cannot merge; drop the partial
		// rather than corrupt the row (callers configure both replicas
		// identically, so this is defensive).
		return
	}
}

// AbsorbSnapshot implements SnapshotAbsorber: restored sketches that
// open new groups are adopted wholesale (ownership transfer — the
// caller's rows came from a freshly decoded snapshot and are not reused)
// instead of cloned per group.
func (g *GroupQuantile) AbsorbSnapshot(rows telemetry.Batch) bool {
	for i := range rows {
		if _, ok := rows[i].Data.(*telemetry.QuantileRow); !ok {
			return false
		}
	}
	for i := range rows {
		partial := rows[i].Data.(*telemetry.QuantileRow)
		window := rows[i].Window
		if partial.Window != 0 {
			window = partial.Window
		}
		win := g.state[window]
		if win == nil {
			win = make(map[telemetry.GroupKey]*telemetry.QuantileRow)
			g.state[window] = win
		}
		row := win[partial.Key]
		if row == nil {
			partial.Window = window
			win[partial.Key] = partial
			continue
		}
		// Incompatible shapes are dropped, matching mergePartial.
		_ = row.Merge(partial)
	}
	return true
}

// Flush implements Operator: emits one QuantileRow per group for every
// window closed by the watermark.
func (g *GroupQuantile) Flush(watermark int64, emit Emit) {
	for _, w := range g.openWindows() {
		end := (w + 1) * g.windowDur
		if end > watermark {
			continue
		}
		g.emitWindow(w, end, emit)
		delete(g.state, w)
	}
}

// Drain emits all open windows' partial sketches and clears state (the
// stateful drain path, like GroupAgg.Drain).
func (g *GroupQuantile) Drain(emit Emit) {
	for _, w := range g.openWindows() {
		g.emitWindow(w, (w+1)*g.windowDur, emit)
		delete(g.state, w)
	}
}

// OpenWindows returns the ids of windows with unflushed state, ascending
// (Checkpointable).
func (g *GroupQuantile) OpenWindows() []int64 { return g.openWindows() }

// SnapshotWindow emits copies of a window's partial sketches without
// clearing state (Checkpointable). Snapshot rows are unsorted — they
// restore by merging into replica hash state, where order is irrelevant.
func (g *GroupQuantile) SnapshotWindow(w int64, emit Emit) {
	win := g.state[w]
	end := (w + 1) * g.windowDur
	for _, row := range win {
		cp := row.Clone()
		emit(telemetry.Record{
			Time:     end,
			Window:   w,
			WireSize: cp.WireSize(),
			Data:     cp,
		})
	}
}

func (g *GroupQuantile) openWindows() []int64 {
	out := make([]int64, 0, len(g.state))
	for w := range g.state {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *GroupQuantile) emitWindow(w, end int64, emit Emit) {
	win := g.state[w]
	keys := sortedKeys(win)
	for _, k := range keys {
		row := win[k].Clone()
		emit(telemetry.Record{
			Time:     end,
			Window:   w,
			WireSize: row.WireSize(),
			Data:     row,
		})
	}
}

// GroupCount returns the number of open groups in a window (cost-model
// and snapshot-capacity hint, like GroupAgg.GroupCount).
func (g *GroupQuantile) GroupCount(window int64) int { return len(g.state[window]) }
