package operator

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"jarvis/internal/telemetry"
)

func quantileOp() *GroupQuantile {
	return NewGroupQuantile("q", winDur, ProbePairKey, ProbeRTT, 0, 10000, 100)
}

func TestGroupQuantileBasic(t *testing.T) {
	g := quantileOp()
	var out telemetry.Batch
	for i := 0; i < 1000; i++ {
		g.Process(probeRec(1_000_000, 1, 2, uint32(i*10)), collect(&out))
	}
	if len(out) != 0 {
		t.Fatal("no emissions before flush")
	}
	g.Flush(winDur, collect(&out))
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	row := out[0].Data.(*telemetry.QuantileRow)
	if row.Total != 1000 {
		t.Fatalf("total = %d", row.Total)
	}
	// Values 0..9990 uniform: the median is ≈5000 within a bucket (100).
	if med := row.Quantile(0.5); math.Abs(med-5000) > 150 {
		t.Fatalf("p50 = %v", med)
	}
	if p99 := row.Quantile(0.99); math.Abs(p99-9900) > 200 {
		t.Fatalf("p99 = %v", p99)
	}
	if g.Kind() != KindGroupAgg || !g.Stateful() {
		t.Fatal("metadata")
	}
}

func TestGroupQuantileMergeLossless(t *testing.T) {
	// The R-1 property: splitting the stream across two replicas and
	// merging partial sketches gives the same quantiles as one replica.
	f := func(seed uint64, splitPct uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		p := float64(splitPct%101) / 100
		ref := quantileOp()
		a, b := quantileOp(), quantileOp()
		none := func(telemetry.Record) {}
		for i := 0; i < 500; i++ {
			rec := probeRec(1_000_000, 1, 2, uint32(rng.IntN(12000)))
			ref.Process(rec, none)
			if rng.Float64() < p {
				a.Process(rec, none)
			} else {
				b.Process(rec, none)
			}
		}
		// a drains its partials into b (like source → SP).
		a.Drain(func(r telemetry.Record) { b.Process(r, none) })
		var want, got telemetry.Batch
		ref.Flush(winDur, collect(&want))
		b.Flush(winDur, collect(&got))
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			wr := want[i].Data.(*telemetry.QuantileRow)
			gr := got[i].Data.(*telemetry.QuantileRow)
			if wr.Total != gr.Total {
				return false
			}
			for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
				if wr.Quantile(q) != gr.Quantile(q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupQuantileIncompatiblePartialDropped(t *testing.T) {
	g := quantileOp()
	none := func(telemetry.Record) {}
	g.Process(probeRec(1_000_000, 1, 2, 100), none)
	// A partial with a different shape must not corrupt state.
	bad := telemetry.NewQuantileRow(telemetry.NumKey((1<<32)|2), 0, 0, 99, 3)
	bad.Observe(5)
	g.Process(telemetry.Record{Window: 0, Data: bad}, none)
	var out telemetry.Batch
	g.Flush(winDur, collect(&out))
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].Data.(*telemetry.QuantileRow).Total != 1 {
		t.Fatal("incompatible partial should be dropped")
	}
}

func TestGroupQuantileDrainClearsAndReset(t *testing.T) {
	g := quantileOp()
	none := func(telemetry.Record) {}
	g.Process(probeRec(1_000_000, 1, 2, 100), none)
	var out telemetry.Batch
	g.Drain(collect(&out))
	if len(out) != 1 {
		t.Fatal("drain should emit")
	}
	out = nil
	g.Flush(winDur, collect(&out))
	if len(out) != 0 {
		t.Fatal("drain must clear state")
	}
	g.Process(probeRec(1_000_000, 1, 2, 100), none)
	g.Reset()
	g.Flush(winDur, collect(&out))
	if len(out) != 0 {
		t.Fatal("reset must clear state")
	}
}

func TestGroupQuantilePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroupQuantile("q", 0, ProbePairKey, ProbeRTT, 0, 1, 1)
}

func TestQuantileRowEdges(t *testing.T) {
	q := telemetry.NewQuantileRow(telemetry.NumKey(1), 0, 0, 100, 10)
	if q.Quantile(0.5) != 0 {
		t.Fatal("empty sketch quantile should be Lo")
	}
	q.Observe(-5)  // underflow
	q.Observe(150) // overflow
	if got := q.Quantile(0); got != 0 {
		t.Fatalf("underflow quantile = %v", got)
	}
	if got := q.Quantile(1); got != 100 {
		t.Fatalf("overflow quantile = %v", got)
	}
	// Clamping and degenerate construction.
	if q.Quantile(-1) != 0 || q.Quantile(2) != 100 {
		t.Fatal("p clamping")
	}
	d := telemetry.NewQuantileRow(telemetry.NumKey(1), 0, 5, 5, 0)
	d.Observe(5)
	if d.Total != 1 || d.Buckets() != 1 {
		t.Fatalf("degenerate sketch: %+v", d)
	}
	// Clone independence.
	c := q.Clone()
	c.Observe(50)
	if c.Total == q.Total {
		t.Fatal("clone aliases counts")
	}
	if q.WireSize() <= 0 {
		t.Fatal("wire size")
	}
	// Merge shape mismatch.
	if err := q.Merge(telemetry.NewQuantileRow(telemetry.NumKey(1), 0, 0, 50, 10)); err == nil {
		t.Fatal("incompatible merge must error")
	}
}
