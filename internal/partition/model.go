package partition

import (
	"fmt"

	"jarvis/internal/plan"
)

// Scenario describes one data source node's operating point.
type Scenario struct {
	Query *plan.Query
	// RateMbps is the node's input data rate.
	RateMbps float64
	// BudgetFrac is the CPU budget as a fraction of one core.
	BudgetFrac float64
	// BandwidthMbps is the network share available to this query from
	// this node toward the stream processor.
	BandwidthMbps float64
	// Boundary caps source placement (0 = whole pipeline).
	Boundary int
}

// Outcome is the analytic steady state of a node under fixed load
// factors. The model captures the two bottlenecks of §VI-B: CPU (the
// pipeline's demand against the budget) and network (drained plus result
// traffic against the bandwidth share). Sustainable throughput is the
// input rate scaled by the tighter bottleneck; queues absorb the excess
// in reality, which shows up as unbounded latency, not loss.
type Outcome struct {
	// ThroughputMbps is the sustainable end-to-end processing rate.
	ThroughputMbps float64
	// OutMbps is the node's outbound traffic when ingesting at full rate
	// (drained + results).
	OutMbps float64
	// DrainMbps and ResultMbps decompose OutMbps.
	DrainMbps  float64
	ResultMbps float64
	// CPUDemandFrac is the compute the factors ask for at full rate.
	CPUDemandFrac float64
	// CPUBound and NetBound flag which bottleneck binds (both false when
	// the node keeps up).
	CPUBound bool
	NetBound bool
}

// Evaluate computes the steady-state outcome for fixed load factors.
func Evaluate(s Scenario, factors []float64) (Outcome, error) {
	q := s.Query
	if q == nil {
		return Outcome{}, fmt.Errorf("partition: scenario has no query")
	}
	if len(factors) != len(q.Ops) {
		return Outcome{}, fmt.Errorf("partition: %d factors for %d operators",
			len(factors), len(q.Ops))
	}
	boundary := s.Boundary
	if boundary <= 0 || boundary > len(q.Ops) {
		boundary = len(q.Ops)
	}
	scale := rateScale(q, s.RateMbps)

	flow := s.RateMbps // bytes-rate entering the next proxy, Mbps
	var drain, cpu float64
	e := 1.0
	for i, op := range q.Ops {
		p := factors[i]
		if i >= boundary {
			p = 0
		}
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		fwd := flow * p
		drain += flow - fwd
		e *= p
		cpu += e * op.CostPct / 100 * scale
		flow = fwd * op.RelayBytes
	}
	result := flow

	out := Outcome{
		OutMbps:       drain + result,
		DrainMbps:     drain,
		ResultMbps:    result,
		CPUDemandFrac: cpu,
	}

	// CPU shortage slows only the forwarded share: records drained at the
	// head never touch the local pipeline and keep flowing to the SP at
	// full rate, so a head split retires its drained share regardless of
	// the local budget.
	phiCPU := 1.0
	if cpu > s.BudgetFrac {
		phiCPU = s.BudgetFrac / cpu
	}
	p0 := clampFactor(factors, 0, boundary)
	headDrainIn := 1 - p0
	headDrainMbps := s.RateMbps * headDrainIn
	retiredIn := headDrainIn + phiCPU*(1-headDrainIn)
	outAtCPU := headDrainMbps + phiCPU*(out.OutMbps-headDrainMbps)

	phiNet := 1.0
	if s.BandwidthMbps > 0 && outAtCPU > s.BandwidthMbps {
		phiNet = s.BandwidthMbps / outAtCPU
	}
	out.CPUBound = phiCPU < 1 && retiredIn*phiNet <= phiCPU || (phiCPU < 1 && phiNet == 1)
	out.NetBound = phiNet < 1
	out.ThroughputMbps = s.RateMbps * retiredIn * phiNet
	return out, nil
}

func clampFactor(factors []float64, i, boundary int) float64 {
	if i >= boundary || i >= len(factors) {
		return 0
	}
	p := factors[i]
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// EvaluateStrategy combines Factors and Evaluate.
func EvaluateStrategy(st Strategy, s Scenario) (Outcome, []float64, error) {
	factors, err := Factors(st, s.Query, s.BudgetFrac, s.RateMbps, s.Boundary)
	if err != nil {
		return Outcome{}, nil, err
	}
	o, err := Evaluate(s, factors)
	return o, factors, err
}

// AggregateThroughput sums the sustainable throughput of n identical
// sources sharing an aggregate SP link of aggBWMbps on top of the
// per-source cap (Fig. 10's setup: the per-node share shrinks as nodes
// are added).
func AggregateThroughput(st Strategy, s Scenario, n int, aggBWMbps float64) (float64, error) {
	if n <= 0 {
		return 0, nil
	}
	per := s
	if aggBWMbps > 0 {
		share := aggBWMbps / float64(n)
		if per.BandwidthMbps <= 0 || share < per.BandwidthMbps {
			per.BandwidthMbps = share
		}
	}
	o, _, err := EvaluateStrategy(st, per)
	if err != nil {
		return 0, err
	}
	return o.ThroughputMbps * float64(n), nil
}
