package partition

import (
	"math"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// Paper network constants (§VI-A): 10 Gbps SP link shared by 250 nodes ×
// 20 queries = 2.048 Mbps per query per source, scaled 10× like the data
// rates; the aggregate per-query SP share is 10 Gbps / 20 = 500 Mbps.
const (
	perSourceBW = 20.48
	aggBW       = 500.0
)

func s2sScenario(budget float64) Scenario {
	return Scenario{
		Query:         plan.S2SProbe(),
		RateMbps:      workload.PingmeshMbps10x,
		BudgetFrac:    budget,
		BandwidthMbps: perSourceBW,
	}
}

func torTable(n int) *telemetry.ToRTable {
	ips := make([]uint32, n)
	for i := range ips {
		ips[i] = uint32(i + 1)
	}
	return telemetry.NewToRTable(ips, 20)
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		AllSP: "All-SP", AllSrc: "All-Src", FilterSrc: "Filter-Src",
		BestOP: "Best-OP", LBDP: "LB-DP", Jarvis: "Jarvis",
		Strategy(99): "Strategy(99)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d → %q", int(s), s.String())
		}
	}
	if len(Strategies) != 6 {
		t.Fatal("six strategies")
	}
}

func TestFactorsShapes(t *testing.T) {
	q := plan.S2SProbe()
	f, err := Factors(AllSP, q, 0.8, 26.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f {
		if p != 0 {
			t.Fatal("All-SP must be all zeros")
		}
	}
	f, _ = Factors(AllSrc, q, 0.2, 26.2, 0)
	for _, p := range f {
		if p != 1 {
			t.Fatal("All-Src must be all ones")
		}
	}
	f, _ = Factors(FilterSrc, q, 0.8, 26.2, 0)
	if f[0] != 1 || f[1] != 1 || f[2] != 0 {
		t.Fatalf("Filter-Src = %v", f)
	}
	// Best-OP at 80%: the 85% query does not fit; boundary after F.
	f, _ = Factors(BestOP, q, 0.8, 26.2, 0)
	if f[0] != 1 || f[1] != 1 || f[2] != 0 {
		t.Fatalf("Best-OP(80%%) = %v", f)
	}
	// Best-OP at 100%: everything fits.
	f, _ = Factors(BestOP, q, 1.0, 26.2, 0)
	if f[2] != 1 {
		t.Fatalf("Best-OP(100%%) = %v", f)
	}
	// LB-DP: head split proportional to source vs SP compute capacity.
	f, _ = Factors(LBDP, q, 0.6, 26.2, 0)
	wantShare := 0.6 / (0.6 + SPShareFrac)
	if math.Abs(f[0]-wantShare) > 1e-9 || f[1] != 1 || f[2] != 1 {
		t.Fatalf("LB-DP = %v, want head share %v", f, wantShare)
	}
	// Jarvis: feasible fractional plan.
	f, _ = Factors(Jarvis, q, 0.6, 26.2, 0)
	o, err := Evaluate(s2sScenario(0.6), f)
	if err != nil {
		t.Fatal(err)
	}
	if o.CPUDemandFrac > 0.6+1e-9 {
		t.Fatalf("Jarvis plan oversubscribes: %v", o.CPUDemandFrac)
	}
	if o.CPUDemandFrac < 0.55 {
		t.Fatalf("Jarvis plan wastes budget: %v", o.CPUDemandFrac)
	}
}

func TestFactorsErrors(t *testing.T) {
	if _, err := Factors(Jarvis, plan.NewQuery("x"), 1, 1, 0); err == nil {
		t.Fatal("empty query must error")
	}
	if _, err := Factors(Strategy(42), plan.S2SProbe(), 1, 26.2, 0); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestEvaluateAllSPNetworkBound(t *testing.T) {
	o, _, err := EvaluateStrategy(AllSP, s2sScenario(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !o.NetBound || o.CPUBound {
		t.Fatalf("All-SP must be network bound: %+v", o)
	}
	if math.Abs(o.ThroughputMbps-perSourceBW) > 0.01 {
		t.Fatalf("All-SP TPut = %v, want %v", o.ThroughputMbps, perSourceBW)
	}
	if math.Abs(o.OutMbps-26.2) > 0.01 {
		t.Fatalf("All-SP out = %v", o.OutMbps)
	}
}

func TestEvaluateAllSrcCPUBound(t *testing.T) {
	o, _, err := EvaluateStrategy(AllSrc, s2sScenario(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if !o.CPUBound {
		t.Fatalf("All-Src at 60%% must be CPU bound: %+v", o)
	}
	want := 26.2 * 0.6 / 0.85
	if math.Abs(o.ThroughputMbps-want) > 0.2 {
		t.Fatalf("All-Src TPut = %v, want ≈%v", o.ThroughputMbps, want)
	}
}

// TestFig7aOrdering checks the qualitative result of Fig. 7(a): Jarvis is
// best in the constrained 40–80% range; All-Src collapses at low budgets;
// operator-level partitioning and All-SP are network bound.
func TestFig7aOrdering(t *testing.T) {
	for _, budget := range []float64{0.4, 0.6, 0.8} {
		sc := s2sScenario(budget)
		tput := map[Strategy]float64{}
		for _, st := range Strategies {
			o, _, err := EvaluateStrategy(st, sc)
			if err != nil {
				t.Fatal(err)
			}
			tput[st] = o.ThroughputMbps
		}
		for _, st := range []Strategy{AllSP, AllSrc, FilterSrc, BestOP} {
			if tput[Jarvis]+1e-9 < tput[st] {
				t.Fatalf("budget %v: Jarvis (%v) < %v (%v)",
					budget, tput[Jarvis], st, tput[st])
			}
		}
		if tput[AllSrc] >= tput[Jarvis]*0.95 {
			t.Fatalf("budget %v: All-Src (%v) should trail Jarvis (%v)",
				budget, tput[AllSrc], tput[Jarvis])
		}
	}
	// At 100% CPU, All-Src catches up (85% demand fits).
	o, _, _ := EvaluateStrategy(AllSrc, s2sScenario(1.0))
	if math.Abs(o.ThroughputMbps-26.2) > 0.01 {
		t.Fatalf("All-Src at 100%% = %v, want full rate", o.ThroughputMbps)
	}
}

// TestFig7bT2TProbe checks Fig. 7(b): the join-heavy query exceeds one
// core, All-Src cannot keep up even at 100% CPU, Best-OP cannot place the
// join, and Jarvis wins by processing part of the join input locally.
func TestFig7bT2TProbe(t *testing.T) {
	sc := Scenario{
		Query:         plan.T2TProbe(torTable(500)),
		RateMbps:      workload.PingmeshMbps10x,
		BudgetFrac:    1.0,
		BandwidthMbps: perSourceBW,
	}
	allSrc, _, err := EvaluateStrategy(AllSrc, sc)
	if err != nil {
		t.Fatal(err)
	}
	if allSrc.ThroughputMbps > 0.6*26.2 {
		t.Fatalf("All-Src T2T at 100%% = %v, should be far below input", allSrc.ThroughputMbps)
	}
	bestF, _ := Factors(BestOP, sc.Query, 1.0, 26.2, 0)
	if bestF[2] != 0 {
		t.Fatalf("Best-OP must not place J even at 100%%: %v", bestF)
	}

	// Jarvis vs All-Src at 40% CPU: the paper reports 4.4×.
	sc.BudgetFrac = 0.4
	j, _, _ := EvaluateStrategy(Jarvis, sc)
	a, _, _ := EvaluateStrategy(AllSrc, sc)
	ratio := j.ThroughputMbps / a.ThroughputMbps
	if ratio < 3.0 {
		t.Fatalf("Jarvis/All-Src at 40%% = %.2f, want ≳4 (paper: 4.4×)", ratio)
	}

	// Jarvis vs Best-OP across 60–100%: the paper reports ≈1.2×.
	for _, b := range []float64{0.6, 0.8, 1.0} {
		sc.BudgetFrac = b
		j, _, _ := EvaluateStrategy(Jarvis, sc)
		bo, _, _ := EvaluateStrategy(BestOP, sc)
		if j.ThroughputMbps < bo.ThroughputMbps {
			t.Fatalf("budget %v: Jarvis (%v) < Best-OP (%v)", b, j.ThroughputMbps, bo.ThroughputMbps)
		}
	}
}

// TestFig7cLogAnalytics checks Fig. 7(c): All-SP is network bound
// (Jarvis gains ≈2.3× at 40–100%), and Jarvis beats LB-DP whose
// query-level split ships raw lines.
func TestFig7cLogAnalytics(t *testing.T) {
	sc := Scenario{
		Query:         plan.LogAnalytics(),
		RateMbps:      workload.LogMbps10x,
		BudgetFrac:    0.6,
		BandwidthMbps: perSourceBW,
	}
	j, _, _ := EvaluateStrategy(Jarvis, sc)
	sp, _, _ := EvaluateStrategy(AllSP, sc)
	if r := j.ThroughputMbps / sp.ThroughputMbps; r < 2.0 || r > 3.0 {
		t.Fatalf("Jarvis/All-SP = %v, want ≈2.4 (paper: 2.3×)", r)
	}
	// At 20% CPU the query (31%) does not fit; Jarvis still beats LB-DP
	// because partial G+R kills bytes that LB-DP ships raw.
	sc.BudgetFrac = 0.2
	j, _, _ = EvaluateStrategy(Jarvis, sc)
	lb, _, _ := EvaluateStrategy(LBDP, sc)
	if j.ThroughputMbps < lb.ThroughputMbps {
		t.Fatalf("Jarvis (%v) < LB-DP (%v) at 20%%", j.ThroughputMbps, lb.ThroughputMbps)
	}
	if j.OutMbps >= lb.OutMbps {
		t.Fatalf("Jarvis traffic (%v) should undercut LB-DP (%v)", j.OutMbps, lb.OutMbps)
	}
}

// TestFig10Scaling checks the multi-source result: Jarvis sustains ≈75%
// more sources than Best-OP at the 5× rate before the shared SP link
// saturates.
func TestFig10Scaling(t *testing.T) {
	maxNodes := func(st Strategy, rate, budget float64) int {
		sc := Scenario{
			Query: plan.S2SProbe(), RateMbps: rate,
			BudgetFrac: budget, BandwidthMbps: perSourceBW,
		}
		for n := 1; n <= 400; n++ {
			tp, err := AggregateThroughput(st, sc, n, aggBW)
			if err != nil {
				t.Fatal(err)
			}
			expected := rate * float64(n)
			if tp < expected*0.99 {
				return n - 1
			}
		}
		return 400
	}
	// 5× rate, 30% CPU (paper: Best-OP ≈40 nodes, Jarvis ≈70: +75%).
	bo := maxNodes(BestOP, 13.1, 0.30)
	jv := maxNodes(Jarvis, 13.1, 0.30)
	if bo < 30 || bo > 55 {
		t.Fatalf("Best-OP scales to %d nodes, want ≈40", bo)
	}
	if jv < 60 {
		t.Fatalf("Jarvis scales to %d nodes, want ≳70", jv)
	}
	gain := float64(jv)/float64(bo) - 1
	if gain < 0.5 {
		t.Fatalf("Jarvis source gain = %.0f%%, want ≳75%%", gain*100)
	}

	// 1× rate, 5% CPU (paper: Best-OP degrades at 180, Jarvis ≥250).
	bo = maxNodes(BestOP, 2.62, 0.05)
	jv = maxNodes(Jarvis, 2.62, 0.05)
	if bo > 260 || bo < 150 {
		t.Fatalf("Best-OP(1×) scales to %d, want ≈180-220", bo)
	}
	if jv < 250 {
		t.Fatalf("Jarvis(1×) scales to %d, want ≥250", jv)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(s2sScenario(1), []float64{1}); err == nil {
		t.Fatal("factor length mismatch must error")
	}
	if _, err := Evaluate(Scenario{}, nil); err == nil {
		t.Fatal("nil query must error")
	}
}

func TestEvaluateClampsFactors(t *testing.T) {
	o, err := Evaluate(s2sScenario(1.0), []float64{2, -1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// p clamps to [1, 0, 0.5]; everything drains at the filter.
	if o.ResultMbps != 0 {
		t.Fatalf("no records should pass a p=0 filter: %+v", o)
	}
}

func TestAggregateThroughputEdge(t *testing.T) {
	tp, err := AggregateThroughput(Jarvis, s2sScenario(1.0), 0, aggBW)
	if err != nil || tp != 0 {
		t.Fatalf("zero nodes → zero throughput, got %v, %v", tp, err)
	}
}

func TestBoundaryRespected(t *testing.T) {
	q := plan.S2SProbe()
	f, err := Factors(AllSrc, q, 1.0, 26.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f[2] != 0 {
		t.Fatalf("boundary 2 must zero op 2: %v", f)
	}
	fj, err := Factors(Jarvis, q, 1.0, 26.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fj[2] != 0 {
		t.Fatalf("Jarvis boundary 2 must zero op 2: %v", fj)
	}
}
