// Package partition implements the query-partitioning strategies the
// paper evaluates (§VI-A "Baseline systems") and an analytic steady-state
// model of a data source node used by the experiment harness:
//
//   - All-SP: the query runs entirely on the stream processor
//     (Gigascope-style).
//   - All-Src: the query runs entirely on the data source.
//   - Filter-Src: static operator-level partitioning running only the
//     leading filtering operators on the source (Everflow-style).
//   - Best-OP: dynamic operator-level partitioning choosing the best
//     boundary that fits the compute budget (Sonata-style).
//   - LB-DP: query-level data partitioning splitting the input stream
//     between source and SP proportionally to available compute
//     (M3-style load balancing).
//   - Jarvis: data-level partitioning via the Eq. 3 LP (the runtime's
//     fine-tuning refines it further in closed loop).
package partition

import (
	"fmt"

	"jarvis/internal/lp"
	"jarvis/internal/operator"
	"jarvis/internal/plan"
)

// Strategy identifies a partitioning policy.
type Strategy int

// The evaluated strategies.
const (
	AllSP Strategy = iota
	AllSrc
	FilterSrc
	BestOP
	LBDP
	Jarvis
)

// Strategies lists all policies in the paper's presentation order.
var Strategies = []Strategy{AllSrc, AllSP, FilterSrc, BestOP, LBDP, Jarvis}

// SPShareFrac is the stream processor's compute share available to one
// query from one data source, as a fraction of one core: 64 cores shared
// by 250 sources × 20 queries, scaled 10× with the data rates (§VI-A).
// LB-DP balances against this capacity.
const SPShareFrac = 64.0 / (250 * 20) * 10

func (s Strategy) String() string {
	switch s {
	case AllSP:
		return "All-SP"
	case AllSrc:
		return "All-Src"
	case FilterSrc:
		return "Filter-Src"
	case BestOP:
		return "Best-OP"
	case LBDP:
		return "LB-DP"
	case Jarvis:
		return "Jarvis"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Factors computes the load factors a strategy deploys on a data source
// with the given CPU budget (fraction of one core) and input rate.
// boundary caps source placement (plan rules); 0 means the whole
// pipeline. All strategies are expressed in the load-factor formalism:
// operator-level plans use {0,1} factors, data-level plans use fractions.
func Factors(s Strategy, q *plan.Query, budgetFrac, rateMbps float64, boundary int) ([]float64, error) {
	m := len(q.Ops)
	if m == 0 {
		return nil, fmt.Errorf("partition: empty query")
	}
	if boundary <= 0 || boundary > m {
		boundary = m
	}
	out := make([]float64, m)
	switch s {
	case AllSP:
		return out, nil

	case AllSrc:
		for i := 0; i < boundary; i++ {
			out[i] = 1
		}
		return out, nil

	case FilterSrc:
		// Run the prefix up to and including the first Filter.
		cut := 0
		for i, op := range q.Ops {
			if op.Kind == operator.KindFilter {
				cut = i + 1
				break
			}
		}
		if cut > boundary {
			cut = boundary
		}
		for i := 0; i < cut; i++ {
			out[i] = 1
		}
		return out, nil

	case BestOP:
		// Deepest boundary whose prefix demand fits the budget at the
		// current rate (the operator-level solver; records past the
		// boundary drain).
		scale := rateScale(q, rateMbps)
		best := 0
		for b := 1; b <= boundary; b++ {
			if plan.PrefixCostPct(q, b)/100*scale <= budgetFrac+1e-12 {
				best = b
			}
		}
		for i := 0; i < best; i++ {
			out[i] = 1
		}
		return out, nil

	case LBDP:
		// Query-level split: a share of the input runs the whole local
		// pipeline, the rest ships raw to the SP. M3's goal is to
		// *balance* compute load across the instances, so the split is
		// proportional to the capacities on either side — the source's
		// budget against the SP's per-query per-source compute share —
		// not sized to traffic or to fit the budget. Balancing can
		// therefore oversubscribe the source (hurting throughput) or
		// ship data a traffic-minimizing plan would have kept local
		// (paper §VI-B: "its goal is to balance the compute load").
		share := budgetFrac / (budgetFrac + SPShareFrac)
		if share > 1 {
			share = 1
		}
		out[0] = share
		for i := 1; i < boundary; i++ {
			out[i] = 1
		}
		return out, nil

	case Jarvis:
		// Model-based plan from the calibrated hints (the closed-loop
		// runtime refines this online; experiments that only need the
		// steady state use the LP directly).
		return JarvisLPFactors(q, budgetFrac, rateMbps, boundary)

	default:
		return nil, fmt.Errorf("partition: unknown strategy %d", int(s))
	}
}

// JarvisLPFactors solves the Eq. 3 chain LP with the query's calibrated
// cost hints at the given rate.
func JarvisLPFactors(q *plan.Query, budgetFrac, rateMbps float64, boundary int) ([]float64, error) {
	m := len(q.Ops)
	if boundary <= 0 || boundary > m {
		boundary = m
	}
	scale := rateScale(q, rateMbps)
	cp := lp.ChainProblem{
		R:      make([]float64, boundary),
		C:      make([]float64, boundary),
		Budget: budgetFrac,
	}
	w := 1.0
	for i := 0; i < boundary; i++ {
		cp.R[i] = q.Ops[i].RelayBytes
		if w <= 1e-9 {
			w = 1e-9
		}
		cp.C[i] = q.Ops[i].CostPct / 100 * scale / w
		w *= q.Ops[i].RelayBytes
	}
	sol, err := lp.SolveChain(cp)
	if err != nil {
		return nil, err
	}
	out := make([]float64, m)
	copy(out, sol.P)
	return out, nil
}

// rateScale converts the calibration-rate cost hints to the current rate.
func rateScale(q *plan.Query, rateMbps float64) float64 {
	if q.RefRateMbps <= 0 || rateMbps <= 0 {
		return 1
	}
	return rateMbps / q.RefRateMbps
}
