package plan

import (
	"errors"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// Columnar predicate compilation: optimizer-visible filter expressions
// (Expr) compile into operator.ColumnarPred kernels that evaluate over a
// decoded section's columns, so the SP-side SoA path never materializes
// records just to run a filter. Compilation happens per section (field
// names resolve to column accessors once, not per row) and preserves
// Eval's exact semantics, including its error behaviour: a record whose
// payload lacks a referenced field fails evaluation and is dropped, and
// And/Or short-circuit before touching their right operand.

// errColField is the sentinel for a field the section's payload type
// lacks — Instantiate's row predicate drops records on any Eval error,
// so the error's identity never matters, only its presence.
var errColField = errors.New("plan: field not in section payload")

// colEval evaluates one compiled expression node for column row i.
type colEval func(i int) (Value, error)

// compileColumnarPred compiles e into a columnar filter predicate
// matching Instantiate's row predicate `err == nil && v.Truthy()`.
func compileColumnarPred(e Expr) operator.ColumnarPred {
	return func(sec *wire.ColSec) (func(i int) bool, bool) {
		// Fast path: a single numeric field/constant comparison (the
		// dominant filter shape, e.g. errCode == 0) compiles to one
		// branchless column scan closure.
		if keep, ok := compileFastCmp(e, sec); ok {
			return keep, true
		}
		ev, ok := compileColExpr(e, sec)
		if !ok {
			return nil, false
		}
		return func(i int) bool {
			v, err := ev(i)
			return err == nil && v.Truthy()
		}, true
	}
}

// compileFastCmp recognizes cmp(field, const) / cmp(const, field) over a
// numeric column and compiles it without the Value boxing of the general
// path.
func compileFastCmp(e Expr, sec *wire.ColSec) (func(i int) bool, bool) {
	c, ok := e.(cmpExpr)
	if !ok {
		return nil, false
	}
	fe, feOK := c.l.(fieldExpr)
	ce, ceOK := c.r.(constExpr)
	op := c.op
	if !feOK || !ceOK {
		fe, feOK = c.r.(fieldExpr)
		ce, ceOK = c.l.(constExpr)
		if !feOK || !ceOK {
			return nil, false
		}
		// Mirror the comparison: const OP field == field flip(OP) const.
		switch op {
		case LT:
			op = GT
		case LE:
			op = GE
		case GT:
			op = LT
		case GE:
			op = LE
		}
	}
	if ce.v.IsStr {
		return nil, false
	}
	ref, ok := numColumnRef(sec, fe.name)
	if !ok {
		return nil, false
	}
	rhs := ce.v.F
	// Capture the typed column slice directly so the scan is one closure
	// call per row (the generic accessor costs a second indirect call and
	// shows up on the SP ingest profile).
	switch {
	case ref.u32 != nil:
		return cmpScan(ref.u32, op, rhs)
	case ref.i64 != nil:
		return cmpScan(ref.i64, op, rhs)
	case ref.f64 != nil:
		return cmpScan(ref.f64, op, rhs)
	}
	col := ref.fn
	switch op {
	case EQ:
		return func(i int) bool { return col(i) == rhs }, true
	case NE:
		return func(i int) bool { return col(i) != rhs }, true
	case LT:
		return func(i int) bool { return col(i) < rhs }, true
	case LE:
		return func(i int) bool { return col(i) <= rhs }, true
	case GT:
		return func(i int) bool { return col(i) > rhs }, true
	case GE:
		return func(i int) bool { return col(i) >= rhs }, true
	}
	return nil, false
}

// cmpScan builds the typed fast-path comparison closure. Conversion to
// float64 per element keeps Eval's numeric semantics bit-exact (uint32
// converts exactly; int64 rounds identically to the generic accessor).
func cmpScan[T uint32 | int64 | float64](c []T, op CmpOp, rhs float64) (func(i int) bool, bool) {
	switch op {
	case EQ:
		return func(i int) bool { return float64(c[i]) == rhs }, true
	case NE:
		return func(i int) bool { return float64(c[i]) != rhs }, true
	case LT:
		return func(i int) bool { return float64(c[i]) < rhs }, true
	case LE:
		return func(i int) bool { return float64(c[i]) <= rhs }, true
	case GT:
		return func(i int) bool { return float64(c[i]) > rhs }, true
	case GE:
		return func(i int) bool { return float64(c[i]) >= rhs }, true
	}
	return nil, false
}

// compileColExpr compiles an expression node against a section. ok=false
// means the section cannot be evaluated columnar at all (unsupported
// expression shape or a field we cannot resolve to a column even though
// the payload type has it) — the filter then materializes the section.
func compileColExpr(e Expr, sec *wire.ColSec) (colEval, bool) {
	switch x := e.(type) {
	case constExpr:
		v := x.v
		return func(int) (Value, error) { return v, nil }, true
	case fieldExpr:
		return compileColField(x.name, sec)
	case cmpExpr:
		l, ok := compileColExpr(x.l, sec)
		if !ok {
			return nil, false
		}
		r, ok := compileColExpr(x.r, sec)
		if !ok {
			return nil, false
		}
		op := x.op
		return func(i int) (Value, error) {
			lv, err := l(i)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(i)
			if err != nil {
				return Value{}, err
			}
			return cmpValues(op, lv, rv)
		}, true
	case logicExpr:
		l, ok := compileColExpr(x.l, sec)
		if !ok {
			return nil, false
		}
		r, ok := compileColExpr(x.r, sec)
		if !ok {
			return nil, false
		}
		and := x.op == AndOp
		return func(i int) (Value, error) {
			lv, err := l(i)
			if err != nil {
				return Value{}, err
			}
			if and && !lv.Truthy() {
				return NumValue(0), nil
			}
			if !and && lv.Truthy() {
				return NumValue(1), nil
			}
			rv, err := r(i)
			if err != nil {
				return Value{}, err
			}
			return NumValue(b2f(rv.Truthy())), nil
		}, true
	case notExpr:
		in, ok := compileColExpr(x.e, sec)
		if !ok {
			return nil, false
		}
		return func(i int) (Value, error) {
			v, err := in(i)
			if err != nil {
				return Value{}, err
			}
			return NumValue(b2f(!v.Truthy())), nil
		}, true
	default:
		return nil, false
	}
}

// cmpValues applies one comparison with Eval's exact semantics.
func cmpValues(op CmpOp, lv, rv Value) (Value, error) {
	var cmp int
	if lv.IsStr || rv.IsStr {
		if !lv.IsStr || !rv.IsStr {
			return Value{}, errColField // string/number mix fails Eval too
		}
		switch {
		case lv.S < rv.S:
			cmp = -1
		case lv.S > rv.S:
			cmp = 1
		}
	} else {
		switch {
		case lv.F < rv.F:
			cmp = -1
		case lv.F > rv.F:
			cmp = 1
		}
	}
	var ok bool
	switch op {
	case EQ:
		ok = cmp == 0
	case NE:
		ok = cmp != 0
	case LT:
		ok = cmp < 0
	case LE:
		ok = cmp <= 0
	case GT:
		ok = cmp > 0
	case GE:
		ok = cmp >= 0
	}
	return NumValue(b2f(ok)), nil
}

// errEval is the accessor for a field the payload type lacks: every row
// fails evaluation, exactly as GetField reporting false does on the row
// path.
func errEval(int) (Value, error) { return Value{}, errColField }

// compileColField resolves a field name against the section's columns,
// mirroring GetField's per-type field tables.
func compileColField(name string, sec *wire.ColSec) (colEval, bool) {
	// Generic record-header fields exist for every payload type.
	switch name {
	case "_time":
		t := sec.Times
		return func(i int) (Value, error) { return NumValue(float64(t[i])), nil }, true
	case "_window":
		w := sec.Windows
		return func(i int) (Value, error) { return NumValue(float64(w[i])), nil }, true
	}
	if col, ok := numColumn(sec, name); ok {
		return func(i int) (Value, error) { return NumValue(col(i)), nil }, true
	}
	if col, ok := strColumn(sec, name); ok {
		return func(i int) (Value, error) { return StrValue(col[i]), nil }, true
	}
	if fieldInPayload(sec, name) {
		// The payload has the field but we have no column for it
		// (e.g. _size, AggRow's rendered key): fall back to rows.
		return nil, false
	}
	return errEval, true
}

// numColRef is a resolved numeric column in its raw representation:
// exactly one of u32/i64/f64/fn is set. The typed slices let hot scans
// index the column directly; fn covers computed columns (avg).
type numColRef struct {
	u32 []uint32
	i64 []int64
	f64 []float64
	fn  func(i int) float64
}

// numColumnRef resolves a numeric field to its raw column.
func numColumnRef(sec *wire.ColSec, name string) (numColRef, bool) {
	switch {
	case sec.Ping != nil:
		p := sec.Ping
		switch name {
		case "errCode":
			return numColRef{u32: p.Err}, true
		case "srcIp":
			return numColRef{u32: p.SrcIP}, true
		case "dstIp":
			return numColRef{u32: p.DstIP}, true
		case "srcCluster":
			return numColRef{u32: p.SrcCluster}, true
		case "dstCluster":
			return numColRef{u32: p.DstCluster}, true
		case "rtt":
			return numColRef{u32: p.RTT}, true
		case "timestamp":
			return numColRef{i64: p.TS}, true
		}
	case sec.ToR != nil:
		p := sec.ToR
		switch name {
		case "srcToR":
			return numColRef{u32: p.SrcToR}, true
		case "dstToR":
			return numColRef{u32: p.DstToR}, true
		case "rtt":
			return numColRef{u32: p.RTT}, true
		case "timestamp":
			return numColRef{i64: p.TS}, true
		}
	case sec.Log != nil:
		if name == "timestamp" {
			return numColRef{i64: sec.Log.TS}, true
		}
	case sec.Job != nil:
		p := sec.Job
		switch name {
		case "stat":
			return numColRef{f64: p.Stat}, true
		case "bucket":
			return numColRef{i64: p.Bucket}, true
		case "timestamp":
			return numColRef{i64: p.TS}, true
		}
	case sec.Agg != nil:
		p := sec.Agg
		switch name {
		case "count":
			return numColRef{i64: p.Count}, true
		case "sum":
			return numColRef{f64: p.Sum}, true
		case "min":
			return numColRef{f64: p.Min}, true
		case "max":
			return numColRef{f64: p.Max}, true
		case "avg":
			c, s := p.Count, p.Sum
			return numColRef{fn: func(i int) float64 {
				if c[i] == 0 {
					return 0
				}
				return s[i] / float64(c[i])
			}}, true
		}
	}
	return numColRef{}, false
}

// numColumn resolves a numeric field to a column accessor (the general
// path; hot scans use numColumnRef's typed slices directly).
func numColumn(sec *wire.ColSec, name string) (func(i int) float64, bool) {
	ref, ok := numColumnRef(sec, name)
	if !ok {
		return nil, false
	}
	switch {
	case ref.u32 != nil:
		c := ref.u32
		return func(i int) float64 { return float64(c[i]) }, true
	case ref.i64 != nil:
		c := ref.i64
		return func(i int) float64 { return float64(c[i]) }, true
	case ref.f64 != nil:
		c := ref.f64
		return func(i int) float64 { return c[i] }, true
	}
	return ref.fn, true
}

// strColumn resolves a string field to its column.
func strColumn(sec *wire.ColSec, name string) ([]string, bool) {
	switch {
	case sec.Log != nil:
		if name == "raw" {
			return sec.Log.Raw, true
		}
	case sec.Job != nil:
		switch name {
		case "tenant":
			return sec.Job.Tenant, true
		case "statName":
			return sec.Job.StatName, true
		}
	}
	return nil, false
}

// fieldInPayload reports whether GetField would resolve the name for the
// section's payload type — used to distinguish "field missing, rows
// drop" from "field exists but has no column, materialize".
func fieldInPayload(sec *wire.ColSec, name string) bool {
	if name == "_size" {
		return true
	}
	var probe telemetry.Record
	switch {
	case sec.Ping != nil:
		probe.Data = &telemetry.PingProbe{}
	case sec.ToR != nil:
		probe.Data = &telemetry.ToRProbe{}
	case sec.Log != nil:
		probe.Data = &telemetry.LogLine{}
	case sec.Job != nil:
		probe.Data = &telemetry.JobStats{}
	case sec.Agg != nil:
		probe.Data = &telemetry.AggRow{}
	default:
		return true // unknown section: be conservative, materialize
	}
	_, ok := GetField(probe, name)
	return ok
}
