// Package plan implements Jarvis' query-plan generation pipeline
// (paper §IV-B): a declarative builder in the style of Listings 1–3, a
// logical plan with classic optimizations (constant folding, predicate
// pushdown), the operator-eligibility rules R-1..R-4, control-proxy
// insertion, and compilation to a physical operator pipeline.
package plan

import (
	"fmt"
	"strings"

	"jarvis/internal/telemetry"
)

// Value is the result of evaluating an expression: either a number or a
// string.
type Value struct {
	F     float64
	S     string
	IsStr bool
}

// NumValue builds a numeric value.
func NumValue(f float64) Value { return Value{F: f} }

// StrValue builds a string value.
func StrValue(s string) Value { return Value{S: s, IsStr: true} }

// Truthy interprets a value as a boolean: nonzero number or nonempty
// string.
func (v Value) Truthy() bool {
	if v.IsStr {
		return v.S != ""
	}
	return v.F != 0
}

// FieldGetter resolves a field name against a record. It reports false
// when the record's payload lacks the field.
type FieldGetter func(rec telemetry.Record, name string) (Value, bool)

// Expr is a boolean/arithmetic expression over record fields, used by
// filter predicates so the optimizer can reason about them (fold
// constants, compute referenced fields for pushdown).
type Expr interface {
	// Eval evaluates the expression against a record.
	Eval(rec telemetry.Record, get FieldGetter) (Value, error)
	// Fields appends the names of fields the expression references.
	Fields(dst []string) []string
	// Fold returns an equivalent expression with constant subtrees
	// evaluated.
	Fold() Expr
	// String renders the expression for plan explanations.
	String() string
}

// constExpr is a literal.
type constExpr struct{ v Value }

// Num is a numeric literal expression.
func Num(f float64) Expr { return constExpr{NumValue(f)} }

// Str is a string literal expression.
func Str(s string) Expr { return constExpr{StrValue(s)} }

// Bool is a boolean literal (1/0 numeric).
func Bool(b bool) Expr {
	if b {
		return Num(1)
	}
	return Num(0)
}

func (c constExpr) Eval(telemetry.Record, FieldGetter) (Value, error) { return c.v, nil }
func (c constExpr) Fields(dst []string) []string                      { return dst }
func (c constExpr) Fold() Expr                                        { return c }
func (c constExpr) String() string {
	if c.v.IsStr {
		return fmt.Sprintf("%q", c.v.S)
	}
	return trimFloat(c.v.F)
}

// fieldExpr references a record field by name.
type fieldExpr struct{ name string }

// Field references a record field (e.g. "errCode", "rtt").
func Field(name string) Expr { return fieldExpr{name} }

func (f fieldExpr) Eval(rec telemetry.Record, get FieldGetter) (Value, error) {
	if get == nil {
		return Value{}, fmt.Errorf("plan: no field getter for %q", f.name)
	}
	v, ok := get(rec, f.name)
	if !ok {
		return Value{}, fmt.Errorf("plan: record %T has no field %q", rec.Data, f.name)
	}
	return v, nil
}
func (f fieldExpr) Fields(dst []string) []string { return append(dst, f.name) }
func (f fieldExpr) Fold() Expr                   { return f }
func (f fieldExpr) String() string               { return f.name }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

type cmpExpr struct {
	op   CmpOp
	l, r Expr
}

// Cmp builds a comparison expression.
func Cmp(op CmpOp, l, r Expr) Expr { return cmpExpr{op, l, r} }

// Eq is shorthand for Cmp(EQ, l, r).
func Eq(l, r Expr) Expr { return Cmp(EQ, l, r) }

// Gt is shorthand for Cmp(GT, l, r).
func Gt(l, r Expr) Expr { return Cmp(GT, l, r) }

func (c cmpExpr) Eval(rec telemetry.Record, get FieldGetter) (Value, error) {
	lv, err := c.l.Eval(rec, get)
	if err != nil {
		return Value{}, err
	}
	rv, err := c.r.Eval(rec, get)
	if err != nil {
		return Value{}, err
	}
	var cmp int
	if lv.IsStr || rv.IsStr {
		if !lv.IsStr || !rv.IsStr {
			return Value{}, fmt.Errorf("plan: comparing string with number in %s", c)
		}
		cmp = strings.Compare(lv.S, rv.S)
	} else {
		switch {
		case lv.F < rv.F:
			cmp = -1
		case lv.F > rv.F:
			cmp = 1
		}
	}
	var ok bool
	switch c.op {
	case EQ:
		ok = cmp == 0
	case NE:
		ok = cmp != 0
	case LT:
		ok = cmp < 0
	case LE:
		ok = cmp <= 0
	case GT:
		ok = cmp > 0
	case GE:
		ok = cmp >= 0
	}
	return NumValue(b2f(ok)), nil
}
func (c cmpExpr) Fields(dst []string) []string { return c.r.Fields(c.l.Fields(dst)) }
func (c cmpExpr) Fold() Expr {
	l, r := c.l.Fold(), c.r.Fold()
	if lc, ok := l.(constExpr); ok {
		if rc, ok := r.(constExpr); ok {
			v, err := (cmpExpr{c.op, lc, rc}).Eval(telemetry.Record{}, nil)
			if err == nil {
				return constExpr{v}
			}
		}
	}
	return cmpExpr{c.op, l, r}
}
func (c cmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", c.l, c.op, c.r)
}

// LogicOp is a boolean connective.
type LogicOp int

// Boolean connectives.
const (
	AndOp LogicOp = iota
	OrOp
)

type logicExpr struct {
	op   LogicOp
	l, r Expr
}

// And builds a conjunction.
func And(l, r Expr) Expr { return logicExpr{AndOp, l, r} }

// Or builds a disjunction.
func Or(l, r Expr) Expr { return logicExpr{OrOp, l, r} }

func (x logicExpr) Eval(rec telemetry.Record, get FieldGetter) (Value, error) {
	lv, err := x.l.Eval(rec, get)
	if err != nil {
		return Value{}, err
	}
	// Short circuit.
	if x.op == AndOp && !lv.Truthy() {
		return NumValue(0), nil
	}
	if x.op == OrOp && lv.Truthy() {
		return NumValue(1), nil
	}
	rv, err := x.r.Eval(rec, get)
	if err != nil {
		return Value{}, err
	}
	return NumValue(b2f(rv.Truthy())), nil
}
func (x logicExpr) Fields(dst []string) []string { return x.r.Fields(x.l.Fields(dst)) }
func (x logicExpr) Fold() Expr {
	l, r := x.l.Fold(), x.r.Fold()
	if lc, ok := l.(constExpr); ok {
		if x.op == AndOp {
			if !lc.v.Truthy() {
				return Num(0)
			}
			return r
		}
		if lc.v.Truthy() {
			return Num(1)
		}
		return r
	}
	if rc, ok := r.(constExpr); ok {
		if x.op == AndOp {
			if !rc.v.Truthy() {
				return Num(0)
			}
			return l
		}
		if rc.v.Truthy() {
			return Num(1)
		}
		return l
	}
	return logicExpr{x.op, l, r}
}
func (x logicExpr) String() string {
	op := "&&"
	if x.op == OrOp {
		op = "||"
	}
	return fmt.Sprintf("(%s %s %s)", x.l, op, x.r)
}

// notExpr negates a boolean expression.
type notExpr struct{ e Expr }

// Not negates an expression.
func Not(e Expr) Expr { return notExpr{e} }

func (n notExpr) Eval(rec telemetry.Record, get FieldGetter) (Value, error) {
	v, err := n.e.Eval(rec, get)
	if err != nil {
		return Value{}, err
	}
	return NumValue(b2f(!v.Truthy())), nil
}
func (n notExpr) Fields(dst []string) []string { return n.e.Fields(dst) }
func (n notExpr) Fold() Expr {
	e := n.e.Fold()
	if c, ok := e.(constExpr); ok {
		return constExpr{NumValue(b2f(!c.v.Truthy()))}
	}
	return notExpr{e}
}
func (n notExpr) String() string { return fmt.Sprintf("!%s", n.e) }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
