package plan

import (
	"testing"

	"jarvis/internal/telemetry"
)

func probe(errCode, rtt uint32) telemetry.Record {
	return telemetry.NewProbeRecord(&telemetry.PingProbe{ErrCode: errCode, RTTMicros: rtt})
}

func evalBool(t *testing.T, e Expr, rec telemetry.Record) bool {
	t.Helper()
	v, err := e.Eval(rec, GetField)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v.Truthy()
}

func TestCmpOperators(t *testing.T) {
	rec := probe(0, 500)
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(Field("errCode"), Num(0)), true},
		{Cmp(NE, Field("errCode"), Num(0)), false},
		{Cmp(LT, Field("rtt"), Num(1000)), true},
		{Cmp(LE, Field("rtt"), Num(500)), true},
		{Gt(Field("rtt"), Num(499)), true},
		{Cmp(GE, Field("rtt"), Num(501)), false},
	}
	for _, c := range cases {
		if got := evalBool(t, c.e, rec); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLogicShortCircuit(t *testing.T) {
	rec := probe(0, 500)
	// Right side references a missing field; short circuit avoids the
	// error.
	e := Or(Eq(Field("errCode"), Num(0)), Field("nosuch"))
	if !evalBool(t, e, rec) {
		t.Fatal("or should short-circuit to true")
	}
	e = And(Eq(Field("errCode"), Num(1)), Field("nosuch"))
	if evalBool(t, e, rec) {
		t.Fatal("and should short-circuit to false")
	}
	// Not.
	if evalBool(t, Not(Bool(true)), rec) {
		t.Fatal("!true must be false")
	}
}

func TestEvalErrors(t *testing.T) {
	rec := probe(0, 0)
	if _, err := Field("nosuch").Eval(rec, GetField); err == nil {
		t.Fatal("missing field should error")
	}
	if _, err := Field("x").Eval(rec, nil); err == nil {
		t.Fatal("nil getter should error")
	}
	if _, err := Eq(Str("a"), Num(1)).Eval(rec, GetField); err == nil {
		t.Fatal("mixed-type comparison should error")
	}
	if _, err := Eq(Field("nosuch"), Num(1)).Eval(rec, GetField); err == nil {
		t.Fatal("cmp should propagate lhs error")
	}
	if _, err := Eq(Num(1), Field("nosuch")).Eval(rec, GetField); err == nil {
		t.Fatal("cmp should propagate rhs error")
	}
}

func TestStringComparison(t *testing.T) {
	rec := telemetry.Record{Data: &telemetry.JobStats{Tenant: "abc"}}
	if !evalBool(t, Eq(Field("tenant"), Str("abc")), rec) {
		t.Fatal("tenant == abc")
	}
	if !evalBool(t, Cmp(LT, Field("tenant"), Str("abd")), rec) {
		t.Fatal("abc < abd")
	}
}

func TestFold(t *testing.T) {
	cases := []struct {
		e, want Expr
	}{
		{Eq(Num(1), Num(1)), Num(1)},
		{Eq(Num(1), Num(2)), Num(0)},
		{And(Bool(true), Field("x")), Field("x")},
		{And(Bool(false), Field("x")), Num(0)},
		{Or(Bool(true), Field("x")), Num(1)},
		{Or(Bool(false), Field("x")), Field("x")},
		{And(Field("x"), Bool(true)), Field("x")},
		{And(Field("x"), Bool(false)), Num(0)},
		{Or(Field("x"), Bool(false)), Field("x")},
		{Or(Field("x"), Bool(true)), Num(1)},
		{Not(Bool(false)), Num(1)},
		{Not(Field("x")), Not(Field("x"))},
		{Eq(Field("x"), Num(1)), Eq(Field("x"), Num(1))},
	}
	for _, c := range cases {
		if got := c.e.Fold(); got.String() != c.want.String() {
			t.Errorf("Fold(%s) = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestFieldsCollection(t *testing.T) {
	e := And(Eq(Field("a"), Num(1)), Or(Gt(Field("b"), Num(2)), Not(Field("c"))))
	fields := e.Fields(nil)
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(fields) != 3 {
		t.Fatalf("fields = %v", fields)
	}
	for _, f := range fields {
		if !want[f] {
			t.Fatalf("unexpected field %q", f)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := And(Eq(Field("errCode"), Num(0)), Not(Gt(Field("rtt"), Num(5000))))
	want := "((errCode == 0) && !(rtt > 5000))"
	if got := e.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := Str("x").String(); got != `"x"` {
		t.Fatalf("str literal = %q", got)
	}
}

func TestGetFieldCoverage(t *testing.T) {
	recs := []struct {
		rec    telemetry.Record
		fields []string
	}{
		{telemetry.NewProbeRecord(&telemetry.PingProbe{}),
			[]string{"errCode", "srcIp", "dstIp", "srcCluster", "dstCluster", "rtt", "timestamp"}},
		{telemetry.Record{Data: &telemetry.ToRProbe{}},
			[]string{"srcToR", "dstToR", "rtt", "timestamp"}},
		{telemetry.NewLogRecord(0, "x"), []string{"raw", "timestamp"}},
		{telemetry.Record{Data: &telemetry.JobStats{}},
			[]string{"tenant", "statName", "stat", "bucket", "timestamp"}},
		{telemetry.NewAggRecord(telemetry.NewAggRow(telemetry.NumKey(1), 0, 5), 0),
			[]string{"count", "sum", "min", "max", "avg", "key"}},
	}
	for _, c := range recs {
		for _, f := range c.fields {
			if _, ok := GetField(c.rec, f); !ok {
				t.Errorf("%T missing field %q", c.rec.Data, f)
			}
		}
		if _, ok := GetField(c.rec, "definitely-not-a-field"); ok {
			t.Errorf("%T resolved a bogus field", c.rec.Data)
		}
		for _, f := range []string{"_time", "_window", "_size"} {
			if _, ok := GetField(c.rec, f); !ok {
				t.Errorf("header field %q missing", f)
			}
		}
	}
}
