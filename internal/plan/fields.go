package plan

import (
	"strings"

	"jarvis/internal/telemetry"
)

// GetField is the default FieldGetter covering the repo's payload types.
// Field names follow the paper's listings (errCode, srcIp, dstIp, rtt,
// raw, tenant, statName, stat, bucket, srcToR, dstToR, count, sum, min,
// max, avg).
func GetField(rec telemetry.Record, name string) (Value, bool) {
	switch p := rec.Data.(type) {
	case *telemetry.PingProbe:
		switch name {
		case "errCode":
			return NumValue(float64(p.ErrCode)), true
		case "srcIp":
			return NumValue(float64(p.SrcIP)), true
		case "dstIp":
			return NumValue(float64(p.DstIP)), true
		case "srcCluster":
			return NumValue(float64(p.SrcCluster)), true
		case "dstCluster":
			return NumValue(float64(p.DstCluster)), true
		case "rtt":
			return NumValue(float64(p.RTTMicros)), true
		case "timestamp":
			return NumValue(float64(p.Timestamp)), true
		}
	case *telemetry.ToRProbe:
		switch name {
		case "srcToR":
			return NumValue(float64(p.SrcToR)), true
		case "dstToR":
			return NumValue(float64(p.DstToR)), true
		case "rtt":
			return NumValue(float64(p.RTTMicros)), true
		case "timestamp":
			return NumValue(float64(p.Timestamp)), true
		}
	case *telemetry.LogLine:
		switch name {
		case "raw":
			return StrValue(p.Raw), true
		case "timestamp":
			return NumValue(float64(p.Timestamp)), true
		}
	case *telemetry.JobStats:
		switch name {
		case "tenant":
			return StrValue(p.Tenant), true
		case "statName":
			return StrValue(p.StatName), true
		case "stat":
			return NumValue(p.Stat), true
		case "bucket":
			return NumValue(float64(p.Bucket)), true
		case "timestamp":
			return NumValue(float64(p.Timestamp)), true
		}
	case *telemetry.AggRow:
		switch name {
		case "count":
			return NumValue(float64(p.Count)), true
		case "sum":
			return NumValue(p.Sum), true
		case "min":
			return NumValue(p.Min), true
		case "max":
			return NumValue(p.Max), true
		case "avg":
			return NumValue(p.Avg()), true
		case "key":
			return StrValue(p.Key.String()), true
		}
	}
	// Generic record header fields.
	switch name {
	case "_time":
		return NumValue(float64(rec.Time)), true
	case "_window":
		return NumValue(float64(rec.Window)), true
	case "_size":
		return NumValue(float64(rec.WireSize)), true
	}
	return Value{}, false
}

// ContainsAny reports whether the lowercase form of s contains any of the
// patterns; the LogAnalytics filter uses it (Listing 3's
// patterns.anyMatch). Exposed so the experiments and examples share one
// implementation with the compiled query.
func ContainsAny(s string, patterns []string) bool {
	for _, p := range patterns {
		if strings.Contains(s, p) {
			return true
		}
	}
	return false
}
