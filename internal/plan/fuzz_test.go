package plan

import (
	"bytes"
	"testing"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// fuzzToRTable is a small deterministic IP→ToR table whose coverage
// guarantees the fuzzer can reach every probe outcome: source hit/miss
// and destination hit/miss.
func fuzzToRTable() *telemetry.ToRTable {
	ips := make([]uint32, 0, 64)
	for i := uint32(0); i < 64; i++ {
		ips = append(ips, 0x0A000000+i, 0x0B000000+i)
	}
	return telemetry.NewToRTable(ips, 8)
}

// FuzzColumnarJoinDifferential differentially fuzzes the T2TProbe join
// pair: for any decodable columnar payload, probing the SoA sections
// through the fused kernel pair must produce exactly the records the
// row-path probes produce (identical v1 encodings), including the
// drop-at-the-second-join semantics for destination misses.
func FuzzColumnarJoinDifferential(f *testing.F) {
	seed := func(batch telemetry.Batch) {
		var buf bytes.Buffer
		fw := wire.NewFrameWriter(&buf)
		fw.SetColumnar(true)
		if err := fw.WriteFrame(wire.Frame{StreamID: 1, Records: batch}); err != nil {
			f.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[16:]) // strip 4B length + 12B frame header
	}
	// Seeds cover all four probe outcomes plus a non-ping section the
	// kernels must decline.
	var probes telemetry.Batch
	for i, pair := range [][2]uint32{
		{0x0A000000, 0x0B000001}, // src hit, dst hit
		{0x0A000001, 0x0C000000}, // src hit, dst miss
		{0x0C000000, 0x0B000000}, // src miss, dst hit
		{0x0C000001, 0x0C000002}, // src miss, dst miss
	} {
		probes = append(probes, telemetry.Record{
			Time: int64(i), WireSize: telemetry.PingProbeWireSize,
			Data: &telemetry.PingProbe{Timestamp: int64(i), SrcIP: pair[0], DstIP: pair[1], RTTMicros: 100 + uint32(i)},
		})
	}
	seed(probes)
	g := workload.NewLogGen(workload.DefaultLogConfig(3))
	seed(append(probes[:2:2], g.Next(2)...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		table := fuzzToRTable()
		var cb wire.ColumnarBatch
		if err := wire.NewColumnarDecoder().DecodeColumnar(data, &cb); err != nil {
			return // corrupt input is fine, panics are not
		}

		// Row reference: materialize and probe record at a time.
		var rows telemetry.Batch
		cb.AppendRows(&rows)
		j1r := operator.NewSrcToRJoin("src", table)
		j2r := operator.NewDstToRJoin("dst", table)
		var want telemetry.Batch
		for i := range rows {
			j1r.Process(rows[i], func(mid telemetry.Record) {
				j2r.Process(mid, func(out telemetry.Record) { want = append(want, out) })
			})
		}

		// SoA path: the fused kernel pair over the same sections.
		j1c := operator.NewSrcToRJoin("src", table)
		j1c.SetColumnarKernel(srcToRFusedKernel(table))
		j2c := operator.NewDstToRJoin("dst", table)
		j2c.SetColumnarKernel(torPassKernel)
		j1c.ProcessColumnar(&cb)
		j2c.ProcessColumnar(&cb)
		var got telemetry.Batch
		cb.AppendRows(&got)

		if len(got) != len(want) {
			t.Fatalf("output counts differ: columnar %d, row %d", len(got), len(want))
		}
		var a, b []byte
		var err error
		for i := range want {
			if want[i].WireSize != got[i].WireSize {
				t.Fatalf("record %d wire size: row %d vs columnar %d", i, want[i].WireSize, got[i].WireSize)
			}
			if a, err = wire.EncodeRecord(a, want[i]); err != nil {
				t.Fatalf("row output does not encode: %v", err)
			}
			if b, err = wire.EncodeRecord(b, got[i]); err != nil {
				t.Fatalf("columnar output does not encode: %v", err)
			}
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("join outputs differ:\n%x\n%x", a, b)
		}
	})
}
