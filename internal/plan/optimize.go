package plan

import (
	"fmt"

	"jarvis/internal/operator"
)

// Optimize applies the logical optimizations of §IV-B — constant folding
// on filter predicates and predicate pushdown — returning a rewritten
// copy. Rewrites are semantics-preserving:
//
//   - constant folding: filter predicates with constant subtrees are
//     simplified; a filter folded to constant-true is removed, and a
//     filter folded to constant-false short-circuits the query (kept, as
//     the degenerate drop-all filter).
//   - predicate pushdown: a Filter is moved before an adjacent upstream
//     Map when the Map declares (via PreservesFields) that every field
//     the predicate reads passes through it unmodified. Earlier filtering
//     reduces the data the Map must touch.
func Optimize(q *Query) (*Query, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := q.Clone()

	// Constant folding.
	ops := out.Ops[:0]
	for _, op := range out.Ops {
		if op.Kind == operator.KindFilter && op.Pred != nil {
			op.Pred = op.Pred.Fold()
			if c, ok := op.Pred.(constExpr); ok && c.v.Truthy() {
				continue // always-true filter: drop the operator
			}
		}
		ops = append(ops, op)
	}
	out.Ops = ops
	if len(out.Ops) == 0 {
		return nil, fmt.Errorf("plan: optimization removed every operator from %q", q.Name)
	}

	// Predicate pushdown to fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 1; i < len(out.Ops); i++ {
			f := out.Ops[i]
			m := out.Ops[i-1]
			if f.Kind != operator.KindFilter || f.Pred == nil {
				continue
			}
			if m.Kind != operator.KindMap {
				continue
			}
			if !fieldsPreserved(f.Pred, m.PreservesFields) {
				continue
			}
			out.Ops[i-1], out.Ops[i] = f, m
			changed = true
		}
	}
	return out, nil
}

func fieldsPreserved(pred Expr, preserved []string) bool {
	fields := pred.Fields(nil)
	if len(fields) == 0 {
		return true
	}
	set := make(map[string]bool, len(preserved))
	for _, p := range preserved {
		set[p] = true
	}
	for _, f := range fields {
		if !set[f] {
			return false
		}
	}
	return true
}

// Rules configures the operator-eligibility rules R-1..R-4 (§IV-B).
// R-1..R-3 apply everywhere; R-4 applies only on data sources, where
// intra-operator parallelism is pointless under a constrained budget.
type Rules struct {
	// ApplyR4 excludes operators with Parallelism > 1 (set on data
	// sources, unset on intermediate stream processors).
	ApplyR4 bool
}

// SourceRules is the rule set for data source nodes.
func SourceRules() Rules { return Rules{ApplyR4: true} }

// SPRules is the rule set for intermediate stream processors.
func SPRules() Rules { return Rules{ApplyR4: false} }

// EligiblePrefix returns the number of leading operators deployable on a
// node under the rule set: the first ineligible operator caps the prefix
// (everything after it must run upstream toward the root).
func EligiblePrefix(q *Query, r Rules) int {
	for i, op := range q.Ops {
		if !eligible(op, r) {
			return i
		}
	}
	return len(q.Ops)
}

// IneligibleReason explains why operator i cannot run on the node, or ""
// if it can.
func IneligibleReason(op OpSpec, r Rules) string {
	switch {
	case op.Kind == operator.KindGroupAgg && !op.IncrementalAgg:
		return "R-1: aggregation is not incrementally updatable"
	case op.CrossSourceState:
		return "R-2: requires state aggregated across data sources"
	case op.StreamJoin:
		return "R-3: stateful stream-stream join"
	case r.ApplyR4 && op.Parallelism > 1:
		return "R-4: multiple physical operators per logical operator"
	}
	return ""
}

func eligible(op OpSpec, r Rules) bool { return IneligibleReason(op, r) == "" }

// Explain renders a human-readable plan summary with the eligible
// boundary, used by cmd tools and examples.
func Explain(q *Query, r Rules) string {
	prefix := EligiblePrefix(q, r)
	s := fmt.Sprintf("query %s (boundary cap: %d/%d operators on source)\n", q.Name, prefix, len(q.Ops))
	for i, op := range q.Ops {
		place := "source-eligible"
		if i >= prefix {
			place = "stream processor only"
		}
		detail := ""
		if op.Pred != nil {
			detail = " pred=" + op.Pred.String()
		}
		if reason := IneligibleReason(op, r); reason != "" {
			detail += " [" + reason + "]"
		}
		s += fmt.Sprintf("  %2d. %-18s cost=%5.2f%% relay=%.2f  %s%s\n",
			i, op.String(), op.CostPct, op.RelayBytes, place, detail)
	}
	return s
}
