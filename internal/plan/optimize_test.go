package plan

import (
	"strings"
	"testing"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
)

func TestOptimizeConstantFoldRemovesTrueFilter(t *testing.T) {
	q := NewQuery("fold").
		Window(10_000_000_000, 1).
		FilterExpr("always", Or(Bool(true), Field("errCode")), 1, 1).
		FilterExpr("real", Eq(Field("errCode"), Num(0)), 1, 0.86)
	opt, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ops) != 2 {
		t.Fatalf("ops after fold = %d, want 2 (true filter removed)", len(opt.Ops))
	}
	if opt.Ops[1].Name != "real" {
		t.Fatalf("remaining filter = %q", opt.Ops[1].Name)
	}
}

func TestOptimizeKeepsFalseFilter(t *testing.T) {
	q := NewQuery("false").
		FilterExpr("never", And(Bool(false), Field("x")), 1, 0)
	opt, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ops) != 1 {
		t.Fatal("false filter must be kept (drop-all semantics)")
	}
}

func TestOptimizePushdown(t *testing.T) {
	// Map preserves errCode; the filter on errCode should move before it.
	q := NewQuery("push").
		Map("annotate", func(rec telemetry.Record, emit operator.Emit) { emit(rec) },
			[]string{"errCode"}, 5, 1).
		FilterExpr("errFilter", Eq(Field("errCode"), Num(0)), 1, 0.86)
	opt, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Ops[0].Kind != operator.KindFilter || opt.Ops[1].Kind != operator.KindMap {
		t.Fatalf("pushdown did not happen: %v, %v", opt.Ops[0], opt.Ops[1])
	}
}

func TestOptimizeNoPushdownWhenFieldNotPreserved(t *testing.T) {
	q := NewQuery("nopush").
		Map("rewrite", func(rec telemetry.Record, emit operator.Emit) { emit(rec) },
			[]string{"rtt"}, 5, 1).
		FilterExpr("errFilter", Eq(Field("errCode"), Num(0)), 1, 0.86)
	opt, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Ops[0].Kind != operator.KindMap {
		t.Fatal("filter must not move past a map that rewrites its field")
	}
}

func TestOptimizePushdownChain(t *testing.T) {
	// Filter should bubble past two preserving maps to the front.
	emitSame := func(rec telemetry.Record, emit operator.Emit) { emit(rec) }
	q := NewQuery("chain").
		Map("m1", emitSame, []string{"errCode"}, 1, 1).
		Map("m2", emitSame, []string{"errCode"}, 1, 1).
		FilterExpr("f", Eq(Field("errCode"), Num(0)), 1, 0.86)
	opt, err := Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Ops[0].Kind != operator.KindFilter {
		t.Fatalf("filter should reach the front: %v", opt.Ops)
	}
}

func TestOptimizeErrorsOnEmpty(t *testing.T) {
	q := NewQuery("onlytrue").FilterExpr("t", Bool(true), 1, 1)
	if _, err := Optimize(q); err == nil {
		t.Fatal("optimizing away every operator must error")
	}
	if _, err := Optimize(NewQuery("empty")); err == nil {
		t.Fatal("invalid query must error")
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	q := NewQuery("immut").
		Map("m", func(rec telemetry.Record, emit operator.Emit) { emit(rec) },
			[]string{"errCode"}, 1, 1).
		FilterExpr("f", Eq(Field("errCode"), Num(0)), 1, 0.86)
	if _, err := Optimize(q); err != nil {
		t.Fatal(err)
	}
	if q.Ops[0].Kind != operator.KindMap {
		t.Fatal("Optimize mutated its input")
	}
}

func TestEligiblePrefixRules(t *testing.T) {
	// R-1: non-incremental aggregation.
	q := S2SProbe()
	q.Ops[2].IncrementalAgg = false
	if got := EligiblePrefix(q, SourceRules()); got != 2 {
		t.Fatalf("R-1 prefix = %d, want 2", got)
	}
	q.Ops[2].IncrementalAgg = true
	if got := EligiblePrefix(q, SourceRules()); got != 3 {
		t.Fatalf("prefix = %d, want 3", got)
	}

	// R-2: cross-source state.
	q2 := S2SProbe()
	q2.Ops[1].CrossSourceState = true
	if got := EligiblePrefix(q2, SourceRules()); got != 1 {
		t.Fatalf("R-2 prefix = %d, want 1", got)
	}

	// R-3: stream join.
	q3 := S2SProbe()
	q3.Ops[1].StreamJoin = true
	if got := EligiblePrefix(q3, SPRules()); got != 1 {
		t.Fatalf("R-3 prefix = %d (applies to SPs too)", got)
	}

	// R-4: parallel operators, data source only.
	q4 := S2SProbe()
	q4.Ops[2].Parallelism = 4
	if got := EligiblePrefix(q4, SourceRules()); got != 2 {
		t.Fatalf("R-4 source prefix = %d, want 2", got)
	}
	if got := EligiblePrefix(q4, SPRules()); got != 3 {
		t.Fatalf("R-4 must not apply on SP: %d", got)
	}
}

func TestIneligibleReasonText(t *testing.T) {
	op := OpSpec{Kind: operator.KindGroupAgg}
	if r := IneligibleReason(op, SourceRules()); !strings.Contains(r, "R-1") {
		t.Fatalf("reason = %q", r)
	}
	op = OpSpec{CrossSourceState: true}
	if r := IneligibleReason(op, SourceRules()); !strings.Contains(r, "R-2") {
		t.Fatalf("reason = %q", r)
	}
	op = OpSpec{StreamJoin: true}
	if r := IneligibleReason(op, SourceRules()); !strings.Contains(r, "R-3") {
		t.Fatalf("reason = %q", r)
	}
	op = OpSpec{Parallelism: 2}
	if r := IneligibleReason(op, SourceRules()); !strings.Contains(r, "R-4") {
		t.Fatalf("reason = %q", r)
	}
	if r := IneligibleReason(OpSpec{Parallelism: 1, IncrementalAgg: true, Kind: operator.KindGroupAgg}, SourceRules()); r != "" {
		t.Fatalf("eligible op got reason %q", r)
	}
}

func TestExplainRenders(t *testing.T) {
	s := Explain(S2SProbe(), SourceRules())
	for _, want := range []string{"S2SProbe", "W(win0)", "F(errFilter)", "G+R(latAgg)", "source-eligible"} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain missing %q:\n%s", want, s)
		}
	}
}
