package plan

import (
	"fmt"
	"time"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
)

// OpSpec is one logical operator in a query: enough information to
// instantiate the physical operator, apply optimizer rewrites, check the
// source-eligibility rules and seed the cost model.
type OpSpec struct {
	Name string
	Kind operator.Kind

	// WindowDur is the tumbling window length (KindWindow), microseconds.
	WindowDur int64

	// Pred is an optimizable filter predicate; PredFn an opaque one.
	// Exactly one is set for KindFilter.
	Pred   Expr
	PredFn func(telemetry.Record) bool

	// MapFn implements KindMap. PreservesFields lists fields the map is
	// guaranteed not to alter, enabling predicate pushdown through it.
	MapFn           func(telemetry.Record, operator.Emit)
	PreservesFields []string

	// JoinFn implements KindJoin; TableSize is the static table's entry
	// count (drives the join's hash-probe cost).
	JoinFn    func(telemetry.Record) (telemetry.Record, bool)
	TableSize int

	// KeyFn/ValFn implement KindGroupAgg.
	KeyFn func(telemetry.Record) telemetry.GroupKey
	ValFn func(telemetry.Record) float64
	// IncrementalAgg marks the aggregation as incrementally updatable
	// (rule R-1); exact quantiles would set it false.
	IncrementalAgg bool
	// Quantile, when non-nil, makes the grouping aggregate an
	// approximate-quantile sketch instead of count/sum/min/max — the
	// mergeable alternative rule R-1 admits for percentile queries.
	Quantile *QuantileSpec

	// CrossSourceState marks operators that need state merged across data
	// sources before they run (rule R-2).
	CrossSourceState bool
	// StreamJoin marks stateful stream-stream joins (rule R-3).
	StreamJoin bool
	// Parallelism is the number of physical instances per logical
	// operator (rule R-4 keeps >1 off data sources).
	Parallelism int

	// ColPred is an optional hand-written columnar predicate for opaque
	// filters (expression filters compile theirs automatically); ColMap
	// an optional SoA kernel for maps; ColJoin an optional SoA hash-probe
	// kernel for joins; ColAgg the SoA aggregation loop matching a
	// GroupAgg's (or GroupQuantile's) KeyFn/ValFn. All four feed the
	// columnar execution path and must be observably equivalent to the
	// row-at-a-time functions they accelerate.
	ColPred operator.ColumnarPred
	ColMap  operator.ColumnarMapKernel
	ColJoin operator.ColumnarJoinKernel
	ColAgg  operator.AggKernel

	// CostPct is the calibrated CPU cost (percent of one reference core)
	// this operator consumes when the whole query processes its full
	// input at the reference rate — i.e. the operator's actual share
	// with upstream relay reduction already applied, so query demand is
	// ΣCostPct. The simulator treats it as ground truth; the live engine
	// charges proportional token costs; Jarvis' profiler estimates it
	// online.
	CostPct float64
	// RelayBytes is the operator's output/input ratio in bytes when it
	// processes its full input (the paper's relay ratio r).
	RelayBytes float64
}

func (s OpSpec) String() string { return fmt.Sprintf("%s(%s)", s.Kind, s.Name) }

// Query is a declarative monitoring query: an ordered operator pipeline
// (after rules R-1..R-4 restrict source placement, the paper's scope is
// operator chains; see §IV-B).
type Query struct {
	Name string
	Ops  []OpSpec
	// RefRateMbps is the input rate the CostPct hints were calibrated at.
	RefRateMbps float64
	// RecordBytes is the nominal input record size.
	RecordBytes int
}

// NewQuery starts a query builder.
func NewQuery(name string) *Query { return &Query{Name: name} }

// WithRefRate records the calibration rate for the cost hints.
func (q *Query) WithRefRate(mbps float64, recordBytes int) *Query {
	q.RefRateMbps = mbps
	q.RecordBytes = recordBytes
	return q
}

// Window appends a tumbling-window operator.
func (q *Query) Window(d time.Duration, costPct float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: fmt.Sprintf("win%d", len(q.Ops)), Kind: operator.KindWindow,
		WindowDur: d.Microseconds(), CostPct: costPct, RelayBytes: 1, Parallelism: 1,
	})
	return q
}

// FilterExpr appends an optimizer-visible filter.
func (q *Query) FilterExpr(name string, pred Expr, costPct, relay float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: name, Kind: operator.KindFilter, Pred: pred,
		CostPct: costPct, RelayBytes: relay, Parallelism: 1,
	})
	return q
}

// FilterFunc appends an opaque filter (no pushdown through or past it).
func (q *Query) FilterFunc(name string, pred func(telemetry.Record) bool, costPct, relay float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: name, Kind: operator.KindFilter, PredFn: pred,
		CostPct: costPct, RelayBytes: relay, Parallelism: 1,
	})
	return q
}

// Map appends a transformation. preserves lists fields left intact.
func (q *Query) Map(name string, fn func(telemetry.Record, operator.Emit), preserves []string, costPct, relay float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: name, Kind: operator.KindMap, MapFn: fn,
		PreservesFields: preserves, CostPct: costPct, RelayBytes: relay, Parallelism: 1,
	})
	return q
}

// Join appends a static-table join.
func (q *Query) Join(name string, tableSize int, fn func(telemetry.Record) (telemetry.Record, bool), costPct, relay float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: name, Kind: operator.KindJoin, JoinFn: fn, TableSize: tableSize,
		CostPct: costPct, RelayBytes: relay, Parallelism: 1,
	})
	return q
}

// GroupAgg appends a grouping/aggregation with incrementally updatable
// aggregates.
func (q *Query) GroupAgg(name string, keyFn func(telemetry.Record) telemetry.GroupKey,
	valFn func(telemetry.Record) float64, costPct, relay float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: name, Kind: operator.KindGroupAgg, KeyFn: keyFn, ValFn: valFn,
		IncrementalAgg: true, CostPct: costPct, RelayBytes: relay, Parallelism: 1,
	})
	return q
}

// WithColumnarPred installs a hand-written columnar predicate on the
// most recently appended (opaque) filter.
func (q *Query) WithColumnarPred(p operator.ColumnarPred) *Query {
	q.Ops[len(q.Ops)-1].ColPred = p
	return q
}

// WithMapKernel installs a columnar transformation on the most recently
// appended map.
func (q *Query) WithMapKernel(k operator.ColumnarMapKernel) *Query {
	q.Ops[len(q.Ops)-1].ColMap = k
	return q
}

// WithJoinKernel installs a columnar hash-probe kernel on the most
// recently appended join.
func (q *Query) WithJoinKernel(k operator.ColumnarJoinKernel) *Query {
	q.Ops[len(q.Ops)-1].ColJoin = k
	return q
}

// WithAggKernel installs the columnar aggregation loop matching the most
// recently appended GroupAgg's (or GroupQuantile's) key/value
// extractors.
func (q *Query) WithAggKernel(k operator.AggKernel) *Query {
	q.Ops[len(q.Ops)-1].ColAgg = k
	return q
}

// QuantileSpec configures an approximate-quantile aggregation: an
// equi-width histogram sketch over [Lo, Hi) with Buckets cells (quantile
// error ≤ one bucket width).
type QuantileSpec struct {
	Lo, Hi  float64
	Buckets int
}

// GroupQuantile appends a grouping that aggregates approximate quantiles
// (rule R-1's mergeable class; the exact-quantile variant would be
// ineligible for data sources).
func (q *Query) GroupQuantile(name string, keyFn func(telemetry.Record) telemetry.GroupKey,
	valFn func(telemetry.Record) float64, spec QuantileSpec, costPct, relay float64) *Query {
	q.Ops = append(q.Ops, OpSpec{
		Name: name, Kind: operator.KindGroupAgg, KeyFn: keyFn, ValFn: valFn,
		IncrementalAgg: true, Quantile: &spec,
		CostPct: costPct, RelayBytes: relay, Parallelism: 1,
	})
	return q
}

// Validate checks structural invariants: a window before any grouping,
// exactly one predicate form per filter, positive costs.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("plan: query has no name")
	}
	if len(q.Ops) == 0 {
		return fmt.Errorf("plan: query %q has no operators", q.Name)
	}
	haveWindow := false
	var windowDur int64
	for i, op := range q.Ops {
		switch op.Kind {
		case operator.KindWindow:
			if op.WindowDur <= 0 {
				return fmt.Errorf("plan: %s has non-positive window", op)
			}
			haveWindow = true
			windowDur = op.WindowDur
		case operator.KindFilter:
			if (op.Pred == nil) == (op.PredFn == nil) {
				return fmt.Errorf("plan: %s needs exactly one of Pred/PredFn", op)
			}
		case operator.KindMap:
			if op.MapFn == nil {
				return fmt.Errorf("plan: %s has no MapFn", op)
			}
		case operator.KindJoin:
			if op.JoinFn == nil {
				return fmt.Errorf("plan: %s has no JoinFn", op)
			}
		case operator.KindGroupAgg:
			if op.KeyFn == nil || op.ValFn == nil {
				return fmt.Errorf("plan: %s needs KeyFn and ValFn", op)
			}
			if !haveWindow {
				return fmt.Errorf("plan: %s appears before any Window", op)
			}
		}
		if op.CostPct < 0 || op.RelayBytes < 0 || op.RelayBytes > 1.0001 {
			return fmt.Errorf("plan: op %d (%s) has bad cost/relay hints", i, op)
		}
	}
	_ = windowDur
	return nil
}

// WindowDur returns the query's window duration in microseconds (0 if the
// query has no window operator).
func (q *Query) WindowDur() int64 {
	for _, op := range q.Ops {
		if op.Kind == operator.KindWindow {
			return op.WindowDur
		}
	}
	return 0
}

// Clone deep-copies the query's spec slice (closures are shared).
func (q *Query) Clone() *Query {
	out := *q
	out.Ops = make([]OpSpec, len(q.Ops))
	copy(out.Ops, q.Ops)
	return &out
}

// Instantiate builds fresh physical operators for the whole pipeline.
// Each call returns independent operator state, so the same query can be
// instantiated on a data source and replicated on the stream processor.
func (q *Query) Instantiate() ([]operator.Operator, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	windowDur := q.WindowDur()
	ops := make([]operator.Operator, 0, len(q.Ops))
	for _, spec := range q.Ops {
		switch spec.Kind {
		case operator.KindWindow:
			ops = append(ops, operator.NewWindow(spec.Name, spec.WindowDur))
		case operator.KindFilter:
			pred := spec.PredFn
			colPred := spec.ColPred
			if pred == nil {
				expr := spec.Pred
				pred = func(rec telemetry.Record) bool {
					v, err := expr.Eval(rec, GetField)
					return err == nil && v.Truthy()
				}
				if colPred == nil {
					colPred = compileColumnarPred(expr)
				}
			}
			f := operator.NewFilter(spec.Name, pred)
			if colPred != nil {
				f.SetColumnarPred(colPred)
			}
			ops = append(ops, f)
		case operator.KindMap:
			m := operator.NewMap(spec.Name, spec.MapFn)
			if spec.ColMap != nil {
				m.SetColumnarKernel(spec.ColMap)
			}
			ops = append(ops, m)
		case operator.KindJoin:
			j := operator.NewJoin(spec.Name, spec.TableSize, spec.JoinFn)
			if spec.ColJoin != nil {
				j.SetColumnarKernel(spec.ColJoin)
			}
			ops = append(ops, j)
		case operator.KindGroupAgg:
			dur := windowDur
			if dur == 0 {
				dur = 10 * int64(time.Second/time.Microsecond)
			}
			if qs := spec.Quantile; qs != nil {
				gq := operator.NewGroupQuantile(spec.Name, dur,
					spec.KeyFn, spec.ValFn, qs.Lo, qs.Hi, qs.Buckets)
				gq.SetAggKernel(spec.ColAgg)
				ops = append(ops, gq)
			} else {
				g := operator.NewGroupAgg(spec.Name, dur, spec.KeyFn, spec.ValFn)
				g.SetAggKernel(spec.ColAgg)
				ops = append(ops, g)
			}
		default:
			return nil, fmt.Errorf("plan: unknown kind %v", spec.Kind)
		}
	}
	return ops, nil
}
