package plan

import (
	"math"
	"strings"
	"testing"
	"time"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func TestS2SProbeStructure(t *testing.T) {
	q := S2SProbe()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := []operator.Kind{operator.KindWindow, operator.KindFilter, operator.KindGroupAgg}
	if len(q.Ops) != len(kinds) {
		t.Fatalf("ops = %d", len(q.Ops))
	}
	for i, k := range kinds {
		if q.Ops[i].Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, q.Ops[i].Kind, k)
		}
	}
	// Calibration: whole query ≈ 85% of a core (paper §VI-B).
	if tot := TotalCostPct(q); math.Abs(tot-85.0) > 1.0 {
		t.Fatalf("S2SProbe total cost = %v%%, want ≈85%%", tot)
	}
	if q.WindowDur() != (10 * time.Second).Microseconds() {
		t.Fatalf("window = %d", q.WindowDur())
	}
}

func TestT2TProbeCalibration(t *testing.T) {
	ips := make([]uint32, 500)
	for i := range ips {
		ips[i] = uint32(i + 1)
	}
	q := T2TProbe(telemetry.NewToRTable(ips, 20))
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 500: demand exceeds one core; Best-OP cannot even place the
	// first join (W+F+J1 > 100%).
	if tot := TotalCostPct(q); tot <= 100 {
		t.Fatalf("T2T total = %v%%, want > 100%%", tot)
	}
	if pc := PrefixCostPct(q, 3); pc <= 100 {
		t.Fatalf("W+F+J1 = %v%%, want > 100%% (Best-OP must not place J)", pc)
	}

	// Table 50: whole query fits in one core (Fig. 8(b)).
	small := make([]uint32, 50)
	for i := range small {
		small[i] = uint32(i + 1)
	}
	q50 := T2TProbe(telemetry.NewToRTable(small, 5))
	if tot := TotalCostPct(q50); tot > 100 {
		t.Fatalf("T2T(50) total = %v%%, want ≤ 100%%", tot)
	}
}

func TestJoinCostMonotone(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 10, 50, 100, 500, 5000} {
		c := JoinCostPct(n)
		if c < prev {
			t.Fatalf("join cost not monotone at %d: %v < %v", n, c, prev)
		}
		prev = c
	}
	if JoinCostPct(0) != JoinCostPct(1) {
		t.Fatal("table size < 1 should clamp")
	}
}

func TestLogAnalyticsEndToEnd(t *testing.T) {
	q := LogAnalytics()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if tot := TotalCostPct(q); math.Abs(tot-31.0) > 3.0 {
		t.Fatalf("LogAnalytics total = %v%%, want ≈31%%", tot)
	}
	ops, err := q.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	// Push a generated window through the physical pipeline.
	gen := workload.NewLogGen(workload.DefaultLogConfig(3))
	batch := gen.NextWindow(10_000_000)
	recs := batch
	for _, op := range ops {
		var next telemetry.Batch
		for _, r := range recs {
			op.Process(r, func(out telemetry.Record) { next = append(next, out) })
		}
		recs = next
	}
	// Nothing emitted until flush; then histogram rows appear.
	if len(recs) != 0 {
		t.Fatalf("pre-flush emissions: %d", len(recs))
	}
	var rows telemetry.Batch
	ops[len(ops)-1].Flush(10_000_000, func(r telemetry.Record) { rows = append(rows, r) })
	if len(rows) == 0 {
		t.Fatal("no histogram rows after flush")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		row := r.Data.(*telemetry.AggRow)
		if row.Count <= 0 {
			t.Fatalf("bad count in %+v", row)
		}
		parts := strings.Split(row.Key.Str, "|")
		if len(parts) != 3 {
			t.Fatalf("bad key %q", row.Key.Str)
		}
		seen[parts[1]] = true
	}
	for _, stat := range []string{"job running time", "cpu util", "memory util"} {
		if !seen[stat] {
			t.Fatalf("no rows for stat %q", stat)
		}
	}
}

func TestS2SProbePipelineProcessing(t *testing.T) {
	q := S2SProbe()
	ops, err := q.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	batch := gen.NextWindow(10_000_000)
	recs := telemetry.Batch(batch)
	for _, op := range ops {
		var next telemetry.Batch
		for _, r := range recs {
			op.Process(r, func(out telemetry.Record) { next = append(next, out) })
		}
		recs = next
	}
	var rows telemetry.Batch
	ops[2].Flush(10_000_000, func(r telemetry.Record) { rows = append(rows, r) })
	if len(rows) == 0 {
		t.Fatal("no aggregate rows")
	}
	// Filter keeps ≈86%: check aggregate counts sum to the kept records.
	kept := 0
	for _, r := range batch {
		if r.Data.(*telemetry.PingProbe).OK() {
			kept++
		}
	}
	var total int64
	for _, r := range rows {
		total += r.Data.(*telemetry.AggRow).Count
	}
	if int(total) != kept {
		t.Fatalf("aggregated %d records, kept %d", total, kept)
	}
}

func TestValidateFailures(t *testing.T) {
	bad := []*Query{
		NewQuery(""),
		NewQuery("empty"),
		{Name: "badwin", Ops: []OpSpec{{Name: "w", Kind: operator.KindWindow}}},
		{Name: "badfilter", Ops: []OpSpec{{Name: "f", Kind: operator.KindFilter}}},
		{Name: "badmap", Ops: []OpSpec{{Name: "m", Kind: operator.KindMap}}},
		{Name: "badjoin", Ops: []OpSpec{{Name: "j", Kind: operator.KindJoin}}},
		{Name: "badagg", Ops: []OpSpec{{Name: "g", Kind: operator.KindGroupAgg}}},
		// GroupAgg without a preceding window.
		{Name: "nowin", Ops: []OpSpec{{
			Name: "g", Kind: operator.KindGroupAgg,
			KeyFn: operator.ProbePairKey, ValFn: operator.ProbeRTT,
		}}},
		// Bad hints.
		{Name: "badhint", Ops: []OpSpec{{
			Name: "w", Kind: operator.KindWindow, WindowDur: 1, RelayBytes: 2,
		}}},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("query %q should fail validation", q.Name)
		}
	}
	// Double-predicate filter.
	q := NewQuery("dual").FilterExpr("f", Bool(true), 1, 1)
	q.Ops[0].PredFn = func(telemetry.Record) bool { return true }
	if err := q.Validate(); err == nil {
		t.Error("filter with both predicate forms should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := S2SProbe()
	c := q.Clone()
	c.Ops[0].CostPct = 999
	if q.Ops[0].CostPct == 999 {
		t.Fatal("clone shares Ops slice")
	}
}

func TestPrefixHelpers(t *testing.T) {
	q := S2SProbe()
	if got := PrefixCostPct(q, 0); got != 0 {
		t.Fatalf("prefix 0 cost = %v", got)
	}
	if got := PrefixCostPct(q, 2); math.Abs(got-14.0) > 0.01 {
		t.Fatalf("W+F cost = %v, want 14", got)
	}
	if got := PrefixRelay(q, 2); math.Abs(got-0.86) > 1e-9 {
		t.Fatalf("relay after W+F = %v", got)
	}
	if got := PrefixRelay(q, 3); math.Abs(got-0.86*0.30) > 1e-9 {
		t.Fatalf("relay after G+R = %v", got)
	}
	// n beyond len clamps.
	if PrefixCostPct(q, 99) != TotalCostPct(q) {
		t.Fatal("prefix beyond length should equal total")
	}
}
