package plan

import (
	"math"
	"strings"
	"time"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// This file defines the paper's three evaluation queries (Listings 1–3)
// with cost/relay hints calibrated from the numbers the paper states:
//
//   - S2SProbe: F costs 13% of a core at the 10×-scaled rate and keeps
//     86% of records; the whole query needs ≈85% (§VI-B); G+R's output is
//     ≈30% of its input bytes (Fig. 3).
//   - T2TProbe: compute demand exceeds one core at table size 500 and
//     Best-OP cannot place J even at 100% CPU, while the query fits in
//     one core at table size 50 (Fig. 8(b)); the join cost grows with the
//     log of the static-table size (hash-probe model).
//   - LogAnalytics: the query uses 31% of a core at 49.6 Mbps (§VI-B).

// S2SProbe builds the server-to-server latency query of Listing 1.
func S2SProbe() *Query {
	return NewQuery("S2SProbe").
		WithRefRate(workload.PingmeshMbps10x, telemetry.PingProbeWireSize).
		Window(10*time.Second, 1.0).
		FilterExpr("errFilter", Eq(Field("errCode"), Num(0)), 13.0, 0.86).
		GroupAgg("latAgg", operator.ProbePairKey, operator.ProbeRTT, 71.0, 0.30).
		WithAggKernel(operator.AggKernelPingPairRTT)
}

// JoinCostPct models the per-join CPU cost (percent of a core on the
// join's full input at the reference rate) as a function of static-table
// size: a hash probe whose cost grows with table size due to cache
// behaviour. Calibrated so a table of 50 fits the whole T2TProbe in one
// core while a table of 500 makes J unplaceable by operator-level
// partitioning (paper §VI-B, §VI-C).
func JoinCostPct(tableSize int) float64 {
	if tableSize < 1 {
		tableSize = 1
	}
	c := 39.0 + 16.0*math.Log2(float64(tableSize)/50.0)
	if c < 5 {
		c = 5
	}
	return c
}

// T2TProbe builds the ToR-to-ToR latency query of Listing 2 against the
// given IP→ToR table.
func T2TProbe(table *telemetry.ToRTable) *Query {
	j1 := operator.NewSrcToRJoin("srcToR", table)
	j2 := operator.NewDstToRJoin("dstToR", table)
	jc := JoinCostPct(table.Len())
	return NewQuery("T2TProbe").
		WithRefRate(workload.PingmeshMbps10x, telemetry.PingProbeWireSize).
		Window(10*time.Second, 1.0).
		FilterExpr("errFilter", Eq(Field("errCode"), Num(0)), 13.0, 0.86).
		Join("srcToR", table.Len(), joinFn(j1), jc, 1.0).
		WithJoinKernel(srcToRFusedKernel(table)).
		Join("dstToR", table.Len(), joinFn(j2), jc,
			float64(telemetry.ToRProbeWireSize)/float64(telemetry.PingProbeWireSize)).
		WithJoinKernel(torPassKernel).
		GroupAgg("torAgg", operator.ToRPairKey, operator.ToRRTT, 6.6, 0.05).
		WithAggKernel(operator.AggKernelToRPairRTT)
}

// The T2TProbe SoA join kernels are designed as a pair. The row path
// splits the work across two operators via an intermediate record
// (PingProbe + source ToR) that has no columnar layout and no wire
// encoding; the SoA path instead fuses both hash probes into the first
// join's kernel, emitting projected ToR sections, and the second join's
// kernel only filters them. So the record flow between the joins stays
// identical to the row path — and with it the proxy stats the runtime
// adapts on — rows whose destination IP missed the table are emitted
// with a sentinel DstToR and dropped by the second kernel, exactly
// where the row path's dstToR probe drops them. The one observable
// difference is byte accounting between the joins: the SoA rows weigh
// the projected ToR layout, the row path the unprojected intermediate.
// That stage's records cannot ship either way (the intermediate is not
// wire-encodable), so nothing downstream sees it. Sections that are not
// ping columns (materialized fallbacks, replayed drains) decline to the
// row probe, which handles the intermediate type as usual.

// torMissDstToR marks a fused-probe row whose destination IP missed the
// table; torPassKernel filters it. Table ids are dense indices, far from
// the sentinel.
const torMissDstToR = ^uint32(0)

// srcToRFusedKernel probes both endpoint IPs against the static table
// straight from the packed IP columns and emits one compacted,
// projected ToR section: source-IP misses are dropped (as in the row
// path's srcToR probe), destination-IP misses are kept under the
// sentinel for the second kernel to drop.
func srcToRFusedKernel(table *telemetry.ToRTable) operator.ColumnarJoinKernel {
	return func(sec *wire.ColSec, out *[]wire.ColSec) bool {
		if sec.Ping == nil {
			return false
		}
		n := sec.Len()
		ns := wire.ColSec{
			Tag:     wire.TagToRProbe,
			Times:   make([]int64, 0, n),
			Windows: make([]int64, 0, n),
			ToR: &wire.ToRCols{
				TS: make([]int64, 0, n), SrcToR: make([]uint32, 0, n),
				DstToR: make([]uint32, 0, n), RTT: make([]uint32, 0, n),
			},
		}
		c := sec.Ping
		sec.Live(func(i int) {
			src, ok := table.Lookup(c.SrcIP[i])
			if !ok {
				return
			}
			dst, ok := table.Lookup(c.DstIP[i])
			if !ok {
				dst = torMissDstToR
			}
			ns.Times = append(ns.Times, sec.Times[i])
			ns.Windows = append(ns.Windows, sec.Windows[i])
			ns.ToR.TS = append(ns.ToR.TS, c.TS[i])
			ns.ToR.SrcToR = append(ns.ToR.SrcToR, src)
			ns.ToR.DstToR = append(ns.ToR.DstToR, dst)
			ns.ToR.RTT = append(ns.ToR.RTT, c.RTT[i])
		})
		*out = append(*out, ns)
		return true
	}
}

// torPassKernel is the second half of the fused T2TProbe join pair: ToR
// sections reaching the dstToR join are already probed, so it only
// drops the sentinel rows (destination misses) and compacts any
// selection. Anything else (a materialized intermediate from a row-path
// upstream) declines to the row probe.
func torPassKernel(sec *wire.ColSec, out *[]wire.ColSec) bool {
	if sec.ToR == nil {
		return false
	}
	c := sec.ToR
	if sec.Sel == nil {
		clean := true
		for _, d := range c.DstToR {
			if d == torMissDstToR {
				clean = false
				break
			}
		}
		if clean {
			*out = append(*out, *sec)
			return true
		}
	}
	n := sec.Len()
	ns := wire.ColSec{
		Tag:     wire.TagToRProbe,
		Times:   make([]int64, 0, n),
		Windows: make([]int64, 0, n),
		ToR: &wire.ToRCols{
			TS: make([]int64, 0, n), SrcToR: make([]uint32, 0, n),
			DstToR: make([]uint32, 0, n), RTT: make([]uint32, 0, n),
		},
	}
	sec.Live(func(i int) {
		if c.DstToR[i] == torMissDstToR {
			return
		}
		ns.Times = append(ns.Times, sec.Times[i])
		ns.Windows = append(ns.Windows, sec.Windows[i])
		ns.ToR.TS = append(ns.ToR.TS, c.TS[i])
		ns.ToR.SrcToR = append(ns.ToR.SrcToR, c.SrcToR[i])
		ns.ToR.DstToR = append(ns.ToR.DstToR, c.DstToR[i])
		ns.ToR.RTT = append(ns.ToR.RTT, c.RTT[i])
	})
	*out = append(*out, ns)
	return true
}

func joinFn(j *operator.Join) func(telemetry.Record) (telemetry.Record, bool) {
	return func(rec telemetry.Record) (telemetry.Record, bool) {
		var out telemetry.Record
		ok := false
		j.Process(rec, func(r telemetry.Record) { out, ok = r, true })
		return out, ok
	}
}

// LogAnalytics builds the per-tenant histogram query of Listing 3.
func LogAnalytics() *Query {
	normalize := func(rec telemetry.Record, emit operator.Emit) {
		ll, ok := rec.Data.(*telemetry.LogLine)
		if !ok {
			return
		}
		out := rec
		raw := strings.ToLower(strings.TrimSpace(ll.Raw))
		out.Data = &telemetry.LogLine{Timestamp: ll.Timestamp, Raw: raw}
		out.WireSize = len(raw)
		emit(out)
	}
	patternFilter := func(rec telemetry.Record) bool {
		ll, ok := rec.Data.(*telemetry.LogLine)
		return ok && ContainsAny(ll.Raw, workload.Patterns)
	}
	parse := func(rec telemetry.Record, emit operator.Emit) {
		ll, ok := rec.Data.(*telemetry.LogLine)
		if !ok {
			return
		}
		line := ll.Raw
		// Strip trailing free-form payload after the key=value section
		// (the '=' split of Listing 3).
		if i := strings.Index(line, " #"); i >= 0 {
			line = line[:i]
		}
		stats, err := telemetry.ParseJobStats(ll.Timestamp, line)
		if err != nil {
			return // malformed lines are dropped, like a lossy parse
		}
		for i := range stats {
			s := stats[i]
			out := rec
			out.Data = &s
			out.WireSize = s.JobStatsWireSize()
			emit(out)
		}
	}
	bucketize := func(rec telemetry.Record, emit operator.Emit) {
		js, ok := rec.Data.(*telemetry.JobStats)
		if !ok {
			return
		}
		out := rec
		cp := *js
		cp.Bucket = telemetry.WidthBucket(cp.Stat, 0, 100, 10)
		out.Data = &cp
		emit(out)
	}
	return NewQuery("LogAnalytics").
		WithRefRate(workload.LogMbps10x, workload.AvgLogLineBytes).
		Window(10*time.Second, 0.5).
		Map("normalize", normalize, nil, 7.0, 0.97).
		WithMapKernel(normalizeKernel).
		FilterFunc("patterns", patternFilter, 4.85, 0.90).
		WithColumnarPred(patternsColPred).
		Map("parse", parse, nil, 9.2, 1.0).
		WithMapKernel(parseKernel).
		Map("bucketize", bucketize, []string{"tenant", "statName"}, 1.35, 1.0).
		WithMapKernel(bucketizeKernel).
		GroupAgg("histogram", operator.JobStatsKey, operator.JobStatsOne, 8.1, 0.05).
		WithAggKernel(operator.AggKernelJobStatsCount)
}

// The LogAnalytics SoA kernels mirror the row functions above exactly,
// minus the per-record telemetry.Record materialization.

// normalizeKernel lowercases/trims the raw column into a compacted log
// section (strings already normal — the generator's common case — stay
// interned, no allocation).
func normalizeKernel(sec *wire.ColSec, out *[]wire.ColSec) bool {
	if sec.Log == nil {
		return false
	}
	n := sec.Len()
	ns := wire.ColSec{
		Tag:     wire.TagLogLine,
		Times:   make([]int64, 0, n),
		Windows: make([]int64, 0, n),
		Log:     &wire.LogCols{TS: make([]int64, 0, n), Raw: make([]string, 0, n)},
	}
	c := sec.Log
	sec.Live(func(i int) {
		ns.Times = append(ns.Times, sec.Times[i])
		ns.Windows = append(ns.Windows, sec.Windows[i])
		ns.Log.TS = append(ns.Log.TS, c.TS[i])
		ns.Log.Raw = append(ns.Log.Raw, strings.ToLower(strings.TrimSpace(c.Raw[i])))
	})
	*out = append(*out, ns)
	return true
}

// patternsColPred evaluates the LogAnalytics pattern filter over the raw
// string column.
func patternsColPred(sec *wire.ColSec) (func(i int) bool, bool) {
	if sec.Log == nil {
		return nil, false
	}
	raw := sec.Log.Raw
	return func(i int) bool { return ContainsAny(raw[i], workload.Patterns) }, true
}

// parseKernel flat-maps a log section into a JobStats section: one
// output row per statistic on each parseable line, malformed lines
// dropped — identical to the row path's parse.
func parseKernel(sec *wire.ColSec, out *[]wire.ColSec) bool {
	if sec.Log == nil {
		return false
	}
	n := sec.Len()
	ns := wire.ColSec{
		Tag:     wire.TagJobStats,
		Times:   make([]int64, 0, n),
		Windows: make([]int64, 0, n),
		Job: &wire.JobCols{
			TS: make([]int64, 0, n), Tenant: make([]string, 0, n),
			StatName: make([]string, 0, n), Stat: make([]float64, 0, n),
		},
	}
	c := sec.Log
	sec.Live(func(i int) {
		line := c.Raw[i]
		if j := strings.Index(line, " #"); j >= 0 {
			line = line[:j]
		}
		stats, err := telemetry.ParseJobStats(c.TS[i], line)
		if err != nil {
			return
		}
		for k := range stats {
			ns.Times = append(ns.Times, sec.Times[i])
			ns.Windows = append(ns.Windows, sec.Windows[i])
			ns.Job.TS = append(ns.Job.TS, stats[k].Timestamp)
			ns.Job.Tenant = append(ns.Job.Tenant, stats[k].Tenant)
			ns.Job.StatName = append(ns.Job.StatName, stats[k].StatName)
			ns.Job.Stat = append(ns.Job.Stat, stats[k].Stat)
		}
	})
	ns.Job.Bucket = make([]int64, len(ns.Times))
	*out = append(*out, ns)
	return true
}

// bucketizeKernel replaces a JobStats section's bucket column with
// width_bucket(stat, 0, 100, 10), sharing every other column.
func bucketizeKernel(sec *wire.ColSec, out *[]wire.ColSec) bool {
	if sec.Job == nil {
		return false
	}
	if sec.Sel == nil {
		cols := *sec.Job
		cols.Bucket = make([]int64, len(cols.Stat))
		for i, v := range cols.Stat {
			cols.Bucket[i] = int64(telemetry.WidthBucket(v, 0, 100, 10))
		}
		ns := *sec
		ns.Job = &cols
		*out = append(*out, ns)
		return true
	}
	// A live selection means compacting every column anyway.
	n := sec.Len()
	ns := wire.ColSec{
		Tag:     wire.TagJobStats,
		Times:   make([]int64, 0, n),
		Windows: make([]int64, 0, n),
		Job: &wire.JobCols{
			TS: make([]int64, 0, n), Tenant: make([]string, 0, n),
			StatName: make([]string, 0, n), Stat: make([]float64, 0, n),
			Bucket: make([]int64, 0, n),
		},
	}
	c := sec.Job
	sec.Live(func(i int) {
		ns.Times = append(ns.Times, sec.Times[i])
		ns.Windows = append(ns.Windows, sec.Windows[i])
		ns.Job.TS = append(ns.Job.TS, c.TS[i])
		ns.Job.Tenant = append(ns.Job.Tenant, c.Tenant[i])
		ns.Job.StatName = append(ns.Job.StatName, c.StatName[i])
		ns.Job.Stat = append(ns.Job.Stat, c.Stat[i])
		ns.Job.Bucket = append(ns.Job.Bucket, int64(telemetry.WidthBucket(c.Stat[i], 0, 100, 10)))
	})
	*out = append(*out, ns)
	return true
}

// TraceSpanAgg builds the fourth canonical query: distributed-trace span
// aggregation. Spans arrive as JobStats records (service, operation,
// duration in ms); health-check spans are filtered out, then durations
// fold into count/sum/min/max per (service, operation) key over 10 s
// windows. The grouped key space is high-cardinality (thousands of keys,
// Zipf-skewed), so G+R's relay reduction is weaker than LogAnalytics'
// 64-tenant histogram — which is exactly the regime it stresses.
func TraceSpanAgg() *Query {
	liveSpan := func(rec telemetry.Record) bool {
		j, ok := rec.Data.(*telemetry.JobStats)
		return ok && j.StatName != workload.SpanHealthOp
	}
	return NewQuery("TraceSpanAgg").
		WithRefRate(workload.SpanMbps10x, workload.AvgSpanBytes).
		Window(10*time.Second, 0.6).
		FilterFunc("liveSpans", liveSpan, 3.4, 1-DefaultSpanHealthFrac).
		WithColumnarPred(liveSpanColPred).
		GroupAgg("spanAgg", operator.JobStatsKey, operator.JobStatsVal, 11.5, 0.12).
		WithAggKernel(operator.AggKernelJobStatsDur)
}

// DefaultSpanHealthFrac mirrors workload.DefaultSpanConfig's HealthFrac:
// the filter's expected drop rate, used as the relay hint.
const DefaultSpanHealthFrac = 0.08

// liveSpanColPred evaluates the health-span filter over the interned
// StatName column.
func liveSpanColPred(sec *wire.ColSec) (func(i int) bool, bool) {
	if sec.Job == nil {
		return nil, false
	}
	names := sec.Job.StatName
	return func(i int) bool { return names[i] != workload.SpanHealthOp }, true
}

// S2SQuantileProbe is the approximate-percentile variant of S2SProbe the
// paper's rule R-1 discussion motivates (citing the authors' datacenter
// telemetry quantile work): per server pair, a mergeable sketch answers
// p50/p95/p99 probe latency over each window. Sketching costs slightly
// more than min/max/avg but its output is still tiny relative to input.
func S2SQuantileProbe() *Query {
	return NewQuery("S2SQuantileProbe").
		WithRefRate(workload.PingmeshMbps10x, telemetry.PingProbeWireSize).
		Window(10*time.Second, 1.0).
		FilterExpr("errFilter", Eq(Field("errCode"), Num(0)), 13.0, 0.86).
		GroupQuantile("latSketch", operator.ProbePairKey, operator.ProbeRTT,
			QuantileSpec{Lo: 0, Hi: 20000, Buckets: 200}, 76.0, 0.35).
		WithAggKernel(operator.AggKernelPingPairRTT)
}

// TotalCostPct returns the CPU demand (percent of a core) of running the
// whole query on its full reference-rate input. CostPct hints are the
// operators' *actual* CPU shares in that scenario (upstream relay
// reduction already reflected), so the total is their plain sum. This is
// the paper's "query requires X% CPU" figure.
func TotalCostPct(q *Query) float64 {
	total := 0.0
	for _, op := range q.Ops {
		total += op.CostPct
	}
	return total
}

// PrefixCostPct returns the CPU demand of running only the first n
// operators on the full input.
func PrefixCostPct(q *Query, n int) float64 {
	total := 0.0
	for i, op := range q.Ops {
		if i >= n {
			break
		}
		total += op.CostPct
	}
	return total
}

// PrefixRelay returns the fraction of input bytes still flowing after the
// first n operators (w_{n+1} in the paper's notation).
func PrefixRelay(q *Query, n int) float64 {
	w := 1.0
	for i, op := range q.Ops {
		if i >= n {
			break
		}
		w *= op.RelayBytes
	}
	return w
}
