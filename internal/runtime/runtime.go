// Package runtime implements the Jarvis runtime: the per-query,
// per-data-source controller that keeps query execution stable by
// refining the data-level partitioning plan (paper §IV-C, §IV-D).
//
// The runtime is a state machine (Fig. 6):
//
//	Startup → Probe → (congested/idle for DetectEpochs) → Profile →
//	Adapt (LP init + iterative fine-tuning) → stable → Probe
//
// It is fully decentralized: one Runtime instance per query per data
// source, interacting only with the local control proxies through the
// Observation/Action protocol — no coordination with the stream processor
// or a central planner.
package runtime

import (
	"fmt"

	"jarvis/internal/stream"
)

// Phase is the runtime's operational phase (Fig. 6).
type Phase int

// Runtime phases.
const (
	// PhaseStartup initializes all load factors to zero.
	PhaseStartup Phase = iota
	// PhaseProbe watches proxy states, waiting for instability.
	PhaseProbe
	// PhaseProfile diagnoses the plan: per-operator cost/relay estimates.
	PhaseProfile
	// PhaseAdapt computes and fine-tunes a new partitioning plan.
	PhaseAdapt
)

func (p Phase) String() string {
	switch p {
	case PhaseStartup:
		return "startup"
	case PhaseProbe:
		return "probe"
	case PhaseProfile:
		return "profile"
	case PhaseAdapt:
		return "adapt"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Config tunes the runtime. The zero value is completed by Defaults.
type Config struct {
	// DetectEpochs is how many consecutive non-stable epochs trigger
	// adaptation (paper: three, to absorb scheduling noise).
	DetectEpochs int
	// UseLPInit enables the model-based LP initialization (disabling it
	// gives the paper's "w/o LP-init" model-agnostic baseline).
	UseLPInit bool
	// FineTune enables the model-agnostic iterative refinement (disabling
	// it gives the paper's "LP only" model-based baseline).
	FineTune bool
	// Granularity is the discretization of load factors during binary
	// search (1/Granularity steps).
	Granularity int
	// PriorityByCostRelay weighs operator priority by compute cost as
	// well as relay ratio (the ablation the paper leaves to future work).
	PriorityByCostRelay bool
	// LinearStepping replaces the binary search with fixed-granularity
	// steps (ablation: the paper adds binary search "to further improve
	// convergence time").
	LinearStepping bool
}

// Defaults returns the paper's configuration: 3 detect epochs, LP init
// plus fine-tuning, 1/16 load-factor granularity.
func Defaults() Config {
	return Config{DetectEpochs: 3, UseLPInit: true, FineTune: true, Granularity: 16}
}

// LPOnly returns the model-based-only configuration (§VI-C "LP only").
func LPOnly() Config {
	c := Defaults()
	c.FineTune = false
	return c
}

// NoLPInit returns the model-agnostic-only configuration (§VI-C
// "w/o LP-init").
func NoLPInit() Config {
	c := Defaults()
	c.UseLPInit = false
	return c
}

// Observation is one epoch's view of the query, assembled by the
// execution substrate (live engine or simulator).
type Observation struct {
	// Stats are the per-proxy epoch statistics, in pipeline order.
	Stats []stream.ProxyStats
	// LoadFactors are the proxies' current load factors.
	LoadFactors []float64
	// SpareBudgetFrac is the unused fraction of the epoch's CPU budget.
	SpareBudgetFrac float64
	// RelayObserved optionally carries measured per-operator relay ratios
	// (bytes out / bytes in); used for fine-tuning priorities. May be nil,
	// in which case priorities fall back to Estimates or plan hints.
	RelayObserved []float64
	// Boundary is the number of leading operators allowed on the source.
	Boundary int
}

// Action is the runtime's instruction for the next epoch.
type Action struct {
	// Phase the runtime is in after this step (for tracing/plots).
	Phase Phase
	// SetLoadFactors, when non-nil, must be applied before the next epoch.
	SetLoadFactors []float64
	// Profile requests a profiling epoch; the caller must run it and feed
	// the estimates to OnProfile.
	Profile bool
}

// Estimates is the Profile phase's output (paper §IV-C: per-operator
// compute cost, per-operator data reduction, available budget).
type Estimates struct {
	// CostPct[i] estimates operator i's CPU share (percent of a core) to
	// process its full relay-scaled input at the current rate.
	CostPct []float64
	// Relay[i] estimates operator i's output/input byte ratio.
	Relay []float64
	// BudgetPct is the compute available to the query, percent of a core.
	BudgetPct float64
	// Quality[i] in (0,1] is the fraction of operator i's input that was
	// actually profiled; low quality means noisy estimates (the effect
	// that makes "LP only" fail to stabilize in Fig. 8).
	Quality []float64
}

// Runtime is the per-query Jarvis runtime instance.
type Runtime struct {
	cfg   Config
	phase Phase

	detect  int    // non-stable probe epochs within the sliding window
	history []bool // last few probe epochs: true = non-stable

	est     *Estimates
	tuner   *fineTuner
	lastObs Observation

	// convergence bookkeeping
	epochsInAdapt int
	stableStreak  int
}

// New creates a runtime in the Startup phase.
func New(cfg Config) *Runtime {
	if cfg.DetectEpochs <= 0 {
		cfg.DetectEpochs = 3
	}
	if cfg.Granularity <= 1 {
		cfg.Granularity = 16
	}
	return &Runtime{cfg: cfg, phase: PhaseStartup}
}

// Phase returns the current phase.
func (rt *Runtime) Phase() Phase { return rt.phase }

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// OnEpoch consumes one epoch observation and returns the next action.
func (rt *Runtime) OnEpoch(obs Observation) Action {
	rt.lastObs = obs
	switch rt.phase {
	case PhaseStartup:
		// Initialize every proxy to zero (all records drain) and start
		// probing immediately: an idle signal will trigger adaptation.
		rt.phase = PhaseProbe
		zero := make([]float64, len(obs.LoadFactors))
		return Action{Phase: PhaseProbe, SetLoadFactors: zero}

	case PhaseProbe:
		// Detection: DetectEpochs non-stable epochs within a short
		// sliding window (the paper uses three epochs; the window
		// tolerates signals that flicker around the thresholds without
		// missing a persistent change).
		state := stream.QueryState(obs.Stats)
		window := rt.cfg.DetectEpochs + 2
		rt.history = append(rt.history, state != stream.StateStable)
		if len(rt.history) > window {
			rt.history = rt.history[len(rt.history)-window:]
		}
		rt.detect = 0
		for _, bad := range rt.history {
			if bad {
				rt.detect++
			}
		}
		if rt.detect < rt.cfg.DetectEpochs {
			return Action{Phase: PhaseProbe}
		}
		rt.detect = 0
		rt.history = nil
		if rt.cfg.UseLPInit {
			rt.phase = PhaseProfile
			return Action{Phase: PhaseProfile, Profile: true}
		}
		// Model-agnostic path: adapt from the current factors directly.
		rt.enterAdapt(obs)
		return rt.adaptStep(obs)

	case PhaseProfile:
		// Waiting for OnProfile; keep probing semantics if the caller
		// sends another epoch first.
		return Action{Phase: PhaseProfile, Profile: true}

	case PhaseAdapt:
		rt.epochsInAdapt++
		return rt.adaptStep(obs)
	}
	return Action{Phase: rt.phase}
}

// OnProfile consumes profiling estimates and produces the Adapt action
// holding the LP-initialized load factors (or hands straight to
// fine-tuning when LP init is disabled).
func (rt *Runtime) OnProfile(est Estimates) (Action, error) {
	if rt.phase != PhaseProfile {
		return Action{}, fmt.Errorf("runtime: OnProfile in phase %v", rt.phase)
	}
	if len(est.CostPct) != len(est.Relay) {
		return Action{}, fmt.Errorf("runtime: estimate lengths differ (%d cost, %d relay)",
			len(est.CostPct), len(est.Relay))
	}
	rt.est = &est
	rt.enterAdapt(rt.lastObs)

	factors, err := LPInit(est, rt.lastObs.Boundary)
	if err != nil {
		return Action{}, err
	}
	if !rt.cfg.FineTune {
		// LP only: apply the model's plan and return to probing.
		rt.phase = PhaseProbe
		return Action{Phase: PhaseProbe, SetLoadFactors: factors}, nil
	}
	// Apply the LP plan, then fine-tune from it on subsequent epochs.
	rt.tuner.restartFrom(factors)
	return Action{Phase: PhaseAdapt, SetLoadFactors: factors}, nil
}

// enterAdapt initializes the fine tuner for a new adaptation round.
func (rt *Runtime) enterAdapt(obs Observation) {
	rt.phase = PhaseAdapt
	rt.epochsInAdapt = 0
	rt.stableStreak = 0
	rt.tuner = newFineTuner(rt.cfg, rt.priorities(obs), obs.Boundary)
	rt.tuner.restartFrom(obs.LoadFactors)
}

// adaptStep advances fine-tuning one epoch. The plan is only accepted
// after two consecutive stable epochs, so a signal flickering around the
// congestion threshold keeps being tuned rather than declared converged.
func (rt *Runtime) adaptStep(obs Observation) Action {
	state := stream.QueryState(obs.Stats)
	next, done := rt.tuner.step(state, obs.LoadFactors)
	if !done {
		rt.stableStreak = 0
		return Action{Phase: PhaseAdapt, SetLoadFactors: next}
	}
	if state != stream.StateStable {
		// The tuner has no move left in this direction; hand control
		// back to probing rather than spinning in Adapt.
		rt.phase = PhaseProbe
		rt.detect = 0
		rt.history = nil
		return Action{Phase: PhaseProbe, SetLoadFactors: next}
	}
	rt.stableStreak++
	if rt.stableStreak < 2 {
		return Action{Phase: PhaseAdapt, SetLoadFactors: next}
	}
	rt.phase = PhaseProbe
	rt.detect = 0
	rt.history = nil
	return Action{Phase: PhaseProbe, SetLoadFactors: next}
}

// priorities derives the fine-tuning priority ordering. Operators with
// lower relay ratios get higher priority (they shed more network bytes
// per unit of compute); the CostRelay ablation divides by compute cost.
func (rt *Runtime) priorities(obs Observation) []float64 {
	n := len(obs.LoadFactors)
	relay := make([]float64, n)
	for i := range relay {
		relay[i] = 1 // neutral default
	}
	switch {
	case rt.est != nil && len(rt.est.Relay) == n:
		copy(relay, rt.est.Relay)
	case len(obs.RelayObserved) == n:
		copy(relay, obs.RelayObserved)
	}
	prio := make([]float64, n)
	for i := range prio {
		// Smaller score = higher priority.
		prio[i] = relay[i]
		if rt.cfg.PriorityByCostRelay && rt.est != nil && i < len(rt.est.CostPct) && rt.est.CostPct[i] > 0 {
			prio[i] = relay[i] * rt.est.CostPct[i]
		}
	}
	return prio
}
