package runtime

import (
	"math"
	"math/rand/v2"
	"testing"

	"jarvis/internal/stream"
)

// fakeQuery is an analytic closed-loop model of a query pipeline used to
// exercise the runtime without the full engine: given true per-operator
// costs (percent of a core, relay-scaled input), relay ratios and a CPU
// budget, it classifies the query state reached under a set of load
// factors exactly like the engine's threshold logic would.
type fakeQuery struct {
	cost   []float64 // true CostPct per operator
	relay  []float64
	budget float64 // percent of a core
	// thresholds mirror the engine's DrainedThres/IdleThres behaviour.
	congestSlack float64 // demand may exceed budget by this factor
	idleSlack    float64 // idle if spare fraction exceeds this

	factors []float64
}

func newFakeQuery(cost, relay []float64, budgetPct float64) *fakeQuery {
	return &fakeQuery{
		cost: cost, relay: relay, budget: budgetPct,
		congestSlack: 1.02, idleSlack: 0.20,
		factors: make([]float64, len(cost)),
	}
}

// demand returns the CPU percent consumed under the current factors.
func (f *fakeQuery) demand() float64 {
	e := 1.0
	total := 0.0
	for i := range f.cost {
		e *= f.factors[i]
		total += e * f.cost[i]
	}
	return total
}

// state classifies the query exactly once per epoch.
func (f *fakeQuery) state() stream.ProxyState {
	d := f.demand()
	switch {
	case d > f.budget*f.congestSlack:
		return stream.StateCongested
	case f.budget > 0 && (f.budget-d)/f.budget > f.idleSlack && f.anyBelowOne():
		return stream.StateIdle
	default:
		return stream.StateStable
	}
}

func (f *fakeQuery) anyBelowOne() bool {
	for _, p := range f.factors {
		if p < 1-1e-9 {
			return true
		}
	}
	return false
}

// observe builds the runtime Observation for the current epoch.
func (f *fakeQuery) observe() Observation {
	st := f.state()
	stats := make([]stream.ProxyStats, len(f.cost))
	for i := range stats {
		stats[i].State = stream.StateStable
	}
	// Project the query-level state onto proxies the way the engine
	// would: congestion at the most expensive running operator; idleness
	// everywhere.
	switch st {
	case stream.StateCongested:
		worst, wcost := 0, -1.0
		for i := range f.cost {
			if f.factors[i] > 0 && f.cost[i] > wcost {
				worst, wcost = i, f.cost[i]
			}
		}
		stats[worst].State = stream.StateCongested
	case stream.StateIdle:
		for i := range stats {
			stats[i].State = stream.StateIdle
		}
	}
	spare := 0.0
	if f.budget > 0 {
		spare = math.Max(0, (f.budget-f.demand())/f.budget)
	}
	return Observation{
		Stats:           stats,
		LoadFactors:     append([]float64(nil), f.factors...),
		SpareBudgetFrac: spare,
		RelayObserved:   append([]float64(nil), f.relay...),
		Boundary:        len(f.cost),
	}
}

// estimates produces profiling output, optionally corrupted with relative
// noise on expensive operators (the budget was too small to run them on
// every record).
func (f *fakeQuery) estimates(noise float64, rng *rand.Rand) Estimates {
	est := Estimates{
		CostPct:   append([]float64(nil), f.cost...),
		Relay:     append([]float64(nil), f.relay...),
		BudgetPct: f.budget,
		Quality:   make([]float64, len(f.cost)),
	}
	for i := range est.Quality {
		est.Quality[i] = 1
	}
	if noise > 0 {
		// Systematic bias: the most expensive operator cannot be profiled
		// on all records within the epoch budget, so its cost is
		// consistently underestimated (the paper's Fig. 8 failure mode for
		// "LP only"). A small random component models scheduling jitter.
		worst, wcost := 0, -1.0
		for i, c := range f.cost {
			if c > wcost {
				worst, wcost = i, c
			}
		}
		est.CostPct[worst] *= 1 - noise
		est.Quality[worst] = 1 - noise
		if rng != nil {
			for i := range est.CostPct {
				est.CostPct[i] *= 1 + 0.05*(2*rng.Float64()-1)
			}
		}
	}
	return est
}

// drive runs the closed loop for at most maxEpochs, returning the number
// of epochs from the *first* epoch until the runtime settles back into
// Probe with a stable query, or -1 if it never does.
func drive(t *testing.T, rt *Runtime, f *fakeQuery, maxEpochs int, noise float64, seed uint64) int {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	stableRun := 0
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		act := rt.OnEpoch(f.observe())
		if act.SetLoadFactors != nil {
			copy(f.factors, act.SetLoadFactors)
		}
		if act.Profile {
			pact, err := rt.OnProfile(f.estimates(noise, rng))
			if err != nil {
				t.Fatal(err)
			}
			if pact.SetLoadFactors != nil {
				copy(f.factors, pact.SetLoadFactors)
			}
		}
		if rt.Phase() == PhaseProbe && f.state() == stream.StateStable {
			stableRun++
			if stableRun >= 2 {
				return epoch
			}
		} else {
			stableRun = 0
		}
	}
	return -1
}

func s2sFake(budget float64) *fakeQuery {
	return newFakeQuery([]float64{1, 13, 71}, []float64{1, 0.86, 0.30}, budget)
}

func TestLPInitMatchesBudget(t *testing.T) {
	est := Estimates{
		CostPct:   []float64{1, 13, 71},
		Relay:     []float64{1, 0.86, 0.30},
		BudgetPct: 80,
	}
	factors, err := LPInit(est, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Resulting demand must not exceed the budget and must nearly use it.
	e := 1.0
	demand := 0.0
	for i, p := range factors {
		e *= p
		demand += e * est.CostPct[i]
	}
	if demand > 80.01 {
		t.Fatalf("LP init demand %v exceeds budget", demand)
	}
	if demand < 79 {
		t.Fatalf("LP init demand %v wastes budget", demand)
	}
}

func TestLPInitBoundary(t *testing.T) {
	est := Estimates{
		CostPct:   []float64{1, 13, 71},
		Relay:     []float64{1, 0.86, 0.30},
		BudgetPct: 100,
	}
	factors, err := LPInit(est, 2)
	if err != nil {
		t.Fatal(err)
	}
	if factors[2] != 0 {
		t.Fatalf("boundary op factor = %v, want 0", factors[2])
	}
	if factors[0] < 0.99 || factors[1] < 0.99 {
		t.Fatalf("prefix should run fully: %v", factors)
	}
}

func TestLPInitErrors(t *testing.T) {
	if _, err := LPInit(Estimates{}, 0); err == nil {
		t.Fatal("empty estimates must error")
	}
}

func TestRuntimeStartupToProbe(t *testing.T) {
	rt := New(Defaults())
	if rt.Phase() != PhaseStartup {
		t.Fatal("must start in Startup")
	}
	f := s2sFake(80)
	f.factors = []float64{0.5, 0.5, 0.5}
	act := rt.OnEpoch(f.observe())
	if rt.Phase() != PhaseProbe {
		t.Fatalf("phase = %v", rt.Phase())
	}
	for _, p := range act.SetLoadFactors {
		if p != 0 {
			t.Fatal("startup must zero the load factors")
		}
	}
}

func TestRuntimeDetectNeedsThreeEpochs(t *testing.T) {
	rt := New(Defaults())
	f := s2sFake(80) // factors zero → idle
	rt.OnEpoch(f.observe())
	profiles := 0
	for i := 0; i < 3; i++ {
		act := rt.OnEpoch(f.observe())
		if act.Profile {
			profiles++
			if i != 2 {
				t.Fatalf("profiled after %d non-stable epochs, want 3", i+1)
			}
		}
	}
	if profiles != 1 {
		t.Fatalf("profiles = %d", profiles)
	}
}

func TestRuntimeConvergesWithLPInit(t *testing.T) {
	rt := New(Defaults())
	f := s2sFake(80)
	epochs := drive(t, rt, f, 40, 0, 1)
	if epochs < 0 {
		t.Fatalf("did not converge; factors=%v demand=%v", f.factors, f.demand())
	}
	// Accurate profile: LP lands in the stable band immediately, so
	// convergence is detect (3) + profile/adapt within a few epochs.
	if epochs > 10 {
		t.Fatalf("converged in %d epochs, want fast with LP init", epochs)
	}
	if f.demand() > 80*1.02 {
		t.Fatalf("final demand %v exceeds budget", f.demand())
	}
}

func TestRuntimeConvergesWithoutLPInit(t *testing.T) {
	rt := New(NoLPInit())
	f := s2sFake(80)
	epochs := drive(t, rt, f, 80, 0, 2)
	if epochs < 0 {
		t.Fatalf("did not converge; factors=%v demand=%v state=%v", f.factors, f.demand(), f.state())
	}
	if f.demand() > 80*1.02 {
		t.Fatalf("final demand %v exceeds budget", f.demand())
	}
	// The model-agnostic path must still make good use of the budget.
	if f.demand() < 40 {
		t.Fatalf("final demand %v leaves the budget badly underused", f.demand())
	}
}

func TestRuntimeLPInitFasterThanWithout(t *testing.T) {
	withLP := drive(t, New(Defaults()), s2sFake(80), 80, 0, 3)
	withoutLP := drive(t, New(NoLPInit()), s2sFake(80), 80, 0, 3)
	if withLP < 0 || withoutLP < 0 {
		t.Fatalf("convergence failed: %d, %d", withLP, withoutLP)
	}
	if withLP > withoutLP {
		t.Fatalf("LP init (%d epochs) should not be slower than without (%d)", withLP, withoutLP)
	}
}

func TestRuntimeBudgetDropTriggersReadaptation(t *testing.T) {
	rt := New(Defaults())
	f := s2sFake(90)
	if drive(t, rt, f, 40, 0, 4) < 0 {
		t.Fatal("initial convergence failed")
	}
	f.budget = 60 // resource drop → congestion
	epochs := drive(t, rt, f, 60, 0, 5)
	if epochs < 0 {
		t.Fatalf("no reconvergence after budget drop; demand=%v state=%v", f.demand(), f.state())
	}
	if f.demand() > 60*1.02 {
		t.Fatalf("demand %v exceeds shrunken budget", f.demand())
	}
}

func TestRuntimeBudgetRiseTriggersReadaptation(t *testing.T) {
	rt := New(Defaults())
	f := s2sFake(30)
	if drive(t, rt, f, 60, 0, 6) < 0 {
		t.Fatal("initial convergence failed")
	}
	before := f.demand()
	f.budget = 90
	if drive(t, rt, f, 60, 0, 7) < 0 {
		t.Fatalf("no reconvergence after budget rise; demand=%v", f.demand())
	}
	if f.demand() <= before {
		t.Fatalf("demand should grow with budget: %v → %v", before, f.demand())
	}
}

func TestRuntimeLPOnlyWithNoisyProfileStruggles(t *testing.T) {
	// With heavily corrupted estimates and no fine-tuning, LP-only keeps
	// missing the stable band (the Fig. 8 failure mode); Jarvis with
	// fine-tuning recovers.
	lpOnlyFailures := 0
	jarvisFailures := 0
	for seed := uint64(0); seed < 10; seed++ {
		if drive(t, New(LPOnly()), s2sFake(70), 40, 0.4, seed) < 0 {
			lpOnlyFailures++
		}
		if drive(t, New(Defaults()), s2sFake(70), 60, 0.4, seed) < 0 {
			jarvisFailures++
		}
	}
	if jarvisFailures > 0 {
		t.Fatalf("Jarvis failed to converge %d/10 noisy runs", jarvisFailures)
	}
	if lpOnlyFailures < 8 {
		t.Fatalf("LP-only should keep missing the stable band under biased profiling, failed only %d/10", lpOnlyFailures)
	}
}

func TestRuntimeOnProfileWrongPhase(t *testing.T) {
	rt := New(Defaults())
	if _, err := rt.OnProfile(Estimates{}); err == nil {
		t.Fatal("OnProfile outside Profile phase must error")
	}
}

func TestRuntimeOnProfileBadEstimates(t *testing.T) {
	rt := New(Defaults())
	f := s2sFake(80)
	rt.OnEpoch(f.observe())
	for i := 0; i < 3; i++ {
		rt.OnEpoch(f.observe())
	}
	if rt.Phase() != PhaseProfile {
		t.Fatalf("phase = %v", rt.Phase())
	}
	if _, err := rt.OnProfile(Estimates{CostPct: []float64{1}, Relay: []float64{1, 1}}); err == nil {
		t.Fatal("mismatched estimate lengths must error")
	}
}

func TestRuntimeConfigs(t *testing.T) {
	if !Defaults().UseLPInit || !Defaults().FineTune {
		t.Fatal("defaults")
	}
	if LPOnly().FineTune {
		t.Fatal("LPOnly must disable fine-tuning")
	}
	if NoLPInit().UseLPInit {
		t.Fatal("NoLPInit must disable LP init")
	}
	rt := New(Config{})
	if rt.Config().DetectEpochs != 3 || rt.Config().Granularity != 16 {
		t.Fatalf("zero config not normalized: %+v", rt.Config())
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseStartup: "startup", PhaseProbe: "probe",
		PhaseProfile: "profile", PhaseAdapt: "adapt", Phase(9): "phase(9)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d → %q", int(p), p.String())
		}
	}
}

func TestFineTunerDirectBehaviour(t *testing.T) {
	cfg := Defaults()
	ft := newFineTuner(cfg, []float64{1, 0.86, 0.30}, 3)
	ft.restartFrom([]float64{0, 0, 0})
	// Idle: the tuner raises the highest-priority operator (lowest relay,
	// index 2) toward 1 first.
	next, done := ft.step(stream.StateIdle, []float64{0, 0, 0})
	if done {
		t.Fatal("should not be done while idle")
	}
	if next[2] != 1 {
		t.Fatalf("first probe should jump op 2 to max: %v", next)
	}
	// Stable: accepts.
	_, done = ft.step(stream.StateStable, next)
	if !done {
		t.Fatal("stable must finish the round")
	}
}

func TestFineTunerCongestionLowersLowPriorityFirst(t *testing.T) {
	cfg := Defaults()
	ft := newFineTuner(cfg, []float64{1, 0.86, 0.30}, 3)
	start := []float64{1, 1, 1}
	ft.restartFrom(start)
	next, done := ft.step(stream.StateCongested, start)
	if done {
		t.Fatal("not done while congested")
	}
	// Lowest priority = highest relay = op 0.
	if next[0] >= 1 {
		t.Fatalf("op 0 should be lowered first: %v", next)
	}
	if next[2] != 1 {
		t.Fatalf("op 2 must not be touched yet: %v", next)
	}
}

func TestFineTunerBinarySearchConverges(t *testing.T) {
	// One-op pipeline with a hidden feasibility threshold at 0.6: the
	// bracket must converge near it within log2(16)+2 probes.
	cfg := Defaults()
	ft := newFineTuner(cfg, []float64{0.5}, 1)
	ft.restartFrom([]float64{0})
	cur := []float64{0}
	probes := 0
	for i := 0; i < 12; i++ {
		var state stream.ProxyState
		switch {
		case cur[0] > 0.6+1e-9:
			state = stream.StateCongested
		case cur[0] < 0.55:
			state = stream.StateIdle
		default:
			state = stream.StateStable
		}
		next, done := ft.step(state, cur)
		if done {
			if cur[0] > 0.6+1e-9 || cur[0] < 0.5 {
				t.Fatalf("settled at %v, want ≈0.6", cur[0])
			}
			if probes > 7 {
				t.Fatalf("took %d probes", probes)
			}
			return
		}
		cur = next
		probes++
	}
	t.Fatalf("no convergence; cur=%v", cur)
}

// Property: for random feasible pipelines the full Jarvis loop always
// converges within a bounded number of epochs and never oversubscribes
// the budget at the end.
func TestRuntimeConvergenceProperty(t *testing.T) {
	trials := 0
	for seed := uint64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 17))
		m := 2 + rng.IntN(4)
		cost := make([]float64, m)
		relay := make([]float64, m)
		for i := 0; i < m; i++ {
			cost[i] = 1 + rng.Float64()*60
			relay[i] = 0.05 + rng.Float64()*0.95
		}
		budget := 15 + rng.Float64()*85
		f := newFakeQuery(cost, relay, budget)
		rt := New(Defaults())
		epochs := drive(t, rt, f, 120, 0, seed)
		if epochs < 0 {
			// Some configurations have no stable band at this
			// granularity; the loop must still keep demand within budget.
			if f.demand() > budget*1.05 {
				t.Fatalf("seed %d: non-converged AND oversubscribed (demand %v, budget %v)",
					seed, f.demand(), budget)
			}
			continue
		}
		trials++
		if f.demand() > budget*1.05 {
			t.Fatalf("seed %d: converged but oversubscribed (demand %v, budget %v)",
				seed, f.demand(), budget)
		}
	}
	if trials < 25 {
		t.Fatalf("only %d/40 random configurations converged", trials)
	}
}

// The ablation configurations must also drive the loop correctly.
func TestRuntimeAblationConfigsConverge(t *testing.T) {
	for _, cfg := range []Config{
		func() Config { c := NoLPInit(); c.LinearStepping = true; return c }(),
		func() Config { c := Defaults(); c.PriorityByCostRelay = true; return c }(),
	} {
		f := s2sFake(80)
		rt := New(cfg)
		epochs := drive(t, rt, f, 120, 0, 5)
		if epochs < 0 {
			t.Fatalf("config %+v did not converge (demand %v)", cfg, f.demand())
		}
		if f.demand() > 80*1.05 {
			t.Fatalf("config %+v oversubscribed: %v", cfg, f.demand())
		}
	}
}

func TestLPInitClampsBadEstimates(t *testing.T) {
	// NaN/overrange relays and negative costs are sanitized, not fatal.
	est := Estimates{
		CostPct:   []float64{-5, 13, 71},
		Relay:     []float64{math.NaN(), 1.7, 0.3},
		BudgetPct: 50,
	}
	factors, err := LPInit(est, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range factors {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("unsanitized factors: %v", factors)
		}
	}
}

func TestFineTunerSnapGrid(t *testing.T) {
	ft := newFineTuner(Defaults(), []float64{1}, 0) // boundary clamps to len
	if ft.boundary != 1 {
		t.Fatalf("boundary clamp = %d", ft.boundary)
	}
	cases := map[float64]float64{-0.2: 0, 0.49: 0.5, 1.3: 1, 0.04: 0.0625}
	for in, want := range cases {
		if got := ft.snap(in); math.Abs(got-want) > 1e-12 {
			t.Fatalf("snap(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFineTunerLinearStepsBothDirections(t *testing.T) {
	cfg := Defaults()
	cfg.LinearStepping = true
	ft := newFineTuner(cfg, []float64{0.5}, 1)
	ft.restartFrom([]float64{0.5})
	up, done := ft.step(stream.StateIdle, []float64{0.5})
	if done || up[0] <= 0.5 {
		t.Fatalf("linear raise = %v", up)
	}
	ft2 := newFineTuner(cfg, []float64{0.5}, 1)
	ft2.restartFrom([]float64{0.5})
	down, done := ft2.step(stream.StateCongested, []float64{0.5})
	if done || down[0] >= 0.5 {
		t.Fatalf("linear lower = %v", down)
	}
}
