package runtime

import (
	"fmt"
	"math"
	"sort"

	"jarvis/internal/lp"
	"jarvis/internal/stream"
)

// LPInit computes the model-based initial load factors (StepWise-Adapt
// step 1): it lowers the profiling estimates into the Eq. 3 chain LP and
// converts the optimal effective load factors into per-proxy factors.
// Operators at or past the boundary are pinned to zero.
func LPInit(est Estimates, boundary int) ([]float64, error) {
	m := len(est.CostPct)
	if m == 0 {
		return nil, fmt.Errorf("runtime: empty estimates")
	}
	if boundary <= 0 || boundary > m {
		boundary = m
	}
	// Build the chain problem over the deployable prefix. The LP's c_i is
	// per-record cost relative to the budget: with CostPct meaning "% of
	// a core for the full relay-scaled input", the constraint
	// Σ w_i·e_i·c_i ≤ B/Nr reduces to Σ e_i·CostPct_i/100 ≤ BudgetPct/100
	// when c_i = (CostPct_i/100)/w_i (see internal/lp docs).
	cp := lp.ChainProblem{
		R:      make([]float64, boundary),
		C:      make([]float64, boundary),
		Budget: est.BudgetPct / 100,
	}
	w := 1.0
	for i := 0; i < boundary; i++ {
		r := clamp01(est.Relay[i])
		cp.R[i] = r
		cost := est.CostPct[i]
		if cost < 0 {
			cost = 0
		}
		if w <= 1e-9 {
			w = 1e-9
		}
		cp.C[i] = cost / 100 / w
		w *= r
	}
	sol, err := lp.SolveChain(cp)
	if err != nil {
		return nil, err
	}
	factors := make([]float64, m)
	copy(factors, sol.P)
	for i := boundary; i < m; i++ {
		factors[i] = 0
	}
	return factors, nil
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// fineTuner is StepWise-Adapt step 2: a model-agnostic controller that
// adjusts one operator's load factor at a time, prioritizing operators by
// data-reduction potential (an FFD-inspired ordering, §IV-D) and binary
// searching over discretized load-factor values.
//
// An active search keeps a bracket [lo, hi): lo is the largest value
// observed feasible (not congested), hi the smallest observed congested
// (the sentinel hiUnknown means none yet). Observations move the bracket
// regardless of the direction that initiated the search, so overshoots
// converge instead of oscillating.
type fineTuner struct {
	gran     float64
	linear   bool      // ablation: fixed steps instead of binary search
	prio     []float64 // smaller = higher priority
	boundary int

	factors []float64

	active bool
	op     int
	dir    int // +1 raising, -1 lowering (for exhaustion bookkeeping)
	lo, hi float64

	// exhaustedUp/Down: operators already settled in that direction this
	// adaptation round.
	exhaustedUp   map[int]bool
	exhaustedDown map[int]bool
}

const hiUnknown = 2.0

func newFineTuner(cfg Config, prio []float64, boundary int) *fineTuner {
	if boundary <= 0 || boundary > len(prio) {
		boundary = len(prio)
	}
	return &fineTuner{
		gran:          1 / float64(cfg.Granularity),
		linear:        cfg.LinearStepping,
		prio:          prio,
		boundary:      boundary,
		exhaustedUp:   make(map[int]bool),
		exhaustedDown: make(map[int]bool),
	}
}

// restartFrom seeds the tuner with the factors currently applied.
func (ft *fineTuner) restartFrom(factors []float64) {
	ft.factors = append([]float64(nil), factors...)
	ft.active = false
	ft.exhaustedUp = make(map[int]bool)
	ft.exhaustedDown = make(map[int]bool)
}

// step consumes the query state observed under the current factors and
// returns the factors to apply next. done=true means the plan is stable.
func (ft *fineTuner) step(state stream.ProxyState, current []float64) ([]float64, bool) {
	if len(current) == len(ft.factors) {
		copy(ft.factors, current)
	}

	if ft.active {
		probed := ft.factors[ft.op]
		switch state {
		case stream.StateStable:
			// The probe landed in the stable band: accept it.
			ft.active = false
			return ft.out(), true
		case stream.StateIdle:
			ft.lo = probed
			if probed >= 1-1e-9 {
				ft.settle(1, +1)
			}
		case stream.StateCongested:
			ft.hi = probed
		}
		if ft.active {
			if ft.bracketClosed() {
				// Apply the best known-feasible value and observe.
				ft.settle(ft.lo, ft.dir)
				return ft.out(), false
			}
			ft.factors[ft.op] = ft.nextProbe()
			return ft.out(), false
		}
		// Fell through: search settled; choose what to do from state.
	}

	switch state {
	case stream.StateStable:
		return ft.out(), true
	case stream.StateIdle:
		if !ft.pick(+1) {
			return ft.out(), true
		}
	case stream.StateCongested:
		if !ft.pick(-1) {
			return ft.out(), true
		}
	}
	ft.factors[ft.op] = ft.nextProbe()
	return ft.out(), false
}

func (ft *fineTuner) out() []float64 {
	return append([]float64(nil), ft.factors...)
}

func (ft *fineTuner) bracketClosed() bool {
	hi := ft.hi
	if hi > 1 {
		hi = 1
	}
	return hi-ft.lo <= ft.gran+1e-12
}

// nextProbe proposes the next trial value inside the bracket: the FFD
// flavour jumps straight to 1 while no congestion has been observed,
// then bisects.
func (ft *fineTuner) nextProbe() float64 {
	if ft.linear {
		// Ablation: walk one granularity step at a time toward the
		// unexplored side of the bracket.
		if ft.dir > 0 {
			return ft.snap(ft.factors[ft.op] + ft.gran)
		}
		return ft.snap(ft.factors[ft.op] - ft.gran)
	}
	if ft.hi >= hiUnknown {
		return 1
	}
	mid := ft.snap((ft.lo + ft.hi) / 2)
	if mid <= ft.lo {
		mid = ft.snap(ft.lo + ft.gran)
	}
	if mid >= ft.hi {
		mid = ft.snap(ft.hi - ft.gran)
	}
	if mid < 0 {
		mid = 0
	}
	return mid
}

// pick selects the next operator to tune: highest priority (lowest score)
// when raising, lowest priority when lowering, among operators whose load
// factor can still move in that direction this round.
func (ft *fineTuner) pick(dir int) bool {
	type cand struct {
		idx   int
		score float64
	}
	var cands []cand
	for i := 0; i < ft.boundary; i++ {
		p := ft.factors[i]
		if dir > 0 && p < 1-1e-9 && !ft.exhaustedUp[i] {
			cands = append(cands, cand{i, ft.prio[i]})
		}
		if dir < 0 && p > 1e-9 && !ft.exhaustedDown[i] {
			cands = append(cands, cand{i, ft.prio[i]})
		}
	}
	if len(cands) == 0 {
		return false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			if dir > 0 {
				return cands[a].score < cands[b].score // raise best reducer first
			}
			return cands[a].score > cands[b].score // lower worst reducer first
		}
		// Ties: deeper operators first when raising (their upstream is
		// already feeding them), shallower first when lowering.
		if dir > 0 {
			return cands[a].idx > cands[b].idx
		}
		return cands[a].idx < cands[b].idx
	})
	ft.active = true
	ft.op = cands[0].idx
	ft.dir = dir
	cur := ft.factors[ft.op]
	if dir > 0 {
		ft.lo, ft.hi = cur, hiUnknown
	} else {
		ft.lo, ft.hi = 0, cur
	}
	return true
}

// settle fixes the active operator's factor, records the direction as
// exhausted for this round, and ends the search.
func (ft *fineTuner) settle(p float64, dir int) {
	ft.factors[ft.op] = ft.snap(p)
	if dir > 0 {
		ft.exhaustedUp[ft.op] = true
	} else {
		ft.exhaustedDown[ft.op] = true
	}
	ft.active = false
}

// snap discretizes a load factor to the tuner's granularity grid.
func (ft *fineTuner) snap(p float64) float64 {
	steps := math.Round(p / ft.gran)
	v := steps * ft.gran
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
