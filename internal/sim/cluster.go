// Cluster-scale deterministic simulation: where Node models one agent
// analytically, Cluster runs hundreds to thousands of REAL agent
// pipelines (stream.Pipeline epochs over columnar batches) against real
// SP engines — receiver, admission controller, checkpoint/recovery
// machinery included — under one shared virtual clock. Scheduling is a
// discrete-event heap: no goroutines race, no wall-clock sleeps happen,
// and two runs of the same compiled spec produce byte-identical result
// logs and decision traces, which is what makes 1000-node failover
// scenarios regression-testable under -race.
package sim

import (
	"bytes"
	"container/heap"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/checkpoint"
	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload/spec"
)

// Simulation metric names (default registry).
const (
	GaugeSimVirtualSeconds = "sim_virtual_seconds"
	CtrSimEvents           = "sim_events_processed"
	CtrSimEpochs           = "sim_epochs_total"
	CtrSimFailovers        = "sim_failovers_total"
)

// simClockBase anchors the virtual clock at a fixed wall instant so
// time-based subsystems (admission token buckets) see identical
// timestamps in every run.
var simClockBase = time.Unix(1_700_000_000, 0)

// ClusterConfig configures a spec-driven cluster run.
type ClusterConfig struct {
	// Scenario is the compiled workload spec (spec.Spec.Compile).
	Scenario *spec.Scenario
	// CheckpointDir, when non-empty, gives every SP a durable
	// snapshot store and exactly-once result log under
	// <dir>/<query>; sp_crash faults then recover from the latest
	// snapshot instead of losing state.
	CheckpointDir string
	// Replay adds recorded wire-v2 traffic captures as additional
	// arrival sources: each capture's connections are split into
	// per-epoch frame runs and fed, one run per virtual epoch, into a
	// dedicated SP for the named query.
	Replay []ReplaySource
	// MaxPending overrides the shippers' replay-buffer bound
	// (0 selects a sim default comfortably above checkpoint cadence
	// plus outage length).
	MaxPending int
}

// ReplaySource is one recorded traffic capture replayed into the sim.
type ReplaySource struct {
	// Query names the canonical query the capture was recorded against.
	Query string
	// Capture is a transport traffic capture (TrafficMagic format).
	Capture []byte
}

// ClusterResult summarizes a completed run.
type ClusterResult struct {
	// Nodes is the number of simulated agents (spec nodes + replayed
	// connections).
	Nodes int
	// Epochs is the number of virtual epochs driven (data + drain).
	Epochs int
	// VirtualSeconds is the virtual time advanced.
	VirtualSeconds float64
	// Events is the number of discrete events processed.
	Events int64
	// WallSeconds is the real time the run took.
	WallSeconds float64
	// NodeEpochsPerSec is the wall-clock simulation throughput in
	// node-epochs per second.
	NodeEpochsPerSec float64
	// Rows is the total number of final result rows across SPs.
	Rows int
	// Failovers counts sp_crash faults executed.
	Failovers int
	// EpochsDelayed/EpochsDegraded sum the SPs' admission activity —
	// how often overload protection actually engaged during the run.
	EpochsDelayed  int64
	EpochsDegraded int64
	// ResultLogs holds one canonical result log per SP (keyed by SP
	// name): rows rendered sorted within each advance batch, so two
	// deterministic runs compare byte-for-byte.
	ResultLogs map[string][]byte
	// Decisions is the canonicalized decision trace of the run
	// (timestamps stripped; ordering and content preserved).
	Decisions []byte
}

// simEvent is one scheduled action. Ordering is (at, prio, seq): faults
// fire before node ticks, node ticks before SP advances, and insertion
// order breaks remaining ties — fully deterministic.
type simEvent struct {
	at   int64 // virtual micros
	prio int
	seq  int
	run  func()
}

const (
	prioFault = iota
	prioNode
	prioAdvance
)

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return e }
func (h eventHeap) peekAt() (int64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// simSP is one simulated stream processor: a real engine behind a real
// receiver, optionally with admission control and durable recovery.
type simSP struct {
	name    string // SP key ("s2s", "spans", "replay:s2s", ...)
	query   string // canonical query name
	engine  *stream.SPEngine
	rc      *transport.Receiver
	admit   *admission.Controller
	rm      *checkpoint.SPRecovery
	store   *checkpoint.Store
	rlog    *checkpoint.ResultLog
	dir     string // checkpoint dir ("" = stateless)
	sources []uint32
	down    bool
	log     bytes.Buffer
	rows    int
}

// clusterNode is one spec node wired to a live pipeline and shipper.
type clusterNode struct {
	spec      *spec.Node
	pipe      *stream.Pipeline
	ship      *transport.DurableShipper
	sp        *simSP
	eventTime int64
	cb        wire.ColumnarBatch
}

// replayNode feeds one recorded connection's epochs into its SP, one
// epoch run per virtual epoch.
type replayNode struct {
	src    uint32
	hello  *wire.Hello
	sp     *simSP
	runs   [][][]byte
	cursor int
	seqs   []uint64 // epoch seq per run (patched into re-hellos)
}

// Cluster is a compiled, ready-to-run simulation.
type Cluster struct {
	cfg     ClusterConfig
	sc      *spec.Scenario
	tor     *telemetry.ToRTable
	now     int64 // virtual micros
	seq     int
	events  eventHeap
	sps     map[string]*simSP
	spOrder []string
	nodes   []*clusterNode
	replays []*replayNode

	failovers int
	nEvents   int64

	gVirtual  obs.Gauge
	cEvents   obs.Counter
	cEpochs   obs.Counter
	cFailover obs.Counter
}

// rwConn adapts a (reader, ack-buffer) pair to the receiver's conn
// interface for synchronous flush sessions.
type rwConn struct {
	r *bytes.Reader
	w *bytes.Buffer
}

func (c rwConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c rwConn) Write(p []byte) (int, error) { return c.w.Write(p) }

// NewCluster compiles a ClusterConfig into a runnable simulation.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	sc := cfg.Scenario
	if sc == nil || len(sc.Nodes) == 0 {
		return nil, fmt.Errorf("sim: cluster needs a compiled scenario with nodes")
	}
	maxPending := cfg.MaxPending
	if maxPending <= 0 {
		maxPending = 1024
	}
	reg := obs.Default()
	c := &Cluster{
		cfg: cfg, sc: sc,
		sps:       map[string]*simSP{},
		gVirtual:  reg.Gauge(GaugeSimVirtualSeconds),
		cEvents:   reg.Counter(CtrSimEvents),
		cEpochs:   reg.Counter(CtrSimEpochs),
		cFailover: reg.Counter(CtrSimFailovers),
	}

	// One SP per distinct query, in spec first-use order.
	for _, q := range sc.Queries {
		sp, err := c.newSP(q, q)
		if err != nil {
			return nil, err
		}
		c.sps[q] = sp
		c.spOrder = append(c.spOrder, q)
	}

	// Spec nodes: real pipelines, sequenced durable shippers.
	for i := range sc.Nodes {
		sn := &sc.Nodes[i]
		q, err := c.queryFor(sn.Query)
		if err != nil {
			return nil, err
		}
		pipe, err := stream.NewPipeline(q, stream.DefaultOptions(4.0, 0))
		if err != nil {
			return nil, err
		}
		ones := make([]float64, len(q.Ops))
		for j := range ones {
			ones[j] = 1
		}
		if err := pipe.SetLoadFactors(ones); err != nil {
			return nil, err
		}
		src := uint32(sn.Index + 1)
		ship := transport.NewDurableShipper(src, maxPending)
		cls, _ := admission.ParseClass(sn.Class)
		ship.SetIdentity(sn.Group, cls)
		sp := c.sps[sn.Query]
		sp.sources = append(sp.sources, src)
		sp.rc.RegisterSource(src)
		c.nodes = append(c.nodes, &clusterNode{spec: sn, pipe: pipe, ship: ship, sp: sp})
	}

	// Replay sources: dedicated SPs so recorded watermark timelines
	// never hold back the spec-driven queries.
	for _, rs := range cfg.Replay {
		q, ok := spec.CanonicalQuery(rs.Query)
		if !ok {
			return nil, fmt.Errorf("sim: replay source names unknown query %q", rs.Query)
		}
		name := "replay:" + q
		sp := c.sps[name]
		if sp == nil {
			var err error
			if sp, err = c.newSP(name, q); err != nil {
				return nil, err
			}
			c.sps[name] = sp
			c.spOrder = append(c.spOrder, name)
		}
		conns, err := transport.ReadTrafficCapture(rs.Capture)
		if err != nil {
			return nil, err
		}
		for _, conn := range conns {
			rn, err := newReplayNode(conn, sp)
			if err != nil {
				return nil, err
			}
			sp.sources = append(sp.sources, rn.src)
			sp.rc.RegisterSource(rn.src)
			c.replays = append(c.replays, rn)
		}
	}
	return c, nil
}

// queryFor resolves a canonical query name to a plan. T2T's join table
// is built once to cover every simulated source and peer address, so
// joins hit exactly as they would against a production ToR inventory.
func (c *Cluster) queryFor(name string) (*plan.Query, error) {
	switch name {
	case "s2s":
		return plan.S2SProbe(), nil
	case "t2t":
		return plan.T2TProbe(c.torTable()), nil
	case "log":
		return plan.LogAnalytics(), nil
	case "spans":
		return plan.TraceSpanAgg(), nil
	}
	return nil, fmt.Errorf("sim: unknown canonical query %q", name)
}

// torTable covers the ping workloads' address space: every node's
// source IP plus the peer range any group can draw from.
func (c *Cluster) torTable() *telemetry.ToRTable {
	if c.tor != nil {
		return c.tor
	}
	peers := spec.DefaultSpecPeers
	for i := range c.sc.Spec.Groups {
		g := &c.sc.Spec.Groups[i]
		if g.Skew != nil && g.Skew.Keys > peers {
			peers = g.Skew.Keys
		}
	}
	ips := make([]uint32, 0, len(c.sc.Nodes)+peers)
	for i := range c.sc.Nodes {
		ips = append(ips, 0x0A000000+uint32(c.sc.Nodes[i].Index+1))
	}
	for i := 0; i < peers; i++ {
		ips = append(ips, 0x0B000000+uint32(i))
	}
	c.tor = telemetry.NewToRTable(ips, 40)
	return c.tor
}

// newSP assembles one stream processor for a canonical query.
func (c *Cluster) newSP(name, query string) (*simSP, error) {
	q, err := c.queryFor(query)
	if err != nil {
		return nil, err
	}
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		return nil, err
	}
	sp := &simSP{name: name, query: query, engine: engine}
	sp.rc = transport.NewReceiver(engine)
	sp.rc.SetColumnarExec(true)

	if p := c.sc.Spec.SP; p.AdmitRateMbps > 0 {
		acfg := admission.DefaultConfig()
		acfg.RateBytesPerSec = p.AdmitRateMbps * 1e6 / 8
		acfg.BurstBytes = 2 * acfg.RateBytesPerSec
		if p.AdmitBurstKB > 0 {
			acfg.BurstBytes = p.AdmitBurstKB * 1024
		}
		if p.MaxDelayedEpochs > 0 {
			acfg.MaxDelayedEpochs = p.MaxDelayedEpochs
		}
		acfg.Now = c.virtualNow
		sp.admit = admission.NewController(acfg)
		sp.rc.SetAdmission(sp.admit)
	}
	if c.cfg.CheckpointDir != "" {
		sp.dir = filepath.Join(c.cfg.CheckpointDir, sanitizeName(name))
		if err := sp.openRecovery(c.checkpointEvery()); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

func (c *Cluster) checkpointEvery() int {
	if e := c.sc.Spec.SP.CheckpointEvery; e > 0 {
		return e
	}
	return checkpoint.DefaultEvery
}

// virtualNow is the cluster's shared clock, injected into time-based
// subsystems so token buckets refill on virtual time.
func (c *Cluster) virtualNow() time.Time {
	return simClockBase.Add(time.Duration(c.now) * time.Microsecond)
}

func sanitizeName(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if ch == ':' || ch == '/' {
			b[i] = '_'
		}
	}
	return string(b)
}

// openRecovery (re)opens the SP's durable store, result log and
// recovery manager, restoring the latest consistent snapshot.
func (sp *simSP) openRecovery(every int) error {
	store, err := checkpoint.OpenStore(sp.dir)
	if err != nil {
		return err
	}
	rlog, err := checkpoint.OpenResultLog(filepath.Join(sp.dir, "results.log"))
	if err != nil {
		return err
	}
	sp.store, sp.rlog = store, rlog
	sp.rm = checkpoint.NewSPRecovery(store, rlog, sp.engine, sp.rc, every)
	if _, err := sp.rm.Restore(); err != nil {
		return err
	}
	return nil
}

// advance drains delayed epochs, flushes closed windows, and appends
// the new rows to the SP's canonical result log.
func (sp *simSP) advance(epoch int) error {
	var rows telemetry.Batch
	var err error
	if sp.rm != nil {
		rows, err = sp.rm.Advance()
	} else {
		rows = sp.rc.Advance()
	}
	if len(rows) > 0 {
		fmt.Fprintf(&sp.log, "epoch %d\n", epoch)
		sp.log.Write(renderResultRows(rows))
		sp.rows += len(rows)
	}
	return err
}

// crash abandons the SP's live state mid-flight: no final snapshot, no
// result flush — exactly what a process kill leaves behind.
func (sp *simSP) crash() {
	sp.down = true
	if sp.rlog != nil {
		_ = sp.rlog.Close()
	}
	if sp.store != nil {
		_ = sp.store.Close()
	}
	sp.rm, sp.store, sp.rlog = nil, nil, nil
}

// recover rebuilds the SP from durable state (or fresh, when
// stateless) and re-registers its sources. The admission controller
// survives — its budgets are control-plane state, not process state
// worth losing in a sim of SP restarts.
func (sp *simSP) recover(c *Cluster, every int) error {
	q, err := c.queryFor(sp.query)
	if err != nil {
		return err
	}
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		return err
	}
	sp.engine = engine
	sp.rc = transport.NewReceiver(engine)
	sp.rc.SetColumnarExec(true)
	if sp.admit != nil {
		sp.rc.SetAdmission(sp.admit)
	}
	for _, src := range sp.sources {
		sp.rc.RegisterSource(src)
	}
	if sp.dir != "" {
		if err := sp.openRecovery(every); err != nil {
			return err
		}
	}
	sp.down = false
	return nil
}

// newReplayNode splits a recorded connection into per-epoch runs and
// pre-decodes the seq each run ends on (re-hellos carry it so the
// receiver's frontier logic treats every flush as a resumed session).
func newReplayNode(conn *transport.TrafficConn, sp *simSP) (*replayNode, error) {
	helloFrame, runs, err := conn.Epochs()
	if err != nil {
		return nil, err
	}
	hello, _, err := transport.DecodeControl(helloFrame)
	if err != nil {
		return nil, err
	}
	if hello == nil {
		return nil, fmt.Errorf("sim: recorded connection carries no hello")
	}
	rn := &replayNode{src: hello.Source, hello: hello, sp: sp, runs: runs}
	for _, run := range runs {
		_, end, err := transport.DecodeControl(run[len(run)-1])
		if err != nil {
			return nil, err
		}
		if end == nil {
			return nil, fmt.Errorf("sim: recorded epoch run does not end in EpochEnd")
		}
		rn.seqs = append(rn.seqs, end.Seq)
	}
	return rn, nil
}

// tick flushes the node's next recorded epoch into its SP.
func (rn *replayNode) tick() error {
	if rn.cursor >= len(rn.runs) || rn.sp.down {
		return nil
	}
	h := *rn.hello
	if rn.cursor > 0 {
		h.Seq = rn.seqs[rn.cursor-1]
	}
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf)
	rec := telemetry.Record{WireSize: 29, Data: &h}
	if err := fw.WriteFrame(wire.Frame{StreamID: wire.ControlStreamID, Source: h.Source, Records: telemetry.Batch{rec}}); err != nil {
		return err
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	for _, f := range rn.runs[rn.cursor] {
		var hdr [4]byte
		hdr[0] = byte(len(f) >> 24)
		hdr[1] = byte(len(f) >> 16)
		hdr[2] = byte(len(f) >> 8)
		hdr[3] = byte(len(f))
		buf.Write(hdr[:])
		buf.Write(f)
	}
	rn.cursor++
	var ack bytes.Buffer
	return rn.sp.rc.HandleConn(rwConn{bytes.NewReader(buf.Bytes()), &ack})
}

// tick runs one virtual epoch on a spec node: generate (or skip), run
// the real pipeline, ship the epoch, and flush the shipper's pending
// stream synchronously into the SP.
func (n *clusterNode) tick(epoch, dataEpochs int, durMicros int64) error {
	n.eventTime += durMicros
	active := epoch < dataEpochs && n.spec.Active(epoch)
	var res stream.EpochResult
	if active {
		n.cb.Reset()
		n.spec.EmitWindow(durMicros, &n.cb)
		res = n.pipe.RunEpochColumnar(&n.cb)
	} else {
		if epoch < dataEpochs {
			// Churned out: the generator keeps event-time pace silently.
			n.spec.Skip(durMicros)
		}
		n.pipe.ObserveTime(n.eventTime)
		res = n.pipe.RunEpoch(nil)
	}
	if err := n.ship.ShipEpoch(res); err != nil {
		return err
	}
	if n.sp.down {
		// The SP is out: pending epochs accumulate in the replay buffer
		// and drain on the first flush after recovery.
		return nil
	}
	return n.flush()
}

// flush runs one synchronous shipper→SP session: hello + all pending
// epochs in, acks out. A shed epoch requests replay via its ack; one
// immediate re-flush serves it without waiting a full epoch.
func (n *clusterNode) flush() error {
	for attempt := 0; attempt < 2; attempt++ {
		data, err := n.ship.ResumeBytes()
		if err != nil {
			return err
		}
		var ack bytes.Buffer
		if err := n.sp.rc.HandleConn(rwConn{bytes.NewReader(data), &ack}); err != nil {
			return fmt.Errorf("sim: node %d flush: %w", n.spec.Index, err)
		}
		replay, err := n.ship.AdoptAcks(ack.Bytes())
		if err != nil {
			return err
		}
		if !replay {
			return nil
		}
	}
	return nil
}

// schedule pushes an event onto the heap.
func (c *Cluster) schedule(at int64, prio int, run func()) {
	c.seq++
	heap.Push(&c.events, &simEvent{at: at, prio: prio, seq: c.seq, run: run})
}

// Run executes the simulation to completion and returns the canonical
// result. The loop is single-threaded: events pop in (time, priority,
// insertion) order and run inline, so no scheduling nondeterminism can
// leak into the result.
func (c *Cluster) Run() (*ClusterResult, error) {
	wallStart := time.Now()
	obs.Decisions().Reset()

	dur := c.sc.EpochMicros
	dataEpochs := c.sc.Spec.Epochs
	total := dataEpochs + c.sc.DrainEpochs
	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Fault timeline: crashes and their recoveries, scheduled up front.
	// An sp_crash with no query targets every live-spec SP (sorted for
	// schedule determinism); a query targets that SP alone.
	for i := range c.sc.Spec.Faults {
		f := c.sc.Spec.Faults[i]
		if f.Kind != spec.FaultSPCrash {
			continue
		}
		var targets []string
		if f.Query == "" {
			for name := range c.sps {
				if !strings.HasPrefix(name, "replay:") {
					targets = append(targets, name)
				}
			}
			sort.Strings(targets)
		} else if target, ok := spec.CanonicalQuery(f.Query); ok && c.sps[target] != nil {
			targets = append(targets, target)
		}
		outage := f.OutageEpochs
		if outage < 1 {
			outage = 1
		}
		for _, target := range targets {
			sp := c.sps[target]
			c.schedule(int64(f.Epoch)*dur, prioFault, func() {
				if sp.down {
					return
				}
				sp.crash()
				c.failovers++
				c.cFailover.Inc()
				obs.Emit(obs.Decision{
					TsMicros: c.now, Kind: "sim_sp_crash", Cause: "fault_injection",
					Detail: sp.name, Epoch: uint64(c.now / dur),
				})
			})
			back := f.Epoch + outage
			if back < total {
				c.schedule(int64(back)*dur, prioFault, func() {
					if !sp.down {
						return
					}
					fail(sp.recover(c, c.checkpointEvery()))
					obs.Emit(obs.Decision{
						TsMicros: c.now, Kind: "sim_sp_recover", Cause: "outage_elapsed",
						Detail: sp.name, Epoch: uint64(c.now / dur),
					})
				})
			}
		}
	}

	// Node and SP events self-reschedule epoch over epoch, so the heap
	// holds one event per live entity rather than epochs×nodes.
	for _, n := range c.nodes {
		n := n
		var tickFn func()
		tickFn = func() {
			epoch := int(c.now / dur)
			fail(n.tick(epoch, dataEpochs, dur))
			if epoch+1 < total {
				c.schedule(c.now+dur, prioNode, tickFn)
			}
		}
		c.schedule(0, prioNode, tickFn)
	}
	for _, rn := range c.replays {
		rn := rn
		var tickFn func()
		tickFn = func() {
			epoch := int(c.now / dur)
			fail(rn.tick())
			if epoch+1 < total {
				c.schedule(c.now+dur, prioNode, tickFn)
			}
		}
		c.schedule(0, prioNode, tickFn)
	}
	for _, name := range c.spOrder {
		sp := c.sps[name]
		var advFn func()
		advFn = func() {
			epoch := int(c.now / dur)
			if !sp.down {
				fail(sp.advance(epoch))
			}
			if epoch+1 < total {
				c.schedule(c.now+dur, prioAdvance, advFn)
			}
		}
		c.schedule(0, prioAdvance, advFn)
	}

	epochsSeen := int64(0)
	for c.events.Len() > 0 {
		at, _ := c.events.peekAt()
		if at > c.now {
			// The virtual clock jumps straight to the next event: the gap
			// costs nothing, which is the whole point of simulated time.
			if at/dur > c.now/dur {
				c.cEpochs.Add(at/dur - c.now/dur)
				epochsSeen = at / dur
			}
			c.now = at
			c.gVirtual.Set(c.now / 1_000_000)
		}
		ev := heap.Pop(&c.events).(*simEvent)
		ev.run()
		c.nEvents++
		c.cEvents.Inc()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	c.now = int64(total) * dur
	c.gVirtual.Set(c.now / 1_000_000)
	if int64(total) > epochsSeen {
		c.cEpochs.Add(int64(total) - epochsSeen)
	}

	res := &ClusterResult{
		Nodes:          len(c.nodes) + len(c.replays),
		Epochs:         total,
		VirtualSeconds: float64(c.now) / 1e6,
		Events:         c.nEvents,
		Failovers:      c.failovers,
		ResultLogs:     map[string][]byte{},
	}
	for _, name := range c.spOrder {
		sp := c.sps[name]
		res.ResultLogs[name] = append([]byte(nil), sp.log.Bytes()...)
		res.Rows += sp.rows
		if sp.admit != nil {
			res.EpochsDelayed += sp.admit.Counters().Counter(admission.CtrEpochsDelayed).Value()
			res.EpochsDegraded += sp.admit.Counters().Counter(admission.CtrEpochsDegraded).Value()
		}
		if sp.rm != nil {
			_ = sp.rm.Snapshot()
			_ = sp.rm.Close()
		}
		if sp.rlog != nil {
			_ = sp.rlog.Close()
		}
		if sp.store != nil {
			_ = sp.store.Close()
		}
	}
	res.Decisions = renderDecisions(obs.Decisions().Recent(0))
	res.WallSeconds = time.Since(wallStart).Seconds()
	if res.WallSeconds > 0 {
		res.NodeEpochsPerSec = float64(res.Nodes*res.Epochs) / res.WallSeconds
	}
	return res, nil
}

// renderResultRows canonicalizes an advance batch: one line per row,
// sorted, so map-iteration order inside the engine cannot leak into the
// result log.
func renderResultRows(rows telemetry.Batch) []byte {
	lines := make([]string, 0, len(rows))
	for _, rec := range rows {
		row, ok := rec.Data.(*telemetry.AggRow)
		if !ok {
			lines = append(lines, fmt.Sprintf("t=%d other=%T", rec.Time, rec.Data))
			continue
		}
		lines = append(lines, fmt.Sprintf("w=%d key=%d/%q n=%d sum=%g min=%g max=%g",
			row.Window, row.Key.Num, row.Key.Str, row.Count, row.Sum, row.Min, row.Max))
	}
	sort.Strings(lines)
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// renderDecisions canonicalizes the decision trace: wall timestamps are
// stripped (Emit stamps them from the wall clock), everything else —
// order, kinds, causes, sources, state transitions — is preserved, so
// two deterministic runs must produce identical bytes.
func renderDecisions(ds []obs.Decision) []byte {
	var buf bytes.Buffer
	for _, d := range ds {
		fmt.Fprintf(&buf, "seq=%d kind=%s src=%d epoch=%d stage=%d cause=%s before=%v after=%v bstate=%s astate=%s term=%d detail=%s\n",
			d.Seq, d.Kind, d.Source, d.Epoch, d.Stage, d.Cause,
			d.Before, d.After, d.BeforeState, d.AfterState, d.Term, d.Detail)
	}
	return buf.Bytes()
}
