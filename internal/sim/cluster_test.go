package sim

import (
	"bytes"
	"fmt"
	"testing"

	"jarvis/internal/obs"
	"jarvis/internal/plan"
	"jarvis/internal/stream"
	"jarvis/internal/transport"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
	"jarvis/internal/workload/spec"
)

// compileSpec parses and compiles a spec document, failing the test on
// any error.
func compileSpec(t *testing.T, doc string) *spec.Scenario {
	t.Helper()
	s, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatalf("compile spec: %v", err)
	}
	return sc
}

// runCluster compiles the doc fresh (generators are stateful, so each
// run needs its own compilation) and executes it.
func runCluster(t *testing.T, doc string, cfg ClusterConfig) *ClusterResult {
	t.Helper()
	cfg.Scenario = compileSpec(t, doc)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	return res
}

// determinismSpec is a 100-node scenario per canonical query exercising
// the full machinery: mixed SLO classes, gamma arrivals, diurnal
// modulation, hot-key skew, churn, a rate spike, admission control,
// checkpoints, and an SP crash with recovery mid-run.
func determinismSpec(query string) string {
	return fmt.Sprintf(`{
  "name": "determinism-%[1]s",
  "seed": 41,
  "epochs": 8,
  "sp": {"admit_rate_mbps": 20.0, "checkpoint_every": 2},
  "groups": [
    {"name": "fleet", "query": "%[1]s", "nodes": 80, "rate_mbps": 0.05, "class": "best-effort",
     "arrival": {"process": "gamma", "shape": 2},
     "diurnal": {"period_epochs": 6, "amplitude": 0.4},
     "skew": {"exponent": 1.1},
     "churn": {"period_epochs": 3, "fraction": 0.2}},
    {"name": "vip", "query": "%[1]s", "nodes": 20, "rate_mbps": 0.05, "class": "gold"}
  ],
  "faults": [
    {"epoch": 2, "kind": "rate_spike", "group": "fleet", "factor": 4, "until_epoch": 5},
    {"epoch": 3, "kind": "sp_crash", "query": "%[1]s", "outage_epochs": 2}
  ]
}`, query)
}

// TestClusterDeterminismDoubleRun is the core contract: for every
// canonical workload, two independent compilations and runs of the same
// 100-node spec — including an SP crash, checkpoint recovery, admission
// control, churn, and a rate spike — produce byte-identical result logs
// AND byte-identical decision traces. Run under -race in CI; any hidden
// goroutine or wall-clock dependence breaks it.
func TestClusterDeterminismDoubleRun(t *testing.T) {
	for _, query := range []string{"s2s", "t2t", "log", "spans"} {
		t.Run(query, func(t *testing.T) {
			doc := determinismSpec(query)
			r1 := runCluster(t, doc, ClusterConfig{CheckpointDir: t.TempDir()})
			r2 := runCluster(t, doc, ClusterConfig{CheckpointDir: t.TempDir()})

			if r1.Nodes != 100 {
				t.Fatalf("nodes = %d, want 100", r1.Nodes)
			}
			if r1.Rows == 0 {
				t.Fatal("run produced no result rows")
			}
			if r1.Failovers < 1 {
				t.Fatalf("failovers = %d, want >= 1", r1.Failovers)
			}
			if len(r1.ResultLogs) != len(r2.ResultLogs) {
				t.Fatalf("SP count differs: %d vs %d", len(r1.ResultLogs), len(r2.ResultLogs))
			}
			for name, log1 := range r1.ResultLogs {
				log2, ok := r2.ResultLogs[name]
				if !ok {
					t.Fatalf("second run is missing SP %q", name)
				}
				if !bytes.Equal(log1, log2) {
					t.Fatalf("result log %q diverged between runs:\n--- run1 (%d bytes) ---\n%.2000s\n--- run2 (%d bytes) ---\n%.2000s",
						name, len(log1), log1, len(log2), log2)
				}
			}
			if !bytes.Equal(r1.Decisions, r2.Decisions) {
				t.Fatalf("decision traces diverged:\n--- run1 ---\n%.3000s\n--- run2 ---\n%.3000s", r1.Decisions, r2.Decisions)
			}
			if r1.Rows != r2.Rows || r1.Failovers != r2.Failovers ||
				r1.EpochsDelayed != r2.EpochsDelayed || r1.EpochsDegraded != r2.EpochsDegraded {
				t.Fatalf("summary stats diverged: %+v vs %+v", r1, r2)
			}
		})
	}
}

// TestClusterStatelessCrashRecovers crashes an SP that has no durable
// checkpoint dir: recovery comes up with an empty dedup frontier while
// every agent resumes with Seq > 0, so each source presents an
// unfillable sequence hole. The receiver's gap escape must accept the
// jump — across reconnecting sessions — and the SP must keep producing
// rows. Regression: the escape marker used to be wiped on every hello
// (and ping-ponged between two buffered epochs), silencing a
// stateless-recovered SP forever.
func TestClusterStatelessCrashRecovers(t *testing.T) {
	doc := `{
  "name": "stateless-crash", "seed": 7, "epochs": 5,
  "sp": {"admit_rate_mbps": 20.0},
  "groups": [
    {"name": "fleet", "nodes": 40, "query": "s2s", "rate_mbps": 0.05, "class": "best-effort"},
    {"name": "logs", "nodes": 10, "query": "log", "rate_mbps": 0.05, "class": "silver"}],
  "faults": [{"epoch": 3, "kind": "sp_crash", "query": "s2s", "outage_epochs": 2}]
}`
	runOnce := func() *ClusterResult {
		sc := compileSpec(t, doc)
		c, err := NewCluster(ClusterConfig{Scenario: sc})
		if err != nil {
			t.Fatalf("new cluster: %v", err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("cluster run: %v", err)
		}
		return res
	}
	r1 := runOnce()
	if r1.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", r1.Failovers)
	}
	if len(r1.ResultLogs["s2s"]) == 0 {
		t.Fatalf("stateless-recovered SP produced no rows (log empty); total rows %d", r1.Rows)
	}
	r2 := runOnce()
	if !bytes.Equal(r1.ResultLogs["s2s"], r2.ResultLogs["s2s"]) {
		t.Fatalf("stateless crash recovery is nondeterministic: %d vs %d bytes", len(r1.ResultLogs["s2s"]), len(r2.ResultLogs["s2s"]))
	}
}

// TestClusterDegradeDeterministic starves the admission controller so
// the degrade path engages, and requires the overload response itself —
// delays, sketch degradation, the decision trace — to be deterministic.
func TestClusterDegradeDeterministic(t *testing.T) {
	doc := `{
  "name": "degrade",
  "seed": 7,
  "epochs": 6,
  "sp": {"admit_rate_mbps": 0.003, "checkpoint_every": 3},
  "groups": [
    {"name": "noisy", "query": "s2s", "nodes": 16, "rate_mbps": 0.08, "class": "best-effort"},
    {"name": "vip", "query": "s2s", "nodes": 4, "rate_mbps": 0.02, "class": "gold"}
  ]
}`
	r1 := runCluster(t, doc, ClusterConfig{CheckpointDir: t.TempDir()})
	r2 := runCluster(t, doc, ClusterConfig{CheckpointDir: t.TempDir()})
	if r1.EpochsDelayed == 0 && r1.EpochsDegraded == 0 {
		t.Fatalf("admission never engaged (delayed=%d degraded=%d); starve harder", r1.EpochsDelayed, r1.EpochsDegraded)
	}
	if r1.EpochsDelayed != r2.EpochsDelayed || r1.EpochsDegraded != r2.EpochsDegraded {
		t.Fatalf("overload response diverged: delayed %d vs %d, degraded %d vs %d",
			r1.EpochsDelayed, r2.EpochsDelayed, r1.EpochsDegraded, r2.EpochsDegraded)
	}
	if !bytes.Equal(r1.Decisions, r2.Decisions) {
		t.Fatalf("degrade decision traces diverged:\n--- run1 ---\n%.3000s\n--- run2 ---\n%.3000s", r1.Decisions, r2.Decisions)
	}
	for name, log1 := range r1.ResultLogs {
		if !bytes.Equal(log1, r2.ResultLogs[name]) {
			t.Fatalf("result log %q diverged under overload", name)
		}
	}
}

// recordClusterCapture ships a fixed generator stream epoch by epoch
// into a receiver with the traffic recorder armed, exactly as a live
// agent would, and returns the capture.
func recordClusterCapture(t *testing.T, epochs, quietTail int) []byte {
	t.Helper()
	q := plan.S2SProbe()
	engine, err := stream.NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	rc := transport.NewReceiver(engine)
	rc.SetColumnarExec(true)
	rc.RegisterSource(7)
	var capture bytes.Buffer
	tr := transport.NewTrafficRecorder(&capture)
	rc.SetTrafficRecorder(tr)

	pipe, err := stream.NewPipeline(q, stream.DefaultOptions(4.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, len(q.Ops))
	for i := range ones {
		ones[i] = 1
	}
	if err := pipe.SetLoadFactors(ones); err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultPingConfig(42)
	cfg.SrcIP = 0x0A0000FF
	cfg.IntervalMicros = 5_000
	gen := workload.NewPingGen(cfg)
	ship := transport.NewDurableShipper(7, 0)

	const dur = int64(1_000_000)
	var cb wire.ColumnarBatch
	eventTime := int64(0)
	for e := 0; e < epochs+quietTail; e++ {
		eventTime += dur
		var res stream.EpochResult
		if e < epochs {
			cb.Reset()
			gen.NextWindowCols(dur, &cb)
			res = pipe.RunEpochColumnar(&cb)
		} else {
			gen.SkipWindow(dur)
			pipe.ObserveTime(eventTime)
			res = pipe.RunEpoch(nil)
		}
		if err := ship.ShipEpoch(res); err != nil {
			t.Fatal(err)
		}
		data, err := ship.ResumeBytes()
		if err != nil {
			t.Fatal(err)
		}
		var ack bytes.Buffer
		if err := rc.HandleConn(rwConn{bytes.NewReader(data), &ack}); err != nil {
			t.Fatal(err)
		}
		if _, err := ship.AdoptAcks(ack.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return capture.Bytes()
}

// TestClusterReplaySource records a live wire-v2 run and replays it
// into the sim as an arrival source: the dedicated replay SP must apply
// every recorded epoch, produce the same total rows as a direct
// capture replay, and stay byte-deterministic across cluster runs.
func TestClusterReplaySource(t *testing.T) {
	capture := recordClusterCapture(t, 6, 11)

	// Ground truth: replay the capture straight through a fresh receiver.
	engine, err := stream.NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	direct := transport.NewReceiver(engine)
	direct.SetColumnarExec(true)
	direct.RegisterSource(7)
	if _, err := transport.ReplayTraffic(direct, capture); err != nil {
		t.Fatal(err)
	}
	wantRows := len(direct.Advance())
	if wantRows == 0 {
		t.Fatal("direct capture replay produced no rows")
	}

	doc := `{
  "name": "replay-host",
  "seed": 3,
  "epochs": 6,
  "groups": [{"name": "live", "query": "s2s", "nodes": 4, "rate_mbps": 0.05}]
}`
	cfg := ClusterConfig{Replay: []ReplaySource{{Query: "s2s", Capture: capture}}}
	r1 := runCluster(t, doc, cfg)
	r2 := runCluster(t, doc, cfg)

	replayLog, ok := r1.ResultLogs["replay:s2s"]
	if !ok {
		t.Fatalf("no replay SP in result logs: %v", keysOf(r1.ResultLogs))
	}
	gotRows := bytes.Count(replayLog, []byte("\n")) - bytes.Count(replayLog, []byte("epoch "))
	if gotRows != wantRows {
		t.Fatalf("replay SP emitted %d rows, direct replay %d", gotRows, wantRows)
	}
	if !bytes.Equal(replayLog, r2.ResultLogs["replay:s2s"]) {
		t.Fatal("replayed-source result log diverged between cluster runs")
	}
	if liveLog := r1.ResultLogs["s2s"]; len(liveLog) == 0 {
		t.Fatal("live spec query produced no results alongside the replay source")
	}
}

func keysOf(m map[string][]byte) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// TestClusterScale1000 is the headline scale check: a 1000-node
// spec-driven run over every canonical query completes on a shared
// virtual clock — the event loop is single-threaded and sleep-free, so
// virtual time must outrun wall time by a wide margin.
func TestClusterScale1000(t *testing.T) {
	doc := `{
  "name": "scale-1000",
  "seed": 99,
  "epochs": 3,
  "groups": [
    {"name": "ping", "query": "s2s", "nodes": 400, "rate_mbps": 0.01},
    {"name": "tor", "query": "t2t", "nodes": 200, "rate_mbps": 0.01},
    {"name": "logs", "query": "log", "nodes": 200, "rate_mbps": 0.01},
    {"name": "traces", "query": "spans", "nodes": 200, "rate_mbps": 0.01}
  ]
}`
	reg := obs.Default()
	eventsBefore := reg.Counter(CtrSimEvents).Value()
	epochsBefore := reg.Counter(CtrSimEpochs).Value()

	res := runCluster(t, doc, ClusterConfig{})
	if res.Nodes != 1000 {
		t.Fatalf("nodes = %d, want 1000", res.Nodes)
	}
	if res.Rows == 0 {
		t.Fatal("1000-node run produced no rows")
	}
	if res.Epochs != 3+11 {
		t.Fatalf("epochs = %d, want 14", res.Epochs)
	}
	if res.VirtualSeconds != 14 {
		t.Fatalf("virtual seconds = %v, want 14", res.VirtualSeconds)
	}
	// The run simulates 14000 node-epochs; if anything slept on the wall
	// clock the suite would blow right past this generous bound.
	if res.WallSeconds > 120 {
		t.Fatalf("1000-node run took %.1fs wall — something is sleeping", res.WallSeconds)
	}
	if res.NodeEpochsPerSec <= 0 {
		t.Fatalf("throughput %v", res.NodeEpochsPerSec)
	}
	if got := reg.Counter(CtrSimEvents).Value() - eventsBefore; got != res.Events {
		t.Fatalf("sim_events_processed delta = %d, result says %d", got, res.Events)
	}
	if got := reg.Counter(CtrSimEpochs).Value() - epochsBefore; got != int64(res.Epochs) {
		t.Fatalf("sim_epochs_total delta = %d, want %d", got, res.Epochs)
	}
	if got := reg.Gauge(GaugeSimVirtualSeconds).Value(); got != 14 {
		t.Fatalf("sim_virtual_seconds gauge = %d, want 14", got)
	}
	t.Logf("1000 nodes × %d epochs in %.2fs wall (%.0f node-epochs/sec, %d events)",
		res.Epochs, res.WallSeconds, res.NodeEpochsPerSec, res.Events)
}

// TestClusterSoak is the CI soak target: 500 nodes, every workload,
// faults, admission, and checkpoints at once, under -race. It doubles
// as the memory/goroutine-leak canary for the event loop.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	doc := `{
  "name": "soak-500",
  "seed": 1234,
  "epochs": 4,
  "sp": {"admit_rate_mbps": 2.0, "checkpoint_every": 2},
  "groups": [
    {"name": "ping", "query": "s2s", "nodes": 200, "rate_mbps": 0.02, "class": "silver",
     "arrival": {"process": "poisson"}, "churn": {"period_epochs": 2, "fraction": 0.1}},
    {"name": "tor", "query": "t2t", "nodes": 100, "rate_mbps": 0.02, "class": "gold",
     "diurnal": {"period_epochs": 4, "amplitude": 0.5}},
    {"name": "logs", "query": "log", "nodes": 100, "rate_mbps": 0.02, "class": "best-effort",
     "skew": {"exponent": 1.2}},
    {"name": "traces", "query": "spans", "nodes": 100, "rate_mbps": 0.02,
     "arrival": {"process": "weibull", "shape": 0.7}}
  ],
  "faults": [
    {"epoch": 1, "kind": "sp_crash", "query": "s2s", "outage_epochs": 1},
    {"epoch": 2, "kind": "sp_crash", "query": "spans", "outage_epochs": 1},
    {"epoch": 1, "kind": "rate_spike", "group": "logs", "factor": 3, "until_epoch": 3}
  ]
}`
	res := runCluster(t, doc, ClusterConfig{CheckpointDir: t.TempDir()})
	if res.Nodes != 500 {
		t.Fatalf("nodes = %d, want 500", res.Nodes)
	}
	if res.Rows == 0 || res.Failovers != 2 {
		t.Fatalf("rows=%d failovers=%d, want rows>0 failovers=2", res.Rows, res.Failovers)
	}
	t.Logf("soak: 500 nodes × %d epochs, %d rows, %.0f node-epochs/sec",
		res.Epochs, res.Rows, res.NodeEpochsPerSec)
}

// TestClusterScaleNodes pins the spec rescaling helper the CLI's
// -nodes flag uses: totals hit the target and every group survives.
func TestClusterScaleNodes(t *testing.T) {
	s, err := spec.Parse([]byte(determinismSpec("s2s")))
	if err != nil {
		t.Fatal(err)
	}
	s.ScaleNodes(37)
	if got := s.TotalNodes(); got != 37 {
		t.Fatalf("scaled total = %d, want 37", got)
	}
	for i := range s.Groups {
		if s.Groups[i].Nodes < 1 {
			t.Fatalf("group %q scaled to zero", s.Groups[i].Name)
		}
	}
}
