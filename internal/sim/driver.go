package sim

import (
	"jarvis/internal/runtime"
	"jarvis/internal/stream"
)

// Event is a scripted change to the simulated node at a given epoch —
// the resource-condition changes of §VI-C (budget shifts, join-table
// growth, manual resets).
type Event struct {
	// Epoch at which the event fires (0-based, before the epoch runs).
	Epoch int
	// BudgetFrac, when non-nil, sets a new CPU budget.
	BudgetFrac *float64
	// RateMbps, when non-nil, sets a new input rate.
	RateMbps *float64
	// ScaleOpCost multiplies the true cost of operators (index → factor),
	// e.g. the T2T join table growing 10×.
	ScaleOpCost map[int]float64
	// ResetFactors zeroes the load factors (the paper's manual reset at
	// epoch 18 of Fig. 8(b)).
	ResetFactors bool
	// ClearBacklog drops accumulated queues alongside a reset.
	ClearBacklog bool
}

// Budget is a convenience for building budget events.
func Budget(frac float64) *float64 { return &frac }

// TraceEntry records one epoch of a closed-loop run.
type TraceEntry struct {
	Epoch          int
	State          stream.ProxyState
	Phase          runtime.Phase
	Profiled       bool
	Factors        []float64
	ThroughputMbps float64
	OutMbps        float64
	LatencySec     float64
	SpareBudget    float64
}

// Trace is a full closed-loop run.
type Trace []TraceEntry

// Run drives the node with a Jarvis runtime for the given number of
// epochs, applying scripted events. It returns the per-epoch trace.
func Run(node *Node, cfg runtime.Config, epochs int, events []Event) (Trace, error) {
	rt := runtime.New(cfg)
	trace := make(Trace, 0, epochs)
	byEpoch := map[int][]Event{}
	for _, ev := range events {
		byEpoch[ev.Epoch] = append(byEpoch[ev.Epoch], ev)
	}
	for e := 0; e < epochs; e++ {
		for _, ev := range byEpoch[e] {
			applyEvent(node, ev)
		}
		rep := node.RunEpoch()
		act := rt.OnEpoch(node.Observation(rep))
		profiled := false
		if act.SetLoadFactors != nil {
			if err := node.SetFactors(act.SetLoadFactors); err != nil {
				return nil, err
			}
		}
		if act.Profile {
			profiled = true
			pact, err := rt.OnProfile(node.Profile())
			if err != nil {
				return nil, err
			}
			if pact.SetLoadFactors != nil {
				if err := node.SetFactors(pact.SetLoadFactors); err != nil {
					return nil, err
				}
			}
		}
		trace = append(trace, TraceEntry{
			Epoch:          e,
			State:          rep.State,
			Phase:          act.Phase,
			Profiled:       profiled,
			Factors:        node.Factors(),
			ThroughputMbps: rep.ThroughputMbps,
			OutMbps:        rep.OutMbps,
			LatencySec:     rep.LatencySec,
			SpareBudget:    rep.SpareBudgetFrac,
		})
	}
	return trace, nil
}

// RunFixed drives the node with fixed load factors (baseline strategies)
// for the given number of epochs.
func RunFixed(node *Node, factors []float64, epochs int, events []Event) (Trace, error) {
	if err := node.SetFactors(factors); err != nil {
		return nil, err
	}
	byEpoch := map[int][]Event{}
	for _, ev := range events {
		byEpoch[ev.Epoch] = append(byEpoch[ev.Epoch], ev)
	}
	trace := make(Trace, 0, epochs)
	for e := 0; e < epochs; e++ {
		for _, ev := range byEpoch[e] {
			applyEvent(node, ev)
		}
		rep := node.RunEpoch()
		trace = append(trace, TraceEntry{
			Epoch:          e,
			State:          rep.State,
			Factors:        node.Factors(),
			ThroughputMbps: rep.ThroughputMbps,
			OutMbps:        rep.OutMbps,
			LatencySec:     rep.LatencySec,
			SpareBudget:    rep.SpareBudgetFrac,
		})
	}
	return trace, nil
}

func applyEvent(node *Node, ev Event) {
	if ev.BudgetFrac != nil {
		node.SetBudget(*ev.BudgetFrac)
	}
	if ev.RateMbps != nil {
		node.SetRate(*ev.RateMbps)
	}
	for i, f := range ev.ScaleOpCost {
		node.ScaleOpCost(i, f)
	}
	if ev.ResetFactors {
		zero := make([]float64, len(node.factors))
		_ = node.SetFactors(zero)
	}
	if ev.ClearBacklog {
		node.ResetState()
	}
}

// ConvergedAt returns the first epoch at or after 'from' where the query
// is stable and remains stable for 'hold' consecutive epochs, or -1.
func (t Trace) ConvergedAt(from, hold int) int {
	if hold < 1 {
		hold = 1
	}
	run := 0
	for _, e := range t {
		if e.Epoch < from {
			continue
		}
		if e.State == stream.StateStable {
			run++
			if run >= hold {
				return e.Epoch - hold + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// ConvergenceEpochs counts epochs from a change to reconvergence
// (inclusive of detection epochs), or -1 if the run never restabilizes.
func (t Trace) ConvergenceEpochs(changeEpoch, hold int) int {
	at := t.ConvergedAt(changeEpoch, hold)
	if at < 0 {
		return -1
	}
	return at - changeEpoch
}

// MeanThroughput averages throughput over [from, to).
func (t Trace) MeanThroughput(from, to int) float64 {
	var sum float64
	n := 0
	for _, e := range t {
		if e.Epoch >= from && e.Epoch < to {
			sum += e.ThroughputMbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Latencies collects per-epoch latencies over [from, to).
func (t Trace) Latencies(from, to int) []float64 {
	var out []float64
	for _, e := range t {
		if e.Epoch >= from && e.Epoch < to {
			out = append(out, e.LatencySec)
		}
	}
	return out
}
