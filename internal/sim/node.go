// Package sim is a deterministic epoch-level simulator of a Jarvis data
// source node. It models the same quantities as the live engine — per-
// operator flows, a CPU budget, per-stage queues, drain traffic, an
// uplink with finite bandwidth, and proxy state classification — but
// advances them analytically per epoch, which makes scripted resource-
// change scenarios (Fig. 8), latency studies (§VI-E) and operator-count
// sweeps cheap and exactly reproducible.
//
// The simulator also implements the profiling model of §IV-C: during a
// Profile epoch each operator is measured on the share of its input that
// fits in its slice of the budget; operators too expensive to run on all
// records within the epoch get low-quality (biased) estimates — the
// effect that makes "LP only" fail to stabilize in Fig. 8.
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/stream"
)

// NodeConfig configures a simulated data source node.
type NodeConfig struct {
	Query       *plan.Query
	RateMbps    float64
	BudgetFrac  float64
	EpochMicros int64
	// BandwidthMbps is the node's uplink share for this query.
	BandwidthMbps float64
	// DrainedThres/IdleThres mirror the engine thresholds (§IV-C).
	DrainedThres float64
	IdleThres    float64
	Boundary     int
	Seed         uint64
	// ProfileBias controls how strongly low profiling quality corrupts
	// cost estimates (0 disables the error model).
	ProfileBias float64
	// DrainBacklog lets control proxies relieve pending backlogs through
	// the drain path once they exceed the DrainedThres tolerance (the
	// paper's lossless backpressure; §IV-C). Baselines without a drain
	// path at every operator (All-Src, LB-DP) disable it.
	DrainBacklog bool
}

// DefaultNodeConfig mirrors the evaluation setup for a query at a rate.
func DefaultNodeConfig(q *plan.Query, rateMbps, budgetFrac float64) NodeConfig {
	return NodeConfig{
		Query:         q,
		RateMbps:      rateMbps,
		BudgetFrac:    budgetFrac,
		EpochMicros:   1_000_000,
		BandwidthMbps: 20.48,
		DrainedThres:  0.10,
		IdleThres:     0.20,
		Seed:          1,
		ProfileBias:   1.0,
		DrainBacklog:  true,
	}
}

// EpochReport is one simulated epoch's outcome.
type EpochReport struct {
	// Stats per proxy (counts are bytes: ratios are what matters).
	Stats []stream.ProxyStats
	// State is the query-level classification.
	State stream.ProxyState
	// SpareBudgetFrac is the unused budget fraction.
	SpareBudgetFrac float64
	// DrainMbps/ResultMbps/OutMbps are this epoch's outbound rates
	// (offered to the uplink, before bandwidth limiting).
	DrainMbps  float64
	ResultMbps float64
	OutMbps    float64
	// SentMbps is what the uplink actually carried.
	SentMbps float64
	// ThroughputMbps is the input-equivalent data retired end-to-end this
	// epoch (input minus backlog growth).
	ThroughputMbps float64
	// LatencySec estimates the epoch processing latency including
	// compute and network backlogs (§VI-E's metric).
	LatencySec float64
	// BacklogInputMbps is the accumulated backlog in input-equivalent
	// rate terms.
	BacklogInputMbps float64
}

// Node simulates one data source running one query.
type Node struct {
	cfg     NodeConfig
	factors []float64

	costPerByte []float64 // µs per byte entering op i (ground truth)
	relay       []float64 // bytes out / bytes in (ground truth)

	queues    []float64 // pending bytes per stage
	queuesIn  []float64 // same backlog in input-equivalent bytes
	inbox     []float64 // bytes emitted last epoch, arriving this epoch
	inboxIn   []float64
	netQueue  float64 // pending uplink bytes
	netQueueI float64 // input-equivalent of netQueue

	lastArrive []float64 // per-stage arrivals last epoch (profiling)
	rng        *rand.Rand
	epoch      int
}

// NewNode builds a simulated node.
func NewNode(cfg NodeConfig) (*Node, error) {
	q := cfg.Query
	if q == nil {
		return nil, fmt.Errorf("sim: no query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.RefRateMbps <= 0 || q.RecordBytes <= 0 {
		return nil, fmt.Errorf("sim: query %q missing calibration", q.Name)
	}
	if cfg.EpochMicros <= 0 {
		return nil, fmt.Errorf("sim: non-positive epoch")
	}
	if cfg.Boundary <= 0 || cfg.Boundary > len(q.Ops) {
		cfg.Boundary = len(q.Ops)
	}
	m := len(q.Ops)
	n := &Node{
		cfg:         cfg,
		factors:     make([]float64, m),
		costPerByte: make([]float64, m),
		relay:       make([]float64, m),
		queues:      make([]float64, m),
		queuesIn:    make([]float64, m),
		inbox:       make([]float64, m+1),
		inboxIn:     make([]float64, m+1),
		lastArrive:  make([]float64, m),
		rng:         rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xA5A5A5A5)),
	}
	refBytesPerSec := q.RefRateMbps * 1e6 / 8
	w := 1.0
	for i, op := range q.Ops {
		if w <= 1e-12 {
			w = 1e-12
		}
		n.costPerByte[i] = op.CostPct / 100 * 1e6 / (refBytesPerSec * w)
		n.relay[i] = op.RelayBytes
		w *= op.RelayBytes
	}
	return n, nil
}

// Factors returns the node's current load factors.
func (n *Node) Factors() []float64 { return append([]float64(nil), n.factors...) }

// SetFactors applies a new data-level partitioning plan.
func (n *Node) SetFactors(f []float64) error {
	if len(f) != len(n.factors) {
		return fmt.Errorf("sim: %d factors for %d operators", len(f), len(n.factors))
	}
	for i, p := range f {
		if i >= n.cfg.Boundary {
			p = 0
		}
		n.factors[i] = clamp01(p)
	}
	return nil
}

// SetBudget changes the CPU budget fraction (resource availability).
func (n *Node) SetBudget(frac float64) { n.cfg.BudgetFrac = math.Max(0, frac) }

// Budget returns the CPU budget fraction.
func (n *Node) Budget() float64 { return n.cfg.BudgetFrac }

// SetRate changes the input data rate (resource demand shifts).
func (n *Node) SetRate(mbps float64) { n.cfg.RateMbps = math.Max(0, mbps) }

// ScaleOpCost multiplies operator i's true cost (e.g. a join's static
// table grows 10×, §VI-C).
func (n *Node) ScaleOpCost(i int, factor float64) {
	if i >= 0 && i < len(n.costPerByte) && factor > 0 {
		n.costPerByte[i] *= factor
	}
}

// Boundary returns the node's placement boundary.
func (n *Node) Boundary() int { return n.cfg.Boundary }

// ResetState clears all queues (used when an experiment hard-resets).
func (n *Node) ResetState() {
	for i := range n.queues {
		n.queues[i] = 0
		n.queuesIn[i] = 0
	}
	for i := range n.inbox {
		n.inbox[i] = 0
		n.inboxIn[i] = 0
	}
	n.netQueue = 0
	n.netQueueI = 0
}

// RunEpoch advances the simulation one epoch in two phases:
//
//  1. Routing: each proxy splits its arrivals (the input for stage 0,
//     last epoch's upstream emissions otherwise) into a forwarded share
//     that joins the stage queue and a drained share that heads for the
//     uplink.
//  2. Processing: the CPU budget is granted downstream-first — the
//     backpressure discipline of a real dataflow engine, where upstream
//     operators stall rather than burn compute on records the bottleneck
//     cannot absorb. Emissions become next epoch's arrivals.
func (n *Node) RunEpoch() EpochReport {
	m := len(n.factors)
	epochSec := float64(n.cfg.EpochMicros) / 1e6
	inBytes := n.cfg.RateMbps * 1e6 / 8 * epochSec
	budget := n.cfg.BudgetFrac * float64(n.cfg.EpochMicros)

	rep := EpochReport{Stats: make([]stream.ProxyStats, m)}
	prevBacklog := n.backlogInputEq() + inBytes

	// The epoch is simulated in sub-rounds so stages interleave like the
	// live depth-first engine rather than in one coarse stage-ordered
	// pass (which would manufacture multi-epoch phase oscillations).
	const rounds = 8
	var drainBytes, drainIn, resultBytes, resultIn float64
	for i := range n.lastArrive {
		n.lastArrive[i] = 0
	}
	rem := 0.0
	for r := 0; r < rounds; r++ {
		rem += budget / rounds

		// Routing.
		for i := 0; i < m; i++ {
			arrive := n.inbox[i]
			arriveIn := n.inboxIn[i]
			if i == 0 {
				arrive += inBytes / rounds
				arriveIn += inBytes / rounds
			}
			n.inbox[i], n.inboxIn[i] = 0, 0
			n.lastArrive[i] += arrive

			p := n.factors[i]
			if i >= n.cfg.Boundary {
				p = 0
			}
			fwd := arrive * p
			dr := arrive - fwd
			drainBytes += dr
			if arrive > 0 {
				drainIn += arriveIn * (dr / arrive)
				n.queuesIn[i] += arriveIn * (fwd / arrive)
			}
			n.queues[i] += fwd
			rep.Stats[i].In += int(arrive)
			rep.Stats[i].Forwarded += int(fwd)
			rep.Stats[i].Drained += int(dr)
			rep.Stats[i].DrainedBytes += int64(dr)
		}

		// Processing, downstream first (backpressure budget priority).
		for i := m - 1; i >= 0; i-- {
			proc := n.queues[i]
			if n.costPerByte[i] > 0 {
				can := rem / n.costPerByte[i]
				if can < proc {
					proc = can
				}
			}
			procIn := 0.0
			if n.queues[i] > 0 {
				procIn = n.queuesIn[i] * (proc / n.queues[i])
			}
			n.queues[i] -= proc
			n.queuesIn[i] -= procIn
			rem -= proc * n.costPerByte[i]
			if rem < 0 {
				rem = 0
			}
			n.inbox[i+1] += proc * n.relay[i]
			n.inboxIn[i+1] += procIn
			rep.Stats[i].Processed += int(proc)
		}
		resultBytes += n.inbox[m]
		resultIn += n.inboxIn[m]
		n.inbox[m], n.inboxIn[m] = 0, 0
	}
	for i := 0; i < m; i++ {
		rep.Stats[i].Pending = int(n.queues[i])
	}

	// Classify proxies.
	spare := 0.0
	if budget > 0 {
		spare = rem / budget
	}
	wRelay := 1.0
	for i := 0; i < m; i++ {
		st := &rep.Stats[i]
		inRec := math.Max(float64(st.In), 1)
		// An operator is idle when the node has spare compute, nothing is
		// queued for it, and either its proxy withholds records (p < 1)
		// or its upstream starves it (arrivals far below the full flow) —
		// the paper's "operator stays empty" condition.
		starved := n.lastArrive[i] < 0.5*inBytes*wRelay
		switch {
		case float64(st.Pending) > n.cfg.DrainedThres*inRec:
			st.State = stream.StateCongested
		case spare > n.cfg.IdleThres && st.Pending == 0 && i < n.cfg.Boundary &&
			(n.factors[i] < 1 || starved):
			st.State = stream.StateIdle
		default:
			st.State = stream.StateStable
		}
		wRelay *= n.relay[i]
	}
	rep.State = stream.QueryState(rep.Stats[:n.cfg.Boundary])
	rep.SpareBudgetFrac = spare

	// Backlog relief (classification already happened): proxies drain
	// pending records beyond the DrainedThres tolerance to the SP, so
	// backlogs stay bounded and losslessly handled while the congestion
	// signal keeps firing while the overload persists.
	if n.cfg.DrainBacklog {
		for i := 0; i < m; i++ {
			tolerated := n.cfg.DrainedThres * n.lastArrive[i]
			if n.queues[i] > tolerated {
				excess := n.queues[i] - tolerated
				exIn := 0.0
				if n.queues[i] > 0 {
					exIn = n.queuesIn[i] * (excess / n.queues[i])
				}
				n.queues[i] = tolerated
				n.queuesIn[i] -= exIn
				drainBytes += excess
				drainIn += exIn
			}
		}
	}

	// Uplink.
	bwBytes := n.cfg.BandwidthMbps * 1e6 / 8 * epochSec
	offered := drainBytes + resultBytes + n.netQueue
	offeredIn := drainIn + resultIn + n.netQueueI
	sent := offered
	if bwBytes > 0 && sent > bwBytes {
		sent = bwBytes
	}
	frac := 1.0
	if offered > 0 {
		frac = sent / offered
	}
	n.netQueue = offered - sent
	n.netQueueI = offeredIn * (1 - frac)

	rep.DrainMbps = drainBytes * 8 / 1e6 / epochSec
	rep.ResultMbps = resultBytes * 8 / 1e6 / epochSec
	rep.OutMbps = rep.DrainMbps + rep.ResultMbps
	rep.SentMbps = sent * 8 / 1e6 / epochSec

	// Throughput: input retired end-to-end = input − backlog growth.
	backlog := n.backlogInputEq()
	retired := prevBacklog - backlog
	if retired < 0 {
		retired = 0
	}
	rep.ThroughputMbps = retired * 8 / 1e6 / epochSec
	rep.BacklogInputMbps = backlog * 8 / 1e6 / epochSec

	// Epoch processing latency (§VI-E): the wall time until the epoch's
	// results are delivered — transfer time of what was sent plus the
	// time to clear network and compute backlogs at current service
	// rates. A queued byte at stage i still owes the whole downstream
	// pipeline: cost-to-finish dc_i = c_i + r_i·dc_{i+1}.
	lat := 0.0
	if bwBytes > 0 {
		lat += (sent + n.netQueue) / bwBytes * epochSec
	}
	if budget > 0 {
		dc := make([]float64, m+1)
		for i := m - 1; i >= 0; i-- {
			dc[i] = n.costPerByte[i] + n.relay[i]*dc[i+1]
		}
		cpuBacklogMicros := 0.0
		for i := range n.queues {
			cpuBacklogMicros += n.queues[i] * dc[i]
		}
		lat += cpuBacklogMicros / budget * epochSec
	}
	rep.LatencySec = lat

	n.epoch++
	return rep
}

func (n *Node) backlogInputEq() float64 {
	total := n.netQueueI
	for _, q := range n.queuesIn {
		total += q
	}
	for i := 0; i < len(n.inboxIn)-1; i++ {
		total += n.inboxIn[i]
	}
	return total
}

// Observation converts an epoch report into the runtime's protocol.
func (n *Node) Observation(rep EpochReport) runtime.Observation {
	return runtime.Observation{
		Stats:           rep.Stats,
		LoadFactors:     n.Factors(),
		SpareBudgetFrac: rep.SpareBudgetFrac,
		RelayObserved:   append([]float64(nil), n.relay...),
		Boundary:        n.cfg.Boundary,
	}
}

// Profile runs the §IV-C profiling model: each operator gets an equal
// slice of the epoch budget and is measured on however much of its input
// fits. Low coverage biases the cost estimate downward (the operator's
// fixed-cost fraction dominates what little was measured) with jitter —
// reproducing the inaccurate profiles that break "LP only" in Fig. 8.
func (n *Node) Profile() runtime.Estimates {
	m := len(n.factors)
	est := runtime.Estimates{
		CostPct:   make([]float64, m),
		Relay:     make([]float64, m),
		BudgetPct: n.cfg.BudgetFrac * 100,
		Quality:   make([]float64, m),
	}
	slice := n.cfg.BudgetFrac * float64(n.cfg.EpochMicros) / float64(m)
	epochSec := float64(n.cfg.EpochMicros) / 1e6
	// Arrivals at full deployment (what the profiler wants to measure):
	// the full input scaled by upstream relays.
	arrive := n.cfg.RateMbps * 1e6 / 8 * epochSec
	for i := 0; i < m; i++ {
		measurable := arrive
		if n.costPerByte[i] > 0 {
			can := slice / n.costPerByte[i]
			if can < measurable {
				measurable = can
			}
		}
		quality := 1.0
		if arrive > 0 {
			quality = measurable / arrive
		}
		est.Quality[i] = quality

		trueCost := n.costPerByte[i] * arrive / float64(n.cfg.EpochMicros) * 100
		bias := 1.0
		if quality < 1 && n.cfg.ProfileBias > 0 {
			// Partial coverage underestimates the per-record cost: cache
			// warm-up and hash growth costs of the unmeasured tail are
			// missed. Interpolate toward a 45% underestimate at q→0.
			bias = 1 - n.cfg.ProfileBias*0.45*(1-quality)
			bias *= 1 + 0.06*(2*n.rng.Float64()-1)
		}
		est.CostPct[i] = trueCost * bias

		relayJitter := 1.0
		if quality < 1 && n.cfg.ProfileBias > 0 {
			relayJitter = 1 + 0.10*(1-quality)*(2*n.rng.Float64()-1)
		}
		est.Relay[i] = clamp01(n.relay[i] * relayJitter)

		arrive *= n.relay[i] // profiled output feeds the next operator
	}
	return est
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
