package sim

import (
	"fmt"
	"sort"
	"time"

	"jarvis/internal/admission"
	"jarvis/internal/obs"
)

// Multi-tenant overload simulation: a discrete-epoch model of the SP
// edge's admission discipline (the same one internal/transport runs per
// commit — drain first, park behind a non-empty queue, shed the newest
// epoch of the lowest class past the global bound, replay shed epochs
// from the agent's buffer). It exists to answer capacity questions
// deterministically — "what does a 10x hot-tenant spike do to everyone
// else's p99?" — without sockets or wall clocks, and to drive the
// overload soak in CI.

// TenantSpec describes one simulated agent/tenant.
type TenantSpec struct {
	Source uint32
	Name   string
	Class  admission.Class
	// BytesPerEpoch is the tenant's steady-state epoch payload.
	BytesPerEpoch int64
	// During [SpikeFrom, SpikeTo) the tenant ships SpikeFactor times its
	// steady-state bytes (the hot-tenant spike).
	SpikeFrom, SpikeTo int
	SpikeFactor        float64
}

// OverloadConfig parameterizes an overload run.
type OverloadConfig struct {
	Tenants []TenantSpec
	// Epochs is the scripted length of the run; the simulation then keeps
	// running drain-only epochs until every queue is empty (bounded by
	// 4x Epochs) so zero-loss can be asserted.
	Epochs int
	// EpochMicros is the simulated wall time between epochs.
	EpochMicros int64
	// Admission configures the controller; Now is overridden with the
	// simulation clock.
	Admission admission.Config
	// PressureFromLatency closes the same loop jarvis-sp runs in
	// production: every commit's latency feeds a histogram, and a
	// windowed p99 over it (obs.QuantileWindow on the simulation clock)
	// becomes Admission.Pressure. Degradation then requires the
	// *measured* overload signal, not just bucket streaks, and
	// promotion happens once the signal clears. PressureThreshold
	// defaults to half an epoch when unset.
	PressureFromLatency bool
}

// TenantOverloadStats aggregates one tenant's run.
type TenantOverloadStats struct {
	Shipped  int
	Applied  int
	Delayed  int
	Shed     int
	Degraded bool // entered sampled ingestion at any point
	Promoted bool // returned to exact after degrading
	// CommitLatencies holds one entry per applied epoch: simulated
	// seconds from arrival to apply (0 = admitted on the spot).
	CommitLatencies []float64
}

// P99 returns the 99th-percentile commit latency in simulated seconds.
func (s *TenantOverloadStats) P99() float64 { return percentile(s.CommitLatencies, 0.99) }

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(p * float64(len(cp)-1))
	return cp[i]
}

// OverloadResult is the outcome of one simulated overload run.
type OverloadResult struct {
	Tenants map[string]*TenantOverloadStats
	// Jain is the controller's budget-normalized fairness index at the
	// end of the run.
	Jain float64
	// Lost counts epochs that never applied (must be 0: shed epochs
	// replay from the agent's buffer).
	Lost int
	// Controller exposes the run's controller for counter inspection.
	Controller *admission.Controller
}

// simEpoch is one queued or replayable epoch.
type simEpoch struct {
	bytes   int64
	arrival int // epoch index
}

// RunOverload executes the scenario. It is fully deterministic: the
// controller runs on a simulated clock advancing EpochMicros per epoch.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	if len(cfg.Tenants) == 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("sim: overload scenario needs tenants and epochs")
	}
	if cfg.EpochMicros <= 0 {
		cfg.EpochMicros = 1_000_000
	}
	clock := time.Unix(1_700_000_000, 0)
	cfg.Admission.Now = func() time.Time { return clock }
	var feedLat func(float64)
	if cfg.PressureFromLatency && cfg.Admission.Pressure == nil {
		latHist := obs.NewRegistry().Histogram("sim_commit_latency_seconds", obs.StageBounds)
		feedLat = func(sec float64) { latHist.Observe(time.Duration(sec * float64(time.Second))) }
		qw := obs.NewQuantileWindow(latHist,
			5*time.Duration(cfg.EpochMicros)*time.Microsecond,
			time.Duration(cfg.EpochMicros)*time.Microsecond)
		qw.SetNowFunc(func() time.Time { return clock })
		cfg.Admission.Pressure = qw.P99
		if cfg.Admission.PressureThreshold == 0 {
			cfg.Admission.PressureThreshold = float64(cfg.EpochMicros) / 2e6
		}
	}
	ctrl := admission.NewController(cfg.Admission)

	stats := make(map[string]*TenantOverloadStats, len(cfg.Tenants))
	queues := make(map[uint32][]simEpoch)
	replays := make(map[uint32][]simEpoch) // shed epochs, still in the agent's buffer
	queued := 0
	for _, ts := range cfg.Tenants {
		ctrl.Register(ts.Source, ts.Name, ts.Class)
		stats[ts.Name] = &TenantOverloadStats{}
	}
	// Drain priority mirrors the receiver: highest class first.
	order := append([]TenantSpec(nil), cfg.Tenants...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Class != order[j].Class {
			return order[i].Class > order[j].Class
		}
		return order[i].Source < order[j].Source
	})
	epochSec := float64(cfg.EpochMicros) / 1e6

	apply := func(ts TenantSpec, ep simEpoch, now int) {
		st := stats[ts.Name]
		st.Applied++
		lat := float64(now-ep.arrival) * epochSec
		st.CommitLatencies = append(st.CommitLatencies, lat)
		if feedLat != nil {
			feedLat(lat)
		}
	}
	drain := func(now int) {
		for _, ts := range order {
			q := queues[ts.Source]
			for len(q) > 0 && ctrl.TryDrain(ts.Source, q[0].bytes) {
				apply(ts, q[0], now)
				ctrl.NoteDrained(ts.Source)
				q = q[1:]
				queued--
			}
			queues[ts.Source] = q
		}
	}
	shedOverflow := func() {
		for queued > ctrl.MaxDelayed() {
			vi := -1
			for i := len(order) - 1; i >= 0; i-- { // lowest class last in order
				if len(queues[order[i].Source]) > 0 {
					vi = i
				}
			}
			if vi < 0 {
				return
			}
			ts := order[vi]
			q := queues[ts.Source]
			ep := q[len(q)-1]
			queues[ts.Source] = q[:len(q)-1]
			queued--
			stats[ts.Name].Shed++
			ctrl.NoteShed(ts.Source, uint64(ep.arrival), "delay_queue_full", true)
			// The agent still buffers the epoch; it replays next epoch.
			replays[ts.Source] = append(replays[ts.Source], ep)
		}
	}
	offer := func(ts TenantSpec, ep simEpoch, now int) {
		st := stats[ts.Name]
		if len(queues[ts.Source]) > 0 {
			// Order preservation: park behind the queue, keep hysteresis fed.
			ctrl.NoteBacklog(ts.Source, ep.bytes)
			ctrl.NoteDelayed(ts.Source)
			queues[ts.Source] = append(queues[ts.Source], ep)
			queued++
			st.Delayed++
			shedOverflow()
			return
		}
		switch ctrl.Admit(ts.Source, ep.bytes) {
		case admission.Admitted, admission.AdmittedDegraded:
			apply(ts, ep, now)
		case admission.Delayed:
			ctrl.NoteDelayed(ts.Source)
			queues[ts.Source] = append(queues[ts.Source], ep)
			queued++
			st.Delayed++
			shedOverflow()
		}
	}

	degradedEver := make(map[string]bool)
	maxEpochs := 4 * cfg.Epochs
	for e := 0; e < maxEpochs; e++ {
		clock = clock.Add(time.Duration(cfg.EpochMicros) * time.Microsecond)
		drain(e)
		// Agents replay shed epochs before shipping new ones. Take the
		// pending list first: offer can shed an epoch right back into
		// replays (queue still full), and that re-shed copy must survive
		// into the next round, not be clobbered after the loop.
		for _, ts := range order {
			pend := replays[ts.Source]
			replays[ts.Source] = nil
			for _, ep := range pend {
				offer(ts, ep, e)
			}
		}
		if e < cfg.Epochs {
			for _, ts := range cfg.Tenants {
				b := ts.BytesPerEpoch
				if ts.SpikeFactor > 0 && e >= ts.SpikeFrom && e < ts.SpikeTo {
					b = int64(float64(b) * ts.SpikeFactor)
				}
				stats[ts.Name].Shipped++
				offer(ts, simEpoch{bytes: b, arrival: e}, e)
			}
		}
		for _, ts := range cfg.Tenants {
			if ctrl.DegradedRate(ts.Source) > 0 {
				degradedEver[ts.Name] = true
			} else if degradedEver[ts.Name] {
				stats[ts.Name].Promoted = true
			}
		}
		if feedLat != nil {
			// Stall probe: a latency signal fed only by completed commits
			// is blind to epochs stuck in the queue (the overload it
			// exists to detect), so each epoch also observes the current
			// wait of every head-of-queue epoch — the live queue-delay
			// p99 the SP's delay-queue-wait segment measures.
			for _, ts := range cfg.Tenants {
				if q := queues[ts.Source]; len(q) > 0 {
					feedLat(float64(e-q[0].arrival) * epochSec)
				}
			}
		}
		if e >= cfg.Epochs && queued == 0 && pendingReplays(replays) == 0 {
			break
		}
	}

	res := &OverloadResult{Tenants: stats, Jain: ctrl.JainIndex(), Controller: ctrl}
	for name, st := range stats {
		st.Degraded = degradedEver[name]
		res.Lost += st.Shipped - st.Applied
	}
	return res, nil
}

func pendingReplays(replays map[uint32][]simEpoch) int {
	n := 0
	for _, r := range replays {
		n += len(r)
	}
	return n
}

// Decisions returns the process decision log's recent entries — the
// degrade/promote trail an overload run leaves behind.
func Decisions(n int) []obs.Decision { return obs.Decisions().Recent(n) }
