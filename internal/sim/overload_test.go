package sim

import (
	"strings"
	"testing"

	"jarvis/internal/admission"
	"jarvis/internal/obs"
)

func overloadTenants(spike float64) []TenantSpec {
	return []TenantSpec{
		{Source: 1, Name: "gold-app", Class: admission.Gold, BytesPerEpoch: 800},
		{Source: 2, Name: "steady", Class: admission.Silver, BytesPerEpoch: 400},
		{Source: 3, Name: "hot", Class: admission.Silver, BytesPerEpoch: 400,
			SpikeFrom: 10, SpikeTo: 25, SpikeFactor: spike},
	}
}

func overloadConfig(spike float64) OverloadConfig {
	return OverloadConfig{
		Tenants:     overloadTenants(spike),
		Epochs:      40,
		EpochMicros: 1_000_000,
		Admission: admission.Config{
			RateBytesPerSec: 1000, BurstBytes: 1000,
			// A tight global queue bound so the spike also exercises
			// shed-and-replay, not just delaying.
			MaxDelayedEpochs: 2,
			DegradeAfter:     3, PromoteAfter: 4, DegradeRate: 0.25,
		},
	}
}

// TestOverloadScenarioHotTenantSpike is the acceptance scenario: one
// tenant spikes to 10x its budget for 15 epochs. Well-behaved tenants
// must not feel it (p99 commit latency within 1.5x of a spike-free
// baseline), nothing is lost, the hot tenant degrades to sampled
// ingestion and promotes back when the spike ends, both transitions land
// in the decision trace, and fairness recovers to Jain >= 0.9.
func TestOverloadScenarioHotTenantSpike(t *testing.T) {
	obs.Decisions().Reset()
	base, err := RunOverload(overloadConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOverload(overloadConfig(10))
	if err != nil {
		t.Fatal(err)
	}

	if res.Lost != 0 {
		t.Fatalf("lost %d epochs under overload (shed must replay, not drop)", res.Lost)
	}
	for _, name := range []string{"gold-app", "steady"} {
		got, ref := res.Tenants[name].P99(), base.Tenants[name].P99()
		limit := 1.5 * ref
		if limit < 0.001 {
			limit = 0.001 // both runs idle: allow only sub-epoch noise
		}
		if got > limit {
			t.Fatalf("%s p99 = %.3fs under spike, baseline %.3fs (> 1.5x)", name, got, ref)
		}
		if res.Tenants[name].Shed != 0 {
			t.Fatalf("%s (well-behaved) had epochs shed", name)
		}
	}

	hot := res.Tenants["hot"]
	if !hot.Degraded {
		t.Fatal("hot tenant never degraded at 10x budget")
	}
	if !hot.Promoted {
		t.Fatal("hot tenant never promoted back after the spike")
	}
	if hot.Delayed == 0 {
		t.Fatal("hot tenant was never throttled")
	}
	if hot.Shed == 0 {
		t.Fatal("tight queue bound never shed (scenario not exercising replay)")
	}
	if hot.Applied != hot.Shipped {
		t.Fatalf("hot applied %d of %d epochs", hot.Applied, hot.Shipped)
	}
	if hot.P99() <= res.Tenants["steady"].P99() {
		t.Fatal("the spike's queueing cost must land on the hot tenant")
	}

	if res.Jain < 0.9 {
		t.Fatalf("fairness did not recover: Jain = %.3f", res.Jain)
	}
	var sawDegrade, sawPromote bool
	for _, d := range Decisions(512) {
		if !strings.Contains(d.Detail, "tenant=hot") {
			continue
		}
		switch d.Kind {
		case "degrade":
			sawDegrade = true
		case "promote":
			sawPromote = true
		}
	}
	if !sawDegrade || !sawPromote {
		t.Fatalf("decision trace missing hot-tenant transitions (degrade %v, promote %v)", sawDegrade, sawPromote)
	}

	// The spike-free baseline is clean end to end.
	if base.Lost != 0 || base.Tenants["hot"].Degraded || base.Jain < 0.95 {
		t.Fatalf("baseline run not clean: lost %d, degraded %v, jain %.3f",
			base.Lost, base.Tenants["hot"].Degraded, base.Jain)
	}
}

// TestOverloadScenarioPressureGated reruns the hot-tenant spike with the
// full production pressure loop: commit latency feeds a windowed p99
// (obs.QuantileWindow on the simulation clock) that gates degradation.
// The hot tenant must still degrade — the spike genuinely drives the
// measured p99 over threshold — and must promote back once the signal
// clears, with both transitions in the decision trace. A spike-free run
// under the same gate must never degrade anyone: the gate holds low.
func TestOverloadScenarioPressureGated(t *testing.T) {
	obs.Decisions().Reset()
	gated := func(spike float64) OverloadConfig {
		cfg := overloadConfig(spike)
		cfg.PressureFromLatency = true
		return cfg
	}

	base, err := RunOverload(gated(0))
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range base.Tenants {
		if st.Degraded {
			t.Fatalf("pressure gate low, but %s degraded in the calm run", name)
		}
	}

	res, err := RunOverload(gated(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d epochs (shed must replay)", res.Lost)
	}
	hot := res.Tenants["hot"]
	if !hot.Degraded {
		t.Fatal("hot tenant never degraded: the measured p99 should cross the gate during the spike")
	}
	if !hot.Promoted {
		t.Fatal("hot tenant never promoted back after the measured pressure cleared")
	}
	for _, name := range []string{"gold-app", "steady"} {
		if res.Tenants[name].Degraded {
			t.Fatalf("well-behaved tenant %s degraded under the pressure gate", name)
		}
	}
	var sawDegrade, sawPromote bool
	for _, d := range Decisions(512) {
		if !strings.Contains(d.Detail, "tenant=hot") {
			continue
		}
		switch d.Kind {
		case "degrade":
			sawDegrade = true
		case "promote":
			sawPromote = true
		}
	}
	if !sawDegrade || !sawPromote {
		t.Fatalf("decision trace missing pressure-gated transitions (degrade %v, promote %v)", sawDegrade, sawPromote)
	}
}
