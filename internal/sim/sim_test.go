package sim

import (
	"math"
	"testing"

	"jarvis/internal/partition"
	"jarvis/internal/plan"
	"jarvis/internal/runtime"
	"jarvis/internal/stream"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func s2sNode(t *testing.T, budget float64) *Node {
	t.Helper()
	n, err := NewNode(DefaultNodeConfig(plan.S2SProbe(), workload.PingmeshMbps10x, budget))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{}); err == nil {
		t.Fatal("nil query must error")
	}
	cfg := DefaultNodeConfig(plan.S2SProbe(), 26.2, 1)
	cfg.EpochMicros = 0
	if _, err := NewNode(cfg); err == nil {
		t.Fatal("zero epoch must error")
	}
	q := plan.S2SProbe()
	q.RefRateMbps = 0
	if _, err := NewNode(DefaultNodeConfig(q, 26.2, 1)); err == nil {
		t.Fatal("missing calibration must error")
	}
}

func TestNodeAllLocalStable(t *testing.T) {
	n := s2sNode(t, 1.0)
	_ = n.SetFactors([]float64{1, 1, 1})
	var rep EpochReport
	for i := 0; i < 5; i++ {
		rep = n.RunEpoch()
	}
	if rep.State != stream.StateStable {
		t.Fatalf("state = %v", rep.State)
	}
	// Demand 85% → spare ≈ 15%.
	if math.Abs(rep.SpareBudgetFrac-0.15) > 0.02 {
		t.Fatalf("spare = %v", rep.SpareBudgetFrac)
	}
	if math.Abs(rep.ThroughputMbps-26.2) > 0.1 {
		t.Fatalf("throughput = %v", rep.ThroughputMbps)
	}
	// Traffic = aggregates only: 26.2 × 0.86 × 0.30 ≈ 6.76.
	if math.Abs(rep.OutMbps-6.76) > 0.1 {
		t.Fatalf("out = %v", rep.OutMbps)
	}
}

func TestNodeZeroFactorsDrainEverything(t *testing.T) {
	n := s2sNode(t, 1.0)
	rep := n.RunEpoch()
	if math.Abs(rep.DrainMbps-26.2) > 0.01 {
		t.Fatalf("drain = %v", rep.DrainMbps)
	}
	// Idle: spare budget with p<1 everywhere.
	if rep.State != stream.StateIdle {
		t.Fatalf("state = %v", rep.State)
	}
	// Uplink is 20.48 < 26.2: throughput capped by the network.
	for i := 0; i < 20; i++ {
		rep = n.RunEpoch()
	}
	if math.Abs(rep.ThroughputMbps-20.48) > 0.5 {
		t.Fatalf("net-bound throughput = %v", rep.ThroughputMbps)
	}
	if rep.LatencySec < 1 {
		t.Fatalf("latency should grow with net backlog: %v", rep.LatencySec)
	}
}

func TestNodeCongestionUnderTightBudget(t *testing.T) {
	// All-Src semantics: no drain path, backlog accumulates.
	cfg := DefaultNodeConfig(plan.S2SProbe(), workload.PingmeshMbps10x, 0.3)
	cfg.DrainBacklog = false
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = n.SetFactors([]float64{1, 1, 1})
	var rep EpochReport
	var mean float64
	const epochs = 30
	for i := 0; i < epochs; i++ {
		rep = n.RunEpoch()
		if i >= 10 {
			mean += rep.ThroughputMbps
		}
	}
	mean /= epochs - 10
	if rep.State != stream.StateCongested {
		t.Fatalf("state = %v", rep.State)
	}
	// Sustainable throughput ≈ rate × budget/demand = 26.2×0.3/0.85.
	want := 26.2 * 0.3 / 0.85
	if math.Abs(mean-want) > 1.5 {
		t.Fatalf("throughput = %v, want ≈%v", mean, want)
	}
	if rep.LatencySec < 2 {
		t.Fatalf("latency should blow up under congestion: %v", rep.LatencySec)
	}
}

func TestNodeMatchesAnalyticModel(t *testing.T) {
	// The simulator's steady state must agree with partition.Evaluate.
	for _, budget := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		for _, st := range partition.Strategies {
			if st == partition.Jarvis {
				continue // closed-loop, compared elsewhere
			}
			q := plan.S2SProbe()
			factors, err := partition.Factors(st, q, budget, 26.2, 0)
			if err != nil {
				t.Fatal(err)
			}
			sc := partition.Scenario{
				Query: q, RateMbps: 26.2, BudgetFrac: budget, BandwidthMbps: 20.48,
			}
			want, err := partition.Evaluate(sc, factors)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultNodeConfig(q, 26.2, budget)
			cfg.DrainBacklog = false // baselines lack per-op drain relief
			n, err := NewNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			_ = n.SetFactors(factors)
			var tput float64
			const warm, meas = 40, 30
			for i := 0; i < warm; i++ {
				n.RunEpoch()
			}
			for i := 0; i < meas; i++ {
				tput += n.RunEpoch().ThroughputMbps
			}
			tput /= meas
			if math.Abs(tput-want.ThroughputMbps) > 0.08*26.2 {
				t.Fatalf("%v @%v: sim %v vs analytic %v", st, budget, tput, want.ThroughputMbps)
			}
		}
	}
}

func TestProfileAccurateWhenAmple(t *testing.T) {
	n := s2sNode(t, 1.0)
	est := n.Profile()
	// With a full core, W and F profile perfectly.
	if est.Quality[0] < 0.99 || est.CostPct[0] > 1.5 {
		t.Fatalf("W estimate: %+v", est)
	}
	if math.Abs(est.CostPct[1]-13) > 1.5 {
		t.Fatalf("F cost estimate = %v", est.CostPct[1])
	}
	// G+R needs 71%; a 1/3 slice of 100% covers ~47% of its input →
	// quality < 1 and a low-biased estimate.
	if est.Quality[2] > 0.6 {
		t.Fatalf("G+R quality = %v, want < 0.6", est.Quality[2])
	}
	if est.CostPct[2] >= 71 {
		t.Fatalf("G+R estimate %v should be biased low", est.CostPct[2])
	}
	if est.BudgetPct != 100 {
		t.Fatalf("budget = %v", est.BudgetPct)
	}
}

func TestProfileQualityDropsWithBudget(t *testing.T) {
	hi := s2sNode(t, 1.0).Profile()
	lo := s2sNode(t, 0.3).Profile()
	if lo.Quality[2] >= hi.Quality[2] {
		t.Fatalf("G+R quality should fall with budget: %v vs %v", lo.Quality[2], hi.Quality[2])
	}
}

func TestProfileBiasDisabled(t *testing.T) {
	cfg := DefaultNodeConfig(plan.S2SProbe(), 26.2, 0.5)
	cfg.ProfileBias = 0
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := n.Profile()
	if math.Abs(est.CostPct[2]-71) > 0.5 {
		t.Fatalf("unbiased G+R estimate = %v, want 71", est.CostPct[2])
	}
}

func TestClosedLoopConvergesAndAdapts(t *testing.T) {
	// The Fig. 8(a) scenario: start at 10%, jump to 90% at epoch 3, drop
	// to 60% at epoch 18.
	n := s2sNode(t, 0.10)
	trace, err := Run(n, runtime.Defaults(), 35, []Event{
		{Epoch: 3, BudgetFrac: Budget(0.90)},
		{Epoch: 18, BudgetFrac: Budget(0.60)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Converges after the first change within the paper's budget
	// (≈3 detect + profile + adapt ≤ 7 epochs of instability).
	c1 := trace.ConvergenceEpochs(3, 3)
	if c1 < 0 || c1 > 10 {
		t.Fatalf("first change convergence = %d epochs", c1)
	}
	c2 := trace.ConvergenceEpochs(18, 3)
	if c2 < 0 || c2 > 10 {
		t.Fatalf("second change convergence = %d epochs", c2)
	}
	// After converging at 90%, throughput ≈ full input rate.
	if tp := trace.MeanThroughput(14, 18); math.Abs(tp-26.2) > 1.5 {
		t.Fatalf("throughput at 90%% budget = %v", tp)
	}
	// Factors respect the reduced budget at the end.
	last := trace[len(trace)-1]
	demand := 0.0
	e := 1.0
	costs := []float64{1, 13, 71}
	for i, p := range last.Factors {
		e *= p
		demand += e * costs[i]
	}
	if demand > 66 {
		t.Fatalf("final demand %v exceeds 60%% budget band", demand)
	}
}

func TestClosedLoopJarvisBeatsLPOnlyOnT2T(t *testing.T) {
	// Fig. 8(b): with the join table at 500, profiling the expensive J on
	// a slice of the budget is inaccurate; LP-only keeps missing while
	// full Jarvis stabilizes via fine-tuning.
	mkNode := func(seed uint64) *Node {
		ips := make([]uint32, 500)
		for i := range ips {
			ips[i] = uint32(i + 1)
		}
		q := plan.T2TProbe(telemetry.NewToRTable(ips, 20))
		cfg := DefaultNodeConfig(q, workload.PingmeshMbps10x, 1.0)
		cfg.Seed = seed
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	jarvisOK, lpOnlyOK := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		tr, err := Run(mkNode(seed), runtime.Defaults(), 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tr.ConvergedAt(0, 3) >= 0 {
			jarvisOK++
		}
		tr, err = Run(mkNode(seed), runtime.LPOnly(), 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tr.ConvergedAt(0, 3) >= 0 {
			lpOnlyOK++
		}
	}
	if jarvisOK < 4 {
		t.Fatalf("Jarvis stabilized only %d/5 T2T runs", jarvisOK)
	}
	if lpOnlyOK > jarvisOK {
		t.Fatalf("LP-only (%d/5) should not beat Jarvis (%d/5)", lpOnlyOK, jarvisOK)
	}
}

func TestRunFixedBaseline(t *testing.T) {
	n := s2sNode(t, 0.55)
	factors, _ := partition.Factors(partition.BestOP, plan.S2SProbe(), 0.55, 26.2, 0)
	tr, err := RunFixed(n, factors, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Best-OP at 55% runs W+F; traffic 22.5 Mbps exceeds the 20.48 link.
	last := tr[len(tr)-1]
	if math.Abs(last.OutMbps-22.5) > 0.5 {
		t.Fatalf("Best-OP out = %v", last.OutMbps)
	}
	if tp := tr.MeanThroughput(10, 20); tp > 24.5 {
		t.Fatalf("Best-OP should be network capped: %v", tp)
	}
}

func TestEventsApply(t *testing.T) {
	n := s2sNode(t, 0.5)
	_, err := RunFixed(n, []float64{1, 1, 1}, 5, []Event{
		{Epoch: 1, RateMbps: floatPtr(13.1)},
		{Epoch: 2, ScaleOpCost: map[int]float64{2: 2}},
		{Epoch: 3, ResetFactors: true, ClearBacklog: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.RateMbps != 13.1 {
		t.Fatal("rate event not applied")
	}
	for _, p := range n.Factors() {
		if p != 0 {
			t.Fatal("reset event not applied")
		}
	}
	if n.backlogInputEq() != 0 {
		t.Fatal("backlog not cleared")
	}
}

func floatPtr(v float64) *float64 { return &v }

func TestTraceHelpers(t *testing.T) {
	tr := Trace{
		{Epoch: 0, State: stream.StateIdle, ThroughputMbps: 10, LatencySec: 1},
		{Epoch: 1, State: stream.StateStable, ThroughputMbps: 20, LatencySec: 2},
		{Epoch: 2, State: stream.StateStable, ThroughputMbps: 30, LatencySec: 3},
		{Epoch: 3, State: stream.StateCongested, ThroughputMbps: 0, LatencySec: 9},
	}
	if got := tr.ConvergedAt(0, 2); got != 1 {
		t.Fatalf("ConvergedAt = %d", got)
	}
	if got := tr.ConvergenceEpochs(0, 2); got != 1 {
		t.Fatalf("ConvergenceEpochs = %d", got)
	}
	if got := tr.ConvergenceEpochs(3, 2); got != -1 {
		t.Fatalf("never-stable = %d", got)
	}
	if got := tr.MeanThroughput(1, 3); got != 25 {
		t.Fatalf("MeanThroughput = %v", got)
	}
	if got := tr.Latencies(0, 2); len(got) != 2 || got[1] != 2 {
		t.Fatalf("Latencies = %v", got)
	}
	if Trace(nil).MeanThroughput(0, 5) != 0 {
		t.Fatal("empty trace mean")
	}
}

func TestBoundaryEnforcedInSim(t *testing.T) {
	cfg := DefaultNodeConfig(plan.S2SProbe(), 26.2, 1.0)
	cfg.Boundary = 2
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = n.SetFactors([]float64{1, 1, 1})
	if f := n.Factors(); f[2] != 0 {
		t.Fatalf("boundary not enforced: %v", f)
	}
	var rep EpochReport
	for i := 0; i < 6; i++ { // pipelined stages need a few epochs to fill
		rep = n.RunEpoch()
	}
	// Everything crossing the boundary drains: out ≈ 22.5 (0.86 of 26.2).
	if math.Abs(rep.OutMbps-22.5) > 0.5 {
		t.Fatalf("out = %v", rep.OutMbps)
	}
}
