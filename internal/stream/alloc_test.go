package stream

import (
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// Allocation regression guards for the batch-vectorized engine: once the
// pools are warm and the in-process consumer recycles epoch buffers, a
// steady-state epoch must not allocate per record. The legacy record
// path allocated an emit closure per record per stage (~3 allocs/record,
// >100k per epoch at the paper's 10× rate); these bounds would fail
// loudly on any regression back toward that.

func TestSteadyStateEpochAllocs(t *testing.T) {
	p := s2sPipeline(t, 1.5)
	if err := p.SetLoadFactors([]float64{1, 0.9, 0.8}); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(17))
	batch := gen.NextWindow(1_000_000)
	// Warm up: grow scratch buffers, pool inventory and group state.
	for i := 0; i < 3; i++ {
		res := p.RunEpoch(batch)
		res.Recycle()
	}
	avg := testing.AllocsPerRun(50, func() {
		res := p.RunEpoch(batch)
		res.Recycle()
	})
	// The epoch re-feeds the same window, so group state is stable; the
	// only tolerated allocations are small per-epoch headers (stats
	// slice, pool bookkeeping) — nothing proportional to the ~38k input
	// records.
	if avg > 32 {
		t.Fatalf("steady-state epoch allocates %.1f times (want ≤ 32)", avg)
	}
}

func TestWarmAgentPipelineAllocs(t *testing.T) {
	p := s2sPipeline(t, 1.5)
	if err := p.SetLoadFactors([]float64{1, 0.9, 0.8}); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(17))
	var cb wire.ColumnarBatch
	gen.NextWindowCols(1_000_000, &cb)
	// Re-feeding the same columns is safe: the pipeline never writes
	// through shared column arrays (mutation discipline in wire.ColSec).
	for i := 0; i < 3; i++ {
		res := p.RunEpochColumnar(&cb)
		res.Recycle()
	}
	avg := testing.AllocsPerRun(50, func() {
		res := p.RunEpochColumnar(&cb)
		res.Recycle()
	})
	// Same budget as the row epoch: per-epoch headers only, nothing
	// proportional to the ~38k input records — the SoA wave reuses the
	// pipeline's section buffers and selection-vector freelist.
	if avg > 32 {
		t.Fatalf("steady-state columnar agent epoch allocates %.1f times (want ≤ 32)", avg)
	}
}

func TestSteadyStateSPIngestAllocs(t *testing.T) {
	e, err := NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(18))
	batch := gen.NextWindow(1_000_000)
	for i := 0; i < 3; i++ {
		if err := e.Ingest(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := e.Ingest(0, batch); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 8 {
		t.Fatalf("steady-state SP ingest allocates %.1f times (want ≤ 8)", avg)
	}
}

func TestRecycledEpochBuffersAreReused(t *testing.T) {
	p := s2sPipeline(t, 1.5)
	if err := p.SetLoadFactors([]float64{0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(19))
	res := p.RunEpoch(gen.NextWindow(1_000_000))
	if len(res.Drains[0]) == 0 {
		t.Fatal("expected drains at 50% load factor")
	}
	// After recycling, the next epoch may reuse the same backing arrays;
	// the recycled result must no longer reference them.
	res.Recycle()
	if res.Drains != nil || res.Results != nil {
		t.Fatal("recycle must drop buffer references")
	}
	res2 := p.RunEpoch(gen.NextWindow(1_000_000))
	if len(res2.Drains[0]) == 0 {
		t.Fatal("second epoch should drain too")
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := telemetry.GetBatch()
	b = append(b, telemetry.Record{Time: 1})
	grown := cap(b)
	telemetry.PutBatch(b)
	c := telemetry.GetBatch()
	if len(c) != 0 {
		t.Fatal("pooled batch must come back empty")
	}
	if cap(c) < 1 || cap(c) > 1<<20 && grown < 1<<20 {
		t.Fatalf("unexpected capacity %d", cap(c))
	}
}
