// Package stream is Jarvis' lightweight dataflow engine: the substrate
// the paper builds with Apache MiNiFi (data source side) and NiFi (stream
// processor side). A Pipeline executes a query's operator chain with a
// control proxy in front of every operator; compute is metered by a
// token-bucket CPU budget so monitoring work stays within the fraction of
// a core the foreground services leave over (paper §II-B).
package stream

// TokenBucket meters compute within an epoch. One token is one
// core-microsecond: a pipeline with budget fraction b over an epoch of E
// microseconds may consume b·E tokens per epoch.
type TokenBucket struct {
	capacity float64
	tokens   float64
}

// NewTokenBucket creates a bucket holding capacity core-microseconds per
// epoch.
func NewTokenBucket(capacity float64) *TokenBucket {
	if capacity < 0 {
		capacity = 0
	}
	return &TokenBucket{capacity: capacity, tokens: capacity}
}

// Refill restores the bucket to full capacity (called at epoch start).
func (b *TokenBucket) Refill() { b.tokens = b.capacity }

// SetCapacity changes the per-epoch budget (resource availability shifts,
// §II-B) and clamps current tokens to the new capacity.
func (b *TokenBucket) SetCapacity(capacity float64) {
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	if b.tokens > capacity {
		b.tokens = capacity
	}
}

// Capacity returns the per-epoch token capacity.
func (b *TokenBucket) Capacity() float64 { return b.capacity }

// Tokens returns the tokens remaining in this epoch.
func (b *TokenBucket) Tokens() float64 { return b.tokens }

// TryConsume withdraws cost tokens if available and reports success.
func (b *TokenBucket) TryConsume(cost float64) bool {
	if cost < 0 {
		return false
	}
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// FitCount returns how many records at the given per-record cost the
// remaining tokens cover, capped at limit. A non-positive cost fits any
// number of records (the batch path's counterpart of TryConsume(0)).
func (b *TokenBucket) FitCount(cost float64, limit int) int {
	if cost <= 0 {
		return limit
	}
	n := int(b.tokens / cost)
	if n > limit {
		n = limit
	}
	// Guard float rounding so ConsumeN never overdraws.
	for n > 0 && float64(n)*cost > b.tokens {
		n--
	}
	return n
}

// ConsumeN withdraws n records' worth of tokens in one amortized charge.
// Callers size n with FitCount first.
func (b *TokenBucket) ConsumeN(cost float64, n int) {
	if cost <= 0 || n <= 0 {
		return
	}
	b.tokens -= float64(n) * cost
	if b.tokens < 0 {
		b.tokens = 0
	}
}

// Used returns the tokens consumed so far this epoch.
func (b *TokenBucket) Used() float64 { return b.capacity - b.tokens }

// SpareFraction returns the unused fraction of the epoch budget in [0,1].
func (b *TokenBucket) SpareFraction() float64 {
	if b.capacity <= 0 {
		return 0
	}
	return b.tokens / b.capacity
}
