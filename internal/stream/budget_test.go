package stream

import "testing"

func TestTokenBucketBasics(t *testing.T) {
	b := NewTokenBucket(100)
	if b.Capacity() != 100 || b.Tokens() != 100 {
		t.Fatalf("init: %+v", b)
	}
	if !b.TryConsume(60) {
		t.Fatal("consume 60 of 100 should succeed")
	}
	if b.TryConsume(50) {
		t.Fatal("consume 50 of 40 should fail")
	}
	if b.Used() != 60 {
		t.Fatalf("used = %v", b.Used())
	}
	if b.SpareFraction() != 0.4 {
		t.Fatalf("spare = %v", b.SpareFraction())
	}
	b.Refill()
	if b.Tokens() != 100 {
		t.Fatal("refill failed")
	}
}

func TestTokenBucketSetCapacity(t *testing.T) {
	b := NewTokenBucket(100)
	b.SetCapacity(50)
	if b.Tokens() != 50 {
		t.Fatalf("tokens after shrink = %v", b.Tokens())
	}
	b.SetCapacity(200)
	if b.Tokens() != 50 {
		t.Fatal("grow must not mint tokens mid-epoch")
	}
	b.Refill()
	if b.Tokens() != 200 {
		t.Fatal("refill to new capacity")
	}
	b.SetCapacity(-5)
	if b.Capacity() != 0 || b.SpareFraction() != 0 {
		t.Fatal("negative capacity should clamp to zero")
	}
}

func TestTokenBucketEdgeCases(t *testing.T) {
	b := NewTokenBucket(-10)
	if b.Capacity() != 0 {
		t.Fatal("negative capacity clamp")
	}
	if b.TryConsume(-1) {
		t.Fatal("negative cost must fail")
	}
	if !b.TryConsume(0) {
		t.Fatal("zero cost should succeed even on empty bucket")
	}
}
