package stream

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// Checkpointing (paper §IV-E): a data source periodically snapshots the
// intermediate state its stateful operators accumulated for the current
// window, so that after a source failure the stream processor can finish
// the window from the checkpoint instead of losing the partial
// aggregates. Snapshots serialize to the same wire format as drained
// records — a checkpoint is literally "the partial rows that would have
// been drained", tagged with the operator stage that must absorb them.

// Checkpoint is a snapshot of a pipeline's stateful operator state.
type Checkpoint struct {
	// Epoch stamps when the snapshot was taken.
	Epoch int64
	// Watermark is the pipeline's low watermark at snapshot time.
	Watermark int64
	// Stages maps operator stage → partial aggregate rows. In a delta
	// checkpoint, only rows touched since the previous capture.
	Stages map[int]telemetry.Batch
	// Delta marks an incremental capture: Stages holds only state dirtied
	// since the previous capture, interpreted per Meta.
	Delta bool
	// Meta describes, per stage, how delta rows apply to the previous
	// state (only set when Delta).
	Meta map[int]StageDelta
}

// StageDelta describes how one stage's rows in a delta checkpoint apply
// to the base state it extends.
type StageDelta struct {
	// Replace swaps the stage's rows wholesale — used for operators that
	// cannot track per-group dirtiness (e.g. buffered join misses); their
	// delta rows are the full current state, possibly empty.
	Replace bool
	// Closed lists windows the operator flushed since the previous
	// capture; the reconstruction drops their rows.
	Closed []int64
}

// Checkpoint captures the pipeline's stateful operator state without
// disturbing it (state is copied, not drained). The paper notes
// checkpoint frequency trades network traffic for recovery cost; callers
// choose when to invoke this.
func (p *Pipeline) Checkpoint(epoch int64) *Checkpoint {
	cp := &Checkpoint{
		Epoch:     epoch,
		Watermark: p.watermark,
		Stages:    make(map[int]telemetry.Batch),
	}
	for i := 0; i < p.opts.Boundary; i++ {
		g, ok := p.ops[i].(operator.Checkpointable)
		if !ok {
			continue
		}
		if rows := snapshotOp(g); len(rows) > 0 {
			cp.Stages[i] = rows
		}
	}
	return cp
}

// CheckpointDelta captures only the state dirtied since the previous
// capture (full or delta) and starts a new dirty generation. Operators
// that track dirtiness (operator.DeltaCheckpointable) contribute touched
// rows plus closed-window tombstones; other Checkpointable operators are
// captured wholesale in replace mode. Pair with a full Checkpoint +
// MarkSnapshotClean as the chain base.
func (p *Pipeline) CheckpointDelta(epoch int64) *Checkpoint {
	cp := &Checkpoint{
		Epoch:     epoch,
		Watermark: p.watermark,
		Stages:    make(map[int]telemetry.Batch),
		Delta:     true,
		Meta:      make(map[int]StageDelta),
	}
	captureDelta(p.ops[:p.opts.Boundary], cp)
	return cp
}

// MarkSnapshotClean starts a new dirty-tracking generation on every
// delta-capable operator. Call it right after a full Checkpoint capture
// that begins a snapshot chain, so the next CheckpointDelta is relative
// to that capture.
func (p *Pipeline) MarkSnapshotClean() { markClean(p.ops[:p.opts.Boundary]) }

// captureDelta fills a delta checkpoint from the given operators.
func captureDelta(ops []operator.Operator, cp *Checkpoint) {
	for i, op := range ops {
		g, ok := op.(operator.Checkpointable)
		if !ok {
			continue
		}
		dc, isDelta := g.(operator.DeltaCheckpointable)
		var closed []int64
		tracked := false
		if isDelta {
			closed, tracked = dc.ClosedWindows()
		}
		if !tracked {
			// No dirty tracking — or the operator overflowed its
			// tombstone memory (no MarkClean for too long): ship the full
			// state in replace mode (the meta entry is required even when
			// empty, so the reconstruction clears state the operator no
			// longer holds).
			if rows := snapshotOp(g); len(rows) > 0 {
				cp.Stages[i] = rows
			}
			cp.Meta[i] = StageDelta{Replace: true}
			if isDelta {
				dc.MarkClean()
			}
			continue
		}
		dirty := dc.DirtyWindows()
		var rows telemetry.Batch
		if gc, ok := g.(groupCounter); ok {
			total := 0
			for _, w := range dirty {
				total += gc.GroupCount(w)
			}
			rows = make(telemetry.Batch, 0, total)
		}
		for _, w := range dirty {
			dc.SnapshotDirtyWindow(w, func(r telemetry.Record) { rows = append(rows, r) })
		}
		if len(rows) > 0 {
			cp.Stages[i] = rows
		}
		if len(rows) > 0 || len(closed) > 0 {
			cp.Meta[i] = StageDelta{Closed: closed}
		}
		dc.MarkClean()
	}
}

// markClean advances dirty tracking on every delta-capable operator.
func markClean(ops []operator.Operator) {
	for _, op := range ops {
		if dc, ok := op.(operator.DeltaCheckpointable); ok {
			dc.MarkClean()
		}
	}
}

// groupCounter is implemented by stateful operators that can report a
// window's group count (a capacity hint for snapshot batches).
type groupCounter interface {
	GroupCount(window int64) int
}

// snapshotOp captures one Checkpointable operator's open windows into a
// single batch, presized when the operator can report group counts.
func snapshotOp(g operator.Checkpointable) telemetry.Batch {
	windows := g.OpenWindows()
	var rows telemetry.Batch
	if gc, ok := g.(groupCounter); ok {
		total := 0
		for _, w := range windows {
			total += gc.GroupCount(w)
		}
		rows = make(telemetry.Batch, 0, total)
	}
	for _, w := range windows {
		g.SnapshotWindow(w, func(r telemetry.Record) { rows = append(rows, r) })
	}
	return rows
}

// Encode serializes the checkpoint with the wire codec (one frame per
// stage; StreamID carries the stage, Source carries the epoch low bits).
func (cp *Checkpoint) Encode(w io.Writer) error {
	fw := wire.NewFrameWriter(w)
	// Header frame: watermark + epoch via a watermark record.
	hdr := telemetry.Record{
		Time:     cp.Watermark,
		WireSize: 17,
		Data:     &wire.Watermark{Time: cp.Watermark},
	}
	if err := fw.WriteFrame(wire.Frame{
		StreamID: ^uint32(0),
		Source:   uint32(cp.Epoch),
		Records:  telemetry.Batch{hdr},
	}); err != nil {
		return err
	}
	for stage, rows := range cp.Stages {
		if err := fw.WriteFrame(wire.Frame{
			StreamID: uint32(stage),
			Source:   uint32(cp.Epoch),
			Records:  rows,
		}); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// DecodeCheckpoint reads a checkpoint previously written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	fr := wire.NewFrameReader(r)
	first, err := fr.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint header: %w", err)
	}
	if first.StreamID != ^uint32(0) || len(first.Records) != 1 {
		return nil, fmt.Errorf("stream: malformed checkpoint header")
	}
	wm, ok := first.Records[0].Data.(*wire.Watermark)
	if !ok {
		return nil, fmt.Errorf("stream: checkpoint header is not a watermark")
	}
	cp := &Checkpoint{
		Epoch:     int64(first.Source),
		Watermark: wm.Time,
		Stages:    make(map[int]telemetry.Batch),
	}
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return cp, nil
		}
		if err != nil {
			return nil, err
		}
		cp.Stages[int(f.StreamID)] = f.Records
	}
}

// Bytes serializes the checkpoint to a buffer.
func (cp *Checkpoint) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint folds a checkpoint back into this pipeline's own
// operators after a restart: each stage's rows re-enter the operator that
// snapshotted them (partial aggregates merge, buffered join misses
// re-buffer) and the watermark resumes where the snapshot left it.
// Records an operator emits while absorbing its state (e.g. a buffered
// join miss that now hits) are queued at the next stage; they re-enter
// normal budgeted execution on the following epoch.
func (p *Pipeline) RestoreCheckpoint(cp *Checkpoint) error {
	for stage, rows := range cp.Stages {
		if stage < 0 || stage >= len(p.ops) {
			return fmt.Errorf("stream: restore stage %d out of range [0,%d)", stage, len(p.ops))
		}
		// Bulk path: operators that absorb their own snapshot rows in one
		// call (and never emit while doing so) skip the per-record loop.
		if a, ok := p.ops[stage].(operator.SnapshotAbsorber); ok && a.AbsorbSnapshot(rows) {
			continue
		}
		emit := func(out telemetry.Record) {
			if stage+1 < p.opts.Boundary {
				p.queues[stage+1] = append(p.queues[stage+1], out)
			} else {
				p.restored = append(p.restored, out)
			}
		}
		for _, rec := range rows {
			p.ops[stage].Process(rec, emit)
		}
	}
	if cp.Watermark > p.watermark {
		p.watermark = cp.Watermark
	}
	if cp.Watermark > p.maxEventSeen {
		p.maxEventSeen = cp.Watermark
	}
	return nil
}

// SnapshotStages copies every Checkpointable operator's open-window state
// without disturbing it — the SP-side counterpart of Pipeline.Checkpoint,
// used by the recovery manager to take epoch-aligned engine snapshots.
func (e *SPEngine) SnapshotStages() map[int]telemetry.Batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]telemetry.Batch)
	for i, op := range e.ops {
		g, ok := op.(operator.Checkpointable)
		if !ok {
			continue
		}
		if rows := snapshotOp(g); len(rows) > 0 {
			out[i] = rows
		}
	}
	return out
}

// SnapshotStagesDelta captures only the engine state dirtied since the
// previous capture, with per-stage apply metadata — the SP-side
// counterpart of Pipeline.CheckpointDelta. It starts a new dirty
// generation on delta-capable operators.
func (e *SPEngine) SnapshotStagesDelta() (map[int]telemetry.Batch, map[int]StageDelta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := &Checkpoint{Stages: make(map[int]telemetry.Batch), Meta: make(map[int]StageDelta)}
	captureDelta(e.ops, cp)
	return cp.Stages, cp.Meta
}

// MarkSnapshotClean starts a new dirty generation on every delta-capable
// operator; call it after a full SnapshotStages capture that begins a
// snapshot chain.
func (e *SPEngine) MarkSnapshotClean() {
	e.mu.Lock()
	defer e.mu.Unlock()
	markClean(e.ops)
}

// RestoreStage folds snapshot rows back into the operator that captured
// them, using the bulk absorb path when available. Unlike Ingest it does
// not run the rows through downstream operators — restore-time
// emissions (e.g. a buffered join miss that now hits) continue down the
// chain exactly as Ingest would route them.
func (e *SPEngine) RestoreStage(stage int, rows telemetry.Batch) error {
	e.mu.Lock()
	if stage >= 0 && stage < len(e.ops) {
		if a, ok := e.ops[stage].(operator.SnapshotAbsorber); ok && a.AbsorbSnapshot(rows) {
			e.ingestBytes += rows.TotalBytes()
			e.ingestCount += int64(len(rows))
			e.mu.Unlock()
			return nil
		}
	}
	e.mu.Unlock()
	return e.Ingest(stage, rows)
}

// LoadSnapshot atomically replaces the engine's state with a full
// snapshot: every operator is reset, each stage's rows fold back into
// the operator that captured them, and the given per-source watermarks
// are re-observed. The HA standby drives it after each replicated
// snapshot so its shadow engine always mirrors the primary's last
// durable cut; loading sorted stage order keeps restore deterministic.
func (e *SPEngine) LoadSnapshot(stages map[int]telemetry.Batch, watermarks map[uint32]int64) error {
	e.mu.Lock()
	for _, op := range e.ops {
		op.Reset()
	}
	e.sourceWM = make(map[uint32]int64)
	e.results = nil
	e.mu.Unlock()
	stageIDs := make([]int, 0, len(stages))
	for st := range stages {
		stageIDs = append(stageIDs, st)
	}
	sort.Ints(stageIDs)
	for _, st := range stageIDs {
		if err := e.RestoreStage(st, stages[st]); err != nil {
			return fmt.Errorf("stream: load snapshot stage %d: %w", st, err)
		}
	}
	for src, wm := range watermarks {
		e.RegisterSource(src)
		e.ObserveWatermark(src, wm)
	}
	return nil
}

// Restore folds a checkpoint into an SP engine: each stage's partial
// rows merge into the replicated operator, exactly like drained partial
// aggregates would (§V). Use after a source failure to finish its
// in-flight windows.
func (e *SPEngine) Restore(source uint32, cp *Checkpoint) error {
	for stage, rows := range cp.Stages {
		if err := e.Ingest(stage, rows); err != nil {
			return fmt.Errorf("stream: restore stage %d: %w", stage, err)
		}
	}
	e.ObserveWatermark(source, cp.Watermark)
	return nil
}
