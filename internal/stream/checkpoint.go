package stream

import (
	"bytes"
	"fmt"
	"io"

	"jarvis/internal/operator"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// Checkpointing (paper §IV-E): a data source periodically snapshots the
// intermediate state its stateful operators accumulated for the current
// window, so that after a source failure the stream processor can finish
// the window from the checkpoint instead of losing the partial
// aggregates. Snapshots serialize to the same wire format as drained
// records — a checkpoint is literally "the partial rows that would have
// been drained", tagged with the operator stage that must absorb them.

// Checkpoint is a snapshot of a pipeline's stateful operator state.
type Checkpoint struct {
	// Epoch stamps when the snapshot was taken.
	Epoch int64
	// Watermark is the pipeline's low watermark at snapshot time.
	Watermark int64
	// Stages maps operator stage → partial aggregate rows.
	Stages map[int]telemetry.Batch
}

// Checkpoint captures the pipeline's stateful operator state without
// disturbing it (state is copied, not drained). The paper notes
// checkpoint frequency trades network traffic for recovery cost; callers
// choose when to invoke this.
func (p *Pipeline) Checkpoint(epoch int64) *Checkpoint {
	cp := &Checkpoint{
		Epoch:     epoch,
		Watermark: p.watermark,
		Stages:    make(map[int]telemetry.Batch),
	}
	for i := 0; i < p.opts.Boundary; i++ {
		g, ok := p.ops[i].(operator.Checkpointable)
		if !ok {
			continue
		}
		if rows := snapshotOp(g); len(rows) > 0 {
			cp.Stages[i] = rows
		}
	}
	return cp
}

// groupCounter is implemented by stateful operators that can report a
// window's group count (a capacity hint for snapshot batches).
type groupCounter interface {
	GroupCount(window int64) int
}

// snapshotOp captures one Checkpointable operator's open windows into a
// single batch, presized when the operator can report group counts.
func snapshotOp(g operator.Checkpointable) telemetry.Batch {
	windows := g.OpenWindows()
	var rows telemetry.Batch
	if gc, ok := g.(groupCounter); ok {
		total := 0
		for _, w := range windows {
			total += gc.GroupCount(w)
		}
		rows = make(telemetry.Batch, 0, total)
	}
	for _, w := range windows {
		g.SnapshotWindow(w, func(r telemetry.Record) { rows = append(rows, r) })
	}
	return rows
}

// Encode serializes the checkpoint with the wire codec (one frame per
// stage; StreamID carries the stage, Source carries the epoch low bits).
func (cp *Checkpoint) Encode(w io.Writer) error {
	fw := wire.NewFrameWriter(w)
	// Header frame: watermark + epoch via a watermark record.
	hdr := telemetry.Record{
		Time:     cp.Watermark,
		WireSize: 17,
		Data:     &wire.Watermark{Time: cp.Watermark},
	}
	if err := fw.WriteFrame(wire.Frame{
		StreamID: ^uint32(0),
		Source:   uint32(cp.Epoch),
		Records:  telemetry.Batch{hdr},
	}); err != nil {
		return err
	}
	for stage, rows := range cp.Stages {
		if err := fw.WriteFrame(wire.Frame{
			StreamID: uint32(stage),
			Source:   uint32(cp.Epoch),
			Records:  rows,
		}); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// DecodeCheckpoint reads a checkpoint previously written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	fr := wire.NewFrameReader(r)
	first, err := fr.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint header: %w", err)
	}
	if first.StreamID != ^uint32(0) || len(first.Records) != 1 {
		return nil, fmt.Errorf("stream: malformed checkpoint header")
	}
	wm, ok := first.Records[0].Data.(*wire.Watermark)
	if !ok {
		return nil, fmt.Errorf("stream: checkpoint header is not a watermark")
	}
	cp := &Checkpoint{
		Epoch:     int64(first.Source),
		Watermark: wm.Time,
		Stages:    make(map[int]telemetry.Batch),
	}
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return cp, nil
		}
		if err != nil {
			return nil, err
		}
		cp.Stages[int(f.StreamID)] = f.Records
	}
}

// Bytes serializes the checkpoint to a buffer.
func (cp *Checkpoint) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint folds a checkpoint back into this pipeline's own
// operators after a restart: each stage's rows re-enter the operator that
// snapshotted them (partial aggregates merge, buffered join misses
// re-buffer) and the watermark resumes where the snapshot left it.
// Records an operator emits while absorbing its state (e.g. a buffered
// join miss that now hits) are queued at the next stage; they re-enter
// normal budgeted execution on the following epoch.
func (p *Pipeline) RestoreCheckpoint(cp *Checkpoint) error {
	for stage, rows := range cp.Stages {
		if stage < 0 || stage >= len(p.ops) {
			return fmt.Errorf("stream: restore stage %d out of range [0,%d)", stage, len(p.ops))
		}
		emit := func(out telemetry.Record) {
			if stage+1 < p.opts.Boundary {
				p.queues[stage+1] = append(p.queues[stage+1], out)
			} else {
				p.restored = append(p.restored, out)
			}
		}
		for _, rec := range rows {
			p.ops[stage].Process(rec, emit)
		}
	}
	if cp.Watermark > p.watermark {
		p.watermark = cp.Watermark
	}
	if cp.Watermark > p.maxEventSeen {
		p.maxEventSeen = cp.Watermark
	}
	return nil
}

// SnapshotStages copies every Checkpointable operator's open-window state
// without disturbing it — the SP-side counterpart of Pipeline.Checkpoint,
// used by the recovery manager to take epoch-aligned engine snapshots.
func (e *SPEngine) SnapshotStages() map[int]telemetry.Batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]telemetry.Batch)
	for i, op := range e.ops {
		g, ok := op.(operator.Checkpointable)
		if !ok {
			continue
		}
		if rows := snapshotOp(g); len(rows) > 0 {
			out[i] = rows
		}
	}
	return out
}

// Restore folds a checkpoint into an SP engine: each stage's partial
// rows merge into the replicated operator, exactly like drained partial
// aggregates would (§V). Use after a source failure to finish its
// in-flight windows.
func (e *SPEngine) Restore(source uint32, cp *Checkpoint) error {
	for stage, rows := range cp.Stages {
		if err := e.Ingest(stage, rows); err != nil {
			return fmt.Errorf("stream: restore stage %d: %w", stage, err)
		}
	}
	e.ObserveWatermark(source, cp.Watermark)
	return nil
}
