package stream

import (
	"bytes"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func TestCheckpointRoundTrip(t *testing.T) {
	p, err := NewPipeline(plan.S2SProbe(), DefaultOptions(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = p.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(5))
	for e := 0; e < 3; e++ {
		p.RunEpoch(gen.NextWindow(1_000_000))
	}
	cp := p.Checkpoint(3)
	if len(cp.Stages[2]) == 0 {
		t.Fatal("G+R state missing from checkpoint")
	}
	if cp.Watermark == 0 {
		t.Fatal("watermark missing")
	}

	data, err := cp.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Watermark != cp.Watermark {
		t.Fatalf("header: %+v vs %+v", got, cp)
	}
	if len(got.Stages[2]) != len(cp.Stages[2]) {
		t.Fatalf("stage rows: %d vs %d", len(got.Stages[2]), len(cp.Stages[2]))
	}
	for i := range cp.Stages[2] {
		a := cp.Stages[2][i].Data.(*telemetry.AggRow)
		b := got.Stages[2][i].Data.(*telemetry.AggRow)
		if *a != *b {
			t.Fatalf("row %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestCheckpointNonDestructive(t *testing.T) {
	p, err := NewPipeline(plan.S2SProbe(), DefaultOptions(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = p.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(6))
	p.RunEpoch(gen.NextWindow(1_000_000))
	a := p.Checkpoint(1)
	b := p.Checkpoint(1)
	if len(a.Stages[2]) != len(b.Stages[2]) {
		t.Fatal("checkpointing must not consume state")
	}
}

// TestFailureRecovery is the §IV-E scenario: a source dies mid-window;
// the SP restores its last checkpoint plus the records drained since,
// and the window completes with every pre-failure record accounted for.
func TestFailureRecovery(t *testing.T) {
	q := plan.S2SProbe()

	// Reference: a healthy run over the whole window.
	ref := runPartitionedLocal(t, q, 42, -1)

	// Faulty run: the source processes epochs 0..5 locally, checkpoints
	// at epoch 5, then crashes. Epochs 6+ never happen on the source;
	// the generator replays them straight to the SP (the paper's replay
	// from the last successful checkpoint).
	got := runPartitionedLocal(t, q, 42, 5)

	if len(ref) == 0 || len(ref) != len(got) {
		t.Fatalf("row sets differ: %d vs %d", len(got), len(ref))
	}
	for k, want := range ref {
		g := got[k]
		if g.Count != want.Count || g.Min != want.Min || g.Max != want.Max {
			t.Fatalf("group %v: %+v vs %+v", k, g, want)
		}
	}
}

// runPartitionedLocal runs 10 s of data; if crashAt ≥ 0 the source fails
// after that epoch and recovery kicks in.
func runPartitionedLocal(t *testing.T, q *plan.Query, seed uint64, crashAt int) map[telemetry.GroupKey]telemetry.AggRow {
	t.Helper()
	src, err := NewPipeline(q, DefaultOptions(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = src.SetLoadFactors([]float64{1, 1, 1})
	sp, err := NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	sp.RegisterSource(1)
	gen := workload.NewPingGen(workload.DefaultPingConfig(seed))

	var final telemetry.Batch
	crashed := false
	var lastCP *Checkpoint
	for e := 0; e < 14; e++ {
		var batch telemetry.Batch
		if e < 10 {
			batch = gen.NextWindow(1_000_000)
		}
		if crashAt >= 0 && e > crashAt {
			if !crashed {
				crashed = true
				// Recovery: restore the checkpoint into the SP.
				data, err := lastCP.Bytes()
				if err != nil {
					t.Fatal(err)
				}
				cp, err := DecodeCheckpoint(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				if err := sp.Restore(1, cp); err != nil {
					t.Fatal(err)
				}
			}
			// Post-crash records replay directly to the SP's head.
			if len(batch) > 0 {
				if err := sp.Ingest(0, batch); err != nil {
					t.Fatal(err)
				}
			}
			sp.ObserveWatermark(1, int64(e+1)*1_000_000)
			final = append(final, sp.Advance()...)
			continue
		}
		if len(batch) == 0 {
			src.ObserveTime(int64(e+1) * 1_000_000)
		}
		res := src.RunEpoch(batch)
		for stage, d := range res.Drains {
			if len(d) > 0 {
				_ = sp.Ingest(stage, d)
			}
		}
		if len(res.Results) > 0 {
			_ = sp.Ingest(res.ResultStage, res.Results)
		}
		sp.ObserveWatermark(1, res.Watermark)
		final = append(final, sp.Advance()...)
		if crashAt >= 0 && e == crashAt {
			lastCP = src.Checkpoint(int64(e))
		}
	}
	rows := map[telemetry.GroupKey]telemetry.AggRow{}
	for _, r := range final {
		row := r.Data.(*telemetry.AggRow)
		if row.Window != 0 {
			continue
		}
		if prev, ok := rows[row.Key]; ok {
			prev.Merge(*row)
			rows[row.Key] = prev
		} else {
			rows[row.Key] = *row
		}
	}
	return rows
}

func TestDecodeCheckpointErrors(t *testing.T) {
	if _, err := DecodeCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must error")
	}
	// A frame that is not a header.
	var buf bytes.Buffer
	p, _ := NewPipeline(plan.S2SProbe(), DefaultOptions(1, 0))
	cp := p.Checkpoint(0)
	_ = cp.Encode(&buf)
	data := buf.Bytes()
	// Corrupt the stream id of the header frame (bytes 4..8 after len).
	data[4], data[5], data[6], data[7] = 0, 0, 0, 1
	if _, err := DecodeCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("bad header must error")
	}
}
