package stream

import (
	"fmt"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
	"jarvis/internal/workload"
)

// These tests pin the SoA agent pipeline's guarantee: RunEpochColumnar
// over generator-emitted columns produces the same epoch (stats, drains,
// results, watermark, byte and budget accounting) as RunEpoch over the
// row form of the same trace, and an SP replica fed by each path emits
// identical output — on all of the paper's queries, under routing that
// exercises forward, drain and mixed regimes.

// colParityCase pairs a query with row and columnar generators backed by
// identically seeded instances (NextWindowCols is trace-identical to
// NextWindow by construction).
type colParityCase struct {
	name   string
	query  func() *plan.Query
	gen    func() func() telemetry.Batch
	colGen func() func(cb *wire.ColumnarBatch)
}

func colParityCases() []colParityCase {
	pingCfg := workload.DefaultPingConfig(7)
	pingGens := func() (func() telemetry.Batch, func(cb *wire.ColumnarBatch)) {
		g := workload.NewPingGen(workload.DefaultPingConfig(7))
		return func() telemetry.Batch { return g.NextWindow(1_000_000) },
			func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
	}
	cases := []colParityCase{
		{name: "S2SProbe", query: plan.S2SProbe},
		{name: "T2TProbe", query: func() *plan.Query { return plan.T2TProbe(parityTable(pingCfg)) }},
		{name: "S2SQuantile", query: plan.S2SQuantileProbe},
		{
			name:  "TraceSpanAgg",
			query: plan.TraceSpanAgg,
			gen: func() func() telemetry.Batch {
				g := workload.NewSpanGen(workload.DefaultSpanConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
			colGen: func() func(cb *wire.ColumnarBatch) {
				g := workload.NewSpanGen(workload.DefaultSpanConfig(7))
				return func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
			},
		},
		{
			name:  "LogAnalytics",
			query: plan.LogAnalytics,
			gen: func() func() telemetry.Batch {
				g := workload.NewLogGen(workload.DefaultLogConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
			colGen: func() func(cb *wire.ColumnarBatch) {
				g := workload.NewLogGen(workload.DefaultLogConfig(7))
				return func(cb *wire.ColumnarBatch) { g.NextWindowCols(1_000_000, cb) }
			},
		},
	}
	for i := range cases {
		if cases[i].gen == nil {
			cases[i].gen = func() func() telemetry.Batch { r, _ := pingGens(); return r }
			cases[i].colGen = func() func(cb *wire.ColumnarBatch) { _, c := pingGens(); return c }
		}
	}
	return cases
}

// materializeColEpoch folds a columnar epoch's SoA buffers into row form
// in global record order (row drains precede columnar drains per stage;
// flush results precede arrival-survivor columns).
func materializeColEpoch(res EpochResult) (drains []telemetry.Batch, results telemetry.Batch) {
	drains = make([]telemetry.Batch, len(res.Drains))
	for i := range res.Drains {
		drains[i] = append(drains[i], res.Drains[i]...)
		if i < len(res.ColDrains) {
			res.ColDrains[i].AppendRows(&drains[i])
		}
	}
	results = append(results, res.Results...)
	res.ColResults.AppendRows(&results)
	return drains, results
}

func colEpochsEqual(row, col EpochResult) error {
	cd, cr := materializeColEpoch(col)
	for i := range row.Drains {
		if err := batchesEqual(row.Drains[i], cd[i]); err != nil {
			return fmt.Errorf("drains[%d]: %w", i, err)
		}
	}
	if err := batchesEqual(row.Results, cr); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	rowCmp := row
	rowCmp.Drains, rowCmp.Results = nil, nil
	colCmp := col
	colCmp.Drains, colCmp.Results = nil, nil
	colCmp.ColDrains, colCmp.ColResults = nil, wire.ColumnarBatch{}
	return epochsEqual(rowCmp, colCmp)
}

func TestColumnarAgentEpochParity(t *testing.T) {
	for _, tc := range colParityCases() {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.query()
			rowPipe, err := NewPipeline(tc.query(), DefaultOptions(4.0, 0))
			if err != nil {
				t.Fatal(err)
			}
			colPipe, err := NewPipeline(tc.query(), DefaultOptions(4.0, 0))
			if err != nil {
				t.Fatal(err)
			}
			newSP := func() *SPEngine {
				e, err := NewSPEngine(tc.query())
				if err != nil {
					t.Fatal(err)
				}
				e.RegisterSource(1)
				return e
			}
			rowSP, colSP := newSP(), newSP()

			gen, colGen := tc.gen(), tc.colGen()
			nops := len(q.Ops)
			var cb wire.ColumnarBatch
			sawOutput, sawColDrain := false, false
			for epoch := 0; epoch < 13; epoch++ {
				lf := parityFactors(nops, epoch)
				if tc.name == "T2TProbe" {
					// The dstToR join's row-path input is an intermediate
					// payload with no columnar layout (the SoA path fuses both
					// lookups into the first join), so drains at that stage
					// would legitimately differ in form. Routing everything
					// forward there keeps the comparison meaningful — and
					// matches real deployments, where the intermediate has no
					// wire encoding either.
					lf[3] = 1
				}
				if err := rowPipe.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				if err := colPipe.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				cb.Reset()
				var input telemetry.Batch
				if epoch < 11 {
					input = gen()
					colGen(&cb)
				} else {
					rowPipe.ObserveTime(int64(epoch+1) * 1_000_000)
					colPipe.ObserveTime(int64(epoch+1) * 1_000_000)
				}
				rres := rowPipe.RunEpoch(input)
				cres := colPipe.RunEpochColumnar(&cb)
				if err := colEpochsEqual(rres, cres); err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}

				// SP replicas: the row epoch feeds Ingest; the columnar epoch
				// feeds its SoA buffers through IngestColumnar like the
				// receiver would.
				for stage, d := range rres.Drains {
					if len(d) > 0 {
						if err := rowSP.Ingest(stage, d); err != nil {
							t.Fatal(err)
						}
					}
				}
				if len(rres.Results) > 0 {
					if err := rowSP.Ingest(rres.ResultStage, rres.Results); err != nil {
						t.Fatal(err)
					}
				}
				rowSP.ObserveWatermark(1, rres.Watermark)

				for stage := range cres.Drains {
					if len(cres.Drains[stage]) > 0 {
						if err := colSP.Ingest(stage, cres.Drains[stage]); err != nil {
							t.Fatal(err)
						}
					}
					if stage < len(cres.ColDrains) && len(cres.ColDrains[stage].Secs) > 0 {
						sawColDrain = true
						if err := colSP.IngestColumnar(stage, &cres.ColDrains[stage]); err != nil {
							t.Fatal(err)
						}
					}
				}
				if len(cres.Results) > 0 {
					if err := colSP.Ingest(cres.ResultStage, cres.Results); err != nil {
						t.Fatal(err)
					}
				}
				if len(cres.ColResults.Secs) > 0 {
					if err := colSP.IngestColumnar(cres.ResultStage, &cres.ColResults); err != nil {
						t.Fatal(err)
					}
				}
				colSP.ObserveWatermark(1, cres.Watermark)

				rout, cout := rowSP.Advance(), colSP.Advance()
				if err := batchesEqual(rout, cout); err != nil {
					t.Fatalf("epoch %d SP output: %v", epoch, err)
				}
				if len(rout) > 0 {
					sawOutput = true
				}
			}
			if !sawOutput {
				t.Fatal("parity run never flushed results — the test is vacuous")
			}
			if !sawColDrain {
				t.Fatal("columnar path never drained SoA sections — the test is vacuous")
			}
			if rowPipe.PendingTotal() != colPipe.PendingTotal() {
				t.Fatalf("pending %d vs %d", rowPipe.PendingTotal(), colPipe.PendingTotal())
			}
		})
	}
}
