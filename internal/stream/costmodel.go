package stream

import (
	"fmt"

	"jarvis/internal/operator"
	"jarvis/internal/plan"
	"jarvis/internal/workload"
)

// CostModel converts the query's calibrated CostPct hints into per-record
// core-microsecond charges. The hints state "this operator uses X% of one
// core when processing its full input at the reference rate"; dividing by
// the records/second arriving at the operator at that rate yields
// microseconds per record — a rate-independent charge the token bucket
// applies per record.
//
// The simulator uses the same arithmetic, so live-engine runs and
// simulated runs agree by construction; the live engine exists to prove
// the mechanism end to end (queues, proxies, drains, merges), not to
// re-measure the calibration.
type CostModel struct {
	// PerRecordMicros[i] is the token charge for one record entering
	// operator i.
	PerRecordMicros []float64
}

// NewCostModel derives per-record charges from a query's cost hints.
// Operator i's reference arrival rate is the query's reference input
// rate scaled by the relay products of its upstream operators.
func NewCostModel(q *plan.Query) (*CostModel, error) {
	if q.RecordBytes <= 0 || q.RefRateMbps <= 0 {
		return nil, fmt.Errorf("stream: query %q missing reference-rate calibration", q.Name)
	}
	refInput := workload.RecordsPerSec(q.RefRateMbps, q.RecordBytes)
	cm := &CostModel{PerRecordMicros: make([]float64, len(q.Ops))}
	w := 1.0
	for i, op := range q.Ops {
		refArrivals := refInput * w
		if refArrivals <= 0 {
			return nil, fmt.Errorf("stream: operator %d unreachable (zero relay)", i)
		}
		cm.PerRecordMicros[i] = op.CostPct / 100 * 1e6 / refArrivals
		w *= op.RelayBytes
		if w <= 0 {
			w = 1e-12
		}
	}
	return cm, nil
}

// Cost returns the token charge for one record entering operator i.
func (cm *CostModel) Cost(i int) float64 { return cm.PerRecordMicros[i] }

// ScaleOp multiplies operator i's per-record cost by factor (used when a
// join's static table grows at runtime, §VI-C).
func (cm *CostModel) ScaleOp(i int, factor float64) {
	if factor > 0 {
		cm.PerRecordMicros[i] *= factor
	}
}

// DemandPct estimates the CPU percent of one core the whole pipeline
// needs to process its full input at rateMbps (the analytic counterpart
// of plan.TotalCostPct, rate-scaled: halving the input rate halves the
// demand, as in Fig. 10's 5× and 1× settings).
func DemandPct(q *plan.Query, rateMbps float64) float64 {
	if q.RefRateMbps <= 0 {
		return 0
	}
	return plan.TotalCostPct(q) * rateMbps / q.RefRateMbps
}

// OperatorNames lists the operator names in pipeline order (for reports).
func OperatorNames(ops []operator.Operator) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.Name()
	}
	return out
}
