package stream

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// These tests pin the headline refactor guarantee: the batch-vectorized
// execution path and the legacy record-at-a-time path produce identical
// epoch results and identical SP outputs on the paper's three queries,
// under routing (partial load factors), drains, carryover and window
// flushes. Budget is ample in these runs — mid-epoch budget exhaustion
// is the one place the two schedules legitimately diverge (stage-major
// vs record-major spending), and both remain lossless there (covered by
// TestPipelineLosslessAccounting and TestBatchPathLosslessUnderPressure).

// parityTable builds an IP→ToR table covering the ping generator's
// source and a subset of its peers, so T2TProbe's joins both hit and
// miss.
func parityTable(cfg workload.PingConfig) *telemetry.ToRTable {
	ips := []uint32{cfg.SrcIP}
	for i := 0; i < 2000; i++ {
		ips = append(ips, 0x0B000000+uint32(i))
	}
	return telemetry.NewToRTable(ips, 40)
}

// parityCase is one query + input generator pair.
type parityCase struct {
	name  string
	query func() *plan.Query
	gen   func() func() telemetry.Batch
}

func parityCases() []parityCase {
	pingCfg := workload.DefaultPingConfig(7)
	return []parityCase{
		{
			name:  "S2SProbe",
			query: plan.S2SProbe,
			gen: func() func() telemetry.Batch {
				g := workload.NewPingGen(workload.DefaultPingConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
		},
		{
			name:  "T2TProbe",
			query: func() *plan.Query { return plan.T2TProbe(parityTable(pingCfg)) },
			gen: func() func() telemetry.Batch {
				g := workload.NewPingGen(workload.DefaultPingConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
		},
		{
			name:  "LogAnalytics",
			query: plan.LogAnalytics,
			gen: func() func() telemetry.Batch {
				g := workload.NewLogGen(workload.DefaultLogConfig(7))
				return func() telemetry.Batch { return g.NextWindow(1_000_000) }
			},
		},
	}
}

// parityFactors varies the load factors across epochs so routing
// exercises forward, drain and mixed regimes.
func parityFactors(nops, epoch int) []float64 {
	out := make([]float64, nops)
	for i := range out {
		switch epoch % 3 {
		case 0:
			out[i] = 1
		case 1:
			out[i] = 1 - 0.2*float64(i)
		default:
			out[i] = 0.5
		}
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

func batchesEqual(a, b telemetry.Batch) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return fmt.Errorf("record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}

func epochsEqual(legacy, batch EpochResult) error {
	if !reflect.DeepEqual(legacy.Stats, batch.Stats) {
		return fmt.Errorf("stats differ:\n legacy %+v\n batch  %+v", legacy.Stats, batch.Stats)
	}
	if len(legacy.Drains) != len(batch.Drains) {
		return fmt.Errorf("drain stages %d vs %d", len(legacy.Drains), len(batch.Drains))
	}
	for i := range legacy.Drains {
		if err := batchesEqual(legacy.Drains[i], batch.Drains[i]); err != nil {
			return fmt.Errorf("drains[%d]: %w", i, err)
		}
	}
	if err := batchesEqual(legacy.Results, batch.Results); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if legacy.ResultStage != batch.ResultStage {
		return fmt.Errorf("result stage %d vs %d", legacy.ResultStage, batch.ResultStage)
	}
	if legacy.Watermark != batch.Watermark {
		return fmt.Errorf("watermark %d vs %d", legacy.Watermark, batch.Watermark)
	}
	if legacy.DrainedBytes != batch.DrainedBytes || legacy.ResultBytes != batch.ResultBytes {
		return fmt.Errorf("bytes (%d,%d) vs (%d,%d)",
			legacy.DrainedBytes, legacy.ResultBytes, batch.DrainedBytes, batch.ResultBytes)
	}
	// Budget accounting is amortized per batch (n·cost in one charge), so
	// the totals may differ by float rounding only.
	if math.Abs(legacy.BudgetUsedFrac-batch.BudgetUsedFrac) > 1e-9 {
		return fmt.Errorf("budget used %v vs %v", legacy.BudgetUsedFrac, batch.BudgetUsedFrac)
	}
	return nil
}

func TestBatchRecordParity(t *testing.T) {
	for _, tc := range parityCases() {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.query()
			legacyOpts := DefaultOptions(4.0, 0) // ample budget: no exhaustion
			legacyOpts.RecordAtATime = true
			legacy, err := NewPipeline(tc.query(), legacyOpts)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := NewPipeline(tc.query(), DefaultOptions(4.0, 0))
			if err != nil {
				t.Fatal(err)
			}
			legacySP, err := NewSPEngine(tc.query())
			if err != nil {
				t.Fatal(err)
			}
			batchSP, err := NewSPEngine(tc.query())
			if err != nil {
				t.Fatal(err)
			}
			legacySP.RegisterSource(1)
			batchSP.RegisterSource(1)

			gen := tc.gen()
			nops := len(q.Ops)
			sawOutput := false
			for epoch := 0; epoch < 13; epoch++ {
				lf := parityFactors(nops, epoch)
				if err := legacy.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				if err := batch.SetLoadFactors(lf); err != nil {
					t.Fatal(err)
				}
				var input telemetry.Batch
				if epoch < 11 {
					input = gen()
				} else {
					// Quiet epochs close the trailing window.
					legacy.ObserveTime(int64(epoch+1) * 1_000_000)
					batch.ObserveTime(int64(epoch+1) * 1_000_000)
				}
				lres := legacy.RunEpoch(input)
				bres := batch.RunEpoch(input)
				if err := epochsEqual(lres, bres); err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
				// The SP replica fed by each path must also agree.
				feedSP := func(sp *SPEngine, res EpochResult) {
					for stage, d := range res.Drains {
						if len(d) > 0 {
							if err := sp.Ingest(stage, d); err != nil {
								t.Fatal(err)
							}
						}
					}
					if len(res.Results) > 0 {
						if err := sp.Ingest(res.ResultStage, res.Results); err != nil {
							t.Fatal(err)
						}
					}
					sp.ObserveWatermark(1, res.Watermark)
				}
				feedSP(legacySP, lres)
				feedSP(batchSP, bres)
				lout := legacySP.Advance()
				bout := batchSP.Advance()
				if err := batchesEqual(lout, bout); err != nil {
					t.Fatalf("epoch %d SP output: %v", epoch, err)
				}
				if len(lout) > 0 {
					sawOutput = true
				}
			}
			if !sawOutput {
				t.Fatal("parity run never flushed results — the test is vacuous")
			}
			if legacy.PendingTotal() != batch.PendingTotal() {
				t.Fatalf("pending %d vs %d", legacy.PendingTotal(), batch.PendingTotal())
			}
		})
	}
}

// TestBatchPathLosslessUnderPressure checks the batch path's conservation
// property where the schedules diverge: tight budget, full forwarding.
// Every arrival at stage 0 is processed, queued or drained — none lost.
func TestBatchPathLosslessUnderPressure(t *testing.T) {
	p := s2sPipeline(t, 0.3)
	_ = p.SetLoadFactors(onesForS2S())
	gen := workload.NewPingGen(workload.DefaultPingConfig(21))
	totalIn := 0
	var processed, drained int
	for i := 0; i < 6; i++ {
		batch := gen.NextWindow(1_000_000)
		totalIn += len(batch)
		res := p.RunEpoch(batch)
		processed += res.Stats[0].Processed
		drained += res.Stats[0].Drained
	}
	if processed+drained+pendingAt(p, 0) != totalIn {
		t.Fatalf("lost records: in=%d processed=%d drained=%d pending=%d",
			totalIn, processed, drained, pendingAt(p, 0))
	}
	if QueryState(lastStats(p)) != StateCongested && p.PendingTotal() == 0 {
		t.Fatal("30% budget at p=1 should backlog somewhere")
	}
}

func lastStats(p *Pipeline) []ProxyStats {
	res := p.RunEpoch(nil)
	return res.Stats
}
