package stream

import (
	"fmt"
	"jarvis/internal/operator"
	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
)

// Options configures a data-source pipeline.
type Options struct {
	// EpochMicros is the epoch length (paper evaluates with 1 s).
	EpochMicros int64
	// BudgetFrac is the CPU budget as a fraction of one core.
	BudgetFrac float64
	// DrainedThres tolerates this fraction of an epoch's arrivals as
	// pending records before a proxy signals congestion (§IV-C).
	DrainedThres float64
	// IdleThres tolerates this fraction of spare epoch budget before a
	// proxy signals idleness (§IV-C).
	IdleThres float64
	// MaxQueuePerStage bounds each operator queue; overflow is drained to
	// the stream processor (lossless bounded backpressure).
	MaxQueuePerStage int
	// Boundary caps how many leading operators run locally (from the
	// plan rules); proxies beyond it drain everything.
	Boundary int
}

// DefaultOptions mirrors the paper's evaluation setup: 1 s epochs,
// DrainedThres 10% and IdleThres 20%.
func DefaultOptions(budgetFrac float64, boundary int) Options {
	return Options{
		EpochMicros:      1_000_000,
		BudgetFrac:       budgetFrac,
		DrainedThres:     0.10,
		IdleThres:        0.20,
		MaxQueuePerStage: 1 << 18,
		Boundary:         boundary,
	}
}

// EpochResult reports one epoch of pipeline execution.
type EpochResult struct {
	// Stats holds per-proxy counters and states, one per local operator.
	Stats []ProxyStats
	// Drains[i] holds records drained at proxy i; they must be delivered
	// to the stream processor's replica of operator i.
	Drains []telemetry.Batch
	// Results are records emitted past the last local operator.
	Results telemetry.Batch
	// ResultStage is the SP-side operator index Results should enter:
	// the last local operator's own index when it is stateful (partial
	// aggregates merge into the replica), one past it otherwise.
	ResultStage int
	// Watermark is the event-time low watermark after this epoch: all
	// records at or before it have been fully processed or drained.
	Watermark int64
	// BudgetUsedFrac is the fraction of the epoch budget consumed.
	BudgetUsedFrac float64
	// SpareBudgetFrac = 1 − BudgetUsedFrac (0 when the budget is 0).
	SpareBudgetFrac float64
	// DrainedBytes and ResultBytes are the epoch's outbound volumes.
	DrainedBytes int64
	ResultBytes  int64
}

// TotalOutBytes is the epoch's total network transfer from the source.
func (r *EpochResult) TotalOutBytes() int64 { return r.DrainedBytes + r.ResultBytes }

// QueryState classifies the whole pipeline per §IV-C: congested if any
// proxy is congested, idle if all are idle, stable otherwise.
func QueryState(stats []ProxyStats) ProxyState {
	if len(stats) == 0 {
		return StateStable
	}
	allIdle := true
	for _, s := range stats {
		if s.State == StateCongested {
			return StateCongested
		}
		if s.State != StateIdle {
			allIdle = false
		}
	}
	if allIdle {
		return StateIdle
	}
	return StateStable
}

// Pipeline executes the source-side replica of a query: operators with a
// control proxy in front of each, a token-bucket CPU budget, bounded
// queues and drain paths.
type Pipeline struct {
	query   *plan.Query
	ops     []operator.Operator
	proxies []*Proxy
	queues  []telemetry.Batch
	bucket  *TokenBucket
	cm      *CostModel
	opts    Options

	maxEventSeen int64
	watermark    int64

	// epoch scratch, reset by RunEpoch
	drains  []telemetry.Batch
	results telemetry.Batch
}

// NewPipeline compiles a query into a source pipeline. The query should
// already be optimized (plan.Optimize); control proxies are inserted
// between all adjacent operators per §IV-B.
func NewPipeline(q *plan.Query, opts Options) (*Pipeline, error) {
	ops, err := q.Instantiate()
	if err != nil {
		return nil, err
	}
	if opts.EpochMicros <= 0 {
		return nil, fmt.Errorf("stream: non-positive epoch")
	}
	if opts.Boundary <= 0 || opts.Boundary > len(ops) {
		opts.Boundary = len(ops)
	}
	cm, err := NewCostModel(q)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		query:   q,
		ops:     ops,
		proxies: make([]*Proxy, len(ops)),
		queues:  make([]telemetry.Batch, len(ops)),
		bucket:  NewTokenBucket(opts.BudgetFrac * float64(opts.EpochMicros)),
		cm:      cm,
		opts:    opts,
	}
	for i := range p.proxies {
		p.proxies[i] = NewProxy(i) // load factors start at zero (Startup)
	}
	return p, nil
}

// Query returns the compiled query.
func (p *Pipeline) Query() *plan.Query { return p.query }

// Operators exposes the physical operators (read-only use).
func (p *Pipeline) Operators() []operator.Operator { return p.ops }

// CostModel exposes the pipeline's cost model (experiments rescale join
// costs through it).
func (p *Pipeline) CostModel() *CostModel { return p.cm }

// SetBudget changes the CPU budget fraction between epochs.
func (p *Pipeline) SetBudget(frac float64) {
	p.opts.BudgetFrac = frac
	p.bucket.SetCapacity(frac * float64(p.opts.EpochMicros))
}

// Budget returns the current CPU budget fraction.
func (p *Pipeline) Budget() float64 { return p.opts.BudgetFrac }

// LoadFactors returns the current per-proxy load factors.
func (p *Pipeline) LoadFactors() []float64 {
	out := make([]float64, len(p.proxies))
	for i, px := range p.proxies {
		out[i] = px.LoadFactor()
	}
	return out
}

// SetLoadFactors reconfigures all proxies (the runtime's Adapt action).
// Proxies at or past the boundary are forced to zero.
func (p *Pipeline) SetLoadFactors(factors []float64) error {
	if len(factors) != len(p.proxies) {
		return fmt.Errorf("stream: %d load factors for %d proxies", len(factors), len(p.proxies))
	}
	for i, f := range factors {
		if i >= p.opts.Boundary {
			f = 0
		}
		p.proxies[i].SetLoadFactor(f)
	}
	return nil
}

// Boundary returns the number of leading operators allowed to run
// locally.
func (p *Pipeline) Boundary() int { return p.opts.Boundary }

// PendingTotal returns the number of records queued across all stages.
func (p *Pipeline) PendingTotal() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// RunEpoch executes one epoch: drains or processes carried-over pending
// records first, then the epoch's input batch, then advances the
// watermark and flushes closed windows. Lossless: every input record is
// either processed locally, queued, or drained to the SP.
func (p *Pipeline) RunEpoch(input telemetry.Batch) EpochResult {
	p.bucket.Refill()
	p.drains = make([]telemetry.Batch, len(p.ops))
	p.results = nil

	// Carryover: process pending records queued in earlier epochs (they
	// were already committed to local processing).
	for i := range p.queues {
		pending := p.queues[i]
		p.queues[i] = nil
		for k, rec := range pending {
			if !p.processAt(i, rec) {
				// Budget exhausted: requeue this record and the rest.
				p.queues[i] = append(p.queues[i], pending[k:]...)
				break
			}
		}
	}

	// New arrivals.
	for _, rec := range input {
		if rec.Time > p.maxEventSeen {
			p.maxEventSeen = rec.Time
		}
		p.routeAndFeed(0, rec)
	}

	// Watermark: the smallest event time still unprocessed locally, or
	// the max seen if no backlog.
	wm := p.maxEventSeen
	for _, q := range p.queues {
		if len(q) > 0 && q[0].Time-1 < wm {
			wm = q[0].Time - 1
		}
	}
	if wm > p.watermark {
		p.watermark = wm
	}

	// Flush closed windows in stateful operators (within the boundary).
	for i := 0; i < p.opts.Boundary; i++ {
		if !p.ops[i].Stateful() {
			continue
		}
		i := i
		p.ops[i].Flush(p.watermark, func(out telemetry.Record) {
			p.emitDownstream(i, out)
		})
	}

	res := EpochResult{
		Stats:       make([]ProxyStats, len(p.proxies)),
		Drains:      p.drains,
		Results:     p.results,
		ResultStage: p.resultStage(),
		Watermark:   p.watermark,
	}
	if capacity := p.bucket.Capacity(); capacity > 0 {
		res.BudgetUsedFrac = p.bucket.Used() / capacity
		res.SpareBudgetFrac = p.bucket.SpareFraction()
	}
	spare := res.SpareBudgetFrac
	for i, px := range p.proxies {
		res.Stats[i] = px.EndEpoch(len(p.queues[i]), spare, p.opts.DrainedThres, p.opts.IdleThres)
	}
	for _, d := range p.drains {
		res.DrainedBytes += d.TotalBytes()
	}
	res.ResultBytes = p.results.TotalBytes()
	return res
}

func (p *Pipeline) resultStage() int {
	last := p.opts.Boundary - 1
	if last >= 0 && last < len(p.ops) && p.ops[last].Stateful() {
		return last
	}
	return p.opts.Boundary
}

// routeAndFeed lets proxy i decide a record's fate and processes it
// depth-first through the local chain when forwarded.
func (p *Pipeline) routeAndFeed(i int, rec telemetry.Record) {
	if i >= p.opts.Boundary || i >= len(p.ops) {
		// Past the local boundary: everything continues on the SP.
		p.emitPast(i, rec)
		return
	}
	// Bounded queue: overflow is drained losslessly.
	if len(p.queues[i]) >= p.opts.MaxQueuePerStage {
		p.forceDrain(i, rec)
		return
	}
	if !p.proxies[i].Route(rec) {
		p.drains[i] = append(p.drains[i], rec)
		return
	}
	if !p.processAt(i, rec) {
		// Forwarded but out of budget: it waits in the stage queue.
		p.queues[i] = append(p.queues[i], rec)
	}
}

// processAt runs one committed record through operator i, feeding
// emissions downstream. It reports false when the budget is exhausted
// (the record is NOT consumed).
func (p *Pipeline) processAt(i int, rec telemetry.Record) bool {
	if !p.bucket.TryConsume(p.cm.Cost(i)) {
		return false
	}
	p.proxies[i].NoteProcessed()
	p.ops[i].Process(rec, func(out telemetry.Record) {
		p.emitDownstream(i, out)
	})
	return true
}

// emitDownstream forwards operator i's output to stage i+1 (or results).
func (p *Pipeline) emitDownstream(i int, rec telemetry.Record) {
	if i+1 >= p.opts.Boundary {
		p.results = append(p.results, rec)
		return
	}
	p.routeAndFeed(i+1, rec)
}

// emitPast handles a record that crossed the boundary without local
// processing: it drains at the boundary proxy position.
func (p *Pipeline) emitPast(i int, rec telemetry.Record) {
	stage := i
	if stage >= len(p.ops) {
		p.results = append(p.results, rec)
		return
	}
	p.drains[stage] = append(p.drains[stage], rec)
}

// forceDrain drains a record that could not be queued, keeping the proxy
// accounting consistent (counted as arrived and drained).
func (p *Pipeline) forceDrain(i int, rec telemetry.Record) {
	px := p.proxies[i]
	px.stats.In++
	px.stats.Drained++
	px.stats.DrainedBytes += int64(rec.WireSize)
	p.drains[i] = append(p.drains[i], rec)
}

// DrainState asks every stateful local operator to hand its partial state
// downstream immediately (checkpoint support, §IV-E). The emitted rows
// are returned tagged with the operator index they must merge into on the
// SP.
func (p *Pipeline) DrainState() map[int]telemetry.Batch {
	out := make(map[int]telemetry.Batch)
	for i := 0; i < p.opts.Boundary; i++ {
		d, ok := p.ops[i].(operator.StatefulDrainer)
		if !ok {
			continue
		}
		var rows telemetry.Batch
		d.Drain(func(r telemetry.Record) { rows = append(rows, r) })
		if len(rows) > 0 {
			out[i] = rows
		}
	}
	return out
}

// Watermark returns the pipeline's current low watermark.
func (p *Pipeline) Watermark() int64 { return p.watermark }

// ObserveTime advances event-time progress without records (an idle
// source's heartbeat), so windows can close during quiet periods.
func (p *Pipeline) ObserveTime(t int64) {
	if t > p.maxEventSeen {
		p.maxEventSeen = t
	}
}

// DemandFraction estimates the fraction of one core the pipeline needs to
// process everything locally at recPerSec input (diagnostics).
func (p *Pipeline) DemandFraction(recPerSec float64) float64 {
	w := 1.0
	demand := 0.0
	for i, op := range p.query.Ops {
		demand += recPerSec * w * p.cm.Cost(i)
		w *= op.RelayBytes
	}
	return demand / 1e6
}
