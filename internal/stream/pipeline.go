package stream

import (
	"fmt"
	"sync"

	"jarvis/internal/obs"
	"jarvis/internal/operator"
	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// Options configures a data-source pipeline.
type Options struct {
	// EpochMicros is the epoch length (paper evaluates with 1 s).
	EpochMicros int64
	// BudgetFrac is the CPU budget as a fraction of one core.
	BudgetFrac float64
	// DrainedThres tolerates this fraction of an epoch's arrivals as
	// pending records before a proxy signals congestion (§IV-C).
	DrainedThres float64
	// IdleThres tolerates this fraction of spare epoch budget before a
	// proxy signals idleness (§IV-C).
	IdleThres float64
	// MaxQueuePerStage bounds each operator queue; overflow is drained to
	// the stream processor (lossless bounded backpressure).
	MaxQueuePerStage int
	// Boundary caps how many leading operators run locally (from the
	// plan rules); proxies beyond it drain everything.
	Boundary int
	// RecordAtATime selects the legacy depth-first record execution loop
	// instead of the default batch-vectorized one. Both paths implement
	// the same routing, budget and drain semantics; with budget to spare
	// they produce identical epoch results (see TestBatchRecordParity).
	// The record path exists as the semantic reference and for A/B
	// benchmarking; the batch path amortizes dispatch, charges the cost
	// model per batch and reuses pooled epoch buffers.
	RecordAtATime bool
}

// DefaultOptions mirrors the paper's evaluation setup: 1 s epochs,
// DrainedThres 10% and IdleThres 20%.
func DefaultOptions(budgetFrac float64, boundary int) Options {
	return Options{
		EpochMicros:      1_000_000,
		BudgetFrac:       budgetFrac,
		DrainedThres:     0.10,
		IdleThres:        0.20,
		MaxQueuePerStage: 1 << 18,
		Boundary:         boundary,
	}
}

// EpochResult reports one epoch of pipeline execution.
type EpochResult struct {
	// Stats holds per-proxy counters and states, one per local operator.
	Stats []ProxyStats
	// Drains[i] holds records drained at proxy i; they must be delivered
	// to the stream processor's replica of operator i.
	Drains []telemetry.Batch
	// Results are records emitted past the last local operator.
	Results telemetry.Batch
	// ResultStage is the SP-side operator index Results should enter:
	// the last local operator's own index when it is stateful (partial
	// aggregates merge into the replica), one past it otherwise.
	ResultStage int
	// Watermark is the event-time low watermark after this epoch: all
	// records at or before it have been fully processed or drained.
	Watermark int64
	// BudgetUsedFrac is the fraction of the epoch budget consumed.
	BudgetUsedFrac float64
	// SpareBudgetFrac = 1 − BudgetUsedFrac (0 when the budget is 0).
	SpareBudgetFrac float64
	// DrainedBytes and ResultBytes are the epoch's outbound volumes.
	DrainedBytes int64
	ResultBytes  int64

	// ColDrains[i] holds proxy i's drains from a columnar arrival wave
	// (RunEpochColumnar), still in SoA form: sections share the wave's
	// column arrays, narrowed by drain selection vectors. Drains[i] holds
	// the same epoch's row drains (carried-over records, materialized
	// fallbacks) and precedes ColDrains[i] in record order. The shared
	// columns stay valid until the pipeline's next epoch; Recycle only
	// drops the references.
	ColDrains []wire.ColumnarBatch
	// ColResults holds a columnar arrival wave's survivors past the last
	// local operator, still in SoA form. Results keeps the epoch's row
	// results: restored records, carryover cascades and the end-of-epoch
	// flush emissions. Same lifetime as ColDrains.
	ColResults wire.ColumnarBatch

	// Timing is the agent-side trace context for the cross-process epoch
	// trace: the pipeline stamps its own duration, the epoch driver (the
	// agent main loop) stamps the epoch start and generate duration, and
	// the shipper seals the context into the EpochEnd trace extension.
	// All zero when lifecycle timing is disabled.
	Timing EpochTiming
}

// EpochTiming carries the agent-half of an epoch's trace context to the
// shipper (see wire.EpochEnd and obs.EpochTrace). StartMicros is the
// epoch begin on the agent's clock in unix microseconds; zero means the
// driver recorded no epoch-level timing, and the shipper then anchors
// the trace at seal time.
type EpochTiming struct {
	StartMicros int64
	GenMicros   int64
	PipeMicros  int64
}

// TotalOutBytes is the epoch's total network transfer from the source.
func (r *EpochResult) TotalOutBytes() int64 { return r.DrainedBytes + r.ResultBytes }

// Recycle returns the epoch's drain and result buffers to the shared
// batch pool and drops the references, so the next epoch reuses their
// backing arrays instead of allocating. Call it only once every record
// has been consumed (the in-process Processor recycles after SP ingest);
// the scalar fields stay valid, the batches do not.
func (r *EpochResult) Recycle() {
	for i := range r.Drains {
		if r.Drains[i] != nil {
			telemetry.PutBatch(r.Drains[i])
			r.Drains[i] = nil
		}
	}
	putDrainSet(r.Drains)
	r.Drains = nil
	if r.Results != nil {
		telemetry.PutBatch(r.Results)
		r.Results = nil
	}
	// Columnar outputs borrow the pipeline's scratch (and, transitively,
	// the caller's column arrays): dropping the references is all recycling
	// means for them.
	r.ColDrains = nil
	r.ColResults = wire.ColumnarBatch{}
}

// drainSetFree recycles the per-epoch []Batch drain headers (one slot per
// operator) behind a small bounded freelist shared by all pipelines.
var (
	drainSetMu   sync.Mutex
	drainSetFree [][]telemetry.Batch
)

func getDrainSet(n int) []telemetry.Batch {
	drainSetMu.Lock()
	for i := len(drainSetFree) - 1; i >= 0; i-- {
		if cap(drainSetFree[i]) < n {
			continue // leave smaller headers for smaller pipelines
		}
		d := drainSetFree[i]
		last := len(drainSetFree) - 1
		drainSetFree[i] = drainSetFree[last]
		drainSetFree = drainSetFree[:last]
		drainSetMu.Unlock()
		d = d[:n]
		clear(d)
		return d
	}
	drainSetMu.Unlock()
	return make([]telemetry.Batch, n)
}

func putDrainSet(d []telemetry.Batch) {
	if cap(d) == 0 {
		return
	}
	drainSetMu.Lock()
	if len(drainSetFree) < 64 {
		drainSetFree = append(drainSetFree, d[:0])
	}
	drainSetMu.Unlock()
}

// QueryState classifies the whole pipeline per §IV-C: congested if any
// proxy is congested, idle if all are idle, stable otherwise.
func QueryState(stats []ProxyStats) ProxyState {
	if len(stats) == 0 {
		return StateStable
	}
	allIdle := true
	for _, s := range stats {
		if s.State == StateCongested {
			return StateCongested
		}
		if s.State != StateIdle {
			allIdle = false
		}
	}
	if allIdle {
		return StateIdle
	}
	return StateStable
}

// Pipeline executes the source-side replica of a query: operators with a
// control proxy in front of each, a token-bucket CPU budget, bounded
// queues and drain paths. Execution is batch-vectorized by default: each
// epoch drives whole batches stage by stage through the proxies (which
// still decide drain-vs-forward per record) into the operators'
// BatchProcessor path, with budget charged per batch and all epoch
// buffers drawn from pools.
type Pipeline struct {
	query    *plan.Query
	ops      []operator.Operator
	batchOps []operator.BatchProcessor
	proxies  []*Proxy
	queues   []telemetry.Batch
	bucket   *TokenBucket
	cm       *CostModel
	opts     Options

	maxEventSeen int64
	watermark    int64

	// epoch scratch, reset by RunEpoch
	drains  []telemetry.Batch
	results telemetry.Batch

	// restored holds records a RestoreCheckpoint emitted past the local
	// chain; the next epoch's results lead with them.
	restored telemetry.Batch

	// persistent stage scratch for the batch path (ping-pong wave
	// buffers plus the per-stage forwarded run), reused across epochs.
	scratchA telemetry.Batch
	scratchB telemetry.Batch
	fwd      telemetry.Batch

	// columnar arrival-wave machinery (RunEpochColumnar). colOps[i] is
	// non-nil when ops[i] executes SoA waves; colA/colB ping-pong the wave
	// section headers; colRows is the materialization buffer for the row
	// fallback; colDrains/colResults hold the epoch's SoA outputs; the sel
	// free/lent lists recycle routing selection vectors across epochs.
	colOps     []operator.ColumnarProcessor
	colA, colB []wire.ColSec
	colRows    telemetry.Batch
	colDrains  []wire.ColumnarBatch
	colResults wire.ColumnarBatch
	selFree    [][]int32
	selLent    [][]int32

	// epochSeq counts completed epochs; prevStates remembers each proxy's
	// state at the previous epoch boundary so finishEpoch emits a
	// proxy_state decision only on transitions (the zero value,
	// StateStable, is every proxy's implicit starting state).
	epochSeq   uint64
	prevStates []ProxyState
}

// NewPipeline compiles a query into a source pipeline. The query should
// already be optimized (plan.Optimize); control proxies are inserted
// between all adjacent operators per §IV-B.
func NewPipeline(q *plan.Query, opts Options) (*Pipeline, error) {
	ops, err := q.Instantiate()
	if err != nil {
		return nil, err
	}
	if opts.EpochMicros <= 0 {
		return nil, fmt.Errorf("stream: non-positive epoch")
	}
	if opts.Boundary <= 0 || opts.Boundary > len(ops) {
		opts.Boundary = len(ops)
	}
	cm, err := NewCostModel(q)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		query:    q,
		ops:      ops,
		batchOps: make([]operator.BatchProcessor, len(ops)),
		proxies:  make([]*Proxy, len(ops)),
		queues:   make([]telemetry.Batch, len(ops)),
		bucket:   NewTokenBucket(opts.BudgetFrac * float64(opts.EpochMicros)),
		cm:       cm,
		opts:     opts,
	}
	p.colOps = make([]operator.ColumnarProcessor, len(ops))
	for i := range p.proxies {
		p.proxies[i] = NewProxy(i) // load factors start at zero (Startup)
		p.batchOps[i] = operator.AsBatchProcessor(ops[i])
		if cp, ok := ops[i].(operator.ColumnarProcessor); ok && cp.ColumnarCapable() {
			p.colOps[i] = cp
		}
	}
	return p, nil
}

// Query returns the compiled query.
func (p *Pipeline) Query() *plan.Query { return p.query }

// Operators exposes the physical operators (read-only use).
func (p *Pipeline) Operators() []operator.Operator { return p.ops }

// CostModel exposes the pipeline's cost model (experiments rescale join
// costs through it).
func (p *Pipeline) CostModel() *CostModel { return p.cm }

// SetBudget changes the CPU budget fraction between epochs.
func (p *Pipeline) SetBudget(frac float64) {
	p.opts.BudgetFrac = frac
	p.bucket.SetCapacity(frac * float64(p.opts.EpochMicros))
}

// Budget returns the current CPU budget fraction.
func (p *Pipeline) Budget() float64 { return p.opts.BudgetFrac }

// LoadFactors returns the current per-proxy load factors.
func (p *Pipeline) LoadFactors() []float64 {
	out := make([]float64, len(p.proxies))
	for i, px := range p.proxies {
		out[i] = px.LoadFactor()
	}
	return out
}

// SetLoadFactors reconfigures all proxies (the runtime's Adapt action).
// Proxies at or past the boundary are forced to zero.
func (p *Pipeline) SetLoadFactors(factors []float64) error {
	if len(factors) != len(p.proxies) {
		return fmt.Errorf("stream: %d load factors for %d proxies", len(factors), len(p.proxies))
	}
	for i, f := range factors {
		if i >= p.opts.Boundary {
			f = 0
		}
		p.proxies[i].SetLoadFactor(f)
	}
	return nil
}

// Boundary returns the number of leading operators allowed to run
// locally.
func (p *Pipeline) Boundary() int { return p.opts.Boundary }

// PendingTotal returns the number of records queued across all stages.
func (p *Pipeline) PendingTotal() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// RunEpoch executes one epoch: drains or processes carried-over pending
// records first, then the epoch's input batch, then advances the
// watermark and flushes closed windows. Lossless: every input record is
// either processed locally, queued, or drained to the SP.
func (p *Pipeline) RunEpoch(input telemetry.Batch) EpochResult {
	start := obs.Now()
	p.bucket.Refill()
	if p.opts.RecordAtATime {
		p.drains = make([]telemetry.Batch, len(p.ops))
		p.results = nil
		p.results = append(p.results, p.restored...)
		p.restored = nil
		p.runEpochRecord(input)
	} else {
		p.drains = getDrainSet(len(p.ops))
		p.results = telemetry.GetBatch()
		p.results = append(p.results, p.restored...)
		p.restored = nil
		p.runEpochBatch(input)
	}
	res := p.finishEpoch()
	if !start.IsZero() {
		res.Timing.PipeMicros = obs.ObserveSince(obs.StagePipeline, start).Microseconds()
	}
	return res
}

// RunEpochColumnar executes one epoch over a columnar (SoA) arrival
// wave: the generator's column sections flow through the local chain
// stage at a time with proxies routing, budget charging and queue bounds
// applied per live row — observably equivalent to materializing the wave
// and calling RunEpoch, but records are never built on the all-SoA
// prefix of the plan. At the first stage without a columnar path the
// remaining live rows materialize once and finish on the row machinery,
// exactly like the SP engine's fallback. Carried-over queue records (the
// previous epoch's budget overflow) always run on the row path first.
//
// Proxy decisions consume the same error-diffusion sequence as the row
// path (RouteSize), so stats, drains, results and watermark are
// bit-identical to RunEpoch on the materialized batch whenever the
// operators' columnar kernels are row-equivalent. Columnar epochs always
// use the batch execution loop; Options.RecordAtATime only affects
// RunEpoch.
//
// The caller's batch is treated read-only, and the returned ColDrains /
// ColResults sections reference its column arrays: callers must consume
// the result before mutating the input columns or running the next
// epoch.
func (p *Pipeline) RunEpochColumnar(cb *wire.ColumnarBatch) EpochResult {
	start := obs.Now()
	p.bucket.Refill()
	p.drains = getDrainSet(len(p.ops))
	p.results = telemetry.GetBatch()
	p.results = append(p.results, p.restored...)
	p.restored = nil

	// Reclaim selection vectors lent to the previous epoch's result and
	// reset the columnar output buffers (their previous contents were
	// consumed before this call, per the contract above).
	p.selFree = append(p.selFree, p.selLent...)
	p.selLent = p.selLent[:0]
	if p.colDrains == nil {
		p.colDrains = make([]wire.ColumnarBatch, len(p.ops))
	}
	for i := range p.colDrains {
		p.colDrains[i].Secs = p.colDrains[i].Secs[:0]
	}
	p.colResults.Secs = p.colResults.Secs[:0]

	p.runCarryover()

	// Event-time progress observes every live arrival, exactly like the
	// row path's input scan.
	for si := range cb.Secs {
		sec := &cb.Secs[si]
		if sec.Rows != nil {
			for k := range sec.Rows {
				if sec.Rows[k].Time > p.maxEventSeen {
					p.maxEventSeen = sec.Rows[k].Time
				}
			}
			continue
		}
		if sec.Sel != nil {
			for _, idx := range sec.Sel {
				if sec.Times[idx] > p.maxEventSeen {
					p.maxEventSeen = sec.Times[idx]
				}
			}
			continue
		}
		for _, t := range sec.Times {
			if t > p.maxEventSeen {
				p.maxEventSeen = t
			}
		}
	}

	p.runColumnarWave(cb)

	res := p.finishEpoch()
	res.ColDrains = p.colDrains
	res.ColResults = p.colResults
	for i := range p.colDrains {
		res.DrainedBytes += p.colDrains[i].TotalBytes()
	}
	res.ResultBytes += p.colResults.TotalBytes()
	if !start.IsZero() {
		res.Timing.PipeMicros = obs.ObserveSince(obs.StagePipeline, start).Microseconds()
	}
	return res
}

// runColumnarWave drives the SoA arrival wave through the local chain.
// Each stage mirrors the row wave exactly: route every live row in
// order (forced drains past the budget+queue bound first, then the
// proxy's error-diffusion decision), charge the budget for the prefix
// of forwarded rows it covers, push that prefix through the operator's
// columnar path, and queue the remainder as rows.
func (p *Pipeline) runColumnarWave(cb *wire.ColumnarBatch) {
	b := p.opts.Boundary
	bufA, bufB := p.colA, p.colB
	in := append(bufA[:0], cb.Secs...)
	bufA = in
	for i := 0; i < b; i++ {
		if p.colOps[i] == nil {
			// Fallback: materialize the wave's live rows once and run the
			// remaining stages on the row path (starting with this stage's
			// own proxy, which has not routed them yet).
			p.colRows = p.colRows[:0]
			w := wire.ColumnarBatch{Secs: in}
			w.AppendRows(&p.colRows)
			p.colA, p.colB = bufA[:0], bufB[:0]
			p.runWaveFrom(i, p.colRows)
			return
		}
		live := 0
		for si := range in {
			live += in[si].Len()
		}
		if live == 0 {
			break
		}

		px := p.proxies[i]
		room := p.opts.MaxQueuePerStage - len(p.queues[i])
		if room < 0 {
			room = 0
		}
		cost := p.cm.Cost(i)
		// Forwarded rows beyond this bound could neither be processed
		// (budget) nor queued (bounded stage queue): they force-drain.
		maxFwd := p.bucket.FitCount(cost, live) + room

		// Route pass: walk live rows in order, splitting each section into
		// a forwarded view and a drain view. SoA sections split by fresh
		// selection vectors over shared columns; row sections split by
		// copying records.
		fwd := bufB[:0]
		fwdTotal := 0
		for si := range in {
			sec := &in[si]
			if sec.Rows != nil {
				var fr, dr telemetry.Batch
				for k := range sec.Rows {
					rec := sec.Rows[k]
					if fwdTotal >= maxFwd {
						px.NoteForcedDrain(rec.WireSize)
						dr = append(dr, rec)
						continue
					}
					if px.Route(rec) {
						fr = append(fr, rec)
						fwdTotal++
					} else {
						dr = append(dr, rec)
					}
				}
				if len(dr) > 0 {
					p.colDrains[i].Secs = append(p.colDrains[i].Secs, wire.ColSec{Tag: sec.Tag, Rows: dr})
				}
				if len(fr) > 0 {
					fwd = append(fwd, wire.ColSec{Tag: sec.Tag, Rows: fr})
				}
				continue
			}
			fwdSel, drSel := p.takeSel(), p.takeSel()
			if sec.Sel != nil {
				for _, idx := range sec.Sel {
					if fwdTotal >= maxFwd {
						px.NoteForcedDrain(sec.RowBytes(int(idx)))
						drSel = append(drSel, idx)
						continue
					}
					if px.RouteSize(sec.RowBytes(int(idx))) {
						fwdSel = append(fwdSel, idx)
						fwdTotal++
					} else {
						drSel = append(drSel, idx)
					}
				}
			} else {
				for idx := 0; idx < len(sec.Times); idx++ {
					if fwdTotal >= maxFwd {
						px.NoteForcedDrain(sec.RowBytes(idx))
						drSel = append(drSel, int32(idx))
						continue
					}
					if px.RouteSize(sec.RowBytes(idx)) {
						fwdSel = append(fwdSel, int32(idx))
						fwdTotal++
					} else {
						drSel = append(drSel, int32(idx))
					}
				}
			}
			fwdSel, drSel = p.lendSel(fwdSel), p.lendSel(drSel)
			if len(drSel) > 0 {
				dsec := *sec
				dsec.Sel = drSel
				p.colDrains[i].Secs = append(p.colDrains[i].Secs, dsec)
			}
			if len(fwdSel) > 0 {
				fsec := *sec
				fsec.Sel = fwdSel
				fwd = append(fwd, fsec)
			}
		}
		bufB = fwd

		// Budget pass: the prefix of forwarded rows the tokens cover is
		// processed columnar; the suffix materializes into the stage queue,
		// exactly like the row path's fwd[n:].
		n := p.bucket.FitCount(cost, fwdTotal)
		p.bucket.ConsumeN(cost, n)
		px.NoteProcessedN(n)
		if n < fwdTotal {
			fwd = p.spillColumnar(i, fwd, n)
		}
		if len(fwd) == 0 {
			p.colA, p.colB = bufA[:0], bufB[:0]
			return
		}

		w := wire.ColumnarBatch{Secs: fwd}
		p.colOps[i].ProcessColumnar(&w)
		bufA, bufB = bufB, bufA
		in = w.Secs
	}
	// Survivors past the last local stage are columnar results.
	for si := range in {
		if in[si].Len() > 0 {
			p.colResults.Secs = append(p.colResults.Secs, in[si])
		}
	}
	p.colA, p.colB = bufA[:0], bufB[:0]
}

// spillColumnar truncates a routed forward wave to its first n live rows
// and materializes the remainder into stage i's queue (rows), returning
// the truncated wave. The materialized records own their memory — queue
// entries outlive the epoch's column arrays.
func (p *Pipeline) spillColumnar(i int, fwd []wire.ColSec, n int) []wire.ColSec {
	cnt := 0
	for si := range fwd {
		sec := &fwd[si]
		l := sec.Len()
		if cnt+l <= n {
			cnt += l
			continue
		}
		keep := n - cnt
		if sec.Rows != nil {
			p.queues[i] = append(p.queues[i], sec.Rows[keep:]...)
			sec.Rows = sec.Rows[:keep]
		} else {
			tail := *sec
			tail.Sel = sec.Sel[keep:]
			tail.AppendRows(&p.queues[i])
			sec.Sel = sec.Sel[:keep]
		}
		for sj := si + 1; sj < len(fwd); sj++ {
			fwd[sj].AppendRows(&p.queues[i])
		}
		if keep == 0 {
			return fwd[:si]
		}
		return fwd[:si+1]
	}
	return fwd
}

// takeSel pops a recycled selection-vector buffer (or returns nil, which
// append grows); lendSel registers the final slice for reclamation at
// the next columnar epoch, once the epoch's result has been consumed.
func (p *Pipeline) takeSel() []int32 {
	if nf := len(p.selFree); nf > 0 {
		s := p.selFree[nf-1]
		p.selFree = p.selFree[:nf-1]
		return s[:0]
	}
	return nil
}

func (p *Pipeline) lendSel(s []int32) []int32 {
	if cap(s) > 0 {
		p.selLent = append(p.selLent, s)
	}
	return s
}

// runEpochBatch is the vectorized execution loop: records move through
// the local chain as whole waves, one stage at a time. Proxies still
// route per record (error diffusion needs the record sequence), but
// forwarded runs are charged to the budget and pushed through the
// operator in one ProcessBatch call, and every stage reuses persistent
// scratch buffers. Stage-at-a-time scheduling feeds each operator the
// same record sequence as the legacy depth-first loop, so with budget to
// spare the two paths produce identical epochs; they only distribute a
// mid-epoch budget exhaustion differently across stages (both remain
// lossless and congestion-visible).
func (p *Pipeline) runEpochBatch(input telemetry.Batch) {
	p.runCarryover()
	for i := range input {
		if input[i].Time > p.maxEventSeen {
			p.maxEventSeen = input[i].Time
		}
	}
	p.runWaveFrom(0, input)
}

// runCarryover processes records queued in earlier epochs: they were
// already committed to local processing, and their emissions cascade
// through the chain, routed at each downstream proxy before that stage's
// own queue runs, mirroring the legacy order. Shared by the row and
// columnar epoch paths (queues always hold rows).
func (p *Pipeline) runCarryover() {
	b := p.opts.Boundary
	curr, next := p.scratchA[:0], p.scratchB[:0]
	for i := 0; i < b; i++ {
		out := &next
		if i+1 >= b {
			out = &p.results
		}
		p.fwd = p.routeBatch(i, curr, p.fwd[:0])
		n1 := p.processBatchAt(i, p.fwd, out)
		pending := p.queues[i]
		n2 := p.processBatchAt(i, pending, out)
		q := append(pending[:0], pending[n2:]...)
		p.queues[i] = append(q, p.fwd[n1:]...)
		if i+1 < b {
			curr, next = next, curr[:0]
		}
	}
	p.scratchA, p.scratchB = curr[:0], next[:0]
}

// runWaveFrom drives one arrival wave of rows through stages start..b-1
// (the whole local chain for a row epoch; the remaining suffix when a
// columnar wave materializes at its first row-only stage).
func (p *Pipeline) runWaveFrom(start int, wave telemetry.Batch) {
	b := p.opts.Boundary
	curr, next := p.scratchA[:0], p.scratchB[:0]
	for i := start; i < b; i++ {
		var out *telemetry.Batch
		if i+1 >= b {
			out = &p.results
		} else {
			next = next[:0]
			out = &next
		}
		p.fwd = p.routeBatch(i, wave, p.fwd[:0])
		n := p.processBatchAt(i, p.fwd, out)
		if n < len(p.fwd) {
			p.queues[i] = append(p.queues[i], p.fwd[n:]...)
		}
		if i+1 < b {
			curr, next = next, curr
			wave = curr
		}
	}
	p.scratchA, p.scratchB = curr, next
}

// routeBatch routes one stage's arrivals: drained records append to the
// stage's drain buffer, forwarded records to fwd (returned). Records
// beyond what the budget can process plus what the stage queue can hold
// are force-drained without consulting Route, exactly like the legacy
// per-record overflow check.
func (p *Pipeline) routeBatch(i int, in telemetry.Batch, fwd telemetry.Batch) telemetry.Batch {
	if len(in) == 0 {
		return fwd
	}
	px := p.proxies[i]
	room := p.opts.MaxQueuePerStage - len(p.queues[i])
	if room < 0 {
		room = 0
	}
	// Forwarded records beyond this bound could neither be processed
	// (budget) nor queued (bounded stage queue): they must force-drain.
	maxFwd := p.bucket.FitCount(p.cm.Cost(i), len(in)) + room
	for k := range in {
		if len(fwd) >= maxFwd {
			px.NoteForcedDrain(in[k].WireSize)
			p.appendDrain(i, in[k])
			continue
		}
		if px.Route(in[k]) {
			fwd = append(fwd, in[k])
		} else {
			p.appendDrain(i, in[k])
		}
	}
	return fwd
}

// processBatchAt charges the budget for as many of in's records as fit,
// runs that prefix through operator i in one vectorized call, and
// returns how many were consumed; the caller queues the remainder.
func (p *Pipeline) processBatchAt(i int, in telemetry.Batch, out *telemetry.Batch) int {
	if len(in) == 0 {
		return 0
	}
	cost := p.cm.Cost(i)
	n := p.bucket.FitCount(cost, len(in))
	if n == 0 {
		return 0
	}
	p.bucket.ConsumeN(cost, n)
	p.proxies[i].NoteProcessedN(n)
	p.batchOps[i].ProcessBatch(in[:n], out)
	return n
}

// appendDrain adds one record to stage i's drain buffer, lazily drawing
// the buffer from the shared pool on the first drain of the epoch.
func (p *Pipeline) appendDrain(i int, rec telemetry.Record) {
	if p.drains[i] == nil {
		p.drains[i] = telemetry.GetBatch()
	}
	p.drains[i] = append(p.drains[i], rec)
}

// runEpochRecord is the legacy record-at-a-time execution loop: each
// record traverses the local chain depth-first through per-record
// routing, budget charges and emit closures. Kept as the semantic
// reference for the batch path and for A/B benchmarks.
func (p *Pipeline) runEpochRecord(input telemetry.Batch) {
	// Carryover: process pending records queued in earlier epochs (they
	// were already committed to local processing).
	for i := range p.queues {
		pending := p.queues[i]
		p.queues[i] = nil
		for k, rec := range pending {
			if !p.processAt(i, rec) {
				// Budget exhausted: requeue this record and the rest.
				p.queues[i] = append(p.queues[i], pending[k:]...)
				break
			}
		}
	}

	// New arrivals.
	for _, rec := range input {
		if rec.Time > p.maxEventSeen {
			p.maxEventSeen = rec.Time
		}
		p.routeAndFeed(0, rec)
	}
}

// finishEpoch advances the watermark, flushes closed windows and builds
// the epoch's result from the per-proxy stats and drain buffers. Shared
// by both execution paths.
func (p *Pipeline) finishEpoch() EpochResult {
	// Watermark: the smallest event time still unprocessed locally, or
	// the max seen if no backlog.
	wm := p.maxEventSeen
	for _, q := range p.queues {
		if len(q) > 0 && q[0].Time-1 < wm {
			wm = q[0].Time - 1
		}
	}
	if wm > p.watermark {
		p.watermark = wm
	}

	// Flush closed windows in stateful operators (within the boundary).
	// Flush volumes are small (aggregate rows per closed window), so both
	// paths share the record-at-a-time cascade.
	for i := 0; i < p.opts.Boundary; i++ {
		if !p.ops[i].Stateful() {
			continue
		}
		i := i
		p.ops[i].Flush(p.watermark, func(out telemetry.Record) {
			p.emitDownstream(i, out)
		})
	}

	res := EpochResult{
		Stats:       make([]ProxyStats, len(p.proxies)),
		Drains:      p.drains,
		Results:     p.results,
		ResultStage: p.resultStage(),
		Watermark:   p.watermark,
	}
	if capacity := p.bucket.Capacity(); capacity > 0 {
		res.BudgetUsedFrac = p.bucket.Used() / capacity
		res.SpareBudgetFrac = p.bucket.SpareFraction()
	}
	spare := res.SpareBudgetFrac
	for i, px := range p.proxies {
		res.Stats[i] = px.EndEpoch(len(p.queues[i]), spare, p.opts.DrainedThres, p.opts.IdleThres)
	}
	p.epochSeq++
	if len(p.prevStates) != len(res.Stats) {
		p.prevStates = make([]ProxyState, len(res.Stats))
	}
	for i := range res.Stats {
		if st := res.Stats[i].State; st != p.prevStates[i] {
			obs.Emit(obs.Decision{
				Kind:        "proxy_state",
				Epoch:       p.epochSeq,
				Stage:       i,
				Cause:       "epoch_stats",
				BeforeState: p.prevStates[i].String(),
				AfterState:  st.String(),
			})
			p.prevStates[i] = st
		}
	}
	for _, d := range p.drains {
		res.DrainedBytes += d.TotalBytes()
	}
	res.ResultBytes = p.results.TotalBytes()
	return res
}

func (p *Pipeline) resultStage() int {
	last := p.opts.Boundary - 1
	if last >= 0 && last < len(p.ops) && p.ops[last].Stateful() {
		return last
	}
	return p.opts.Boundary
}

// routeAndFeed lets proxy i decide a record's fate and processes it
// depth-first through the local chain when forwarded.
func (p *Pipeline) routeAndFeed(i int, rec telemetry.Record) {
	if i >= p.opts.Boundary || i >= len(p.ops) {
		// Past the local boundary: everything continues on the SP.
		p.emitPast(i, rec)
		return
	}
	// Bounded queue: overflow is drained losslessly.
	if len(p.queues[i]) >= p.opts.MaxQueuePerStage {
		p.forceDrain(i, rec)
		return
	}
	if !p.proxies[i].Route(rec) {
		p.appendDrain(i, rec)
		return
	}
	if !p.processAt(i, rec) {
		// Forwarded but out of budget: it waits in the stage queue.
		p.queues[i] = append(p.queues[i], rec)
	}
}

// processAt runs one committed record through operator i, feeding
// emissions downstream. It reports false when the budget is exhausted
// (the record is NOT consumed).
func (p *Pipeline) processAt(i int, rec telemetry.Record) bool {
	if !p.bucket.TryConsume(p.cm.Cost(i)) {
		return false
	}
	p.proxies[i].NoteProcessed()
	p.ops[i].Process(rec, func(out telemetry.Record) {
		p.emitDownstream(i, out)
	})
	return true
}

// emitDownstream forwards operator i's output to stage i+1 (or results).
func (p *Pipeline) emitDownstream(i int, rec telemetry.Record) {
	if i+1 >= p.opts.Boundary {
		p.results = append(p.results, rec)
		return
	}
	p.routeAndFeed(i+1, rec)
}

// emitPast handles a record that crossed the boundary without local
// processing: it drains at the boundary proxy position.
func (p *Pipeline) emitPast(i int, rec telemetry.Record) {
	stage := i
	if stage >= len(p.ops) {
		p.results = append(p.results, rec)
		return
	}
	p.appendDrain(stage, rec)
}

// forceDrain drains a record that could not be queued, keeping the proxy
// accounting consistent (counted as arrived and drained) through the
// proxy's own API.
func (p *Pipeline) forceDrain(i int, rec telemetry.Record) {
	p.proxies[i].NoteForcedDrain(rec.WireSize)
	p.appendDrain(i, rec)
}

// DrainState asks every stateful local operator to hand its partial state
// downstream immediately (checkpoint support, §IV-E). The emitted rows
// are returned tagged with the operator index they must merge into on the
// SP.
func (p *Pipeline) DrainState() map[int]telemetry.Batch {
	out := make(map[int]telemetry.Batch)
	for i := 0; i < p.opts.Boundary; i++ {
		d, ok := p.ops[i].(operator.StatefulDrainer)
		if !ok {
			continue
		}
		var rows telemetry.Batch
		d.Drain(func(r telemetry.Record) { rows = append(rows, r) })
		if len(rows) > 0 {
			out[i] = rows
		}
	}
	return out
}

// Watermark returns the pipeline's current low watermark.
func (p *Pipeline) Watermark() int64 { return p.watermark }

// ObserveTime advances event-time progress without records (an idle
// source's heartbeat), so windows can close during quiet periods.
func (p *Pipeline) ObserveTime(t int64) {
	if t > p.maxEventSeen {
		p.maxEventSeen = t
	}
}

// DemandFraction estimates the fraction of one core the pipeline needs to
// process everything locally at recPerSec input (diagnostics).
func (p *Pipeline) DemandFraction(recPerSec float64) float64 {
	w := 1.0
	demand := 0.0
	for i, op := range p.query.Ops {
		demand += recPerSec * w * p.cm.Cost(i)
		w *= op.RelayBytes
	}
	return demand / 1e6
}
