package stream

import (
	"math"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func s2sPipeline(t *testing.T, budget float64) *Pipeline {
	t.Helper()
	p, err := NewPipeline(plan.S2SProbe(), DefaultOptions(budget, 0))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func onesForS2S() []float64 { return []float64{1, 1, 1} }

func TestCostModelCalibration(t *testing.T) {
	q := plan.S2SProbe()
	cm, err := NewCostModel(q)
	if err != nil {
		t.Fatal(err)
	}
	// F: 13% of a core at 38081 rec/s → ≈3.41 µs per record.
	refRPS := workload.RecordsPerSec(q.RefRateMbps, q.RecordBytes)
	wantF := 0.13 * 1e6 / refRPS
	if math.Abs(cm.Cost(1)-wantF) > 1e-9 {
		t.Fatalf("F cost = %v, want %v", cm.Cost(1), wantF)
	}
	// Whole pipeline at the reference rate uses ≈85% of a core.
	p := s2sPipeline(t, 1.0)
	if d := p.DemandFraction(refRPS); math.Abs(d-0.85) > 0.01 {
		t.Fatalf("demand = %v, want ≈0.85", d)
	}
}

func TestCostModelErrors(t *testing.T) {
	q := plan.S2SProbe()
	q.RefRateMbps = 0
	if _, err := NewCostModel(q); err == nil {
		t.Fatal("missing calibration must error")
	}
}

func TestCostModelScaleOp(t *testing.T) {
	cm, err := NewCostModel(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	base := cm.Cost(2)
	cm.ScaleOp(2, 2)
	if cm.Cost(2) != base*2 {
		t.Fatal("scale failed")
	}
	cm.ScaleOp(2, -1) // ignored
	if cm.Cost(2) != base*2 {
		t.Fatal("negative factor must be ignored")
	}
}

func TestDemandPctScalesWithRate(t *testing.T) {
	q := plan.S2SProbe()
	full := DemandPct(q, q.RefRateMbps)
	half := DemandPct(q, q.RefRateMbps/2)
	if math.Abs(full-2*half) > 1e-9 {
		t.Fatalf("demand not linear in rate: %v vs %v", full, half)
	}
}

// feedEpochs drives the pipeline with one-second epochs of generated
// Pingmesh data and returns the per-epoch results.
func feedEpochs(p *Pipeline, gen *workload.PingGen, epochs int) []EpochResult {
	out := make([]EpochResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		batch := gen.NextWindow(1_000_000)
		out = append(out, p.RunEpoch(batch))
	}
	return out
}

func TestPipelineAllLocalAmpleBudget(t *testing.T) {
	p := s2sPipeline(t, 1.0)
	if err := p.SetLoadFactors(onesForS2S()); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	results := feedEpochs(p, gen, 11) // 11 s: closes the first 10 s window

	var drained int
	for _, r := range results {
		for _, s := range r.Stats {
			drained += s.Drained
		}
	}
	if drained != 0 {
		t.Fatalf("ample budget should drain nothing, drained %d", drained)
	}
	var flushed *EpochResult
	for i := range results {
		if len(results[i].Results) > 0 {
			flushed = &results[i]
			break
		}
	}
	if flushed == nil {
		t.Fatal("window should have flushed aggregate rows")
	}
	if flushed.ResultStage != 2 {
		t.Fatalf("stateful last op must target stage 2, got %d", flushed.ResultStage)
	}
	if p.PendingTotal() != 0 {
		t.Fatalf("pending = %d", p.PendingTotal())
	}
	// Budget use ≈ 85%.
	if u := flushed.BudgetUsedFrac; u < 0.7 || u > 0.95 {
		t.Fatalf("budget used = %v, want ≈0.85", u)
	}
}

func TestPipelineZeroLoadFactorsDrainEverything(t *testing.T) {
	p := s2sPipeline(t, 1.0) // Startup: load factors are zero by default
	gen := workload.NewPingGen(workload.DefaultPingConfig(2))
	res := p.RunEpoch(gen.NextWindow(1_000_000))
	if len(res.Drains[0]) == 0 {
		t.Fatal("everything should drain at stage 0")
	}
	if res.Stats[0].Forwarded != 0 || res.Stats[0].Drained != res.Stats[0].In {
		t.Fatalf("stats = %+v", res.Stats[0])
	}
	if res.BudgetUsedFrac > 0.01 {
		t.Fatalf("draining must be nearly free, used %v", res.BudgetUsedFrac)
	}
}

func TestPipelineLosslessAccounting(t *testing.T) {
	p := s2sPipeline(t, 0.4)
	_ = p.SetLoadFactors([]float64{1, 1, 0.5})
	gen := workload.NewPingGen(workload.DefaultPingConfig(3))
	totalIn := 0
	var processed, drained int
	for i := 0; i < 5; i++ {
		batch := gen.NextWindow(1_000_000)
		totalIn += len(batch)
		res := p.RunEpoch(batch)
		processed += res.Stats[0].Processed
		drained += res.Stats[0].Drained
	}
	// Stage-0 conservation: arrivals = processed + drained + pending.
	if processed+drained+pendingAt(p, 0) != totalIn {
		t.Fatalf("lost records: in=%d processed=%d drained=%d pending=%d",
			totalIn, processed, drained, pendingAt(p, 0))
	}
}

func pendingAt(p *Pipeline, stage int) int { return len(p.queues[stage]) }

func TestPipelineCongestionUnderTightBudget(t *testing.T) {
	p := s2sPipeline(t, 0.3) // demand ≈85%, budget 30%
	_ = p.SetLoadFactors(onesForS2S())
	gen := workload.NewPingGen(workload.DefaultPingConfig(4))
	var congested bool
	for i := 0; i < 4; i++ {
		res := p.RunEpoch(gen.NextWindow(1_000_000))
		if QueryState(res.Stats) == StateCongested {
			congested = true
		}
	}
	if !congested {
		t.Fatal("30% budget with p=1 must congest")
	}
	if p.PendingTotal() == 0 {
		t.Fatal("backlog expected")
	}
}

func TestPipelineIdleDetection(t *testing.T) {
	p := s2sPipeline(t, 1.0)
	// Low load factors with a huge budget: proxies should report idle.
	_ = p.SetLoadFactors([]float64{0.2, 0.2, 0.2})
	gen := workload.NewPingGen(workload.DefaultPingConfig(5))
	res := p.RunEpoch(gen.NextWindow(1_000_000))
	if QueryState(res.Stats) != StateIdle {
		t.Fatalf("state = %v, want idle (spare=%v)", QueryState(res.Stats), res.SpareBudgetFrac)
	}
}

func TestPipelineBoundaryForcesDrain(t *testing.T) {
	q := plan.S2SProbe()
	p, err := NewPipeline(q, DefaultOptions(1.0, 2)) // W, F only
	if err != nil {
		t.Fatal(err)
	}
	if p.Boundary() != 2 {
		t.Fatal("boundary")
	}
	// Even explicit ones are clamped to zero past the boundary.
	_ = p.SetLoadFactors([]float64{1, 1, 1})
	if lf := p.LoadFactors(); lf[2] != 0 {
		t.Fatalf("boundary proxy lf = %v", lf[2])
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(6))
	res := p.RunEpoch(gen.NextWindow(1_000_000))
	// F's output crosses the boundary via the results path, entering the
	// SP at stage 2 (the replica of the first remote operator).
	if len(res.Results) == 0 {
		t.Fatal("records must cross the boundary toward the SP")
	}
	if res.ResultStage != 2 {
		// Last local op (F) is stateless → results enter SP at stage 2.
		t.Fatalf("result stage = %d, want 2", res.ResultStage)
	}
	for _, r := range res.Results {
		if _, ok := r.Data.(*telemetry.PingProbe); !ok {
			t.Fatalf("boundary output should be raw probes, got %T", r.Data)
		}
	}
}

func TestPipelineSetBudgetMidRun(t *testing.T) {
	p := s2sPipeline(t, 0.1)
	_ = p.SetLoadFactors(onesForS2S())
	gen := workload.NewPingGen(workload.DefaultPingConfig(7))
	p.RunEpoch(gen.NextWindow(1_000_000))
	backlog := p.PendingTotal()
	if backlog == 0 {
		t.Fatal("expected backlog at 10% budget")
	}
	p.SetBudget(1.0)
	if p.Budget() != 1.0 {
		t.Fatal("budget setter")
	}
	for i := 0; i < 3; i++ {
		p.RunEpoch(gen.NextWindow(1_000_000))
	}
	if p.PendingTotal() >= backlog {
		t.Fatalf("backlog should shrink after budget increase: %d → %d",
			backlog, p.PendingTotal())
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(plan.NewQuery("bad"), DefaultOptions(1, 0)); err == nil {
		t.Fatal("invalid query must fail")
	}
	opts := DefaultOptions(1, 0)
	opts.EpochMicros = 0
	if _, err := NewPipeline(plan.S2SProbe(), opts); err == nil {
		t.Fatal("zero epoch must fail")
	}
	p := s2sPipeline(t, 1)
	if err := p.SetLoadFactors([]float64{1}); err == nil {
		t.Fatal("wrong load-factor count must fail")
	}
}

func TestPipelineQueueOverflowDrains(t *testing.T) {
	q := plan.S2SProbe()
	opts := DefaultOptions(0.0, 0) // zero budget: everything forwarded must queue
	opts.MaxQueuePerStage = 10
	p, err := NewPipeline(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.SetLoadFactors(onesForS2S())
	gen := workload.NewPingGen(workload.DefaultPingConfig(8))
	res := p.RunEpoch(gen.Next(100))
	if got := pendingAt(p, 0); got != 10 {
		t.Fatalf("queue should cap at 10, got %d", got)
	}
	if len(res.Drains[0]) != 90 {
		t.Fatalf("overflow should drain: %d", len(res.Drains[0]))
	}
}

func TestDrainStateHandsPartialsToSP(t *testing.T) {
	q := plan.S2SProbe()
	p, err := NewPipeline(q, DefaultOptions(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = p.SetLoadFactors([]float64{1, 1, 1})
	gen := workload.NewPingGen(workload.DefaultPingConfig(9))
	p.RunEpoch(gen.NextWindow(1_000_000))

	state := p.DrainState()
	rows, ok := state[2]
	if !ok || len(rows) == 0 {
		t.Fatalf("no partial state drained: %v", state)
	}
	// Drained state folds into an SP replica and flushes correctly.
	sp, err := NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Ingest(2, rows); err != nil {
		t.Fatal(err)
	}
	sp.ObserveWatermark(1, 10_000_000)
	if out := sp.Advance(); len(out) == 0 {
		t.Fatal("restored state did not flush")
	}
	// State is gone after draining.
	if again := p.DrainState(); len(again) != 0 {
		t.Fatal("drain must clear state")
	}
}

func TestPipelineAccessors(t *testing.T) {
	q := plan.S2SProbe()
	p, err := NewPipeline(q, DefaultOptions(0.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Query().Name != "S2SProbe" {
		t.Fatal("Query accessor")
	}
	if len(p.Operators()) != 3 {
		t.Fatal("Operators accessor")
	}
	if p.CostModel().Cost(1) <= 0 {
		t.Fatal("CostModel accessor")
	}
	if got := OperatorNames(p.Operators()); len(got) != 3 || got[1] != "errFilter" {
		t.Fatalf("OperatorNames = %v", got)
	}
	if p.Watermark() != 0 {
		t.Fatal("initial watermark")
	}
	res := p.RunEpoch(nil)
	if res.TotalOutBytes() != 0 {
		t.Fatal("empty epoch should ship nothing")
	}
	if DemandPct(&plan.Query{}, 26.2) != 0 {
		t.Fatal("DemandPct without calibration should be 0")
	}
}

func TestPipelineEmitPastBoundaryWithFlatMap(t *testing.T) {
	// A boundary in the middle of LogAnalytics: the parse map's outputs
	// cross toward the SP through the results path; the deeper stages'
	// proxies never see data.
	q := plan.LogAnalytics()
	p, err := NewPipeline(q, DefaultOptions(1.0, 4)) // W, normalize, filter, parse
	if err != nil {
		t.Fatal(err)
	}
	_ = p.SetLoadFactors([]float64{1, 1, 1, 1, 1, 1})
	gen := workload.NewLogGen(workload.DefaultLogConfig(2))
	res := p.RunEpoch(gen.NextWindow(200_000))
	if len(res.Results) == 0 {
		t.Fatal("parse output should cross the boundary")
	}
	if res.ResultStage != 4 {
		t.Fatalf("result stage = %d, want 4", res.ResultStage)
	}
	if res.Stats[4].In != 0 || res.Stats[5].In != 0 {
		t.Fatal("stages past the boundary must see no arrivals")
	}
}
