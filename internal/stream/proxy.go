package stream

import "jarvis/internal/telemetry"

// ProxyState is the control proxy's view of its downstream operator at an
// epoch boundary (paper §IV-C).
type ProxyState int

// Proxy states.
const (
	// StateStable: the operator is neither congested nor idle.
	StateStable ProxyState = iota
	// StateIdle: the operator stayed empty longer than IdleThres allows.
	StateIdle
	// StateCongested: more pending records than DrainedThres tolerates.
	StateCongested
)

func (s ProxyState) String() string {
	switch s {
	case StateStable:
		return "stable"
	case StateIdle:
		return "idle"
	case StateCongested:
		return "congested"
	default:
		return "unknown"
	}
}

// ProxyStats counts one epoch of activity at one control proxy.
type ProxyStats struct {
	// In is the number of records that arrived at the proxy.
	In int
	// Forwarded went to the local downstream operator's queue.
	Forwarded int
	// Processed were actually consumed by the operator within budget.
	Processed int
	// Drained went to the network for remote processing.
	Drained int
	// DrainedBytes is the drained volume.
	DrainedBytes int64
	// Pending are forwarded records still queued at epoch end.
	Pending int
	// State is the classification at the epoch boundary.
	State ProxyState
}

// Proxy is the control proxy in front of one operator: a light-weight
// router that forwards a fraction p (the load factor) of incoming records
// to the local operator and drains the rest to the replicated operator on
// the stream processor.
type Proxy struct {
	stage int
	p     float64
	// acc implements deterministic error-diffusion so the realized
	// forward fraction converges to p without randomness: each record
	// adds p; forwarding costs 1.
	acc   float64
	stats ProxyStats
}

// NewProxy creates a proxy for pipeline stage i with load factor 0
// (paper: Startup initializes all load factors to zero, everything
// drains).
func NewProxy(stage int) *Proxy { return &Proxy{stage: stage} }

// Stage returns the pipeline stage index this proxy guards.
func (px *Proxy) Stage() int { return px.stage }

// LoadFactor returns the current load factor p.
func (px *Proxy) LoadFactor() float64 { return px.p }

// SetLoadFactor updates p, clamped to [0, 1].
func (px *Proxy) SetLoadFactor(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	px.p = p
}

// Route decides one record's fate: true = forward to the local operator,
// false = drain to the stream processor. Deterministic: over n records
// exactly ⌊np⌋ or ⌈np⌉ are forwarded.
func (px *Proxy) Route(rec telemetry.Record) bool {
	px.stats.In++
	px.acc += px.p
	if px.acc >= 1-1e-12 {
		px.acc -= 1
		px.stats.Forwarded++
		return true
	}
	px.stats.Drained++
	px.stats.DrainedBytes += int64(rec.WireSize)
	return false
}

// RouteSize is Route for the columnar path: the decision and the
// accounting depend only on the record's wire size, which SoA waves
// supply straight from their columns without materializing the record.
// The error-diffusion state advances exactly as Route's does, so a
// routing sequence mixing Route and RouteSize calls is bit-identical to
// the same sequence of materialized records through Route alone.
func (px *Proxy) RouteSize(bytes int) bool {
	px.stats.In++
	px.acc += px.p
	if px.acc >= 1-1e-12 {
		px.acc -= 1
		px.stats.Forwarded++
		return true
	}
	px.stats.Drained++
	px.stats.DrainedBytes += int64(bytes)
	return false
}

// NoteProcessed records that the downstream operator consumed one
// forwarded record within budget.
func (px *Proxy) NoteProcessed() { px.stats.Processed++ }

// NoteProcessedN records n forwarded records consumed within budget in
// one amortized update (the batch path's counterpart of NoteProcessed).
func (px *Proxy) NoteProcessedN(n int) { px.stats.Processed += n }

// NoteForcedDrain accounts for a record the pipeline drained without
// consulting Route — its stage queue was full — keeping the proxy's
// arrived/drained counters consistent without exposing the stats field.
func (px *Proxy) NoteForcedDrain(bytes int) {
	px.stats.In++
	px.stats.Drained++
	px.stats.DrainedBytes += int64(bytes)
}

// EndEpoch classifies the proxy given queue occupancy and the node's
// spare budget, returns the epoch's stats, and resets counters for the
// next epoch. pending is the downstream queue length now; spareBudget is
// the node-wide unused budget fraction; thresholds per §IV-C.
func (px *Proxy) EndEpoch(pending int, spareBudget, drainedThres, idleThres float64) ProxyStats {
	s := px.stats
	s.Pending = pending
	switch {
	case float64(pending) > drainedThres*float64(max(s.In, 1)):
		s.State = StateCongested
	case spareBudget > idleThres && pending == 0 && (px.p < 1 || s.In == 0):
		// The node had spare compute and this operator stayed empty:
		// either its proxy withheld records (p < 1) or its upstream
		// starved it entirely (the paper's "operator stays empty"
		// condition).
		s.State = StateIdle
	default:
		s.State = StateStable
	}
	px.stats = ProxyStats{}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
