package stream

import (
	"math"
	"testing"
	"testing/quick"

	"jarvis/internal/telemetry"
)

func TestProxyRouteFractionExact(t *testing.T) {
	f := func(pct uint8) bool {
		p := float64(pct%101) / 100
		px := NewProxy(0)
		px.SetLoadFactor(p)
		const n = 1000
		fwd := 0
		for i := 0; i < n; i++ {
			if px.Route(telemetry.Record{WireSize: 86}) {
				fwd++
			}
		}
		// Error diffusion keeps the realized fraction within 1 record.
		return math.Abs(float64(fwd)-p*n) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProxyStatsAndBytes(t *testing.T) {
	px := NewProxy(3)
	if px.Stage() != 3 {
		t.Fatal("stage")
	}
	px.SetLoadFactor(0.5)
	for i := 0; i < 10; i++ {
		px.Route(telemetry.Record{WireSize: 100})
	}
	s := px.EndEpoch(0, 0, 0.1, 0.2)
	if s.In != 10 || s.Forwarded != 5 || s.Drained != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DrainedBytes != 500 {
		t.Fatalf("drained bytes = %d", s.DrainedBytes)
	}
	// Counters reset after EndEpoch.
	s2 := px.EndEpoch(0, 0, 0.1, 0.2)
	if s2.In != 0 {
		t.Fatal("EndEpoch must reset counters")
	}
}

func TestProxyClamping(t *testing.T) {
	px := NewProxy(0)
	px.SetLoadFactor(2)
	if px.LoadFactor() != 1 {
		t.Fatal("clamp high")
	}
	px.SetLoadFactor(-1)
	if px.LoadFactor() != 0 {
		t.Fatal("clamp low")
	}
}

func TestProxyStateClassification(t *testing.T) {
	mk := func(p float64, n int) *Proxy {
		px := NewProxy(0)
		px.SetLoadFactor(p)
		for i := 0; i < n; i++ {
			px.Route(telemetry.Record{WireSize: 1})
		}
		return px
	}
	// Congested: pending beyond DrainedThres of arrivals.
	s := mk(1, 100).EndEpoch(20, 0, 0.1, 0.2)
	if s.State != StateCongested {
		t.Fatalf("state = %v, want congested", s.State)
	}
	// Pending within tolerance: stable.
	s = mk(1, 100).EndEpoch(5, 0, 0.1, 0.2)
	if s.State != StateStable {
		t.Fatalf("state = %v, want stable", s.State)
	}
	// Idle: spare budget, empty queue, p < 1.
	s = mk(0.5, 100).EndEpoch(0, 0.5, 0.1, 0.2)
	if s.State != StateIdle {
		t.Fatalf("state = %v, want idle", s.State)
	}
	// p == 1 cannot be idle (nothing more to take).
	s = mk(1, 100).EndEpoch(0, 0.5, 0.1, 0.2)
	if s.State != StateStable {
		t.Fatalf("state = %v, want stable at p=1", s.State)
	}
	// Spare below IdleThres: stable.
	s = mk(0.5, 100).EndEpoch(0, 0.1, 0.1, 0.2)
	if s.State != StateStable {
		t.Fatalf("state = %v, want stable below IdleThres", s.State)
	}
}

func TestProxyStateStrings(t *testing.T) {
	if StateStable.String() != "stable" || StateIdle.String() != "idle" ||
		StateCongested.String() != "congested" || ProxyState(9).String() != "unknown" {
		t.Fatal("state strings")
	}
}

func TestQueryStateAggregation(t *testing.T) {
	if QueryState(nil) != StateStable {
		t.Fatal("empty stats should be stable")
	}
	mk := func(states ...ProxyState) []ProxyStats {
		out := make([]ProxyStats, len(states))
		for i, s := range states {
			out[i].State = s
		}
		return out
	}
	if QueryState(mk(StateStable, StateCongested, StateIdle)) != StateCongested {
		t.Fatal("any congested → congested")
	}
	if QueryState(mk(StateIdle, StateIdle)) != StateIdle {
		t.Fatal("all idle → idle")
	}
	if QueryState(mk(StateIdle, StateStable)) != StateStable {
		t.Fatal("mixed idle/stable → stable")
	}
}
