package stream

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// runQuantilePartitioned runs S2SQuantileProbe end to end with the given
// source load factors and returns window 0's sketches.
func runQuantilePartitioned(t *testing.T, budget float64, factors []float64, seed uint64) map[telemetry.GroupKey]*telemetry.QuantileRow {
	t.Helper()
	q := plan.S2SQuantileProbe()
	src, err := NewPipeline(q, DefaultOptions(budget, 0))
	if err != nil {
		t.Fatal(err)
	}
	if factors != nil {
		if err := src.SetLoadFactors(factors); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	sp.RegisterSource(1)
	cfg := workload.DefaultPingConfig(seed)
	cfg.Peers = 500 // denser per-pair sampling keeps the test fast
	gen := workload.NewPingGen(cfg)

	var final telemetry.Batch
	for e := 0; e < 20; e++ {
		var batch telemetry.Batch
		if e < 10 {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e+1) * 1_000_000)
		}
		res := src.RunEpoch(batch)
		for stage, d := range res.Drains {
			if len(d) > 0 {
				if err := sp.Ingest(stage, d); err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(res.Results) > 0 {
			if err := sp.Ingest(res.ResultStage, res.Results); err != nil {
				t.Fatal(err)
			}
		}
		sp.ObserveWatermark(1, res.Watermark)
		final = append(final, sp.Advance()...)
	}
	rows := map[telemetry.GroupKey]*telemetry.QuantileRow{}
	for _, rec := range final {
		row := rec.Data.(*telemetry.QuantileRow)
		if row.Window != 0 {
			continue
		}
		if prev, ok := rows[row.Key]; ok {
			if err := prev.Merge(row); err != nil {
				t.Fatal(err)
			}
		} else {
			rows[row.Key] = row.Clone()
		}
	}
	return rows
}

// TestQuantilePartitionEquivalence extends the lossless-partitioning
// property to the approximate-quantile extension: the merged sketches
// answer exactly the same quantiles wherever the records were processed.
func TestQuantilePartitionEquivalence(t *testing.T) {
	allSP := runQuantilePartitioned(t, 1.0, []float64{0, 0, 0}, 9)
	split := runQuantilePartitioned(t, 1.0, []float64{1, 1, 0.4}, 9)
	if len(allSP) == 0 {
		t.Fatal("no sketches")
	}
	if len(split) != len(allSP) {
		t.Fatalf("groups: %d vs %d", len(split), len(allSP))
	}
	for k, want := range allSP {
		got, ok := split[k]
		if !ok {
			t.Fatalf("missing group %v", k)
		}
		if got.Total != want.Total {
			t.Fatalf("group %v total %d vs %d", k, got.Total, want.Total)
		}
		for _, p := range []float64{0.5, 0.95, 0.99} {
			if got.Quantile(p) != want.Quantile(p) {
				t.Fatalf("group %v q%.2f: %v vs %v", k, p, got.Quantile(p), want.Quantile(p))
			}
		}
	}
}

func TestQuantileQueryPlanEligibility(t *testing.T) {
	q := plan.S2SQuantileProbe()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Approximate quantiles are incrementally updatable: fully eligible.
	if got := plan.EligiblePrefix(q, plan.SourceRules()); got != 3 {
		t.Fatalf("eligible prefix = %d, want 3", got)
	}
	// The exact-quantile variant would be barred by R-1.
	exact := q.Clone()
	exact.Ops[2].IncrementalAgg = false
	if got := plan.EligiblePrefix(exact, plan.SourceRules()); got != 2 {
		t.Fatalf("exact-quantile prefix = %d, want 2", got)
	}
}

// TestPipelineConservationProperty: under random factors and budgets, no
// stage ever loses records: arrivals = processed + drained + pending.
func TestPipelineConservationProperty(t *testing.T) {
	f := func(seed uint64, budgetPct, f0, f1, f2 uint8) bool {
		budget := float64(budgetPct%101) / 100
		factors := []float64{
			float64(f0%101) / 100, float64(f1%101) / 100, float64(f2%101) / 100,
		}
		p, err := NewPipeline(plan.S2SProbe(), DefaultOptions(budget, 0))
		if err != nil {
			return false
		}
		_ = p.SetLoadFactors(factors)
		cfg := workload.DefaultPingConfig(seed)
		cfg.Peers = 200
		gen := workload.NewPingGen(cfg)
		in := make([]int, 3)
		processed := make([]int, 3)
		drained := make([]int, 3)
		for e := 0; e < 4; e++ {
			res := p.RunEpoch(gen.Next(4000))
			for i, s := range res.Stats {
				in[i] += s.In
				processed[i] += s.Processed
				drained[i] += s.Drained
			}
		}
		for i := 0; i < 3; i++ {
			if processed[i]+drained[i]+pendingAt(p, i) != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineBudgetNeverExceeded: token accounting holds for arbitrary
// factors — the pipeline never spends more than its budget.
func TestPipelineBudgetNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 10; trial++ {
		budget := rng.Float64()
		p, err := NewPipeline(plan.S2SProbe(), DefaultOptions(budget, 0))
		if err != nil {
			t.Fatal(err)
		}
		_ = p.SetLoadFactors([]float64{rng.Float64(), rng.Float64(), rng.Float64()})
		gen := workload.NewPingGen(workload.DefaultPingConfig(uint64(trial)))
		for e := 0; e < 3; e++ {
			res := p.RunEpoch(gen.NextWindow(1_000_000))
			if res.BudgetUsedFrac > 1.0+1e-9 {
				t.Fatalf("budget exceeded: %v (budget %v)", res.BudgetUsedFrac, budget)
			}
			if math.IsNaN(res.BudgetUsedFrac) {
				t.Fatal("NaN budget accounting")
			}
		}
	}
}
