package stream

import (
	"fmt"
	"sort"
	"sync"

	"jarvis/internal/obs"
	"jarvis/internal/operator"
	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/wire"
)

// SPEngine is the stream-processor-side replica of a query. It ingests
// drained records (tagged with the operator they must enter) and partial
// aggregates from many data sources, merges event-time progress across
// their streams (minimum watermark, as Flink does — paper §V), and emits
// final query results.
//
// Stream processors are provisioned with dedicated cores (the paper's
// m5a.16xlarge); the engine therefore executes everything it ingests and
// reports consumed CPU rather than capping it.
//
// All exported methods are safe for concurrent use: an engine may be fed
// by transport connections and the sharded Processor at once, each with
// their own locking discipline, so the engine serializes internally.
type SPEngine struct {
	mu       sync.Mutex
	query    *plan.Query
	ops      []operator.Operator
	batchOps []operator.BatchProcessor
	// colOps[i] is non-nil when ops[i] can execute SoA waves; the
	// columnar ingest path falls back to row materialization at the
	// first nil stage.
	colOps []operator.ColumnarProcessor
	cm     *CostModel

	// watermarks per source node; the effective watermark is their min.
	sourceWM map[uint32]int64

	results telemetry.Batch

	// ingest scratch (ping-pong wave buffers), reused across batches.
	scratchA telemetry.Batch
	scratchB telemetry.Batch
	// columnar ingest scratch: the wave's section headers (the columns
	// themselves stay shared with the caller's batch per the wire
	// package's mutation discipline).
	colWave []wire.ColSec

	// accounting
	cpuMicros    float64
	ingestBytes  int64
	ingestCount  int64
	resultsCount int64
}

// NewSPEngine builds the SP replica for a query.
func NewSPEngine(q *plan.Query) (*SPEngine, error) {
	ops, err := q.Instantiate()
	if err != nil {
		return nil, err
	}
	cm, err := NewCostModel(q)
	if err != nil {
		return nil, err
	}
	e := &SPEngine{
		query:    q,
		ops:      ops,
		batchOps: make([]operator.BatchProcessor, len(ops)),
		colOps:   make([]operator.ColumnarProcessor, len(ops)),
		cm:       cm,
		sourceWM: make(map[uint32]int64),
	}
	for i, op := range ops {
		e.batchOps[i] = operator.AsBatchProcessor(op)
		if cp, ok := op.(operator.ColumnarProcessor); ok && cp.ColumnarCapable() {
			e.colOps[i] = cp
		}
	}
	return e, nil
}

// Ingest feeds a batch from a source into the pipeline at the given
// operator stage. Partial AggRow records entering a stateful stage merge
// into its state; raw records flow through the remaining operators. The
// whole batch moves stage by stage through the operators' vectorized
// path, charging the cost model once per stage; each operator sees the
// same record sequence as record-at-a-time feeding, so the outputs are
// identical.
func (e *SPEngine) Ingest(stage int, batch telemetry.Batch) error {
	start := obs.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if stage < 0 || stage > len(e.ops) {
		return fmt.Errorf("stream: ingest stage %d out of range [0,%d]", stage, len(e.ops))
	}
	if len(batch) == 0 {
		return nil
	}
	e.ingestBytes += batch.TotalBytes()
	e.ingestCount += int64(len(batch))
	e.runRowsLocked(stage, batch)
	obs.Since(obs.StageIngest, start)
	return nil
}

// runRowsLocked drives a batch through stages [stage, len(ops)) on the
// vectorized row path, leaving any survivors in e.results. The caller's
// batch is treated read-only.
func (e *SPEngine) runRowsLocked(stage int, batch telemetry.Batch) {
	wave, next := batch, e.scratchA[:0]
	for i := stage; i < len(e.ops); i++ {
		e.cpuMicros += e.cm.Cost(i) * float64(len(wave))
		next = next[:0]
		e.batchOps[i].ProcessBatch(wave, &next)
		if i == stage {
			// The caller's batch stays untouched; from here on the two
			// scratch buffers ping-pong.
			wave, next = next, e.scratchB[:0]
		} else {
			wave, next = next, wave
		}
		if len(wave) == 0 {
			break
		}
	}
	if len(wave) > 0 {
		e.results = append(e.results, wave...)
		e.resultsCount += int64(len(wave))
	}
	if stage < len(e.ops) {
		// After at least one stage, wave and next are the two (possibly
		// grown) scratch arrays; keep their capacity for the next batch.
		e.scratchA, e.scratchB = wave[:0], next[:0]
	}
}

// IngestColumnar feeds a decoded SoA wave into the pipeline at the given
// operator stage, driving it through the columnar path of every stage
// that has one (wire v2 frames then flow decode→execute with zero row
// materialization on the all-SoA prefix of the plan) and materializing
// rows once, at the first stage that does not. It is observably
// equivalent to materializing the batch and calling Ingest.
//
// The caller's batch is treated read-only: the engine copies the section
// headers and operators replace, never overwrite, shared columns.
func (e *SPEngine) IngestColumnar(stage int, cb *wire.ColumnarBatch) error {
	start := obs.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if stage < 0 || stage > len(e.ops) {
		return fmt.Errorf("stream: ingest stage %d out of range [0,%d]", stage, len(e.ops))
	}
	live := cb.Records()
	if live == 0 {
		return nil
	}
	e.ingestBytes += cb.TotalBytes()
	e.ingestCount += int64(live)
	e.colWave = append(e.colWave[:0], cb.Secs...)
	wave := wire.ColumnarBatch{Secs: e.colWave}
	for i := stage; i < len(e.ops); i++ {
		cp := e.colOps[i]
		if cp == nil {
			// Fallback: materialize the wave's live rows once and run the
			// remaining stages on the row path.
			var rows telemetry.Batch
			wave.AppendRows(&rows)
			e.runRowsLocked(i, rows)
			obs.Since(obs.StageIngest, start)
			return nil
		}
		e.cpuMicros += e.cm.Cost(i) * float64(live)
		cp.ProcessColumnar(&wave)
		live = wave.Records()
		if live == 0 {
			obs.Since(obs.StageIngest, start)
			return nil
		}
	}
	// Survivors past the last stage are final results.
	wave.AppendRows(&e.results)
	e.resultsCount += int64(live)
	obs.Since(obs.StageIngest, start)
	return nil
}

func (e *SPEngine) feed(stage int, rec telemetry.Record) {
	if stage >= len(e.ops) {
		e.results = append(e.results, rec)
		e.resultsCount++
		return
	}
	e.cpuMicros += e.cm.Cost(stage)
	e.ops[stage].Process(rec, func(out telemetry.Record) {
		e.feed(stage+1, out)
	})
}

// RegisterSource announces a source before its first watermark so the
// effective watermark (a minimum across sources) does not run ahead while
// the source is quiet. Registration is idempotent and never regresses an
// observed watermark.
func (e *SPEngine) RegisterSource(source uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.sourceWM[source]; !ok {
		e.sourceWM[source] = 0
	}
}

// ObserveWatermark records event-time progress for one source stream.
// Control proxies replicate watermarks onto drain paths, so every
// source's drain and result streams share the source's watermark.
func (e *SPEngine) ObserveWatermark(source uint32, wm int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.sourceWM[source]; !ok || wm > cur {
		e.sourceWM[source] = wm
	}
}

// SourceWatermarks invokes f for every registered source's current
// watermark (iteration order unspecified).
func (e *SPEngine) SourceWatermarks(f func(source uint32, wm int64)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for s, wm := range e.sourceWM {
		f(s, wm)
	}
}

// EffectiveWatermark returns the minimum watermark across all known
// sources (0 when none are registered).
func (e *SPEngine) EffectiveWatermark() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.effectiveWMLocked()
}

func (e *SPEngine) effectiveWMLocked() int64 {
	first := true
	var min int64
	for _, wm := range e.sourceWM {
		if first || wm < min {
			min = wm
			first = false
		}
	}
	return min
}

// Advance flushes stateful operators up to the effective watermark,
// cascading through downstream operators, and returns the final records
// emitted by the query since the last call.
func (e *SPEngine) Advance() telemetry.Batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.advanceToLocked(e.effectiveWMLocked())
}

// AdvanceTo flushes stateful operators up to an explicit watermark and
// returns the final records emitted since the last call. The concurrent
// Processor uses it to flush its shard replicas at the globally merged
// watermark instead of each shard's local minimum.
func (e *SPEngine) AdvanceTo(wm int64) telemetry.Batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.advanceToLocked(wm)
}

func (e *SPEngine) advanceToLocked(wm int64) telemetry.Batch {
	for i, op := range e.ops {
		if !op.Stateful() {
			continue
		}
		i := i
		op.Flush(wm, func(out telemetry.Record) {
			e.feed(i+1, out)
		})
	}
	out := e.results
	e.results = nil
	return out
}

// WindowDur returns the deployed query's tumbling-window duration in
// microseconds (0 when the query has no window operator). The admission
// degrader uses it to map raw event times to the window ids the engine
// will assign downstream.
func (e *SPEngine) WindowDur() int64 { return e.query.WindowDur() }

// CPUMicros returns the total compute consumed by the SP replica.
func (e *SPEngine) CPUMicros() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cpuMicros
}

// IngressBytes returns the total bytes ingested from sources.
func (e *SPEngine) IngressBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestBytes
}

// IngressRecords returns the number of records ingested.
func (e *SPEngine) IngressRecords() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestCount
}

// Sources lists the registered source ids, ascending.
func (e *SPEngine) Sources() []uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]uint32, 0, len(e.sourceWM))
	for s := range e.sourceWM {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears all operator state and accounting (between experiments).
func (e *SPEngine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, op := range e.ops {
		op.Reset()
	}
	e.sourceWM = make(map[uint32]int64)
	e.results = nil
	e.cpuMicros = 0
	e.ingestBytes = 0
	e.ingestCount = 0
	e.resultsCount = 0
}
