package stream

import (
	"fmt"
	"sort"

	"jarvis/internal/operator"
	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
)

// SPEngine is the stream-processor-side replica of a query. It ingests
// drained records (tagged with the operator they must enter) and partial
// aggregates from many data sources, merges event-time progress across
// their streams (minimum watermark, as Flink does — paper §V), and emits
// final query results.
//
// Stream processors are provisioned with dedicated cores (the paper's
// m5a.16xlarge); the engine therefore executes everything it ingests and
// reports consumed CPU rather than capping it.
type SPEngine struct {
	query *plan.Query
	ops   []operator.Operator
	cm    *CostModel

	// watermarks per source node; the effective watermark is their min.
	sourceWM map[uint32]int64

	results telemetry.Batch

	// accounting
	cpuMicros    float64
	ingestBytes  int64
	ingestCount  int64
	resultsCount int64
}

// NewSPEngine builds the SP replica for a query.
func NewSPEngine(q *plan.Query) (*SPEngine, error) {
	ops, err := q.Instantiate()
	if err != nil {
		return nil, err
	}
	cm, err := NewCostModel(q)
	if err != nil {
		return nil, err
	}
	return &SPEngine{
		query:    q,
		ops:      ops,
		cm:       cm,
		sourceWM: make(map[uint32]int64),
	}, nil
}

// Ingest feeds a batch from a source into the pipeline at the given
// operator stage. Partial AggRow records entering a stateful stage merge
// into its state; raw records flow through the remaining operators.
func (e *SPEngine) Ingest(stage int, batch telemetry.Batch) error {
	if stage < 0 || stage > len(e.ops) {
		return fmt.Errorf("stream: ingest stage %d out of range [0,%d]", stage, len(e.ops))
	}
	for _, rec := range batch {
		e.ingestBytes += int64(rec.WireSize)
		e.ingestCount++
		e.feed(stage, rec)
	}
	return nil
}

func (e *SPEngine) feed(stage int, rec telemetry.Record) {
	if stage >= len(e.ops) {
		e.results = append(e.results, rec)
		e.resultsCount++
		return
	}
	e.cpuMicros += e.cm.Cost(stage)
	e.ops[stage].Process(rec, func(out telemetry.Record) {
		e.feed(stage+1, out)
	})
}

// RegisterSource announces a source before its first watermark so the
// effective watermark (a minimum across sources) does not run ahead while
// the source is quiet. Registration is idempotent and never regresses an
// observed watermark.
func (e *SPEngine) RegisterSource(source uint32) {
	if _, ok := e.sourceWM[source]; !ok {
		e.sourceWM[source] = 0
	}
}

// ObserveWatermark records event-time progress for one source stream.
// Control proxies replicate watermarks onto drain paths, so every
// source's drain and result streams share the source's watermark.
func (e *SPEngine) ObserveWatermark(source uint32, wm int64) {
	if cur, ok := e.sourceWM[source]; !ok || wm > cur {
		e.sourceWM[source] = wm
	}
}

// EffectiveWatermark returns the minimum watermark across all known
// sources (0 when none are registered).
func (e *SPEngine) EffectiveWatermark() int64 {
	first := true
	var min int64
	for _, wm := range e.sourceWM {
		if first || wm < min {
			min = wm
			first = false
		}
	}
	return min
}

// Advance flushes stateful operators up to the effective watermark,
// cascading through downstream operators, and returns the final records
// emitted by the query since the last call.
func (e *SPEngine) Advance() telemetry.Batch {
	wm := e.EffectiveWatermark()
	for i, op := range e.ops {
		if !op.Stateful() {
			continue
		}
		i := i
		op.Flush(wm, func(out telemetry.Record) {
			e.feed(i+1, out)
		})
	}
	out := e.results
	e.results = nil
	return out
}

// CPUMicros returns the total compute consumed by the SP replica.
func (e *SPEngine) CPUMicros() float64 { return e.cpuMicros }

// IngressBytes returns the total bytes ingested from sources.
func (e *SPEngine) IngressBytes() int64 { return e.ingestBytes }

// IngressRecords returns the number of records ingested.
func (e *SPEngine) IngressRecords() int64 { return e.ingestCount }

// Sources lists the registered source ids, ascending.
func (e *SPEngine) Sources() []uint32 {
	out := make([]uint32, 0, len(e.sourceWM))
	for s := range e.sourceWM {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears all operator state and accounting (between experiments).
func (e *SPEngine) Reset() {
	for _, op := range e.ops {
		op.Reset()
	}
	e.sourceWM = make(map[uint32]int64)
	e.results = nil
	e.cpuMicros = 0
	e.ingestBytes = 0
	e.ingestCount = 0
	e.resultsCount = 0
}
