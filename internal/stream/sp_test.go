package stream

import (
	"sort"
	"testing"

	"jarvis/internal/plan"
	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

// runPartitioned executes the S2SProbe query with the given source-side
// load factors, shipping drains and results to an SP replica, and returns
// the final aggregate rows for the first window.
func runPartitioned(t *testing.T, budget float64, factors []float64, seed uint64) map[telemetry.GroupKey]telemetry.AggRow {
	t.Helper()
	q := plan.S2SProbe()
	src, err := NewPipeline(q, DefaultOptions(budget, 0))
	if err != nil {
		t.Fatal(err)
	}
	if factors != nil {
		if err := src.SetLoadFactors(factors); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewPingGen(workload.DefaultPingConfig(seed))
	var final telemetry.Batch
	// 10 s of data plus trailing idle epochs so even a backlogged source
	// (tight budget, high load factors) finishes processing and closes
	// the first window.
	for e := 0; e < 45; e++ {
		var batch telemetry.Batch
		if e < 10 {
			batch = gen.NextWindow(1_000_000)
		} else {
			src.ObserveTime(int64(e+1) * 1_000_000)
		}
		res := src.RunEpoch(batch)
		for stage, d := range res.Drains {
			if len(d) > 0 {
				if err := sp.Ingest(stage, d); err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(res.Results) > 0 {
			if err := sp.Ingest(res.ResultStage, res.Results); err != nil {
				t.Fatal(err)
			}
		}
		sp.ObserveWatermark(1, res.Watermark)
		final = append(final, sp.Advance()...)
	}
	rows := make(map[telemetry.GroupKey]telemetry.AggRow)
	for _, r := range final {
		row := r.Data.(*telemetry.AggRow)
		if row.Window != 0 {
			continue // compare only the fully closed first window
		}
		if prev, ok := rows[row.Key]; ok {
			prev.Merge(*row)
			rows[row.Key] = prev
		} else {
			rows[row.Key] = *row
		}
	}
	return rows
}

// TestPartitionEquivalence is the engine's core correctness property:
// the final query answer is identical whether records are processed
// entirely on the SP (All-SP), entirely on the source (All-Src), or split
// at any load factor — data-level partitioning is lossless (§ III-B).
func TestPartitionEquivalence(t *testing.T) {
	const seed = 42
	allSP := runPartitioned(t, 1.0, []float64{0, 0, 0}, seed)
	allSrc := runPartitioned(t, 1.0, []float64{1, 1, 1}, seed)
	split := runPartitioned(t, 1.0, []float64{1, 1, 0.5}, seed)
	headSplit := runPartitioned(t, 1.0, []float64{0.7, 1, 0.9}, seed)

	if len(allSP) == 0 {
		t.Fatal("no rows from All-SP run")
	}
	for name, got := range map[string]map[telemetry.GroupKey]telemetry.AggRow{
		"All-Src": allSrc, "split": split, "headSplit": headSplit,
	} {
		if len(got) != len(allSP) {
			t.Fatalf("%s: %d rows, want %d", name, len(got), len(allSP))
		}
		for key, want := range allSP {
			g, ok := got[key]
			if !ok {
				t.Fatalf("%s: missing group %v", name, key)
			}
			if g.Count != want.Count || g.Min != want.Min || g.Max != want.Max ||
				absF(g.Sum-want.Sum) > 1e-6 {
				t.Fatalf("%s: group %v = %+v, want %+v", name, key, g, want)
			}
		}
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestPartitionEquivalenceUnderTightBudget(t *testing.T) {
	// Even when the source congests and carries backlog across epochs,
	// no record is lost: the late-closed window matches All-SP.
	const seed = 7
	allSP := runPartitioned(t, 1.0, []float64{0, 0, 0}, seed)
	tight := runPartitioned(t, 0.5, []float64{1, 1, 0.8}, seed)
	if len(tight) != len(allSP) {
		t.Fatalf("tight run rows = %d, want %d", len(tight), len(allSP))
	}
	for key, want := range allSP {
		g := tight[key]
		if g.Count != want.Count {
			t.Fatalf("group %v count = %d, want %d", key, g.Count, want.Count)
		}
	}
}

func TestSPEngineWatermarkMerge(t *testing.T) {
	sp, err := NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	sp.ObserveWatermark(1, 100)
	sp.ObserveWatermark(2, 50)
	if wm := sp.EffectiveWatermark(); wm != 50 {
		t.Fatalf("effective wm = %d, want min 50", wm)
	}
	// Watermarks never regress.
	sp.ObserveWatermark(2, 40)
	if wm := sp.EffectiveWatermark(); wm != 50 {
		t.Fatalf("wm regressed to %d", wm)
	}
	sp.ObserveWatermark(2, 200)
	if wm := sp.EffectiveWatermark(); wm != 100 {
		t.Fatalf("wm = %d, want 100", wm)
	}
	if got := sp.Sources(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("sources = %v", got)
	}
}

func TestSPEngineTwoSourcesMerge(t *testing.T) {
	q := plan.S2SProbe()
	sp, err := NewSPEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	sp.RegisterSource(1)
	sp.RegisterSource(2)
	// Two sources drain raw probes for the same window.
	mk := func(src uint32, rtt uint32) telemetry.Batch {
		return telemetry.Batch{telemetry.NewProbeRecord(&telemetry.PingProbe{
			Timestamp: 1_000_000, SrcIP: 1, DstIP: 2, RTTMicros: rtt,
		})}
	}
	if err := sp.Ingest(0, mk(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Ingest(0, mk(2, 300)); err != nil {
		t.Fatal(err)
	}
	sp.ObserveWatermark(1, 10_000_000)
	// Only source 1 has advanced: window must stay open.
	if out := sp.Advance(); len(out) != 0 {
		t.Fatalf("premature flush: %d rows", len(out))
	}
	sp.ObserveWatermark(2, 10_000_000)
	out := sp.Advance()
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	row := out[0].Data.(*telemetry.AggRow)
	if row.Count != 2 || row.Min != 100 || row.Max != 300 {
		t.Fatalf("merged row = %+v", row)
	}
	if sp.IngressRecords() != 2 || sp.IngressBytes() != 2*telemetry.PingProbeWireSize {
		t.Fatalf("ingress accounting: %d records, %d bytes",
			sp.IngressRecords(), sp.IngressBytes())
	}
	if sp.CPUMicros() <= 0 {
		t.Fatal("CPU accounting missing")
	}
}

func TestSPEngineIngestErrors(t *testing.T) {
	sp, err := NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Ingest(-1, nil); err == nil {
		t.Fatal("negative stage must error")
	}
	if err := sp.Ingest(99, nil); err == nil {
		t.Fatal("stage beyond pipeline must error")
	}
	// Stage == len(ops) is the passthrough sink.
	rec := telemetry.NewAggRecord(telemetry.NewAggRow(telemetry.NumKey(1), 0, 1), 1)
	if err := sp.Ingest(3, telemetry.Batch{rec}); err != nil {
		t.Fatal(err)
	}
	out := sp.Advance()
	if len(out) != 1 {
		t.Fatalf("passthrough rows = %d", len(out))
	}
}

func TestSPEngineReset(t *testing.T) {
	sp, err := NewSPEngine(plan.S2SProbe())
	if err != nil {
		t.Fatal(err)
	}
	_ = sp.Ingest(0, telemetry.Batch{telemetry.NewProbeRecord(&telemetry.PingProbe{Timestamp: 1})})
	sp.ObserveWatermark(1, 5)
	sp.Reset()
	if sp.IngressRecords() != 0 || sp.CPUMicros() != 0 || len(sp.Sources()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRowsSortedDeterministically(t *testing.T) {
	// Two identical runs produce identical row orderings.
	a := runPartitioned(t, 1.0, []float64{1, 1, 1}, 11)
	b := runPartitioned(t, 1.0, []float64{1, 1, 1}, 11)
	ka := keysOf(a)
	kb := keysOf(b)
	if len(ka) != len(kb) {
		t.Fatal("row sets differ")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("ordering not deterministic")
		}
	}
}

func keysOf(m map[telemetry.GroupKey]telemetry.AggRow) []telemetry.GroupKey {
	out := make([]telemetry.GroupKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}
