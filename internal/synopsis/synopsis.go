// Package synopsis implements the data-synopsis techniques Jarvis is
// compared against in §VI-D: the window-based sampling protocol (WSP)
// used for Fig. 9, plus reservoir sampling and an equi-width histogram
// sketch (the synopses surveyed in the paper's §II-B discussion).
//
// Synopses trade query accuracy for network transfer; the Fig. 9
// experiment quantifies the trade-off on Pingmesh alerting, where the
// records that matter (high-latency probes) are sparse and easily missed
// by sampling — Jarvis achieves the same transfer reduction losslessly.
package synopsis

import (
	"math"
	"math/rand/v2"

	"jarvis/internal/telemetry"
)

// WSP is a window-based sampling protocol: within each window every
// record survives independently with the configured rate, so the sample
// of a window is a Bernoulli subsample that downstream operators process
// as usual.
type WSP struct {
	rate float64
	rng  *rand.Rand
}

// NewWSP creates a sampler keeping records with the given rate in (0,1].
func NewWSP(rate float64, seed uint64) *WSP {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &WSP{rate: rate, rng: rand.New(rand.NewPCG(seed, seed^0xBADC0FFE))}
}

// Rate returns the sampling rate.
func (w *WSP) Rate() float64 { return w.rate }

// Sample returns the surviving subset of the batch.
func (w *WSP) Sample(batch telemetry.Batch) telemetry.Batch {
	out := make(telemetry.Batch, 0, int(float64(len(batch))*w.rate)+1)
	for _, rec := range batch {
		if w.rng.Float64() < w.rate {
			out = append(out, rec)
		}
	}
	return out
}

// Reservoir is Vitter's algorithm R: a uniform fixed-size sample of an
// unbounded stream.
type Reservoir struct {
	k     int
	seen  int64
	items telemetry.Batch
	rng   *rand.Rand
}

// NewReservoir creates a reservoir holding k records.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewPCG(seed, seed+7))}
}

// Add offers one record to the reservoir.
func (r *Reservoir) Add(rec telemetry.Record) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, rec)
		return
	}
	j := r.rng.Int64N(r.seen)
	if j < int64(r.k) {
		r.items[j] = rec
	}
}

// Items returns the current sample (shared slice; callers must not grow
// it).
func (r *Reservoir) Items() telemetry.Batch { return r.items }

// Seen returns how many records were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Histogram is an equi-width histogram sketch over [lo, hi) with n
// buckets plus underflow/overflow, supporting approximate quantiles —
// the Prometheus-style summary the paper cites as an alternative for
// telemetry percentiles.
type Histogram struct {
	lo, hi  float64
	buckets []int64 // n+2: [under, b_0..b_{n-1}, over]
	count   int64
}

// NewHistogram creates a sketch with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n+2)}
}

// Observe adds a value.
func (h *Histogram) Observe(v float64) {
	h.count++
	n := len(h.buckets) - 2
	switch {
	case v < h.lo:
		h.buckets[0]++
	case v >= h.hi:
		h.buckets[n+1]++
	default:
		idx := int((v - h.lo) / (h.hi - h.lo) * float64(n))
		if idx >= n {
			idx = n - 1
		}
		h.buckets[idx+1]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// ApproxQuantile estimates the q-quantile by linear interpolation within
// the containing bucket. Underflow clamps to lo, overflow to hi.
func (h *Histogram) ApproxQuantile(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	acc := 0.0
	n := len(h.buckets) - 2
	width := (h.hi - h.lo) / float64(n)
	for i, c := range h.buckets {
		next := acc + float64(c)
		if next >= target && c > 0 {
			switch i {
			case 0:
				return h.lo
			case n + 1:
				return h.hi
			default:
				frac := 0.0
				if c > 0 {
					frac = (target - acc) / float64(c)
				}
				return h.lo + (float64(i-1)+frac)*width
			}
		}
		acc = next
	}
	return h.hi
}

// TransferBytes estimates the synopsis' network cost: the sampled share
// of the raw batch for WSP-style synopses.
func TransferBytes(batch telemetry.Batch, rate float64) int64 {
	return int64(float64(batch.TotalBytes()) * rate)
}
