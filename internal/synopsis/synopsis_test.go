package synopsis

import (
	"math"
	"testing"

	"jarvis/internal/telemetry"
	"jarvis/internal/workload"
)

func TestWSPRate(t *testing.T) {
	gen := workload.NewPingGen(workload.DefaultPingConfig(1))
	batch := gen.Next(20000)
	for _, rate := range []float64{0.2, 0.5, 0.8} {
		w := NewWSP(rate, 42)
		kept := len(w.Sample(batch))
		got := float64(kept) / float64(len(batch))
		if math.Abs(got-rate) > 0.02 {
			t.Fatalf("rate %v realized %v", rate, got)
		}
		if w.Rate() != rate {
			t.Fatal("rate accessor")
		}
	}
}

func TestWSPClamp(t *testing.T) {
	if NewWSP(-1, 1).Rate() != 0 || NewWSP(2, 1).Rate() != 1 {
		t.Fatal("rate clamping")
	}
	all := NewWSP(1, 1)
	batch := telemetry.Batch{{Time: 1}, {Time: 2}}
	if len(all.Sample(batch)) != 2 {
		t.Fatal("rate 1 must keep everything")
	}
	none := NewWSP(0, 1)
	if len(none.Sample(batch)) != 0 {
		t.Fatal("rate 0 must keep nothing")
	}
}

func TestWSPPreservesMeanApproximately(t *testing.T) {
	gen := workload.NewPingGen(workload.DefaultPingConfig(3))
	batch := gen.Next(50000)
	mean := func(b telemetry.Batch) float64 {
		var sum float64
		for _, r := range b {
			sum += float64(r.Data.(*telemetry.PingProbe).RTTMicros)
		}
		return sum / float64(len(b))
	}
	full := mean(batch)
	sampled := mean(NewWSP(0.5, 7).Sample(batch))
	if math.Abs(sampled-full)/full > 0.1 {
		t.Fatalf("sampled mean %v deviates from %v", sampled, full)
	}
}

func TestWSPMissesSparseAnomalies(t *testing.T) {
	// The §VI-D effect: sparse high-latency pairs disappear at low
	// sampling rates, so alerts are missed.
	cfg := workload.DefaultPingConfig(5)
	cfg.Peers = 2000
	cfg.AnomalousPairFrac = 0.01
	gen := workload.NewPingGen(cfg)
	batch := gen.Next(2 * cfg.Peers) // two probes per pair

	alertPairs := func(b telemetry.Batch) map[uint64]bool {
		out := map[uint64]bool{}
		for _, r := range b {
			p := r.Data.(*telemetry.PingProbe)
			if p.RTTMicros > workload.AlertThresholdMicros {
				out[p.PairKey()] = true
			}
		}
		return out
	}
	full := alertPairs(batch)
	if len(full) == 0 {
		t.Fatal("no ground-truth alerts generated")
	}
	low := alertPairs(NewWSP(0.2, 9).Sample(batch))
	missed := 0
	for k := range full {
		if !low[k] {
			missed++
		}
	}
	missRate := float64(missed) / float64(len(full))
	if missRate < 0.3 {
		t.Fatalf("0.2 sampling missed only %v of alerts; expected many (2 probes/pair)", missRate)
	}
}

func TestReservoirFillsAndBounds(t *testing.T) {
	r := NewReservoir(10, 3)
	for i := 0; i < 1000; i++ {
		r.Add(telemetry.Record{Time: int64(i)})
	}
	if len(r.Items()) != 10 {
		t.Fatalf("reservoir size = %d", len(r.Items()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d", r.Seen())
	}
	if NewReservoir(0, 1).k != 1 {
		t.Fatal("k clamp")
	}
}

func TestReservoirApproxUniform(t *testing.T) {
	// Each element should appear with probability k/n; check first- vs
	// second-half balance across many trials.
	const k, n, trials = 5, 100, 400
	firstHalf := 0
	for seed := uint64(0); seed < trials; seed++ {
		r := NewReservoir(k, seed)
		for i := 0; i < n; i++ {
			r.Add(telemetry.Record{Time: int64(i)})
		}
		for _, rec := range r.Items() {
			if rec.Time < n/2 {
				firstHalf++
			}
		}
	}
	frac := float64(firstHalf) / float64(trials*k)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("first-half fraction = %v, want ≈0.5", frac)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i % 100))
	}
	if h.Count() != 10000 {
		t.Fatal("count")
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.ApproxQuantile(q)
		want := q * 100
		if math.Abs(got-want) > 5 { // within one bucket
			t.Fatalf("q%.1f = %v, want ≈%v", q, got, want)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(-5) // underflow
	h.Observe(15) // overflow
	h.Observe(5)
	if got := h.ApproxQuantile(0); got != 0 {
		t.Fatalf("underflow quantile = %v", got)
	}
	if got := h.ApproxQuantile(1); got != 10 {
		t.Fatalf("overflow quantile = %v", got)
	}
	if !math.IsNaN(NewHistogram(0, 10, 5).ApproxQuantile(0.5)) {
		t.Fatal("empty histogram should be NaN")
	}
	// Degenerate constructor inputs.
	d := NewHistogram(5, 5, 0)
	d.Observe(5)
	if d.Count() != 1 {
		t.Fatal("degenerate histogram must still count")
	}
	// Quantile clamping.
	if h.ApproxQuantile(-1) != 0 || h.ApproxQuantile(2) != 10 {
		t.Fatal("quantile clamping")
	}
}

func TestTransferBytes(t *testing.T) {
	batch := telemetry.Batch{{WireSize: 100}, {WireSize: 100}}
	if got := TransferBytes(batch, 0.25); got != 50 {
		t.Fatalf("transfer = %d", got)
	}
}
