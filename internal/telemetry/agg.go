package telemetry

import "strconv"

// GroupKey identifies one group within a GroupApply operator. Keys are
// produced by key-extractor functions supplied with the query; they must
// be cheap to compute and comparable.
type GroupKey struct {
	// Num is used by numeric keys (e.g. packed (srcIP,dstIP)).
	Num uint64
	// Str is used by string keys (e.g. "tenant|stat|bucket"). Empty for
	// purely numeric keys.
	Str string
}

// NumKey builds a numeric group key.
func NumKey(n uint64) GroupKey { return GroupKey{Num: n} }

// StrKey builds a string group key.
func StrKey(s string) GroupKey { return GroupKey{Str: s} }

// String renders the key for output rows.
func (k GroupKey) String() string {
	if k.Str != "" {
		return k.Str
	}
	return strconv.FormatUint(k.Num, 16)
}

// AggRow is the output of a GroupApply+Aggregate operator for one group in
// one window. It is *mergeable*: partial rows computed on a data source can
// be merged with partial rows computed on the stream processor, which is
// what makes data-level partitioning of stateful operators lossless
// (paper §V, "stateful operators relay output to the corresponding operator
// on stream processor, for merging the accumulated state").
type AggRow struct {
	Key    GroupKey
	Window int64
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// NewAggRow starts a row from a single observation.
func NewAggRow(key GroupKey, window int64, v float64) AggRow {
	return AggRow{Key: key, Window: window, Count: 1, Sum: v, Min: v, Max: v}
}

// Observe folds one more observation into the row.
func (a *AggRow) Observe(v float64) {
	if a.Count == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Count++
	a.Sum += v
}

// Merge folds another partial row for the same (key, window) into the row.
// Merging is commutative and associative, the invariant exercised by the
// property tests.
func (a *AggRow) Merge(b AggRow) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
	a.Sum += b.Sum
}

// Avg returns the running average (0 for an empty row).
func (a *AggRow) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// AggRowWireSize is the accounting size of one emitted aggregate row:
// key (8 B or string), window id, count, sum, min, max plus envelope.
func (a *AggRow) AggRowWireSize() int {
	keyLen := 8
	if a.Key.Str != "" {
		keyLen = len(a.Key.Str)
	}
	return keyLen + 8 + 8 + 8 + 8 + 8 + 16
}

// NewAggRecord wraps an aggregate row in a stream Record, stamped with the
// window-end event time.
func NewAggRecord(row AggRow, windowEndMicros int64) Record {
	r := row
	return Record{
		Time:     windowEndMicros,
		WireSize: r.AggRowWireSize(),
		Window:   row.Window,
		Data:     &r,
	}
}
