package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggRowObserve(t *testing.T) {
	a := NewAggRow(NumKey(1), 5, 10)
	a.Observe(20)
	a.Observe(5)
	if a.Count != 3 || a.Sum != 35 || a.Min != 5 || a.Max != 20 {
		t.Fatalf("row = %+v", a)
	}
	if got := a.Avg(); math.Abs(got-35.0/3) > 1e-12 {
		t.Fatalf("Avg = %v", got)
	}
}

func TestAggRowObserveFromEmpty(t *testing.T) {
	var a AggRow
	a.Observe(3)
	if a.Count != 1 || a.Min != 3 || a.Max != 3 {
		t.Fatalf("row = %+v", a)
	}
	if (&AggRow{}).Avg() != 0 {
		t.Fatal("empty Avg should be 0")
	}
}

func TestAggRowMergeIdentity(t *testing.T) {
	a := NewAggRow(NumKey(1), 0, 7)
	b := a
	a.Merge(AggRow{}) // empty right identity
	if a != b {
		t.Fatalf("merge with empty changed row: %+v", a)
	}
	var c AggRow
	c.Merge(b) // empty left identity
	if c != b {
		t.Fatalf("empty.Merge(x) != x: %+v", c)
	}
}

// Property: merging partial aggregates in any split equals aggregating the
// whole stream at once. This is the invariant that makes Jarvis' data-level
// partitioning of G+R lossless.
func TestAggRowMergeEqualsDirect(t *testing.T) {
	f := func(seed int64, n uint8, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n)+1)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		k := int(split) % len(vals)

		var direct AggRow
		for _, v := range vals {
			direct.Observe(v)
		}
		var left, right AggRow
		for _, v := range vals[:k] {
			left.Observe(v)
		}
		for _, v := range vals[k:] {
			right.Observe(v)
		}
		left.Merge(right)
		return left.Count == direct.Count &&
			math.Abs(left.Sum-direct.Sum) < 1e-9 &&
			left.Min == direct.Min && left.Max == direct.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is commutative.
func TestAggRowMergeCommutative(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		if anyNaN(a1, a2, b1, b2) {
			return true
		}
		for _, v := range []float64{a1, a2, b1, b2} {
			if math.Abs(v) > 1e300 { // avoid overflow-to-Inf artifacts
				return true
			}
		}
		var x, y AggRow
		x.Observe(a1)
		x.Observe(a2)
		y.Observe(b1)
		y.Observe(b2)
		xy, yx := x, y
		xy.Merge(y)
		yx.Merge(x)
		return xy.Count == yx.Count &&
			math.Abs(xy.Sum-yx.Sum) < 1e-9 &&
			xy.Min == yx.Min && xy.Max == yx.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

func TestGroupKeyString(t *testing.T) {
	if got := NumKey(255).String(); got != "ff" {
		t.Fatalf("NumKey string = %q", got)
	}
	if got := StrKey("a|b").String(); got != "a|b" {
		t.Fatalf("StrKey string = %q", got)
	}
}

func TestNewAggRecord(t *testing.T) {
	row := NewAggRow(NumKey(9), 3, 1.5)
	rec := NewAggRecord(row, 12345)
	if rec.Time != 12345 || rec.Window != 3 {
		t.Fatalf("rec = %+v", rec)
	}
	got := rec.Data.(*AggRow)
	if got.Key != NumKey(9) || got.Count != 1 {
		t.Fatalf("payload = %+v", got)
	}
	if rec.WireSize != got.AggRowWireSize() {
		t.Fatalf("WireSize = %d", rec.WireSize)
	}
	// Mutating the original row must not affect the record payload.
	row.Observe(2)
	if got.Count != 1 {
		t.Fatal("record payload aliases caller's row")
	}
}

func TestAggRowWireSizeStringKey(t *testing.T) {
	r := AggRow{Key: StrKey("tenant|cpu|3")}
	if got := r.AggRowWireSize(); got != len("tenant|cpu|3")+8+8+8+8+8+16 {
		t.Fatalf("wire size = %d", got)
	}
}
