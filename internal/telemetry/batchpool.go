package telemetry

import "sync"

// Reset truncates the batch in place, keeping its backing array so the
// capacity is reused by the next epoch.
func (b *Batch) Reset() { *b = (*b)[:0] }

// BatchPool recycles Batch backing arrays across epochs. The hot path of
// the engine (drain buffers, result buffers, SP ingest scratch) acquires
// batches here instead of allocating per epoch, so steady-state epochs
// run allocation-free once the pool is warm. It is safe for concurrent
// use.
type BatchPool struct {
	pool sync.Pool
}

// NewBatchPool creates an empty pool. Batches handed out start with the
// given capacity when the pool has nothing to reuse.
func NewBatchPool(capHint int) *BatchPool {
	if capHint < 0 {
		capHint = 0
	}
	return &BatchPool{pool: sync.Pool{New: func() any {
		b := make(Batch, 0, capHint)
		return &b
	}}}
}

// Get returns an empty batch, reusing a recycled backing array when one
// is available.
func (p *BatchPool) Get() Batch {
	b := p.pool.Get().(*Batch)
	out := *b
	*b = nil
	boxPool.Put(b)
	out.Reset()
	return out
}

// Put recycles a batch's backing array. The caller must not touch the
// batch afterwards: any Get may hand the same memory to another epoch.
func (p *BatchPool) Put(b Batch) {
	if cap(b) == 0 {
		return
	}
	b.Reset()
	box := boxPool.Get().(*Batch)
	*box = b
	p.pool.Put(box)
}

// boxPool recycles the *Batch headers used to move slices through
// sync.Pool without a fresh allocation on every Put.
var boxPool = sync.Pool{New: func() any { return new(Batch) }}

// defaultBatchPool backs the package-level helpers shared by the stream
// engine and the stream-processor side.
var defaultBatchPool = NewBatchPool(256)

// GetBatch returns an empty batch from the shared pool.
func GetBatch() Batch { return defaultBatchPool.Get() }

// PutBatch recycles a batch into the shared pool.
func PutBatch(b Batch) { defaultBatchPool.Put(b) }
